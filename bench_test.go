// Package benchmarks contains one benchmark per table and figure of the
// paper's evaluation (Section 7), as indexed in DESIGN.md: running
//
//	go test -bench=. -benchmem
//
// at the repository root regenerates Table 1 (sampled), the Section 7.2
// hardware-vs-IACA discrepancy analysis, and every Section 5/7.3 case study,
// and reports the headline numbers as benchmark metrics. EXPERIMENTS.md
// records the paper values next to the values measured here.
package benchmarks

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"uopsinfo/internal/core"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/report"
	"uopsinfo/internal/service"
	"uopsinfo/internal/uarch"
)

var (
	ctxOnce sync.Once
	ctx     *report.Context
)

// sharedContext returns the report context shared by all benchmarks (the
// characterizers it caches are expensive to build).
func sharedContext() *report.Context {
	ctxOnce.Do(func() { ctx = report.NewContext() })
	return ctx
}

// E1: Table 1 — instruction-variant counts and hardware-vs-IACA agreement.
// One benchmark per representative generation keeps the run time bounded;
// cmd/table1 regenerates the full table.
func benchmarkTable1(b *testing.B, gen uarch.Generation, sampleEvery int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err := report.BuildTable1Row(uarch.Get(gen), report.Table1Options{SampleEvery: sampleEvery})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.NumVariants), "variants")
		b.ReportMetric(row.UopsMatchPct, "uops-match-%")
		b.ReportMetric(row.PortsMatchPct, "ports-match-%")
		b.Logf("Table 1 row: %+v", row)
	}
}

func BenchmarkTable1Nehalem(b *testing.B)  { benchmarkTable1(b, uarch.Nehalem, 40) }
func BenchmarkTable1Haswell(b *testing.B)  { benchmarkTable1(b, uarch.Haswell, 40) }
func BenchmarkTable1Skylake(b *testing.B)  { benchmarkTable1(b, uarch.Skylake, 40) }
func BenchmarkTable1KabyLake(b *testing.B) { benchmarkTable1(b, uarch.KabyLake, 40) }

// E2: Section 7.2 — named discrepancies between the hardware measurements
// and the IACA models (CMC, store/load, BSWAP, VHADDPD, VMINPS, SAHF, IMUL).
func BenchmarkIACADiscrepancies(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.IACADiscrepancyStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(cs.Rows)), "findings")
		b.Logf("\n%s", cs.Format())
	}
}

// E3: Section 7.3.1 — AESDEC per-operand-pair latencies across generations.
func BenchmarkCaseStudyAES(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.AESLatencyStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E4: Section 7.3.2 — SHLD latencies and the prior-work measurement
// conventions that explain the published disagreements.
func BenchmarkCaseStudySHLD(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.SHLDStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E5: Section 7.3.3 — MOVQ2DQ port usage on Skylake.
func BenchmarkCaseStudyMOVQ2DQ(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.MOVQ2DQStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E6: Section 7.3.4 — MOVDQ2Q port usage on Haswell and Sandy Bridge.
func BenchmarkCaseStudyMOVDQ2Q(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.MOVDQ2QStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E7: Section 7.3.5 — instructions with multiple (per-operand-pair)
// latencies.
func BenchmarkCaseStudyMultiLatency(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.MultiLatencyStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E8: Section 7.3.6 — dependency-breaking idioms (PCMPGT family).
func BenchmarkCaseStudyZeroIdioms(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.ZeroIdiomStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E9: Section 5.1 — the motivating port-usage examples (PBLENDVB on Nehalem,
// ADC on Haswell) comparing the blocking-instruction algorithm with the
// isolation-based prior-work attribution.
func BenchmarkPortUsageMotivation(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.PortUsageMotivationStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E10: Section 5.3.2 — throughput computed from the port usage via the
// min-max-load problem vs the measured throughput.
func BenchmarkThroughputLP(b *testing.B) {
	c := sharedContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := report.ThroughputLPStudy(c)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", cs.Format())
	}
}

// E12: the sharded characterization scheduler — the same sampled Skylake
// variant set characterized serially and with N workers, tracking the
// speedup of the parallel engine. Blocking-instruction discovery is hoisted
// out of the timed region: it is shared serial work performed once per run,
// and the benchmark tracks the scaling of the per-variant measurements that
// the scheduler shards across worker stacks.
func BenchmarkCharacterizeAll(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	instrs := arch.InstrSet().Instrs()
	var only []string
	for i := 0; i < len(instrs); i += 30 {
		only = append(only, instrs[i].Name)
	}
	proto := core.NewForArch(arch)
	if _, err := proto.Blocking(); err != nil {
		b.Fatal(err)
	}
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := proto.CharacterizeAll(core.Options{Only: only, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Results) != len(only) {
					b.Fatalf("got %d results, want %d", len(res.Results), len(only))
				}
			}
			b.ReportMetric(float64(len(only)), "variants")
		}
	}
	b.Run("serial", bench(1))
	workers := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("parallel-%d", w), bench(w))
	}
}

// E13: sharded blocking-instruction discovery — the dominant sequential
// fraction of a full run after E12 parallelized the per-variant phase. The
// same Skylake discovery runs serially and with N workers; the discovered
// set is identical for any worker count (see
// TestBlockingDiscoveryWorkerInvariance), so this tracks pure scheduling
// speedup.
func BenchmarkBlockingDiscovery(b *testing.B) {
	c := core.NewForArch(uarch.Get(uarch.Skylake))
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bs, err := c.DiscoverBlocking(core.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(bs.SSE) == 0 || len(bs.AVX) == 0 {
					b.Fatalf("discovery found %d SSE / %d AVX combinations", len(bs.SSE), len(bs.AVX))
				}
			}
		}
	}
	b.Run("serial", bench(1))
	workers := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("parallel-%d", w), bench(w))
	}
}

// E14: the persistent result store — the same sampled Skylake run against a
// cold store (full blocking discovery and characterization, then persist)
// and a warm one (both served from the store), tracking the cross-run
// speedup the cache buys the CLI tools.
func BenchmarkCharacterizeCache(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	instrs := arch.InstrSet().Instrs()
	var only []string
	for i := 0; i < len(instrs); i += 50 {
		only = append(only, instrs[i].Name)
	}
	run := func(b *testing.B, dir string) {
		eng, err := engine.New(engine.Config{Workers: 4, CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.CharacterizeArch(uarch.Skylake, engine.RunOptions{Only: only})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Results) != len(only) {
			b.Fatalf("got %d results, want %d", len(res.Results), len(only))
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			run(b, dir)
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		run(b, dir) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, dir)
		}
	})
	// incremental: the whole-ISA entry and two per-variant entries are
	// evicted before every run, so each iteration re-measures exactly two
	// variants and serves the rest from the per-variant tier.
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		run(b, dir) // prime the store
		evict := func() {
			entries, err := os.ReadDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			variants := 0
			for _, ent := range entries {
				name := ent.Name()
				if strings.HasPrefix(name, "variant-") {
					if variants == 2 {
						continue
					}
					variants++
				} else if !strings.HasPrefix(name, "result-") {
					continue
				}
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			evict()
			b.StartTimer()
			run(b, dir)
		}
	})
}

// E15: the distributed measurement fleet — the E12 sampled Skylake variant
// set characterized on the local simulator vs through a two-worker loopback
// fleet (in-process uopsd services measuring on their own simulators).
// Loopback workers add no compute the local run doesn't have, so the delta
// between the sub-benchmarks is exactly the fleet overhead: sequence
// encoding, HTTP dispatch, batching and result decoding. Blocking discovery
// is hoisted out of the timed region like in E12.
func BenchmarkCharacterizeRemote(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	instrs := arch.InstrSet().Instrs()
	var only []string
	for i := 0; i < len(instrs); i += 30 {
		only = append(only, instrs[i].Name)
	}
	bench := func(proto *core.Characterizer) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := proto.CharacterizeAll(core.Options{Only: only, Workers: 4})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Results) != len(only) {
					b.Fatalf("got %d results, want %d", len(res.Results), len(only))
				}
			}
			b.ReportMetric(float64(len(only)), "variants")
		}
	}

	local := core.NewForArch(arch)
	if _, err := local.Blocking(); err != nil {
		b.Fatal(err)
	}
	b.Run("local", bench(local))

	urls := make([]string, 2)
	for i := range urls {
		eng, err := engine.New(engine.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := service.New(service.Config{Engine: eng})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(svc)
		defer srv.Close()
		urls[i] = srv.URL
	}
	if err := remote.Configure(remote.Options{Workers: urls}); err != nil {
		b.Fatal(err)
	}
	defer remote.Shutdown()
	backend, ok := measure.Lookup(remote.BackendName)
	if !ok {
		b.Fatal("remote backend not registered")
	}
	runner, err := backend.NewRunner(uarch.Skylake)
	if err != nil {
		b.Fatal(err)
	}
	fleet := core.New(measure.New(runner))
	if _, err := fleet.Blocking(); err != nil {
		b.Fatal(err)
	}
	b.Run("fleet-2", bench(fleet))
}

// E11: Section 7.1 — a (sampled) full characterization run on Skylake,
// reporting coverage; the paper reports 50-110 minutes for the full run on
// real hardware.
func BenchmarkFullCharacterization(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	instrs := arch.InstrSet().Instrs()
	var only []string
	for i := 0; i < len(instrs); i += 50 {
		only = append(only, instrs[i].Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.NewForArch(arch)
		res, err := c.CharacterizeAll(core.Options{Only: only})
		if err != nil {
			b.Fatal(err)
		}
		characterized := 0
		for _, r := range res.Results {
			if r.Skipped == "" {
				characterized++
			}
		}
		b.ReportMetric(float64(len(res.Results)), "variants")
		b.ReportMetric(float64(characterized), "fully-characterized")
	}
}
