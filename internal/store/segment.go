package store

// This file is the per-variant tier's segment compaction: a long-lived
// digest accumulates one tiny JSON file per measured variant, and past a
// threshold those loose files are packed into an append-style segment file
// the index addresses by byte range. The on-disk segment format is
// line-oriented: a header envelope (kind "segment") on the first line, then
// one variant envelope per line — each record line is byte-identical to the
// loose file it replaced, so a SegmentRef read decodes through the same
// envelope path as a loose read.
//
// Crash ordering is the whole point: the segment is always fsynced (and the
// directory synced) before the index that references it is written, and the
// index is always durably written before the loose files it supersedes are
// unlinked. Whichever step a crash lands on, the startup sweep sees either
// an unreferenced segment (removed as debris; loose files still serve
// reads) or superseded loose files (removed as debris; the segment serves
// reads) — never a record with no readable home.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"

	"uopsinfo/internal/core"
)

// segmentHeader is the payload of a segment file's first line.
type segmentHeader struct {
	Digest string `json:"digest"`
	Seq    int    `json:"seq"`
	Count  int    `json:"count"`
}

// compactLocked packs the index's loose per-variant files into the next
// segment file of the digest. Caller holds the digest lock and has already
// durably merged idx to disk; compactLocked mutates idx (segment refs, next
// seq) and re-saves it. Any error leaves the loose files — all still valid
// and referenced — in place; a partially created segment is debris the next
// sweep collects.
func (s *Store) compactLocked(d Digest, idx *VariantIndex) error {
	var names []string
	for name := range idx.Entries {
		if _, packed := idx.Segments[name]; !packed {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	segFile := d.segmentFilename(idx.Seq)
	var buf bytes.Buffer
	header, err := json.Marshal(segmentHeader{Digest: d.String(), Seq: idx.Seq, Count: len(names)})
	if err != nil {
		return fmt.Errorf("store: encoding segment header: %w", err)
	}
	env, err := json.Marshal(envelope{Version: Version, Kind: KindSegment, Payload: header})
	if err != nil {
		return fmt.Errorf("store: encoding segment header: %w", err)
	}
	buf.Write(env)
	buf.WriteByte('\n')

	refs := make(map[string]SegmentRef, len(names))
	var packed []string // loose files to unlink once the index refers to the segment
	for _, name := range names {
		loose := d.VariantFilename(name)
		data, err := s.fsys.ReadFile(filepath.Join(s.dir, loose))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // indexed but gone (evicted elsewhere); reads will re-measure
			}
			return fmt.Errorf("store: compacting %s: %w", loose, err)
		}
		var rec core.InstrResult
		if !s.decode(data, KindVariant, &rec) || rec.Name != name {
			// Packing corruption forever would be worse than losing it now.
			s.quarantine(loose, "undecodable variant entry found by compaction")
			delete(idx.Entries, name)
			continue
		}
		refs[name] = SegmentRef{File: segFile, Offset: int64(buf.Len()), Len: int64(len(data))}
		buf.Write(data)
		buf.WriteByte('\n')
		packed = append(packed, loose)
	}
	if len(refs) == 0 {
		return nil
	}

	// Segment first, fsynced regardless of the store's durability level:
	// loose files are about to be unlinked on the strength of this write.
	written, err := s.writeFile(d.Prefix(), KindSegment, segFile, buf.Bytes(), true)
	if err != nil {
		return err
	}
	if !written {
		return errors.New("store: compaction suppressed (store degraded)")
	}

	if idx.Segments == nil {
		idx.Segments = make(map[string]SegmentRef, len(refs))
	}
	for name, ref := range refs {
		idx.Segments[name] = ref
	}
	idx.Seq++
	raw, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: encoding variant index: %w", err)
	}
	envData, err := json.Marshal(envelope{Version: Version, Kind: KindVariantIndex, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: encoding variant index: %w", err)
	}
	written, err = s.writeFile(d.Prefix(), KindVariantIndex, d.filename(KindVariantIndex, ""), envData, true)
	if err != nil {
		return err
	}
	if !written {
		return errors.New("store: compaction suppressed (store degraded)")
	}

	// Only now are the loose files redundant.
	for _, loose := range packed {
		if err := s.fsys.Remove(filepath.Join(s.dir, loose)); err != nil {
			// Redundant but present: the sweep will collect it.
			s.logf("store: compaction: removing %s: %v", loose, err)
			continue
		}
		s.mu.Lock()
		s.unaccountLocked(loose)
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.stats.Compactions++
	s.stats.CompactedFiles += int64(len(packed))
	s.mu.Unlock()
	s.logf("store: compacted %d variant file(s) of %s into %s", len(packed), d.Prefix(), segFile)
	return nil
}

// LoadVariants returns the cached measurement records for every hit among
// names — loose or packed — reading the index once and each touched segment
// file at most once. Misses (absent, corrupt, degraded) are simply not in
// the returned map.
func (s *Store) LoadVariants(d Digest, names []string) map[string]*core.InstrResult {
	out := make(map[string]*core.InstrResult, len(names))
	idx, ok := s.LoadVariantIndex(d)
	if !ok {
		return out
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	bySeg := make(map[string][]string)
	for _, name := range sorted {
		if !idx.Has(name) {
			continue
		}
		if ref, packed := idx.Segments[name]; packed {
			bySeg[ref.File] = append(bySeg[ref.File], name)
		} else if rec, ok := s.loadLooseVariant(d, name); ok {
			out[name] = rec
		}
	}
	var segs []string
	for file := range bySeg {
		segs = append(segs, file)
	}
	sort.Strings(segs)
	for _, segFile := range segs {
		s.loadSegmentRecords(idx, segFile, bySeg[segFile], out)
	}
	return out
}

// loadSegmentRecords resolves the named records out of one segment file: a
// single record is read by byte range, several with one whole-file read.
func (s *Store) loadSegmentRecords(idx *VariantIndex, segFile string, names []string, out map[string]*core.InstrResult) {
	if !s.readAllowed() {
		return
	}
	path := filepath.Join(s.dir, segFile)
	if len(names) == 1 {
		name := names[0]
		ref := idx.Segments[name]
		data, err := s.fsys.ReadAt(path, ref.Offset, ref.Len)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				s.readFailed(err)
			}
			return
		}
		s.readOK()
		if rec, ok := s.decodeSegmentRecord(data, name, segFile); ok {
			out[name] = rec
		}
		return
	}
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.readFailed(err)
		}
		return
	}
	s.readOK()
	for _, name := range names {
		ref := idx.Segments[name]
		if ref.Offset < 0 || ref.Len <= 0 || ref.Offset+ref.Len > int64(len(data)) {
			s.markCorrupt(fmt.Sprintf("segment ref for %q outside %s", name, segFile))
			continue
		}
		if rec, ok := s.decodeSegmentRecord(data[ref.Offset:ref.Offset+ref.Len], name, segFile); ok {
			out[name] = rec
		}
	}
}

// decodeSegmentRecord unwraps one packed record. A record that does not
// decode — or names a different variant — is corruption; it is counted (a
// single record of a shared segment cannot be quarantined aside, but the
// re-measured variant will be re-saved loose, superseding the bad ref).
func (s *Store) decodeSegmentRecord(data []byte, name, segFile string) (*core.InstrResult, bool) {
	var rec core.InstrResult
	if !s.decode(data, KindVariant, &rec) || rec.Name != name {
		s.markCorrupt(fmt.Sprintf("undecodable packed record for %q in %s", name, segFile))
		return nil, false
	}
	return &rec, true
}
