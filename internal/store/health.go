package store

// This file is the store's graceful-degradation state machine and its
// observable surface (Stats, Mode). A store whose disk starts failing must
// not fail characterization requests — results can always be re-measured —
// so instead of surfacing errors the store sheds capabilities: first writes
// (read-only: cached entries still serve, new ones are dropped), then reads
// too (compute-only: the engine measures everything). Recovery is probed
// deterministically by operation count, not by timer: every probeEvery-th
// suppressed operation runs for real, and one success restores the
// capability.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"syscall"
)

// Store modes, from healthy to fully degraded, as reported by Mode and
// surfaced through /healthz.
const (
	ModeOK          = "ok"
	ModeReadOnly    = "read-only"
	ModeComputeOnly = "compute-only"
)

const (
	// failThreshold is how many consecutive failures of a capability
	// (saves, or non-miss reads) degrade it. Unwritable-disk errors
	// (ENOSPC, EROFS) degrade writes immediately — retrying seven more
	// times cannot help a full disk.
	failThreshold = 8
	// probeEvery is the deterministic recovery probe: every probeEvery-th
	// operation that would be suppressed runs for real.
	probeEvery = 64
)

// health is the degradation state, guarded by Store.mu.
type health struct {
	writeFails int // consecutive save failures
	readFails  int // consecutive non-miss read failures
	writesDown bool
	readsDown  bool
	writeProbe int // suppressed-save counter driving recovery probes
	readProbe  int
}

// diskUnwritable reports errors no amount of retrying fixes: a full or
// read-only filesystem.
func diskUnwritable(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EROFS)
}

// writeAllowed reports whether a save should run: always while healthy;
// while write-degraded only the deterministic recovery probes run, and
// everything else is suppressed (counted, and reported as success — losing
// a cache write is not an error worth failing a request over).
func (s *Store) writeAllowed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.health.writesDown {
		return true
	}
	s.health.writeProbe++
	if s.health.writeProbe%probeEvery == 0 {
		return true
	}
	s.stats.SavesSuppressed++
	return false
}

func (s *Store) saveFailed(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.writeFails++
	if (diskUnwritable(err) || s.health.writeFails >= failThreshold) && !s.health.writesDown {
		s.health.writesDown = true
		s.health.writeProbe = 0
		s.stats.Degradations++
		s.logf("store: degraded to %s after save failure: %v", s.modeLocked(), err)
	}
}

func (s *Store) saveOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.writeFails = 0
	if s.health.writesDown {
		s.health.writesDown = false
		s.logf("store: saves recovered; mode %s", s.modeLocked())
	}
}

// readAllowed is writeAllowed for loads: while read-degraded everything but
// the probes reports a miss, and the engine re-measures.
func (s *Store) readAllowed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.health.readsDown {
		return true
	}
	s.health.readProbe++
	return s.health.readProbe%probeEvery == 0
}

// readFailed records a read failure that was not a miss (callers filter
// fs.ErrNotExist, which is the normal cold-cache path).
func (s *Store) readFailed(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.readFails++
	if s.health.readFails >= failThreshold && !s.health.readsDown {
		s.health.readsDown = true
		s.health.readProbe = 0
		s.stats.Degradations++
		s.logf("store: degraded to %s after read failure: %v", s.modeLocked(), err)
	}
}

func (s *Store) readOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.health.readFails = 0
	if s.health.readsDown {
		s.health.readsDown = false
		s.logf("store: reads recovered; mode %s", s.modeLocked())
	}
}

func (s *Store) modeLocked() string {
	switch {
	case s.health.readsDown:
		return ModeComputeOnly
	case s.health.writesDown:
		return ModeReadOnly
	default:
		return ModeOK
	}
}

// Mode returns the store's current degradation mode: ModeOK, ModeReadOnly
// (saves suppressed) or ModeComputeOnly (loads suppressed too).
func (s *Store) Mode() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modeLocked()
}

// markCorrupt counts corruption that has no file of its own to quarantine
// (a packed record inside a shared segment).
func (s *Store) markCorrupt(reason string) {
	s.mu.Lock()
	s.stats.Corrupt++
	s.mu.Unlock()
	s.logf("store: %s", reason)
}

// TierStats is the size accounting of one storage tier.
type TierStats struct {
	Bytes int64 `json:"bytes"`
	Files int64 `json:"files"`
}

// Stats is the store's observable lifecycle state: per-tier sizes, the
// degradation mode, and monotonic counters for everything that used to be
// invisible — corruption, quarantines, evictions, compactions, swept
// debris, suppressed saves and mode transitions. It flows through
// engine.Stats to /v1/stats and /metrics.
type Stats struct {
	Mode     string    `json:"mode"`
	Blocking TierStats `json:"blocking"`
	Result   TierStats `json:"result"`
	Variant  TierStats `json:"variant"`
	Segment  TierStats `json:"segment"`

	Corrupt         int64 `json:"corrupt"`
	Quarantined     int64 `json:"quarantined"`
	EvictedDigests  int64 `json:"evictedDigests"`
	EvictedFiles    int64 `json:"evictedFiles"`
	EvictedBytes    int64 `json:"evictedBytes"`
	Compactions     int64 `json:"compactions"`
	CompactedFiles  int64 `json:"compactedFiles"`
	SweptDebris     int64 `json:"sweptDebris"`
	SavesSuppressed int64 `json:"savesSuppressed"`
	Degradations    int64 `json:"degradations"`
}

// Stats returns a consistent snapshot of the store's lifecycle state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Mode = s.modeLocked()
	st.Blocking = TierStats{Bytes: s.tiers[tierBlocking].bytes, Files: s.tiers[tierBlocking].files}
	st.Result = TierStats{Bytes: s.tiers[tierResult].bytes, Files: s.tiers[tierResult].files}
	st.Variant = TierStats{Bytes: s.tiers[tierVariant].bytes, Files: s.tiers[tierVariant].files}
	st.Segment = TierStats{Bytes: s.tiers[tierSegment].bytes, Files: s.tiers[tierSegment].files}
	return st
}

// ParseSize parses a human-friendly byte size for the -store-max-bytes
// flags: a plain integer, or one with a binary suffix K/M/G/T (optionally
// written KB/KiB etc., case-insensitive).
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	u := strings.ToUpper(t)
	mult := int64(1)
	for _, sfx := range []struct {
		s string
		m int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
	} {
		if strings.HasSuffix(u, sfx.s) {
			u = strings.TrimSuffix(u, sfx.s)
			mult = sfx.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 1073741824, 512M, 1G)", s)
	}
	return n * mult, nil
}
