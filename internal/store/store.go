// Package store is the persistent result store of the characterization
// engine: it caches discovered blocking-instruction sets and whole-ISA
// characterization results across process runs, so the CLI tools do not have
// to re-measure from scratch on every invocation.
//
// Entries are keyed by a content hash of everything a result depends on: the
// microarchitecture generation, the measurement-protocol configuration, the
// full ISA variant set, and a scope string describing what was computed
// (blocking discovery vs. a characterization run and its options). Files are
// written atomically (temp file + rename) inside a versioned JSON envelope.
// Every load failure — missing file, unreadable file, corrupt JSON, version
// or kind mismatch, unknown instruction variant — is reported as a plain
// cache miss so callers silently fall through to recomputation.
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"uopsinfo/internal/core"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
)

// Version is the on-disk format version. Bump it whenever the payload
// structures or the key derivation change incompatibly; old files then read
// as misses and are recomputed.
const Version = 1

// Kinds of stored entries.
const (
	KindBlocking = "blocking"
	KindResult   = "result"
)

// Key identifies a cached entry by content: everything the cached value
// depends on goes into the hash, so a change to any component makes old
// entries unreachable instead of stale.
type Key struct {
	// Arch is the microarchitecture generation name.
	Arch string
	// Measure is the measurement-protocol configuration the results were
	// obtained with.
	Measure measure.Config
	// Variants is the full ISA variant set of the generation (the universe
	// the computation ran over). Order does not matter; the hash sorts a
	// copy.
	Variants []string
	// Scope distinguishes computations over the same universe, e.g. the
	// characterization options of a run.
	Scope string
}

// filename derives the store filename for a kind from the key's content
// hash.
func (k Key) filename(kind string) string {
	h := sha256.New()
	fmt.Fprintf(h, "store-v%d\nkind=%s\narch=%s\nscope=%s\n", Version, kind, k.Arch, k.Scope)
	fmt.Fprintf(h, "measure short=%d long=%d rep=%d warmup=%v overheadCycles=%d overheadUops=%d\n",
		k.Measure.ShortCopies, k.Measure.LongCopies, k.Measure.Repetitions,
		k.Measure.Warmup, k.Measure.OverheadCycles, k.Measure.OverheadUops)
	variants := append([]string(nil), k.Variants...)
	sort.Strings(variants)
	for _, v := range variants {
		fmt.Fprintf(h, "variant=%s\n", v)
	}
	return fmt.Sprintf("%s-%x.json", kind, h.Sum(nil)[:16])
}

// envelope is the on-disk wrapper around every payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Store is a directory of cached characterization results.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if necessary.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// load reads and validates an entry, decoding the payload into out. Any
// failure is a miss.
func (s *Store) load(kind string, key Key, out interface{}) bool {
	data, err := os.ReadFile(filepath.Join(s.dir, key.filename(kind)))
	if err != nil {
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false
	}
	if env.Version != Version || env.Kind != kind {
		return false
	}
	return json.Unmarshal(env.Payload, out) == nil
}

// save writes an entry atomically: the envelope is written to a temporary
// file in the store directory and renamed into place, so concurrent readers
// never observe a partial file.
func (s *Store) save(kind string, key Key, payload interface{}) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encoding %s entry: %w", kind, err)
	}
	data, err := json.Marshal(envelope{Version: Version, Kind: kind, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: encoding %s envelope: %w", kind, err)
	}
	tmp, err := os.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key.filename(kind))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	return nil
}

// BlockingEntry is the serialized form of one blocking instruction: the
// instruction is stored by variant name and rehydrated against the target
// generation's instruction set.
type BlockingEntry struct {
	Combo       string  `json:"combo"`
	Instr       string  `json:"instr"`
	Ports       []int   `json:"ports"`
	Throughput  float64 `json:"throughput,omitempty"`
	UopsOnCombo float64 `json:"uopsOnCombo"`
}

// BlockingRecord is the serialized form of a core.BlockingSet.
type BlockingRecord struct {
	SSE []BlockingEntry `json:"sse"`
	AVX []BlockingEntry `json:"avx"`
}

// recordEntries flattens one combination map, sorted by combination key so
// the serialized form is deterministic.
func recordEntries(m map[string]core.BlockingInstr) []BlockingEntry {
	entries := make([]BlockingEntry, 0, len(m))
	for combo, b := range m {
		entries = append(entries, BlockingEntry{
			Combo:       combo,
			Instr:       b.Instr.Name,
			Ports:       b.Ports,
			Throughput:  b.Throughput,
			UopsOnCombo: b.UopsOnCombo,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Combo < entries[j].Combo })
	return entries
}

// RecordBlocking converts a blocking set into its serialized form.
func RecordBlocking(bs *core.BlockingSet) *BlockingRecord {
	return &BlockingRecord{SSE: recordEntries(bs.SSE), AVX: recordEntries(bs.AVX)}
}

// Restore rehydrates the record against an instruction set. It reports ok ==
// false if any recorded variant no longer exists in the set (the record then
// belongs to a different ISA and must be recomputed).
func (r *BlockingRecord) Restore(set *isa.Set) (*core.BlockingSet, bool) {
	restore := func(entries []BlockingEntry) (map[string]core.BlockingInstr, bool) {
		m := make(map[string]core.BlockingInstr, len(entries))
		for _, e := range entries {
			in := set.Lookup(e.Instr)
			if in == nil {
				return nil, false
			}
			m[e.Combo] = core.BlockingInstr{
				Instr:       in,
				Ports:       e.Ports,
				Throughput:  e.Throughput,
				UopsOnCombo: e.UopsOnCombo,
			}
		}
		return m, true
	}
	sse, ok := restore(r.SSE)
	if !ok {
		return nil, false
	}
	avx, ok := restore(r.AVX)
	if !ok {
		return nil, false
	}
	return &core.BlockingSet{SSE: sse, AVX: avx}, true
}

// LoadBlocking returns the cached blocking record for the key, or ok ==
// false on any kind of miss.
func (s *Store) LoadBlocking(key Key) (*BlockingRecord, bool) {
	var rec BlockingRecord
	if !s.load(KindBlocking, key, &rec) {
		return nil, false
	}
	return &rec, true
}

// SaveBlocking persists a blocking record under the key.
func (s *Store) SaveBlocking(key Key, rec *BlockingRecord) error {
	return s.save(KindBlocking, key, rec)
}

// LoadResult returns the cached characterization result for the key, or ok
// == false on any kind of miss. The result round-trips exactly: float64
// values are encoded with full round-trip precision, so XML rendered from a
// cached result is byte-identical to XML rendered from the original.
func (s *Store) LoadResult(key Key) (*core.ArchResult, bool) {
	var res core.ArchResult
	if !s.load(KindResult, key, &res) {
		return nil, false
	}
	if res.Results == nil {
		return nil, false
	}
	return &res, true
}

// SaveResult persists a characterization result under the key.
func (s *Store) SaveResult(key Key, res *core.ArchResult) error {
	return s.save(KindResult, key, res)
}
