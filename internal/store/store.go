// Package store is the persistent result store of the characterization
// engine: it caches discovered blocking-instruction sets, whole-ISA
// characterization results and individual per-variant measurements across
// process runs, so the CLI tools do not have to re-measure from scratch on
// every invocation — and it is built to do so for production lifetimes, not
// just test runs: writes are crash-safe, corruption is detected, counted and
// quarantined instead of silently shadowing a slot, disk budgets drive
// eviction, the per-variant tier compacts into packed segment files, and a
// disk that starts failing degrades the store to read-only and then
// compute-only operation instead of failing requests.
//
// Entries are keyed by a content hash of everything a result depends on: the
// microarchitecture generation, the measurement-backend fingerprint
// (name@version), the measurement-protocol configuration, the full ISA
// variant set, and a scope string describing what was computed (blocking
// discovery vs. a characterization run and its options). Files are written
// atomically (temp file + rename; with Options.Durable additionally
// fsync-before-rename plus a directory sync) inside a versioned JSON
// envelope. A missing entry is a plain miss; an entry that exists but cannot
// be decoded is corruption — it is counted, renamed aside to "*.corrupt" so
// it stops shadowing the slot, and the caller falls through to
// recomputation.
//
// The store has three logical tiers, each grouped on disk by the digest of
// its key (the digest prefix is part of every filename, which is what lets
// the startup sweep and the eviction policy reason about files per digest):
//
//   - blocking sets (KindBlocking), one entry per generation;
//   - whole-ISA results (KindResult), one entry per run configuration —
//     the fast path for exact repeat runs;
//   - per-variant entries (KindVariant), one entry per instruction variant
//     under a versioned index (KindVariantIndex) — the incremental tier:
//     evicting or invalidating one variant only costs re-measuring that
//     variant, and runs with different variant selections share entries.
//     Once a digest accumulates enough loose per-variant files they are
//     compacted into packed append-style segment files (KindSegment); the
//     index maps variant names to segment offsets.
//
// All I/O goes through the storefs.FS seam, so every durability claim above
// is forced by fault-injection tests (internal/store/errfs) rather than
// asserted.
//
//uopslint:deterministic
package store

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/store/storefs"
)

// Version is the on-disk format version. Bump it whenever the payload
// structures or the key derivation change incompatibly; old files then read
// as misses and are recomputed. (v2: backend fingerprint in the key,
// per-variant tier. v3: digest-grouped filenames, segment compaction,
// quarantine and size accounting — files from older versions are collected
// as debris by the startup sweep.)
const Version = 3

// Kinds of stored entries.
const (
	KindBlocking     = "blocking"
	KindResult       = "result"
	KindVariant      = "variant"
	KindVariantIndex = "varindex"
	KindSegment      = "segment"
)

// Key identifies a cached entry by content: everything the cached value
// depends on goes into the hash, so a change to any component makes old
// entries unreachable instead of stale.
type Key struct {
	// Arch is the microarchitecture generation name.
	Arch string
	// Backend is the measurement-backend fingerprint ("name@version") the
	// results were measured on. Different backends — or different revisions
	// of one backend — never share entries.
	Backend string
	// Measure is the measurement-protocol configuration the results were
	// obtained with.
	Measure measure.Config
	// Variants is the full ISA variant set of the generation (the universe
	// the computation ran over). Order does not matter; the hash sorts a
	// copy.
	Variants []string
	// Scope distinguishes computations over the same universe, e.g. the
	// characterization options of a run.
	Scope string
}

// Digest is the precomputed content hash of a Key. Hashing a key is linear
// in the size of its variant universe, so callers that address many
// per-variant entries (one filename per instruction variant) compute the
// digest once and derive each filename from it in O(1).
type Digest struct {
	sum [sha256.Size]byte
}

// Digest hashes the key's content: everything the cached values depend on,
// except the entry kind and the per-entry discriminator, which filename
// mixes in on top.
func (k Key) Digest() Digest {
	h := sha256.New()
	fmt.Fprintf(h, "store-v%d\narch=%s\nbackend=%s\nscope=%s\n", Version, k.Arch, k.Backend, k.Scope)
	fmt.Fprintf(h, "measure short=%d long=%d rep=%d warmup=%v overheadCycles=%d overheadUops=%d\n",
		k.Measure.ShortCopies, k.Measure.LongCopies, k.Measure.Repetitions,
		k.Measure.Warmup, k.Measure.OverheadCycles, k.Measure.OverheadUops)
	variants := append([]string(nil), k.Variants...)
	sort.Strings(variants)
	for _, v := range variants {
		fmt.Fprintf(h, "variant=%s\n", v)
	}
	var d Digest
	h.Sum(d.sum[:0])
	return d
}

// String renders the digest as lowercase hex. It identifies a run's exact
// content universe (generation, backend fingerprint, measurement protocol,
// variant set, options), which makes it usable as an HTTP entity tag: two
// responses with the same digest and representation format are byte-identical.
func (d Digest) String() string {
	return fmt.Sprintf("%x", d.sum)
}

// prefixLen is the length (in hex characters) of the digest prefix embedded
// in every filename. 16 hex characters (8 bytes) keep accidental collisions
// out of reach while letting the sweep and the eviction policy group a
// directory listing by digest without any side index.
const prefixLen = 16

// Prefix returns the digest's filename prefix: the group identifier shared
// by every file stored under this digest.
func (d Digest) Prefix() string {
	return fmt.Sprintf("%x", d.sum[:prefixLen/2])
}

// filename derives a store filename from the digest, an entry kind and an
// extra discriminator (the variant name of per-variant entries). The name
// embeds the digest prefix — "<kind>-<digest prefix>-<entry hash>.json" — so
// files group by digest on disk.
func (d Digest) filename(kind, extra string) string {
	h := sha256.New()
	h.Write(d.sum[:])
	fmt.Fprintf(h, "kind=%s\nextra=%s\n", kind, extra)
	return fmt.Sprintf("%s-%s-%x.json", kind, d.Prefix(), h.Sum(nil)[:8])
}

// segmentFilename names the seq-th packed segment of the digest's
// per-variant tier.
func (d Digest) segmentFilename(seq int) string {
	return fmt.Sprintf("%s-%s-%08d.seg", KindSegment, d.Prefix(), seq)
}

// VariantFilename returns the store filename of the per-variant entry for
// one instruction variant. It is exported so tests and cache-maintenance
// tooling can evict individual variants.
func (d Digest) VariantFilename(name string) string {
	return d.filename(KindVariant, "variant="+name)
}

// filename derives the store filename for a kind from the key's content
// hash.
func (k Key) filename(kind string) string {
	return k.Digest().filename(kind, "")
}

// VariantFilename is the convenience form of Digest.VariantFilename for
// one-off lookups; loops over many variants should hold the Digest.
func (k Key) VariantFilename(name string) string {
	return k.Digest().VariantFilename(name)
}

// envelope is the on-disk wrapper around every payload, including each
// record line inside a segment file.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Durability selects how hard save pushes an entry toward stable storage.
type Durability int

const (
	// DurabilityRename writes atomically (temp file + rename) but does not
	// sync: a concurrent reader never observes a partial file, but a crash
	// may lose — or tear — entries written shortly before it. The right
	// trade for one-shot CLI runs, where a lost cache entry costs one
	// re-measurement. Torn entries are detected and quarantined on the next
	// read. This is the zero value.
	DurabilityRename Durability = iota
	// DurabilityFull additionally fsyncs the entry before the rename and
	// syncs the directory after it, so a completed save survives a crash.
	// The default for uopsd, whose store is supposed to outlive months of
	// traffic (and any number of power cycles).
	DurabilityFull
)

// Options configures a store beyond its directory.
type Options struct {
	// FS is the filesystem seam all I/O goes through. Nil selects the real
	// filesystem (storefs.OS).
	FS storefs.FS
	// Durability selects the crash-safety level of saves; see the Durability
	// constants. Segment compaction always syncs regardless, because it
	// unlinks the loose files it packed.
	Durability Durability
	// MaxBytes and MaxFiles, when positive, bound the store: when a save
	// pushes the totals past a budget, whole digests are evicted
	// least-recently-used (per-variant tiers first) until the store fits
	// again. Zero means unbounded.
	MaxBytes int64
	MaxFiles int64
	// CompactAfter is how many loose per-variant files a digest may
	// accumulate before they are compacted into a packed segment file. 0
	// selects DefaultCompactAfter; negative disables compaction.
	CompactAfter int
	// Log, if non-nil, receives lifecycle diagnostics that must not fail an
	// operation but should not vanish either: sweep debris counts,
	// quarantined corruption, eviction and degradation transitions.
	Log func(format string, args ...interface{})
}

// DefaultCompactAfter is the loose-file threshold at which a digest's
// per-variant tier is compacted into a segment.
const DefaultCompactAfter = 256

// Store is a directory of cached characterization results.
type Store struct {
	dir          string
	fsys         storefs.FS
	durable      bool
	maxBytes     int64
	maxFiles     int64
	compactAfter int
	log          func(format string, args ...interface{})

	// mu guards the accounting (per-digest groups, per-tier totals), the
	// lifecycle counters and the degradation state. All counters are plain
	// ints under this one mutex — none are touched atomically anywhere.
	mu     sync.Mutex
	groups map[string]*group
	tiers  [tierCount]tierAcct
	stats  Stats
	health health
}

// Open returns a store rooted at dir with default options, creating the
// directory if necessary: real filesystem, rename-only durability, no
// budget. The startup sweep rebuilds the size accounting, validates every
// envelope (quarantining corruption) and collects temp/quarantine debris.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit lifecycle options.
func OpenOptions(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = storefs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	compactAfter := opts.CompactAfter
	if compactAfter == 0 {
		compactAfter = DefaultCompactAfter
	}
	s := &Store{
		dir:          dir,
		fsys:         fsys,
		durable:      opts.Durability == DurabilityFull,
		maxBytes:     opts.MaxBytes,
		maxFiles:     opts.MaxFiles,
		compactAfter: compactAfter,
		log:          opts.Log,
		groups:       make(map[string]*group),
	}
	debris := s.sweep()
	if debris > 0 {
		s.logf("store: startup sweep collected %d debris file(s) in %s", debris, dir)
	}
	// A store reopened with a lower budget than it was filled under trims at
	// startup; waiting for the first write would leave a read-mostly daemon
	// over budget indefinitely.
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

func (s *Store) logf(format string, args ...interface{}) {
	if s.log != nil {
		s.log(format, args...)
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// idxLocks serializes index read-merge-write cycles, variant writes,
// compaction and eviction per (directory, digest group) across every Store
// instance in the process: two engines — or two service handlers — sharing
// one cache directory through separate Store values must still contend on
// the same lock, or concurrent merges could interleave and drop entries.
// Eviction only TryLocks, so a digest is never evicted mid-write.
var idxLocks sync.Map // string (dir \x00 digest prefix) → *sync.Mutex

func (s *Store) idxLock(d Digest) *sync.Mutex {
	return s.prefixLock(d.Prefix())
}

func (s *Store) prefixLock(prefix string) *sync.Mutex {
	key := filepath.Clean(s.dir) + "\x00" + prefix
	lock, _ := idxLocks.LoadOrStore(key, &sync.Mutex{})
	return lock.(*sync.Mutex)
}

// load reads and validates the entry in file, decoding the payload into out.
// A missing file is a plain miss. A file that exists but cannot be decoded —
// unreadable, torn, not JSON, wrong kind, stale version — is corruption: it
// is counted, quarantined aside to "*.corrupt" (so it stops shadowing the
// slot) and reported as a miss. Only an envelope from a *newer* format
// version is left in place: that is another, newer process sharing the
// directory, not damage.
func (s *Store) load(d Digest, kind, file string, out interface{}) bool {
	if !s.readAllowed() {
		return false
	}
	path := filepath.Join(s.dir, file)
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false
		}
		s.readFailed(err)
		return false
	}
	s.readOK()
	s.touch(d.Prefix())
	if !s.decode(data, kind, out) {
		s.quarantine(file, fmt.Sprintf("undecodable %s entry", kind))
		return false
	}
	return true
}

// decode unwraps one envelope of the expected kind into out. It reports
// false for anything undecodable or mismatched — except a newer-version
// envelope, which is also reported false (a miss) but is not corruption;
// newerVersion distinguishes the two for load.
func (s *Store) decode(data []byte, kind string, out interface{}) bool {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false
	}
	if env.Version != Version || env.Kind != kind {
		return false
	}
	return json.Unmarshal(env.Payload, out) == nil
}

// newerVersion reports whether data holds a well-formed envelope from a
// newer on-disk format version; such files belong to a newer process sharing
// the directory and must not be quarantined.
func newerVersion(data []byte) bool {
	var env envelope
	return json.Unmarshal(data, &env) == nil && env.Version > Version
}

// quarantine moves a corrupt entry aside to "<file>.corrupt": corruption is
// counted and surfaced instead of silently shadowing the slot forever, and
// the recomputed entry can be re-saved under the original name. A newer
// process's files are spared (see newerVersion); losing a rename race with a
// concurrent quarantiner is fine.
func (s *Store) quarantine(file, reason string) {
	path := filepath.Join(s.dir, file)
	if data, err := s.fsys.ReadFile(path); err == nil && newerVersion(data) {
		return
	}
	err := s.fsys.Rename(path, path+corruptSuffix)
	s.mu.Lock()
	s.stats.Corrupt++
	if err == nil {
		s.stats.Quarantined++
		s.unaccountLocked(file)
	}
	s.mu.Unlock()
	s.logf("store: quarantined %s: %s", file, reason)
}

// save writes an entry atomically: the envelope is written to a temporary
// file in the store directory and renamed into place, so concurrent readers
// never observe a partial file. With DurabilityFull (or forceSync) the data
// is fsynced before the rename and the directory synced after it, so the
// completed save survives a crash. The temporary file is removed on every
// error path — a failed save must not leak it — and the startup sweep cleans
// up after writers that died before reaching either the rename or the
// cleanup.
//
// While the store is write-degraded (see Stats.Mode), saves are suppressed:
// they count as SavesSuppressed and return nil, and every probeEvery-th
// attempt runs for real to detect recovery.
func (s *Store) save(d Digest, kind, file string, payload interface{}) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encoding %s entry: %w", kind, err)
	}
	data, err := json.Marshal(envelope{Version: Version, Kind: kind, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: encoding %s envelope: %w", kind, err)
	}
	_, err = s.writeFile(d.Prefix(), kind, file, data, false)
	return err
}

// writeFile is the raw crash-safe write path shared by save and segment
// compaction. written reports whether data actually reached the directory —
// false with a nil error means the write was suppressed by degraded mode,
// which save treats as success but compaction must not (it unlinks files on
// the strength of its writes).
func (s *Store) writeFile(prefix, kind, file string, data []byte, forceSync bool) (written bool, err error) {
	if !s.writeAllowed() {
		return false, nil
	}
	defer func() {
		if err != nil {
			s.saveFailed(err)
		} else {
			s.saveOK()
		}
	}()
	tmp, err := s.fsys.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return false, fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	defer func() {
		if err != nil {
			s.fsys.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return false, fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if s.durable || forceSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return false, fmt.Errorf("store: syncing %s entry: %w", kind, err)
		}
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if err := s.fsys.Rename(tmp.Name(), filepath.Join(s.dir, file)); err != nil {
		return false, fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if s.durable || forceSync {
		if err := s.fsys.SyncDir(s.dir); err != nil {
			return false, fmt.Errorf("store: syncing %s directory: %w", kind, err)
		}
	}
	s.account(prefix, kind, file, int64(len(data)))
	return true, nil
}

// BlockingEntry is the serialized form of one blocking instruction: the
// instruction is stored by variant name and rehydrated against the target
// generation's instruction set.
type BlockingEntry struct {
	Combo       string  `json:"combo"`
	Instr       string  `json:"instr"`
	Ports       []int   `json:"ports"`
	Throughput  float64 `json:"throughput,omitempty"`
	UopsOnCombo float64 `json:"uopsOnCombo"`
}

// BlockingRecord is the serialized form of a core.BlockingSet.
type BlockingRecord struct {
	SSE []BlockingEntry `json:"sse"`
	AVX []BlockingEntry `json:"avx"`
}

// recordEntries flattens one combination map, sorted by combination key so
// the serialized form is deterministic.
func recordEntries(m map[string]core.BlockingInstr) []BlockingEntry {
	entries := make([]BlockingEntry, 0, len(m))
	for combo, b := range m {
		entries = append(entries, BlockingEntry{
			Combo:       combo,
			Instr:       b.Instr.Name,
			Ports:       b.Ports,
			Throughput:  b.Throughput,
			UopsOnCombo: b.UopsOnCombo,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Combo < entries[j].Combo })
	return entries
}

// RecordBlocking converts a blocking set into its serialized form.
func RecordBlocking(bs *core.BlockingSet) *BlockingRecord {
	return &BlockingRecord{SSE: recordEntries(bs.SSE), AVX: recordEntries(bs.AVX)}
}

// Restore rehydrates the record against an instruction set. It reports ok ==
// false if any recorded variant no longer exists in the set (the record then
// belongs to a different ISA and must be recomputed).
func (r *BlockingRecord) Restore(set *isa.Set) (*core.BlockingSet, bool) {
	restore := func(entries []BlockingEntry) (map[string]core.BlockingInstr, bool) {
		m := make(map[string]core.BlockingInstr, len(entries))
		for _, e := range entries {
			in := set.Lookup(e.Instr)
			if in == nil {
				return nil, false
			}
			m[e.Combo] = core.BlockingInstr{
				Instr:       in,
				Ports:       e.Ports,
				Throughput:  e.Throughput,
				UopsOnCombo: e.UopsOnCombo,
			}
		}
		return m, true
	}
	sse, ok := restore(r.SSE)
	if !ok {
		return nil, false
	}
	avx, ok := restore(r.AVX)
	if !ok {
		return nil, false
	}
	return &core.BlockingSet{SSE: sse, AVX: avx}, true
}

// LoadBlocking returns the cached blocking record for the key, or ok ==
// false on any kind of miss.
func (s *Store) LoadBlocking(key Key) (*BlockingRecord, bool) {
	var rec BlockingRecord
	if !s.load(key.Digest(), KindBlocking, key.filename(KindBlocking), &rec) {
		return nil, false
	}
	return &rec, true
}

// SaveBlocking persists a blocking record under the key.
func (s *Store) SaveBlocking(key Key, rec *BlockingRecord) error {
	return s.save(key.Digest(), KindBlocking, key.filename(KindBlocking), rec)
}

// LoadResult returns the cached whole-ISA characterization result for the
// key, or ok == false on any kind of miss. The result round-trips exactly:
// float64 values are encoded with full round-trip precision, so XML rendered
// from a cached result is byte-identical to XML rendered from the original.
func (s *Store) LoadResult(key Key) (*core.ArchResult, bool) {
	var res core.ArchResult
	d := key.Digest()
	file := key.filename(KindResult)
	if !s.load(d, KindResult, file, &res) {
		return nil, false
	}
	if res.Results == nil {
		s.quarantine(file, "result entry without results")
		return nil, false
	}
	return &res, true
}

// SaveResult persists a whole-ISA characterization result under the key.
func (s *Store) SaveResult(key Key, res *core.ArchResult) error {
	return s.save(key.Digest(), KindResult, key.filename(KindResult), res)
}

// SegmentRef locates one packed per-variant record: a byte range of a
// segment file of the same digest.
type SegmentRef struct {
	File   string `json:"file"`
	Offset int64  `json:"offset"`
	Len    int64  `json:"len"`
}

// VariantIndex is the versioned directory of the per-variant tier for one
// key (one generation, backend, measurement configuration, universe and
// characterization scope): the set of variant names that have been measured,
// and — for compacted names — where in which segment file their record
// lives. A variant missing from the index, or whose entry file or segment
// record is missing or corrupt, is a per-variant miss; only that variant is
// re-measured.
type VariantIndex struct {
	// Digest is the full content digest (hex) the index belongs to. Entry
	// filenames are derived from it; the startup sweep uses it to find loose
	// files superseded by segments.
	Digest string `json:"digest,omitempty"`
	// Seq numbers the next segment file to be written for this digest.
	Seq int `json:"seq,omitempty"`
	// Entries is the set of measured variant names.
	Entries map[string]bool `json:"entries"`
	// Segments maps compacted variant names to their packed records. A name
	// in Entries but not here is a loose per-variant file.
	Segments map[string]SegmentRef `json:"segments,omitempty"`
}

// NewVariantIndex returns an empty index.
func NewVariantIndex() *VariantIndex {
	return &VariantIndex{Entries: make(map[string]bool)}
}

// Has reports whether the index lists a measured entry for the variant.
func (x *VariantIndex) Has(name string) bool {
	return x != nil && x.Entries[name]
}

// loose reports how many of the index's entries are loose per-variant files
// (not packed into a segment).
func (x *VariantIndex) loose() int {
	n := 0
	for name := range x.Entries {
		if _, packed := x.Segments[name]; !packed {
			n++
		}
	}
	return n
}

// LoadVariantIndex returns the per-variant index for the key digest, or ok
// == false on any kind of miss (an absent index reads as an empty
// per-variant tier).
func (s *Store) LoadVariantIndex(d Digest) (*VariantIndex, bool) {
	var idx VariantIndex
	file := d.filename(KindVariantIndex, "")
	if !s.load(d, KindVariantIndex, file, &idx) {
		return nil, false
	}
	if idx.Entries == nil {
		s.quarantine(file, "variant index without entries")
		return nil, false
	}
	return &idx, true
}

// SaveVariantIndex persists the per-variant index under the key digest,
// merging on save: what reaches disk is the union of idx and the entries
// already recorded there, computed under a per-digest lock shared by every
// Store in the process. A plain overwrite would make concurrent writers —
// two engines, or two service handlers resolving different variants of one
// digest — a last-writer-wins read-modify-write race that silently drops
// index membership (the variant file survives but is never consulted, so the
// variant is re-measured forever). Across processes the atomic rename keeps
// the index well-formed and the reload-right-before-save merge shrinks the
// race window to the save itself; a lost entry there only costs re-measuring
// that variant once.
//
// Merge semantics for segments: a name the incoming index lists without a
// segment ref was (re)written as a loose file, which supersedes any packed
// record of the same name; a name with a ref was packed. Names the incoming
// index does not list keep their on-disk state.
//
// When the merged index accumulates CompactAfter loose files, they are
// compacted into a packed segment before the lock is released.
func (s *Store) SaveVariantIndex(d Digest, idx *VariantIndex) error {
	lock := s.idxLock(d)
	lock.Lock()
	defer lock.Unlock()
	merged, err := s.mergeVariantIndexLocked(d, idx)
	if err != nil {
		return err
	}
	if s.compactAfter > 0 && merged.loose() >= s.compactAfter {
		if err := s.compactLocked(d, merged); err != nil {
			// Compaction is an optimization: its failure must not fail the
			// save that triggered it. The loose files are all still valid.
			s.logf("store: compacting %s: %v", d.Prefix(), err)
		}
	}
	return nil
}

// mergeVariantIndexLocked merges idx into the on-disk index and saves the
// union. Caller holds the digest lock.
func (s *Store) mergeVariantIndexLocked(d Digest, idx *VariantIndex) (*VariantIndex, error) {
	merged := NewVariantIndex()
	merged.Digest = d.String()
	if cur, ok := s.LoadVariantIndex(d); ok {
		merged.Seq = cur.Seq
		for name, present := range cur.Entries {
			if present {
				merged.Entries[name] = true
			}
		}
		for name, ref := range cur.Segments {
			if merged.Entries[name] {
				if merged.Segments == nil {
					merged.Segments = make(map[string]SegmentRef)
				}
				merged.Segments[name] = ref
			}
		}
	}
	if idx != nil {
		if idx.Seq > merged.Seq {
			merged.Seq = idx.Seq
		}
		for name, present := range idx.Entries {
			if !present {
				continue
			}
			merged.Entries[name] = true
			if ref, ok := idx.Segments[name]; ok {
				if merged.Segments == nil {
					merged.Segments = make(map[string]SegmentRef)
				}
				merged.Segments[name] = ref
			} else {
				// A fresh loose record supersedes a packed one.
				delete(merged.Segments, name)
			}
		}
	}
	if err := s.save(d, KindVariantIndex, d.filename(KindVariantIndex, ""), merged); err != nil {
		return nil, err
	}
	return merged, nil
}

// LoadVariant returns the cached measurement record of one instruction
// variant, or ok == false on any kind of miss. The loose file is tried
// first (a fresh loose record supersedes a packed one), then the index's
// segment ref. Records round-trip exactly, like whole-ISA results. Bulk
// callers should use LoadVariants, which reads the index once and each
// segment file at most once.
func (s *Store) LoadVariant(d Digest, name string) (*core.InstrResult, bool) {
	if rec, ok := s.loadLooseVariant(d, name); ok {
		return rec, true
	}
	idx, ok := s.LoadVariantIndex(d)
	if !ok {
		return nil, false
	}
	ref, packed := idx.Segments[name]
	if !packed {
		return nil, false
	}
	out := make(map[string]*core.InstrResult, 1)
	s.loadSegmentRecords(idx, ref.File, []string{name}, out)
	rec, ok := out[name]
	return rec, ok
}

// loadLooseVariant reads one loose per-variant file.
func (s *Store) loadLooseVariant(d Digest, name string) (*core.InstrResult, bool) {
	var rec core.InstrResult
	file := d.VariantFilename(name)
	if !s.load(d, KindVariant, file, &rec) {
		return nil, false
	}
	// A record that does not name the requested variant belongs to a
	// different universe (hash collision or tampering). It must not silently
	// shadow the slot — that would re-measure the variant forever —
	// so it is quarantined and counted like any other corruption.
	if rec.Name != name {
		s.quarantine(file, fmt.Sprintf("variant entry names %q, expected %q", rec.Name, name))
		return nil, false
	}
	return &rec, true
}

// SaveVariant persists the measurement record of one instruction variant as
// a loose file. The digest lock coordinates with eviction and compaction, so
// a digest is never evicted mid-write.
func (s *Store) SaveVariant(d Digest, name string, rec *core.InstrResult) error {
	lock := s.idxLock(d)
	lock.Lock()
	defer lock.Unlock()
	return s.save(d, KindVariant, d.VariantFilename(name), rec)
}

// corruptSuffix marks quarantined files; staleTmpAge bounds how long temp
// and quarantine debris survives sweeps.
const corruptSuffix = ".corrupt"

// staleTmpAge is how old "*.tmp" and "*.corrupt" debris must be before the
// sweep collects it. In-flight saves hold their temp file for milliseconds,
// so the age gate keeps the sweep from unlinking a live writer's file —
// another store over the same directory may be mid-save right now — while
// still collecting what crashed writers left behind; quarantined files
// likewise stay inspectable for a while before they are garbage-collected.
const staleTmpAge = time.Hour

// suffix helpers shared by the sweep and the classifier.
func isTmp(name string) bool     { return strings.HasSuffix(name, ".tmp") }
func isCorrupt(name string) bool { return strings.HasSuffix(name, corruptSuffix) }
