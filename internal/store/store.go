// Package store is the persistent result store of the characterization
// engine: it caches discovered blocking-instruction sets, whole-ISA
// characterization results and individual per-variant measurements across
// process runs, so the CLI tools do not have to re-measure from scratch on
// every invocation.
//
// Entries are keyed by a content hash of everything a result depends on: the
// microarchitecture generation, the measurement-backend fingerprint
// (name@version), the measurement-protocol configuration, the full ISA
// variant set, and a scope string describing what was computed (blocking
// discovery vs. a characterization run and its options). Files are written
// atomically (temp file + rename) inside a versioned JSON envelope. Every
// load failure — missing file, unreadable file, corrupt JSON, version or
// kind mismatch, unknown instruction variant — is reported as a plain cache
// miss so callers silently fall through to recomputation.
//
// The store has three tiers:
//
//   - blocking sets (KindBlocking), one entry per generation;
//   - whole-ISA results (KindResult), one entry per run configuration —
//     the fast path for exact repeat runs;
//   - per-variant entries (KindVariant), one entry per instruction variant
//     under a versioned index (KindVariantIndex) — the incremental tier:
//     evicting or invalidating one variant only costs re-measuring that
//     variant, and runs with different variant selections share entries.
//
//uopslint:deterministic
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
)

// Version is the on-disk format version. Bump it whenever the payload
// structures or the key derivation change incompatibly; old files then read
// as misses and are recomputed. (v2: backend fingerprint in the key,
// per-variant tier.)
const Version = 2

// Kinds of stored entries.
const (
	KindBlocking     = "blocking"
	KindResult       = "result"
	KindVariant      = "variant"
	KindVariantIndex = "varindex"
)

// Key identifies a cached entry by content: everything the cached value
// depends on goes into the hash, so a change to any component makes old
// entries unreachable instead of stale.
type Key struct {
	// Arch is the microarchitecture generation name.
	Arch string
	// Backend is the measurement-backend fingerprint ("name@version") the
	// results were measured on. Different backends — or different revisions
	// of one backend — never share entries.
	Backend string
	// Measure is the measurement-protocol configuration the results were
	// obtained with.
	Measure measure.Config
	// Variants is the full ISA variant set of the generation (the universe
	// the computation ran over). Order does not matter; the hash sorts a
	// copy.
	Variants []string
	// Scope distinguishes computations over the same universe, e.g. the
	// characterization options of a run.
	Scope string
}

// Digest is the precomputed content hash of a Key. Hashing a key is linear
// in the size of its variant universe, so callers that address many
// per-variant entries (one filename per instruction variant) compute the
// digest once and derive each filename from it in O(1).
type Digest struct {
	sum [sha256.Size]byte
}

// Digest hashes the key's content: everything the cached values depend on,
// except the entry kind and the per-entry discriminator, which filename
// mixes in on top.
func (k Key) Digest() Digest {
	h := sha256.New()
	fmt.Fprintf(h, "store-v%d\narch=%s\nbackend=%s\nscope=%s\n", Version, k.Arch, k.Backend, k.Scope)
	fmt.Fprintf(h, "measure short=%d long=%d rep=%d warmup=%v overheadCycles=%d overheadUops=%d\n",
		k.Measure.ShortCopies, k.Measure.LongCopies, k.Measure.Repetitions,
		k.Measure.Warmup, k.Measure.OverheadCycles, k.Measure.OverheadUops)
	variants := append([]string(nil), k.Variants...)
	sort.Strings(variants)
	for _, v := range variants {
		fmt.Fprintf(h, "variant=%s\n", v)
	}
	var d Digest
	h.Sum(d.sum[:0])
	return d
}

// String renders the digest as lowercase hex. It identifies a run's exact
// content universe (generation, backend fingerprint, measurement protocol,
// variant set, options), which makes it usable as an HTTP entity tag: two
// responses with the same digest and representation format are byte-identical.
func (d Digest) String() string {
	return fmt.Sprintf("%x", d.sum)
}

// filename derives a store filename from the digest, an entry kind and an
// extra discriminator (the variant name of per-variant entries).
func (d Digest) filename(kind, extra string) string {
	h := sha256.New()
	h.Write(d.sum[:])
	fmt.Fprintf(h, "kind=%s\nextra=%s\n", kind, extra)
	return fmt.Sprintf("%s-%x.json", kind, h.Sum(nil)[:16])
}

// VariantFilename returns the store filename of the per-variant entry for
// one instruction variant. It is exported so tests and cache-maintenance
// tooling can evict individual variants.
func (d Digest) VariantFilename(name string) string {
	return d.filename(KindVariant, "variant="+name)
}

// filename derives the store filename for a kind from the key's content
// hash.
func (k Key) filename(kind string) string {
	return k.Digest().filename(kind, "")
}

// VariantFilename is the convenience form of Digest.VariantFilename for
// one-off lookups; loops over many variants should hold the Digest.
func (k Key) VariantFilename(name string) string {
	return k.Digest().VariantFilename(name)
}

// envelope is the on-disk wrapper around every payload.
type envelope struct {
	Version int             `json:"version"`
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Store is a directory of cached characterization results.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if necessary.
// Stale temporary files left behind by writers that died between CreateTemp
// and the atomic rename are swept away on open.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	s.sweepTmp()
	return s, nil
}

// staleTmpAge is how old a "*.tmp" file must be before the sweep treats it
// as debris. In-flight saves hold their temp file for milliseconds, so the
// age gate keeps the sweep from unlinking a live writer's file — another
// store over the same directory may be mid-save right now — while still
// collecting what crashed writers left behind.
const staleTmpAge = time.Hour

// sweepTmp deletes stale "*.tmp" files in the store directory. Completed
// writes leave no temporary file behind (save removes its temp file on every
// error path), so anything matching the pattern and older than staleTmpAge
// is debris from a writer that died between CreateTemp and the rename.
func (s *Store) sweepTmp() {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return
	}
	for _, m := range matches {
		info, err := os.Stat(m)
		//uopslint:ignore wallclock tmp-file age only gates garbage collection of crashed writers; it never reaches cache keys or measurement results
		if err != nil || time.Since(info.ModTime()) < staleTmpAge {
			continue
		}
		os.Remove(m)
	}
}

// idxLocks serializes index read-merge-write cycles per (directory, digest)
// across every Store instance in the process: two engines — or two service
// handlers — sharing one cache directory through separate Store values must
// still contend on the same lock, or concurrent merges could interleave and
// drop entries.
var idxLocks sync.Map // string (dir \x00 digest) → *sync.Mutex

func (s *Store) idxLock(d Digest) *sync.Mutex {
	key := filepath.Clean(s.dir) + "\x00" + string(d.sum[:])
	lock, _ := idxLocks.LoadOrStore(key, &sync.Mutex{})
	return lock.(*sync.Mutex)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// load reads and validates the entry in file, decoding the payload into out.
// Any failure is a miss.
func (s *Store) load(kind, file string, out interface{}) bool {
	data, err := os.ReadFile(filepath.Join(s.dir, file))
	if err != nil {
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false
	}
	if env.Version != Version || env.Kind != kind {
		return false
	}
	return json.Unmarshal(env.Payload, out) == nil
}

// save writes an entry atomically: the envelope is written to a temporary
// file in the store directory and renamed into place, so concurrent readers
// never observe a partial file. The temporary file is removed on every error
// path — a failed save must not leak it — and sweepTmp cleans up after
// writers that died before reaching either the rename or the cleanup.
func (s *Store) save(kind, file string, payload interface{}) (err error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: encoding %s entry: %w", kind, err)
	}
	data, err := json.Marshal(envelope{Version: Version, Kind: kind, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: encoding %s envelope: %w", kind, err)
	}
	tmp, err := os.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, file)); err != nil {
		return fmt.Errorf("store: writing %s entry: %w", kind, err)
	}
	return nil
}

// BlockingEntry is the serialized form of one blocking instruction: the
// instruction is stored by variant name and rehydrated against the target
// generation's instruction set.
type BlockingEntry struct {
	Combo       string  `json:"combo"`
	Instr       string  `json:"instr"`
	Ports       []int   `json:"ports"`
	Throughput  float64 `json:"throughput,omitempty"`
	UopsOnCombo float64 `json:"uopsOnCombo"`
}

// BlockingRecord is the serialized form of a core.BlockingSet.
type BlockingRecord struct {
	SSE []BlockingEntry `json:"sse"`
	AVX []BlockingEntry `json:"avx"`
}

// recordEntries flattens one combination map, sorted by combination key so
// the serialized form is deterministic.
func recordEntries(m map[string]core.BlockingInstr) []BlockingEntry {
	entries := make([]BlockingEntry, 0, len(m))
	for combo, b := range m {
		entries = append(entries, BlockingEntry{
			Combo:       combo,
			Instr:       b.Instr.Name,
			Ports:       b.Ports,
			Throughput:  b.Throughput,
			UopsOnCombo: b.UopsOnCombo,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Combo < entries[j].Combo })
	return entries
}

// RecordBlocking converts a blocking set into its serialized form.
func RecordBlocking(bs *core.BlockingSet) *BlockingRecord {
	return &BlockingRecord{SSE: recordEntries(bs.SSE), AVX: recordEntries(bs.AVX)}
}

// Restore rehydrates the record against an instruction set. It reports ok ==
// false if any recorded variant no longer exists in the set (the record then
// belongs to a different ISA and must be recomputed).
func (r *BlockingRecord) Restore(set *isa.Set) (*core.BlockingSet, bool) {
	restore := func(entries []BlockingEntry) (map[string]core.BlockingInstr, bool) {
		m := make(map[string]core.BlockingInstr, len(entries))
		for _, e := range entries {
			in := set.Lookup(e.Instr)
			if in == nil {
				return nil, false
			}
			m[e.Combo] = core.BlockingInstr{
				Instr:       in,
				Ports:       e.Ports,
				Throughput:  e.Throughput,
				UopsOnCombo: e.UopsOnCombo,
			}
		}
		return m, true
	}
	sse, ok := restore(r.SSE)
	if !ok {
		return nil, false
	}
	avx, ok := restore(r.AVX)
	if !ok {
		return nil, false
	}
	return &core.BlockingSet{SSE: sse, AVX: avx}, true
}

// LoadBlocking returns the cached blocking record for the key, or ok ==
// false on any kind of miss.
func (s *Store) LoadBlocking(key Key) (*BlockingRecord, bool) {
	var rec BlockingRecord
	if !s.load(KindBlocking, key.filename(KindBlocking), &rec) {
		return nil, false
	}
	return &rec, true
}

// SaveBlocking persists a blocking record under the key.
func (s *Store) SaveBlocking(key Key, rec *BlockingRecord) error {
	return s.save(KindBlocking, key.filename(KindBlocking), rec)
}

// LoadResult returns the cached whole-ISA characterization result for the
// key, or ok == false on any kind of miss. The result round-trips exactly:
// float64 values are encoded with full round-trip precision, so XML rendered
// from a cached result is byte-identical to XML rendered from the original.
func (s *Store) LoadResult(key Key) (*core.ArchResult, bool) {
	var res core.ArchResult
	if !s.load(KindResult, key.filename(KindResult), &res) {
		return nil, false
	}
	if res.Results == nil {
		return nil, false
	}
	return &res, true
}

// SaveResult persists a whole-ISA characterization result under the key.
func (s *Store) SaveResult(key Key, res *core.ArchResult) error {
	return s.save(KindResult, key.filename(KindResult), res)
}

// VariantIndex is the versioned directory of the per-variant tier for one
// key (one generation, backend, measurement configuration, universe and
// characterization scope): the set of variant names that have been
// measured. Entry filenames are derived from the key digest, not stored. A
// variant missing from the index — or whose entry file is missing or
// corrupt — is a per-variant miss; only that variant is re-measured.
type VariantIndex struct {
	Entries map[string]bool `json:"entries"`
}

// NewVariantIndex returns an empty index.
func NewVariantIndex() *VariantIndex {
	return &VariantIndex{Entries: make(map[string]bool)}
}

// Has reports whether the index lists a measured entry for the variant.
func (x *VariantIndex) Has(name string) bool {
	return x != nil && x.Entries[name]
}

// LoadVariantIndex returns the per-variant index for the key digest, or ok
// == false on any kind of miss (an absent index reads as an empty
// per-variant tier).
func (s *Store) LoadVariantIndex(d Digest) (*VariantIndex, bool) {
	var idx VariantIndex
	if !s.load(KindVariantIndex, d.filename(KindVariantIndex, ""), &idx) {
		return nil, false
	}
	if idx.Entries == nil {
		return nil, false
	}
	return &idx, true
}

// SaveVariantIndex persists the per-variant index under the key digest,
// merging on save: what reaches disk is the union of idx and the entries
// already recorded there, computed under a per-digest lock shared by every
// Store in the process. A plain overwrite would make concurrent writers —
// two engines, or two service handlers resolving different variants of one
// digest — a last-writer-wins read-modify-write race that silently drops
// index membership (the variant file survives but is never consulted, so the
// variant is re-measured forever). Across processes the atomic rename keeps
// the index well-formed and the reload-right-before-save merge shrinks the
// race window to the save itself; a lost entry there only costs re-measuring
// that variant once.
func (s *Store) SaveVariantIndex(d Digest, idx *VariantIndex) error {
	lock := s.idxLock(d)
	lock.Lock()
	defer lock.Unlock()
	merged := NewVariantIndex()
	if cur, ok := s.LoadVariantIndex(d); ok {
		for name, present := range cur.Entries {
			if present {
				merged.Entries[name] = true
			}
		}
	}
	if idx != nil {
		for name, present := range idx.Entries {
			if present {
				merged.Entries[name] = true
			}
		}
	}
	return s.save(KindVariantIndex, d.filename(KindVariantIndex, ""), merged)
}

// LoadVariant returns the cached measurement record of one instruction
// variant, or ok == false on any kind of miss. Records round-trip exactly,
// like whole-ISA results.
func (s *Store) LoadVariant(d Digest, name string) (*core.InstrResult, bool) {
	var rec core.InstrResult
	if !s.load(KindVariant, d.VariantFilename(name), &rec) {
		return nil, false
	}
	// A record that does not name the requested variant belongs to a
	// different universe (hash collision or tampering); treat it as a miss.
	if rec.Name != name {
		return nil, false
	}
	return &rec, true
}

// SaveVariant persists the measurement record of one instruction variant.
func (s *Store) SaveVariant(d Digest, name string, rec *core.InstrResult) error {
	return s.save(KindVariant, d.VariantFilename(name), rec)
}
