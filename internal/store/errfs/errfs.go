// Package errfs is the fault-injecting storefs.FS used by the store's
// durability tests: it performs real I/O under a real directory, but can be
// told to fail the Nth matching operation with a chosen error, to tear a
// write at a byte offset (the write reports success but only a prefix
// reaches the disk — the state a crash leaves behind when the file was never
// synced), and to simulate a process/machine crash after which every
// operation fails until the filesystem is rebuilt ("rebooted") over the same
// directory.
//
// Every durability claim the store makes ships with a test that forces the
// corresponding failure through this package; nothing here is used outside
// tests.
//
//uopslint:deterministic
package errfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"

	"uopsinfo/internal/store/storefs"
)

// Op names one storefs operation, for fault matching and op counting.
type Op string

// The operations faults can match. OpWrite matches individual Write calls on
// files created through CreateTemp; OpSync and OpClose likewise.
const (
	OpReadFile Op = "readfile"
	OpReadAt   Op = "readat"
	OpCreate   Op = "create"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpReadDir  Op = "readdir"
	OpSyncDir  Op = "syncdir"
)

// ErrInjected is the default error of a fired fault.
var ErrInjected = errors.New("errfs: injected fault")

// ErrCrashed is returned by every operation after a crash has been
// simulated, until the FS is rebuilt over the directory.
var ErrCrashed = errors.New("errfs: filesystem crashed")

// Fault describes one injected failure.
type Fault struct {
	// Op is the operation the fault fires on.
	Op Op
	// Path, if non-empty, restricts the fault to operations whose path (for
	// renames: either path) contains this substring.
	Path string
	// Countdown is how many matching operations succeed before the fault
	// fires: 0 or 1 fires on the next match, 2 on the second, and so on.
	Countdown int
	// Err is the error the fired fault returns; nil selects ErrInjected.
	Err error
	// TearAt, if > 0 on an OpWrite fault, makes the write report full
	// success while persisting only the first TearAt bytes of the call's
	// data; every later write to the same file is silently dropped. This is
	// the on-disk state a crash leaves when a file was written but never
	// synced. TearAt faults return no error.
	TearAt int
	// Sticky keeps the fault armed after it fires (e.g. a disk that stays
	// full); otherwise a fault fires once and is disarmed.
	Sticky bool
	// Crash simulates a process/machine crash when the fault fires: the
	// fired operation and every operation after it fail with ErrCrashed
	// until the FS is rebuilt over the directory.
	Crash bool
}

// FS is a fault-injecting storefs.FS over a real directory.
type FS struct {
	real storefs.OS

	mu      sync.Mutex
	crashed bool
	faults  []*Fault
	counts  map[Op]int
	torn    map[string]*tornState // path → tear state of open torn files
}

type tornState struct {
	limit   int // total bytes allowed through
	written int // bytes already persisted
}

// New returns a fault-free FS performing real I/O. Rebuilding a new FS over
// the same directory is how tests "reboot" after a crash.
func New() *FS {
	return &FS{counts: make(map[Op]int), torn: make(map[string]*tornState)}
}

// Inject arms a fault.
func (f *FS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := fault
	if c.Countdown < 1 {
		c.Countdown = 1
	}
	f.faults = append(f.faults, &c)
}

// Crash simulates an immediate crash: every subsequent operation fails with
// ErrCrashed.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Heal clears the crashed state and disarms every fault (the disk
// "recovered", e.g. space was freed after ENOSPC).
func (f *FS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.faults = nil
}

// Ops returns how many operations of the kind have been attempted.
func (f *FS) Ops(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check counts the operation, then reports the error to inject (nil for
// none). tear is non-zero when an armed TearAt write fault fired.
func (f *FS) check(op Op, path string) (err error, tear int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.crashed {
		return ErrCrashed, 0
	}
	for i, fault := range f.faults {
		if fault.Op != op {
			continue
		}
		if fault.Path != "" && !strings.Contains(path, fault.Path) {
			continue
		}
		fault.Countdown--
		if fault.Countdown > 0 {
			continue
		}
		if !fault.Sticky {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
		} else {
			fault.Countdown = 1
		}
		if fault.Crash {
			f.crashed = true
		}
		if fault.TearAt > 0 {
			f.torn[path] = &tornState{limit: fault.TearAt}
			return nil, fault.TearAt
		}
		if fault.Err != nil {
			return fault.Err, 0
		}
		return ErrInjected, 0
	}
	return nil, 0
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	if err, _ := f.check(OpReadFile, path); err != nil {
		return nil, err
	}
	return f.real.ReadFile(path)
}

func (f *FS) ReadAt(path string, offset, length int64) ([]byte, error) {
	if err, _ := f.check(OpReadAt, path); err != nil {
		return nil, err
	}
	return f.real.ReadAt(path, offset, length)
}

func (f *FS) CreateTemp(dir, pattern string) (storefs.File, error) {
	if err, _ := f.check(OpCreate, dir); err != nil {
		return nil, err
	}
	file, err := f.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, file: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, oldpath+"\x00"+newpath); err != nil {
		return err
	}
	f.mu.Lock()
	// A torn temp file keeps its tear state under its final name, so the
	// renamed-in entry is the torn one.
	if ts, ok := f.torn[oldpath]; ok {
		delete(f.torn, oldpath)
		f.torn[newpath] = ts
	}
	f.mu.Unlock()
	return f.real.Rename(oldpath, newpath)
}

func (f *FS) Remove(path string) error {
	if err, _ := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.real.Remove(path)
}

func (f *FS) Stat(path string) (fs.FileInfo, error) {
	if err, _ := f.check(OpStat, path); err != nil {
		return nil, err
	}
	return f.real.Stat(path)
}

func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if err, _ := f.check(OpReadDir, dir); err != nil {
		return nil, err
	}
	return f.real.ReadDir(dir)
}

func (f *FS) MkdirAll(dir string, perm fs.FileMode) error {
	// Directory creation is not a faultable store operation (Open would just
	// fail before any durability claim applies), but a crash still stops it.
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.real.MkdirAll(dir, perm)
}

func (f *FS) SyncDir(dir string) error {
	if err, _ := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return f.real.SyncDir(dir)
}

// faultFile intercepts Write/Sync/Close of a temp file, applying write
// faults (including torn writes) by the file's current path.
type faultFile struct {
	fs   *FS
	file storefs.File
}

func (w *faultFile) Name() string { return w.file.Name() }

func (w *faultFile) Write(p []byte) (int, error) {
	err, tear := w.fs.check(OpWrite, w.file.Name())
	if err != nil {
		return 0, err
	}
	w.fs.mu.Lock()
	ts := w.fs.torn[w.file.Name()]
	w.fs.mu.Unlock()
	if tear > 0 || ts != nil {
		// Torn file: persist only what the tear allows, report full success.
		allow := 0
		if ts != nil {
			if remaining := ts.limit - ts.written; remaining > 0 {
				allow = remaining
				if allow > len(p) {
					allow = len(p)
				}
			}
		}
		if allow > 0 {
			if _, werr := w.file.Write(p[:allow]); werr != nil {
				return 0, werr
			}
			w.fs.mu.Lock()
			ts.written += allow
			w.fs.mu.Unlock()
		}
		return len(p), nil
	}
	return w.file.Write(p)
}

func (w *faultFile) Sync() error {
	if err, _ := w.fs.check(OpSync, w.file.Name()); err != nil {
		return err
	}
	return w.file.Sync()
}

func (w *faultFile) Close() error {
	if err, _ := w.fs.check(OpClose, w.file.Name()); err != nil {
		w.file.Close()
		return err
	}
	return w.file.Close()
}

// String renders the armed faults, for test diagnostics.
func (f *FS) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return "errfs[crashed]"
	}
	return fmt.Sprintf("errfs[%d faults armed]", len(f.faults))
}
