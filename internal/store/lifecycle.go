package store

// This file is the store's lifecycle machinery: per-digest size accounting,
// the startup integrity sweep that rebuilds it (validating envelopes and
// collecting debris on the way), and budget-driven LRU eviction of whole
// digests. None of it affects what a healthy, under-budget store returns —
// it only decides which cold entries stop existing.

import (
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// now is the package's single wall-clock read. Recency only orders LRU
// eviction and gates debris collection; it never reaches cache keys,
// digests or measured results, which stay pure functions of their inputs.
func now() time.Time {
	return time.Now() //uopslint:ignore wallclock recency only orders LRU eviction and debris-age gating; it never reaches cache keys or measurement results
}

// tiers of the size accounting. The variant index is part of the variant
// tier: it is per-variant metadata and is evicted with it.
type tier int

const (
	tierBlocking tier = iota
	tierResult
	tierVariant
	tierSegment
	tierCount
)

func kindTier(kind string) tier {
	switch kind {
	case KindBlocking:
		return tierBlocking
	case KindResult:
		return tierResult
	case KindSegment:
		return tierSegment
	default:
		return tierVariant
	}
}

type tierAcct struct {
	bytes int64
	files int64
}

// group is the accounting of one digest: every store file carrying the
// digest's filename prefix, and when the digest was last read or written
// (the LRU clock of eviction).
type group struct {
	files   map[string]int64 // filename → size
	lastUse time.Time
}

// variantOnly reports whether the group holds only per-variant-tier files
// (variants, the index, segments) — the groups eviction prefers, because
// losing them costs incremental re-measurement rather than a whole-ISA
// result.
func (g *group) variantOnly() bool {
	for name := range g.files {
		_, kind, _ := classify(name)
		switch kindTier(kind) {
		case tierBlocking, tierResult:
			return false
		}
	}
	return true
}

// fileClass is what a directory entry is to the sweep.
type fileClass int

const (
	classEntry   fileClass = iota // JSON entry of a current-format kind
	classSegment                  // packed segment file
	classTmp                      // in-flight or crashed writer's temp file
	classCorrupt                  // quarantined corruption
	classDebris                   // nothing the current format produces
)

// classify parses a store filename: current-format entries are
// "<kind>-<digest prefix>-<entry hash>.json", segments are
// "segment-<digest prefix>-<seq>.seg". Anything else — including entries of
// older store versions — is temp, quarantine or stale-format debris.
func classify(name string) (class fileClass, kind, prefix string) {
	switch {
	case isTmp(name):
		return classTmp, "", ""
	case isCorrupt(name):
		return classCorrupt, "", ""
	}
	if rest, ok := strings.CutPrefix(name, KindSegment+"-"); ok {
		if seq, ok := strings.CutSuffix(rest, ".seg"); ok {
			if pfx, num, ok := strings.Cut(seq, "-"); ok && isHex(pfx) && len(pfx) == prefixLen && isDigits(num) {
				return classSegment, KindSegment, pfx
			}
		}
		return classDebris, "", ""
	}
	base, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return classDebris, "", ""
	}
	for _, k := range []string{KindBlocking, KindResult, KindVariantIndex, KindVariant} {
		if rest, ok := strings.CutPrefix(base, k+"-"); ok {
			if pfx, h, ok := strings.Cut(rest, "-"); ok && isHex(pfx) && len(pfx) == prefixLen && isHex(h) {
				return classEntry, k, pfx
			}
			return classDebris, "", ""
		}
	}
	return classDebris, "", ""
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// DigestFromHex parses the hex form of a digest (what Digest.String
// renders and VariantIndex.Digest records).
func DigestFromHex(s string) (Digest, bool) {
	var d Digest
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(d.sum) {
		return Digest{}, false
	}
	copy(d.sum[:], raw)
	return d, true
}

// ensureGroupLocked returns the digest group, creating it empty.
func (s *Store) ensureGroupLocked(prefix string) *group {
	g := s.groups[prefix]
	if g == nil {
		g = &group{files: make(map[string]int64)}
		s.groups[prefix] = g
	}
	return g
}

// account records a completed write of file (newSize bytes) in the digest
// group and per-tier totals, refreshes the group's LRU clock, and runs
// eviction if the write pushed the store past a budget. The writing digest
// itself is never an eviction candidate.
func (s *Store) account(prefix, kind, file string, newSize int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.ensureGroupLocked(prefix)
	t := kindTier(kind)
	if old, ok := g.files[file]; ok {
		s.tiers[t].bytes -= old
		s.tiers[t].files--
	}
	g.files[file] = newSize
	g.lastUse = now()
	s.tiers[t].bytes += newSize
	s.tiers[t].files++
	s.evictLocked(prefix)
}

// unaccountLocked forgets a removed (or quarantined) file. Files the store
// never accounted — another process's writes — are ignored; budgets are
// per-accounting-view, not a distributed invariant.
func (s *Store) unaccountLocked(file string) int64 {
	class, kind, prefix := classify(file)
	if class != classEntry && class != classSegment {
		return 0
	}
	g := s.groups[prefix]
	if g == nil {
		return 0
	}
	size, ok := g.files[file]
	if !ok {
		return 0
	}
	delete(g.files, file)
	t := kindTier(kind)
	s.tiers[t].bytes -= size
	s.tiers[t].files--
	if len(g.files) == 0 {
		delete(s.groups, prefix)
	}
	return size
}

// touch refreshes the LRU clock of a digest the caller just read. Only
// digests the accounting knows are touched; reads of files another process
// wrote do not conjure empty groups.
func (s *Store) touch(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g := s.groups[prefix]; g != nil {
		g.lastUse = now()
	}
}

// totalsLocked sums the per-tier accounting.
func (s *Store) totalsLocked() (bytes, files int64) {
	for _, t := range s.tiers {
		bytes += t.bytes
		files += t.files
	}
	return bytes, files
}

// overBudgetLocked reports whether a configured budget is exceeded.
func (s *Store) overBudgetLocked() bool {
	if s.maxBytes <= 0 && s.maxFiles <= 0 {
		return false
	}
	bytes, files := s.totalsLocked()
	return (s.maxBytes > 0 && bytes > s.maxBytes) || (s.maxFiles > 0 && files > s.maxFiles)
}

// evictLocked brings the store back under budget by evicting whole digests
// least-recently-used: first only their per-variant tier (variants, index,
// segments — whose loss costs incremental re-measurement), then, if still
// over, everything. A digest whose per-digest lock is held is skipped —
// eviction never races a writer mid-save or a compaction mid-pack — as is
// skip, the digest whose write triggered the check (evicting what was just
// written would turn an undersized budget into a thrash loop).
func (s *Store) evictLocked(skip string) {
	if !s.overBudgetLocked() {
		return
	}
	type cand struct {
		prefix  string
		lastUse time.Time
	}
	var cands []cand
	for prefix, g := range s.groups {
		if prefix == skip {
			continue
		}
		cands = append(cands, cand{prefix, g.lastUse})
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].lastUse.Equal(cands[j].lastUse) {
			return cands[i].lastUse.Before(cands[j].lastUse)
		}
		return cands[i].prefix < cands[j].prefix
	})
	for _, variantOnly := range []bool{true, false} {
		for _, c := range cands {
			if !s.overBudgetLocked() {
				return
			}
			if s.groups[c.prefix] == nil {
				continue // fully evicted by the previous pass
			}
			s.evictGroupLocked(c.prefix, variantOnly)
		}
	}
}

// evictGroupLocked evicts one digest's files (only its per-variant tier
// when variantOnly). The per-digest lock is TryLocked: if a writer or
// compaction holds it, the digest is simply skipped this round.
func (s *Store) evictGroupLocked(prefix string, variantOnly bool) {
	lock := s.prefixLock(prefix)
	if !lock.TryLock() {
		return
	}
	defer lock.Unlock()
	g := s.groups[prefix]
	if g == nil {
		return
	}
	names := make([]string, 0, len(g.files))
	for name := range g.files {
		names = append(names, name)
	}
	sort.Strings(names)
	evicted := 0
	for _, name := range names {
		_, kind, _ := classify(name)
		if variantOnly {
			switch kindTier(kind) {
			case tierBlocking, tierResult:
				continue
			}
		}
		err := s.fsys.Remove(filepath.Join(s.dir, name))
		if err != nil {
			s.logf("store: evicting %s: %v", name, err)
		}
		// Forget the file either way: if the remove failed the file is
		// unreachable debris at worst, and the next sweep recounts.
		s.stats.EvictedBytes += s.unaccountLocked(name)
		s.stats.EvictedFiles++
		evicted++
	}
	if evicted > 0 && s.groups[prefix] == nil {
		s.stats.EvictedDigests++
		s.logf("store: evicted digest %s (budget)", prefix)
	}
}

// sweep is the startup integrity pass: it rebuilds the size accounting from
// the directory, validates every entry's envelope (quarantining corruption
// so it stops shadowing slots), collects debris — stale temp files of
// crashed writers, aged-out quarantine files, stale-format entries,
// segments no index references, loose variant files superseded by packed
// segment records — and returns how many debris files it removed.
func (s *Store) sweep() int {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		s.logf("store: sweep: listing %s: %v", s.dir, err)
		return 0
	}
	debris := 0
	cutoff := now().Add(-staleTmpAge)
	var indexFiles []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		class, kind, prefix := classify(name)
		switch class {
		case classTmp, classCorrupt:
			info, err := ent.Info()
			if err != nil {
				// A debris candidate that cannot be statted is left for the
				// next sweep — but never silently.
				s.logf("store: sweep: stat %s: %v", name, err)
				continue
			}
			if info.ModTime().Before(cutoff) {
				if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
					s.logf("store: sweep: removing %s: %v", name, err)
				} else {
					debris++
				}
			}
		case classDebris:
			if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
				s.logf("store: sweep: removing %s: %v", name, err)
			} else {
				debris++
			}
		case classEntry, classSegment:
			info, err := ent.Info()
			if err != nil {
				s.logf("store: sweep: stat %s: %v", name, err)
				continue
			}
			data, err := s.fsys.ReadFile(filepath.Join(s.dir, name))
			if err != nil {
				s.logf("store: sweep: reading %s: %v", name, err)
				continue
			}
			if !validEnvelope(data, kind, class == classSegment) {
				if newerVersion(firstLine(data)) {
					continue // a newer process's file; not ours to touch
				}
				s.quarantine(name, "invalid envelope found by startup sweep")
				continue
			}
			s.mu.Lock()
			g := s.ensureGroupLocked(prefix)
			g.files[name] = info.Size()
			if g.lastUse.Before(info.ModTime()) {
				g.lastUse = info.ModTime()
			}
			t := kindTier(kind)
			s.tiers[t].bytes += info.Size()
			s.tiers[t].files++
			s.mu.Unlock()
			if kind == KindVariantIndex {
				indexFiles = append(indexFiles, name)
			}
		}
	}
	debris += s.sweepSegments(indexFiles)
	s.mu.Lock()
	s.stats.SweptDebris += int64(debris)
	s.mu.Unlock()
	return debris
}

// validEnvelope reports whether data is a well-formed current-version
// envelope of the expected kind. For segments only the header line is
// inspected; record lines are validated by reads.
func validEnvelope(data []byte, kind string, segment bool) bool {
	if segment {
		data = firstLine(data)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false
	}
	return env.Version == Version && env.Kind == kind && len(env.Payload) > 0
}

func firstLine(data []byte) []byte {
	for i, b := range data {
		if b == '\n' {
			return data[:i]
		}
	}
	return data
}

// sweepSegments runs the crash-mid-compaction recovery: with the accounting
// built, each variant index says which segment files exist on purpose and
// which loose variant files a completed compaction superseded. A segment no
// index references (compaction died before the index write) and a loose
// file whose record is packed (compaction died before the unlink) are both
// debris. Segments of digests with no readable index at all are unreachable
// and removed too.
func (s *Store) sweepSegments(indexFiles []string) int {
	debris := 0
	referenced := make(map[string]bool) // segment files some index points into
	var superseded []string             // loose files packed into segments
	sort.Strings(indexFiles)
	for _, name := range indexFiles {
		data, err := s.fsys.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			s.logf("store: sweep: reading %s: %v", name, err)
			continue
		}
		var idx VariantIndex
		if !s.decode(data, KindVariantIndex, &idx) {
			continue // already handled by envelope validation
		}
		d, ok := DigestFromHex(idx.Digest)
		for varName, ref := range idx.Segments {
			referenced[ref.File] = true
			if ok && idx.Entries[varName] {
				superseded = append(superseded, d.VariantFilename(varName))
			}
		}
	}
	sort.Strings(superseded)
	s.mu.Lock()
	var remove []string
	for _, g := range s.groups {
		for name := range g.files {
			if class, _, _ := classify(name); class == classSegment && !referenced[name] {
				remove = append(remove, name)
			}
		}
	}
	for _, name := range superseded {
		if class, _, prefix := classify(name); class == classEntry {
			if g := s.groups[prefix]; g != nil {
				if _, ok := g.files[name]; ok {
					remove = append(remove, name)
				}
			}
		}
	}
	sort.Strings(remove)
	for _, name := range remove {
		if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
			s.logf("store: sweep: removing %s: %v", name, err)
			continue
		}
		s.unaccountLocked(name)
		debris++
	}
	s.mu.Unlock()
	return debris
}
