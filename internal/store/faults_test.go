package store

// Fault-injection suite: every durability claim the store makes is forced
// here through errfs rather than asserted. The torn write, the full disk,
// the writer killed between temp-write, fsync and rename, the crash in the
// middle of segment compaction, the disk that keeps failing until the store
// degrades — each test creates the exact on-disk state the failure leaves
// behind, reopens the store over it and checks that no record is lost
// silently, no corruption is served, and recovery costs at most one
// re-measurement per interrupted entry.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/store/errfs"
)

// openFaulty opens a store over a fault-injecting filesystem.
func openFaulty(t *testing.T, dir string, opts Options) (*Store, *errfs.FS) {
	t.Helper()
	fsys := errfs.New()
	opts.FS = fsys
	opts.Log = t.Logf
	s, err := OpenOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, fsys
}

// reboot simulates a process restart after a crash: a fresh filesystem (the
// crashed state does not survive) and a fresh store over the same directory,
// whose startup sweep must restore consistency.
func reboot(t *testing.T, dir string, opts Options) (*Store, *errfs.FS) {
	t.Helper()
	return openFaulty(t, dir, opts)
}

func testRecord(name string) *core.InstrResult {
	return &core.InstrResult{
		Name:       name,
		Mnemonic:   name,
		Uops:       2,
		Ports:      core.PortUsage{"0156": 2},
		Throughput: core.ThroughputResult{Measured: 0.5, MeasuredSequenceLength: 8},
	}
}

// TestTornWriteQuarantinedOnRead forces the crash state DurabilityRename
// admits: a write that reported success but only persisted a prefix (the
// file was renamed into place but never synced). The torn entry must read as
// a miss, be counted and quarantined — and the slot must be re-savable.
func TestTornWriteQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, fsys := openFaulty(t, dir, Options{})
	key := testKey("blocking")

	fsys.Inject(errfs.Fault{Op: errfs.OpWrite, Path: "blocking-", TearAt: 10})
	if err := s.SaveBlocking(key, &BlockingRecord{}); err != nil {
		t.Fatalf("torn save reported the tear: %v", err)
	}
	// The file landed under its final name, 10 bytes long.
	info, err := os.Stat(filepath.Join(dir, key.filename(KindBlocking)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 10 {
		t.Fatalf("torn entry is %d bytes, want the 10-byte prefix", info.Size())
	}

	if _, ok := s.LoadBlocking(key); ok {
		t.Error("torn entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("torn entry not counted as corruption: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, key.filename(KindBlocking)+corruptSuffix)); err != nil {
		t.Errorf("torn entry not quarantined: %v", err)
	}
	// Exactly one re-measurement: the re-save recovers the slot.
	if err := s.SaveBlocking(key, &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadBlocking(key); !ok {
		t.Error("re-save over the torn entry did not recover the slot")
	}
}

// TestDurableSaveSurvivesCrash pins what DurabilityFull buys: the entry is
// fsynced before the rename and the directory synced after it, so a
// completed save is readable after a crash — while DurabilityRename performs
// no sync at all.
func TestDurableSaveSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, fsys := openFaulty(t, dir, Options{Durability: DurabilityFull})
	key := testKey("blocking")
	rec := &BlockingRecord{SSE: []BlockingEntry{{Combo: "0156", Instr: "ADD_R64_R64", UopsOnCombo: 1}}}
	if err := s.SaveBlocking(key, rec); err != nil {
		t.Fatal(err)
	}
	if fsys.Ops(errfs.OpSync) == 0 || fsys.Ops(errfs.OpSyncDir) == 0 {
		t.Fatalf("durable save ran %d file syncs and %d dir syncs, want both > 0",
			fsys.Ops(errfs.OpSync), fsys.Ops(errfs.OpSyncDir))
	}
	fsys.Crash()

	after, _ := reboot(t, dir, Options{Durability: DurabilityFull})
	got, ok := after.LoadBlocking(key)
	if !ok {
		t.Fatal("durably saved entry lost across a crash")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("entry did not survive the crash intact:\ngot  %+v\nwant %+v", got, rec)
	}

	cli, clifs := openFaulty(t, t.TempDir(), Options{})
	if err := cli.SaveBlocking(key, rec); err != nil {
		t.Fatal(err)
	}
	if n := clifs.Ops(errfs.OpSync) + clifs.Ops(errfs.OpSyncDir); n != 0 {
		t.Errorf("rename-only store performed %d sync operations, want 0", n)
	}
}

// TestCrashMidSaveCostsOneRemeasurement kills the writer at each step of the
// atomic write — mid-write, after the write but before the fsync completes,
// and at the rename — and checks the reopened store is consistent: the
// interrupted entry reads as a plain miss (one re-measurement), a re-save
// recovers it, and the dead writer's temp file is collected once stale.
func TestCrashMidSaveCostsOneRemeasurement(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   errfs.Op
	}{
		{"killed mid-write", errfs.OpWrite},
		{"killed during fsync", errfs.OpSync},
		{"killed at rename", errfs.OpRename},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, fsys := openFaulty(t, dir, Options{Durability: DurabilityFull})
			key := testKey("blocking")
			fsys.Inject(errfs.Fault{Op: tc.op, Path: "blocking-", Crash: true})
			if err := s.SaveBlocking(key, &BlockingRecord{}); err == nil {
				t.Fatal("save across a crash reported success")
			}

			after, _ := reboot(t, dir, Options{Durability: DurabilityFull})
			if _, ok := after.LoadBlocking(key); ok {
				t.Fatal("interrupted save left a readable entry")
			}
			if st := after.Stats(); st.Corrupt != 0 {
				t.Errorf("interrupted save read as corruption, want a plain miss: %+v", st)
			}
			// Exactly one re-measurement makes the store whole again.
			if err := after.SaveBlocking(key, &BlockingRecord{}); err != nil {
				t.Fatal(err)
			}
			if _, ok := after.LoadBlocking(key); !ok {
				t.Error("re-save after the crash did not recover the entry")
			}

			// The dead writer's temp file survives sweeps while fresh (it could
			// be a live writer's) and is collected once stale. A dead process
			// cannot clean up after itself, whichever step it died on.
			tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if err != nil {
				t.Fatal(err)
			}
			if len(tmps) != 1 {
				t.Fatalf("crash left %d temp files, want 1", len(tmps))
			}
			old := time.Now().Add(-2 * staleTmpAge)
			if err := os.Chtimes(tmps[0], old, old); err != nil {
				t.Fatal(err)
			}
			swept, _ := reboot(t, dir, Options{Durability: DurabilityFull})
			if _, err := os.Stat(tmps[0]); !os.IsNotExist(err) {
				t.Errorf("stale temp file of the dead writer survived the sweep (stat err: %v)", err)
			}
			if st := swept.Stats(); st.SweptDebris != 1 {
				t.Errorf("sweep reported %d debris files, want 1", st.SweptDebris)
			}
		})
	}
}

// TestENOSPCDegradesToReadOnly forces a full disk mid-save: the store must
// degrade to read-only immediately (not after failThreshold attempts — a
// full disk does not get better by retrying), keep serving reads, suppress
// further saves without failing them, and recover through a probe once
// space is back.
func TestENOSPCDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, fsys := openFaulty(t, dir, Options{})
	cached := testKey("blocking")
	if err := s.SaveBlocking(cached, &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}

	fsys.Inject(errfs.Fault{Op: errfs.OpWrite, Err: syscall.ENOSPC, Sticky: true})
	victim := testKey("result")
	if err := s.SaveResult(victim, core.NewArchResult("Skylake")); err == nil {
		t.Fatal("save on a full disk reported success")
	}
	if mode := s.Mode(); mode != ModeReadOnly {
		t.Fatalf("one ENOSPC left mode %q, want immediate %q", mode, ModeReadOnly)
	}
	if st := s.Stats(); st.Degradations != 1 {
		t.Errorf("degradations = %d, want 1", st.Degradations)
	}

	// Degraded saves are suppressed, not failed: a lost cache write must not
	// fail the request that triggered it.
	if err := s.SaveResult(victim, core.NewArchResult("Skylake")); err != nil {
		t.Fatalf("suppressed save returned an error: %v", err)
	}
	if st := s.Stats(); st.SavesSuppressed == 0 {
		t.Error("suppressed save not counted")
	}
	// Reads still serve: read-only, not dead.
	if _, ok := s.LoadBlocking(cached); !ok {
		t.Error("read-only store stopped serving cached entries")
	}

	// Space comes back; within probeEvery attempts a deterministic probe runs
	// for real, succeeds, and restores write capability.
	fsys.Heal()
	for i := 0; i < probeEvery+1; i++ {
		if err := s.SaveResult(victim, core.NewArchResult("Skylake")); err != nil {
			t.Fatalf("save after heal: %v", err)
		}
	}
	if mode := s.Mode(); mode != ModeOK {
		t.Errorf("store did not recover after the disk healed: mode %q", mode)
	}
	if _, ok := s.LoadResult(victim); !ok {
		t.Error("post-recovery save did not land")
	}
}

// TestRepeatedSaveFailuresDegrade checks the generic-error path to
// read-only: errors that are not obviously terminal (unlike ENOSPC) must
// fail failThreshold consecutive saves before the store gives up on writes.
func TestRepeatedSaveFailuresDegrade(t *testing.T) {
	s, fsys := openFaulty(t, t.TempDir(), Options{})
	fsys.Inject(errfs.Fault{Op: errfs.OpRename, Path: "blocking-", Sticky: true})
	key := testKey("blocking")
	for i := 1; i < failThreshold; i++ {
		if err := s.SaveBlocking(key, &BlockingRecord{}); err == nil {
			t.Fatalf("save %d succeeded through the injected fault", i)
		}
		if mode := s.Mode(); mode != ModeOK {
			t.Fatalf("store degraded after %d failures, want %d", i, failThreshold)
		}
	}
	if err := s.SaveBlocking(key, &BlockingRecord{}); err == nil {
		t.Fatal("save succeeded through the injected fault")
	}
	if mode := s.Mode(); mode != ModeReadOnly {
		t.Errorf("mode %q after %d consecutive save failures, want %q", mode, failThreshold, ModeReadOnly)
	}
}

// TestReadFailuresDegradeToComputeOnly checks the deepest degradation: when
// reads themselves keep failing (not missing — failing), the store goes
// compute-only, loads report misses instead of errors, and a probe restores
// reads once the disk recovers.
func TestReadFailuresDegradeToComputeOnly(t *testing.T) {
	s, fsys := openFaulty(t, t.TempDir(), Options{})
	key := testKey("blocking")
	if err := s.SaveBlocking(key, &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}
	fsys.Inject(errfs.Fault{Op: errfs.OpReadFile, Path: "blocking-", Err: errors.New("io error"), Sticky: true})
	for i := 0; i < failThreshold; i++ {
		if _, ok := s.LoadBlocking(key); ok {
			t.Fatalf("load %d succeeded through the injected fault", i)
		}
	}
	if mode := s.Mode(); mode != ModeComputeOnly {
		t.Fatalf("mode %q after %d consecutive read failures, want %q", mode, failThreshold, ModeComputeOnly)
	}

	fsys.Heal()
	hit := false
	for i := 0; i < probeEvery+1; i++ {
		if _, ok := s.LoadBlocking(key); ok {
			hit = true
			break
		}
	}
	if !hit {
		t.Error("no read probe succeeded after the disk healed")
	}
	if mode := s.Mode(); mode != ModeOK {
		t.Errorf("store did not recover reads after the disk healed: mode %q", mode)
	}
}

// compactionFixture saves count loose variants under one digest and returns
// the digest, names and records; saving the index afterwards triggers
// compaction when CompactAfter <= count.
func compactionFixture(t *testing.T, s *Store, count int) (Digest, []string, map[string]*core.InstrResult) {
	t.Helper()
	dig := testKey("variant skipLatency=false").Digest()
	names := make([]string, 0, count)
	recs := make(map[string]*core.InstrResult, count)
	for i := 0; i < count; i++ {
		name := []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM", "SHL_R64_I8"}[i]
		rec := testRecord(name)
		if err := s.SaveVariant(dig, name, rec); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		recs[name] = rec
	}
	return dig, names, recs
}

func saveIndexFor(t *testing.T, s *Store, dig Digest, names []string) {
	t.Helper()
	idx := NewVariantIndex()
	for _, name := range names {
		idx.Entries[name] = true
	}
	if err := s.SaveVariantIndex(dig, idx); err != nil {
		t.Fatal(err)
	}
}

// requireAllVariants asserts every record is served intact.
func requireAllVariants(t *testing.T, s *Store, dig Digest, names []string, recs map[string]*core.InstrResult) {
	t.Helper()
	got := s.LoadVariants(dig, names)
	for _, name := range names {
		if got[name] == nil {
			t.Fatalf("variant %s lost", name)
		}
		if !reflect.DeepEqual(got[name], recs[name]) {
			t.Errorf("variant %s did not survive intact:\ngot  %+v\nwant %+v", name, got[name], recs[name])
		}
	}
}

// TestCompactionPacksLooseFiles is the happy path of segment compaction:
// past the threshold the loose per-variant files are packed into one
// segment, reads (single and bulk) serve identical records from it, and a
// fresh loose re-save supersedes its packed record.
func TestCompactionPacksLooseFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFaulty(t, dir, Options{CompactAfter: 3})
	dig, names, recs := compactionFixture(t, s, 3)
	saveIndexFor(t, s, dig, names)

	if st := s.Stats(); st.Compactions != 1 || st.CompactedFiles != 3 {
		t.Fatalf("compaction stats %+v, want 1 compaction packing 3 files", st)
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(dir, dig.VariantFilename(name))); !os.IsNotExist(err) {
			t.Errorf("loose file of %s survived compaction (stat err: %v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, dig.segmentFilename(0))); err != nil {
		t.Fatalf("segment file missing after compaction: %v", err)
	}
	requireAllVariants(t, s, dig, names, recs)
	for _, name := range names {
		got, ok := s.LoadVariant(dig, name)
		if !ok || !reflect.DeepEqual(got, recs[name]) {
			t.Errorf("single-variant read of packed %s failed (ok=%v)", name, ok)
		}
	}

	// A re-measured variant is re-saved loose; the fresh record supersedes
	// the packed one.
	fresh := testRecord(names[0])
	fresh.Uops = 7
	if err := s.SaveVariant(dig, names[0], fresh); err != nil {
		t.Fatal(err)
	}
	saveIndexFor(t, s, dig, names[:1])
	got, ok := s.LoadVariant(dig, names[0])
	if !ok || got.Uops != 7 {
		t.Errorf("fresh loose record did not supersede the packed one (ok=%v, got %+v)", ok, got)
	}

	// Reopening replays the same state: the segment is referenced (kept), and
	// reads still serve every record.
	after, _ := reboot(t, dir, Options{CompactAfter: 3})
	recs[names[0]] = fresh
	requireAllVariants(t, after, dig, names, recs)
}

// TestCrashMidCompactionRecovery kills the compactor at each point of its
// crash-ordering — during the segment write, before the index that
// references the segment is durable, and before the superseded loose files
// are unlinked — and checks the reopened store's sweep restores a consistent
// state in which every record still has exactly one readable home.
func TestCrashMidCompactionRecovery(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault errfs.Fault
		// after reboot: should the segment survive, should the loose files?
		wantSegment bool
		wantLoose   bool
	}{
		{
			// Killed while writing the segment: nothing references it.
			name:        "during segment write",
			fault:       errfs.Fault{Op: errfs.OpSync, Path: "segment-", Crash: true},
			wantSegment: false,
			wantLoose:   true,
		},
		{
			// Segment durable, killed before the index write: the segment is
			// an orphan no index references; the loose files still serve.
			// The first varindex write is the merge save, the second the
			// compaction's re-save.
			name:        "before index write",
			fault:       errfs.Fault{Op: errfs.OpWrite, Path: "varindex-", Countdown: 2, Crash: true},
			wantSegment: false,
			wantLoose:   true,
		},
		{
			// Segment and index durable, killed before unlinking the packed
			// loose files: the sweep removes them as superseded debris and
			// the segment serves.
			name:        "before loose unlink",
			fault:       errfs.Fault{Op: errfs.OpRemove, Path: "variant-", Crash: true},
			wantSegment: true,
			wantLoose:   false,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, fsys := openFaulty(t, dir, Options{CompactAfter: 3})
			dig, names, recs := compactionFixture(t, s, 3)
			fsys.Inject(tc.fault)
			// Compaction failure must not fail the index save that triggered
			// it — except when the crash also takes down the merge save
			// itself ("before index write" fires during compaction's index
			// write, after the merge save completed).
			idx := NewVariantIndex()
			for _, name := range names {
				idx.Entries[name] = true
			}
			_ = s.SaveVariantIndex(dig, idx)

			after, _ := reboot(t, dir, Options{CompactAfter: -1})
			requireAllVariants(t, after, dig, names, recs)

			segPath := filepath.Join(dir, dig.segmentFilename(0))
			if _, err := os.Stat(segPath); tc.wantSegment != (err == nil) {
				t.Errorf("segment file present=%v after recovery, want %v (stat err: %v)",
					err == nil, tc.wantSegment, err)
			}
			loose := 0
			for _, name := range names {
				if _, err := os.Stat(filepath.Join(dir, dig.VariantFilename(name))); err == nil {
					loose++
				}
			}
			if tc.wantLoose && loose != len(names) {
				t.Errorf("%d of %d loose files survived recovery, want all", loose, len(names))
			}
			if !tc.wantLoose && loose != 0 {
				t.Errorf("%d loose files survived recovery, want none (segment serves)", loose)
			}

			// Consistency holds across another restart, and the re-measured
			// world keeps working: a further save and read succeed.
			again, _ := reboot(t, dir, Options{CompactAfter: -1})
			requireAllVariants(t, again, dig, names, recs)
		})
	}
}

// TestCompactionFailureDoesNotFailSave pins that a compaction error (here: a
// one-shot segment-write failure, no crash) never fails the index save that
// triggered it, and leaves the loose files serving.
func TestCompactionFailureDoesNotFailSave(t *testing.T) {
	dir := t.TempDir()
	s, fsys := openFaulty(t, dir, Options{CompactAfter: 3})
	dig, names, recs := compactionFixture(t, s, 3)
	fsys.Inject(errfs.Fault{Op: errfs.OpWrite, Path: "segment-"})
	saveIndexFor(t, s, dig, names) // t.Fatals if SaveVariantIndex errors
	if st := s.Stats(); st.Compactions != 0 {
		t.Errorf("failed compaction counted as completed: %+v", st)
	}
	requireAllVariants(t, s, dig, names, recs)

	// The next threshold crossing retries and succeeds.
	saveIndexFor(t, s, dig, names)
	if st := s.Stats(); st.Compactions != 1 || st.CompactedFiles != 3 {
		t.Errorf("compaction did not recover after a transient failure: %+v", st)
	}
	requireAllVariants(t, s, dig, names, recs)
}
