package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/uarch"
)

func testKey(scope string) Key {
	return Key{
		Arch:     "Skylake",
		Backend:  "pipesim@1",
		Measure:  measure.DefaultConfig(),
		Variants: []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM"},
		Scope:    scope,
	}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey("blocking")
	same := testKey("blocking")
	// The variant order must not matter.
	same.Variants = []string{"PXOR_XMM_XMM", "ADD_R64_R64", "IMUL_R64_R64"}
	if base.filename(KindBlocking) != same.filename(KindBlocking) {
		t.Error("variant order changed the key hash")
	}
	mutations := map[string]Key{}
	k := testKey("blocking")
	k.Arch = "Haswell"
	mutations["arch"] = k
	k = testKey("blocking")
	k.Scope = "result"
	mutations["scope"] = k
	k = testKey("blocking")
	k.Measure.Repetitions = 7
	mutations["measure config"] = k
	k = testKey("blocking")
	k.Backend = "pipesim@2"
	mutations["backend fingerprint"] = k
	k = testKey("blocking")
	k.Variants = append(k.Variants, "SHL_R64_I8")
	mutations["variant set"] = k
	for what, mk := range mutations {
		if mk.filename(KindBlocking) == base.filename(KindBlocking) {
			t.Errorf("changing the %s did not change the key hash", what)
		}
	}
	if base.filename(KindBlocking) == base.filename(KindResult) {
		t.Error("blocking and result entries share a filename")
	}
}

func TestBlockingRoundTrip(t *testing.T) {
	set := uarch.Get(uarch.Skylake).InstrSet()
	bs := &core.BlockingSet{
		SSE: map[string]core.BlockingInstr{
			"0156": {Instr: set.Lookup("ADD_R64_R64"), Ports: []int{0, 1, 5, 6}, Throughput: 0.25, UopsOnCombo: 1},
			"4":    {Instr: set.Lookup("MOV_M64_R64"), Ports: []int{4}, UopsOnCombo: 1},
		},
		AVX: map[string]core.BlockingInstr{
			"5": {Instr: set.Lookup("VPSHUFD_XMM_XMM_I8"), Ports: []int{5}, Throughput: 1, UopsOnCombo: 1},
		},
	}
	for name, b := range bs.SSE {
		if b.Instr == nil {
			t.Fatalf("test setup: SSE %s variant missing from Skylake", name)
		}
	}
	for name, b := range bs.AVX {
		if b.Instr == nil {
			t.Fatalf("test setup: AVX %s variant missing from Skylake", name)
		}
	}

	s := openStore(t)
	key := testKey("blocking")
	if err := s.SaveBlocking(key, RecordBlocking(bs)); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.LoadBlocking(key)
	if !ok {
		t.Fatal("saved blocking record not found")
	}
	got, ok := rec.Restore(set)
	if !ok {
		t.Fatal("restore against the same instruction set failed")
	}
	if !reflect.DeepEqual(got, bs) {
		t.Errorf("blocking set did not round-trip:\ngot  %+v\nwant %+v", got, bs)
	}

	// Restoring against a set without the recorded variants must miss, not
	// fabricate entries: VPSHUFD does not exist on Nehalem.
	if _, ok := rec.Restore(uarch.Get(uarch.Nehalem).InstrSet()); ok {
		t.Error("restore against a different ISA should fail")
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := core.NewArchResult("Skylake")
	res.Results["ADD_R64_R64"] = &core.InstrResult{
		Name:     "ADD_R64_R64",
		Mnemonic: "ADD",
		Uops:     1,
		Ports:    core.PortUsage{"0156": 1},
		Latency: core.LatencyResult{Pairs: []core.OperandPairLatency{
			{Source: 1, Dest: 0, SourceName: "op2", DestName: "op1", Cycles: 1.0 / 3.0, Notes: "chain"},
			{Source: 0, Dest: 0, SourceName: "op1", DestName: "op1", Cycles: 1, SameRegister: true},
		}},
		Throughput: core.ThroughputResult{Measured: 0.25, MeasuredSequenceLength: 8, Computed: 0.1 + 0.2},
	}
	res.Results["CPUID"] = &core.InstrResult{Name: "CPUID", Mnemonic: "CPUID", Skipped: "system instruction"}

	s := openStore(t)
	key := testKey("result only=ADD_R64_R64")
	if err := s.SaveResult(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadResult(key)
	if !ok {
		t.Fatal("saved result not found")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("result did not round-trip (float precision?):\ngot  %+v\nwant %+v", got, res)
	}
	// A different scope must miss.
	if _, ok := s.LoadResult(testKey("result only=IMUL_R64_R64")); ok {
		t.Error("result found under a different scope")
	}
}

// TestVariantRoundTrip checks the per-variant tier: records round-trip
// exactly under their own filenames, different variants of one key never
// collide, and a record that names a different variant reads as a miss.
func TestVariantRoundTrip(t *testing.T) {
	s := openStore(t)
	key := testKey("variant skipLatency=false")
	dig := key.Digest()
	rec := &core.InstrResult{
		Name:     "ADD_R64_R64",
		Mnemonic: "ADD",
		Uops:     1,
		Ports:    core.PortUsage{"0156": 1},
		Latency: core.LatencyResult{Pairs: []core.OperandPairLatency{
			{Source: 1, Dest: 0, SourceName: "op2", DestName: "op1", Cycles: 1.0 / 3.0, Notes: "chain"},
		}},
		Throughput: core.ThroughputResult{Measured: 0.25, MeasuredSequenceLength: 8, Computed: 0.1 + 0.2},
	}
	if err := s.SaveVariant(dig, rec.Name, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadVariant(dig, rec.Name)
	if !ok {
		t.Fatal("saved variant record not found")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("variant record did not round-trip (float precision?):\ngot  %+v\nwant %+v", got, rec)
	}
	if _, ok := s.LoadVariant(dig, "IMUL_R64_R64"); ok {
		t.Error("record found under a different variant name")
	}
	if key.VariantFilename("ADD_R64_R64") == key.VariantFilename("IMUL_R64_R64") {
		t.Error("different variants share a filename")
	}
	// The one-off Key form and the precomputed Digest form must agree.
	if key.VariantFilename("ADD_R64_R64") != dig.VariantFilename("ADD_R64_R64") {
		t.Error("Key.VariantFilename and Digest.VariantFilename disagree")
	}

	// A record whose payload names a different variant (e.g. a corrupted or
	// hand-moved file) must read as a miss, not be served under the wrong
	// name — and it must be quarantined aside, not left to shadow the slot
	// (and force a re-measurement) forever.
	wrong := &core.InstrResult{Name: "IMUL_R64_R64", Mnemonic: "IMUL"}
	if err := s.save(dig, KindVariant, key.VariantFilename("ADD_R64_R64"), wrong); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadVariant(dig, "ADD_R64_R64"); ok {
		t.Error("mis-named variant record was not treated as a miss")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("mis-named record not counted as corruption: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), key.VariantFilename("ADD_R64_R64")+corruptSuffix)); err != nil {
		t.Errorf("mis-named record was not quarantined: %v", err)
	}
	// The quarantined slot is re-savable.
	if err := s.SaveVariant(dig, rec.Name, rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadVariant(dig, rec.Name); !ok {
		t.Error("re-saving over a quarantined slot did not recover the entry")
	}
}

// TestVariantIndexRoundTrip checks the versioned index of the per-variant
// tier round-trips and that an absent index reads as a miss.
func TestVariantIndexRoundTrip(t *testing.T) {
	s := openStore(t)
	dig := testKey("variant skipLatency=false").Digest()
	if _, ok := s.LoadVariantIndex(dig); ok {
		t.Error("empty store returned a variant index")
	}
	idx := NewVariantIndex()
	idx.Entries["ADD_R64_R64"] = true
	if err := s.SaveVariantIndex(dig, idx); err != nil {
		t.Fatal(err)
	}
	got, ok := s.LoadVariantIndex(dig)
	if !ok {
		t.Fatal("saved variant index not found")
	}
	if !reflect.DeepEqual(got.Entries, idx.Entries) {
		t.Errorf("variant index entries did not round-trip:\ngot  %+v\nwant %+v", got.Entries, idx.Entries)
	}
	// The save stamps the full digest into the index; the startup sweep
	// depends on it to resolve packed names back to loose filenames.
	if got.Digest != dig.String() {
		t.Errorf("saved index records digest %q, want %q", got.Digest, dig.String())
	}
	if !got.Has("ADD_R64_R64") || got.Has("IMUL_R64_R64") {
		t.Errorf("index membership wrong: %+v", got)
	}
	var nilIdx *VariantIndex
	if nilIdx.Has("ADD_R64_R64") {
		t.Error("nil index claims membership")
	}
}

// TestCorruptAndMismatchedFilesAreMisses checks the fall-through: a
// truncated file, non-JSON garbage, a version bump and a kind mismatch must
// all read as misses rather than errors — and everything except the
// future-version file (another, newer process's entry, not damage) must be
// counted as corruption and quarantined aside instead of silently
// shadowing the slot.
func TestCorruptAndMismatchedFilesAreMisses(t *testing.T) {
	s := openStore(t)
	key := testKey("result")
	res := core.NewArchResult("Skylake")
	res.Results["ADD_R64_R64"] = &core.InstrResult{Name: "ADD_R64_R64", Mnemonic: "ADD"}
	if err := s.SaveResult(key, res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), key.filename(KindResult))

	write := func(data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write([]byte("not json at all"))
	if _, ok := s.LoadResult(key); ok {
		t.Error("garbage file was not treated as a miss")
	}

	// Re-save to get a valid file for the truncation/version/kind checks.
	if err := s.SaveResult(key, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write(data[:len(data)/2])
	if _, ok := s.LoadResult(key); ok {
		t.Error("truncated file was not treated as a miss")
	}

	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = Version + 1
	bumped, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	write(bumped)
	if _, ok := s.LoadResult(key); ok {
		t.Error("future-version file was not treated as a miss")
	}
	// A future-version file belongs to a newer process sharing the
	// directory: it is a miss but must NOT be quarantined.
	if _, err := os.Stat(path); err != nil {
		t.Errorf("future-version file was quarantined: %v", err)
	}
	if st := s.Stats(); st.Corrupt != 2 {
		t.Errorf("future-version file counted as corruption: %+v", st)
	}

	env.Version = Version
	env.Kind = KindBlocking
	wrongKind, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	write(wrongKind)
	if _, ok := s.LoadResult(key); ok {
		t.Error("kind-mismatched file was not treated as a miss")
	}

	// Garbage, truncation and the kind mismatch are three corruption
	// events, each quarantined aside under "*.corrupt".
	if st := s.Stats(); st.Corrupt != 3 || st.Quarantined != 3 {
		t.Errorf("corruption accounting wrong (want 3 corrupt, 3 quarantined): %+v", st)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Errorf("corrupt file was not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("quarantine left the corrupt file in place (stat err: %v)", err)
	}

	// After recomputation the entry can be re-saved over the quarantined
	// slot.
	if err := s.SaveResult(key, res); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.LoadResult(key); !ok || !reflect.DeepEqual(got, res) {
		t.Error("re-saving over a corrupt file did not recover the entry")
	}
}

// TestVariantIndexConcurrentWriters is the regression test for the index
// save race: the save used to be a plain overwrite, so concurrent
// read-modify-write updates of one digest's index could drop each other's
// membership entries. With merge-on-save, every entry written by any of the
// concurrent writers — whether they share one Store or each open their own
// over the same directory, as two engines or two service handlers would —
// must survive.
func TestVariantIndexConcurrentWriters(t *testing.T) {
	dig := testKey("variant skipLatency=false").Digest()
	for _, mode := range []string{"shared store", "store per writer"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			shared, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			const writers = 16
			var wg sync.WaitGroup
			for i := 0; i < writers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s := shared
					if mode == "store per writer" {
						var err error
						if s, err = Open(dir); err != nil {
							t.Error(err)
							return
						}
					}
					idx := NewVariantIndex()
					idx.Entries[fmt.Sprintf("VARIANT_%02d", i)] = true
					if err := s.SaveVariantIndex(dig, idx); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			got, ok := shared.LoadVariantIndex(dig)
			if !ok {
				t.Fatal("no index after concurrent saves")
			}
			for i := 0; i < writers; i++ {
				name := fmt.Sprintf("VARIANT_%02d", i)
				if !got.Has(name) {
					t.Errorf("index dropped %s written by a concurrent writer", name)
				}
			}
			if len(got.Entries) != writers {
				t.Errorf("index has %d entries, want %d", len(got.Entries), writers)
			}
		})
	}
}

// TestOpenSweepsStaleTempFiles checks that opening a store removes temporary
// files orphaned by a writer that died between CreateTemp and the rename —
// but only stale ones: a fresh temp file may belong to a save in flight in
// another store over the same directory and must survive the sweep.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	// A committed entry written by a real store must survive every sweep.
	first, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("blocking")
	if err := first.SaveBlocking(key, &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, key.filename(KindBlocking))

	stale := filepath.Join(dir, "result-12345.tmp")
	if err := os.WriteFile(stale, []byte("half an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "varindex-67890.tmp")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A file from an older on-disk format version (v2 names had no digest
	// prefix) is stale-format debris regardless of age.
	v2 := filepath.Join(dir, "result-deadbeefdeadbeefdeadbeefdeadbeef.json")
	if err := os.WriteFile(v2, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open (stat err: %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("sweep deleted a fresh (possibly live) temp file: %v", err)
	}
	if _, err := os.Stat(v2); !os.IsNotExist(err) {
		t.Errorf("stale-format entry survived Open (stat err: %v)", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("sweep touched a committed entry: %v", err)
	}
	// The sweep reports what it collected: the stale temp file and the
	// stale-format entry, not the live entry or the fresh temp file.
	if st := s.Stats(); st.SweptDebris != 2 {
		t.Errorf("sweep reported %d debris files, want 2 (stats %+v)", st.SweptDebris, st)
	}
	// And it rebuilt the size accounting from the surviving entry.
	if st := s.Stats(); st.Blocking.Files != 1 || st.Blocking.Bytes <= 0 {
		t.Errorf("sweep did not rebuild blocking-tier accounting: %+v", s.Stats())
	}
}

// TestSaveFailureRemovesTempFile checks the error paths of the atomic write:
// a save whose final rename fails must report the error and leave no
// temporary file behind.
func TestSaveFailureRemovesTempFile(t *testing.T) {
	s := openStore(t)
	key := testKey("blocking")
	// A directory squatting on the destination filename makes the rename
	// fail after the temp file was successfully written and closed.
	if err := os.Mkdir(filepath.Join(s.Dir(), key.filename(KindBlocking)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBlocking(key, &BlockingRecord{}); err == nil {
		t.Fatal("save over a directory succeeded")
	}
	tmps, err := filepath.Glob(filepath.Join(s.Dir(), "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("failed save leaked temp files: %v", tmps)
	}
}

// TestSaveLeavesNoTempFiles checks the atomic-write path cleans up after
// itself: after a save, the directory contains only the final entry.
func TestSaveLeavesNoTempFiles(t *testing.T) {
	s := openStore(t)
	key := testKey("blocking")
	if err := s.SaveBlocking(key, &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != key.filename(KindBlocking) {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("store directory contains %v, want exactly [%s]", names, key.filename(KindBlocking))
	}
}
