package store

// Lifecycle suite: budget-driven LRU eviction of whole digests, its
// never-mid-write guarantee, and the size-flag parser.

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// keyForScope returns a distinct digest group per scope.
func keyForScope(scope string) Key {
	k := testKey(scope)
	return k
}

// entryPath is the on-disk path of a scope's blocking entry.
func entryPath(s *Store, scope string) string {
	return filepath.Join(s.Dir(), keyForScope(scope).filename(KindBlocking))
}

func saveBlockingScope(t *testing.T, s *Store, scope string) {
	t.Helper()
	if err := s.SaveBlocking(keyForScope(scope), &BlockingRecord{}); err != nil {
		t.Fatal(err)
	}
	// Eviction orders digests by last use; saves in one test must not tie.
	time.Sleep(2 * time.Millisecond)
}

// TestEvictionEnforcesFileBudget fills a 2-file store with three one-file
// digests: the oldest digest must be evicted whole, the newer ones kept, and
// the accounting must end within budget.
func TestEvictionEnforcesFileBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, Options{MaxFiles: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	saveBlockingScope(t, s, "a")
	saveBlockingScope(t, s, "b")
	saveBlockingScope(t, s, "c")

	if _, err := os.Stat(entryPath(s, "a")); !os.IsNotExist(err) {
		t.Errorf("LRU digest survived eviction (stat err: %v)", err)
	}
	for _, scope := range []string{"b", "c"} {
		if _, err := os.Stat(entryPath(s, scope)); err != nil {
			t.Errorf("in-budget digest %q evicted: %v", scope, err)
		}
	}
	st := s.Stats()
	if st.EvictedDigests != 1 || st.EvictedFiles != 1 || st.EvictedBytes <= 0 {
		t.Errorf("eviction stats %+v, want exactly the one LRU digest", st)
	}
	if files := st.Blocking.Files; files != 2 {
		t.Errorf("store holds %d files after eviction, want 2", files)
	}
}

// TestEvictionEnforcesByteBudget drives the byte budget to its floor: with
// MaxBytes = 1, every save evicts all other digests, so only the most recent
// writer's group survives (the writing digest itself is never a candidate).
func TestEvictionEnforcesByteBudget(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{MaxBytes: 1, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, scope := range []string{"a", "b", "c"} {
		saveBlockingScope(t, s, scope)
	}
	for _, scope := range []string{"a", "b"} {
		if _, err := os.Stat(entryPath(s, scope)); !os.IsNotExist(err) {
			t.Errorf("digest %q survived the byte budget (stat err: %v)", scope, err)
		}
	}
	if _, err := os.Stat(entryPath(s, "c")); err != nil {
		t.Errorf("the writing digest itself was evicted: %v", err)
	}
	if st := s.Stats(); st.EvictedDigests != 2 {
		t.Errorf("evicted %d digests, want 2 (stats %+v)", st.EvictedDigests, st)
	}
}

// TestEvictionPrefersVariantTier pins the two-pass policy: a digest holding
// only per-variant files (cheap incremental re-measurement) is evicted
// before an older digest holding a whole-tier entry.
func TestEvictionPrefersVariantTier(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{MaxFiles: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	saveBlockingScope(t, s, "old-blocking")
	vdig := testKey("variants").Digest()
	if err := s.SaveVariant(vdig, "ADD_R64_R64", testRecord("ADD_R64_R64")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	saveBlockingScope(t, s, "new-blocking")

	if _, ok := s.LoadVariant(vdig, "ADD_R64_R64"); ok {
		t.Error("variant-only digest survived although it is the preferred victim")
	}
	if _, err := os.Stat(entryPath(s, "old-blocking")); err != nil {
		t.Errorf("older whole-tier digest evicted before the variant-only one: %v", err)
	}
}

// TestEvictionNeverRunsMidWrite holds a digest's per-digest lock — exactly
// what a writer or compaction holds mid-operation — and checks eviction
// skips the digest (leaving the store over budget) rather than unlinking
// files under a writer, then collects it normally once the lock is free.
func TestEvictionNeverRunsMidWrite(t *testing.T) {
	s, err := OpenOptions(t.TempDir(), Options{MaxFiles: 1, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	saveBlockingScope(t, s, "busy")
	busyPrefix := keyForScope("busy").Digest().Prefix()
	lock := s.prefixLock(busyPrefix)
	lock.Lock()
	saveBlockingScope(t, s, "other")
	if _, err := os.Stat(entryPath(s, "busy")); err != nil {
		t.Fatalf("digest evicted while its lock was held: %v", err)
	}
	if st := s.Stats(); st.EvictedDigests != 0 {
		t.Errorf("eviction claimed %d digests while the only candidate was locked", st.EvictedDigests)
	}
	lock.Unlock()

	// With the lock released, the next over-budget write collects it.
	saveBlockingScope(t, s, "third")
	if _, err := os.Stat(entryPath(s, "busy")); !os.IsNotExist(err) {
		t.Errorf("unlocked LRU digest survived eviction (stat err: %v)", err)
	}
}

// TestSweepRebuildsAccountingForEviction checks budgets hold across
// restarts: a reopened store rebuilds its per-digest accounting from disk
// (with file mtimes as the LRU clock), and a store opened with a budget
// below its current footprint trims at startup instead of waiting for the
// first write.
func TestSweepRebuildsAccountingForEviction(t *testing.T) {
	dir := t.TempDir()
	unbounded, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, scope := range []string{"a", "b", "c"} {
		saveBlockingScope(t, unbounded, scope)
	}
	// The rebuilt LRU clock is the file mtime; pin an unambiguous order
	// rather than depending on the filesystem's timestamp granularity.
	for i, scope := range []string{"a", "b", "c"} {
		when := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(entryPath(unbounded, scope), when, when); err != nil {
			t.Fatal(err)
		}
	}

	s, err := OpenOptions(dir, Options{MaxFiles: 2, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Blocking.Files != 2 || st.EvictedDigests != 1 {
		t.Fatalf("reopened budgeted store did not trim to budget: %+v", st)
	}
	// The mtime-rebuilt LRU clock picked the oldest entry.
	if _, err := os.Stat(entryPath(s, "a")); !os.IsNotExist(err) {
		t.Errorf("oldest digest survived the startup trim (stat err: %v)", err)
	}
	for _, scope := range []string{"b", "c"} {
		if _, err := os.Stat(entryPath(s, scope)); err != nil {
			t.Errorf("in-budget digest %q evicted at startup: %v", scope, err)
		}
	}
	// And the budget keeps holding for writes after the trim.
	saveBlockingScope(t, s, "d")
	if st := s.Stats(); st.Blocking.Files > 2 {
		t.Errorf("store holds %d files after a budgeted write, want <= 2", st.Blocking.Files)
	}
	if _, err := os.Stat(entryPath(s, "d")); err != nil {
		t.Errorf("the new write itself was evicted: %v", err)
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1073741824", 1 << 30, true},
		{"512M", 512 << 20, true},
		{"1G", 1 << 30, true},
		{"2GiB", 2 << 30, true},
		{"16kb", 16 << 10, true},
		{" 4T ", 4 << 40, true},
		{"", 0, false},
		{"-1", 0, false},
		{"1.5G", 0, false},
		{"10X", 0, false},
	} {
		got, err := ParseSize(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseSize(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
