// Package storefs is the I/O seam of the persistent result store: the small
// set of filesystem operations the store performs, behind an interface so
// that every durability claim the store makes can be forced by a
// fault-injecting implementation (internal/store/errfs) instead of being
// asserted by reading the code. The production implementation, OS, is a thin
// veneer over the os package.
//
// The interface is deliberately operation-shaped rather than file-shaped:
// the store only ever (a) reads a whole file, (b) reads a byte range of a
// file, (c) writes a temporary file and renames it into place, (d) syncs,
// removes and stats files, and (e) lists and syncs its one directory. Fault
// injection hooks each of those operations by name.
//
//uopslint:deterministic
package storefs

import (
	"io"
	"io/fs"
	"os"
)

// File is a writable file handle as the store uses one: written
// sequentially, optionally synced, then closed and renamed into place.
type File interface {
	io.Writer
	// Name returns the file's path, as os.File.Name does.
	Name() string
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the set of filesystem operations the store performs. All paths are
// full paths (the store joins its root directory itself). Implementations
// must be safe for concurrent use.
type FS interface {
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(path string) ([]byte, error)
	// ReadAt reads length bytes at offset of the named file (a packed
	// segment record). Short reads are errors.
	ReadAt(path string, offset, length int64) ([]byte, error)
	// CreateTemp creates a new temporary file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames a file, like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove removes a file, like os.Remove.
	Remove(path string) error
	// Stat stats a file, like os.Stat.
	Stat(path string) (fs.FileInfo, error)
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree, like os.MkdirAll.
	MkdirAll(dir string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames inside it durable.
	SyncDir(dir string) error
}

// OS is the production FS: the operations mapped 1:1 onto the os package.
type OS struct{}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) ReadAt(path string, offset, length int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, err
	}
	return buf, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error             { return os.Remove(path) }
func (OS) Stat(path string) (fs.FileInfo, error) {
	return os.Stat(path)
}
func (OS) ReadDir(dir string) ([]fs.DirEntry, error)   { return os.ReadDir(dir) }
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir opens the directory and fsyncs it: after a rename inside the
// directory, this is what makes the new directory entry itself durable.
func (OS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
