package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"uopsinfo/internal/analysis"
)

// toylint reports every call to a function literally named bad, giving the
// suppression tests a finding they can place on any line.
var toylint = &analysis.Analyzer{
	Name: "toylint",
	Doc:  "flag calls to bad (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

const suppressSrc = `package fixture

func bad() {}

func unsuppressed() {
	bad()
}

func trailing() {
	bad() //uopslint:ignore toylint deliberate test call
}

func standalone() {
	//uopslint:ignore toylint deliberate test call
	bad()
}

func standaloneCoversOnlyNextLine() {
	//uopslint:ignore toylint deliberate test call
	bad()
	bad()
}

func wrongName() {
	bad() //uopslint:ignore otherlint not an analyzer of this run
}

func missingReason() {
	bad() //uopslint:ignore toylint
}

func missingEverything() {
	bad() //uopslint:ignore
}
`

// checkFixture type-checks suppressSrc in memory and runs it through the
// full Check path (directive validation plus suppression filtering).
func checkFixture(t *testing.T) []analysis.Finding {
	t.Helper()
	fset := token.NewFileSet()
	const name = "fixture.go"
	file, err := parser.ParseFile(fset, name, suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	p := &analysis.Package{
		Fset:       fset,
		Files:      []*ast.File{file},
		Pkg:        pkg,
		Info:       info,
		ImportPath: "fixture",
		Sources:    map[string][]byte{name: []byte(suppressSrc)},
	}
	findings, err := analysis.Check([]*analysis.Package{p}, []*analysis.Analyzer{toylint}, []string{toylint.Name})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return findings
}

// fixtureLine returns the 1-based line of the n-th occurrence of marker in
// the fixture source, so the expectations survive fixture edits.
func fixtureLine(t *testing.T, marker string, n int) int {
	t.Helper()
	line := 0
	for i, l := range strings.Split(suppressSrc, "\n") {
		if strings.Contains(l, marker) {
			if n == 0 {
				line = i + 1
				break
			}
			n--
		}
	}
	if line == 0 {
		t.Fatalf("marker %q (occurrence %d) not in fixture", marker, n)
	}
	return line
}

func TestSuppression(t *testing.T) {
	findings := checkFixture(t)

	type fkey struct {
		analyzer string
		line     int
	}
	got := make(map[fkey]string)
	for _, f := range findings {
		got[fkey{f.Analyzer, f.Pos.Line}] = f.Message
	}

	unsup := fixtureLine(t, "func unsuppressed", 0) + 1
	secondBad := fixtureLine(t, "func standaloneCoversOnlyNextLine", 0) + 3
	wrongName := fixtureLine(t, "otherlint", 0)

	// The one genuinely unsuppressed call is a finding.
	if _, ok := got[fkey{"toylint", unsup}]; !ok {
		t.Errorf("missing toylint finding at line %d (unsuppressed call)", unsup)
	}
	// A standalone directive covers only the next line.
	if _, ok := got[fkey{"toylint", secondBad}]; !ok {
		t.Errorf("missing toylint finding at line %d (second call after standalone directive)", secondBad)
	}
	// Malformed directives never suppress: the underlying finding survives
	// alongside the malformed-directive finding.
	for _, line := range []int{wrongName, fixtureLine(t, "func missingReason", 0) + 1, fixtureLine(t, "func missingEverything", 0) + 1} {
		if _, ok := got[fkey{"toylint", line}]; !ok {
			t.Errorf("missing toylint finding at line %d (malformed directive must not suppress)", line)
		}
		msg, ok := got[fkey{analysis.MalformedIgnoreAnalyzer, line}]
		if !ok {
			t.Errorf("missing malformed-directive finding at line %d", line)
			continue
		}
		if !strings.HasPrefix(msg, "malformed //uopslint:ignore directive: ") {
			t.Errorf("line %d: malformed-directive message = %q", line, msg)
		}
	}
	// The specific malformations carry specific explanations.
	if msg := got[fkey{analysis.MalformedIgnoreAnalyzer, wrongName}]; !strings.Contains(msg, `unknown analyzer "otherlint"`) {
		t.Errorf("wrong-name directive message = %q, want unknown-analyzer explanation", msg)
	}
	mr := fixtureLine(t, "func missingReason", 0) + 1
	if msg := got[fkey{analysis.MalformedIgnoreAnalyzer, mr}]; !strings.Contains(msg, "missing reason") {
		t.Errorf("missing-reason directive message = %q, want missing-reason explanation", msg)
	}
	me := fixtureLine(t, "func missingEverything", 0) + 1
	if msg := got[fkey{analysis.MalformedIgnoreAnalyzer, me}]; !strings.Contains(msg, "missing analyzer name and reason") {
		t.Errorf("empty directive message = %q, want missing-name-and-reason explanation", msg)
	}

	// Valid suppressions leave no findings behind: trailing on its own
	// line, standalone covering the next line, and the first call of the
	// two-call function.
	for _, line := range []int{
		fixtureLine(t, "func trailing", 0) + 1,
		fixtureLine(t, "func standalone()", 0) + 2,
		fixtureLine(t, "func standaloneCoversOnlyNextLine", 0) + 2,
	} {
		if _, ok := got[fkey{"toylint", line}]; ok {
			t.Errorf("toylint finding at line %d should have been suppressed", line)
		}
	}

	// Exactly the expected number of findings: 5 toylint + 3 malformed.
	if len(findings) != 8 {
		t.Errorf("got %d findings, want 8:", len(findings))
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
}
