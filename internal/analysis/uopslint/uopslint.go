// Package uopslint assembles the repository's analyzer suite: the five
// checks that turn the doc-comment contracts of PRs 1–8 into
// compiler-grade findings. cmd/uopslint runs them as a multichecker; the
// repo-wide meta-test in this package keeps the tree finding-free.
package uopslint

import (
	"uopsinfo/internal/analysis"
	"uopsinfo/internal/analysis/arenaindex"
	"uopsinfo/internal/analysis/detrange"
	"uopsinfo/internal/analysis/seqretain"
	"uopsinfo/internal/analysis/statsatomic"
	"uopsinfo/internal/analysis/wallclock"
)

// Suite returns the full analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrange.Analyzer,
		wallclock.Analyzer,
		arenaindex.Analyzer,
		seqretain.Analyzer,
		statsatomic.Analyzer,
	}
}

// Names returns the names of every analyzer in the suite; it is the set
// of names an //uopslint:ignore directive may legally reference, even
// when only a subset of analyzers runs.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return names
}
