package uopslint_test

import (
	"testing"

	"uopsinfo/internal/analysis"
	"uopsinfo/internal/analysis/uopslint"
)

// TestRepoClean is the meta-test: the whole repository must produce zero
// findings under the full suite. Every deliberate exception is expected to
// carry an //uopslint:ignore annotation with a reason, so a failure here
// means either a real invariant violation or a missing justification.
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	findings, err := analysis.Check(pkgs, uopslint.Suite(), uopslint.Names())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestDeterministicPackagesMarked pins the set of packages that opt into
// the wallclock discipline: the measurement pipeline from ISA tables to
// XML output. Removing a directive (or adding a package to the pipeline
// without one) should be a conscious decision, not an accident.
func TestDeterministicPackagesMarked(t *testing.T) {
	want := map[string]bool{
		"uopsinfo/internal/asmgen":  true,
		"uopsinfo/internal/core":    true,
		"uopsinfo/internal/fog":     true,
		"uopsinfo/internal/iaca":    true,
		"uopsinfo/internal/isa":     true,
		"uopsinfo/internal/lp":      true,
		"uopsinfo/internal/measure": true,
		"uopsinfo/internal/pipesim": true,
		"uopsinfo/internal/store":   true,
		// The store's I/O seam and its fault-injecting test implementation
		// are part of the persistence layer's determinism surface: neither
		// may introduce wall-clock or iteration-order effects of its own.
		"uopsinfo/internal/store/errfs":   true,
		"uopsinfo/internal/store/storefs": true,
		"uopsinfo/internal/uarch":         true,
		"uopsinfo/internal/xedspec":       true,
		"uopsinfo/internal/xmlout":        true,
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	got := map[string]bool{}
	for _, p := range pkgs {
		if analysis.HasPackageDirective(p.Files, "deterministic") {
			got[p.ImportPath] = true
		}
		if analysis.HasPackageDirective(p.Files, "arena") && p.ImportPath != "uopsinfo/internal/pipesim" {
			t.Errorf("%s carries //uopslint:arena; only pipesim owns arenas", p.ImportPath)
		}
	}
	for path := range want {
		if !got[path] {
			t.Errorf("%s should carry //uopslint:deterministic", path)
		}
	}
	for path := range got {
		if !want[path] {
			t.Errorf("%s carries //uopslint:deterministic but is not in the pinned list; update the list if this is deliberate", path)
		}
	}
}
