package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dir        string
	ImportPath string
	// Sources maps each file name to its content; the suppression
	// matcher uses it to decide whether an ignore directive stands alone
	// on its line.
	Sources map[string][]byte
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Standard   bool
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching the patterns (relative to dir), parses
// and type-checks every non-standard-library package among them, and
// returns the matched ones in dependency order. Standard-library
// dependencies are resolved from compiler export data (via `go list
// -export`), so no package source outside the module is re-type-checked.
// Test files and testdata directories are excluded, mirroring `go vet`'s
// default package walk.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=Dir,ImportPath,GoFiles,Standard,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // stdlib import path → export data file
	var modPkgs []listedPackage        // module packages in dependency order
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			continue
		}
		modPkgs = append(modPkgs, p)
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var out2 []*Package
	for _, lp := range modPkgs {
		pkg, err := checkPackage(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		imp.mod[lp.ImportPath] = pkg.Pkg
		if !lp.DepOnly {
			out2 = append(out2, pkg)
		}
	}
	return out2, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	sources := make(map[string][]byte, len(goFiles))
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, af)
		sources[path] = src
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dir:        dir,
		ImportPath: importPath,
		Sources:    sources,
	}, nil
}

// moduleImporter resolves module-internal imports from packages this
// loader has already type-checked and everything else (the standard
// library) from compiler export data.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
