package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestOwnLineNoSpaceBeforeComment pins the trailing-directive case where the
// comment directly abuts the code with no separating space: the directive
// must parse as trailing (covering its own line), not as standing alone.
func TestOwnLineNoSpaceBeforeComment(t *testing.T) {
	src := []byte("package p\n\nfunc f() int {\n\tx := 1//uopslint:ignore detrange reason\n\treturn x\n}\n")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseIgnores(fset, []*ast.File{f}, map[string][]byte{"p.go": src}, map[string]bool{"detrange": true})
	if len(ds) != 1 {
		t.Fatalf("parsed %d directives, want 1", len(ds))
	}
	if ds[0].ownLine {
		t.Error("directive abutting code parsed as own-line")
	}
	if !ds[0].appliesTo("detrange", "p.go", 4) {
		t.Error("trailing directive does not cover its own line")
	}
}
