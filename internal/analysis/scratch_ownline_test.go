package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestOwnLineNoSpaceBeforeComment(t *testing.T) {
	src := []byte("package p\n\nfunc f() int {\n\tx := 1//uopslint:ignore detrange reason\n\treturn x\n}\n")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseIgnores(fset, []*ast_File{f}, map[string][]byte{"p.go": src}, map[string]bool{"detrange": true})
	_ = ds
}
