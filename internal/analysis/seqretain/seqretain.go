// Package seqretain enforces the measurement-sequence no-retention
// contract on Runner-shaped implementations.
//
// measure.Harness materializes its n-copy measurement sequences into
// reusable buffers and re-passes the same backing arrays to
// Runner.Run on every repetition; Harness.Measure additionally skips
// rebuilding those buffers when the incoming sequence is
// pointer-identical to the previous one. Both optimizations are sound
// only if no Runner (local simulator, remote fleet dispatcher, or any
// future backend) squirrels the slice away: a retained sequence would be
// silently rewritten by the next measurement. The doc comment on
// measure.Runner states this; seqretain checks it.
//
// The check is structural so it works on any package without importing
// measure (pipesim cannot import it — measure imports pipesim): in every
// method named Run or Measure that takes a slice parameter, storing that
// parameter — or a reslice of it — into a struct field, a map or slice
// element reachable from one, or a package-level variable is a finding.
// Copies (append(own, seq...), copy(own, seq), encoding the contents)
// are fine.
package seqretain

import (
	"go/ast"
	"go/types"

	"uopsinfo/internal/analysis"
)

// Analyzer flags Runner-shaped methods that retain their sequence slice.
var Analyzer = &analysis.Analyzer{
	Name: "seqretain",
	Doc: "forbid Run/Measure methods from storing a sequence slice parameter in a field " +
		"or global (the measure.Runner no-retention contract the harness's buffer reuse " +
		"and pointer-prefix dedup depend on)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Run" && fd.Name.Name != "Measure" {
				continue
			}
			params := sliceParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			checkRetention(pass, fd, params)
		}
	}
	return nil
}

// sliceParams returns the objects of fd's slice-typed parameters.
func sliceParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

func checkRetention(pass *analysis.Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			switch {
			case len(as.Rhs) == len(as.Lhs):
				rhs = as.Rhs[i]
			case len(as.Rhs) == 1:
				rhs = as.Rhs[0]
			default:
				continue
			}
			obj := aliasedParam(pass, rhs, params)
			if obj == nil {
				continue
			}
			if where := retainingDest(pass, lhs); where != "" {
				pass.Reportf(as.Pos(),
					"%s stores its sequence parameter %s in %s; the harness reuses sequence backing arrays, so runners must not retain them (copy instead)",
					fd.Name.Name, obj.Name(), where)
			}
		}
		return true
	})
}

// aliasedParam returns the slice parameter e aliases, if any: the
// parameter itself, a reslice of it, an append to it (same backing array
// when capacity suffices), or a composite literal carrying one of those.
func aliasedParam(pass *analysis.Pass, e ast.Expr, params map[types.Object]bool) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && params[obj] {
			return obj
		}
	case *ast.ParenExpr:
		return aliasedParam(pass, e.X, params)
	case *ast.SliceExpr:
		return aliasedParam(pass, e.X, params)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return aliasedParam(pass, e.Args[0], params)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if obj := aliasedParam(pass, v, params); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// retainingDest describes the destination if assigning to lhs would
// retain the value beyond the call: a struct field, an element of a
// container reachable from one, or a package-level variable. Assignments
// to locals are fine (they die with the call).
func retainingDest(pass *analysis.Pass, lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[lhs]; s != nil && s.Kind() == types.FieldVal {
			return "field " + lhs.Sel.Name
		}
	case *ast.IndexExpr:
		if inner := retainingDest(pass, lhs.X); inner != "" {
			return "an element of " + inner
		}
	case *ast.StarExpr:
		return retainingDest(pass, lhs.X)
	case *ast.ParenExpr:
		return retainingDest(pass, lhs.X)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			return "package-level variable " + v.Name()
		}
	}
	return ""
}
