package seqretain_test

import (
	"testing"

	"uopsinfo/internal/analysis/analysistest"
	"uopsinfo/internal/analysis/seqretain"
)

func TestSeqretain(t *testing.T) {
	analysistest.Run(t, "testdata", "seqfix", seqretain.Analyzer)
}
