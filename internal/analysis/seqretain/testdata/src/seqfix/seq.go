// Package seqfix exercises the seqretain analyzer: Run/Measure methods
// that retain their sequence slice argument are findings; copies and
// other methods are clean.
package seqfix

// Inst stands in for one instruction of a measurement sequence.
type Inst struct{ Op string }

// Retainer stores the sequence it is handed, in several shapes.
type Retainer struct {
	last    []*Inst
	history [][]*Inst
}

var lastGlobal []*Inst

// Run retains code directly, resliced, and into a container element.
func (r *Retainer) Run(code []*Inst) error {
	r.last = code // want `Run stores its sequence parameter code in field last`
	if len(code) > 1 {
		r.last = code[:1] // want `Run stores its sequence parameter code in field last`
	}
	r.history[0] = code // want `Run stores its sequence parameter code in an element of field history`
	lastGlobal = code   // want `Run stores its sequence parameter code in package-level variable lastGlobal`
	return nil
}

// Copier copies before retaining: clean.
type Copier struct {
	last []*Inst
}

// Run copies the sequence, which breaks the aliasing.
func (c *Copier) Run(code []*Inst) error {
	c.last = append(c.last[:0], code...)
	own := make([]*Inst, len(code))
	copy(own, code)
	c.last = own
	return nil
}

// Helper is not named Run or Measure, so the contract does not apply.
func (r *Retainer) Helper(code []*Inst) {
	r.last = code
}
