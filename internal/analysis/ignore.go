package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces every uopslint comment directive. Directive
// comments have no space after the slashes (the Go directive convention),
// so gofmt leaves them alone and go/doc strips them from package docs.
const directivePrefix = "//uopslint:"

// An ignoreDirective is one parsed //uopslint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	file     string
	line     int  // line the comment is on
	ownLine  bool // nothing but whitespace precedes the comment on its line
	analyzer string
	reason   string
	bad      string // non-empty: why the directive is malformed
}

// appliesTo reports whether the directive suppresses findings of the named
// analyzer on the given file line. A trailing directive covers its own
// line; a directive alone on a line covers the following line.
func (d *ignoreDirective) appliesTo(analyzer, file string, line int) bool {
	if d.bad != "" || d.analyzer != analyzer || d.file != file {
		return false
	}
	if d.ownLine {
		return line == d.line+1
	}
	return line == d.line
}

// parseIgnores extracts every //uopslint:ignore directive from the files.
// src maps filename to file content and is used to decide whether a
// directive stands alone on its line (and therefore applies to the next
// line) or trails code (and applies to its own line). known is the set of
// analyzer names a directive may legally name.
func parseIgnores(fset *token.FileSet, files []*ast.File, src map[string][]byte, known map[string]bool) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix+"ignore") {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix+"ignore")
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{
					pos:     c.Pos(),
					file:    pos.Filename,
					line:    pos.Line,
					ownLine: onOwnLine(src[pos.Filename], pos),
				}
				switch fields := strings.Fields(rest); {
				case rest != "" && !strings.HasPrefix(rest, " "):
					// e.g. //uopslint:ignoreme — not our directive at all.
					continue
				case len(fields) == 0:
					d.bad = "missing analyzer name and reason"
				case !known[fields[0]]:
					d.bad = fmt.Sprintf("unknown analyzer %q (known: %s)", fields[0], knownList(known))
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.bad = "missing reason: write //uopslint:ignore " + fields[0] + " <why this is safe>"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// onOwnLine reports whether only whitespace precedes the byte at pos on
// its line. With no source available it conservatively answers false, so
// the directive then only covers its own line.
func onOwnLine(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset-1 && i >= 0 && i < len(src); i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
