// Package analysistest runs analyzers over fixture packages and checks
// their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in GOPATH-style trees: testdata/src/<importpath>/*.go.
// Fixture files may import sibling fixture packages (resolved from the
// same tree, type-checked from source) and the standard library (resolved
// from compiler export data). A line producing a finding carries a
// comment of the form
//
//	// want "regexp" "another regexp"
//
// where each quoted (or backquoted) Go string literal is a regular
// expression that must match one finding's message reported on that line.
// Every finding must be wanted and every want must be matched, including
// the malformed-suppression findings the framework itself emits.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"uopsinfo/internal/analysis"
)

// Run loads the fixture package at testdata/src/<pkgpath>, applies the
// analyzers through the framework's full Check path (including
// suppression filtering and ignore-directive validation), and reports any
// divergence from the fixture's // want comments as test errors.
func Run(t *testing.T, testdata, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    fset,
		pkgs:    make(map[string]*types.Package),
		exports: make(map[string]string),
	}
	pkg, err := imp.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	known := make([]string, len(analyzers))
	for i, a := range analyzers {
		known[i] = a.Name
	}
	findings, err := analysis.Check([]*analysis.Package{pkg}, analyzers, known)
	if err != nil {
		t.Fatalf("checking fixture %s: %v", pkgpath, err)
	}
	wants, err := parseWants(fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgpath, err)
	}
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("%s: unexpected finding: %s: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
	}
}

// A want is one expected-finding regexp at a specific file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(f analysis.Finding) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

func parseWants(fset *token.FileSet, files []*ast.File) (*wantSet, error) {
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWantStrings(text)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, s := range res {
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, s, err)
					}
					ws.wants = append(ws.wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws, nil
}

// parseWantStrings reads a sequence of space-separated Go string literals
// (double-quoted or backquoted).
func parseWantStrings(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted string in want comment")
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted string %s: %v", s[:end+1], err)
			}
			out = append(out, lit)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted string in want comment")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want comment must hold quoted regexps, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no regexps")
	}
	return out, nil
}

// fixtureImporter resolves fixture-tree imports from source and standard
// library imports from compiler export data fetched on demand with
// `go list -export`.
type fixtureImporter struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*types.Package
	exports map[string]string
	std     types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	if dir := filepath.Join(fi.srcRoot, path); isDir(dir) {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	if fi.std == nil {
		fi.std = importer.ForCompiler(fi.fset, "gc", fi.lookupExport)
	}
	return fi.std.Import(path)
}

// load parses and type-checks the fixture package at srcRoot/<path>.
func (fi *fixtureImporter) load(path string) (*analysis.Package, error) {
	dir := filepath.Join(fi.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	sources := make(map[string][]byte)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(fi.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		sources[name] = src
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	fi.pkgs[path] = tpkg
	return &analysis.Package{
		Fset:       fi.fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Dir:        dir,
		ImportPath: path,
		Sources:    sources,
	}, nil
}

// lookupExport resolves a standard-library package to its export data
// file, shelling out to `go list -deps -export` once per unseen root and
// caching the transitive closure it reports.
func (fi *fixtureImporter) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := fi.exports[path]; ok {
		return os.Open(f)
	}
	cmd := exec.Command("go", "list", "-deps", "-export",
		"-json=ImportPath,Export,Standard", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath, Export string
			Standard           bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Standard && p.Export != "" {
			fi.exports[p.ImportPath] = p.Export
		}
	}
	f, ok := fi.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (fixtures may only import the standard library and sibling fixture packages)", path)
	}
	return os.Open(f)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
