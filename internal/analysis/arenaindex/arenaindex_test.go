package arenaindex_test

import (
	"testing"

	"uopsinfo/internal/analysis/analysistest"
	"uopsinfo/internal/analysis/arenaindex"
)

func TestArenaindexArenaPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "arenafix", arenaindex.Analyzer)
}

func TestArenaindexUnmarkedPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "noarena", arenaindex.Analyzer)
}
