// Package arenaindex enforces the pipesim arena discipline in packages
// marked //uopslint:arena.
//
// The simulator's hot path addresses dynamic µops, renamed values and
// wake-up list nodes by int32 indices into per-Machine arenas; cycle
// counts are int32 too. That is only sound because NewWithConfig bounds
// the cycle horizon (MaxCycles ≤ 2^30) and the port count, so indices and
// ready times cannot wrap — a bound that is easy to lose when a new
// int→int32 conversion sneaks in somewhere the guard does not cover. The
// analyzer therefore funnels every non-constant conversion from a wide
// integer type to int32 through a single audited helper, idx32, whose
// race-build assertion backs the guarantee; a direct conversion anywhere
// else in an arena package is a finding.
//
// The second half of the discipline is lifetime: arena-backed slices are
// reset (not freed) between runs, so an exported function that returns
// one — or stores one in a package-level variable — leaks memory that the
// next Run will overwrite. The analyzer flags exported functions whose
// return values alias a slice-typed field of their receiver and
// assignments of receiver slice fields to package-level variables.
package arenaindex

import (
	"go/ast"
	"go/types"

	"uopsinfo/internal/analysis"
)

// FunnelName is the audited int→int32 conversion helper arena packages
// must route wide-to-int32 conversions through.
const FunnelName = "idx32"

// Analyzer enforces the arena int32-index and no-escape discipline in
// packages marked //uopslint:arena.
var Analyzer = &analysis.Analyzer{
	Name: "arenaindex",
	Doc: "in //uopslint:arena packages, require int→int32 conversions to go through the " +
		"audited idx32 funnel and forbid exported functions from leaking arena-backed " +
		"slice fields (PR 5/7 arena discipline)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPackageDirective(pass.Files, "arena") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name != FunnelName {
				checkConversions(pass, fd)
			}
			checkEscapes(pass, fd)
		}
	}
	return nil
}

// checkConversions flags non-constant conversions from wide integer types
// to int32 outside the idx32 funnel.
func checkConversions(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Int32 {
			return true
		}
		argTV := pass.TypesInfo.Types[call.Args[0]]
		if argTV.Value != nil { // constant: the compiler checks the range
			return true
		}
		b, ok := argTV.Type.Underlying().(*types.Basic)
		if !ok {
			return true
		}
		switch b.Kind() {
		case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr:
			pass.Reportf(call.Pos(),
				"unguarded %s→int32 conversion; use %s so the range assertion in race builds covers it",
				b.Name(), FunnelName)
		}
		return true
	})
}

// checkEscapes flags exported functions that leak receiver slice fields
// (returns that alias them, or stores into package-level variables).
func checkEscapes(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverObj(pass, fd)
	exported := fd.Name.IsExported()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !exported || recv == nil {
				return true
			}
			for _, res := range n.Results {
				if aliasesRecvSliceField(pass, res, recv) {
					pass.Reportf(res.Pos(),
						"exported %s returns a slice aliasing an arena field of %s; arenas are reset between runs — copy instead",
						fd.Name.Name, recv.Name())
				}
			}
		case *ast.AssignStmt:
			if recv == nil {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if isPackageLevelVar(pass, lhs) && aliasesRecvSliceField(pass, rhs, recv) {
					pass.Reportf(n.Pos(),
						"stores a slice aliasing an arena field of %s in a package-level variable; arenas are reset between runs",
						recv.Name())
				}
			}
		}
		return true
	})
}

// aliasesRecvSliceField reports whether e evaluates to a slice sharing a
// backing array with a slice-typed field of the receiver: the field
// selector itself, a reslice of it, an append to it (which may return the
// same array), or a composite literal carrying one of those. Element
// reads (f[i]), len/cap and variadic append *sources* (append(dst,
// f...) copies) do not alias.
func aliasesRecvSliceField(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return aliasesRecvSliceField(pass, e.X, recv)
	case *ast.SelectorExpr:
		return isRecvSliceField(pass, e, recv)
	case *ast.SliceExpr:
		return aliasesRecvSliceField(pass, e.X, recv)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return aliasesRecvSliceField(pass, e.Args[0], recv)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if aliasesRecvSliceField(pass, v, recv) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return aliasesRecvSliceField(pass, e.X, recv)
	}
	return false
}

func isRecvSliceField(pass *analysis.Pass, sel *ast.SelectorExpr, recv types.Object) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	_, isSlice := s.Type().Underlying().(*types.Slice)
	return isSlice
}

func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

func isPackageLevelVar(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}
