// Package noarena has no arena directive: bare int32 conversions and
// returned slice fields are allowed and the analyzer must stay silent.
package noarena

// Buf is an ordinary container, not an arena.
type Buf struct {
	vals []int32
}

// Narrow converts without a funnel; fine outside arena packages.
func Narrow(v int) int32 {
	return int32(v)
}

// Vals may alias freely here.
func (b *Buf) Vals() []int32 {
	return b.vals
}
