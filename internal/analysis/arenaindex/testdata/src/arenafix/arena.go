// Package arenafix opts into the arena discipline: wide-integer narrowing
// must go through the idx32 funnel, and arena-backed slices must not leak
// out of the owning value.
//uopslint:arena
package arenafix

// Machine carries arena-backed state reused across runs.
type Machine struct {
	vals []int32
	tags []string
}

// idx32 is the funnel: the conversion inside it is the one allowed site.
func idx32(v int) int32 {
	return int32(v)
}

// grow demonstrates both sides of the conversion rule.
func (m *Machine) grow(n int, packed uint32) int32 {
	idx := int32(len(m.vals)) // want `unguarded int→int32 conversion; use idx32`
	_ = int32(n)              // want `unguarded int→int32 conversion; use idx32`
	_ = idx32(n)              // through the funnel: clean
	_ = int32(packed >> 8)    // uint32 source, a bit-unpack: clean
	_ = int32(7)              // constant: clean
	return idx
}

// Vals leaks the arena backing array to the caller.
func (m *Machine) Vals() []int32 {
	return m.vals // want `exported Vals returns a slice aliasing an arena field of m`
}

// ValsCopy hands out a copy: clean.
func (m *Machine) ValsCopy() []int32 {
	return append([]int32(nil), m.vals...)
}

// vals is unexported, so intra-package aliasing is allowed.
func (m *Machine) valsRaw() []int32 {
	return m.vals
}

var leaked []int32

// Stash retains the arena slice beyond the Machine's reset cycle.
func (m *Machine) Stash() {
	leaked = m.vals // want `stores a slice aliasing an arena field of m in a package-level variable`
}
