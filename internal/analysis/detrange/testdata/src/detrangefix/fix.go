// Package detrangefix exercises the detrange analyzer: map ranges whose
// bodies have order-sensitive effects are findings; commutative bodies and
// append-then-sort pipelines are clean.
package detrangefix

import (
	"fmt"
	"io"
	"sort"
)

// appendNoSort leaks map order into a slice that is never sorted.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m in nondeterministic order and appends to keys`
		keys = append(keys, k)
	}
	return keys
}

// appendThenSort is the canonical clean pattern: collect, then sort.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice also counts: any sort call over the same slice.
func appendThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// concat builds a string directly from map order.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `range over map m in nondeterministic order and concatenates into string s`
		s += k
	}
	return s
}

// floatSum accumulates floats, which is not associative.
func floatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `range over map m in nondeterministic order and accumulates floating-point value sum`
		sum += v
	}
	return sum
}

// intSum accumulates integers, which is commutative: clean.
func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapWrite only writes another map: clean.
func mapWrite(m map[string]int) map[int]string {
	out := make(map[int]string)
	for k, v := range m {
		out[v] = k
	}
	return out
}

// chanSend leaks map order into channel message order.
func chanSend(m map[string]int, ch chan string) {
	for k := range m { // want `range over map m in nondeterministic order and sends on a channel`
		ch <- k
	}
}

// sinkWrite streams map entries straight to a writer.
func sinkWrite(m map[string]int, w io.Writer) {
	for k, v := range m { // want `range over map m in nondeterministic order and writes via fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// annotated is order-sensitive in form but suppressed with a reason.
func annotated(m map[string]int, w io.Writer) {
	//uopslint:ignore detrange debug dump only, never parsed
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
