package detrange_test

import (
	"testing"

	"uopsinfo/internal/analysis/analysistest"
	"uopsinfo/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", "detrangefix", detrange.Analyzer)
}
