// Package detrange flags range statements over maps whose iteration order
// can reach an ordered sink.
//
// Go randomizes map iteration order, so a map range that appends to a
// slice, writes to an encoder or io.Writer, concatenates strings,
// accumulates floating-point values (rounding makes float addition
// order-sensitive) or sends on a channel produces different bytes on
// different runs — the single most likely way to silently break the
// repository's byte-identical-XML guarantee. The analyzer considers a map
// range clean when its loop body only performs order-insensitive work
// (map writes, integer accumulation, deletes, per-key lookups) or when
// every slice it appends to is passed to a sort or slices call later in
// the same function (the ubiquitous collect-then-sort idiom). Everything
// else is a finding: either restructure with a sort, or annotate the loop
// with //uopslint:ignore detrange <reason> stating why the operation is
// commutative.
//
// The analysis is intraprocedural: a helper that sorts its argument, or a
// method call with hidden ordered effects, is not tracked. The former
// needs an annotation; the latter is the reviewer's job.
package detrange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"uopsinfo/internal/analysis"
)

// Analyzer flags nondeterministic map iteration feeding ordered sinks.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag range-over-map whose iteration order reaches an ordered sink " +
		"(append without sort, writers/encoders, string/float accumulation, channel sends); " +
		"guards the byte-identical-output contract",
	Run: run,
}

// sinkMethods are method names that emit to an ordered destination.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeElement": true, "EncodeToken": true,
	"Print": true, "Printf": true, "Println": true,
}

// sinkFmtFuncs are the ordered-output functions of package fmt. Fprint*
// take the destination as their first argument; the rest write to stdout.
var sinkFmtFuncs = map[string]int{
	"Print": -1, "Printf": -1, "Println": -1,
	"Fprint": 0, "Fprintf": 0, "Fprintln": 0,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if eff := analyzeLoop(pass, rs, funcBody); eff != "" {
			pass.Reportf(rs.Pos(),
				"range over map %s in nondeterministic order %s; sort before the ordered step, or annotate //uopslint:ignore detrange <reason> if commutative",
				types.ExprString(rs.X), eff)
		}
		return true
	})
}

// analyzeLoop scans one map-range body for order-sensitive effects and
// returns a description of the first one found ("" = clean).
func analyzeLoop(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) string {
	var effect string
	report := func(desc string) {
		if effect == "" {
			effect = desc
		}
	}
	// appendTargets collects `x = append(x, ...)`-style targets (and
	// counter-indexed slice writes) declared outside the loop; they are
	// clean only if sorted after the loop.
	appendTargets := map[string]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, appendTargets, report)
		case *ast.SendStmt:
			report("and sends on a channel")
		case *ast.CallExpr:
			checkCall(pass, rs, n, report)
		}
		return true
	})

	for _, chain := range sortedKeys(appendTargets) {
		if !sortedAfter(pass, funcBody, rs, chain) {
			report(fmt.Sprintf("and appends to %s, which is never sorted afterwards in this function", chain))
		}
	}
	return effect
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, appendTargets map[string]token.Pos, report func(string)) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}

		// x = append(x, ...): sortable-after collect idiom.
		if rhs != nil && isAppendCall(pass, rhs) {
			if chain := exprChain(lhs); chain != "" && declaredOutside(pass, lhs, rs) {
				appendTargets[chain] = as.Pos()
			}
			continue
		}

		lhsType := pass.TypesInfo.TypeOf(lhs)

		// Accumulation: s += v (or s = s + v) is order-sensitive for
		// strings always and for floats through rounding.
		accumulates := as.Tok == token.ADD_ASSIGN ||
			(as.Tok == token.ASSIGN && rhs != nil && selfBinaryOp(lhs, rhs))
		if accumulates && declaredOutside(pass, lhs, rs) {
			switch {
			case isString(lhsType):
				report("and concatenates into string " + types.ExprString(lhs))
			case isFloat(lhsType):
				report("and accumulates floating-point value " + types.ExprString(lhs) +
					" (float addition is not associative)")
			}
		}

		// out[i] = v with a loop-carried counter index places elements
		// in iteration order; treat like an append target.
		if idx, ok := lhs.(*ast.IndexExpr); ok && as.Tok == token.ASSIGN {
			if _, isSlice := typeUnderlying(pass, idx.X).(*types.Slice); isSlice {
				if id, ok := idx.Index.(*ast.Ident); ok && modifiedWithin(pass, rs.Body, id) &&
					declaredOutside(pass, idx.X, rs) {
					if chain := exprChain(idx.X); chain != "" {
						appendTargets[chain] = as.Pos()
					}
				}
			}
		}
	}
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr, report func(string)) {
	// Ordered package-level functions: fmt.Print*/Fprint*, io.WriteString,
	// io.Copy.
	if obj := calleeObj(pass, call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			if argIdx, ok := sinkFmtFuncs[obj.Name()]; ok {
				if argIdx < 0 || (argIdx < len(call.Args) && declaredOutside(pass, call.Args[argIdx], rs)) {
					report("and writes via fmt." + obj.Name())
				}
				return
			}
		case "io":
			if (obj.Name() == "WriteString" || obj.Name() == "Copy") &&
				len(call.Args) > 0 && declaredOutside(pass, call.Args[0], rs) {
				report("and writes via io." + obj.Name())
				return
			}
		}
	}
	// Ordered methods (writers, encoders, loggers) on values that outlive
	// the iteration; a buffer created inside the loop body is per-key
	// state and therefore fine.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sinkMethods[sel.Sel.Name] {
		if pass.TypesInfo.Selections[sel] != nil && declaredOutside(pass, sel.X, rs) {
			report(fmt.Sprintf("and calls %s.%s", types.ExprString(sel.X), sel.Sel.Name))
		}
	}
}

// sortedAfter reports whether a sort or slices call after the loop
// references the given expression chain in the same function.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, chain string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || found {
			return true
		}
		obj := calleeObj(pass, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if containsChain(arg, chain) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// --- small syntactic/type helpers ---

// exprChain renders a pure ident/selector chain ("h.shortBuf"), or "" for
// anything more complex.
func exprChain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprChain(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprChain(e.X)
	}
	return ""
}

func containsChain(e ast.Expr, chain string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && exprChain(expr) == chain {
			found = true
		}
		return !found
	})
	return found
}

// rootObj resolves the leftmost identifier of an expression.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the root of e is declared outside the
// range statement (unresolvable roots conservatively count as outside).
func declaredOutside(pass *analysis.Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	obj := rootObj(pass, e)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// modifiedWithin reports whether the object behind id is assigned or
// incremented inside the node.
func modifiedWithin(pass *analysis.Pass, node ast.Node, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	modified := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if x, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[x] == obj {
				modified = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if x, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[x] == obj {
					modified = true
				}
			}
		}
		return !modified
	})
	return modified
}

func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// selfBinaryOp reports whether rhs is a binary expression with lhs as an
// operand (x = x + v).
func selfBinaryOp(lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	chain := exprChain(lhs)
	return chain != "" && (exprChain(bin.X) == chain || exprChain(bin.Y) == chain)
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func typeUnderlying(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
