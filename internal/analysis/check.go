package analysis

import (
	"fmt"
	"sort"
)

// MalformedIgnoreAnalyzer is the name findings about malformed
// //uopslint:ignore directives are reported under. It is not a runnable
// analyzer: the directive validation runs on every Check, so a broken
// suppression can never silently disable a real one.
const MalformedIgnoreAnalyzer = "uopslint"

// Check runs the analyzers over the packages, applies //uopslint:ignore
// suppressions, validates every ignore directive (a malformed one is
// itself a finding), and returns the surviving findings sorted by
// position. known is the full set of analyzer names a directive may
// legally reference — typically the whole suite, even when only a subset
// of analyzers runs, so a valid suppression for an unselected analyzer is
// not misreported as unknown.
func Check(pkgs []*Package, analyzers []*Analyzer, known []string) ([]Finding, error) {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := parseIgnores(pkg.Fset, pkg.Files, pkg.Sources, knownSet)
		for _, d := range ignores {
			if d.bad != "" {
				findings = append(findings, Finding{
					Analyzer: MalformedIgnoreAnalyzer,
					Pos:      pkg.Fset.Position(d.pos),
					Message:  "malformed //uopslint:ignore directive: " + d.bad,
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(ignores, a.Name, pos.Filename, pos.Line) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func suppressed(ignores []*ignoreDirective, analyzer, file string, line int) bool {
	for _, d := range ignores {
		if d.appliesTo(analyzer, file, line) {
			return true
		}
	}
	return false
}
