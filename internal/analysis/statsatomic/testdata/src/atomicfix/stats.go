// Package atomicfix exercises the statsatomic analyzer: fields touched by
// sync/atomic anywhere in the package must not also be accessed plainly.
package atomicfix

import "sync/atomic"

// Stats mixes access disciplines across its fields.
type Stats struct {
	hits   int64 // atomic everywhere: clean
	misses int64 // atomic on the write side, plain on the read side
	local  int64 // never atomic: clean
	typed  atomic.Int64
}

// Record is the concurrent write side.
func (s *Stats) Record(hit bool) {
	if hit {
		atomic.AddInt64(&s.hits, 1)
	} else {
		atomic.AddInt64(&s.misses, 1)
	}
	s.typed.Add(1)
	s.local++
}

// Hits reads consistently atomically: clean.
func (s *Stats) Hits() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Misses reads the atomically-written field with a bare load.
func (s *Stats) Misses() int64 {
	return s.misses // want `plain access to field misses, which is accessed atomically at`
}

// Reset stores plainly into the same field.
func (s *Stats) Reset() {
	s.misses = 0 // want `plain access to field misses, which is accessed atomically at`
}

// Snapshot reads after all writers have joined; the annotation records
// that reasoning instead of leaving a silent race-shaped read.
func (s *Stats) Snapshot() int64 {
	//uopslint:ignore statsatomic called only after the worker pool has joined
	return s.misses
}

// NewStats uses composite-literal keys, which are construction-time and
// exempt by design.
func NewStats() *Stats {
	return &Stats{hits: 0, misses: 0}
}
