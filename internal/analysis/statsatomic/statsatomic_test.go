package statsatomic_test

import (
	"testing"

	"uopsinfo/internal/analysis/analysistest"
	"uopsinfo/internal/analysis/statsatomic"
)

func TestStatsatomic(t *testing.T) {
	analysistest.Run(t, "testdata", "atomicfix", statsatomic.Analyzer)
}
