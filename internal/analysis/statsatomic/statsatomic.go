// Package statsatomic flags struct fields accessed both through
// sync/atomic functions and through plain loads or stores in the same
// package.
//
// The engine, the service and the fleet backend all keep shared counters
// (requests, coalesced waiters, pool reuse, per-worker batches) that are
// bumped from many goroutines and snapshotted from others. The safe
// patterns are "always atomic" or "an atomic.* typed field"; the broken
// pattern — atomic.AddInt64 on the write side, a bare read on the
// snapshot side — is exactly what the race detector only catches when a
// test happens to race, and what PR 7 fixed by hand once (charEntry.built
// became atomic.Bool). statsatomic makes the mixed pattern a finding: if
// any address of a struct field is passed to a sync/atomic function
// somewhere in the package, every plain selector access to that same
// field elsewhere is reported. Composite-literal initialization is
// exempt (construction happens before the value is shared); anything
// else deliberate — a read after all goroutines have joined, say — takes
// an //uopslint:ignore statsatomic annotation with the reason.
package statsatomic

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"uopsinfo/internal/analysis"
)

// Analyzer flags mixed atomic/plain access to the same struct field.
var Analyzer = &analysis.Analyzer{
	Name: "statsatomic",
	Doc: "flag struct fields accessed both via sync/atomic and via plain loads/stores " +
		"in the same package (the shared-counter discipline; use atomic.* types or " +
		"all-atomic access)",
	Run: run,
}

type access struct {
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	atomicUses := map[*types.Var][]access{} // field → atomic access sites
	plainUses := map[*types.Var][]access{}  // field → plain access sites
	// Selector nodes consumed by an atomic call (the &s.f argument) must
	// not also count as plain accesses.
	atomicArgSels := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				sel := addrOfFieldSel(pass, arg)
				if sel == nil {
					continue
				}
				fieldVar := selectedField(pass, sel)
				if fieldVar == nil {
					continue
				}
				atomicArgSels[sel] = true
				atomicUses[fieldVar] = append(atomicUses[fieldVar], access{pos: sel.Pos()})
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgSels[sel] {
				return true
			}
			fieldVar := selectedField(pass, sel)
			if fieldVar == nil {
				return true
			}
			plainUses[fieldVar] = append(plainUses[fieldVar], access{pos: sel.Pos()})
			return true
		})
	}

	fields := make([]*types.Var, 0, len(atomicUses))
	for fv := range atomicUses {
		fields = append(fields, fv)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, fv := range fields {
		plains := plainUses[fv]
		if len(plains) == 0 {
			continue
		}
		atomicAt := pass.Fset.Position(atomicUses[fv][0].pos)
		for _, p := range plains {
			pass.Reportf(p.pos,
				"plain access to field %s, which is accessed atomically at %s; use sync/atomic consistently or an atomic.%s-style typed field",
				fv.Name(), fmt.Sprintf("%s:%d", atomicAt.Filename, atomicAt.Line), suggestType(fv))
		}
	}
	return nil
}

// addrOfFieldSel unwraps &x.f (possibly parenthesized) to the selector.
func addrOfFieldSel(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	ue, ok := e.(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	inner := ue.X
	for {
		if p, ok := inner.(*ast.ParenExpr); ok {
			inner = p.X
			continue
		}
		break
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel
}

// selectedField resolves a selector to the struct field it names, or nil.
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// suggestType names the atomic wrapper type matching the field's type,
// for the finding message.
func suggestType(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Bool:
			return "Bool"
		}
	}
	return "Int64"
}
