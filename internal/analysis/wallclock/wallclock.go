// Package wallclock forbids wall-clock and randomness sources in packages
// that promise deterministic results.
//
// Every guarantee the characterization pipeline makes — byte-identical XML
// for any worker count, honest persistent cache keys, resumable runs that
// merge to the same bytes as cold runs — rests on the simulator, the
// characterization algorithms and the serialization layers being pure
// functions of their inputs. A single time.Now or math/rand call in one of
// those packages breaks that silently: results still look plausible, they
// just stop being reproducible. Packages opt in with a
// //uopslint:deterministic directive next to their package clause;
// wallclock then flags every use of time.Now, time.Since, time.Until,
// time.Sleep, timer/ticker construction, and any import of math/rand,
// math/rand/v2 or crypto/rand. Service and fleet-transport packages
// (timeouts, backoff, latency metrics) simply do not carry the directive.
package wallclock

import (
	"go/ast"
	"go/types"
	"strconv"

	"uopsinfo/internal/analysis"
)

// Analyzer flags wall-clock and randomness use in packages marked
// //uopslint:deterministic.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/math-rand in //uopslint:deterministic packages " +
		"(determinism contract of the characterization pipeline, PRs 1-8)",
	Run: run,
}

// forbiddenTimeFuncs are the functions of package time whose results (or
// scheduling effects) depend on the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// forbiddenImports are randomness sources; importing them at all in a
// deterministic package is a finding.
var forbiddenImports = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "crypto/rand": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPackageDirective(pass.Files, "deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenImports[path] {
				pass.Reportf(imp.Pos(),
					"deterministic package imports randomness source %q", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, isFunc := obj.(*types.Func); isFunc && forbiddenTimeFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"deterministic package calls time.%s (wall clock); results must be pure functions of their inputs",
					obj.Name())
			}
			return true
		})
	}
	return nil
}
