package wallclock_test

import (
	"testing"

	"uopsinfo/internal/analysis/analysistest"
	"uopsinfo/internal/analysis/wallclock"
)

func TestWallclockDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "clockdet", wallclock.Analyzer)
}

func TestWallclockUnmarkedPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "clockfree", wallclock.Analyzer)
}
