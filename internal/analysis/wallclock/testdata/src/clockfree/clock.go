// Package clockfree has no deterministic directive: wall-clock use is
// allowed and the analyzer must stay silent.
package clockfree

import "time"

// Stamp may read the wall clock freely here.
func Stamp() time.Time {
	return time.Now()
}
