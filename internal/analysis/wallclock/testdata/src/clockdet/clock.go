// Package clockdet opts into the deterministic discipline and then breaks
// it: wall-clock reads and randomness imports are findings, and a
// justified exception is suppressed with an annotation.
//uopslint:deterministic
package clockdet

import (
	_ "math/rand" // want `deterministic package imports randomness source "math/rand"`
	"time"
)

// Stamp reads the wall clock, which a deterministic package must not.
func Stamp() time.Time {
	return time.Now() // want `deterministic package calls time\.Now`
}

// Age measures elapsed wall time.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want `deterministic package calls time\.Since`
}

// Format only renders a caller-supplied time: clean.
func Format(t time.Time) string {
	return t.Format(time.RFC3339)
}

// SweepAge is a justified exception, suppressed with a reason.
func SweepAge(t time.Time) time.Duration {
	//uopslint:ignore wallclock age only gates garbage collection, never results
	return time.Since(t)
}
