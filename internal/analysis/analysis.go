// Package analysis is a small static-analysis framework modelled on
// golang.org/x/tools/go/analysis, built entirely on the standard library's
// go/ast and go/types so it works in hermetic builds with no module
// downloads. It exists to machine-check the invariants this repository's
// doc comments promise but the compiler cannot see: deterministic output
// for any worker count, wall-clock-free deterministic packages, the
// pipesim arena index discipline, the measurement-sequence no-retention
// contract, and consistent atomic access to shared counters.
//
// The shape mirrors go/analysis deliberately: an Analyzer has a Name, a
// Doc string and a Run function over a Pass; a Pass exposes the parsed
// files, the type-checked package and the types.Info for the package under
// analysis, and diagnostics are reported through the Pass. Should the
// repository ever gain network access to x/tools, the analyzers port over
// mechanically.
//
// # Suppressions
//
// A finding can be silenced with a comment on the flagged line (or on a
// comment-only line directly above it):
//
//	//uopslint:ignore <analyzer> <reason>
//
// The analyzer name must be one of the known analyzers and the reason must
// be non-empty; a malformed ignore directive is itself a finding, so
// suppressions cannot rot silently.
//
// # Package directives
//
// Two package-scope directives opt a package into stricter analyzer
// regimes (placed as a directive comment next to the package clause):
//
//	//uopslint:deterministic   wallclock: no time.Now/Since/... or math/rand
//	//uopslint:arena           arenaindex: int→int32 only via the idx32 funnel
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //uopslint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks,
	// beginning with the invariant it guards.
	Doc string

	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf. It is called once per package; analyzers must not
	// keep state across calls.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed and type-checked package
// under analysis and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one raw finding, before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is one reported problem after suppression filtering, with the
// position resolved for display.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// HasPackageDirective reports whether any file of the package carries the
// given //uopslint:<name> directive comment (e.g. "deterministic",
// "arena"). Directives are matched on whole comment lines, so a mention
// inside prose does not count.
func HasPackageDirective(files []*ast.File, name string) bool {
	want := directivePrefix + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == want {
					return true
				}
			}
		}
	}
	return false
}
