package xmlout

import (
	"bytes"
	"strings"
	"testing"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/uarch"
)

func sampleResult() *core.ArchResult {
	res := core.NewArchResult("Skylake")
	res.Results["ADD_R64_R64"] = &core.InstrResult{
		Name: "ADD_R64_R64", Mnemonic: "ADD",
		Uops: 1, UopsIssued: 1,
		Ports: core.PortUsage{"0156": 1},
		Latency: core.LatencyResult{Pairs: []core.OperandPairLatency{
			{Source: 0, Dest: 0, SourceName: "op1", DestName: "op1", Cycles: 1, Notes: "self chain"},
			{Source: 1, Dest: 0, SourceName: "op2", DestName: "op1", Cycles: 1, Notes: "MOVSX chain"},
		}},
		Throughput: core.ThroughputResult{Measured: 0.25, Computed: 0.25, MeasuredSequenceLength: 8},
	}
	res.Results["CPUID"] = &core.InstrResult{
		Name: "CPUID", Mnemonic: "CPUID", Uops: 14, UopsIssued: 14, Skipped: "system instruction",
	}
	res.Results["DIV_R64"] = &core.InstrResult{
		Name: "DIV_R64", Mnemonic: "DIV", Uops: 3, UopsIssued: 3,
		Ports: core.PortUsage{"0": 1, "0156": 2},
		Latency: core.LatencyResult{Pairs: []core.OperandPairLatency{
			{Source: 1, Dest: 1, SourceName: "RAX", DestName: "RAX", Cycles: 38, FastValueCycles: 26,
				Notes: "AND/OR value-pinned chain"},
		}},
		Throughput: core.ThroughputResult{Measured: 24, FastValueMeasured: 14},
	}
	return res
}

func TestXMLRoundTrip(t *testing.T) {
	t.Parallel()
	skl := uarch.Get(uarch.Skylake)
	a30, err := iaca.New(iaca.V30, skl)
	if err != nil {
		t.Fatal(err)
	}
	doc := &Document{Architectures: []Architecture{FromArchResult(sampleResult(), []*iaca.Analyzer{a30})}}

	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{`name="Skylake"`, `name="ADD_R64_R64"`, `ports="1*p0156"`,
		`skipped="system instruction"`, `version="3.0"`, `cyclesFastValues="26"`} {
		if !strings.Contains(text, want) {
			t.Errorf("XML output missing %q:\n%s", want, text)
		}
	}

	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Architectures) != 1 {
		t.Fatalf("round trip lost architectures: %d", len(back.Architectures))
	}
	arch := back.Architectures[0]
	add := arch.Lookup("ADD_R64_R64")
	if add == nil {
		t.Fatal("ADD_R64_R64 missing after round trip")
	}
	if add.Measured == nil || add.Measured.Uops != 1 || add.Measured.Ports != "1*p0156" {
		t.Errorf("ADD_R64_R64 measurement lost: %+v", add.Measured)
	}
	if len(add.Measured.Latencies) != 2 {
		t.Errorf("ADD_R64_R64 has %d latency entries, want 2", len(add.Measured.Latencies))
	}
	if len(add.IACA) != 1 || add.IACA[0].Version != "3.0" {
		t.Errorf("ADD_R64_R64 IACA entries = %+v", add.IACA)
	}
	div := arch.Lookup("DIV_R64")
	if div == nil || div.Measured.Latencies[0].FastValues != 26 {
		t.Error("DIV_R64 fast-value latency lost in round trip")
	}
	if arch.Lookup("NOPE") != nil {
		t.Error("Lookup found a non-existent instruction")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := Read(strings.NewReader("{json: true}")); err == nil {
		t.Error("Read accepted non-XML input")
	}
}
