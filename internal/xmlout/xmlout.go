// Package xmlout writes and reads the machine-readable XML result format of
// the characterization tool (Section 6.4 of the paper): for every instruction
// variant of every measured microarchitecture it records the µop count, the
// port usage, the operand-pair latencies and the throughput, both as measured
// on the (simulated) hardware and, where available, as reported by the IACA
// models.
package xmlout

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
)

// Document is the root of the results file.
type Document struct {
	XMLName       xml.Name       `xml:"uopsInfo"`
	Architectures []Architecture `xml:"architecture"`
}

// Architecture holds the results for one microarchitecture generation.
type Architecture struct {
	Name         string        `xml:"name,attr"`
	Instructions []Instruction `xml:"instruction"`
}

// Instruction holds the results for one instruction variant.
type Instruction struct {
	Name     string    `xml:"name,attr"`
	Mnemonic string    `xml:"asm,attr"`
	Skipped  string    `xml:"skipped,attr,omitempty"`
	Measured *Measured `xml:"measurement,omitempty"`
	IACA     []IACAOut `xml:"iaca,omitempty"`
}

// Measured is the hardware-measurement part of an instruction's results.
type Measured struct {
	Uops       float64   `xml:"uops,attr"`
	UopsIssued float64   `xml:"uopsIssued,attr"`
	Ports      string    `xml:"ports,attr,omitempty"`
	TPMeasured float64   `xml:"tpMeasured,attr,omitempty"`
	TPComputed float64   `xml:"tpComputed,attr,omitempty"`
	TPFast     float64   `xml:"tpFastValues,attr,omitempty"`
	Latencies  []Latency `xml:"latency"`
}

// Latency is one operand-pair latency entry.
type Latency struct {
	Source     string  `xml:"startOp,attr"`
	Dest       string  `xml:"targetOp,attr"`
	Cycles     float64 `xml:"cycles,attr"`
	UpperBound bool    `xml:"upperBound,attr,omitempty"`
	SameReg    bool    `xml:"sameReg,attr,omitempty"`
	FastValues float64 `xml:"cyclesFastValues,attr,omitempty"`
	Notes      string  `xml:"notes,attr,omitempty"`
}

// IACAOut is the per-version IACA view of an instruction.
type IACAOut struct {
	Version string `xml:"version,attr"`
	Uops    int    `xml:"uops,attr"`
	Ports   string `xml:"ports,attr"`
}

// FromArchResult converts a characterization result into the XML document
// model. iacaModels may be nil; otherwise each analyzer contributes a
// per-version entry for every instruction it knows.
func FromArchResult(res *core.ArchResult, iacaModels []*iaca.Analyzer) Architecture {
	arch := Architecture{Name: res.Arch}
	for _, name := range res.Names() {
		r := res.Results[name]
		inst := Instruction{Name: r.Name, Mnemonic: r.Mnemonic, Skipped: r.Skipped}
		m := &Measured{
			Uops:       r.Uops,
			UopsIssued: r.UopsIssued,
			Ports:      r.Ports.String(),
			TPMeasured: r.Throughput.Measured,
			TPComputed: r.Throughput.Computed,
			TPFast:     r.Throughput.FastValueMeasured,
		}
		if len(r.Ports) == 0 {
			m.Ports = ""
		}
		for _, p := range r.Latency.Pairs {
			m.Latencies = append(m.Latencies, Latency{
				Source:     p.SourceName,
				Dest:       p.DestName,
				Cycles:     p.Cycles,
				UpperBound: p.UpperBound,
				SameReg:    p.SameRegister,
				FastValues: p.FastValueCycles,
				Notes:      p.Notes,
			})
		}
		inst.Measured = m
		for _, a := range iacaModels {
			if e, ok := a.Entry(name); ok {
				inst.IACA = append(inst.IACA, IACAOut{
					Version: string(a.Version()),
					Uops:    e.Uops,
					Ports:   e.UsageString(),
				})
			}
		}
		arch.Instructions = append(arch.Instructions, inst)
	}
	return arch
}

// Write serializes the document as indented XML.
func Write(w io.Writer, doc *Document) error {
	sort.Slice(doc.Architectures, func(i, j int) bool {
		return doc.Architectures[i].Name < doc.Architectures[j].Name
	})
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlout: encoding results: %w", err)
	}
	return enc.Flush()
}

// Read parses a document produced by Write.
func Read(r io.Reader) (*Document, error) {
	var doc Document
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlout: decoding results: %w", err)
	}
	return &doc, nil
}

// Lookup returns the instruction entry for a variant in an architecture, or
// nil.
func (a *Architecture) Lookup(name string) *Instruction {
	for i := range a.Instructions {
		if a.Instructions[i].Name == name {
			return &a.Instructions[i]
		}
	}
	return nil
}
