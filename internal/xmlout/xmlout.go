// Package xmlout writes and reads the machine-readable XML result format of
// the characterization tool (Section 6.4 of the paper): for every instruction
// variant of every measured microarchitecture it records the µop count, the
// port usage, the operand-pair latencies and the throughput, both as measured
// on the (simulated) hardware and, where available, as reported by the IACA
// models.
//
//uopslint:deterministic
package xmlout

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
)

// Document is the root of the results file. The document model doubles as
// the characterization service's response body: the JSON tags define the
// JSON rendering of the same data the XML tags define for the results file.
type Document struct {
	XMLName       xml.Name       `xml:"uopsInfo" json:"-"`
	Architectures []Architecture `xml:"architecture" json:"architectures"`
}

// Architecture holds the results for one microarchitecture generation.
type Architecture struct {
	Name         string        `xml:"name,attr" json:"name"`
	Instructions []Instruction `xml:"instruction" json:"instructions"`
}

// Instruction holds the results for one instruction variant.
type Instruction struct {
	Name     string    `xml:"name,attr" json:"name"`
	Mnemonic string    `xml:"asm,attr" json:"asm"`
	Skipped  string    `xml:"skipped,attr,omitempty" json:"skipped,omitempty"`
	Measured *Measured `xml:"measurement,omitempty" json:"measurement,omitempty"`
	IACA     []IACAOut `xml:"iaca,omitempty" json:"iaca,omitempty"`
}

// Measured is the hardware-measurement part of an instruction's results.
type Measured struct {
	Uops       float64   `xml:"uops,attr" json:"uops"`
	UopsIssued float64   `xml:"uopsIssued,attr" json:"uopsIssued"`
	Ports      string    `xml:"ports,attr,omitempty" json:"ports,omitempty"`
	TPMeasured float64   `xml:"tpMeasured,attr,omitempty" json:"tpMeasured,omitempty"`
	TPComputed float64   `xml:"tpComputed,attr,omitempty" json:"tpComputed,omitempty"`
	TPFast     float64   `xml:"tpFastValues,attr,omitempty" json:"tpFastValues,omitempty"`
	Latencies  []Latency `xml:"latency" json:"latency,omitempty"`
}

// Latency is one operand-pair latency entry.
type Latency struct {
	Source     string  `xml:"startOp,attr" json:"startOp"`
	Dest       string  `xml:"targetOp,attr" json:"targetOp"`
	Cycles     float64 `xml:"cycles,attr" json:"cycles"`
	UpperBound bool    `xml:"upperBound,attr,omitempty" json:"upperBound,omitempty"`
	SameReg    bool    `xml:"sameReg,attr,omitempty" json:"sameReg,omitempty"`
	FastValues float64 `xml:"cyclesFastValues,attr,omitempty" json:"cyclesFastValues,omitempty"`
	Notes      string  `xml:"notes,attr,omitempty" json:"notes,omitempty"`
}

// IACAOut is the per-version IACA view of an instruction.
type IACAOut struct {
	Version string `xml:"version,attr" json:"version"`
	Uops    int    `xml:"uops,attr" json:"uops"`
	Ports   string `xml:"ports,attr" json:"ports"`
}

// Single wraps one architecture in a Document, the unit the service renders
// for a single-generation request.
func Single(a Architecture) *Document {
	return &Document{Architectures: []Architecture{a}}
}

// FromArchResult converts a characterization result into the XML document
// model. iacaModels may be nil; otherwise each analyzer contributes a
// per-version entry for every instruction it knows.
func FromArchResult(res *core.ArchResult, iacaModels []*iaca.Analyzer) Architecture {
	arch := Architecture{Name: res.Arch}
	for _, name := range res.Names() {
		r := res.Results[name]
		inst := Instruction{Name: r.Name, Mnemonic: r.Mnemonic, Skipped: r.Skipped}
		m := &Measured{
			Uops:       r.Uops,
			UopsIssued: r.UopsIssued,
			Ports:      r.Ports.String(),
			TPMeasured: r.Throughput.Measured,
			TPComputed: r.Throughput.Computed,
			TPFast:     r.Throughput.FastValueMeasured,
		}
		if len(r.Ports) == 0 {
			m.Ports = ""
		}
		for _, p := range r.Latency.Pairs {
			m.Latencies = append(m.Latencies, Latency{
				Source:     p.SourceName,
				Dest:       p.DestName,
				Cycles:     p.Cycles,
				UpperBound: p.UpperBound,
				SameReg:    p.SameRegister,
				FastValues: p.FastValueCycles,
				Notes:      p.Notes,
			})
		}
		inst.Measured = m
		for _, a := range iacaModels {
			if e, ok := a.Entry(name); ok {
				inst.IACA = append(inst.IACA, IACAOut{
					Version: string(a.Version()),
					Uops:    e.Uops,
					Ports:   e.UsageString(),
				})
			}
		}
		arch.Instructions = append(arch.Instructions, inst)
	}
	return arch
}

// Write serializes the document as indented XML.
func Write(w io.Writer, doc *Document) error {
	sort.Slice(doc.Architectures, func(i, j int) bool {
		return doc.Architectures[i].Name < doc.Architectures[j].Name
	})
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlout: encoding results: %w", err)
	}
	return enc.Flush()
}

// Read parses a document produced by Write.
func Read(r io.Reader) (*Document, error) {
	var doc Document
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlout: decoding results: %w", err)
	}
	return &doc, nil
}

// Lookup returns the instruction entry for a variant in an architecture, or
// nil.
func (a *Architecture) Lookup(name string) *Instruction {
	for i := range a.Instructions {
		if a.Instructions[i].Name == name {
			return &a.Instructions[i]
		}
	}
	return nil
}
