package xmlout

import (
	"bytes"
	"testing"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/uarch"
)

// TestMarshalledXMLIdenticalAcrossWorkerCounts characterizes a sampled
// variant set with 1, 2 and 8 workers and asserts that the marshalled XML
// documents are byte-identical: the sharded scheduler must merge results
// deterministically and the writer must order them deterministically.
func TestMarshalledXMLIdenticalAcrossWorkerCounts(t *testing.T) {
	arch := uarch.Get(uarch.Haswell)
	instrs := arch.InstrSet().Instrs()
	var only []string
	for i := 0; i < len(instrs); i += 70 {
		only = append(only, instrs[i].Name)
	}
	if len(only) < 10 {
		t.Fatalf("sample too small: %d variants", len(only))
	}

	var analyzers []*iaca.Analyzer
	for _, v := range iaca.SupportedVersions(arch.Gen()) {
		a, err := iaca.New(v, arch)
		if err != nil {
			t.Fatal(err)
		}
		analyzers = append(analyzers, a)
	}

	marshal := func(workers int) []byte {
		t.Helper()
		c := core.NewForArch(arch)
		res, err := c.CharacterizeAll(core.Options{Only: only, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		doc := &Document{Architectures: []Architecture{FromArchResult(res, analyzers)}}
		var buf bytes.Buffer
		if err := Write(&buf, doc); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.Bytes()
	}

	base := marshal(1)
	for _, workers := range []int{2, 8} {
		if got := marshal(workers); !bytes.Equal(got, base) {
			t.Errorf("workers=%d XML differs from workers=1 (%d vs %d bytes)", workers, len(got), len(base))
		}
	}
}
