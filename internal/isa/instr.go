package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Extension names the ISA extension an instruction variant belongs to. The
// extension matters for the SSE/AVX transition-penalty handling: blocking
// instructions for SSE instructions must not be AVX instructions and vice
// versa (Section 5.1.1).
type Extension string

// Extensions used by the generated instruction set.
const (
	ExtBase   Extension = "BASE"
	ExtBMI    Extension = "BMI"
	ExtMMX    Extension = "MMX"
	ExtSSE    Extension = "SSE"
	ExtSSE2   Extension = "SSE2"
	ExtSSE3   Extension = "SSE3"
	ExtSSSE3  Extension = "SSSE3"
	ExtSSE41  Extension = "SSE4.1"
	ExtSSE42  Extension = "SSE4.2"
	ExtAES    Extension = "AES"
	ExtCLMUL  Extension = "CLMUL"
	ExtAVX    Extension = "AVX"
	ExtAVX2   Extension = "AVX2"
	ExtF16C   Extension = "F16C"
	ExtFMA    Extension = "FMA"
	ExtSystem Extension = "SYSTEM"
)

// IsAVX reports whether instructions of this extension use the VEX-encoded
// AVX register state (relevant for SSE/AVX transition penalties).
func (e Extension) IsAVX() bool {
	switch e {
	case ExtAVX, ExtAVX2, ExtFMA, ExtF16C:
		return true
	}
	return false
}

// IsSSE reports whether instructions of this extension use legacy-encoded SSE
// state.
func (e Extension) IsSSE() bool {
	switch e {
	case ExtSSE, ExtSSE2, ExtSSE3, ExtSSSE3, ExtSSE41, ExtSSE42, ExtAES, ExtCLMUL:
		return true
	}
	return false
}

// Domain describes the execution domain of an instruction's data path. A
// value produced in one domain and consumed in another incurs a bypass delay
// on some microarchitectures (Section 5.2.1).
type Domain int

// Execution domains.
const (
	DomainInt    Domain = iota // general-purpose integer
	DomainVecInt               // vector integer
	DomainFP                   // vector floating point
)

var domainNames = [...]string{"INT", "VECINT", "FP"}

func (d Domain) String() string {
	if d >= 0 && int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// ParseDomain converts a domain name back into a Domain.
func ParseDomain(s string) Domain {
	for i, n := range domainNames {
		if n == s {
			return Domain(i)
		}
	}
	return DomainInt
}

// Instr describes one instruction variant: a mnemonic together with a fixed
// list of operand types and widths. Different operand-type combinations of
// the same mnemonic are distinct variants (e.g. "ADD_R64_R64", "ADD_R64_M64",
// "ADD_R64_I32"), mirroring the per-variant granularity of the paper.
type Instr struct {
	// Name uniquely identifies the variant, e.g. "ADD_R64_R64".
	Name string

	// Mnemonic is the assembler mnemonic, e.g. "ADD".
	Mnemonic string

	// Extension is the ISA extension the variant belongs to.
	Extension Extension

	// Domain is the execution domain of the variant's data path.
	Domain Domain

	// Operands lists explicit operands first (in assembler order), followed
	// by implicit operands.
	Operands []Operand

	// Attributes.
	IsSystem      bool // system instruction (excluded from blocking candidates)
	IsSerializing bool // serializing instruction (e.g. CPUID, LFENCE)
	ControlFlow   bool // may change control flow based on a register value
	UsesDivider   bool // uses the non-fully-pipelined divider unit
	IsNOP         bool // no architectural effect (NOP family)
	MayZeroIdiom  bool // is a zero idiom when both register operands are equal
	MayMoveElim   bool // register-to-register move eligible for move elimination
	HasLock       bool // has a LOCK prefix
	HasRep        bool // has a REP prefix (variable µop count)
}

// ExplicitOperands returns the operands that appear in the assembler syntax.
func (in *Instr) ExplicitOperands() []Operand {
	out := make([]Operand, 0, len(in.Operands))
	for _, op := range in.Operands {
		if !op.Implicit {
			out = append(out, op)
		}
	}
	return out
}

// ForEachExplicit calls fn for every explicit operand in assembler order,
// passing its explicit index (the index into an asmgen.Inst's concrete
// operand list) and a pointer into Operands. Iteration stops early when fn
// returns false. It is the allocation-free companion of ExplicitOperands for
// hot paths.
func (in *Instr) ForEachExplicit(fn func(explIdx int, op *Operand) bool) {
	expl := 0
	for i := range in.Operands {
		op := &in.Operands[i]
		if op.Implicit {
			continue
		}
		if !fn(expl, op) {
			return
		}
		expl++
	}
}

// ImplicitOperands returns the operands that do not appear in the assembler
// syntax (status flags, fixed registers).
func (in *Instr) ImplicitOperands() []Operand {
	out := make([]Operand, 0, len(in.Operands))
	for _, op := range in.Operands {
		if op.Implicit {
			out = append(out, op)
		}
	}
	return out
}

// SourceOperands returns the indices (into Operands) of all operands read by
// the instruction.
func (in *Instr) SourceOperands() []int {
	var out []int
	for i, op := range in.Operands {
		if op.Read {
			out = append(out, i)
		}
	}
	return out
}

// DestOperands returns the indices (into Operands) of all operands written by
// the instruction.
func (in *Instr) DestOperands() []int {
	var out []int
	for i, op := range in.Operands {
		if op.Write {
			out = append(out, i)
		}
	}
	return out
}

// OperandIndex returns the index of the operand with the given name, or -1.
func (in *Instr) OperandIndex(name string) int {
	for i, op := range in.Operands {
		if op.Name == name {
			return i
		}
	}
	return -1
}

// HasMemOperand reports whether any operand is a memory operand.
func (in *Instr) HasMemOperand() bool {
	for _, op := range in.Operands {
		if op.Kind == OpMem {
			return true
		}
	}
	return false
}

// ReadsMemory reports whether the instruction reads from memory.
func (in *Instr) ReadsMemory() bool {
	for _, op := range in.Operands {
		if op.Kind == OpMem && op.Read {
			return true
		}
	}
	return false
}

// WritesMemory reports whether the instruction writes to memory.
func (in *Instr) WritesMemory() bool {
	for _, op := range in.Operands {
		if op.Kind == OpMem && op.Write {
			return true
		}
	}
	return false
}

// ReadsFlags reports whether the instruction reads any status flag.
func (in *Instr) ReadsFlags() bool {
	for _, op := range in.Operands {
		if op.Kind == OpFlags && !op.ReadFlags.Empty() {
			return true
		}
	}
	return false
}

// WritesFlags reports whether the instruction writes any status flag.
func (in *Instr) WritesFlags() bool {
	for _, op := range in.Operands {
		if op.Kind == OpFlags && !op.WriteFlags.Empty() {
			return true
		}
	}
	return false
}

// String returns the variant name.
func (in *Instr) String() string { return in.Name }

// Signature renders a human-readable operand signature such as
// "ADD R64, R64 [flags:w]".
func (in *Instr) Signature() string {
	var parts []string
	for _, op := range in.ExplicitOperands() {
		switch op.Kind {
		case OpReg:
			parts = append(parts, op.Class.String())
		case OpMem:
			parts = append(parts, fmt.Sprintf("M%d", op.Width))
		case OpImm:
			parts = append(parts, fmt.Sprintf("I%d", op.Width))
		}
	}
	s := in.Mnemonic
	if len(parts) > 0 {
		s += " " + strings.Join(parts, ", ")
	}
	var impl []string
	for _, op := range in.ImplicitOperands() {
		impl = append(impl, op.String())
	}
	if len(impl) > 0 {
		s += " {" + strings.Join(impl, "; ") + "}"
	}
	return s
}

// Set is a collection of instruction variants with fast name lookup.
type Set struct {
	instrs []*Instr
	byName map[string]*Instr
}

// NewSet builds a Set from the given variants. Duplicate names are rejected.
func NewSet(instrs []*Instr) (*Set, error) {
	s := &Set{byName: make(map[string]*Instr, len(instrs))}
	for _, in := range instrs {
		if in.Name == "" {
			return nil, fmt.Errorf("isa: instruction with empty name (mnemonic %q)", in.Mnemonic)
		}
		if _, dup := s.byName[in.Name]; dup {
			return nil, fmt.Errorf("isa: duplicate instruction variant %q", in.Name)
		}
		s.byName[in.Name] = in
		s.instrs = append(s.instrs, in)
	}
	return s, nil
}

// MustNewSet is like NewSet but panics on error; intended for
// statically-known instruction lists.
func MustNewSet(instrs []*Instr) *Set {
	s, err := NewSet(instrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of variants in the set.
func (s *Set) Len() int { return len(s.instrs) }

// Instrs returns all variants in insertion order. The slice must not be
// modified.
func (s *Set) Instrs() []*Instr { return s.instrs }

// Lookup returns the variant with the given name, or nil.
func (s *Set) Lookup(name string) *Instr { return s.byName[name] }

// ByMnemonic returns all variants with the given mnemonic.
func (s *Set) ByMnemonic(mnemonic string) []*Instr {
	var out []*Instr
	for _, in := range s.instrs {
		if in.Mnemonic == mnemonic {
			out = append(out, in)
		}
	}
	return out
}

// Filter returns a new Set containing the variants for which keep returns
// true.
func (s *Set) Filter(keep func(*Instr) bool) *Set {
	var kept []*Instr
	for _, in := range s.instrs {
		if keep(in) {
			kept = append(kept, in)
		}
	}
	return MustNewSet(kept)
}

// Names returns the sorted list of variant names.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.instrs))
	for _, in := range s.instrs {
		names = append(names, in.Name)
	}
	sort.Strings(names)
	return names
}

// Mnemonics returns the sorted list of distinct mnemonics in the set.
func (s *Set) Mnemonics() []string {
	seen := make(map[string]bool)
	var out []string
	for _, in := range s.instrs {
		if !seen[in.Mnemonic] {
			seen[in.Mnemonic] = true
			out = append(out, in.Mnemonic)
		}
	}
	sort.Strings(out)
	return out
}
