package isa

import (
	"testing"
	"testing/quick"
)

func TestFlagSetBasics(t *testing.T) {
	t.Parallel()
	var s FlagSet
	if !s.Empty() {
		t.Error("zero FlagSet should be empty")
	}
	s = s.With(FlagCF).With(FlagZF)
	if !s.Has(FlagCF) || !s.Has(FlagZF) || s.Has(FlagOF) {
		t.Errorf("unexpected membership in %s", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	s = s.Without(FlagCF)
	if s.Has(FlagCF) || !s.Has(FlagZF) {
		t.Errorf("Without failed: %s", s)
	}
}

func TestFlagSetAllAndNoAF(t *testing.T) {
	t.Parallel()
	if FlagSetAll.Count() != 6 {
		t.Errorf("FlagSetAll should have 6 flags, got %d", FlagSetAll.Count())
	}
	if FlagSetNoAF.Has(FlagAF) {
		t.Error("FlagSetNoAF must not contain AF")
	}
	if FlagSetNoAF.Count() != 5 {
		t.Errorf("FlagSetNoAF should have 5 flags, got %d", FlagSetNoAF.Count())
	}
}

func TestFlagSetStringAndParse(t *testing.T) {
	t.Parallel()
	cases := map[FlagSet]string{
		FlagSetNone:                         "-",
		FlagSetCF:                           "CF",
		FlagSetCF | FlagSetOF:               "CF+OF",
		FlagSetAll:                          "CF+PF+AF+ZF+SF+OF",
		FlagSetZF.With(FlagSF).With(FlagPF): "PF+ZF+SF",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", s, got, want)
		}
		if got := ParseFlagSet(want); got != s {
			t.Errorf("ParseFlagSet(%q) = %v, want %v", want, got, s)
		}
	}
}

func TestFlagsListOrder(t *testing.T) {
	t.Parallel()
	s := FlagSetOF | FlagSetCF
	flags := s.Flags()
	if len(flags) != 2 || flags[0] != FlagCF || flags[1] != FlagOF {
		t.Errorf("Flags() = %v, want [CF OF]", flags)
	}
}

// Property: String/ParseFlagSet round-trips for every possible flag set.
func TestFlagSetRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(raw uint8) bool {
		s := FlagSet(raw) & FlagSetAll
		return ParseFlagSet(s.String()) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: With/Without are inverse operations as long as the flag was not
// already present/absent.
func TestFlagSetWithWithoutProperty(t *testing.T) {
	t.Parallel()
	f := func(raw uint8, flagIdx uint8) bool {
		s := FlagSet(raw) & FlagSetAll
		fl := Flag(int(flagIdx) % int(NumFlags))
		return s.With(fl).Without(fl) == s.Without(fl) && s.Without(fl).With(fl) == s.With(fl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
