package isa

import "fmt"

// OperandKind classifies an instruction operand.
type OperandKind int

// Operand kinds. Memory operands always use the [base] addressing form in
// generated benchmarks (the paper only tests base-register addressing,
// Section 8).
const (
	OpNone  OperandKind = iota
	OpReg               // register operand
	OpMem               // memory operand
	OpImm               // immediate operand
	OpFlags             // the status flags (always implicit)
)

var operandKindNames = map[OperandKind]string{
	OpNone:  "NONE",
	OpReg:   "REG",
	OpMem:   "MEM",
	OpImm:   "IMM",
	OpFlags: "FLAGS",
}

func (k OperandKind) String() string {
	if s, ok := operandKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OperandKind(%d)", int(k))
}

// ParseOperandKind converts a kind name back into an OperandKind.
func ParseOperandKind(s string) OperandKind {
	for k, n := range operandKindNames {
		if n == s {
			return k
		}
	}
	return OpNone
}

// Operand describes one (explicit or implicit) operand of an instruction
// variant. An operand can be both a source and a destination (Read and Write
// both set), which is common for the first operand of two-operand arithmetic
// instructions.
type Operand struct {
	// Name is a short identifier for the operand, unique within the
	// instruction: "op1", "op2", ... for explicit operands and a descriptive
	// name ("FLAGS", "RAX", "RCX") for implicit ones.
	Name string

	// Kind is the operand kind.
	Kind OperandKind

	// Class is the register class for OpReg operands; for OpMem operands it
	// describes the class of the value transferred (not of the base
	// register, which is always a 64-bit GPR).
	Class RegClass

	// Width is the operand width in bits (the width of the value read or
	// written). For immediates it is the immediate width.
	Width int

	// Read and Write indicate whether the instruction reads and/or writes
	// the operand.
	Read  bool
	Write bool

	// Implicit marks operands that do not appear in the assembler syntax.
	Implicit bool

	// FixedReg is the architectural register of an implicit register
	// operand (e.g. RAX for MUL, RCX for variable shifts). RegNone for
	// explicit operands.
	FixedReg Reg

	// ReadFlags / WriteFlags are the exact flag subsets accessed by OpFlags
	// operands. They are zero for non-flag operands.
	ReadFlags  FlagSet
	WriteFlags FlagSet
}

// IsSource reports whether the operand is read by the instruction.
func (o Operand) IsSource() bool { return o.Read }

// IsDest reports whether the operand is written by the instruction.
func (o Operand) IsDest() bool { return o.Write }

// IsFlags reports whether the operand is the status-flags operand.
func (o Operand) IsFlags() bool { return o.Kind == OpFlags }

// String renders a concise human-readable description, e.g. "op1:REG:GPR64:rw".
func (o Operand) String() string {
	rw := ""
	if o.Read {
		rw += "r"
	}
	if o.Write {
		rw += "w"
	}
	if rw == "" {
		rw = "-"
	}
	suffix := ""
	if o.Implicit {
		suffix = ":implicit"
		if o.FixedReg != RegNone {
			suffix = ":implicit=" + o.FixedReg.String()
		}
	}
	switch o.Kind {
	case OpReg:
		return fmt.Sprintf("%s:REG:%s:%s%s", o.Name, o.Class, rw, suffix)
	case OpMem:
		return fmt.Sprintf("%s:MEM%d:%s%s", o.Name, o.Width, rw, suffix)
	case OpImm:
		return fmt.Sprintf("%s:IMM%d%s", o.Name, o.Width, suffix)
	case OpFlags:
		return fmt.Sprintf("%s:FLAGS:r=%s,w=%s", o.Name, o.ReadFlags, o.WriteFlags)
	}
	return fmt.Sprintf("%s:%s", o.Name, o.Kind)
}

// RegOp constructs an explicit register operand.
func RegOp(name string, class RegClass, read, write bool) Operand {
	return Operand{Name: name, Kind: OpReg, Class: class, Width: class.Width(), Read: read, Write: write}
}

// MemOp constructs an explicit memory operand transferring width bits.
func MemOp(name string, width int, read, write bool) Operand {
	return Operand{Name: name, Kind: OpMem, Width: width, Read: read, Write: write}
}

// ImmOp constructs an immediate operand of the given width.
func ImmOp(name string, width int) Operand {
	return Operand{Name: name, Kind: OpImm, Width: width, Read: true}
}

// FlagsOp constructs the implicit status-flags operand with the given read
// and written flag subsets.
func FlagsOp(read, write FlagSet) Operand {
	return Operand{
		Name: "FLAGS", Kind: OpFlags, Class: ClassFlags, Width: 32,
		Read: !read.Empty(), Write: !write.Empty(),
		Implicit: true, ReadFlags: read, WriteFlags: write,
	}
}

// ImplicitRegOp constructs an implicit fixed-register operand.
func ImplicitRegOp(reg Reg, read, write bool) Operand {
	return Operand{
		Name: reg.String(), Kind: OpReg, Class: reg.Class(), Width: reg.Width(),
		Read: read, Write: write, Implicit: true, FixedReg: reg,
	}
}
