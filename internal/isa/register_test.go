package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClassWidths(t *testing.T) {
	t.Parallel()
	cases := []struct {
		class RegClass
		width int
	}{
		{ClassGPR8, 8}, {ClassGPR16, 16}, {ClassGPR32, 32}, {ClassGPR64, 64},
		{ClassXMM, 128}, {ClassYMM, 256}, {ClassZMM, 512}, {ClassMMX, 64},
	}
	for _, c := range cases {
		if got := c.class.Width(); got != c.width {
			t.Errorf("%s.Width() = %d, want %d", c.class, got, c.width)
		}
	}
}

func TestRegClassPredicates(t *testing.T) {
	t.Parallel()
	if !ClassGPR32.IsGPR() || ClassXMM.IsGPR() {
		t.Error("IsGPR misclassifies")
	}
	if !ClassYMM.IsVector() || ClassMMX.IsVector() || ClassGPR64.IsVector() {
		t.Error("IsVector misclassifies")
	}
}

func TestParseRegClassRoundTrip(t *testing.T) {
	t.Parallel()
	for _, c := range []RegClass{ClassGPR8, ClassGPR16, ClassGPR32, ClassGPR64, ClassXMM, ClassYMM, ClassZMM, ClassMMX, ClassFlags} {
		if got := ParseRegClass(c.String()); got != c {
			t.Errorf("ParseRegClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if ParseRegClass("bogus") != ClassNone {
		t.Error("ParseRegClass should return ClassNone for unknown names")
	}
}

func TestRegisterFamilies(t *testing.T) {
	t.Parallel()
	cases := []struct {
		reg, family Reg
	}{
		{EAX, RAX}, {AX, RAX}, {AL, RAX},
		{R10D, R10}, {R10W, R10}, {R10B, R10},
		{YMM3, XMM3}, {XMM3, XMM3},
		{MM5, MM5}, {RAX, RAX},
	}
	for _, c := range cases {
		if got := c.reg.Family(); got != c.family {
			t.Errorf("%s.Family() = %s, want %s", c.reg, got, c.family)
		}
	}
}

func TestInFamily(t *testing.T) {
	t.Parallel()
	if got := RAX.InFamily(ClassGPR8); got != AL {
		t.Errorf("RAX.InFamily(GPR8) = %s, want AL", got)
	}
	if got := EAX.InFamily(ClassGPR64); got != RAX {
		t.Errorf("EAX.InFamily(GPR64) = %s, want RAX", got)
	}
	if got := YMM7.InFamily(ClassXMM); got != XMM7 {
		t.Errorf("YMM7.InFamily(XMM) = %s, want XMM7", got)
	}
	if got := XMM2.InFamily(ClassYMM); got != YMM2 {
		t.Errorf("XMM2.InFamily(YMM) = %s, want YMM2", got)
	}
	if got := XMM0.InFamily(ClassGPR64); got != RegNone {
		t.Errorf("XMM0.InFamily(GPR64) = %s, want RegNone", got)
	}
	if got := RAX.InFamily(ClassFlags); got != RFLAGS {
		t.Errorf("RAX.InFamily(Flags) = %s, want RFLAGS", got)
	}
}

func TestRegistersOfClassConsistency(t *testing.T) {
	t.Parallel()
	for _, class := range []RegClass{ClassGPR8, ClassGPR16, ClassGPR32, ClassGPR64, ClassXMM, ClassYMM, ClassMMX} {
		regs := RegistersOfClass(class)
		if len(regs) == 0 {
			t.Errorf("no registers for class %s", class)
			continue
		}
		for _, r := range regs {
			if r.Class() != class {
				t.Errorf("register %s listed under class %s but has class %s", r, class, r.Class())
			}
		}
	}
	if len(RegistersOfClass(ClassGPR64)) != 16 {
		t.Errorf("expected 16 GPR64 registers, got %d", len(RegistersOfClass(ClassGPR64)))
	}
	if len(RegistersOfClass(ClassMMX)) != 8 {
		t.Errorf("expected 8 MMX registers, got %d", len(RegistersOfClass(ClassMMX)))
	}
}

func TestParseRegRoundTrip(t *testing.T) {
	t.Parallel()
	for r := Reg(1); r < Reg(NumRegs); r++ {
		if got := ParseReg(r.String()); got != r {
			t.Errorf("ParseReg(%q) = %v, want %v", r.String(), got, r)
		}
	}
	if ParseReg("NOSUCHREG") != RegNone {
		t.Error("ParseReg should return RegNone for unknown names")
	}
}

// Property: InFamily is consistent with Family — converting a register to
// any class within its family and back to the original class yields the
// original register (for GPRs), and the family of the converted register is
// the family of the original.
func TestInFamilyPropertyGPR(t *testing.T) {
	t.Parallel()
	gprs := RegistersOfClass(ClassGPR64)
	classes := []RegClass{ClassGPR8, ClassGPR16, ClassGPR32, ClassGPR64}
	f := func(regIdx, classIdx uint8) bool {
		r := gprs[int(regIdx)%len(gprs)]
		c := classes[int(classIdx)%len(classes)]
		sub := r.InFamily(c)
		if sub == RegNone {
			return false
		}
		return sub.Family() == r.Family() && sub.Class() == c && sub.InFamily(ClassGPR64) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the family of a register always belongs to the same storage as
// the register itself (same family is idempotent).
func TestFamilyIdempotentProperty(t *testing.T) {
	t.Parallel()
	f := func(raw uint16) bool {
		r := Reg(int(raw) % NumRegs)
		return r.Family().Family() == r.Family()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
