package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestXMLRoundTrip(t *testing.T) {
	t.Parallel()
	instrs := []*Instr{
		{
			Name: "ADD_R64_R64", Mnemonic: "ADD", Extension: ExtBase, Domain: DomainInt,
			Operands: []Operand{
				RegOp("op1", ClassGPR64, true, true),
				RegOp("op2", ClassGPR64, true, false),
				FlagsOp(FlagSetNone, FlagSetAll),
			},
		},
		{
			Name: "DIV_R32", Mnemonic: "DIV", Extension: ExtBase, Domain: DomainInt, UsesDivider: true,
			Operands: []Operand{
				RegOp("op1", ClassGPR32, true, false),
				ImplicitRegOp(RAX, true, true),
				ImplicitRegOp(RDX, true, true),
				FlagsOp(FlagSetNone, FlagSetAll),
			},
		},
		{
			Name: "AESDEC_XMM_M128", Mnemonic: "AESDEC", Extension: ExtAES, Domain: DomainVecInt,
			Operands: []Operand{
				RegOp("op1", ClassXMM, true, true),
				MemOp("op2", 128, true, false),
			},
		},
		{
			Name: "CPUID", Mnemonic: "CPUID", Extension: ExtSystem, Domain: DomainInt,
			IsSystem: true, IsSerializing: true,
			Operands: []Operand{ImplicitRegOp(RAX, true, true)},
		},
	}
	set, err := NewSet(instrs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `name="ADD_R64_R64"`) || !strings.Contains(out, `extension="AES"`) {
		t.Fatalf("XML output missing expected attributes:\n%s", out)
	}
	back, err := ReadXML(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("round trip lost instructions: %d != %d", back.Len(), set.Len())
	}
	for _, orig := range set.Instrs() {
		got := back.Lookup(orig.Name)
		if got == nil {
			t.Errorf("variant %s missing after round trip", orig.Name)
			continue
		}
		if got.Mnemonic != orig.Mnemonic || got.Extension != orig.Extension || got.Domain != orig.Domain {
			t.Errorf("%s: header mismatch after round trip: %+v vs %+v", orig.Name, got, orig)
		}
		if got.IsSystem != orig.IsSystem || got.UsesDivider != orig.UsesDivider || got.IsSerializing != orig.IsSerializing {
			t.Errorf("%s: attribute mismatch after round trip", orig.Name)
		}
		if len(got.Operands) != len(orig.Operands) {
			t.Errorf("%s: operand count %d != %d", orig.Name, len(got.Operands), len(orig.Operands))
			continue
		}
		for i := range orig.Operands {
			o, g := orig.Operands[i], got.Operands[i]
			if o.Kind != g.Kind || o.Class != g.Class || o.Width != g.Width ||
				o.Read != g.Read || o.Write != g.Write || o.Implicit != g.Implicit ||
				o.FixedReg != g.FixedReg || o.ReadFlags != g.ReadFlags || o.WriteFlags != g.WriteFlags {
				t.Errorf("%s operand %d mismatch: %+v vs %+v", orig.Name, i, g, o)
			}
		}
	}
}

func TestReadXMLRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := ReadXML(strings.NewReader("this is not xml")); err == nil {
		t.Error("ReadXML accepted invalid input")
	}
}
