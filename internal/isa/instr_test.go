package isa

import (
	"strings"
	"testing"
)

func sampleInstr() *Instr {
	return &Instr{
		Name:      "ADD_R64_M64",
		Mnemonic:  "ADD",
		Extension: ExtBase,
		Domain:    DomainInt,
		Operands: []Operand{
			RegOp("op1", ClassGPR64, true, true),
			MemOp("op2", 64, true, false),
			FlagsOp(FlagSetNone, FlagSetAll),
		},
	}
}

func TestInstrOperandQueries(t *testing.T) {
	t.Parallel()
	in := sampleInstr()
	if got := len(in.ExplicitOperands()); got != 2 {
		t.Errorf("ExplicitOperands = %d, want 2", got)
	}
	if got := len(in.ImplicitOperands()); got != 1 {
		t.Errorf("ImplicitOperands = %d, want 1", got)
	}
	if got := in.SourceOperands(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SourceOperands = %v, want [0 1]", got)
	}
	if got := in.DestOperands(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("DestOperands = %v, want [0 2]", got)
	}
	if in.OperandIndex("FLAGS") != 2 || in.OperandIndex("op1") != 0 || in.OperandIndex("nope") != -1 {
		t.Error("OperandIndex lookup failed")
	}
	if !in.HasMemOperand() || !in.ReadsMemory() || in.WritesMemory() {
		t.Error("memory predicates misreport")
	}
	if in.ReadsFlags() || !in.WritesFlags() {
		t.Error("flags predicates misreport")
	}
}

func TestInstrSignature(t *testing.T) {
	t.Parallel()
	in := sampleInstr()
	sig := in.Signature()
	if !strings.HasPrefix(sig, "ADD GPR64, M64") {
		t.Errorf("Signature = %q, want prefix 'ADD GPR64, M64'", sig)
	}
	if !strings.Contains(sig, "FLAGS") {
		t.Errorf("Signature %q should mention the implicit FLAGS operand", sig)
	}
}

func TestExtensionClassification(t *testing.T) {
	t.Parallel()
	if !ExtAVX.IsAVX() || !ExtFMA.IsAVX() || ExtSSE2.IsAVX() || ExtBase.IsAVX() {
		t.Error("IsAVX misclassifies")
	}
	if !ExtSSE41.IsSSE() || !ExtAES.IsSSE() || ExtAVX.IsSSE() || ExtBase.IsSSE() {
		t.Error("IsSSE misclassifies")
	}
}

func TestSetLookupAndFilter(t *testing.T) {
	t.Parallel()
	a := sampleInstr()
	b := &Instr{Name: "NOP", Mnemonic: "NOP", Extension: ExtBase, IsNOP: true}
	c := &Instr{Name: "ADD_R32_R32", Mnemonic: "ADD", Extension: ExtBase,
		Operands: []Operand{RegOp("op1", ClassGPR32, true, true), RegOp("op2", ClassGPR32, true, false)}}
	set, err := NewSet([]*Instr{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("Len = %d, want 3", set.Len())
	}
	if set.Lookup("NOP") != b || set.Lookup("missing") != nil {
		t.Error("Lookup failed")
	}
	if got := set.ByMnemonic("ADD"); len(got) != 2 {
		t.Errorf("ByMnemonic(ADD) = %d entries, want 2", len(got))
	}
	filtered := set.Filter(func(in *Instr) bool { return !in.IsNOP })
	if filtered.Len() != 2 || filtered.Lookup("NOP") != nil {
		t.Error("Filter did not remove the NOP")
	}
	names := set.Names()
	if len(names) != 3 || names[0] > names[1] || names[1] > names[2] {
		t.Errorf("Names not sorted: %v", names)
	}
	mnemonics := set.Mnemonics()
	if len(mnemonics) != 2 {
		t.Errorf("Mnemonics = %v, want 2 distinct", mnemonics)
	}
}

func TestNewSetRejectsDuplicatesAndEmptyNames(t *testing.T) {
	t.Parallel()
	a := sampleInstr()
	dup := sampleInstr()
	if _, err := NewSet([]*Instr{a, dup}); err == nil {
		t.Error("NewSet accepted duplicate names")
	}
	if _, err := NewSet([]*Instr{{Mnemonic: "X"}}); err == nil {
		t.Error("NewSet accepted an empty name")
	}
}

func TestOperandConstructors(t *testing.T) {
	t.Parallel()
	r := RegOp("op1", ClassXMM, true, false)
	if r.Kind != OpReg || r.Width != 128 || !r.Read || r.Write {
		t.Errorf("RegOp built %+v", r)
	}
	m := MemOp("op2", 32, false, true)
	if m.Kind != OpMem || m.Width != 32 || m.Read || !m.Write {
		t.Errorf("MemOp built %+v", m)
	}
	i := ImmOp("op3", 8)
	if i.Kind != OpImm || i.Width != 8 || !i.Read {
		t.Errorf("ImmOp built %+v", i)
	}
	fl := FlagsOp(FlagSetCF, FlagSetAll)
	if fl.Kind != OpFlags || !fl.Read || !fl.Write || !fl.Implicit {
		t.Errorf("FlagsOp built %+v", fl)
	}
	ir := ImplicitRegOp(RAX, true, true)
	if ir.FixedReg != RAX || !ir.Implicit || ir.Class != ClassGPR64 {
		t.Errorf("ImplicitRegOp built %+v", ir)
	}
}
