// Package isa models the subset of the x86-64 instruction set needed to
// automatically generate microbenchmarks: register classes, operand kinds,
// explicit and implicit operands, and instruction variants.
//
// The model corresponds to the machine-readable XML instruction description
// the paper derives from Intel XED's configuration files (Section 6.1): it is
// deliberately free of encoding details and keeps exactly the information the
// benchmark generator needs (operand types and widths, read/write attributes,
// implicit operands such as status flags, and instruction attributes such as
// "uses the divider" or "is a serializing instruction").
//
//uopslint:deterministic
package isa

import "fmt"

// RegClass identifies an architectural register file.
type RegClass int

// Register classes. GPR classes are separated by access width because
// operand width determines both encoding variants and microarchitectural
// behaviour (partial register stalls).
const (
	ClassNone RegClass = iota
	ClassGPR8
	ClassGPR16
	ClassGPR32
	ClassGPR64
	ClassXMM
	ClassYMM
	ClassZMM
	ClassMMX
	ClassFlags
)

var regClassNames = map[RegClass]string{
	ClassNone:  "NONE",
	ClassGPR8:  "GPR8",
	ClassGPR16: "GPR16",
	ClassGPR32: "GPR32",
	ClassGPR64: "GPR64",
	ClassXMM:   "XMM",
	ClassYMM:   "YMM",
	ClassZMM:   "ZMM",
	ClassMMX:   "MMX",
	ClassFlags: "FLAGS",
}

func (c RegClass) String() string {
	if s, ok := regClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("RegClass(%d)", int(c))
}

// Width reports the register width in bits for the class, or 0 if the class
// has no fixed width.
func (c RegClass) Width() int {
	switch c {
	case ClassGPR8:
		return 8
	case ClassGPR16:
		return 16
	case ClassGPR32:
		return 32
	case ClassGPR64:
		return 64
	case ClassXMM:
		return 128
	case ClassYMM:
		return 256
	case ClassZMM:
		return 512
	case ClassMMX:
		return 64
	case ClassFlags:
		return 32
	}
	return 0
}

// IsGPR reports whether the class is a general-purpose register class.
func (c RegClass) IsGPR() bool {
	switch c {
	case ClassGPR8, ClassGPR16, ClassGPR32, ClassGPR64:
		return true
	}
	return false
}

// IsVector reports whether the class is a SIMD register class (XMM/YMM/ZMM).
func (c RegClass) IsVector() bool {
	switch c {
	case ClassXMM, ClassYMM, ClassZMM:
		return true
	}
	return false
}

// ParseRegClass converts a class name as used in the spec files back into a
// RegClass. Unknown names yield ClassNone.
func ParseRegClass(s string) RegClass {
	for c, n := range regClassNames {
		if n == s {
			return c
		}
	}
	return ClassNone
}

// Reg is a concrete architectural register. The zero value RegNone means
// "no register".
type Reg int

// General-purpose register families. The 64-bit names are the canonical
// family identifiers; narrower registers alias onto the same family.
const (
	RegNone Reg = iota

	// 64-bit general-purpose registers.
	RAX
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// 32-bit general-purpose registers.
	EAX
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	R8D
	R9D
	R10D
	R11D
	R12D
	R13D
	R14D
	R15D

	// 16-bit general-purpose registers.
	AX
	BX
	CX
	DX
	SI
	DI
	BP
	SP
	R8W
	R9W
	R10W
	R11W
	R12W
	R13W
	R14W
	R15W

	// 8-bit general-purpose registers (low byte).
	AL
	BL
	CL
	DL
	SIL
	DIL
	BPL
	SPL
	R8B
	R9B
	R10B
	R11B
	R12B
	R13B
	R14B
	R15B

	// XMM registers.
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15

	// YMM registers (alias the XMM family).
	YMM0
	YMM1
	YMM2
	YMM3
	YMM4
	YMM5
	YMM6
	YMM7
	YMM8
	YMM9
	YMM10
	YMM11
	YMM12
	YMM13
	YMM14
	YMM15

	// MMX registers.
	MM0
	MM1
	MM2
	MM3
	MM4
	MM5
	MM6
	MM7

	// RFLAGS as a single architectural resource (individual status flags are
	// modelled separately by the simulator, see FlagSet).
	RFLAGS

	numRegs
)

var regNames = [...]string{
	RegNone: "NONE",
	RAX:     "RAX", RBX: "RBX", RCX: "RCX", RDX: "RDX",
	RSI: "RSI", RDI: "RDI", RBP: "RBP", RSP: "RSP",
	R8: "R8", R9: "R9", R10: "R10", R11: "R11",
	R12: "R12", R13: "R13", R14: "R14", R15: "R15",
	EAX: "EAX", EBX: "EBX", ECX: "ECX", EDX: "EDX",
	ESI: "ESI", EDI: "EDI", EBP: "EBP", ESP: "ESP",
	R8D: "R8D", R9D: "R9D", R10D: "R10D", R11D: "R11D",
	R12D: "R12D", R13D: "R13D", R14D: "R14D", R15D: "R15D",
	AX: "AX", BX: "BX", CX: "CX", DX: "DX",
	SI: "SI", DI: "DI", BP: "BP", SP: "SP",
	R8W: "R8W", R9W: "R9W", R10W: "R10W", R11W: "R11W",
	R12W: "R12W", R13W: "R13W", R14W: "R14W", R15W: "R15W",
	AL: "AL", BL: "BL", CL: "CL", DL: "DL",
	SIL: "SIL", DIL: "DIL", BPL: "BPL", SPL: "SPL",
	R8B: "R8B", R9B: "R9B", R10B: "R10B", R11B: "R11B",
	R12B: "R12B", R13B: "R13B", R14B: "R14B", R15B: "R15B",
	XMM0: "XMM0", XMM1: "XMM1", XMM2: "XMM2", XMM3: "XMM3",
	XMM4: "XMM4", XMM5: "XMM5", XMM6: "XMM6", XMM7: "XMM7",
	XMM8: "XMM8", XMM9: "XMM9", XMM10: "XMM10", XMM11: "XMM11",
	XMM12: "XMM12", XMM13: "XMM13", XMM14: "XMM14", XMM15: "XMM15",
	YMM0: "YMM0", YMM1: "YMM1", YMM2: "YMM2", YMM3: "YMM3",
	YMM4: "YMM4", YMM5: "YMM5", YMM6: "YMM6", YMM7: "YMM7",
	YMM8: "YMM8", YMM9: "YMM9", YMM10: "YMM10", YMM11: "YMM11",
	YMM12: "YMM12", YMM13: "YMM13", YMM14: "YMM14", YMM15: "YMM15",
	MM0: "MM0", MM1: "MM1", MM2: "MM2", MM3: "MM3",
	MM4: "MM4", MM5: "MM5", MM6: "MM6", MM7: "MM7",
	RFLAGS: "RFLAGS",
}

func (r Reg) String() string {
	if r >= 0 && int(r) < len(regNames) && regNames[r] != "" {
		return regNames[r]
	}
	return fmt.Sprintf("Reg(%d)", int(r))
}

// NumRegs is the total number of architectural registers modelled.
const NumRegs = int(numRegs)

// Class reports the register class of r.
func (r Reg) Class() RegClass {
	switch {
	case r >= RAX && r <= R15:
		return ClassGPR64
	case r >= EAX && r <= R15D:
		return ClassGPR32
	case r >= AX && r <= R15W:
		return ClassGPR16
	case r >= AL && r <= R15B:
		return ClassGPR8
	case r >= XMM0 && r <= XMM15:
		return ClassXMM
	case r >= YMM0 && r <= YMM15:
		return ClassYMM
	case r >= MM0 && r <= MM7:
		return ClassMMX
	case r == RFLAGS:
		return ClassFlags
	}
	return ClassNone
}

// Width reports the width of r in bits.
func (r Reg) Width() int { return r.Class().Width() }

// Family returns the canonical register that identifies the physical register
// family r belongs to: the 64-bit name for general-purpose registers, the XMM
// name for XMM/YMM pairs, and r itself otherwise. Two registers with the same
// family share storage, so a write to one creates a dependency for a read of
// the other.
func (r Reg) Family() Reg {
	switch {
	case r >= RAX && r <= R15:
		return r
	case r >= EAX && r <= R15D:
		return RAX + (r - EAX)
	case r >= AX && r <= R15W:
		return RAX + (r - AX)
	case r >= AL && r <= R15B:
		return RAX + (r - AL)
	case r >= XMM0 && r <= XMM15:
		return r
	case r >= YMM0 && r <= YMM15:
		return XMM0 + (r - YMM0)
	}
	return r
}

// InFamily returns the register of the requested class that belongs to the
// same family as r, or RegNone if the family has no register of that class.
func (r Reg) InFamily(c RegClass) Reg {
	fam := r.Family()
	switch c {
	case ClassGPR64:
		if fam >= RAX && fam <= R15 {
			return fam
		}
	case ClassGPR32:
		if fam >= RAX && fam <= R15 {
			return EAX + (fam - RAX)
		}
	case ClassGPR16:
		if fam >= RAX && fam <= R15 {
			return AX + (fam - RAX)
		}
	case ClassGPR8:
		if fam >= RAX && fam <= R15 {
			return AL + (fam - RAX)
		}
	case ClassXMM:
		if fam >= XMM0 && fam <= XMM15 {
			return fam
		}
	case ClassYMM:
		if fam >= XMM0 && fam <= XMM15 {
			return YMM0 + (fam - XMM0)
		}
	case ClassMMX:
		if fam >= MM0 && fam <= MM7 {
			return fam
		}
	case ClassFlags:
		return RFLAGS
	}
	return RegNone
}

// RegistersOfClass returns all architectural registers of the given class, in
// a fixed order. The returned slice must not be modified by the caller.
func RegistersOfClass(c RegClass) []Reg {
	switch c {
	case ClassGPR64:
		return gpr64Regs
	case ClassGPR32:
		return gpr32Regs
	case ClassGPR16:
		return gpr16Regs
	case ClassGPR8:
		return gpr8Regs
	case ClassXMM:
		return xmmRegs
	case ClassYMM:
		return ymmRegs
	case ClassMMX:
		return mmxRegs
	case ClassFlags:
		return flagsRegs
	}
	return nil
}

var (
	gpr64Regs = []Reg{RAX, RBX, RCX, RDX, RSI, RDI, RBP, RSP, R8, R9, R10, R11, R12, R13, R14, R15}
	gpr32Regs = []Reg{EAX, EBX, ECX, EDX, ESI, EDI, EBP, ESP, R8D, R9D, R10D, R11D, R12D, R13D, R14D, R15D}
	gpr16Regs = []Reg{AX, BX, CX, DX, SI, DI, BP, SP, R8W, R9W, R10W, R11W, R12W, R13W, R14W, R15W}
	gpr8Regs  = []Reg{AL, BL, CL, DL, SIL, DIL, BPL, SPL, R8B, R9B, R10B, R11B, R12B, R13B, R14B, R15B}
	xmmRegs   = []Reg{XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7, XMM8, XMM9, XMM10, XMM11, XMM12, XMM13, XMM14, XMM15}
	ymmRegs   = []Reg{YMM0, YMM1, YMM2, YMM3, YMM4, YMM5, YMM6, YMM7, YMM8, YMM9, YMM10, YMM11, YMM12, YMM13, YMM14, YMM15}
	mmxRegs   = []Reg{MM0, MM1, MM2, MM3, MM4, MM5, MM6, MM7}
	flagsRegs = []Reg{RFLAGS}
)

// ParseReg converts a register name (as printed by Reg.String) back into a
// Reg. Unknown names yield RegNone.
func ParseReg(s string) Reg {
	for r, n := range regNames {
		if n == s && Reg(r) != RegNone {
			return Reg(r)
		}
	}
	return RegNone
}
