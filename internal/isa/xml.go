package isa

import (
	"encoding/xml"
	"fmt"
	"io"
)

// This file implements the machine-readable XML representation of the
// instruction set (Section 6.1 of the paper): a simplified description that
// contains enough information to generate assembler code for every variant,
// including implicit operands.

// xmlRoot is the document root of the instruction-set XML.
type xmlRoot struct {
	XMLName      xml.Name         `xml:"instructionSet"`
	Instructions []xmlInstruction `xml:"instruction"`
}

type xmlInstruction struct {
	Name        string       `xml:"name,attr"`
	Mnemonic    string       `xml:"asm,attr"`
	Extension   string       `xml:"extension,attr"`
	Domain      string       `xml:"domain,attr"`
	System      bool         `xml:"system,attr,omitempty"`
	Serializing bool         `xml:"serializing,attr,omitempty"`
	ControlFlow bool         `xml:"controlFlow,attr,omitempty"`
	Divider     bool         `xml:"divider,attr,omitempty"`
	NOP         bool         `xml:"nop,attr,omitempty"`
	ZeroIdiom   bool         `xml:"zeroIdiom,attr,omitempty"`
	MoveElim    bool         `xml:"moveElim,attr,omitempty"`
	Lock        bool         `xml:"lock,attr,omitempty"`
	Rep         bool         `xml:"rep,attr,omitempty"`
	Operands    []xmlOperand `xml:"operand"`
}

type xmlOperand struct {
	Name       string `xml:"name,attr"`
	Kind       string `xml:"type,attr"`
	Class      string `xml:"regClass,attr,omitempty"`
	Width      int    `xml:"width,attr"`
	Read       bool   `xml:"r,attr"`
	Write      bool   `xml:"w,attr"`
	Implicit   bool   `xml:"suppressed,attr,omitempty"`
	FixedReg   string `xml:"reg,attr,omitempty"`
	ReadFlags  string `xml:"flagsR,attr,omitempty"`
	WriteFlags string `xml:"flagsW,attr,omitempty"`
}

// WriteXML writes the instruction set as XML to w.
func (s *Set) WriteXML(w io.Writer) error {
	root := xmlRoot{}
	for _, in := range s.instrs {
		xi := xmlInstruction{
			Name:        in.Name,
			Mnemonic:    in.Mnemonic,
			Extension:   string(in.Extension),
			Domain:      in.Domain.String(),
			System:      in.IsSystem,
			Serializing: in.IsSerializing,
			ControlFlow: in.ControlFlow,
			Divider:     in.UsesDivider,
			NOP:         in.IsNOP,
			ZeroIdiom:   in.MayZeroIdiom,
			MoveElim:    in.MayMoveElim,
			Lock:        in.HasLock,
			Rep:         in.HasRep,
		}
		for _, op := range in.Operands {
			xo := xmlOperand{
				Name:     op.Name,
				Kind:     op.Kind.String(),
				Width:    op.Width,
				Read:     op.Read,
				Write:    op.Write,
				Implicit: op.Implicit,
			}
			if op.Class != ClassNone {
				xo.Class = op.Class.String()
			}
			if op.FixedReg != RegNone {
				xo.FixedReg = op.FixedReg.String()
			}
			if op.Kind == OpFlags {
				xo.ReadFlags = op.ReadFlags.String()
				xo.WriteFlags = op.WriteFlags.String()
			}
			xi.Operands = append(xi.Operands, xo)
		}
		root.Instructions = append(root.Instructions, xi)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(root); err != nil {
		return fmt.Errorf("isa: encoding instruction set XML: %w", err)
	}
	return enc.Flush()
}

// ReadXML parses an instruction set from the XML produced by WriteXML.
func ReadXML(r io.Reader) (*Set, error) {
	var root xmlRoot
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("isa: decoding instruction set XML: %w", err)
	}
	instrs := make([]*Instr, 0, len(root.Instructions))
	for _, xi := range root.Instructions {
		in := &Instr{
			Name:          xi.Name,
			Mnemonic:      xi.Mnemonic,
			Extension:     Extension(xi.Extension),
			Domain:        ParseDomain(xi.Domain),
			IsSystem:      xi.System,
			IsSerializing: xi.Serializing,
			ControlFlow:   xi.ControlFlow,
			UsesDivider:   xi.Divider,
			IsNOP:         xi.NOP,
			MayZeroIdiom:  xi.ZeroIdiom,
			MayMoveElim:   xi.MoveElim,
			HasLock:       xi.Lock,
			HasRep:        xi.Rep,
		}
		for _, xo := range xi.Operands {
			op := Operand{
				Name:     xo.Name,
				Kind:     ParseOperandKind(xo.Kind),
				Class:    ParseRegClass(xo.Class),
				Width:    xo.Width,
				Read:     xo.Read,
				Write:    xo.Write,
				Implicit: xo.Implicit,
			}
			if xo.FixedReg != "" {
				op.FixedReg = ParseReg(xo.FixedReg)
			}
			if op.Kind == OpFlags {
				op.ReadFlags = ParseFlagSet(xo.ReadFlags)
				op.WriteFlags = ParseFlagSet(xo.WriteFlags)
				op.Read = !op.ReadFlags.Empty()
				op.Write = !op.WriteFlags.Empty()
			}
			in.Operands = append(in.Operands, op)
		}
		instrs = append(instrs, in)
	}
	return NewSet(instrs)
}
