package isa

import "strings"

// Flag identifies a single x86 status flag. Individual flags matter because
// many instructions read or write only a subset of the flags: TEST writes all
// status flags except AF, CMC reads and writes only CF, and so on. The
// benchmark generator must know the exact subset to break or create
// dependencies through the flags register.
type Flag int

// Status flags in RFLAGS.
const (
	FlagCF Flag = iota // carry
	FlagPF             // parity
	FlagAF             // auxiliary carry
	FlagZF             // zero
	FlagSF             // sign
	FlagOF             // overflow
	NumFlags
)

var flagNames = [...]string{"CF", "PF", "AF", "ZF", "SF", "OF"}

func (f Flag) String() string {
	if f >= 0 && int(f) < len(flagNames) {
		return flagNames[f]
	}
	return "Flag?"
}

// FlagSet is a bit set of status flags.
type FlagSet uint8

// Common flag sets.
const (
	FlagSetNone  FlagSet = 0
	FlagSetCF    FlagSet = 1 << FlagCF
	FlagSetPF    FlagSet = 1 << FlagPF
	FlagSetAF    FlagSet = 1 << FlagAF
	FlagSetZF    FlagSet = 1 << FlagZF
	FlagSetSF    FlagSet = 1 << FlagSF
	FlagSetOF    FlagSet = 1 << FlagOF
	FlagSetAll   FlagSet = FlagSetCF | FlagSetPF | FlagSetAF | FlagSetZF | FlagSetSF | FlagSetOF
	FlagSetNoAF  FlagSet = FlagSetAll &^ FlagSetAF
	FlagSetArith FlagSet = FlagSetAll
)

// Has reports whether the set contains f.
func (s FlagSet) Has(f Flag) bool { return s&(1<<f) != 0 }

// With returns the set with f added.
func (s FlagSet) With(f Flag) FlagSet { return s | (1 << f) }

// Without returns the set with f removed.
func (s FlagSet) Without(f Flag) FlagSet { return s &^ (1 << f) }

// Empty reports whether the set contains no flags.
func (s FlagSet) Empty() bool { return s == 0 }

// Count returns the number of flags in the set.
func (s FlagSet) Count() int {
	n := 0
	for f := Flag(0); f < NumFlags; f++ {
		if s.Has(f) {
			n++
		}
	}
	return n
}

// Flags returns the individual flags in the set, in canonical order.
func (s FlagSet) Flags() []Flag {
	out := make([]Flag, 0, 6)
	for f := Flag(0); f < NumFlags; f++ {
		if s.Has(f) {
			out = append(out, f)
		}
	}
	return out
}

// String renders the set as a "+"-joined list of flag names, or "-" if empty.
func (s FlagSet) String() string {
	if s.Empty() {
		return "-"
	}
	parts := make([]string, 0, 6)
	for f := Flag(0); f < NumFlags; f++ {
		if s.Has(f) {
			parts = append(parts, f.String())
		}
	}
	return strings.Join(parts, "+")
}

// ParseFlagSet parses the format produced by String. Unknown flag names are
// ignored.
func ParseFlagSet(s string) FlagSet {
	if s == "" || s == "-" {
		return FlagSetNone
	}
	var out FlagSet
	for _, part := range strings.Split(s, "+") {
		for f := Flag(0); f < NumFlags; f++ {
			if flagNames[f] == part {
				out = out.With(f)
			}
		}
	}
	return out
}
