package report

import (
	"fmt"
	"strings"
	"sync"

	"uopsinfo/internal/core"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/fog"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// CaseStudy is one reproduced result from Section 5 or Section 7 of the
// paper: an identifier, a title, and a list of labelled findings.
type CaseStudy struct {
	ID    string
	Title string
	Rows  []CaseStudyRow
}

// CaseStudyRow is one labelled finding.
type CaseStudyRow struct {
	Label string
	Value string
}

func (cs *CaseStudy) add(label, format string, args ...interface{}) {
	cs.Rows = append(cs.Rows, CaseStudyRow{Label: label, Value: fmt.Sprintf(format, args...)})
}

// Format renders the case study as text.
func (cs *CaseStudy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", cs.ID, cs.Title)
	for _, r := range cs.Rows {
		fmt.Fprintf(&b, "  %-52s %s\n", r.Label+":", r.Value)
	}
	return b.String()
}

// Context is the report layer's view of the characterization engine: it
// hands out the per-generation characterizers and prior-work baselines the
// case studies share (discovering blocking instructions is the expensive
// part, which the engine parallelizes and caches).
type Context struct {
	eng *engine.Engine

	mu        sync.Mutex
	baselines map[uarch.Generation]*fog.Baseline
}

// NewContext returns a context on a default engine (no persistent store,
// default worker budget).
func NewContext() *Context {
	return NewContextWith(engine.Default())
}

// NewContextWith returns a context on the given engine, inheriting its
// worker budget and persistent store.
func NewContextWith(e *engine.Engine) *Context {
	return &Context{eng: e, baselines: make(map[uarch.Generation]*fog.Baseline)}
}

// Engine returns the underlying characterization engine.
func (ctx *Context) Engine() *engine.Engine { return ctx.eng }

// Char returns (building if necessary) the characterizer for a generation,
// with its blocking set restored from the engine's store or discovered in
// parallel.
func (ctx *Context) Char(gen uarch.Generation) (*core.Characterizer, error) {
	return ctx.eng.Characterizer(gen)
}

// Prewarm builds the characterizers for the given generations concurrently
// under the engine's shared worker budget.
func (ctx *Context) Prewarm(gens []uarch.Generation) error {
	return ctx.eng.Prewarm(gens)
}

// Baseline returns (building if necessary) the prior-work baseline for a
// generation. It uses its own runner instance so divider-value switching in
// the characterizer does not interfere. It fails only if the engine's
// backend cannot build a runner for the generation.
func (ctx *Context) Baseline(gen uarch.Generation) (*fog.Baseline, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if b, ok := ctx.baselines[gen]; ok {
		return b, nil
	}
	h, err := ctx.eng.Harness(gen)
	if err != nil {
		return nil, err
	}
	b := fog.New(h)
	ctx.baselines[gen] = b
	return b, nil
}

// CaseStudyGenerations lists the generations the case studies measure on, so
// commands can prewarm their characterizers concurrently before running the
// studies.
func CaseStudyGenerations() []uarch.Generation {
	return []uarch.Generation{
		uarch.Nehalem, uarch.Westmere, uarch.SandyBridge,
		uarch.IvyBridge, uarch.Haswell, uarch.Skylake,
	}
}

func (ctx *Context) variant(gen uarch.Generation, name string) (*isa.Instr, error) {
	in := uarch.Get(gen).InstrSet().Lookup(name)
	if in == nil {
		return nil, fmt.Errorf("report: %s has no variant %q", gen, name)
	}
	return in, nil
}

// lookupPair returns the (source, dest) latency, or -1 if missing.
func lookupPair(lat core.LatencyResult, s, d int) float64 {
	if p, ok := lat.Lookup(s, d); ok {
		return p.Cycles
	}
	return -1
}

// AESLatencyStudy reproduces Section 7.3.1: the per-operand-pair latencies of
// AESDEC across Westmere, Sandy Bridge, Ivy Bridge, Haswell and Skylake,
// which reveal the undocumented 2-µop split on Sandy Bridge and Ivy Bridge.
func AESLatencyStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.1", Title: "AESDEC XMM1, XMM2: latency per operand pair"}
	gens := []uarch.Generation{uarch.Westmere, uarch.SandyBridge, uarch.IvyBridge, uarch.Haswell, uarch.Skylake}
	for _, gen := range gens {
		c, err := ctx.Char(gen)
		if err != nil {
			return nil, err
		}
		in, err := ctx.variant(gen, "AESDEC_XMM_XMM")
		if err != nil {
			return nil, err
		}
		lat, err := c.Latency(in)
		if err != nil {
			return nil, err
		}
		uops, _, err := c.MeasuredUops(in)
		if err != nil {
			return nil, err
		}
		cs.add(gen.String(),
			"uops=%.0f  lat(XMM1->XMM1)=%.1f  lat(XMM2->XMM1)=%.1f",
			uops, lookupPair(lat, 0, 0), lookupPair(lat, 1, 0))
	}
	cs.add("paper (Sandy/Ivy Bridge)", "uops=2  lat(XMM1->XMM1)=8  lat(XMM2->XMM1)=~1.25")
	cs.add("paper (Haswell)", "uops=1  both pairs 7 cycles")
	cs.add("paper (Westmere)", "uops=3  both pairs 6 cycles")
	return cs, nil
}

// SHLDStudy reproduces Section 7.3.2: the operand-pair latencies of
// SHLD r,r,imm on Nehalem and Skylake, together with the two prior-work
// measurement conventions that explain the disagreement between published
// numbers.
func SHLDStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.2", Title: "SHLD R1, R2, imm: why prior publications disagree"}
	for _, gen := range []uarch.Generation{uarch.Nehalem, uarch.Skylake} {
		c, err := ctx.Char(gen)
		if err != nil {
			return nil, err
		}
		b, err := ctx.Baseline(gen)
		if err != nil {
			return nil, err
		}
		in, err := ctx.variant(gen, "SHLD_R64_R64_I8")
		if err != nil {
			return nil, err
		}
		lat, err := c.Latency(in)
		if err != nil {
			return nil, err
		}
		sameReg := -1.0
		for _, p := range lat.Pairs {
			if p.SameRegister && p.Source == 1 && p.Dest == 0 {
				sameReg = p.Cycles
			}
		}
		fogLat, err := b.LatencyDistinctRegisters(in)
		if err != nil {
			return nil, err
		}
		granlundLat, err := b.LatencySameRegister(in)
		if err != nil {
			return nil, err
		}
		cs.add(gen.String(),
			"lat(R1->R1)=%.1f  lat(R2->R1)=%.1f  same-register=%.1f",
			lookupPair(lat, 0, 0), lookupPair(lat, 1, 0), sameReg)
		cs.add(gen.String()+" prior-work conventions",
			"distinct-regs (Fog)=%.1f  same-reg (Granlund/AIDA64)=%.1f", fogLat, granlundLat)
	}
	cs.add("paper (Nehalem)", "lat(R1,R1)=3 (Fog's 3), lat(R2,R1)=4 (manual/Granlund/IACA/AIDA64's 4)")
	cs.add("paper (Skylake)", "3 cycles with distinct registers, 1 cycle with the same register")
	return cs, nil
}

// MOVQ2DQStudy reproduces Section 7.3.3: the port usage of MOVQ2DQ on
// Skylake as inferred by the blocking-instruction algorithm, by the
// isolation-based prior-work approach, and as claimed by the IACA models.
func MOVQ2DQStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.3", Title: "MOVQ2DQ on Skylake: port usage"}
	gen := uarch.Skylake
	c, err := ctx.Char(gen)
	if err != nil {
		return nil, err
	}
	b, err := ctx.Baseline(gen)
	if err != nil {
		return nil, err
	}
	in, err := ctx.variant(gen, "MOVQ2DQ_XMM_MM")
	if err != nil {
		return nil, err
	}
	pu, err := c.PortUsage(in, 2)
	if err != nil {
		return nil, err
	}
	iso, err := b.PortUsageIsolation(in)
	if err != nil {
		return nil, err
	}
	cs.add("blocking-instruction algorithm (this work)", "%s", pu)
	cs.add("isolation-based attribution (Fog-style)", "%s", fog.FormatUsage(iso))
	for _, v := range iaca.SupportedVersions(gen) {
		a, err := iaca.New(v, uarch.Get(gen))
		if err != nil {
			return nil, err
		}
		if e, ok := a.Entry(in.Name); ok {
			cs.add(fmt.Sprintf("IACA %s", v), "%s", e.UsageString())
		}
	}
	cs.add("paper", "1*p0+1*p015 measured; Fog-style observation suggests 1*p0+1*p15; IACA/LLVM report 2*p5")
	return cs, nil
}

// MOVDQ2QStudy reproduces Section 7.3.4: MOVDQ2Q on Haswell and Sandy Bridge.
func MOVDQ2QStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.4", Title: "MOVDQ2Q: port usage on Haswell and Sandy Bridge"}
	for _, gen := range []uarch.Generation{uarch.Haswell, uarch.SandyBridge} {
		c, err := ctx.Char(gen)
		if err != nil {
			return nil, err
		}
		b, err := ctx.Baseline(gen)
		if err != nil {
			return nil, err
		}
		in, err := ctx.variant(gen, "MOVDQ2Q_MM_XMM")
		if err != nil {
			return nil, err
		}
		pu, err := c.PortUsage(in, 2)
		if err != nil {
			return nil, err
		}
		iso, err := b.PortUsageIsolation(in)
		if err != nil {
			return nil, err
		}
		cs.add(gen.String()+" (this work)", "%s", pu)
		cs.add(gen.String()+" (isolation-based)", "%s", fog.FormatUsage(iso))
		for _, v := range iaca.SupportedVersions(gen) {
			a, err := iaca.New(v, uarch.Get(gen))
			if err != nil {
				return nil, err
			}
			if e, ok := a.Entry(in.Name); ok {
				cs.add(fmt.Sprintf("%s (IACA %s)", gen, v), "%s", e.UsageString())
			}
		}
	}
	cs.add("paper (Haswell)", "1*p5+1*p015; IACA 2.1 agrees, IACA>=2.2 and LLVM report 1*p01+1*p015, Fog reports 1*p01+1*p5")
	cs.add("paper (Sandy Bridge)", "1*p015+1*p5; Fog reports 2*p015")
	return cs, nil
}

// MultiLatencyStudy reproduces Section 7.3.5: instructions whose latency
// differs between operand pairs.
func MultiLatencyStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.5", Title: "Instructions with multiple latencies (Skylake)"}
	gen := uarch.Skylake
	c, err := ctx.Char(gen)
	if err != nil {
		return nil, err
	}
	names := []string{"SHLD_R64_R64_I8", "SHL_R64_I8", "IMUL_R64_R64", "PSHUFB_XMM_XMM", "ADD_R64_M64", "XADD_R64_R64"}
	found := 0
	for _, name := range names {
		in, err := ctx.variant(gen, name)
		if err != nil {
			return nil, err
		}
		lat, err := c.Latency(in)
		if err != nil {
			return nil, err
		}
		min, max := -1.0, -1.0
		for _, p := range lat.Pairs {
			if p.SameRegister || p.Cycles <= 0 {
				continue
			}
			if min < 0 || p.Cycles < min {
				min = p.Cycles
			}
			if p.Cycles > max {
				max = p.Cycles
			}
		}
		distinct := max-min >= 0.5
		if distinct {
			found++
		}
		cs.add(name, "min pair latency=%.1f  max pair latency=%.1f  multiple latencies=%v", min, max, distinct)
	}
	cs.add("summary", "%d of %d sampled instructions show operand-pair-dependent latencies", found, len(names))
	cs.add("paper", "ADC, CMOV(N)BE, (I)MUL, PSHUFB, ROL/ROR/SAR/SHL/SHR, SBB, MPSADBW, XADD, XCHG, ... have multiple latencies")
	return cs, nil
}

// ZeroIdiomStudy reproduces Section 7.3.6: the (V)PCMPGT instructions are
// dependency-breaking idioms.
func ZeroIdiomStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.3.6", Title: "Dependency-breaking idioms (Skylake)"}
	gen := uarch.Skylake
	c, err := ctx.Char(gen)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"PCMPGTB_XMM_XMM", "PCMPGTD_XMM_XMM", "PCMPGTQ_XMM_XMM", "PXOR_XMM_XMM", "PCMPEQD_XMM_XMM"} {
		in, err := ctx.variant(gen, name)
		if err != nil {
			return nil, err
		}
		lat, err := c.Latency(in)
		if err != nil {
			return nil, err
		}
		var distinctLat, sameLat float64 = -1, -1
		for _, p := range lat.Pairs {
			if p.Source == 1 && p.Dest == 0 {
				if p.SameRegister {
					sameLat = p.Cycles
				} else {
					distinctLat = p.Cycles
				}
			}
		}
		breaking := sameLat >= 0 && sameLat < 0.5
		cs.add(name, "lat distinct-regs=%.1f  same-reg=%.1f  dependency-breaking=%v", distinctLat, sameLat, breaking)
	}
	cs.add("paper", "(V)PCMPGT(B/D/Q/W) are dependency-breaking idioms not listed in the optimization manual")
	return cs, nil
}

// PortUsageMotivationStudy reproduces the two motivating examples of Section
// 5.1: PBLENDVB on Nehalem and ADC on Haswell, where isolation-based
// attribution produces a wrong or imprecise port usage.
func PortUsageMotivationStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "5.1", Title: "Why blocking instructions are needed"}
	cases := []struct {
		gen  uarch.Generation
		name string
	}{
		{uarch.Nehalem, "PBLENDVB_XMM_XMM"},
		{uarch.Haswell, "ADC_R64_R64"},
	}
	for _, tc := range cases {
		c, err := ctx.Char(tc.gen)
		if err != nil {
			return nil, err
		}
		b, err := ctx.Baseline(tc.gen)
		if err != nil {
			return nil, err
		}
		in, err := ctx.variant(tc.gen, tc.name)
		if err != nil {
			return nil, err
		}
		pu, err := c.PortUsage(in, 2)
		if err != nil {
			return nil, err
		}
		iso, err := b.PortUsageIsolation(in)
		if err != nil {
			return nil, err
		}
		cs.add(fmt.Sprintf("%s on %s (this work)", tc.name, tc.gen), "%s", pu)
		cs.add(fmt.Sprintf("%s on %s (isolation-based)", tc.name, tc.gen), "%s", fog.FormatUsage(iso))
	}
	cs.add("paper (PBLENDVB, Nehalem)", "true usage 2*p05; isolation suggests one µop on p0 and one on p5")
	cs.add("paper (ADC, Haswell)", "true usage 1*p0156+1*p06; isolation suggests 2*p0156")
	return cs, nil
}

// IACADiscrepancyStudy reproduces the Section 7.2 discrepancies between the
// hardware measurements and IACA.
func IACADiscrepancyStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "7.2", Title: "Differences between hardware measurements and IACA"}
	skl := uarch.Get(uarch.Skylake)
	hsw := uarch.Get(uarch.Haswell)
	cSKL, err := ctx.Char(uarch.Skylake)
	if err != nil {
		return nil, err
	}

	// CMC: implicit carry-flag dependency ignored by IACA.
	cmc, err := ctx.variant(uarch.Skylake, "CMC")
	if err != nil {
		return nil, err
	}
	tp, err := cSKL.Throughput(cmc, nil)
	if err != nil {
		return nil, err
	}
	a30, err := iaca.New(iaca.V30, skl)
	if err != nil {
		return nil, err
	}
	cmcInst, err := buildSimple(skl, "CMC")
	if err != nil {
		return nil, err
	}
	repCMC, err := a30.Analyze(cmcInst)
	if err != nil {
		return nil, err
	}
	cs.add("CMC throughput (measured vs IACA 3.0)", "%.2f vs %.2f cycles (IACA ignores the carry-flag dependency)",
		tp.Measured, repCMC.BlockThroughput)

	// Store/load pair: memory dependency ignored by IACA.
	pair, err := buildStoreLoadPair(skl)
	if err != nil {
		return nil, err
	}
	repPair, err := a30.Analyze(pair)
	if err != nil {
		return nil, err
	}
	h := cSKL.Harness()
	resPair, err := h.Measure(pair)
	if err != nil {
		return nil, err
	}
	cs.add("mov [RAX],RBX; mov RBX,[RAX] (measured vs IACA 3.0)", "%.2f vs %.2f cycles per iteration",
		resPair.Cycles, repPair.BlockThroughput)

	// BSWAP 32 vs 64 bit on Skylake.
	for _, name := range []string{"BSWAP_R32", "BSWAP_R64"} {
		in, err := ctx.variant(uarch.Skylake, name)
		if err != nil {
			return nil, err
		}
		uops, _, err := cSKL.MeasuredUops(in)
		if err != nil {
			return nil, err
		}
		e, _ := a30.Entry(name)
		cs.add(name+" µops (measured vs IACA 3.0)", "%.0f vs %d", uops, e.Uops)
	}

	// VHADDPD: per-port detail does not add up to the µop count.
	vh, err := ctx.variant(uarch.Skylake, "VHADDPD_XMM_XMM_XMM")
	if err == nil {
		e, _ := a30.Entry(vh.Name)
		detail := 0
		for _, n := range e.Usage {
			detail += n
		}
		uops, _, err := cSKL.MeasuredUops(vh)
		if err == nil {
			cs.add("VHADDPD (measured µops / IACA total / IACA per-port sum)", "%.0f / %d / %d", uops, e.Uops, detail)
		}
	}

	// VMINPS: IACA 2.3 vs 3.0 on Skylake.
	a23, err := iaca.New(iaca.V23, skl)
	if err != nil {
		return nil, err
	}
	vmin := "VMINPS_XMM_XMM_XMM"
	e23, _ := a23.Entry(vmin)
	e30, _ := a30.Entry(vmin)
	puVMIN, err := cSKL.PortUsage(skl.InstrSet().Lookup(vmin), 4)
	if err != nil {
		return nil, err
	}
	cs.add("VMINPS ports (measured / IACA 2.3 / IACA 3.0)", "%s / %s / %s", puVMIN, e23.UsageString(), e30.UsageString())

	// SAHF: IACA 2.1 vs 2.2 on Haswell.
	a21, err := iaca.New(iaca.V21, hsw)
	if err != nil {
		return nil, err
	}
	a22, err := iaca.New(iaca.V22, hsw)
	if err != nil {
		return nil, err
	}
	cHSW, err := ctx.Char(uarch.Haswell)
	if err != nil {
		return nil, err
	}
	sahf := hsw.InstrSet().Lookup("SAHF")
	puSAHF, err := cHSW.PortUsage(sahf, 1)
	if err != nil {
		return nil, err
	}
	s21, _ := a21.Entry("SAHF")
	s22, _ := a22.Entry("SAHF")
	cs.add("SAHF on Haswell (measured / IACA 2.1 / IACA 2.2)", "%s / %s / %s", puSAHF, s21.UsageString(), s22.UsageString())

	// IMUL with a memory operand on Nehalem: missing load µop in IACA.
	nhm := uarch.Get(uarch.Nehalem)
	a21n, err := iaca.New(iaca.V21, nhm)
	if err != nil {
		return nil, err
	}
	cNHM, err := ctx.Char(uarch.Nehalem)
	if err != nil {
		return nil, err
	}
	imul := nhm.InstrSet().Lookup("IMUL_R64_M64")
	uopsIMUL, _, err := cNHM.MeasuredUops(imul)
	if err != nil {
		return nil, err
	}
	eIMUL, _ := a21n.Entry("IMUL_R64_M64")
	cs.add("IMUL r64, m64 on Nehalem µops (measured vs IACA)", "%.0f vs %d (IACA misses the load µop)", uopsIMUL, eIMUL.Uops)

	return cs, nil
}

// ThroughputLPStudy reproduces Section 5.3.2: the throughput computed from
// the port usage via the min-max-load linear program matches the measured
// throughput for instructions without implicit dependencies, and equals
// 1/|P| for 1-µop instructions.
func ThroughputLPStudy(ctx *Context) (*CaseStudy, error) {
	cs := &CaseStudy{ID: "5.3.2", Title: "Throughput computed from port usage (Skylake)"}
	gen := uarch.Skylake
	c, err := ctx.Char(gen)
	if err != nil {
		return nil, err
	}
	names := []string{"ADD_R64_R64", "IMUL_R64_R64", "PSHUFD_XMM_XMM_I8", "PADDD_XMM_XMM", "MULPS_XMM_XMM", "MOVQ2DQ_XMM_MM"}
	for _, name := range names {
		in, err := ctx.variant(gen, name)
		if err != nil {
			return nil, err
		}
		pu, err := c.PortUsage(in, 0)
		if err != nil {
			return nil, err
		}
		tp, err := c.Throughput(in, pu)
		if err != nil {
			return nil, err
		}
		cs.add(name, "ports=%s  measured=%.2f  computed=%.2f", pu, tp.Measured, tp.Computed)
	}
	return cs, nil
}

// AllCaseStudies runs every case study.
func AllCaseStudies(ctx *Context) ([]*CaseStudy, error) {
	builders := []func(*Context) (*CaseStudy, error){
		PortUsageMotivationStudy,
		ThroughputLPStudy,
		IACADiscrepancyStudy,
		AESLatencyStudy,
		SHLDStudy,
		MOVQ2DQStudy,
		MOVDQ2QStudy,
		MultiLatencyStudy,
		ZeroIdiomStudy,
	}
	var out []*CaseStudy
	for _, build := range builders {
		cs, err := build(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}
