// Package report regenerates the tables and case studies of the paper's
// evaluation (Section 7): Table 1 (per-generation instruction-variant counts
// and the agreement between hardware measurements and IACA), the Section 7.2
// discrepancy analysis, and the Section 7.3 case studies.
package report

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"uopsinfo/internal/core"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Arch         string
	Processor    string
	NumVariants  int
	IACAVersions string
	// Compared is the number of instruction variants included in the
	// comparison (REP/LOCK-prefixed and unmeasurable variants are excluded,
	// as in the paper).
	Compared int
	// UopsMatchPct is the percentage of compared variants for which at least
	// one IACA version reports the same µop count as the hardware
	// measurement.
	UopsMatchPct float64
	// PortsMatchPct is the percentage of µop-matching variants for which the
	// measured port usage equals an IACA version's port usage.
	PortsMatchPct float64
}

// Table1Options controls how much of the instruction set is compared and how
// the comparison runs.
type Table1Options struct {
	// SampleEvery compares every n-th eligible variant (1 = all). Values
	// below 1 are treated as 1.
	SampleEvery int
	// Generations restricts the table to the given generations (all nine if
	// empty).
	Generations []uarch.Generation
	// Progress, if non-nil, is called per generation. With Workers > 1 the
	// calls come from concurrent goroutines in completion-dependent order.
	Progress func(arch string)
	// Context supplies the characterization stacks (and thereby the engine's
	// worker budget and persistent store). Nil builds a default context.
	Context *Context
	// Workers bounds how many generations are compared concurrently; the
	// rows come out in generation order regardless. <= 1 runs sequentially.
	Workers int
}

// comparable reports whether a variant takes part in the Table 1 comparison:
// the paper ignores REP-prefixed instructions (variable µop count) and
// LOCK-prefixed instructions.
func comparable(in *isa.Instr) bool {
	if in.HasRep || in.HasLock {
		return false
	}
	if in.IsSystem || in.IsSerializing || in.ControlFlow {
		return false
	}
	return true
}

// BuildTable1Row builds one row of Table 1 for a generation by characterizing
// the (sampled) instruction set on the simulated hardware and comparing µop
// counts and port usage against every IACA version that supports the
// generation.
func BuildTable1Row(arch *uarch.Arch, opts Table1Options) (Table1Row, error) {
	row := Table1Row{
		Arch:         arch.Name(),
		Processor:    arch.Gen().Processor(),
		NumVariants:  arch.InstrSet().Len(),
		IACAVersions: iaca.DescribeVersions(arch.Gen()),
	}
	versions := iaca.SupportedVersions(arch.Gen())
	if len(versions) == 0 {
		return row, nil
	}
	var analyzers []*iaca.Analyzer
	for _, v := range versions {
		a, err := iaca.New(v, arch)
		if err != nil {
			return row, err
		}
		analyzers = append(analyzers, a)
	}

	every := opts.SampleEvery
	if every < 1 {
		every = 1
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = NewContext()
	}
	c, err := ctx.Char(arch.Gen())
	if err != nil {
		return row, err
	}
	uopsMatch, portsChecked, portsMatch := 0, 0, 0
	idx := 0
	for _, in := range arch.InstrSet().Instrs() {
		if !comparable(in) {
			continue
		}
		idx++
		if (idx-1)%every != 0 {
			continue
		}
		measUops, _, err := c.MeasuredUops(in)
		if err != nil {
			continue
		}
		measured := int(measUops + 0.5)
		row.Compared++

		// µop count agreement: at least one version reports the measured
		// count.
		uopsOK := false
		for _, a := range analyzers {
			if e, ok := a.Entry(in.Name); ok && e.Uops == measured {
				uopsOK = true
				break
			}
		}
		if !uopsOK {
			continue
		}
		uopsMatch++

		// Port usage agreement among the µop-matching variants.
		pu, err := c.PortUsage(in, 0)
		if err != nil {
			continue
		}
		portsChecked++
		measuredUsage := roundUsage(pu)
		for _, a := range analyzers {
			if e, ok := a.Entry(in.Name); ok && iaca.UsageEqual(e.Usage, measuredUsage) {
				portsMatch++
				break
			}
		}
	}
	if row.Compared > 0 {
		row.UopsMatchPct = 100 * float64(uopsMatch) / float64(row.Compared)
	}
	if portsChecked > 0 {
		row.PortsMatchPct = 100 * float64(portsMatch) / float64(portsChecked)
	}
	return row, nil
}

// roundUsage converts a measured port usage into integer µop counts.
func roundUsage(pu core.PortUsage) map[string]int {
	out := make(map[string]int)
	for k, v := range pu {
		n := int(v + 0.5)
		if n > 0 {
			out[k] = n
		}
	}
	return out
}

// BuildTable1 builds all requested rows. With opts.Workers > 1 the
// generations are compared concurrently (after prewarming their
// characterizers under the engine's shared worker budget); the rows are
// returned in generation order and are identical to a sequential build.
func BuildTable1(opts Table1Options) ([]Table1Row, error) {
	gens := opts.Generations
	if len(gens) == 0 {
		for _, a := range uarch.All() {
			gens = append(gens, a.Gen())
		}
	}
	if opts.Context == nil {
		opts.Context = NewContext()
	}
	if opts.Workers <= 1 {
		var rows []Table1Row
		for _, g := range gens {
			arch := uarch.Get(g)
			if opts.Progress != nil {
				opts.Progress(arch.Name())
			}
			row, err := BuildTable1Row(arch, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		return rows, nil
	}

	// Generations without IACA support never build a characterization stack
	// (their rows are header-only), so only the rest is prewarmed. The
	// fan-out runs over unique generations: a characterizer owns one
	// stateful simulator, so a duplicated generation must not be measured
	// from two goroutines.
	var warm, unique []uarch.Generation
	seen := make(map[uarch.Generation]bool, len(gens))
	for _, g := range gens {
		if seen[g] {
			continue
		}
		seen[g] = true
		unique = append(unique, g)
		if len(iaca.SupportedVersions(g)) > 0 {
			warm = append(warm, g)
		}
	}
	if err := opts.Context.Prewarm(warm); err != nil {
		return nil, err
	}

	uniqueRows := make(map[uarch.Generation]*Table1Row, len(unique))
	for _, g := range unique {
		uniqueRows[g] = &Table1Row{}
	}
	errs := make([]error, len(unique))
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for i, g := range unique {
		wg.Add(1)
		go func(i int, g uarch.Generation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			arch := uarch.Get(g)
			if opts.Progress != nil {
				opts.Progress(arch.Name())
			}
			*uniqueRows[g], errs[i] = BuildTable1Row(arch, opts)
		}(i, g)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(gens))
	for i, g := range gens {
		rows[i] = *uniqueRows[g]
	}
	return rows, nil
}

// FormatTable1 renders the rows as a text table resembling Table 1 of the
// paper.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-18s %8s  %-9s %9s  %7s  %7s\n",
		"Architecture", "Processor", "#Instr.", "IACA", "Compared", "µops", "Ports")
	for _, r := range rows {
		uops, ports := "-", "-"
		if r.Compared > 0 {
			uops = fmt.Sprintf("%.2f%%", r.UopsMatchPct)
			ports = fmt.Sprintf("%.2f%%", r.PortsMatchPct)
		}
		fmt.Fprintf(&b, "%-14s %-18s %8d  %-9s %9d  %7s  %7s\n",
			r.Arch, r.Processor, r.NumVariants, r.IACAVersions, r.Compared, uops, ports)
	}
	return b.String()
}
