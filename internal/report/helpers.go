package report

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// buildSimple builds a one-instruction sequence for a variant without
// explicit operands (e.g. CMC).
func buildSimple(arch *uarch.Arch, name string) (asmgen.Sequence, error) {
	in := arch.InstrSet().Lookup(name)
	if in == nil {
		return nil, fmt.Errorf("report: %s has no variant %q", arch.Name(), name)
	}
	inst, err := asmgen.NewInst(in)
	if err != nil {
		return nil, err
	}
	return asmgen.Sequence{inst}, nil
}

// buildStoreLoadPair builds the "mov [RAX], RBX; mov RBX, [RAX]" sequence the
// paper uses to show that IACA ignores memory dependencies (Section 7.2).
func buildStoreLoadPair(arch *uarch.Arch) (asmgen.Sequence, error) {
	store := arch.InstrSet().Lookup("MOV_M64_R64")
	load := arch.InstrSet().Lookup("MOV_R64_M64")
	if store == nil || load == nil {
		return nil, fmt.Errorf("report: %s is missing the MOV store/load variants", arch.Name())
	}
	const addr = 0x8000
	seq := asmgen.Sequence{
		asmgen.MustInst(store, asmgen.MemOperand(isa.RAX, addr), asmgen.RegOperand(isa.RBX)),
		asmgen.MustInst(load, asmgen.RegOperand(isa.RBX), asmgen.MemOperand(isa.RAX, addr)),
	}
	return seq, nil
}
