package report

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"uopsinfo/internal/uarch"
)

// The report tests share one context: the engine behind it builds each
// generation's characterizer (blocking discovery is the expensive part) only
// once for the whole package.
var (
	testCtxOnce sync.Once
	testCtx     *Context
)

func sharedCtx() *Context {
	testCtxOnce.Do(func() { testCtx = NewContext() })
	return testCtx
}

func TestTable1RowSkylake(t *testing.T) {
	row, err := BuildTable1Row(uarch.Get(uarch.Skylake), Table1Options{SampleEvery: 60, Context: sharedCtx()})
	if err != nil {
		t.Fatal(err)
	}
	if row.Arch != "Skylake" || row.Processor == "" {
		t.Errorf("row header incomplete: %+v", row)
	}
	if row.NumVariants < 1800 {
		t.Errorf("Skylake variant count = %d, want >= 1800", row.NumVariants)
	}
	if row.IACAVersions != "2.3-3.0" {
		t.Errorf("IACA versions = %q, want 2.3-3.0", row.IACAVersions)
	}
	if row.Compared == 0 {
		t.Fatal("no variants were compared")
	}
	// The µop and port agreement must be high but below 100% (the injected
	// IACA discrepancies), matching the shape of Table 1.
	if row.UopsMatchPct < 60 || row.UopsMatchPct >= 100 {
		t.Errorf("µop agreement = %.1f%%, want high but below 100%%", row.UopsMatchPct)
	}
	if row.PortsMatchPct <= 0 || row.PortsMatchPct > 100 {
		t.Errorf("port agreement = %.1f%%, out of range", row.PortsMatchPct)
	}
}

func TestTable1RowKabyLakeHasNoIACA(t *testing.T) {
	row, err := BuildTable1Row(uarch.Get(uarch.KabyLake), Table1Options{SampleEvery: 50, Context: sharedCtx()})
	if err != nil {
		t.Fatal(err)
	}
	if row.IACAVersions != "-" || row.Compared != 0 {
		t.Errorf("Kaby Lake should have no IACA comparison: %+v", row)
	}
	if row.NumVariants < 1800 {
		t.Errorf("Kaby Lake variant count = %d, want >= 1800", row.NumVariants)
	}
}

func TestVariantCountsIncreaseAcrossGenerations(t *testing.T) {
	// The third column of Table 1 grows from Nehalem to Coffee Lake because
	// newer generations support more extensions.
	nhm := uarch.Get(uarch.Nehalem).InstrSet().Len()
	hsw := uarch.Get(uarch.Haswell).InstrSet().Len()
	cfl := uarch.Get(uarch.CoffeeLake).InstrSet().Len()
	if !(nhm < hsw && hsw <= cfl) {
		t.Errorf("variant counts do not grow: Nehalem %d, Haswell %d, Coffee Lake %d", nhm, hsw, cfl)
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{
		{Arch: "Skylake", Processor: "Core i7-6500U", NumVariants: 2000, IACAVersions: "2.3-3.0",
			Compared: 100, UopsMatchPct: 92.5, PortsMatchPct: 95.0},
		{Arch: "Kaby Lake", Processor: "Core i7-7700", NumVariants: 2000, IACAVersions: "-"},
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Skylake") || !strings.Contains(out, "92.50%") {
		t.Errorf("FormatTable1 output missing expected fields:\n%s", out)
	}
	if !strings.Contains(out, "Kaby Lake") || !strings.Contains(strings.Split(out, "\n")[2], "-") {
		t.Errorf("unsupported generation should show '-':\n%s", out)
	}
}

func TestCaseStudyFormatting(t *testing.T) {
	cs := &CaseStudy{ID: "7.3.1", Title: "AES"}
	cs.add("row one", "value %d", 42)
	out := cs.Format()
	if !strings.Contains(out, "[7.3.1] AES") || !strings.Contains(out, "row one") || !strings.Contains(out, "value 42") {
		t.Errorf("Format output unexpected:\n%s", out)
	}
}

func TestPortUsageMotivationStudy(t *testing.T) {
	ctx := sharedCtx()
	cs, err := PortUsageMotivationStudy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text := cs.Format()
	if !strings.Contains(text, "2*p05") {
		t.Errorf("PBLENDVB study should find 2*p05:\n%s", text)
	}
	if !strings.Contains(text, "1*p06+1*p0156") {
		t.Errorf("ADC study should find 1*p06+1*p0156:\n%s", text)
	}
}

func TestMOVQ2DQStudy(t *testing.T) {
	ctx := sharedCtx()
	cs, err := MOVQ2DQStudy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text := cs.Format()
	if !strings.Contains(text, "1*p0+1*p015") {
		t.Errorf("MOVQ2DQ study should report 1*p0+1*p015 for the blocking algorithm:\n%s", text)
	}
	if !strings.Contains(text, "2*p5") {
		t.Errorf("MOVQ2DQ study should report the IACA claim of 2*p5:\n%s", text)
	}
}

func TestSHLDStudyValues(t *testing.T) {
	ctx := sharedCtx()
	cs, err := SHLDStudy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text := cs.Format()
	if !strings.Contains(text, "Nehalem") || !strings.Contains(text, "Skylake") {
		t.Errorf("SHLD study should cover Nehalem and Skylake:\n%s", text)
	}
	if !strings.Contains(text, "lat(R1->R1)=3.0") {
		t.Errorf("SHLD study should measure lat(R1,R1)=3 on Nehalem:\n%s", text)
	}
}

func TestHelpersBuildSequences(t *testing.T) {
	skl := uarch.Get(uarch.Skylake)
	seq, err := buildSimple(skl, "CMC")
	if err != nil || len(seq) != 1 {
		t.Fatalf("buildSimple failed: %v", err)
	}
	pair, err := buildStoreLoadPair(skl)
	if err != nil || len(pair) != 2 {
		t.Fatalf("buildStoreLoadPair failed: %v", err)
	}
	if _, err := buildSimple(skl, "NO_SUCH_VARIANT"); err == nil {
		t.Error("buildSimple accepted an unknown variant")
	}
}

// TestBuildTable1ParallelMatchesSerial checks that concurrent row building
// produces rows identical to a sequential build, in generation order.
func TestBuildTable1ParallelMatchesSerial(t *testing.T) {
	gens := []uarch.Generation{uarch.Skylake, uarch.Haswell}
	serial, err := BuildTable1(Table1Options{SampleEvery: 200, Generations: gens, Context: sharedCtx()})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BuildTable1(Table1Options{SampleEvery: 200, Generations: gens, Context: sharedCtx(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel rows differ from serial:\ngot  %+v\nwant %+v", parallel, serial)
	}
	if serial[0].Arch != "Skylake" || serial[1].Arch != "Haswell" {
		t.Errorf("rows out of generation order: %+v", serial)
	}
}

// TestBuildTable1DuplicateGenerations checks that a duplicated generation in
// a parallel build is measured once (the shared characterizer must not be
// driven from two goroutines) and still yields one row per request.
func TestBuildTable1DuplicateGenerations(t *testing.T) {
	gens := []uarch.Generation{uarch.Skylake, uarch.Skylake}
	rows, err := BuildTable1(Table1Options{SampleEvery: 300, Generations: gens, Context: sharedCtx(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !reflect.DeepEqual(rows[0], rows[1]) {
		t.Errorf("duplicate generations should yield two identical rows, got %+v", rows)
	}
}
