package fog

import (
	"testing"

	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

func baselineFor(gen uarch.Generation) (*Baseline, *uarch.Arch) {
	arch := uarch.Get(gen)
	return New(measure.New(pipesim.New(arch))), arch
}

func TestAttributePortsHeuristics(t *testing.T) {
	cases := []struct {
		name string
		obs  PortObservation
		want string
	}{
		{
			// MOVQ2DQ-like observation: 1 µop on port 0, half a µop each on
			// ports 1 and 5 -> attributed as 1*p0 + 1*p15.
			name: "integer plus split",
			obs:  PortObservation{PerPort: []float64{1, 0.5, 0, 0, 0, 0.5, 0, 0}, Total: 2},
			want: "1*p0+1*p15",
		},
		{
			// ADC-on-Haswell-like observation: half a µop on each of four
			// ports -> attributed as 2*p0156.
			name: "all fractional",
			obs:  PortObservation{PerPort: []float64{0.5, 0.5, 0, 0, 0, 0.5, 0.5, 0}, Total: 2},
			want: "2*p0156",
		},
		{
			// PBLENDVB-on-Nehalem-like observation: one µop each on ports 0
			// and 5 -> attributed as 1*p0 + 1*p5 (which is wrong; the true
			// usage is 2*p05).
			name: "two whole ports",
			obs:  PortObservation{PerPort: []float64{1, 0, 0, 0, 0, 1}, Total: 2},
			want: "1*p0+1*p5",
		},
	}
	for _, tc := range cases {
		got := FormatUsage(AttributePorts(tc.obs))
		if got != tc.want {
			t.Errorf("%s: AttributePorts = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestIsolationAttributionDiffersFromTruthForMOVQ2DQ(t *testing.T) {
	// Section 7.3.3: the isolation-based approach cannot see that the second
	// µop of MOVQ2DQ can also use port 0.
	b, arch := baselineFor(uarch.Skylake)
	in := arch.InstrSet().Lookup("MOVQ2DQ_XMM_MM")
	usage, err := b.PortUsageIsolation(in)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatUsage(usage)
	if got == "1*p0+1*p015" {
		t.Errorf("isolation-based attribution unexpectedly produced the correct usage %s", got)
	}
	if got != "1*p0+1*p15" && got != "2*p015" {
		t.Logf("note: isolation attribution produced %s", got)
	}
}

func TestLatencyConventionsSHLDSkylake(t *testing.T) {
	// Section 7.3.2: with distinct registers the latency is 3 cycles (what
	// Agner Fog reports); with the same register it is 1 cycle (what
	// Granlund and AIDA64 report).
	b, arch := baselineFor(uarch.Skylake)
	in := arch.InstrSet().Lookup("SHLD_R64_R64_I8")
	distinct, err := b.LatencyDistinctRegisters(in)
	if err != nil {
		t.Fatal(err)
	}
	same, err := b.LatencySameRegister(in)
	if err != nil {
		t.Fatal(err)
	}
	if distinct < 2.5 || distinct > 3.5 {
		t.Errorf("distinct-register latency = %.2f, want 3", distinct)
	}
	if same > 1.5 {
		t.Errorf("same-register latency = %.2f, want 1", same)
	}
}

func TestLatencyConventionsSHLDNehalem(t *testing.T) {
	// On Nehalem the same-register convention measures the maximum pair
	// latency (4), the distinct-register convention the implicit
	// read-modify-write pair (3).
	b, arch := baselineFor(uarch.Nehalem)
	in := arch.InstrSet().Lookup("SHLD_R64_R64_I8")
	distinct, err := b.LatencyDistinctRegisters(in)
	if err != nil {
		t.Fatal(err)
	}
	same, err := b.LatencySameRegister(in)
	if err != nil {
		t.Fatal(err)
	}
	if distinct < 2.5 || distinct > 3.5 {
		t.Errorf("distinct-register latency = %.2f, want 3 (Fog's value)", distinct)
	}
	if same < 3.5 || same > 4.5 {
		t.Errorf("same-register latency = %.2f, want 4 (Granlund/AIDA64's value)", same)
	}
}

func TestThroughputBaseline(t *testing.T) {
	b, arch := baselineFor(uarch.Skylake)
	in := arch.InstrSet().Lookup("ADD_R64_R64")
	tp, err := b.Throughput(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tp < 0.2 || tp > 0.4 {
		t.Errorf("ADD throughput = %.3f, want about 0.25", tp)
	}
	// CMC has an implicit carry-flag dependency the naive measurement cannot
	// break.
	cmc := arch.InstrSet().Lookup("CMC")
	tpCMC, err := b.Throughput(cmc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tpCMC < 0.9 {
		t.Errorf("CMC naive throughput = %.3f, want about 1", tpCMC)
	}
}

func TestObservePortsTotals(t *testing.T) {
	b, arch := baselineFor(uarch.Skylake)
	in := arch.InstrSet().Lookup("ADD_R64_M64")
	obs, err := b.ObservePorts(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Total < 1.5 || obs.Total > 2.5 {
		t.Errorf("ADD r,m observed %.2f µops, want 2", obs.Total)
	}
	sum := 0.0
	for _, u := range obs.PerPort {
		sum += u
	}
	if sum < 1.5 || sum > 2.5 {
		t.Errorf("per-port sum = %.2f, want 2", sum)
	}
}
