// Package fog implements the measurement conventions of prior work that the
// paper compares against (Section 2.2 and Section 7.3):
//
//   - the isolation-based port-usage attribution used by Agner Fog's
//     instruction tables, which measures the average number of µops on each
//     port when the instruction runs on its own and therefore cannot
//     distinguish, e.g., 2*p05 from 1*p0+1*p5 (Section 5.1);
//   - single-value latency measurements in the two conventions the paper
//     identifies: different registers for all operands (Fog), which measures
//     only the implicit dependency on the read-modify-write operand, and the
//     same register for all operands (Granlund, AIDA64), which measures the
//     maximum over all operand pairs (Section 7.3.2);
//   - naive throughput measurements without dependency-breaking
//     instructions.
//
// These baselines exist so the paper's "prior work is less accurate/precise"
// comparisons can be regenerated against the same simulated hardware.
//
//uopslint:deterministic
package fog

import (
	"fmt"
	"math"
	"sort"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/uarch"
)

// Baseline runs the prior-work measurement conventions on a measurement
// harness.
type Baseline struct {
	h     *measure.Harness
	arena *asmgen.MemArena
}

// New returns a Baseline for the given harness.
func New(h *measure.Harness) *Baseline {
	return &Baseline{h: h, arena: asmgen.NewMemArena()}
}

// PortObservation is the raw isolation measurement: average µops per port per
// instruction execution.
type PortObservation struct {
	PerPort []float64
	Total   float64
}

// ObservePorts measures the instruction in isolation (a sequence of
// independent instances) and returns the per-port µop averages.
func (b *Baseline) ObservePorts(in *isa.Instr, n int) (PortObservation, error) {
	seq, err := b.independent(in, n)
	if err != nil {
		return PortObservation{}, err
	}
	res, err := b.h.Measure(seq)
	if err != nil {
		return PortObservation{}, err
	}
	obs := PortObservation{PerPort: make([]float64, len(res.PortUops))}
	for p, u := range res.PortUops {
		obs.PerPort[p] = u / float64(n)
	}
	obs.Total = res.TotalUops / float64(n)
	return obs, nil
}

// AttributePorts converts an isolation observation into a port-usage string
// the way a human reading the averages would (the approach the paper
// attributes to prior work): ports with a µop count close to an integer get
// that many dedicated µops, and the remaining fractional ports are merged
// into a single combination.
func AttributePorts(obs PortObservation) map[string]int {
	usage := make(map[string]int)
	var fractionalPorts []int
	fractionalSum := 0.0
	for p, u := range obs.PerPort {
		if u < 0.1 {
			continue
		}
		whole := math.Floor(u + 0.25)
		frac := u - whole
		if whole >= 1 {
			usage[uarch.PortComboKey([]int{p})] += int(whole)
		}
		if frac >= 0.1 {
			fractionalPorts = append(fractionalPorts, p)
			fractionalSum += frac
		}
	}
	if len(fractionalPorts) > 0 {
		count := int(fractionalSum + 0.5)
		if count < 1 {
			count = 1
		}
		sort.Ints(fractionalPorts)
		usage[uarch.PortComboKey(fractionalPorts)] += count
	}
	return usage
}

// PortUsageIsolation runs the full isolation-based attribution.
func (b *Baseline) PortUsageIsolation(in *isa.Instr) (map[string]int, error) {
	obs, err := b.ObservePorts(in, 8)
	if err != nil {
		return nil, err
	}
	return AttributePorts(obs), nil
}

// FormatUsage renders an attributed usage in the paper's notation.
func FormatUsage(usage map[string]int) string {
	return uarch.FormatPortUsage(usage)
}

// LatencyDistinctRegisters measures the latency with distinct registers for
// all explicit operands (Agner Fog's convention): the only loop-carried
// dependencies are through operands that are both read and written, so the
// result is the latency of the read-modify-write operand pair only.
func (b *Baseline) LatencyDistinctRegisters(in *isa.Instr) (float64, error) {
	inst, err := b.instance(in, false)
	if err != nil {
		return 0, err
	}
	res, err := b.h.Measure(asmgen.Sequence{inst})
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// LatencySameRegister measures the latency with the same register for all
// explicit register operands (the Granlund / AIDA64 convention): the chain
// goes through every operand pair, so the result is the maximum pair latency
// — unless using the same register changes the instruction's behaviour, as
// for SHLD on Skylake or the zero idioms.
func (b *Baseline) LatencySameRegister(in *isa.Instr) (float64, error) {
	inst, err := b.instance(in, true)
	if err != nil {
		return 0, err
	}
	res, err := b.h.Measure(asmgen.Sequence{inst})
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// Throughput measures the naive throughput: n independent instances, no
// dependency breaking.
func (b *Baseline) Throughput(in *isa.Instr, n int) (float64, error) {
	seq, err := b.independent(in, n)
	if err != nil {
		return 0, err
	}
	res, err := b.h.Measure(seq)
	if err != nil {
		return 0, err
	}
	return res.Cycles / float64(n), nil
}

// instance builds one concrete instance; with sameReg set, all explicit
// register operands of the same class share one register.
func (b *Baseline) instance(in *isa.Instr, sameReg bool) (*asmgen.Inst, error) {
	alloc := asmgen.NewAllocator(asmgen.DefaultReserved...)
	for _, op := range in.Operands {
		if op.Implicit && op.FixedReg != isa.RegNone {
			alloc.MarkUsed(op.FixedReg)
		}
	}
	shared := make(map[isa.RegClass]isa.Reg)
	expl := in.ExplicitOperands()
	ops := make([]asmgen.Operand, len(expl))
	for i, spec := range expl {
		switch spec.Kind {
		case isa.OpReg:
			if sameReg {
				if r, ok := shared[spec.Class]; ok {
					ops[i] = asmgen.RegOperand(r)
					continue
				}
			}
			r, err := alloc.Fresh(spec.Class)
			if err != nil {
				return nil, err
			}
			shared[spec.Class] = r
			ops[i] = asmgen.RegOperand(r)
		case isa.OpMem:
			base, err := alloc.Fresh(isa.ClassGPR64)
			if err != nil {
				return nil, err
			}
			ops[i] = asmgen.MemOperand(base, b.arena.Alloc(spec.Width/8))
		case isa.OpImm:
			ops[i] = asmgen.ImmOperand(1)
		}
	}
	return asmgen.NewInst(in, ops...)
}

// independent builds n instances with fresh registers per instance.
func (b *Baseline) independent(in *isa.Instr, n int) (asmgen.Sequence, error) {
	alloc := asmgen.NewAllocator(asmgen.DefaultReserved...)
	for _, op := range in.Operands {
		if op.Implicit && op.FixedReg != isa.RegNone {
			alloc.MarkUsed(op.FixedReg)
		}
	}
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		inst, err := b.instanceFrom(in, alloc)
		if err != nil {
			alloc = asmgen.NewAllocator(asmgen.DefaultReserved...)
			inst, err = b.instanceFrom(in, alloc)
			if err != nil {
				return nil, fmt.Errorf("fog: building independent instances of %s: %w", in.Name, err)
			}
		}
		seq = append(seq, inst)
	}
	return seq, nil
}

func (b *Baseline) instanceFrom(in *isa.Instr, alloc *asmgen.Allocator) (*asmgen.Inst, error) {
	expl := in.ExplicitOperands()
	ops := make([]asmgen.Operand, len(expl))
	for i, spec := range expl {
		switch spec.Kind {
		case isa.OpReg:
			r, err := alloc.Fresh(spec.Class)
			if err != nil {
				return nil, err
			}
			ops[i] = asmgen.RegOperand(r)
		case isa.OpMem:
			base, err := alloc.Fresh(isa.ClassGPR64)
			if err != nil {
				return nil, err
			}
			ops[i] = asmgen.MemOperand(base, b.arena.Alloc(spec.Width/8))
		case isa.OpImm:
			ops[i] = asmgen.ImmOperand(1)
		}
	}
	return asmgen.NewInst(in, ops...)
}
