package lp

import "testing"

// Benchmarks comparing the two solvers for the throughput-from-port-usage
// problem (an ablation of the design choice discussed in DESIGN.md: the
// combinatorial solver is exact and much faster for the small port counts of
// real CPUs, the simplex solver handles the general LP formulation).

var benchGroups = []PortGroup{
	{Ports: []int{0, 1, 5, 6}, Count: 2},
	{Ports: []int{0, 6}, Count: 1},
	{Ports: []int{5}, Count: 2},
	{Ports: []int{2, 3}, Count: 1},
	{Ports: []int{2, 3, 7}, Count: 1},
	{Ports: []int{4}, Count: 1},
	{Ports: []int{0, 1}, Count: 3},
}

func BenchmarkMinMaxLoadCombinatorial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinMaxLoad(benchGroups, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinMaxLoadSimplex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinMaxLoadLP(benchGroups, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Schedule(benchGroups, 8); err != nil {
			b.Fatal(err)
		}
	}
}
