package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMinMaxLoadKnownCases(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		groups   []PortGroup
		numPorts int
		want     float64
	}{
		{"single µop on four ports", []PortGroup{{Ports: []int{0, 1, 5, 6}, Count: 1}}, 8, 0.25},
		{"single µop on one port", []PortGroup{{Ports: []int{1}, Count: 1}}, 8, 1},
		{"1*p0 + 1*p015 (MOVQ2DQ)", []PortGroup{
			{Ports: []int{0}, Count: 1}, {Ports: []int{0, 1, 5}, Count: 1}}, 8, 1},
		{"2*p05 (PBLENDVB on Nehalem)", []PortGroup{{Ports: []int{0, 5}, Count: 2}}, 6, 1},
		{"1*p0156 + 1*p06 (ADC on Haswell)", []PortGroup{
			{Ports: []int{0, 1, 5, 6}, Count: 1}, {Ports: []int{0, 6}, Count: 1}}, 8, 0.5},
		{"2*p5 + 1*p01 (VHADDPD)", []PortGroup{
			{Ports: []int{5}, Count: 2}, {Ports: []int{0, 1}, Count: 1}}, 8, 2},
		{"load + ALU", []PortGroup{
			{Ports: []int{2, 3}, Count: 1}, {Ports: []int{0, 1, 5, 6}, Count: 1}}, 8, 0.5},
		{"empty", nil, 8, 0},
	}
	for _, tc := range cases {
		got, err := MinMaxLoad(tc.groups, tc.numPorts)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !almostEqual(got, tc.want) {
			t.Errorf("%s: MinMaxLoad = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMinMaxLoadErrors(t *testing.T) {
	t.Parallel()
	if _, err := MinMaxLoad([]PortGroup{{Ports: nil, Count: 1}}, 8); err == nil {
		t.Error("accepted a group with no ports")
	}
	if _, err := MinMaxLoad([]PortGroup{{Ports: []int{0}, Count: -1}}, 8); err == nil {
		t.Error("accepted a negative µop count")
	}
	if _, err := MinMaxLoad(nil, 0); err == nil {
		t.Error("accepted zero ports")
	}
	if _, err := MinMaxLoad([]PortGroup{{Ports: []int{9}, Count: 1}}, 8); err == nil {
		t.Error("accepted a group whose only port is out of range")
	}
}

func TestMinMaxLoadLPAgreesWithCombinatorialSolver(t *testing.T) {
	t.Parallel()
	cases := [][]PortGroup{
		{{Ports: []int{0, 1, 5, 6}, Count: 1}},
		{{Ports: []int{0}, Count: 1}, {Ports: []int{0, 1, 5}, Count: 1}},
		{{Ports: []int{0, 5}, Count: 2}},
		{{Ports: []int{5}, Count: 2}, {Ports: []int{0, 1}, Count: 1}},
		{{Ports: []int{2, 3}, Count: 1}, {Ports: []int{2, 3, 7}, Count: 1}, {Ports: []int{4}, Count: 1}},
		{{Ports: []int{0, 1}, Count: 3}, {Ports: []int{1, 5}, Count: 2}, {Ports: []int{0, 5, 6}, Count: 1}},
	}
	for i, groups := range cases {
		exact, err := MinMaxLoad(groups, 8)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		viaLP, err := MinMaxLoadLP(groups, 8)
		if err != nil {
			t.Fatalf("case %d (LP): %v", i, err)
		}
		if math.Abs(exact-viaLP) > 1e-6 {
			t.Errorf("case %d: combinatorial %v != simplex %v", i, exact, viaLP)
		}
	}
}

// Property: the two solvers agree on random instances, the optimum is at
// least totalUops/numPorts and at least the load forced onto any single
// port.
func TestSolversAgreeProperty(t *testing.T) {
	t.Parallel()
	type groupSpec struct {
		Mask  uint8
		Count uint8
	}
	f := func(specs []groupSpec) bool {
		const numPorts = 6
		var groups []PortGroup
		total := 0.0
		for _, s := range specs {
			if len(groups) >= 5 {
				break
			}
			var ports []int
			for p := 0; p < numPorts; p++ {
				if s.Mask&(1<<uint(p)) != 0 {
					ports = append(ports, p)
				}
			}
			if len(ports) == 0 {
				continue
			}
			count := float64(s.Count%4) + 1
			groups = append(groups, PortGroup{Ports: ports, Count: count})
			total += count
		}
		if len(groups) == 0 {
			return true
		}
		exact, err := MinMaxLoad(groups, numPorts)
		if err != nil {
			return false
		}
		viaLP, err := MinMaxLoadLP(groups, numPorts)
		if err != nil {
			return false
		}
		if math.Abs(exact-viaLP) > 1e-4 {
			return false
		}
		// Lower bound: total work divided by the number of ports.
		if exact+1e-9 < total/numPorts {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestScheduleRespectsOptimum(t *testing.T) {
	t.Parallel()
	groups := []PortGroup{
		{Ports: []int{0}, Count: 1},
		{Ports: []int{0, 1, 5}, Count: 1},
		{Ports: []int{5}, Count: 1},
	}
	z, assign, err := Schedule(groups, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(z, 1) {
		t.Errorf("optimal load = %v, want 1", z)
	}
	// Every group's µops are fully assigned, only to allowed ports.
	for gi, g := range groups {
		sum := 0.0
		for p, v := range assign[gi] {
			if v > 0 {
				allowed := false
				for _, ap := range g.Ports {
					if ap == p {
						allowed = true
					}
				}
				if !allowed {
					t.Errorf("group %d assigned to disallowed port %d", gi, p)
				}
			}
			sum += v
		}
		if !almostEqual(sum, g.Count) {
			t.Errorf("group %d assigned %v µops, want %v", gi, sum, g.Count)
		}
	}
}

func TestSimplexSimpleLP(t *testing.T) {
	t.Parallel()
	// minimize x + y subject to x + 2y >= 4, 3x + y >= 6, x,y >= 0.
	// Optimum at x = 1.6, y = 1.2 with objective 2.8.
	var p Problem
	p.NumVars = 2
	p.Objective = []float64{1, 1}
	p.AddConstraint([]float64{1, 2}, GE, 4)
	p.AddConstraint([]float64{3, 1}, GE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 2.8) {
		t.Errorf("objective = %v, want 2.8", sol.Objective)
	}
}

func TestSimplexEqualityConstraints(t *testing.T) {
	t.Parallel()
	// minimize 2x + 3y subject to x + y == 10, x <= 4.
	// Optimum: x = 4, y = 6, objective 26.
	var p Problem
	p.NumVars = 2
	p.Objective = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 26) {
		t.Errorf("objective = %v, want 26", sol.Objective)
	}
	if !almostEqual(sol.X[0], 4) || !almostEqual(sol.X[1], 6) {
		t.Errorf("solution = %v, want [4 6]", sol.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	t.Parallel()
	// x <= 1 and x >= 2 is infeasible.
	var p Problem
	p.NumVars = 1
	p.Objective = []float64{1}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	if _, err := p.Solve(); err == nil {
		t.Error("Solve accepted an infeasible problem")
	}
}

func TestSimplexUnbounded(t *testing.T) {
	t.Parallel()
	// maximize x (minimize -x) with only x >= 1: unbounded below for -x.
	var p Problem
	p.NumVars = 1
	p.Objective = []float64{-1}
	p.AddConstraint([]float64{1}, GE, 1)
	if _, err := p.Solve(); err == nil {
		t.Error("Solve accepted an unbounded problem")
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	t.Parallel()
	// minimize x subject to -x <= -3  (i.e. x >= 3).
	var p Problem
	p.NumVars = 1
	p.Objective = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 3) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestSimplexRejectsBadProblems(t *testing.T) {
	t.Parallel()
	var p Problem
	if _, err := p.Solve(); err == nil {
		t.Error("Solve accepted a problem with no variables")
	}
	p.NumVars = 2
	p.Objective = []float64{1}
	if _, err := p.Solve(); err == nil {
		t.Error("Solve accepted a mismatched objective length")
	}
}
