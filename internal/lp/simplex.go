package lp

import (
	"fmt"
	"math"
)

// Relation is the comparison operator of a linear constraint.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// Problem is a linear program in the form
//
//	minimize  c'x
//	subject to a_i'x (<=|>=|==) b_i for every constraint i, x >= 0.
type Problem struct {
	NumVars   int
	Objective []float64

	rows [][]float64
	rels []Relation
	rhs  []float64
}

// AddConstraint appends the constraint row'x rel rhs. The row is copied.
func (p *Problem) AddConstraint(row []float64, rel Relation, rhs float64) {
	r := make([]float64, p.NumVars)
	copy(r, row)
	p.rows = append(p.rows, r)
	p.rels = append(p.rels, rel)
	p.rhs = append(p.rhs, rhs)
}

// Solution is the result of solving a Problem.
type Solution struct {
	// X holds the optimal values of the original variables.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
}

const simplexEps = 1e-9

// Solve runs a two-phase dense simplex and returns the optimal solution. It
// returns an error if the problem is infeasible or unbounded.
func (p *Problem) Solve() (Solution, error) {
	if p.NumVars <= 0 {
		return Solution{}, fmt.Errorf("lp: problem has no variables")
	}
	if len(p.Objective) != p.NumVars {
		return Solution{}, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	m := len(p.rows)
	// Count slack and artificial variables.
	numSlack := 0
	numArt := 0
	for i := 0; i < m; i++ {
		rel := p.rels[i]
		rhs := p.rhs[i]
		if rhs < 0 {
			// Normalizing flips the relation.
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	total := p.NumVars + numSlack + numArt
	// Build the tableau: m rows of [coefficients | rhs].
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx := p.NumVars
	artIdx := p.NumVars + numSlack
	artCols := make([]int, 0, numArt)
	for i := 0; i < m; i++ {
		row := make([]float64, total+1)
		rel := p.rels[i]
		rhs := p.rhs[i]
		sign := 1.0
		if rhs < 0 {
			sign = -1.0
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j := 0; j < p.NumVars; j++ {
			row[j] = sign * p.rows[i][j]
		}
		row[total] = rhs
		switch rel {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
		tab[i] = row
	}

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, total)
		for _, c := range artCols {
			phase1[c] = 1
		}
		val, err := runSimplex(tab, basis, phase1, total)
		if err != nil {
			return Solution{}, fmt.Errorf("lp: phase 1: %w", err)
		}
		if val > 1e-6 {
			return Solution{}, fmt.Errorf("lp: infeasible (artificial objective %v)", val)
		}
		// Drive any artificial variables still in the basis out of it (or
		// accept them at value zero).
	}

	// Phase 2: minimize the original objective. Artificial columns are
	// forbidden by giving them a large cost.
	phase2 := make([]float64, total)
	copy(phase2, p.Objective)
	for _, c := range artCols {
		phase2[c] = 1e9
	}
	val, err := runSimplex(tab, basis, phase2, total)
	if err != nil {
		return Solution{}, fmt.Errorf("lp: phase 2: %w", err)
	}
	sol := Solution{X: make([]float64, p.NumVars)}
	for i, b := range basis {
		if b < p.NumVars {
			sol.X[b] = tab[i][total]
		}
	}
	// Recompute the objective from the original coefficients (more accurate
	// than the tableau value when artificial penalties are present).
	obj := 0.0
	for j := 0; j < p.NumVars; j++ {
		obj += p.Objective[j] * sol.X[j]
	}
	_ = val
	sol.Objective = obj
	return sol, nil
}

// runSimplex minimizes cost'x over the current tableau using Bland's rule,
// updating tab and basis in place, and returns the optimal objective value.
func runSimplex(tab [][]float64, basis []int, cost []float64, total int) (float64, error) {
	m := len(tab)
	// Reduced costs: z_j - c_j computed from the basis.
	maxIter := 200 * (total + m + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Compute the simplex multipliers implicitly via reduced costs.
		reduced := make([]float64, total)
		for j := 0; j < total; j++ {
			sum := 0.0
			for i := 0; i < m; i++ {
				sum += cost[basis[i]] * tab[i][j]
			}
			reduced[j] = cost[j] - sum
		}
		// Entering variable: Bland's rule (smallest index with negative
		// reduced cost).
		enter := -1
		for j := 0; j < total; j++ {
			if reduced[j] < -simplexEps {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Optimal.
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += cost[basis[i]] * tab[i][total]
			}
			return obj, nil
		}
		// Leaving variable: minimum ratio test, ties broken by smallest
		// basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > simplexEps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-simplexEps ||
					(math.Abs(ratio-bestRatio) <= simplexEps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, fmt.Errorf("unbounded (entering column %d)", enter)
		}
		pivot(tab, leave, enter, total)
		basis[leave] = enter
	}
	return 0, fmt.Errorf("iteration limit exceeded")
}

// pivot performs a Gauss-Jordan pivot on tab[row][col].
func pivot(tab [][]float64, row, col, total int) {
	m := len(tab)
	pv := tab[row][col]
	for j := 0; j <= total; j++ {
		tab[row][j] /= pv
	}
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= factor * tab[row][j]
		}
	}
}
