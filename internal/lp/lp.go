// Package lp solves the optimization problem of Section 5.3.2 of the paper:
// computing the throughput of an instruction from its port usage by finding a
// schedule of µops to ports that minimizes the maximum port load.
//
// Two solvers are provided:
//
//   - MinMaxLoad: an exact combinatorial solver based on the duality between
//     the minimum makespan of fractionally divisible µop groups and the most
//     loaded port subset (for every subset S of ports, all µops whose
//     allowed ports are contained in S must run on S, so the optimum is the
//     maximum over subsets of "µops confined to S" / |S|). With at most 8
//     ports the 256 subsets are enumerated directly.
//
//   - Simplex: a small dense two-phase simplex solver for general linear
//     programs, used to solve the paper's LP formulation directly; the two
//     solvers are validated against each other in the tests.
//
//uopslint:deterministic
package lp

import (
	"fmt"
	"math"
)

// PortGroup is one entry of a port-usage mapping: Count µops that may each
// execute on any of the Ports.
type PortGroup struct {
	Ports []int
	Count float64
}

// MinMaxLoad returns the smallest achievable maximum per-port load when the
// µops of each group are distributed (fractionally) over that group's ports.
// This equals the instruction's throughput in cycles per instruction under
// Intel's definition (Definition 1) for instructions that do not use the
// divider. Ports outside [0, numPorts) are ignored. Groups with no valid
// ports contribute load that cannot be scheduled; they cause an error.
func MinMaxLoad(groups []PortGroup, numPorts int) (float64, error) {
	if numPorts <= 0 || numPorts > 16 {
		return 0, fmt.Errorf("lp: invalid port count %d", numPorts)
	}
	// Normalize groups to bitmasks.
	type maskGroup struct {
		mask  uint
		count float64
	}
	var mgs []maskGroup
	for _, g := range groups {
		if g.Count == 0 {
			continue
		}
		if g.Count < 0 {
			return 0, fmt.Errorf("lp: negative µop count %v", g.Count)
		}
		var mask uint
		for _, p := range g.Ports {
			if p >= 0 && p < numPorts {
				mask |= 1 << uint(p)
			}
		}
		if mask == 0 {
			return 0, fmt.Errorf("lp: group with %v µops has no valid port", g.Count)
		}
		mgs = append(mgs, maskGroup{mask: mask, count: g.Count})
	}
	if len(mgs) == 0 {
		return 0, nil
	}
	best := 0.0
	for s := uint(1); s < 1<<uint(numPorts); s++ {
		confined := 0.0
		for _, g := range mgs {
			if g.mask&^s == 0 {
				confined += g.count
			}
		}
		size := float64(popcount(s))
		if load := confined / size; load > best {
			best = load
		}
	}
	return best, nil
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		n += int(x & 1)
		x >>= 1
	}
	return n
}

// MinMaxLoadLP solves the same problem via the explicit linear program from
// the paper: minimize z subject to
//
//	sum_p f(p,pc) = count(pc)        for every port group pc
//	sum_pc f(p,pc) <= z              for every port p
//	f(p,pc) = 0                      if p not in pc, f >= 0.
//
// It exists alongside MinMaxLoad to validate the combinatorial solver (and
// vice versa).
func MinMaxLoadLP(groups []PortGroup, numPorts int) (float64, error) {
	if numPorts <= 0 {
		return 0, fmt.Errorf("lp: invalid port count %d", numPorts)
	}
	// Variable layout: f(g,p) for each group g and each allowed port p, then z.
	type varKey struct{ g, p int }
	varIdx := make(map[varKey]int)
	nv := 0
	for gi, g := range groups {
		if g.Count == 0 {
			continue
		}
		ok := false
		for _, p := range g.Ports {
			if p >= 0 && p < numPorts {
				varIdx[varKey{gi, p}] = nv
				nv++
				ok = true
			}
		}
		if !ok {
			return 0, fmt.Errorf("lp: group %d has no valid port", gi)
		}
	}
	zIdx := nv
	nv++
	if nv == 1 {
		return 0, nil
	}

	var prob Problem
	prob.NumVars = nv
	prob.Objective = make([]float64, nv)
	prob.Objective[zIdx] = 1 // minimize z

	// Equality constraints: each group's µops are fully assigned.
	for gi, g := range groups {
		if g.Count == 0 {
			continue
		}
		row := make([]float64, nv)
		for _, p := range g.Ports {
			if idx, ok := varIdx[varKey{gi, p}]; ok {
				row[idx] = 1
			}
		}
		prob.AddConstraint(row, EQ, g.Count)
	}
	// Load constraints: per-port load minus z is at most 0.
	for p := 0; p < numPorts; p++ {
		row := make([]float64, nv)
		any := false
		for gi, g := range groups {
			if g.Count == 0 {
				continue
			}
			if idx, ok := varIdx[varKey{gi, p}]; ok {
				row[idx] = 1
				any = true
			}
		}
		if !any {
			continue
		}
		row[zIdx] = -1
		prob.AddConstraint(row, LE, 0)
	}

	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// Schedule returns, in addition to the optimal maximum load, a concrete
// fractional assignment of µops to ports achieving it: result[g][p] is the
// fraction of group g's µops placed on port p. It uses a water-filling
// refinement of the exact bound.
func Schedule(groups []PortGroup, numPorts int) (float64, [][]float64, error) {
	z, err := MinMaxLoad(groups, numPorts)
	if err != nil {
		return 0, nil, err
	}
	assign := make([][]float64, len(groups))
	load := make([]float64, numPorts)
	// Place the most constrained groups first (fewest allowed ports), always
	// on the currently least-loaded allowed port, in small increments. With
	// the optimal z known, this greedy never needs to exceed z by more than
	// a rounding epsilon.
	order := make([]int, 0, len(groups))
	for i := range groups {
		assign[i] = make([]float64, numPorts)
		if groups[i].Count > 0 {
			order = append(order, i)
		}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if len(groups[order[j]].Ports) < len(groups[order[i]].Ports) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	const step = 1.0 / 64
	for _, gi := range order {
		remaining := groups[gi].Count
		for remaining > 1e-12 {
			chunk := math.Min(step, remaining)
			best := -1
			for _, p := range groups[gi].Ports {
				if p < 0 || p >= numPorts {
					continue
				}
				if best == -1 || load[p] < load[best] {
					best = p
				}
			}
			if best == -1 {
				return 0, nil, fmt.Errorf("lp: group %d has no valid port", gi)
			}
			load[best] += chunk
			assign[gi][best] += chunk
			remaining -= chunk
		}
	}
	return z, assign, nil
}
