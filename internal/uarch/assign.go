package uarch

import (
	"strings"

	"uopsinfo/internal/isa"
)

// This file contains the rule-based assignment of µop decompositions to
// instruction variants. Named per-generation special cases (the paper's case
// studies) live in overrides.go and take precedence.

// wiring is the scaffolding shared by all assignment rules: load µops for
// memory source operands, the value references a compute step reads and
// writes, and the store information for memory destination operands.
type wiring struct {
	loads       []Uop
	srcs        []ValRef
	dsts        []ValRef
	storeMemIdx int    // operand index of a written memory operand, -1 if none
	storeSrc    ValRef // value stored by a pure store (no compute step)
	hasStoreSrc bool
	nextTemp    int
}

func (a *Arch) wire(in *isa.Instr) *wiring {
	w := &wiring{storeMemIdx: -1}
	for i, op := range in.Operands {
		switch op.Kind {
		case isa.OpReg:
			if op.Read {
				w.srcs = append(w.srcs, Op(i))
			}
			if op.Write {
				w.dsts = append(w.dsts, Op(i))
			}
		case isa.OpMem:
			if op.Read {
				t := Tmp(w.nextTemp)
				w.nextTemp++
				w.loads = append(w.loads, loadUop(a.prof.load, i, t))
				w.srcs = append(w.srcs, t)
			}
			if op.Write {
				w.storeMemIdx = i
			}
		case isa.OpFlags:
			if op.Read {
				w.srcs = append(w.srcs, Op(i))
			}
			if op.Write {
				w.dsts = append(w.dsts, Op(i))
			}
		case isa.OpImm:
			// Immediates are not dataflow resources.
		}
	}
	// Remember the natural store source for pure moves to memory: the first
	// read register operand.
	for i, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Read {
			w.storeSrc = Op(i)
			w.hasStoreSrc = true
			break
		}
	}
	_ = in
	return w
}

// temp allocates a fresh temporary reference.
func (w *wiring) temp() ValRef {
	t := Tmp(w.nextTemp)
	w.nextTemp++
	return t
}

// assemble builds the final InstrPerf from the wiring, the compute µops and
// the store µops implied by a written memory operand. If the compute step is
// empty and a memory operand is written, the store data comes straight from
// the first read register operand (a pure store).
func (a *Arch) assemble(in *isa.Instr, w *wiring, compute []Uop, storeVal ValRef, hasStoreVal bool) *InstrPerf {
	p := &InstrPerf{}
	p.Uops = append(p.Uops, w.loads...)
	p.Uops = append(p.Uops, compute...)
	if w.storeMemIdx >= 0 {
		p.Uops = append(p.Uops, storeAddrUop(a.prof.storeAddr, w.storeMemIdx))
		var data Uop
		switch {
		case hasStoreVal:
			data = storeDataUop(a.prof.storeData, w.storeMemIdx, storeVal)
		case w.hasStoreSrc:
			data = storeDataUop(a.prof.storeData, w.storeMemIdx, w.storeSrc)
		default:
			data = storeDataUop(a.prof.storeData, w.storeMemIdx)
		}
		p.Uops = append(p.Uops, data)
	}
	p.ZeroIdiom = in.MayZeroIdiom
	p.ZeroIdiomElim = in.MayZeroIdiom && a.prof.zeroIdiomElim
	if in.MayMoveElim {
		isVec := in.Domain != isa.DomainInt
		if (isVec && a.prof.moveElimVec) || (!isVec && a.prof.moveElimGPR) {
			p.MoveElim = true
		}
	}
	return p
}

// simple builds the standard decomposition: loads, a single compute µop on
// the given ports with the given latency, and stores.
func (a *Arch) simple(in *isa.Instr, ports []int, lat int) *InstrPerf {
	w := a.wire(in)
	var compute []Uop
	storeVal := ValRef{}
	hasStoreVal := false
	dsts := w.dsts
	if w.storeMemIdx >= 0 && (len(w.srcs) > 0 || len(w.dsts) > 0) && hasComputeStep(in) {
		// Read-modify-write to memory: the compute µop produces the value to
		// store in a temporary.
		t := w.temp()
		dsts = append(append([]ValRef(nil), w.dsts...), t)
		storeVal = t
		hasStoreVal = true
	}
	if hasComputeStep(in) {
		compute = []Uop{uop(ports, lat, w.srcs, dsts)}
	} else if len(w.loads) > 0 && len(w.dsts) > 0 {
		// Pure move from memory: the load µop writes the destination
		// register directly instead of an internal temporary.
		w.loads[len(w.loads)-1].Writes = append([]ValRef(nil), w.dsts...)
	}
	return a.assemble(in, w, compute, storeVal, hasStoreVal)
}

// chainUops builds a decomposition whose compute step is a chain of µops:
// stage i executes on ports[i] with latency lats[i]; the first stage reads
// all sources, every stage feeds the next through a temporary, and the last
// stage writes all destinations. The per-operand-pair latency is the sum of
// the stage latencies.
func (a *Arch) chainUops(in *isa.Instr, ports [][]int, lats []int) *InstrPerf {
	w := a.wire(in)
	n := len(ports)
	var compute []Uop
	var prev ValRef
	storeVal := ValRef{}
	hasStoreVal := false
	dsts := w.dsts
	if w.storeMemIdx >= 0 {
		t := w.temp()
		dsts = append(append([]ValRef(nil), w.dsts...), t)
		storeVal = t
		hasStoreVal = true
	}
	for i := 0; i < n; i++ {
		reads := []ValRef{}
		if i == 0 {
			reads = append(reads, w.srcs...)
		} else {
			reads = append(reads, prev)
		}
		var writes []ValRef
		if i == n-1 {
			writes = dsts
		} else {
			t := w.temp()
			writes = []ValRef{t}
			prev = t
		}
		compute = append(compute, uop(ports[i], lats[i], reads, writes))
	}
	return a.assemble(in, w, compute, storeVal, hasStoreVal)
}

// withExtra adds count additional µops on the given ports that have no
// dataflow effect (pure port pressure, as in microcoded instructions).
func withExtra(p *InstrPerf, ports []int, count int) *InstrPerf {
	for i := 0; i < count; i++ {
		p.Uops = append(p.Uops, uop(ports, 1, nil, nil))
	}
	return p
}

// hasComputeStep reports whether the variant needs an execution µop beyond
// pure loads and stores (false for plain MOV to/from memory and for pure
// stores, which decompose into just load or store µops).
func hasComputeStep(in *isa.Instr) bool {
	switch in.Mnemonic {
	case "MOV", "MOVAPS", "MOVUPS", "MOVAPD", "MOVUPD", "MOVDQA", "MOVDQU",
		"VMOVAPS", "VMOVUPS", "VMOVAPD", "VMOVUPD", "VMOVDQA", "VMOVDQU",
		"MOVNTPS", "MOVNTPD", "MOVNTDQ", "MOVNTDQA", "LDDQU", "MOVQ", "MOVD",
		"VMOVQ", "VMOVD", "MOVSS", "MOVSD", "PUSH", "POP":
		// Register-to-register forms of these still need an execution µop
		// (or are eliminated); memory forms are pure loads/stores. The
		// caller only relies on this for memory forms.
		return !in.HasMemOperand()
	}
	return true
}

// buildPerf is the rule-based fallback used for every variant that has no
// named override. It classifies the variant by mnemonic and operand shape and
// assigns ports and latencies from the generation profile.
func (a *Arch) buildPerf(in *isa.Instr) *InstrPerf {
	p := &a.prof
	m := in.Mnemonic
	base := strings.TrimPrefix(m, "V")
	isAVX := strings.HasPrefix(m, "V") && in.Extension.IsAVX()
	_ = isAVX

	// LOCK-prefixed read-modify-write instructions are microcoded.
	if in.HasLock {
		perf := a.simple(in, p.intALU, 1)
		return withExtra(perf, p.slowInt, 6)
	}
	// REP string instructions have a large, variable µop count.
	if in.HasRep {
		perf := a.simple(in, p.slowInt, 2)
		return withExtra(perf, p.slowInt, 8)
	}
	if in.IsNOP {
		return &InstrPerf{Uops: []Uop{{Ports: nil, Latency: 0}}}
	}
	if in.IsSerializing {
		perf := a.simple(in, p.slowInt, 4)
		return withExtra(perf, p.slowInt, 3)
	}
	if in.IsSystem {
		perf := a.simple(in, p.slowInt, 10)
		return withExtra(perf, p.slowInt, 10)
	}

	switch {
	// ---------------------------------------------------------------- moves
	case m == "MOV" || m == "MOVZX" || m == "MOVSX" || m == "MOVSXD":
		return a.simple(in, p.intALU, 1)
	case m == "MOVBE":
		if in.WritesMemory() {
			perf := a.simple(in, p.intShift, 1)
			return perf
		}
		return a.simple(in, p.intShift, 1)
	case m == "LEA":
		return a.simple(in, p.lea, 1)
	case m == "MOVAPS" || m == "MOVUPS" || m == "MOVAPD" || m == "MOVUPD" ||
		m == "MOVDQA" || m == "MOVDQU" || m == "VMOVAPS" || m == "VMOVUPS" ||
		m == "VMOVAPD" || m == "VMOVUPD" || m == "VMOVDQA" || m == "VMOVDQU" ||
		m == "MOVNTPS" || m == "MOVNTPD" || m == "MOVNTDQ" || m == "MOVNTDQA" || m == "LDDQU":
		return a.simple(in, p.vecLogic, 1)
	case m == "MOVSS" || m == "MOVSD" || m == "MOVHLPS" || m == "MOVLHPS" ||
		m == "MOVDDUP" || m == "MOVSHDUP" || m == "MOVSLDUP" ||
		m == "VMOVDDUP" || m == "VMOVSHDUP" || m == "VMOVSLDUP":
		return a.simple(in, p.shuffle, 1)
	case m == "MOVD" || m == "MOVQ" || m == "VMOVD" || m == "VMOVQ":
		// GPR<->vector transfers use port 0; pure vector/memory forms are
		// cheap moves.
		hasGPR := false
		for _, op := range in.ExplicitOperands() {
			if op.Kind == isa.OpReg && op.Class.IsGPR() {
				hasGPR = true
			}
		}
		if hasGPR {
			return a.simple(in, []int{0}, 2)
		}
		return a.simple(in, p.vecLogic, 1)
	case m == "MOVQ2DQ" || m == "MOVDQ2Q":
		// Default model (overridden per generation for the case studies):
		// one shuffle µop plus one vector-logic µop.
		return a.chainUops(in, [][]int{p.shuffle, p.vecLogic}, []int{1, 1})
	case m == "MOVMSKPS" || m == "MOVMSKPD" || m == "PMOVMSKB" || m == "VPMOVMSKB":
		return a.simple(in, []int{0}, 2)
	case m == "MASKMOVDQU" || m == "VMASKMOVPS" || m == "VMASKMOVPD":
		perf := a.simple(in, p.vecLogic, 2)
		return withExtra(perf, p.storeAddr, 1)
	case m == "VZEROUPPER":
		return &InstrPerf{Uops: []Uop{uop(p.vecLogic, 1, nil, nil)}}
	case m == "VZEROALL":
		perf := &InstrPerf{Uops: []Uop{uop(p.vecLogic, 1, nil, nil)}}
		return withExtra(perf, p.vecLogic, 8)

	// ------------------------------------------------------ integer scalar
	case m == "ADD" || m == "SUB" || m == "AND" || m == "OR" || m == "XOR" ||
		m == "CMP" || m == "TEST" || m == "INC" || m == "DEC" || m == "NEG" || m == "NOT":
		return a.simple(in, p.intALU, 1)
	case m == "ADC" || m == "SBB":
		switch a.gen {
		case Nehalem, Westmere, SandyBridge, IvyBridge:
			// Two µops on the older generations.
			return a.chainUops(in, [][]int{p.intALU, p.intShift}, []int{1, 1})
		case Haswell:
			// The Section 5.1 example: 1*p0156 + 1*p06, not 2*p0156.
			return a.chainUops(in, [][]int{p.intALU, p.intShift}, []int{1, 1})
		default:
			return a.simple(in, p.intShift, 1)
		}
	case m == "ADCX" || m == "ADOX":
		return a.simple(in, p.intShift, 1)
	case m == "SHL" || m == "SHR" || m == "SAR" || m == "ROL" || m == "ROR":
		// The flags are both read and written; the register result is
		// available one cycle before the merged flags, giving different
		// latencies for different operand pairs (Section 7.3.5).
		w := a.wire(in)
		var regDst, flagDst []ValRef
		for _, d := range w.dsts {
			if d.Kind == ValOperand && in.Operands[d.Index].Kind == isa.OpFlags {
				flagDst = append(flagDst, d)
			} else {
				regDst = append(regDst, d)
			}
		}
		var regSrcs, flagSrcs []ValRef
		for _, s := range w.srcs {
			if s.Kind == ValOperand && in.Operands[s.Index].Kind == isa.OpFlags {
				flagSrcs = append(flagSrcs, s)
			} else {
				regSrcs = append(regSrcs, s)
			}
		}
		shiftUop := uop(p.intShift, 1, regSrcs, regDst)
		var compute []Uop
		if w.storeMemIdx >= 0 {
			t := w.temp()
			shiftUop.Writes = append(append([]ValRef(nil), regDst...), t)
			compute = []Uop{shiftUop}
			if len(flagDst) > 0 {
				compute = append(compute, uop(p.intShift, 2, append(regSrcs, flagSrcs...), flagDst))
			}
			return a.assemble(in, w, compute, t, true)
		}
		compute = []Uop{shiftUop}
		if len(flagDst) > 0 {
			compute = append(compute, uop(p.intShift, 2, append(regSrcs, flagSrcs...), flagDst))
		}
		return a.assemble(in, w, compute, ValRef{}, false)
	case m == "RCL" || m == "RCR":
		perf := a.chainUops(in, [][]int{p.intShift, p.intALU, p.intShift}, []int{1, 1, 1})
		return perf
	case m == "SHLD" || m == "SHRD":
		// Default model: the second source is needed one cycle before the
		// read-modify-write destination (Section 7.3.2 explains the
		// Nehalem numbers: lat(R1,R1)=3, lat(R2,R1)=4).
		return a.buildShiftDouble(in)
	case m == "SARX" || m == "SHLX" || m == "SHRX" || m == "RORX":
		return a.simple(in, p.intShift, 1)
	case m == "IMUL" || m == "MUL":
		return a.buildMul(in)
	case m == "MULX":
		return a.simple(in, p.intMul, 4)
	case m == "DIV" || m == "IDIV":
		return a.buildDiv(in)
	case strings.HasPrefix(m, "CMOV"):
		reads2 := flagCount(in) >= 2
		switch {
		case a.gen <= IvyBridge:
			return a.chainUops(in, [][]int{p.intALU, p.intALU}, []int{1, 1})
		case a.gen <= Broadwell:
			return a.chainUops(in, [][]int{p.intShift, p.intShift}, []int{1, 1})
		default:
			if reads2 {
				// CMOVBE/CMOVNBE read both CF and ZF and keep two µops.
				return a.chainUops(in, [][]int{p.intShift, p.intShift}, []int{1, 1})
			}
			return a.simple(in, p.intShift, 1)
		}
	case strings.HasPrefix(m, "SET"):
		return a.simple(in, p.intShift, 1)
	case strings.HasPrefix(m, "J") && in.ControlFlow:
		return a.simple(in, p.branch, 1)
	case m == "CALL":
		perf := a.simple(in, p.branch, 1)
		return withExtra(perf, p.storeAddr, 1)
	case m == "RET":
		perf := a.simple(in, p.branch, 1)
		return withExtra(perf, p.load, 1)
	case m == "BSF" || m == "BSR" || m == "POPCNT" || m == "LZCNT" || m == "TZCNT":
		return a.simple(in, p.intMul, 3)
	case m == "BT" || m == "BTS" || m == "BTR" || m == "BTC":
		return a.simple(in, p.intShift, 1)
	case m == "BSWAP":
		if in.Operands[0].Width == 64 {
			return a.chainUops(in, [][]int{p.intShift, p.intALU}, []int{1, 1})
		}
		return a.simple(in, p.intALU, 1)
	case m == "XCHG":
		if in.HasMemOperand() {
			perf := a.simple(in, p.intALU, 2)
			return withExtra(perf, p.slowInt, 4)
		}
		return a.chainUops(in, [][]int{p.intALU, p.intALU, p.intALU}, []int{1, 1, 1})
	case m == "XADD":
		return a.chainUops(in, [][]int{p.intALU, p.intALU, p.intALU}, []int{1, 1, 1})
	case m == "CMPXCHG":
		perf := a.chainUops(in, [][]int{p.intALU, p.intALU}, []int{1, 1})
		return withExtra(perf, p.intALU, 2)
	case m == "PUSH":
		return a.buildPush(in)
	case m == "POP":
		return a.buildPop(in)
	case m == "LAHF" || m == "SAHF":
		return a.simple(in, p.intShift, 1)
	case m == "CMC" || m == "CLC" || m == "STC":
		return a.simple(in, p.intALU, 1)
	case m == "CBW" || m == "CWDE" || m == "CDQE" || m == "CWD" || m == "CDQ" || m == "CQO":
		return a.simple(in, p.intALU, 1)
	case m == "ANDN" || m == "BEXTR" || m == "BZHI" || m == "BLSI" || m == "BLSMSK" || m == "BLSR":
		return a.simple(in, p.intALU, 1)
	case m == "PDEP" || m == "PEXT":
		return a.simple(in, p.intMul, 3)
	case m == "CRC32":
		return a.simple(in, p.intMul, 3)
	case m == "PAUSE":
		return &InstrPerf{Uops: []Uop{uop(p.intALU, 1, nil, nil), uop(p.intALU, 1, nil, nil)}}

	// ------------------------------------------------------------- vectors
	case m == "PSHUFB" || m == "VPSHUFB":
		// PSHUFB has an operand-dependent latency profile (Section 7.3.5):
		// the shuffle control is needed a cycle earlier than the data.
		return a.buildShiftDouble(in)
	case isShuffleMnemonic(base):
		return a.simple(in, p.shuffle, 1)
	case isVecLogicMnemonic(base):
		return a.simple(in, p.vecLogic, 1)
	case isVecALUMnemonic(base):
		return a.simple(in, p.vecALU, 1)
	case isVecMulMnemonic(base):
		lat := p.vecMulLat
		if base == "PMULLD" {
			// Double-pumped on most generations.
			if a.gen >= Haswell && a.gen <= Broadwell {
				return a.chainUops(in, [][]int{p.vecMul, p.vecMul}, []int{5, 5})
			}
			lat = p.vecMulLat + 2
		}
		return a.simple(in, p.vecMul, lat)
	case isVecShiftMnemonic(base):
		return a.buildVecShift(in)
	case isHorizontalMnemonic(base):
		// Horizontal adds: two shuffles plus one arithmetic µop.
		arith := p.fpAdd
		if in.Domain == isa.DomainVecInt {
			arith = p.vecALU
		}
		return a.chainUops(in, [][]int{p.shuffle, p.shuffle, arith}, []int{1, 1, a.prof.fpAddLat})
	case isFPAddMnemonic(base):
		return a.simple(in, p.fpAdd, p.fpAddLat)
	case isFPMulMnemonic(base):
		return a.simple(in, p.fpMul, p.fpMulLat)
	case isFMAMnemonic(m):
		return a.simple(in, p.fpMul, p.fmaLat)
	case isFPDivMnemonic(base):
		return a.buildFPDiv(in)
	case base == "RCPPS" || base == "RCPSS" || base == "RSQRTPS" || base == "RSQRTSS":
		return a.simple(in, p.fpDiv, 4)
	case isConvertMnemonic(base):
		return a.buildConvert(in)
	case isBlendMnemonic(base):
		return a.buildBlend(in)
	case base == "AESDEC" || base == "AESDECLAST" || base == "AESENC" || base == "AESENCLAST":
		return a.buildAES(in)
	case base == "AESIMC" || base == "AESKEYGENASSIST":
		perf := a.simple(in, p.aes, p.aesLat)
		return withExtra(perf, p.shuffle, 1)
	case base == "PCLMULQDQ":
		if a.gen <= IvyBridge {
			perf := a.simple(in, p.vecMul, 8)
			return withExtra(perf, p.shuffle, 2)
		}
		return a.simple(in, p.vecMul, 7)
	case base == "PCMPESTRI" || base == "PCMPESTRM" || base == "PCMPISTRI" || base == "PCMPISTRM":
		perf := a.simple(in, p.vecALU, 9)
		return withExtra(perf, p.slowInt, 3)
	case base == "PTEST" || base == "VTESTPS":
		return a.chainUops(in, [][]int{p.vecLogic, p.intALU}, []int{1, 1})
	case base == "PHMINPOSUW":
		return a.simple(in, p.vecMul, 4)
	case base == "MPSADBW":
		// Another multi-latency instruction (Section 7.3.5).
		return a.chainUops(in, [][]int{p.shuffle, p.vecALU}, []int{2, 2})
	case base == "DPPS" || base == "DPPD":
		return a.chainUops(in, [][]int{p.fpMul, p.fpAdd, p.fpAdd}, []int{p.fpMulLat, 3, 3})
	case isExtractInsertMnemonic(base):
		return a.chainUops(in, [][]int{p.shuffle, []int{0}}, []int{1, 1})
	case isGatherMnemonic(base):
		perf := a.simple(in, p.load, 5)
		return withExtra(perf, p.load, 3)
	case base == "VCVTPH2PS" || base == "VCVTPS2PH":
		return a.chainUops(in, [][]int{p.fpMul, p.shuffle}, []int{3, 1})
	}

	// Fallback: a single ALU-class µop. The fallback is deliberately broad
	// so every generated variant has a defined ground truth.
	if in.Domain == isa.DomainInt {
		return a.simple(in, p.intALU, 1)
	}
	return a.simple(in, p.vecALU, 1)
}

// buildShiftDouble models SHLD/SHRD-style instructions: the non-destination
// source feeds an early µop, the read-modify-write destination feeds a later
// µop, so lat(src2,dst) exceeds lat(dst,dst) by one cycle.
func (a *Arch) buildShiftDouble(in *isa.Instr) *InstrPerf {
	p := &a.prof
	w := a.wire(in)
	// Split sources: operand 0 (the read-modify-write destination) and the
	// flags on one side, the other sources on the other.
	var lateSrcs, earlySrcs []ValRef
	for _, s := range w.srcs {
		if s.Kind == ValOperand && s.Index == 0 {
			lateSrcs = append(lateSrcs, s)
		} else {
			earlySrcs = append(earlySrcs, s)
		}
	}
	lat2 := 3
	if in.Mnemonic == "PSHUFB" || in.Mnemonic == "VPSHUFB" {
		lat2 = 1
	}
	if len(earlySrcs) == 0 {
		return a.simple(in, p.intShift, lat2)
	}
	t := w.temp()
	early := uop(p.intShift, 1, earlySrcs, []ValRef{t})
	if in.Domain != isa.DomainInt {
		early.Ports = p.shuffle
	}
	latePorts := p.intShift
	if in.Domain != isa.DomainInt {
		latePorts = p.shuffle
	}
	dsts := w.dsts
	storeVal := ValRef{}
	hasStoreVal := false
	if w.storeMemIdx >= 0 {
		tv := w.temp()
		dsts = append(append([]ValRef(nil), w.dsts...), tv)
		storeVal = tv
		hasStoreVal = true
	}
	late := uop(latePorts, lat2, append(lateSrcs, t), dsts)
	return a.assemble(in, w, []Uop{early, late}, storeVal, hasStoreVal)
}

// buildMul models the multiply variants.
func (a *Arch) buildMul(in *isa.Instr) *InstrPerf {
	p := &a.prof
	oneOperand := false
	for _, op := range in.Operands {
		if op.Implicit && op.FixedReg == isa.RDX && op.Write {
			oneOperand = true
		}
	}
	if oneOperand {
		// Widening multiply writing RDX:RAX.
		return a.chainUops(in, [][]int{p.intMul, p.intALU}, []int{3, 1})
	}
	w := a.wire(in)
	// Register result after 3 cycles, flags one cycle later (a documented
	// multi-latency case, Section 7.3.5).
	var regDst, flagDst []ValRef
	for _, d := range w.dsts {
		if d.Kind == ValOperand && in.Operands[d.Index].Kind == isa.OpFlags {
			flagDst = append(flagDst, d)
		} else {
			regDst = append(regDst, d)
		}
	}
	u := uop(p.intMul, 3, w.srcs, append(regDst, flagDst...))
	u.WriteLat = make([]int, len(u.Writes))
	for i := range u.Writes {
		u.WriteLat[i] = 3
		if i >= len(regDst) {
			u.WriteLat[i] = 4
		}
	}
	return a.assemble(in, w, []Uop{u}, ValRef{}, false)
}

// buildDiv models the integer divisions (value-dependent latency, divider
// occupancy).
func (a *Arch) buildDiv(in *isa.Instr) *InstrPerf {
	p := &a.prof
	width := in.Operands[0].Width
	latHigh := 25
	latLow := 21
	occHigh := 18
	occLow := 10
	if width == 64 {
		latHigh, latLow = 42, 30
		occHigh, occLow = 30, 20
	}
	if a.gen >= Skylake {
		latHigh -= 4
		latLow -= 4
		occHigh -= 6
		occLow -= 6
	}
	w := a.wire(in)
	div := uop(p.intDiv, latHigh, w.srcs, w.dsts)
	div.Divider = true
	div.DivOccupancy = occHigh
	perf := a.assemble(in, w, []Uop{div}, ValRef{}, false)
	perf = withExtra(perf, p.slowInt, 2)
	perf.Divider = true
	perf.LatencyLowValues = latLow
	perf.DivOccupancyLowValues = occLow
	perf.DivOccupancyHighValues = occHigh
	return perf
}

// buildFPDiv models DIVPS/DIVPD/SQRT... (value-dependent, divider-bound).
func (a *Arch) buildFPDiv(in *isa.Instr) *InstrPerf {
	p := &a.prof
	latHigh, latLow := 14, 11
	occHigh, occLow := 8, 4
	if strings.Contains(in.Mnemonic, "SQRT") {
		latHigh, latLow = 18, 13
		occHigh, occLow = 12, 6
	}
	if a.gen >= Skylake {
		latHigh -= 3
		occHigh -= 3
	}
	w := a.wire(in)
	div := uop(p.fpDiv, latHigh, w.srcs, w.dsts)
	div.Divider = true
	div.DivOccupancy = occHigh
	perf := a.assemble(in, w, []Uop{div}, ValRef{}, false)
	perf.Divider = true
	perf.LatencyLowValues = latLow
	perf.DivOccupancyLowValues = occLow
	perf.DivOccupancyHighValues = occHigh
	return perf
}

// buildVecShift models the packed shifts: shift by immediate is a single
// µop; shift by an XMM count register needs an extra µop on most
// generations.
func (a *Arch) buildVecShift(in *isa.Instr) *InstrPerf {
	p := &a.prof
	byReg := false
	expl := in.ExplicitOperands()
	if len(expl) >= 2 && expl[len(expl)-1].Kind == isa.OpReg && expl[len(expl)-1].Class.IsVector() {
		byReg = true
	}
	if len(expl) >= 2 && expl[len(expl)-1].Kind == isa.OpMem {
		byReg = true
	}
	if byReg {
		return a.chainUops(in, [][]int{p.shuffle, p.vecALU}, []int{1, 1})
	}
	return a.simple(in, p.vecALU, 1)
}

// buildConvert models the conversion instructions: generally a conversion
// µop plus a shuffle µop when the element layout changes.
func (a *Arch) buildConvert(in *isa.Instr) *InstrPerf {
	p := &a.prof
	crossDomain := false
	for _, op := range in.ExplicitOperands() {
		if op.Kind == isa.OpReg && op.Class.IsGPR() {
			crossDomain = true
		}
	}
	if crossDomain {
		return a.chainUops(in, [][]int{p.fpAdd, []int{0}}, []int{p.fpAddLat, 2})
	}
	return a.chainUops(in, [][]int{p.fpAdd, p.shuffle}, []int{p.fpAddLat, 1})
}

// buildBlend models the blend family. The variable blends (with an implicit
// XMM0 or an explicit selector) take two µops; PBLENDVB on Nehalem is the
// paper's 2*p05 example.
func (a *Arch) buildBlend(in *isa.Instr) *InstrPerf {
	p := &a.prof
	variable := false
	for _, op := range in.Operands {
		if op.Implicit && op.FixedReg.Class() == isa.ClassXMM {
			variable = true
		}
	}
	if len(in.ExplicitOperands()) >= 4 {
		variable = true // VBLENDVPS-style explicit selector
	}
	if !variable {
		return a.simple(in, p.shuffle, 1)
	}
	if a.gen <= Westmere {
		// Ground truth 2*p05 (measured as 1 µop on p0 plus 1 µop on p5 when
		// run in isolation).
		return a.chainUops(in, [][]int{p.shuffle, p.shuffle}, []int{1, 1})
	}
	if a.gen >= Skylake {
		return a.chainUops(in, [][]int{p.vecLogic, p.vecLogic}, []int{1, 1})
	}
	return a.chainUops(in, [][]int{p.shuffle, p.vecLogic}, []int{1, 1})
}

// buildAES models the AES round instructions per generation (Section 7.3.1):
//   - Westmere: 3 µops, 6 cycles for every operand pair;
//   - Sandy Bridge / Ivy Bridge: 2 µops, lat(XMM1,XMM1)=8 but lat(XMM2,XMM1)=1
//     because the round key is only XORed in at the end;
//   - Haswell / Broadwell: 1 µop, 7 cycles;
//   - Skylake and later: 1 µop, 4 cycles.
func (a *Arch) buildAES(in *isa.Instr) *InstrPerf {
	p := &a.prof
	w := a.wire(in)
	// Identify the state operand (operand 0, read+write) and the key operand
	// (operand 1 or the loaded temporary).
	var stateRef, keyRef ValRef
	stateRef = Op(0)
	keyFound := false
	for _, s := range w.srcs {
		if !(s.Kind == ValOperand && s.Index == 0) {
			keyRef = s
			keyFound = true
		}
	}
	switch {
	case a.gen <= Westmere:
		perf := a.chainUops(in, [][]int{p.aes, p.aes, p.aes}, []int{2, 2, 2})
		return perf
	case a.gen <= IvyBridge:
		t := w.temp()
		u1 := uop([]int{0}, 7, []ValRef{stateRef}, []ValRef{t})
		reads := []ValRef{t}
		if keyFound {
			reads = append(reads, keyRef)
		}
		u2 := uop([]int{5}, 1, reads, w.dsts)
		return a.assemble(in, w, []Uop{u1, u2}, ValRef{}, false)
	default:
		return a.simple(in, p.aes, p.aesLat)
	}
}

// buildPush and buildPop model the stack operations (the stack-pointer update
// is handled by the stack engine and does not need an execution port).
func (a *Arch) buildPush(in *isa.Instr) *InstrPerf {
	p := &a.prof
	var uops []Uop
	var src ValRef
	hasSrc := false
	for i, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Read && !op.Implicit {
			src = Op(i)
			hasSrc = true
		}
		if op.Kind == isa.OpMem && op.Read {
			uops = append(uops, loadUop(p.load, i, Tmp(0)))
			src = Tmp(0)
			hasSrc = true
		}
	}
	uops = append(uops, Uop{Ports: p.storeAddr, Latency: 1, StoreAddr: true})
	data := Uop{Ports: p.storeData, Latency: 1, StoreData: true}
	if hasSrc {
		data.Reads = []ValRef{src}
	}
	uops = append(uops, data)
	return &InstrPerf{Uops: uops}
}

func (a *Arch) buildPop(in *isa.Instr) *InstrPerf {
	p := &a.prof
	var uops []Uop
	wroteReg := false
	for i, op := range in.Operands {
		if op.Kind == isa.OpReg && op.Write && !op.Implicit {
			uops = append(uops, Uop{Ports: p.load, Latency: 0, Load: true, Writes: []ValRef{Op(i)}})
			wroteReg = true
		}
	}
	if !wroteReg {
		uops = append(uops, Uop{Ports: p.load, Latency: 0, Load: true})
		uops = append(uops, Uop{Ports: p.storeAddr, Latency: 1, StoreAddr: true})
		uops = append(uops, Uop{Ports: p.storeData, Latency: 1, StoreData: true})
	}
	return &InstrPerf{Uops: uops}
}

// flagCount counts the status flags read by the variant.
func flagCount(in *isa.Instr) int {
	n := 0
	for _, op := range in.Operands {
		if op.Kind == isa.OpFlags {
			n += op.ReadFlags.Count()
		}
	}
	return n
}
