package uarch

// overridesFor returns the named per-variant special cases for a generation.
// These encode behaviours from the paper's case studies that the generic
// rules do not produce on their own; most case-study behaviours (AES µop
// split, ADC on Haswell, PBLENDVB on Nehalem, MOVDQ2Q, VHADDPD, BSWAP) fall
// out of the generation profiles in the rule-based assignment and need no
// entry here.
func overridesFor(a *Arch) map[string]*InstrPerf {
	ov := make(map[string]*InstrPerf)

	if a.gen >= Skylake {
		// SHLD/SHRD reg,reg,imm (Section 7.3.2): one µop, 3-cycle latency
		// for distinct registers, but only 1 cycle when the same register is
		// used for both operands. Operand layout: op1 (rw), op2 (r), imm,
		// FLAGS (rw).
		for _, m := range []string{"SHLD", "SHRD"} {
			for _, w := range []string{"R16", "R32", "R64"} {
				name := m + "_" + w + "_" + w + "_I8"
				full := &InstrPerf{Uops: []Uop{
					uop([]int{1}, 3, refs(Op(0), Op(1), Op(3)), refs(Op(0), Op(3))),
				}}
				full.SameRegOverride = &InstrPerf{Uops: []Uop{
					uop([]int{1}, 1, refs(Op(0), Op(1), Op(3)), refs(Op(0), Op(3))),
				}}
				ov[name] = full
			}
		}

		// MOVQ2DQ (Section 7.3.3): on Skylake the first µop uses port 0 and
		// the second µop can use ports 0, 1 and 5 (not just 1 and 5, as an
		// isolation-based measurement suggests). Operand layout: op1 XMM
		// (w), op2 MM (r).
		ov["MOVQ2DQ_XMM_MM"] = &InstrPerf{Uops: []Uop{
			uop([]int{0}, 1, refs(Op(1)), refs(Tmp(0))),
			uop([]int{0, 1, 5}, 1, refs(Tmp(0)), refs(Op(0))),
		}}
	}

	return ov
}
