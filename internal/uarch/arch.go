package uarch

import (
	"fmt"
	"strings"
	"sync"
	"unicode"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/xedspec"
)

// Generation identifies an Intel Core microarchitecture generation.
type Generation int

// The nine generations evaluated in the paper (Table 1).
const (
	Nehalem Generation = iota
	Westmere
	SandyBridge
	IvyBridge
	Haswell
	Broadwell
	Skylake
	KabyLake
	CoffeeLake
	numGenerations
)

var generationNames = [...]string{
	"Nehalem", "Westmere", "Sandy Bridge", "Ivy Bridge",
	"Haswell", "Broadwell", "Skylake", "Kaby Lake", "Coffee Lake",
}

// processorNames lists the processor models used in the paper's evaluation
// (Table 1), for reporting purposes.
var processorNames = [...]string{
	"Core i5-750", "Core i5-650", "Core i7-2600", "Core i5-3470",
	"Xeon E3-1225 v3", "Core i5-5200U", "Core i7-6500U", "Core i7-7700", "Core i7-8700K",
}

func (g Generation) String() string {
	if g >= 0 && int(g) < len(generationNames) {
		return generationNames[g]
	}
	return fmt.Sprintf("Generation(%d)", int(g))
}

// Valid reports whether g is one of the modelled generations. Values decoded
// from external input (URLs, configuration files) must be checked — or
// resolved through LookupGeneration — before being handed to Get.
func (g Generation) Valid() bool { return g >= 0 && g < numGenerations }

// GenerationNames returns the canonical generation names in chronological
// order.
func GenerationNames() []string {
	names := make([]string, numGenerations)
	for g := Generation(0); g < numGenerations; g++ {
		names[g] = g.String()
	}
	return names
}

// normalizeGenName folds a generation name for lookup: lower-cased with
// spaces, hyphens and underscores removed, so "Sandy Bridge", "sandy-bridge"
// and "SANDYBRIDGE" (e.g. a URL path segment) all resolve to the same
// generation.
func normalizeGenName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch r {
		case ' ', '-', '_':
			continue
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// LookupGeneration resolves a generation name to its Generation value. The
// match is case-insensitive and ignores spaces, hyphens and underscores, so
// URL-friendly spellings of the multi-word names work. An unknown name is an
// error (never a panic): it lists the known generations so e.g. an HTTP
// handler can return the message verbatim with a 400 status.
func LookupGeneration(name string) (Generation, error) {
	want := normalizeGenName(name)
	if want != "" {
		for g := Generation(0); g < numGenerations; g++ {
			if normalizeGenName(generationNames[g]) == want {
				return g, nil
			}
		}
	}
	return 0, fmt.Errorf("uarch: unknown generation %q (known: %s)",
		name, strings.Join(GenerationNames(), ", "))
}

// Lookup returns the Arch for a generation, rejecting out-of-range values
// with an error. It is the checked form of Get for Generation values that
// were not produced by this package. A named generation whose Arch failed to
// build (a constant added without a profileFor case) is also an error here,
// never a (nil, nil) pair.
func Lookup(gen Generation) (*Arch, error) {
	if !gen.Valid() {
		return nil, fmt.Errorf("uarch: unknown generation %v (known: %s)",
			gen, strings.Join(GenerationNames(), ", "))
	}
	a := Get(gen)
	if a == nil {
		return nil, fmt.Errorf("uarch: generation %v has no microarchitecture profile", gen)
	}
	return a, nil
}

// Processor returns the processor model the paper used for this generation.
func (g Generation) Processor() string {
	if g >= 0 && int(g) < len(processorNames) {
		return processorNames[g]
	}
	return "unknown"
}

// profile collects the per-generation port layout and pipeline parameters the
// rule-based µop assignment uses.
type profile struct {
	numPorts   int
	issueWidth int
	loadLat    int // L1 data-cache load-to-use latency

	// Port groups by functional-unit kind.
	intALU    []int
	intShift  []int
	intMul    []int
	intDiv    []int
	lea       []int
	branch    []int
	load      []int
	storeAddr []int
	storeData []int
	fpAdd     []int
	fpMul     []int
	fpDiv     []int
	vecALU    []int
	vecMul    []int
	vecLogic  []int
	shuffle   []int
	aes       []int
	slowInt   []int // microcoded helpers (CPUID, string ops, ...)

	// Capabilities.
	moveElimGPR   bool // register-to-register GPR moves can be eliminated
	moveElimVec   bool // SIMD register moves can be eliminated
	zeroIdiomElim bool // zero idioms are removed at rename (no port)
	sseAvxPenalty int  // cycles charged for an SSE<->AVX state transition

	// Typical latencies that differ between generations.
	fpAddLat  int
	fpMulLat  int
	fmaLat    int
	aesLat    int
	vecMulLat int
}

// Arch is the microarchitectural ground truth for one generation: the
// instruction set it supports and the performance description of every
// variant.
type Arch struct {
	gen        Generation
	prof       profile
	extensions map[isa.Extension]bool

	setOnce sync.Once
	set     *isa.Set

	// perfCache maps variant name → *InstrPerf. It is a sync.Map because
	// Perf sits on the simulator's rename hot path and is shared by every
	// concurrent worker stack of a generation: reads must not contend on a
	// lock. perfMu only serializes the builders on a cache miss.
	perfMu    sync.Mutex
	perfCache sync.Map
	overrides map[string]*InstrPerf
}

// Gen returns the generation this Arch describes.
func (a *Arch) Gen() Generation { return a.gen }

// Name returns the generation name.
func (a *Arch) Name() string { return a.gen.String() }

// NumPorts returns the number of execution ports (6 or 8).
func (a *Arch) NumPorts() int { return a.prof.numPorts }

// Ports returns the port numbers 0..NumPorts-1.
func (a *Arch) Ports() []int {
	out := make([]int, a.prof.numPorts)
	for i := range out {
		out[i] = i
	}
	return out
}

// IssueWidth returns the number of µops the front end can deliver per cycle.
func (a *Arch) IssueWidth() int { return a.prof.issueWidth }

// LoadLatency returns the L1 load-to-use latency in cycles.
func (a *Arch) LoadLatency() int { return a.prof.loadLat }

// SSEAVXPenalty returns the cycle penalty charged for a transition between
// legacy SSE code and AVX code with a dirty upper state (0 if the generation
// does not penalize transitions).
func (a *Arch) SSEAVXPenalty() int { return a.prof.sseAvxPenalty }

// MoveEliminationGPR reports whether general-purpose register moves can be
// eliminated at rename.
func (a *Arch) MoveEliminationGPR() bool { return a.prof.moveElimGPR }

// MoveEliminationVec reports whether SIMD register moves can be eliminated at
// rename.
func (a *Arch) MoveEliminationVec() bool { return a.prof.moveElimVec }

// ZeroIdiomElimination reports whether recognized zero idioms are removed at
// rename.
func (a *Arch) ZeroIdiomElimination() bool { return a.prof.zeroIdiomElim }

// LoadPorts returns the ports with a load unit.
func (a *Arch) LoadPorts() []int { return append([]int(nil), a.prof.load...) }

// StoreAddrPorts returns the ports with a store-address unit.
func (a *Arch) StoreAddrPorts() []int { return append([]int(nil), a.prof.storeAddr...) }

// StoreDataPorts returns the ports with a store-data unit.
func (a *Arch) StoreDataPorts() []int { return append([]int(nil), a.prof.storeData...) }

// Supports reports whether the generation implements the given ISA extension.
func (a *Arch) Supports(ext isa.Extension) bool { return a.extensions[ext] }

// InstrSet returns the instruction variants available on this generation
// (the full generated instruction set filtered by supported extensions).
func (a *Arch) InstrSet() *isa.Set {
	a.setOnce.Do(func() {
		full := xedspec.MustFullISA()
		a.set = full.Filter(func(in *isa.Instr) bool { return a.extensions[in.Extension] })
	})
	return a.set
}

// Perf returns the ground-truth performance description of the given
// instruction variant on this generation. The result is cached and must be
// treated as read-only. The cached path is lock-free.
func (a *Arch) Perf(in *isa.Instr) *InstrPerf {
	if p, ok := a.perfCache.Load(in.Name); ok {
		return p.(*InstrPerf)
	}
	a.perfMu.Lock()
	defer a.perfMu.Unlock()
	if p, ok := a.perfCache.Load(in.Name); ok {
		return p.(*InstrPerf)
	}
	var p *InstrPerf
	if ov, ok := a.overrides[in.Name]; ok {
		p = ov
	} else {
		p = a.buildPerf(in)
	}
	a.perfCache.Store(in.Name, p)
	return p
}

// PerfByName is a convenience wrapper around Perf that looks the variant up
// in the generation's instruction set.
func (a *Arch) PerfByName(name string) (*InstrPerf, error) {
	in := a.InstrSet().Lookup(name)
	if in == nil {
		return nil, fmt.Errorf("uarch: %s: no instruction variant %q", a.Name(), name)
	}
	return a.Perf(in), nil
}

var (
	archsOnce sync.Once
	archs     map[Generation]*Arch
)

// Get returns the Arch for the given generation.
func Get(gen Generation) *Arch {
	archsOnce.Do(buildArchs)
	return archs[gen]
}

// All returns all modelled generations in chronological order.
func All() []*Arch {
	archsOnce.Do(buildArchs)
	out := make([]*Arch, 0, int(numGenerations))
	for g := Generation(0); g < numGenerations; g++ {
		out = append(out, archs[g])
	}
	return out
}

// ByName returns the Arch whose generation name matches name, under
// LookupGeneration's flexible matching (case-insensitive, separators
// ignored), e.g. "Skylake", "Sandy Bridge" or "sandy-bridge".
func ByName(name string) (*Arch, error) {
	g, err := LookupGeneration(name)
	if err != nil {
		return nil, err
	}
	return Lookup(g)
}

func buildArchs() {
	archs = make(map[Generation]*Arch, int(numGenerations))
	for g := Generation(0); g < numGenerations; g++ {
		prof, ok := profileFor(g)
		if !ok {
			// Unreachable for the modelled range; skipping keeps an
			// unmodelled constant a lookup miss instead of a crash.
			continue
		}
		a := &Arch{
			gen:        g,
			prof:       prof,
			extensions: extensionsFor(g),
		}
		a.overrides = overridesFor(a)
		archs[g] = a
	}
}
