package uarch

import "uopsinfo/internal/isa"

// profileFor returns the port layout and pipeline parameters of a generation.
// The port groups follow the publicly documented execution-port layouts of
// the Intel Core generations: six ports on Nehalem through Ivy Bridge, eight
// ports on Haswell and later (Figure 1 of the paper shows the six-port
// variant). ok == false reports an unmodelled generation; callers fed
// request-derived input (the HTTP service, anything resolving a Generation
// from a name) must see an error path here, never a panic.
func profileFor(g Generation) (profile, bool) {
	switch g {
	case Nehalem, Westmere:
		return profile{
			numPorts:   6,
			issueWidth: 4,
			loadLat:    4,
			intALU:     []int{0, 1, 5},
			intShift:   []int{0, 5},
			intMul:     []int{1},
			intDiv:     []int{0},
			lea:        []int{0, 1},
			branch:     []int{5},
			load:       []int{2},
			storeAddr:  []int{3},
			storeData:  []int{4},
			fpAdd:      []int{1},
			fpMul:      []int{0},
			fpDiv:      []int{0},
			vecALU:     []int{0, 1, 5},
			vecMul:     []int{0},
			vecLogic:   []int{0, 1, 5},
			shuffle:    []int{0, 5},
			aes:        []int{0, 1, 5},
			slowInt:    []int{0, 1, 5},

			moveElimGPR:   false,
			moveElimVec:   false,
			zeroIdiomElim: false,
			sseAvxPenalty: 0,

			fpAddLat:  3,
			fpMulLat:  4,
			fmaLat:    0,
			aesLat:    6,
			vecMulLat: 3,
		}, true
	case SandyBridge, IvyBridge:
		p := profile{
			numPorts:   6,
			issueWidth: 4,
			loadLat:    4,
			intALU:     []int{0, 1, 5},
			intShift:   []int{0, 5},
			intMul:     []int{1},
			intDiv:     []int{0},
			lea:        []int{0, 1},
			branch:     []int{5},
			load:       []int{2, 3},
			storeAddr:  []int{2, 3},
			storeData:  []int{4},
			fpAdd:      []int{1},
			fpMul:      []int{0},
			fpDiv:      []int{0},
			vecALU:     []int{1, 5},
			vecMul:     []int{0},
			vecLogic:   []int{0, 1, 5},
			shuffle:    []int{5},
			aes:        []int{0},
			slowInt:    []int{0, 1, 5},

			moveElimGPR:   false,
			moveElimVec:   false,
			zeroIdiomElim: true,
			sseAvxPenalty: 70,

			fpAddLat:  3,
			fpMulLat:  5,
			fmaLat:    0,
			aesLat:    8,
			vecMulLat: 3,
		}
		if g == IvyBridge {
			p.moveElimGPR = true
			p.moveElimVec = true
		}
		return p, true
	case Haswell, Broadwell:
		return profile{
			numPorts:   8,
			issueWidth: 4,
			loadLat:    4,
			intALU:     []int{0, 1, 5, 6},
			intShift:   []int{0, 6},
			intMul:     []int{1},
			intDiv:     []int{0},
			lea:        []int{1, 5},
			branch:     []int{6},
			load:       []int{2, 3},
			storeAddr:  []int{2, 3, 7},
			storeData:  []int{4},
			fpAdd:      []int{1},
			fpMul:      []int{0, 1},
			fpDiv:      []int{0},
			vecALU:     []int{1, 5},
			vecMul:     []int{0},
			vecLogic:   []int{0, 1, 5},
			shuffle:    []int{5},
			aes:        []int{5},
			slowInt:    []int{0, 1, 5, 6},

			moveElimGPR:   true,
			moveElimVec:   true,
			zeroIdiomElim: true,
			sseAvxPenalty: 70,

			fpAddLat:  3,
			fpMulLat:  5,
			fmaLat:    5,
			aesLat:    7,
			vecMulLat: 5,
		}, true
	case Skylake, KabyLake, CoffeeLake:
		return profile{
			numPorts:   8,
			issueWidth: 4,
			loadLat:    4,
			intALU:     []int{0, 1, 5, 6},
			intShift:   []int{0, 6},
			intMul:     []int{1},
			intDiv:     []int{0},
			lea:        []int{1, 5},
			branch:     []int{6},
			load:       []int{2, 3},
			storeAddr:  []int{2, 3, 7},
			storeData:  []int{4},
			fpAdd:      []int{0, 1},
			fpMul:      []int{0, 1},
			fpDiv:      []int{0},
			vecALU:     []int{0, 1, 5},
			vecMul:     []int{0, 1},
			vecLogic:   []int{0, 1, 5},
			shuffle:    []int{5},
			aes:        []int{0},
			slowInt:    []int{0, 1, 5, 6},

			moveElimGPR:   true,
			moveElimVec:   true,
			zeroIdiomElim: true,
			sseAvxPenalty: 0,

			fpAddLat:  4,
			fpMulLat:  4,
			fmaLat:    4,
			aesLat:    4,
			vecMulLat: 5,
		}, true
	}
	return profile{}, false
}

// extensionsFor returns the ISA extensions implemented by a generation. The
// growing extension list is what makes the per-generation instruction-variant
// counts in Table 1 increase from Nehalem to Coffee Lake.
func extensionsFor(g Generation) map[isa.Extension]bool {
	exts := map[isa.Extension]bool{
		isa.ExtBase:   true,
		isa.ExtMMX:    true,
		isa.ExtSSE:    true,
		isa.ExtSSE2:   true,
		isa.ExtSSE3:   true,
		isa.ExtSSSE3:  true,
		isa.ExtSSE41:  true,
		isa.ExtSSE42:  true,
		isa.ExtSystem: true,
	}
	add := func(names ...isa.Extension) {
		for _, n := range names {
			exts[n] = true
		}
	}
	if g >= Westmere {
		add(isa.ExtAES, isa.ExtCLMUL)
	}
	if g >= SandyBridge {
		add(isa.ExtAVX)
	}
	if g >= IvyBridge {
		add(isa.ExtF16C, isa.Extension("RDRAND"))
	}
	if g >= Haswell {
		add(isa.ExtAVX2, isa.ExtBMI, isa.ExtFMA, isa.Extension("MOVBE"))
	}
	if g >= Broadwell {
		add(isa.Extension("ADX"), isa.Extension("RDSEED"))
	}
	if g >= Skylake {
		add(isa.Extension("CLFLUSHOPT"))
	}
	return exts
}
