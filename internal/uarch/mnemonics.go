package uarch

import "strings"

// Mnemonic classification tables used by the rule-based assignment. The
// classifiers receive the mnemonic with a leading "V" (AVX form) already
// stripped, except where noted.

var shuffleMnemonics = map[string]bool{
	"PSHUFD": true, "PSHUFLW": true, "PSHUFHW": true,
	"PUNPCKLBW": true, "PUNPCKLWD": true, "PUNPCKLDQ": true, "PUNPCKLQDQ": true,
	"PUNPCKHBW": true, "PUNPCKHWD": true, "PUNPCKHDQ": true, "PUNPCKHQDQ": true,
	"PACKSSWB": true, "PACKSSDW": true, "PACKUSWB": true, "PACKUSDW": true,
	"PALIGNR": true, "SHUFPS": true, "SHUFPD": true,
	"UNPCKLPS": true, "UNPCKHPS": true, "UNPCKLPD": true, "UNPCKHPD": true,
	"INSERTPS": true, "PSLLDQ": true, "PSRLDQ": true,
	"PMOVSXBW": true, "PMOVSXBD": true, "PMOVSXBQ": true,
	"PMOVSXWD": true, "PMOVSXWQ": true, "PMOVSXDQ": true,
	"PMOVZXBW": true, "PMOVZXBD": true, "PMOVZXBQ": true,
	"PMOVZXWD": true, "PMOVZXWQ": true, "PMOVZXDQ": true,
	"PERMILPS": true, "PERMILPD": true, "PERMD": true, "PERMQ": true,
	"PERMPS": true, "PERMPD": true, "PERM2F128": true, "PERM2I128": true,
	"BROADCASTSS": true, "BROADCASTSD": true, "BROADCASTF128": true,
	"PBROADCASTB": true, "PBROADCASTW": true, "PBROADCASTD": true, "PBROADCASTQ": true,
	"INSERTF128": true, "EXTRACTF128": true, "INSERTI128": true, "EXTRACTI128": true,
}

var vecLogicMnemonics = map[string]bool{
	"PAND": true, "PANDN": true, "POR": true, "PXOR": true,
	"ANDPS": true, "ANDNPS": true, "ORPS": true, "XORPS": true,
	"ANDPD": true, "ANDNPD": true, "ORPD": true, "XORPD": true,
}

var vecALUMnemonics = map[string]bool{
	"PADDB": true, "PADDW": true, "PADDD": true, "PADDQ": true,
	"PSUBB": true, "PSUBW": true, "PSUBD": true, "PSUBQ": true,
	"PADDSB": true, "PADDSW": true, "PADDUSB": true, "PADDUSW": true,
	"PSUBSB": true, "PSUBSW": true, "PSUBUSB": true, "PSUBUSW": true,
	"PAVGB": true, "PAVGW": true,
	"PMINUB": true, "PMAXUB": true, "PMINSW": true, "PMAXSW": true,
	"PMINSB": true, "PMAXSB": true, "PMINUW": true, "PMAXUW": true,
	"PMINSD": true, "PMAXSD": true, "PMINUD": true, "PMAXUD": true,
	"PCMPEQB": true, "PCMPEQW": true, "PCMPEQD": true, "PCMPEQQ": true,
	"PCMPGTB": true, "PCMPGTW": true, "PCMPGTD": true, "PCMPGTQ": true,
	"PABSB": true, "PABSW": true, "PABSD": true,
	"PSIGNB": true, "PSIGNW": true, "PSIGND": true,
}

var vecMulMnemonics = map[string]bool{
	"PMULLW": true, "PMULHW": true, "PMULHUW": true, "PMULUDQ": true,
	"PMULLD": true, "PMULDQ": true, "PMADDWD": true, "PMADDUBSW": true,
	"PMULHRSW": true, "PSADBW": true,
}

var vecShiftMnemonics = map[string]bool{
	"PSLLW": true, "PSLLD": true, "PSLLQ": true,
	"PSRLW": true, "PSRLD": true, "PSRLQ": true,
	"PSRAW": true, "PSRAD": true,
	"PSLLVD": true, "PSLLVQ": true, "PSRLVD": true, "PSRLVQ": true, "PSRAVD": true,
}

var horizontalMnemonics = map[string]bool{
	"HADDPS": true, "HADDPD": true, "HSUBPS": true, "HSUBPD": true,
	"PHADDW": true, "PHADDD": true, "PHADDSW": true,
	"PHSUBW": true, "PHSUBD": true, "PHSUBSW": true,
}

var fpAddMnemonics = map[string]bool{
	"ADDPS": true, "ADDPD": true, "ADDSS": true, "ADDSD": true,
	"SUBPS": true, "SUBPD": true, "SUBSS": true, "SUBSD": true,
	"ADDSUBPS": true, "ADDSUBPD": true,
	"MINPS": true, "MINPD": true, "MINSS": true, "MINSD": true,
	"MAXPS": true, "MAXPD": true, "MAXSS": true, "MAXSD": true,
	"CMPPS": true, "CMPPD": true, "CMPSS": true, "CMPSD": true,
	"COMISS": true, "COMISD": true, "UCOMISS": true, "UCOMISD": true,
	"ROUNDPS": true, "ROUNDPD": true, "ROUNDSS": true, "ROUNDSD": true,
}

var fpMulMnemonics = map[string]bool{
	"MULPS": true, "MULPD": true, "MULSS": true, "MULSD": true,
}

var fpDivMnemonics = map[string]bool{
	"DIVPS": true, "DIVPD": true, "DIVSS": true, "DIVSD": true,
	"SQRTPS": true, "SQRTPD": true, "SQRTSS": true, "SQRTSD": true,
}

var convertMnemonics = map[string]bool{
	"CVTPS2PD": true, "CVTPD2PS": true, "CVTSS2SD": true, "CVTSD2SS": true,
	"CVTDQ2PS": true, "CVTPS2DQ": true, "CVTTPS2DQ": true,
	"CVTDQ2PD": true, "CVTPD2DQ": true,
	"CVTSI2SS": true, "CVTSI2SD": true, "CVTSS2SI": true, "CVTSD2SI": true,
	"CVTTSS2SI": true, "CVTTSD2SI": true,
}

var blendMnemonics = map[string]bool{
	"PBLENDW": true, "PBLENDVB": true,
	"BLENDPS": true, "BLENDPD": true, "BLENDVPS": true, "BLENDVPD": true,
}

var extractInsertMnemonics = map[string]bool{
	"PEXTRB": true, "PEXTRW": true, "PEXTRD": true, "PEXTRQ": true,
	"PINSRB": true, "PINSRW": true, "PINSRD": true, "PINSRQ": true,
	"EXTRACTPS": true,
}

var gatherMnemonics = map[string]bool{
	"PGATHERDD": true, "GATHERDPS": true,
}

func isShuffleMnemonic(m string) bool       { return shuffleMnemonics[m] }
func isVecLogicMnemonic(m string) bool      { return vecLogicMnemonics[m] }
func isVecALUMnemonic(m string) bool        { return vecALUMnemonics[m] }
func isVecMulMnemonic(m string) bool        { return vecMulMnemonics[m] }
func isVecShiftMnemonic(m string) bool      { return vecShiftMnemonics[m] }
func isHorizontalMnemonic(m string) bool    { return horizontalMnemonics[m] }
func isFPAddMnemonic(m string) bool         { return fpAddMnemonics[m] }
func isFPMulMnemonic(m string) bool         { return fpMulMnemonics[m] }
func isFPDivMnemonic(m string) bool         { return fpDivMnemonics[m] }
func isConvertMnemonic(m string) bool       { return convertMnemonics[m] }
func isBlendMnemonic(m string) bool         { return blendMnemonics[m] }
func isExtractInsertMnemonic(m string) bool { return extractInsertMnemonics[m] }
func isGatherMnemonic(m string) bool        { return gatherMnemonics[m] }

// isFMAMnemonic operates on the full mnemonic (VFMADD213PS and friends).
func isFMAMnemonic(m string) bool {
	return strings.HasPrefix(m, "VFMADD") || strings.HasPrefix(m, "VFMSUB") ||
		strings.HasPrefix(m, "VFNMADD") || strings.HasPrefix(m, "VFNMSUB")
}
