package uarch

import (
	"strings"
	"testing"
	"testing/quick"

	"uopsinfo/internal/isa"
)

func TestAllGenerationsPresent(t *testing.T) {
	archs := All()
	if len(archs) != 9 {
		t.Fatalf("expected 9 generations, got %d", len(archs))
	}
	names := map[string]bool{}
	for _, a := range archs {
		names[a.Name()] = true
	}
	for _, want := range []string{"Nehalem", "Westmere", "Sandy Bridge", "Ivy Bridge",
		"Haswell", "Broadwell", "Skylake", "Kaby Lake", "Coffee Lake"} {
		if !names[want] {
			t.Errorf("generation %s missing", want)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("Sandy Bridge")
	if err != nil || a.Gen() != SandyBridge {
		t.Fatalf("ByName(Sandy Bridge) = %v, %v", a, err)
	}
	if _, err := ByName("Pentium 4"); err == nil {
		t.Error("ByName accepted an unknown generation")
	}
}

func TestLookupGeneration(t *testing.T) {
	// URL-friendly spellings of the multi-word names must resolve: the HTTP
	// service feeds raw path segments through here.
	for _, name := range []string{"Sandy Bridge", "sandy-bridge", "SANDYBRIDGE", "sandy_bridge"} {
		g, err := LookupGeneration(name)
		if err != nil || g != SandyBridge {
			t.Errorf("LookupGeneration(%q) = %v, %v, want SandyBridge", name, g, err)
		}
	}
	for _, name := range []string{"", "Pentium 4", "skylake2", "-"} {
		if g, err := LookupGeneration(name); err == nil {
			t.Errorf("LookupGeneration(%q) = %v, want error", name, g)
		}
	}
	if _, err := LookupGeneration("Zen"); err == nil || !strings.Contains(err.Error(), "Skylake") {
		t.Errorf("unknown-generation error should list the known names, got %v", err)
	}
}

func TestLookupRejectsInvalidGeneration(t *testing.T) {
	for _, g := range []Generation{-1, numGenerations, 1000} {
		if a, err := Lookup(g); err == nil {
			t.Errorf("Lookup(%d) = %v, want error", int(g), a)
		}
		if g.Valid() {
			t.Errorf("Generation(%d).Valid() = true", int(g))
		}
	}
	for g := Generation(0); g < numGenerations; g++ {
		a, err := Lookup(g)
		if err != nil || a == nil || a.Gen() != g {
			t.Errorf("Lookup(%v) = %v, %v", g, a, err)
		}
	}
}

func TestPortCounts(t *testing.T) {
	for _, a := range All() {
		want := 6
		if a.Gen() >= Haswell {
			want = 8
		}
		if a.NumPorts() != want {
			t.Errorf("%s: %d ports, want %d", a.Name(), a.NumPorts(), want)
		}
		if len(a.Ports()) != want {
			t.Errorf("%s: Ports() has %d entries, want %d", a.Name(), len(a.Ports()), want)
		}
		if a.IssueWidth() != 4 {
			t.Errorf("%s: issue width %d, want 4", a.Name(), a.IssueWidth())
		}
		if a.LoadLatency() < 3 || a.LoadLatency() > 6 {
			t.Errorf("%s: implausible load latency %d", a.Name(), a.LoadLatency())
		}
	}
}

func TestInstructionSetGrowsAcrossGenerations(t *testing.T) {
	prev := 0
	for _, a := range All() {
		n := a.InstrSet().Len()
		if n < prev {
			t.Errorf("%s has fewer variants (%d) than its predecessor (%d)", a.Name(), n, prev)
		}
		prev = n
	}
	nhm := Get(Nehalem).InstrSet().Len()
	skl := Get(Skylake).InstrSet().Len()
	if nhm < 800 || skl < 1800 {
		t.Errorf("variant counts too small: Nehalem %d, Skylake %d", nhm, skl)
	}
	if Get(Skylake).InstrSet().Len() != Get(CoffeeLake).InstrSet().Len() {
		t.Error("Skylake, Kaby Lake and Coffee Lake should expose the same instruction set")
	}
}

func TestExtensionSupport(t *testing.T) {
	if Get(Nehalem).Supports(isa.ExtAES) {
		t.Error("Nehalem should not support AES")
	}
	if !Get(Westmere).Supports(isa.ExtAES) {
		t.Error("Westmere should support AES")
	}
	if Get(IvyBridge).Supports(isa.ExtAVX2) {
		t.Error("Ivy Bridge should not support AVX2")
	}
	if !Get(Haswell).Supports(isa.ExtAVX2) || !Get(Haswell).Supports(isa.ExtFMA) {
		t.Error("Haswell should support AVX2 and FMA")
	}
	if !Get(SandyBridge).Supports(isa.ExtAVX) {
		t.Error("Sandy Bridge should support AVX")
	}
}

func TestPerfIsDefinedAndValidForAllVariants(t *testing.T) {
	for _, a := range All() {
		numPorts := a.NumPorts()
		for _, in := range a.InstrSet().Instrs() {
			perf := a.Perf(in)
			if perf == nil {
				t.Fatalf("%s: no perf for %s", a.Name(), in.Name)
			}
			if len(perf.Uops) == 0 {
				t.Errorf("%s: %s has no µops", a.Name(), in.Name)
				continue
			}
			for ui := range perf.Uops {
				u := &perf.Uops[ui]
				for _, p := range u.Ports {
					if p < 0 || p >= numPorts {
						t.Errorf("%s: %s µop %d uses invalid port %d", a.Name(), in.Name, ui, p)
					}
				}
				if u.Latency < 0 || u.Latency > 200 {
					t.Errorf("%s: %s µop %d has implausible latency %d", a.Name(), in.Name, ui, u.Latency)
				}
				if len(u.WriteLat) > 0 && len(u.WriteLat) != len(u.Writes) {
					t.Errorf("%s: %s µop %d WriteLat length mismatch", a.Name(), in.Name, ui)
				}
			}
			if in.UsesDivider && !perf.Divider {
				t.Errorf("%s: %s is a divider instruction but its perf is not marked as such", a.Name(), in.Name)
			}
			if perf.Divider && perf.LatencyLowValues <= 0 {
				t.Errorf("%s: %s divider perf has no fast-value latency", a.Name(), in.Name)
			}
		}
	}
}

func TestPerfCaching(t *testing.T) {
	a := Get(Skylake)
	in := a.InstrSet().Lookup("ADD_R64_R64")
	if a.Perf(in) != a.Perf(in) {
		t.Error("Perf should return the cached pointer on repeated calls")
	}
}

func TestCaseStudyGroundTruths(t *testing.T) {
	// AESDEC: 3 µops on Westmere, 2 on Sandy Bridge/Ivy Bridge, 1 from
	// Haswell on (Section 7.3.1).
	for gen, want := range map[Generation]int{Westmere: 3, SandyBridge: 2, IvyBridge: 2, Haswell: 1, Skylake: 1} {
		a := Get(gen)
		perf, err := a.PerfByName("AESDEC_XMM_XMM")
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if perf.NumUops() != want {
			t.Errorf("%s: AESDEC has %d µops, want %d", gen, perf.NumUops(), want)
		}
	}
	// ADC on Haswell: 1*p0156 + 1*p06 (Section 5.1).
	adc, err := Get(Haswell).PerfByName("ADC_R64_R64")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPortUsage(adc.PortUsage()); got != "1*p06+1*p0156" {
		t.Errorf("Haswell ADC port usage = %s, want 1*p06+1*p0156", got)
	}
	// PBLENDVB on Nehalem: 2*p05 (Section 5.1).
	pb, err := Get(Nehalem).PerfByName("PBLENDVB_XMM_XMM")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPortUsage(pb.PortUsage()); got != "2*p05" {
		t.Errorf("Nehalem PBLENDVB port usage = %s, want 2*p05", got)
	}
	// MOVQ2DQ on Skylake: 1*p0 + 1*p015 (Section 7.3.3).
	mq, err := Get(Skylake).PerfByName("MOVQ2DQ_XMM_MM")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPortUsage(mq.PortUsage()); got != "1*p0+1*p015" {
		t.Errorf("Skylake MOVQ2DQ port usage = %s, want 1*p0+1*p015", got)
	}
	// MOVDQ2Q on Haswell: 1*p5 + 1*p015 (Section 7.3.4).
	md, err := Get(Haswell).PerfByName("MOVDQ2Q_MM_XMM")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatPortUsage(md.PortUsage()); got != "1*p5+1*p015" {
		t.Errorf("Haswell MOVDQ2Q port usage = %s, want 1*p5+1*p015", got)
	}
	// BSWAP on Skylake: 1 µop for the 32-bit variant, 2 for the 64-bit one
	// (Section 7.2).
	b32, _ := Get(Skylake).PerfByName("BSWAP_R32")
	b64, _ := Get(Skylake).PerfByName("BSWAP_R64")
	if b32.NumUops() != 1 || b64.NumUops() != 2 {
		t.Errorf("Skylake BSWAP µops = %d/%d, want 1/2", b32.NumUops(), b64.NumUops())
	}
	// SHLD on Skylake has a same-register override with latency 1.
	shld, _ := Get(Skylake).PerfByName("SHLD_R64_R64_I8")
	if shld.SameRegOverride == nil {
		t.Error("Skylake SHLD should have a same-register override")
	}
	// SAHF on Haswell is a single µop on ports 0 and 6.
	sahf, _ := Get(Haswell).PerfByName("SAHF")
	if got := FormatPortUsage(sahf.PortUsage()); got != "1*p06" {
		t.Errorf("Haswell SAHF port usage = %s, want 1*p06", got)
	}
}

func TestPortComboKeyAndFormat(t *testing.T) {
	if got := PortComboKey([]int{5, 0, 1}); got != "015" {
		t.Errorf("PortComboKey = %q, want 015", got)
	}
	if got := PortComboKey([]int{7}); got != "7" {
		t.Errorf("PortComboKey = %q, want 7", got)
	}
	usage := map[string]int{"015": 3, "23": 1}
	if got := FormatPortUsage(usage); got != "1*p23+3*p015" {
		t.Errorf("FormatPortUsage = %q, want 1*p23+3*p015", got)
	}
	if got := FormatPortUsage(nil); got != "0" {
		t.Errorf("FormatPortUsage(nil) = %q, want 0", got)
	}
}

func TestMaxLatencyBounds(t *testing.T) {
	a := Get(Skylake)
	perf, err := a.PerfByName("AESDEC_XMM_XMM")
	if err != nil {
		t.Fatal(err)
	}
	if perf.MaxLatency() < 4 {
		t.Errorf("AESDEC MaxLatency = %d, want >= 4", perf.MaxLatency())
	}
	add, _ := a.PerfByName("ADD_R64_R64")
	if add.MaxLatency() < 1 || add.MaxLatency() > 2 {
		t.Errorf("ADD MaxLatency = %d, want 1", add.MaxLatency())
	}
}

// Property: PortComboKey is order-insensitive and duplicates do not matter.
func TestPortComboKeyProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var ports, reversed []int
		for _, p := range raw {
			ports = append(ports, int(p%8))
		}
		for i := len(ports) - 1; i >= 0; i-- {
			reversed = append(reversed, ports[i])
		}
		return PortComboKey(ports) == PortComboKey(reversed) &&
			PortComboKey(ports) == PortComboKey(append(ports, ports...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every µop write reference of every Skylake instruction refers to
// a written operand or an internal temporary, and every read reference to a
// readable operand or temporary.
func TestUopReferencesProperty(t *testing.T) {
	a := Get(Skylake)
	instrs := a.InstrSet().Instrs()
	f := func(idx uint16) bool {
		in := instrs[int(idx)%len(instrs)]
		perf := a.Perf(in)
		for ui := range perf.Uops {
			u := &perf.Uops[ui]
			for _, r := range u.Reads {
				if r.Kind == ValOperand && (r.Index < 0 || r.Index >= len(in.Operands)) {
					return false
				}
			}
			for _, w := range u.Writes {
				if w.Kind == ValOperand && (w.Index < 0 || w.Index >= len(in.Operands)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPortSetsAscending pins that every µop's allowed-port list — across all
// generations, all variants, and all same-register overrides — is strictly
// ascending. The simulator's dispatch stage represents port sets as bitmasks
// and breaks load ties toward the lowest-numbered port, which reproduces the
// historical first-listed-port-wins rule only because the lists are sorted;
// an unsorted list added here would silently change simulated port counters.
func TestPortSetsAscending(t *testing.T) {
	t.Parallel()
	checkPerf := func(name string, p *InstrPerf) {
		for ui := range p.Uops {
			ports := p.Uops[ui].Ports
			for i := 1; i < len(ports); i++ {
				if ports[i] <= ports[i-1] {
					t.Errorf("%s µop %d: port list %v is not strictly ascending", name, ui, ports)
				}
			}
		}
	}
	for _, a := range All() {
		for _, in := range a.InstrSet().Instrs() {
			perf := a.Perf(in)
			checkPerf(a.Name()+"/"+in.Name, perf)
			if perf.SameRegOverride != nil {
				checkPerf(a.Name()+"/"+in.Name+"/same-reg", perf.SameRegOverride)
			}
		}
	}
}
