// Package uarch models the microarchitectural ground truth of Intel Core
// processor generations: the execution ports, the decomposition of every
// instruction variant into µops, the ports each µop can use, and the
// latencies between instruction operands.
//
// On real hardware this information is what the paper's tool infers by
// measurement. In this reproduction the same information parameterizes the
// cycle-level pipeline simulator (package pipesim) that stands in for the
// hardware; the inference algorithms (package core) then have to recover it
// through measurements, exactly as they would on silicon. The per-generation
// tables encode the behaviours the paper reports (AESDEC µop split on Sandy
// Bridge, the SHLD same-register fast path on Skylake, MOVQ2DQ/MOVDQ2Q port
// usage, ADC on Haswell, PBLENDVB on Nehalem, zero idioms, ...).
//
//uopslint:deterministic
package uarch

import (
	"fmt"
	"sort"
)

// ValKind distinguishes the two kinds of values a µop can read or write.
type ValKind int

// Value kinds.
const (
	// ValOperand refers to an instruction operand by its index in
	// isa.Instr.Operands.
	ValOperand ValKind = iota
	// ValTemp refers to an internal temporary value produced by one µop of
	// the instruction and consumed by another (not architecturally visible).
	ValTemp
)

// ValRef identifies a value read or written by a µop: either an instruction
// operand (by index) or an internal temporary (by id, scoped to the
// instruction).
type ValRef struct {
	Kind  ValKind
	Index int
}

// Op references operand index i of the instruction.
func Op(i int) ValRef { return ValRef{Kind: ValOperand, Index: i} }

// Tmp references internal temporary t of the instruction.
func Tmp(t int) ValRef { return ValRef{Kind: ValTemp, Index: t} }

// String renders the reference for debugging.
func (v ValRef) String() string {
	if v.Kind == ValOperand {
		return fmt.Sprintf("op[%d]", v.Index)
	}
	return fmt.Sprintf("tmp[%d]", v.Index)
}

// Uop describes one micro-operation of an instruction variant.
type Uop struct {
	// Ports lists the execution ports whose functional units can execute
	// this µop. An empty list means the µop does not use an execution port
	// (NOPs, eliminated moves, zero idioms handled at rename).
	Ports []int

	// Latency is the number of cycles from dispatch until the µop's results
	// are ready. Individual written values can override it via WriteLat.
	Latency int

	// Reads and Writes list the values the µop consumes and produces.
	Reads  []ValRef
	Writes []ValRef

	// WriteLat optionally overrides Latency per written value; it is
	// parallel to Writes, with 0 meaning "use Latency".
	WriteLat []int

	// Load marks a load µop: the simulator adds the microarchitecture's L1
	// load latency to Latency.
	Load bool

	// StoreAddr and StoreData mark the two halves of a store.
	StoreAddr bool
	StoreData bool

	// Divider marks µops that occupy the non-fully-pipelined divider unit.
	// DivOccupancy is the number of cycles the divider stays busy.
	Divider      bool
	DivOccupancy int
}

// UsesPort reports whether the µop may execute on port p.
func (u *Uop) UsesPort(p int) bool {
	for _, q := range u.Ports {
		if q == p {
			return true
		}
	}
	return false
}

// LatencyTo returns the latency from dispatch to the i-th written value.
func (u *Uop) LatencyTo(i int) int {
	if i < len(u.WriteLat) && u.WriteLat[i] != 0 {
		return u.WriteLat[i]
	}
	return u.Latency
}

// InstrPerf is the ground-truth performance description of one instruction
// variant on one microarchitecture generation.
type InstrPerf struct {
	// Uops is the µop decomposition. µops may communicate through
	// temporaries, which is how per-operand-pair latency differences arise.
	Uops []Uop

	// Divider indicates that the latency and throughput depend on operand
	// values (division-like instructions, Section 5.2.5). LatencyLowValues
	// and DivOccupancyLowValues describe the behaviour for "fast" operand
	// values; the Uops themselves describe the "slow" (worst-case) values.
	Divider                bool
	LatencyLowValues       int
	DivOccupancyLowValues  int
	DivOccupancyHighValues int

	// ZeroIdiom marks variants that are dependency-breaking when both
	// explicit register operands name the same register. ZeroIdiomElim
	// additionally removes the µop at rename (no execution port needed).
	ZeroIdiom     bool
	ZeroIdiomElim bool

	// MoveElim marks register-to-register moves that the rename stage can
	// eliminate (move elimination, Section 3.1).
	MoveElim bool

	// SameRegOverride, when non-nil, replaces the performance description
	// when all explicit register operands use the same register (e.g. SHLD
	// on Skylake, Section 7.3.2).
	SameRegOverride *InstrPerf
}

// NumUops returns the number of µops of the variant.
func (p *InstrPerf) NumUops() int { return len(p.Uops) }

// MaxLatency returns the maximum µop latency in the decomposition (a lower
// bound on the maximum operand-pair latency, used to scale blocking-instruction
// repetition counts).
func (p *InstrPerf) MaxLatency() int {
	max := 1
	for i := range p.Uops {
		u := &p.Uops[i]
		l := u.Latency
		for j := range u.Writes {
			if lt := u.LatencyTo(j); lt > l {
				l = lt
			}
		}
		if u.Load {
			l += 5 // conservative load-latency allowance
		}
		if l > max {
			max = l
		}
	}
	// Chain the µop latencies: a conservative upper bound on the critical
	// path is the sum over µops.
	sum := 0
	for i := range p.Uops {
		sum += p.Uops[i].Latency
	}
	if sum > max {
		max = sum
	}
	return max
}

// PortUsage aggregates the µop decomposition into the paper's port-usage
// notation: a map from port combination (as a canonical string such as
// "015") to the number of µops bound to exactly that combination. µops
// without an execution port are not included.
func (p *InstrPerf) PortUsage() map[string]int {
	usage := make(map[string]int)
	for i := range p.Uops {
		u := &p.Uops[i]
		if len(u.Ports) == 0 {
			continue
		}
		usage[PortComboKey(u.Ports)]++
	}
	return usage
}

// PortComboKey renders a port set as a canonical string key, e.g. [5 0 1]
// becomes "015".
func PortComboKey(ports []int) string {
	present := make(map[int]bool, len(ports))
	maxPort := 0
	for _, p := range ports {
		present[p] = true
		if p > maxPort {
			maxPort = p
		}
	}
	key := ""
	for p := 0; p <= maxPort; p++ {
		if present[p] {
			key += fmt.Sprintf("%d", p)
		}
	}
	return key
}

// FormatPortUsage renders a port-usage map in the paper's notation, e.g.
// "1*p0+1*p015".
func FormatPortUsage(usage map[string]int) string {
	if len(usage) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(usage))
	for k := range usage {
		keys = append(keys, k)
	}
	// Sort by combination size, then lexicographically, mirroring the
	// paper's presentation (smaller combinations first).
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += "+"
		}
		out += fmt.Sprintf("%d*p%s", usage[k], k)
	}
	return out
}

// Convenience builders used by the assignment rules -------------------------

// uop builds a standard single-latency µop.
func uop(ports []int, lat int, reads []ValRef, writes []ValRef) Uop {
	return Uop{Ports: ports, Latency: lat, Reads: reads, Writes: writes}
}

// loadUop builds a load µop reading the address register operand (addrOp) and
// the memory operand (memOp), producing the temporary dst.
func loadUop(ports []int, memOp int, dst ValRef) Uop {
	return Uop{Ports: ports, Latency: 0, Load: true, Reads: []ValRef{Op(memOp)}, Writes: []ValRef{dst}}
}

// storeAddrUop builds the store-address µop for memory operand memOp.
func storeAddrUop(ports []int, memOp int) Uop {
	return Uop{Ports: ports, Latency: 1, StoreAddr: true, Reads: []ValRef{Op(memOp)}}
}

// storeDataUop builds the store-data µop writing the value src to memory
// operand memOp.
func storeDataUop(ports []int, memOp int, src ...ValRef) Uop {
	return Uop{Ports: ports, Latency: 1, StoreData: true, Reads: src, Writes: []ValRef{Op(memOp)}}
}

// refs is shorthand for a list of value references.
func refs(vs ...ValRef) []ValRef { return vs }
