package measure

import (
	"testing"

	"uopsinfo/internal/uarch"
)

func TestDefaultBackendRegistered(t *testing.T) {
	b, ok := Lookup(DefaultBackend)
	if !ok {
		t.Fatalf("default backend %q is not registered", DefaultBackend)
	}
	if b.Name() != DefaultBackend {
		t.Errorf("backend registered under %q reports name %q", DefaultBackend, b.Name())
	}
	if b.Version() == "" {
		t.Error("default backend has an empty version fingerprint")
	}
	found := false
	for _, name := range Names() {
		if name == DefaultBackend {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v does not list %q", Names(), DefaultBackend)
	}
}

func TestLookupUnknownBackend(t *testing.T) {
	if _, ok := Lookup("no-such-substrate"); ok {
		t.Error("Lookup returned a backend for an unregistered name")
	}
}

// TestPipesimBackendRunners checks the default backend hands out fresh,
// forkable runners for the requested generation — the properties the
// engine's sharded scheduler relies on.
func TestPipesimBackendRunners(t *testing.T) {
	b, _ := Lookup(DefaultBackend)
	r1, err := b.NewRunner(uarch.Skylake)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Arch().Gen() != uarch.Skylake {
		t.Errorf("runner reports generation %s, want Skylake", r1.Arch().Gen())
	}
	r2, err := b.NewRunner(uarch.Skylake)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("NewRunner returned the same runner twice")
	}
	h := NewWithConfig(r1, DefaultConfig())
	if _, err := h.Fork(); err != nil {
		t.Errorf("default backend's runner is not forkable: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register did not panic on %s", what)
			}
		}()
		f()
	}
	mustPanic("a duplicate name", func() { Register(pipesimBackend{}) })
	mustPanic("an empty name", func() { Register(emptyNameBackend{}) })
}

type emptyNameBackend struct{ pipesimBackend }

func (emptyNameBackend) Name() string { return "" }
