package measure

// Fleet observability types. The remote measurement backend (package
// measure/remote) fans sequence measurements out to a pool of uopsd workers;
// the counters it keeps are reported through these types so the engine — and
// through it /v1/stats and /metrics — can expose them without importing the
// backend package.

// FleetWorkerStats are the per-worker counters of a measurement fleet.
type FleetWorkerStats struct {
	// URL is the worker's base URL.
	URL string `json:"url"`
	// Healthy reports whether the worker is currently in rotation (false:
	// it crossed the consecutive-failure threshold and is being probed).
	Healthy bool `json:"healthy"`
	// Batches and Sequences count the measurement batches (HTTP requests)
	// and the sequences inside them sent to this worker, including retried
	// and hedged work.
	Batches   int64 `json:"batches"`
	Sequences int64 `json:"sequences"`
	// Errors counts transport-level batch failures against this worker.
	Errors int64 `json:"errors"`
	// AvgBatchMicros is the mean wall-clock latency of this worker's
	// batches in microseconds (0 when no batch completed yet).
	AvgBatchMicros int64 `json:"avgBatchMicros"`
}

// FleetStats are the cumulative counters of a measurement fleet client.
type FleetStats struct {
	// Fingerprint is the handshake-derived serving fingerprint of the fleet
	// (the workers' backend identity plus measurement-config digest; the
	// remote backend's Version wraps it as "fleet(...)").
	Fingerprint string `json:"fingerprint"`
	// Batches counts measurement batches sent (across workers, including
	// retries and hedges); Sequences counts sequences submitted to the
	// fleet by runners (each at most once, however often it is retried).
	Batches   int64 `json:"batches"`
	Sequences int64 `json:"sequences"`
	// Deduped counts Run calls answered from a runner's last-result cache
	// without touching the network (the measurement protocol re-runs
	// identical sequences back to back; on a deterministic substrate the
	// repeat is free).
	Deduped int64 `json:"deduped"`
	// Retries counts sequences re-enqueued after a transient batch failure;
	// Errors counts the failed batches themselves.
	Retries int64 `json:"retries"`
	Errors  int64 `json:"errors"`
	// Hedges counts straggler batches duplicated to another worker;
	// HedgeWins counts sequences whose result arrived after their batch was
	// hedged (from whichever copy finished first).
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
	// Workers are the per-worker counters, in configuration order.
	Workers []FleetWorkerStats `json:"workers"`
}

// FleetReporter is implemented by backends that drive a measurement fleet;
// the engine folds their counters into Stats. ok is false when the backend
// has no fleet configured.
type FleetReporter interface {
	FleetStats() (stats FleetStats, ok bool)
}

// ReadyChecker is implemented by backends that need runtime configuration
// before use (e.g. the remote backend's fleet URLs). The engine refuses to
// build on a backend whose Ready returns an error, so a misconfigured
// substrate fails at construction time instead of polluting cache keys with
// a placeholder fingerprint.
type ReadyChecker interface {
	Ready() error
}
