package measure

// This file defines the measurement-backend registry. The characterization
// algorithms only need a substrate that executes instruction blocks and
// reports cycle and µop counters — the Runner interface — so the execution
// substrate is pluggable: the cycle-level pipesim simulator is the default,
// and alternative substrates (a remote measurement service, a
// hardware-backed kernel module, a different simulator) register themselves
// under a name and slot in behind the same measurement protocol.

import (
	"fmt"
	"sort"
	"sync"

	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// Backend is a named factory for execution substrates. Implementations must
// be safe for concurrent use: NewRunner can be called from multiple
// goroutines (the engine builds one runner per generation, concurrently
// during prewarming).
type Backend interface {
	// Name is the registry name of the backend (e.g. "pipesim"), as selected
	// by the -backend flag of the CLI tools.
	Name() string
	// Version is the behavioural revision of the substrate. It is folded
	// into persistent cache keys together with Name, so results measured on
	// different backends — or different revisions of the same backend —
	// never collide.
	Version() string
	// NewRunner returns a fresh, independent execution substrate for a
	// microarchitecture generation. Runners that additionally implement
	// RunnerForker (or are a *pipesim.Machine) support the sharded parallel
	// scheduler; others fall back to sequential characterization.
	NewRunner(gen uarch.Generation) (Runner, error)
}

// DefaultBackend is the name of the backend used when none is configured.
const DefaultBackend = "pipesim"

var (
	backendMu sync.RWMutex
	backends  = make(map[string]Backend)
)

// Register makes a backend available under its name. It panics if the name
// is empty or already registered (like database/sql.Register, registration
// is an init-time programming act, not a runtime condition).
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("measure: Register with empty backend name")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("measure: Register called twice for backend %q", name))
	}
	backends[name] = b
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	return b, ok
}

// Names returns the sorted names of all registered backends.
func Names() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// pipesimBackend adapts the cycle-level simulator to the Backend interface.
// It is the default substrate: deterministic, self-contained, forkable.
type pipesimBackend struct{}

func (pipesimBackend) Name() string    { return "pipesim" }
func (pipesimBackend) Version() string { return pipesim.Version }
func (pipesimBackend) NewRunner(gen uarch.Generation) (Runner, error) {
	arch, err := uarch.Lookup(gen)
	if err != nil {
		return nil, err
	}
	return pipesim.New(arch), nil
}

func init() { Register(pipesimBackend{}) }
