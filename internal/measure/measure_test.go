package measure

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

func skylakeHarness(cfg Config) (*Harness, *uarch.Arch) {
	arch := uarch.Get(uarch.Skylake)
	return NewWithConfig(pipesim.New(arch), cfg), arch
}

func addSequence(t *testing.T, arch *uarch.Arch, n int) asmgen.Sequence {
	t.Helper()
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	if add == nil {
		t.Fatal("ADD_R64_R64 missing")
	}
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	return seq
}

func TestMeasureRemovesOverhead(t *testing.T) {
	t.Parallel()
	// With a large modelled overhead, the copy-differencing protocol must
	// still report the per-copy cost of the code itself.
	h, arch := skylakeHarness(Config{ShortCopies: 2, LongCopies: 12, Repetitions: 3, Warmup: true,
		OverheadCycles: 500, OverheadUops: 40})
	seq := addSequence(t, arch, 8)
	res, err := h.Measure(seq)
	if err != nil {
		t.Fatal(err)
	}
	// 8 independent ADDs take about 2 cycles per copy (4 per cycle).
	if res.Cycles < 1 || res.Cycles > 4 {
		t.Errorf("per-copy cycles = %.2f, want about 2 (overhead not cancelled?)", res.Cycles)
	}
	if res.TotalUops < 7.5 || res.TotalUops > 8.5 {
		t.Errorf("per-copy µops = %.2f, want 8", res.TotalUops)
	}
	// Port counters must not contain the overhead µops either.
	sum := 0.0
	for _, u := range res.PortUops {
		sum += u
	}
	if sum < 7.5 || sum > 8.5 {
		t.Errorf("per-copy port µop sum = %.2f, want 8", sum)
	}
}

func TestMeasureLatencyChain(t *testing.T) {
	t.Parallel()
	h, arch := skylakeHarness(DefaultConfig())
	imul := arch.InstrSet().Lookup("IMUL_R64_R64")
	seq := asmgen.Sequence{asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX))}
	res, err := h.Measure(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 2.5 || res.Cycles > 3.5 {
		t.Errorf("IMUL chain = %.2f cycles per iteration, want 3", res.Cycles)
	}
}

func TestMeasureThroughputPerInstr(t *testing.T) {
	t.Parallel()
	h, arch := skylakeHarness(DefaultConfig())
	seq := addSequence(t, arch, 8)
	tp, err := h.MeasureThroughputPerInstr(seq)
	if err != nil {
		t.Fatal(err)
	}
	if tp < 0.2 || tp > 0.4 {
		t.Errorf("ADD throughput = %.3f c/i, want about 0.25", tp)
	}
}

func TestMeasureEmptySequence(t *testing.T) {
	t.Parallel()
	h, _ := skylakeHarness(DefaultConfig())
	if _, err := h.Measure(nil); err == nil {
		t.Error("Measure accepted an empty sequence")
	}
	if _, err := h.MeasureThroughputPerInstr(nil); err == nil {
		t.Error("MeasureThroughputPerInstr accepted an empty sequence")
	}
}

func TestConfigNormalization(t *testing.T) {
	t.Parallel()
	h, _ := skylakeHarness(Config{ShortCopies: -1, LongCopies: -5, Repetitions: 0})
	cfg := h.Config()
	if cfg.ShortCopies <= 0 || cfg.LongCopies <= cfg.ShortCopies || cfg.Repetitions <= 0 {
		t.Errorf("config not normalized: %+v", cfg)
	}
}

func TestPaperConfigMatchesProtocol(t *testing.T) {
	t.Parallel()
	cfg := PaperConfig()
	if cfg.ShortCopies != 10 || cfg.LongCopies != 110 || cfg.Repetitions != 100 {
		t.Errorf("PaperConfig = %+v, want n=10/110 and 100 repetitions", cfg)
	}
}

func TestResultUopsOnPorts(t *testing.T) {
	t.Parallel()
	r := Result{PortUops: []float64{1, 2, 0, 0, 3}}
	if got := r.UopsOnPorts([]int{0, 4}); got != 4 {
		t.Errorf("UopsOnPorts = %v, want 4", got)
	}
	if got := r.UopsOnPorts([]int{9}); got != 0 {
		t.Errorf("UopsOnPorts out of range = %v, want 0", got)
	}
}

func TestHarnessExposesRunnerAndArch(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Haswell)
	m := pipesim.New(arch)
	h := New(m)
	if h.Arch() != arch {
		t.Error("Arch() does not return the runner's architecture")
	}
	if h.Runner() != Runner(m) {
		t.Error("Runner() does not return the wrapped runner")
	}
}

// forkableFake is a Runner that counts its forks, to test the RunnerForker
// path of Harness.Fork.
type forkableFake struct {
	*pipesim.Machine
	forks *int
}

func (f forkableFake) ForkRunner() Runner {
	*f.forks++
	return forkableFake{Machine: f.Machine.Clone(), forks: f.forks}
}

// opaqueRunner is a Runner that cannot be forked.
type opaqueRunner struct{ *pipesim.Machine }

func TestHarnessFork(t *testing.T) {
	t.Parallel()
	h, arch := skylakeHarness(DefaultConfig())
	f, err := h.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.Runner() == h.Runner() {
		t.Fatal("forked harness shares the runner")
	}
	if f.Config() != h.Config() {
		t.Fatalf("forked config = %+v, want %+v", f.Config(), h.Config())
	}
	// Parent and fork must agree on the same measurement when run
	// concurrently: the stacks share no mutable state.
	seq := addSequence(t, arch, 8)
	res := make([]Result, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for i, hh := range []*Harness{h, f} {
		go func(i int, hh *Harness) {
			res[i], errs[i] = hh.Measure(seq)
			done <- i
		}(i, hh)
	}
	<-done
	<-done
	for i, err := range errs {
		if err != nil {
			t.Fatalf("harness %d: %v", i, err)
		}
	}
	if res[0].Cycles != res[1].Cycles || res[0].TotalUops != res[1].TotalUops {
		t.Errorf("parent and fork disagree: %+v vs %+v", res[0], res[1])
	}
}

func TestHarnessForkPrefersRunnerForker(t *testing.T) {
	t.Parallel()
	forks := 0
	arch := uarch.Get(uarch.Skylake)
	h := New(forkableFake{Machine: pipesim.New(arch), forks: &forks})
	if _, err := h.Fork(); err != nil {
		t.Fatal(err)
	}
	if forks != 1 {
		t.Errorf("ForkRunner called %d times, want 1", forks)
	}
}

func TestHarnessForkRejectsOpaqueRunner(t *testing.T) {
	t.Parallel()
	h := New(opaqueRunner{pipesim.New(uarch.Get(uarch.Skylake))})
	if _, err := h.Fork(); err == nil {
		t.Error("forking an unforkable runner should fail")
	}
}
