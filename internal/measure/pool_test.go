package measure

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// randomSequences builds deterministic pseudo-random sequences from a pool of
// concrete instructions covering ALU/multiply chains, eliminable moves, zero
// idioms, vector-domain mixes, the divider, and loads/stores with overlapping
// addresses — enough variety that batching artifacts (stale buffers, leaked
// machine state) would show up as counter differences.
func randomSequences(t *testing.T, arch *uarch.Arch, n int, rng *rand.Rand) []asmgen.Sequence {
	t.Helper()
	lookup := func(name string) *isa.Instr {
		in := arch.InstrSet().Lookup(name)
		if in == nil {
			t.Fatalf("variant %s missing on %s", name, arch.Name())
		}
		return in
	}
	gprs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI}
	xmms := []isa.Reg{isa.XMM0, isa.XMM1, isa.XMM2, isa.XMM3}

	var pool []*asmgen.Inst
	add := lookup("ADD_R64_R64")
	imul := lookup("IMUL_R64_R64")
	mov := lookup("MOV_R64_R64")
	pxor := lookup("PXOR_XMM_XMM")
	addps := lookup("ADDPS_XMM_XMM")
	div := lookup("DIV_R64")
	st := lookup("MOV_M64_R64")
	ld := lookup("MOV_R64_M64")
	for _, a := range gprs {
		for _, b := range gprs[:3] {
			pool = append(pool,
				asmgen.MustInst(add, asmgen.RegOperand(a), asmgen.RegOperand(b)),
				asmgen.MustInst(mov, asmgen.RegOperand(a), asmgen.RegOperand(b)))
		}
		pool = append(pool, asmgen.MustInst(imul, asmgen.RegOperand(a), asmgen.RegOperand(a)))
	}
	for _, x := range xmms {
		pool = append(pool,
			asmgen.MustInst(pxor, asmgen.RegOperand(x), asmgen.RegOperand(x)),
			asmgen.MustInst(addps, asmgen.RegOperand(x), asmgen.RegOperand(xmms[0])))
	}
	pool = append(pool, asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	for i := 0; i < 3; i++ {
		addr := uint64(0x3000 + 8*i)
		pool = append(pool,
			asmgen.MustInst(st, asmgen.MemOperand(isa.RSI, addr), asmgen.RegOperand(isa.RBX)),
			asmgen.MustInst(ld, asmgen.RegOperand(isa.RCX), asmgen.MemOperand(isa.RSI, addr)))
	}

	seqs := make([]asmgen.Sequence, n)
	for i := range seqs {
		length := 1 + rng.Intn(30)
		seq := make(asmgen.Sequence, 0, length)
		for j := 0; j < length; j++ {
			seq = append(seq, pool[rng.Intn(len(pool))])
		}
		seqs[i] = seq
	}
	return seqs
}

func resultsEqual(a, b Result) bool {
	if a.Cycles != b.Cycles || a.TotalUops != b.TotalUops ||
		a.IssuedUops != b.IssuedUops || a.ElimUops != b.ElimUops ||
		len(a.PortUops) != len(b.PortUops) {
		return false
	}
	for i := range a.PortUops {
		if a.PortUops[i] != b.PortUops[i] {
			return false
		}
	}
	return true
}

// TestPoolBatchingInvariance is the batching property test: running N random
// variant sequences back to back through ONE pooled harness (warm machine,
// reused repeat buffers) must produce exactly the same measurement results —
// and the same raw simulator counters — as running each sequence on a fresh
// machine with a fresh harness. 200 sequences across 3 generations.
func TestPoolBatchingInvariance(t *testing.T) {
	t.Parallel()
	for _, gen := range []uarch.Generation{uarch.Skylake, uarch.SandyBridge, uarch.Haswell} {
		gen := gen
		t.Run(gen.String(), func(t *testing.T) {
			t.Parallel()
			arch := uarch.Get(gen)
			rng := rand.New(rand.NewSource(0x9001 + int64(gen)))
			seqs := randomSequences(t, arch, 200, rng)

			pool := NewPool(New(pipesim.New(arch)))
			batched, _, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			for i, seq := range seqs {
				want, err := New(pipesim.New(arch)).Measure(seq)
				if err != nil {
					t.Fatalf("sequence %d: fresh: %v", i, err)
				}
				got, err := batched.Measure(seq)
				if err != nil {
					t.Fatalf("sequence %d: batched: %v", i, err)
				}
				if !resultsEqual(want, got) {
					t.Fatalf("sequence %d: fresh %+v, batched %+v", i, want, got)
				}
				// The raw counters must match too (the Result averaging could
				// mask an off-by-constant in the underlying runs).
				cw, err := pipesim.New(arch).Run(seq)
				if err != nil {
					t.Fatal(err)
				}
				cg, err := batched.Runner().Run(seq)
				if err != nil {
					t.Fatal(err)
				}
				if cw.Cycles != cg.Cycles || cw.TotalUops != cg.TotalUops ||
					cw.IssuedUops != cg.IssuedUops || cw.ElimUops != cg.ElimUops {
					t.Fatalf("sequence %d: fresh counters %+v, batched counters %+v", i, cw, cg)
				}
			}
			// Re-measuring the final sequence reuses the buffers outright.
			if _, err := batched.Measure(seqs[len(seqs)-1]); err != nil {
				t.Fatal(err)
			}
			pool.Put(batched)
			if s := pool.Stats(); s.SeqReused < 1 || s.SeqBuilt < int64(len(seqs)) {
				t.Fatalf("stats after batch: %+v, want SeqBuilt >= %d and SeqReused >= 1", s, len(seqs))
			}
		})
	}
}

// TestPoolReuse pins the pool contract: Get after Put returns the same warm
// harness (reused), Get on an empty pool forks, and the counters record both.
func TestPoolReuse(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Skylake)
	pool := NewPool(New(pipesim.New(arch)))

	a, reused, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first Get reported reused")
	}
	b, reused, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if reused || b == a {
		t.Fatal("second Get must fork a distinct harness")
	}
	pool.Put(a)
	if pool.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", pool.Idle())
	}
	c, reused, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !reused || c != a {
		t.Fatalf("Get after Put: reused=%v, same=%v; want warm harness back", reused, c == a)
	}
	pool.Put(b)
	pool.Put(c)
	s := pool.Stats()
	if s.Forked != 2 || s.Reused != 1 {
		t.Fatalf("stats = %+v, want Forked=2 Reused=1", s)
	}
}

// TestPoolConcurrent hammers one pool from many goroutines (run under -race
// in CI): every worker checks harnesses in and out and measures on them; the
// results must match a reference measurement on a fresh stack.
func TestPoolConcurrent(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Skylake)
	rng := rand.New(rand.NewSource(0xbeef))
	seqs := randomSequences(t, arch, 16, rng)
	want := make([]Result, len(seqs))
	for i, seq := range seqs {
		r, err := New(pipesim.New(arch)).Measure(seq)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	pool := NewPool(New(pipesim.New(arch)))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				h, _, err := pool.Get()
				if err != nil {
					errs <- err
					return
				}
				i := (w + round) % len(seqs)
				got, err := h.Measure(seqs[i])
				pool.Put(h)
				if err != nil {
					errs <- err
					return
				}
				if !resultsEqual(want[i], got) {
					errs <- fmt.Errorf("worker %d round %d: pooled %+v, fresh %+v", w, round, got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Forked+s.Reused != 80 {
		t.Fatalf("stats = %+v, want Forked+Reused = 80", s)
	}
}
