package remote

// The fleet dispatcher: runners submit encoded sequence measurements as
// calls onto a per-generation queue; per-worker sender goroutines pull calls
// off the queue, coalesce whatever is immediately available into one batch
// (no linger delay — batching is opportunistic, driven by the concurrency of
// the characterization scheduler), and POST it to their worker. Sharding is
// emergent: every sender competes for the same queue, so a fast worker
// simply takes more batches and a failing one takes none while it is being
// probed. Transient batch failures re-enqueue the undelivered calls for
// another worker (bounded by MaxAttempts) while the failing sender backs
// off; straggler batches are hedged — their calls are duplicated onto the
// queue after HedgeAfter and the first finished copy wins. Results are
// delivered exactly once per call via an atomic claim, so a call can sit in
// the queue, in a retried batch and in a hedged batch simultaneously without
// double delivery.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
)

// Options configures a fleet client.
type Options struct {
	// Workers are the base URLs of the uopsd workers (e.g.
	// "http://w1:8631"). At least one is required.
	Workers []string
	// BatchSize caps the sequences coalesced into one /v1/measure request.
	// <= 0 selects 64.
	BatchSize int
	// InFlight is the number of concurrent batches each worker is kept
	// loaded with. <= 0 selects 4.
	InFlight int
	// MaxAttempts bounds how many transient batch failures one sequence
	// survives before its measurement fails. <= 0 selects 4.
	MaxAttempts int
	// HedgeAfter is how long a batch may straggle before its undelivered
	// sequences are duplicated to another worker (first finished copy
	// wins). 0 selects 1s; negative disables hedging.
	HedgeAfter time.Duration
	// BatchTimeout bounds one /v1/measure request. <= 0 selects 2m.
	BatchTimeout time.Duration
	// CallTimeout bounds how long one Run call waits for its result across
	// all retries and hedges. <= 0 selects 5m.
	CallTimeout time.Duration
	// UnhealthyAfter is the consecutive-failure threshold that takes a
	// worker out of rotation (it is then health-probed until it answers).
	// <= 0 selects 3.
	UnhealthyAfter int
	// Client, if non-nil, is the HTTP client used for measurement batches
	// and probes (its Timeout is ignored; BatchTimeout governs requests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.InFlight <= 0 {
		o.InFlight = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = time.Second
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = 2 * time.Minute
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Minute
	}
	if o.UnhealthyAfter <= 0 {
		o.UnhealthyAfter = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// callResult is the outcome of one sequence measurement.
type callResult struct {
	counters pipesim.Counters
	err      error
}

// call is one sequence measurement in flight through the fleet. enc is the
// marshaled wire Seq (including the divider regime). delivered is the
// exactly-once claim: whichever batch (original, retry or hedge copy)
// finishes first writes done; everyone else drops its result.
type call struct {
	enc       json.RawMessage
	done      chan callResult
	delivered atomic.Bool
	attempts  atomic.Int32
	hedged    atomic.Bool
}

func (c *call) deliver(r callResult) bool {
	if c.delivered.CompareAndSwap(false, true) {
		c.done <- r
		return true
	}
	return false
}

// worker is one uopsd instance of the fleet.
type worker struct {
	url         string
	consecFails atomic.Int32

	batches   atomic.Int64
	seqs      atomic.Int64
	errors    atomic.Int64
	latencyUS atomic.Int64
}

// fleet is one configured set of workers plus the dispatch machinery.
type fleet struct {
	opts        Options
	workers     []*worker
	fingerprint string // handshake-derived serving fingerprint of the fleet

	mu     sync.Mutex
	queues map[string]chan *call // per generation name

	closeOnce sync.Once
	closed    chan struct{}

	batches   atomic.Int64
	seqs      atomic.Int64
	deduped   atomic.Int64
	retries   atomic.Int64
	errors    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

var errFleetClosed = errors.New("remote: fleet closed (reconfigured or shut down)")

func newFleet(opts Options, fingerprint string) *fleet {
	f := &fleet{
		opts:        opts,
		fingerprint: fingerprint,
		queues:      make(map[string]chan *call),
		closed:      make(chan struct{}),
	}
	for _, url := range opts.Workers {
		f.workers = append(f.workers, &worker{url: url})
	}
	return f
}

// close stops every sender and probe goroutine. Calls still queued or in
// flight are delivered errFleetClosed.
func (f *fleet) close() {
	f.closeOnce.Do(func() { close(f.closed) })
}

// queue returns (lazily creating) the dispatch queue of one generation,
// spawning the per-worker sender goroutines on first use.
func (f *fleet) queue(gen string) chan *call {
	f.mu.Lock()
	defer f.mu.Unlock()
	q, ok := f.queues[gen]
	if !ok {
		q = make(chan *call, 1024)
		f.queues[gen] = q
		for _, w := range f.workers {
			for i := 0; i < f.opts.InFlight; i++ {
				go f.serve(w, gen, q)
			}
		}
	}
	return q
}

// submit enqueues one call and waits for its result.
func (f *fleet) submit(gen string, c *call, timer *time.Timer) callResult {
	q := f.queue(gen)
	select {
	case q <- c:
	case <-f.closed:
		return callResult{err: errFleetClosed}
	}
	f.seqs.Add(1)

	timer.Reset(f.opts.CallTimeout)
	defer timer.Stop()
	select {
	case res := <-c.done:
		return res
	case <-timer.C:
		// Claim the call so late senders skip it; if a result won the race
		// in the meantime, take it.
		if !c.delivered.CompareAndSwap(false, true) {
			return <-c.done
		}
		return callResult{err: fmt.Errorf("remote: measurement timed out after %v", f.opts.CallTimeout)}
	case <-f.closed:
		if !c.delivered.CompareAndSwap(false, true) {
			return <-c.done
		}
		return callResult{err: errFleetClosed}
	}
}

// serve is one sender slot of one worker: pull a call, coalesce what else is
// immediately queued, send the batch. A worker beyond its failure threshold
// is first probed back to health so it cannot keep consuming (and failing)
// calls other workers would complete.
func (f *fleet) serve(w *worker, gen string, q chan *call) {
	for {
		if int(w.consecFails.Load()) >= f.opts.UnhealthyAfter {
			if !f.probe(w) {
				return // fleet closed
			}
		}
		var c *call
		select {
		case <-f.closed:
			return
		case c = <-q:
		}
		if c.delivered.Load() {
			continue
		}
		batch := []*call{c}
	drain:
		for len(batch) < f.opts.BatchSize {
			select {
			case c2 := <-q:
				if !c2.delivered.Load() {
					batch = append(batch, c2)
				}
			default:
				break drain
			}
		}
		f.send(w, gen, batch, q)
	}
}

// send posts one batch to a worker and delivers or re-enqueues its calls.
func (f *fleet) send(w *worker, gen string, batch []*call, q chan *call) {
	f.batches.Add(1)
	w.batches.Add(1)
	w.seqs.Add(int64(len(batch)))

	var hedgeTimer *time.Timer
	if f.opts.HedgeAfter > 0 {
		hedgeTimer = time.AfterFunc(f.opts.HedgeAfter, func() { f.hedge(batch, q) })
	}
	start := time.Now()
	resp, err := f.post(w, gen, batch)
	w.latencyUS.Add(time.Since(start).Microseconds())
	if hedgeTimer != nil {
		hedgeTimer.Stop()
	}

	if err != nil {
		w.consecFails.Add(1)
		w.errors.Add(1)
		f.errors.Add(1)
		f.requeue(batch, q, err)
		// Back this sender off before it pulls again; re-enqueued calls are
		// already available to every other sender.
		f.sleep(backoff(int(w.consecFails.Load())))
		return
	}
	w.consecFails.Store(0)
	for i, c := range batch {
		var res callResult
		if resp.Errs != nil && resp.Errs[i] != "" {
			// A per-sequence error is a deterministic property of the
			// request (unknown variant, simulator rejection) — retrying it
			// on another worker would return the same error.
			res = callResult{err: fmt.Errorf("remote: worker %s: %s", w.url, resp.Errs[i])}
		} else {
			res = callResult{counters: DecodeCounters(resp.Counters[i])}
		}
		if c.deliver(res) && c.hedged.Load() {
			f.hedgeWins.Add(1)
		}
	}
}

// hedge duplicates a straggler batch's undelivered calls back onto the queue
// (at most one hedge copy per call); the original request keeps running and
// the first finished copy wins.
func (f *fleet) hedge(batch []*call, q chan *call) {
	n := 0
	for _, c := range batch {
		if c.delivered.Load() || !c.hedged.CompareAndSwap(false, true) {
			continue
		}
		select {
		case q <- c:
			n++
		default:
			c.hedged.Store(false) // queue full; straggle on
		}
	}
	if n > 0 {
		f.hedges.Add(1)
	}
}

// requeue returns a failed batch's undelivered calls to the queue, failing
// the ones that exhausted their attempt budget.
func (f *fleet) requeue(batch []*call, q chan *call, cause error) {
	for _, c := range batch {
		if c.delivered.Load() {
			continue
		}
		if int(c.attempts.Add(1)) >= f.opts.MaxAttempts {
			c.deliver(callResult{err: fmt.Errorf("remote: measurement failed after %d attempts: %w",
				f.opts.MaxAttempts, cause)})
			continue
		}
		f.retries.Add(1)
		select {
		case q <- c:
		case <-f.closed:
			c.deliver(callResult{err: errFleetClosed})
		}
	}
}

// backoff is the sender's post-failure pause: 25ms doubling per consecutive
// failure, capped at 2s.
func backoff(consecFails int) time.Duration {
	d := 25 * time.Millisecond
	for i := 1; i < consecFails && d < 2*time.Second; i++ {
		d *= 2
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func (f *fleet) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.closed:
	}
}

// probe takes an unhealthy worker through /healthz until it answers again,
// with capped exponential backoff. Returns false when the fleet closed.
func (f *fleet) probe(w *worker) bool {
	fails := int(w.consecFails.Load())
	for {
		f.sleep(backoff(fails))
		select {
		case <-f.closed:
			return false
		default:
		}
		req, err := http.NewRequest(http.MethodGet, w.url+"/healthz", nil)
		if err != nil {
			return false
		}
		ctx, cancel := timeoutContext(2 * time.Second)
		resp, err := f.opts.Client.Do(req.WithContext(ctx))
		cancel()
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				w.consecFails.Store(0)
				return true
			}
		}
		if fails < 12 {
			fails++
		}
	}
}

// post sends one batch and decodes the response. Any transport failure,
// non-2xx status or fingerprint drift (the worker restarted with a different
// backend build since the handshake) is a transient error: the caller
// re-enqueues the calls for another worker.
func (f *fleet) post(w *worker, gen string, batch []*call) (*MeasureResponse, error) {
	reqBody := MeasureRequest{Gen: gen, Seqs: make([]json.RawMessage, len(batch))}
	for i, c := range batch {
		reqBody.Seqs[i] = c.enc
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return nil, fmt.Errorf("remote: encoding batch: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, w.url+"/v1/measure", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := timeoutContext(f.opts.BatchTimeout)
	defer cancel()
	resp, err := f.opts.Client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, fmt.Errorf("remote: worker %s: %w", w.url, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("remote: worker %s: /v1/measure: status %d: %s",
			w.url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out MeasureResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("remote: worker %s: decoding /v1/measure response: %w", w.url, err)
	}
	if len(out.Counters) != len(batch) || (out.Errs != nil && len(out.Errs) != len(batch)) {
		return nil, fmt.Errorf("remote: worker %s: response has %d counters for %d sequences",
			w.url, len(out.Counters), len(batch))
	}
	if out.Fingerprint != f.fingerprint {
		return nil, fmt.Errorf("remote: worker %s: serving fingerprint drifted to %q (handshake saw %q); cache keys would lie",
			w.url, out.Fingerprint, f.fingerprint)
	}
	return &out, nil
}

// stats snapshots the fleet counters.
func (f *fleet) stats() measure.FleetStats {
	s := measure.FleetStats{
		Fingerprint: f.fingerprint,
		Batches:     f.batches.Load(),
		Sequences:   f.seqs.Load(),
		Deduped:     f.deduped.Load(),
		Retries:     f.retries.Load(),
		Errors:      f.errors.Load(),
		Hedges:      f.hedges.Load(),
		HedgeWins:   f.hedgeWins.Load(),
	}
	for _, w := range f.workers {
		ws := measure.FleetWorkerStats{
			URL:       w.url,
			Healthy:   int(w.consecFails.Load()) < f.opts.UnhealthyAfter,
			Batches:   w.batches.Load(),
			Sequences: w.seqs.Load(),
			Errors:    w.errors.Load(),
		}
		if ws.Batches > 0 {
			ws.AvgBatchMicros = w.latencyUS.Load() / ws.Batches
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}
