package remote

// This file defines the wire format of the fleet measurement protocol: the
// JSON bodies of POST /v1/measure requests and responses, and the lossless
// encoding of concrete instruction sequences. The encoding carries the
// variant *name* (unique within a generation's instruction set) plus the
// concrete operand values — registers, memory base+address, immediates —
// rather than assembler text, because text would have to be re-matched
// against the variant table on the worker and two variants can share a
// mnemonic and operand shape. Byte-identical characterization output depends
// on the worker reconstructing exactly the sequence the client built,
// including the virtual addresses of memory operands (they decide memory
// dependencies in the simulator).

import (
	"encoding/json"
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/pipesim"
)

// Seq is one measurement request: a concrete instruction sequence under one
// divider-value regime. Repeated sequences (the measurement protocol runs
// n concatenated copies of a short kernel) are deduplicated by instruction
// instance: Instrs holds each distinct instruction once and Order lists the
// execution order as indices into Instrs. An empty Order means Instrs in
// order.
type Seq struct {
	// Div is the operand-value regime for divider-based instructions
	// (pipesim.DividerValues; 0 is the slow regime).
	Div int `json:"div,omitempty"`
	// Instrs are the distinct instruction instances of the sequence.
	Instrs []Inst `json:"instrs"`
	// Order is the execution order as indices into Instrs (empty: identity).
	Order []int `json:"order,omitempty"`
}

// Inst is one concrete instruction: an instruction-variant name plus the
// concrete values of its explicit operands.
type Inst struct {
	Name string `json:"name"`
	Ops  []Op   `json:"ops,omitempty"`
}

// Op is one concrete explicit operand. Exactly one of Reg, Base (a memory
// operand with its virtual address) or Imm is set.
type Op struct {
	Reg  string `json:"reg,omitempty"`
	Base string `json:"base,omitempty"`
	Addr uint64 `json:"addr,omitempty"`
	Imm  *int64 `json:"imm,omitempty"`
}

// Counters mirrors pipesim.Counters on the wire.
type Counters struct {
	Cycles     int   `json:"cycles"`
	PortUops   []int `json:"portUops,omitempty"`
	TotalUops  int   `json:"totalUops"`
	IssuedUops int   `json:"issuedUops"`
	ElimUops   int   `json:"elimUops"`
}

// MeasureRequest is the body of POST /v1/measure: a batch of encoded
// sequences to run on one generation. Sequences are raw JSON so the client
// can assemble batches from pre-encoded calls without re-marshaling.
type MeasureRequest struct {
	Gen  string            `json:"gen"`
	Seqs []json.RawMessage `json:"seqs"`
}

// MeasureResponse is the body of a successful POST /v1/measure: one Counters
// entry per request sequence, plus the worker's serving-backend identity so
// the client can detect a worker whose backend drifted (restart with a new
// build) since the handshake. Errs, when non-empty, carries per-sequence
// error strings ("" = the sequence succeeded); such errors are deterministic
// properties of the sequence and must not be retried.
type MeasureResponse struct {
	Backend     string     `json:"backend"`
	Version     string     `json:"version"`
	Fingerprint string     `json:"fingerprint"`
	Counters    []Counters `json:"counters"`
	Errs        []string   `json:"errors,omitempty"`
}

// EncodeCounters converts simulator counters to their wire form.
func EncodeCounters(c pipesim.Counters) Counters {
	return Counters{Cycles: c.Cycles, PortUops: c.PortUops, TotalUops: c.TotalUops,
		IssuedUops: c.IssuedUops, ElimUops: c.ElimUops}
}

// DecodeCounters converts wire counters back to simulator counters.
func DecodeCounters(c Counters) pipesim.Counters {
	return pipesim.Counters{Cycles: c.Cycles, PortUops: c.PortUops, TotalUops: c.TotalUops,
		IssuedUops: c.IssuedUops, ElimUops: c.ElimUops}
}

// EncodeSeq encodes a concrete sequence under a divider-value regime.
// Instruction instances are deduplicated by pointer: a materialized n-copy
// measurement sequence repeats the same instances, so the wire form carries
// each once plus the order, which keeps /v1/measure bodies proportional to
// the kernel, not the copy count.
func EncodeSeq(code asmgen.Sequence, div pipesim.DividerValues) Seq {
	ws := Seq{Div: int(div)}
	idx := make(map[*asmgen.Inst]int, 16)
	order := make([]int, len(code))
	identity := true
	for i, in := range code {
		j, ok := idx[in]
		if !ok {
			j = len(ws.Instrs)
			idx[in] = j
			ws.Instrs = append(ws.Instrs, encodeInst(in))
		}
		order[i] = j
		if j != i {
			identity = false
		}
	}
	if !identity || len(order) != len(ws.Instrs) {
		ws.Order = order
	}
	return ws
}

func encodeInst(in *asmgen.Inst) Inst {
	wi := Inst{Name: in.Variant.Name}
	for _, op := range in.Ops {
		var wo Op
		switch {
		case op.Mem != nil:
			wo.Base = op.Mem.Base.String()
			wo.Addr = op.Mem.Addr
		case op.HasImm:
			v := op.Imm
			wo.Imm = &v
		default:
			wo.Reg = op.Reg.String()
		}
		wi.Ops = append(wi.Ops, wo)
	}
	return wi
}

// DecodeSeq reconstructs the concrete sequence against a generation's
// instruction set. Order entries reference the same decoded instruction
// instance, mirroring the pointer sharing of the client's repeat buffers.
// Every lookup or validation failure is an error naming the offending
// instruction: these are deterministic request properties, never worth a
// retry.
func DecodeSeq(set *isa.Set, ws Seq) (asmgen.Sequence, error) {
	insts := make([]*asmgen.Inst, len(ws.Instrs))
	for i, wi := range ws.Instrs {
		in, err := decodeInst(set, wi)
		if err != nil {
			return nil, err
		}
		insts[i] = in
	}
	if ws.Order == nil {
		return asmgen.Sequence(insts), nil
	}
	seq := make(asmgen.Sequence, len(ws.Order))
	for i, j := range ws.Order {
		if j < 0 || j >= len(insts) {
			return nil, fmt.Errorf("remote: sequence order index %d out of range (%d instructions)", j, len(insts))
		}
		seq[i] = insts[j]
	}
	return seq, nil
}

func decodeInst(set *isa.Set, wi Inst) (*asmgen.Inst, error) {
	variant := set.Lookup(wi.Name)
	if variant == nil {
		return nil, fmt.Errorf("remote: unknown instruction variant %q", wi.Name)
	}
	ops := make([]asmgen.Operand, len(wi.Ops))
	for i, wo := range wi.Ops {
		switch {
		case wo.Base != "":
			base := isa.ParseReg(wo.Base)
			if base == isa.RegNone {
				return nil, fmt.Errorf("remote: %s: unknown base register %q", wi.Name, wo.Base)
			}
			ops[i] = asmgen.MemOperand(base, wo.Addr)
		case wo.Imm != nil:
			ops[i] = asmgen.ImmOperand(*wo.Imm)
		case wo.Reg != "":
			r := isa.ParseReg(wo.Reg)
			if r == isa.RegNone {
				return nil, fmt.Errorf("remote: %s: unknown register %q", wi.Name, wo.Reg)
			}
			ops[i] = asmgen.RegOperand(r)
		default:
			return nil, fmt.Errorf("remote: %s: operand %d is empty", wi.Name, i+1)
		}
	}
	in, err := asmgen.NewInst(variant, ops...)
	if err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return in, nil
}
