// Package remote implements the "remote" measurement backend: a
// measure.Backend whose runners fan sequence measurements out over HTTP to a
// pool of uopsd workers (the fleet), turning one process's -j parallelism
// into horizontal scale across machines. The execution substrate stays the
// workers' own backend (normally pipesim), so a loopback fleet produces
// byte-identical characterization output to a local run; the backend's
// Version is derived from a startup handshake against every worker's
// /v1/backends — the fleet's serving-backend fingerprint plus its
// measurement-config digest — so persistent cache keys stay honest across
// mixed-version fleets (a mismatched fleet is a hard configuration error,
// not silent cache pollution).
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// BackendName is the registry name of the fleet backend.
const BackendName = "remote"

// EnvFleet is the environment variable consulted for worker URLs when no
// -fleet flag is given.
const EnvFleet = "UOPS_FLEET"

// backend is the registered measure.Backend. It is a shell around the
// currently configured fleet: Configure swaps a new fleet in (closing the
// previous one), and until the first Configure the backend reports
// not-ready, which makes engine.New fail instead of minting cache keys from
// a placeholder fingerprint.
type backend struct {
	mu sync.Mutex
	f  *fleet
}

var theBackend = &backend{}

func init() { measure.Register(theBackend) }

func (b *backend) current() *fleet {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f
}

func (b *backend) Name() string { return BackendName }

// Version is the fleet fingerprint established by the Configure handshake.
// It is folded into every persistent cache key, so results measured on
// fleets serving different backend builds never collide.
func (b *backend) Version() string {
	f := b.current()
	if f == nil {
		return "unconfigured"
	}
	return "fleet(" + f.fingerprint + ")"
}

// Ready implements measure.ReadyChecker: the engine refuses to build on the
// remote backend before a fleet is configured.
func (b *backend) Ready() error {
	if b.current() == nil {
		return fmt.Errorf("remote: backend %q is not configured: pass -fleet URL,URL or set %s",
			BackendName, EnvFleet)
	}
	return nil
}

// FleetStats implements measure.FleetReporter.
func (b *backend) FleetStats() (measure.FleetStats, bool) {
	f := b.current()
	if f == nil {
		return measure.FleetStats{}, false
	}
	return f.stats(), true
}

// NewRunner returns a runner that measures on the configured fleet. Runners
// fork freely (the sharded scheduler gives every worker goroutine its own),
// all sharing the fleet's dispatch queues.
func (b *backend) NewRunner(gen uarch.Generation) (measure.Runner, error) {
	f := b.current()
	if f == nil {
		return nil, b.Ready()
	}
	arch, err := uarch.Lookup(gen)
	if err != nil {
		return nil, err
	}
	return &Runner{f: f, arch: arch, genName: arch.Name(), timer: newStoppedTimer()}, nil
}

// Configure performs the startup handshake against every worker and installs
// the fleet as the backend's substrate, replacing (and closing) any
// previously configured fleet — runners created before a reconfiguration
// fail with a fleet-closed error. It fails hard when a worker is unreachable
// or when the workers disagree on their serving-backend fingerprint or
// measurement configuration: a mixed-version fleet would return
// inconsistent measurements under one cache fingerprint.
func Configure(opts Options) error {
	if len(opts.Workers) == 0 {
		return errors.New("remote: Configure needs at least one worker URL")
	}
	opts = opts.withDefaults()
	fingerprint, err := handshake(opts)
	if err != nil {
		return err
	}
	f := newFleet(opts, fingerprint)
	theBackend.mu.Lock()
	old := theBackend.f
	theBackend.f = f
	theBackend.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nil
}

// Shutdown closes the configured fleet (if any) and returns the backend to
// its unconfigured state. Tests use it to stop the sender and probe
// goroutines.
func Shutdown() {
	theBackend.mu.Lock()
	old := theBackend.f
	theBackend.f = nil
	theBackend.mu.Unlock()
	if old != nil {
		old.close()
	}
}

// Setup resolves the -fleet / -backend flag pair of the CLI tools: an empty
// fleetFlag falls back to the UOPS_FLEET environment variable; a non-empty
// fleet list configures the backend (performing the handshake) and selects
// it, and it is an error to name a fleet while forcing a different backend,
// or to force the remote backend without naming a fleet. The returned name
// is what engine.Config.Backend should be set to.
func Setup(fleetFlag, backendFlag string) (string, error) {
	fleetList := fleetFlag
	if fleetList == "" {
		fleetList = os.Getenv(EnvFleet)
	}
	if fleetList == "" {
		if backendFlag == BackendName {
			return "", theBackend.Ready()
		}
		return backendFlag, nil
	}
	if backendFlag != "" && backendFlag != BackendName {
		return "", fmt.Errorf("remote: -fleet selects backend %q, which contradicts -backend %q",
			BackendName, backendFlag)
	}
	if err := Configure(Options{Workers: SplitList(fleetList)}); err != nil {
		return "", err
	}
	return BackendName, nil
}

// SplitList splits a comma-separated worker-URL list, trimming whitespace,
// empty entries and trailing slashes.
func SplitList(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimRight(strings.TrimSpace(part), "/")
		if part != "" {
			urls = append(urls, part)
		}
	}
	return urls
}

// servingInfo is the part of a worker's /v1/backends response the handshake
// consumes: the backend the worker's engine actually serves from.
type servingInfo struct {
	Serving struct {
		Name          string `json:"name"`
		Version       string `json:"version"`
		Fingerprint   string `json:"fingerprint"`
		MeasureDigest string `json:"measureDigest"`
	} `json:"serving"`
}

// handshake queries every worker's /v1/backends and derives the fleet
// fingerprint. All workers must report the same serving fingerprint and
// measurement-config digest.
func handshake(opts Options) (string, error) {
	type answer struct {
		url string
		fp  string
		err error
	}
	answers := make([]answer, len(opts.Workers))
	var wg sync.WaitGroup
	for i, url := range opts.Workers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			fp, err := handshakeWorker(opts.Client, url)
			answers[i] = answer{url: url, fp: fp, err: err}
		}(i, url)
	}
	wg.Wait()
	fingerprint := ""
	for _, a := range answers {
		if a.err != nil {
			return "", fmt.Errorf("remote: handshake with worker %s: %w", a.url, a.err)
		}
		if fingerprint == "" {
			fingerprint = a.fp
			continue
		}
		if a.fp != fingerprint {
			return "", fmt.Errorf("remote: fleet version mismatch: worker %s serves %q, worker %s serves %q — "+
				"a mixed fleet would pollute the result cache; align the workers and reconnect",
				answers[0].url, fingerprint, a.url, a.fp)
		}
	}
	return fingerprint, nil
}

func handshakeWorker(client *http.Client, url string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, url+"/v1/backends", nil)
	if err != nil {
		return "", err
	}
	ctx, cancel := timeoutContext(10 * time.Second)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("/v1/backends: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var info servingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", fmt.Errorf("decoding /v1/backends: %w", err)
	}
	return ServingFingerprint(info.Serving.Fingerprint, info.Serving.MeasureDigest)
}

// ServingFingerprint combines a worker's serving-backend fingerprint
// (name@version, as folded into its cache keys) with its measurement-config
// digest into the identity string the handshake compares and /v1/measure
// responses echo.
func ServingFingerprint(fingerprint, measureDigest string) (string, error) {
	if fingerprint == "" {
		return "", errors.New("response carries no serving fingerprint (worker too old?)")
	}
	return fingerprint + " cfg=" + measureDigest, nil
}

// timeoutContext is context.WithTimeout from Background, split out so the
// fleet code reads as transport logic.
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// Runner is the fleet-backed execution substrate handed to measurement
// harnesses. It is not safe for concurrent use (like every Runner); the
// scheduler forks one per worker goroutine, and forks share the fleet's
// queues. A Runner keeps the encoded form and result of its last measurement:
// the measurement protocol re-runs identical sequences back to back (warmup,
// then the short reading), and on a deterministic substrate the repeat is
// answered locally instead of over the network.
type Runner struct {
	f       *fleet
	arch    *uarch.Arch
	genName string
	div     pipesim.DividerValues
	timer   *time.Timer

	lastEnc      []byte
	lastCounters pipesim.Counters
}

var (
	_ measure.Runner       = (*Runner)(nil)
	_ measure.RunnerForker = (*Runner)(nil)
)

func newStoppedTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}

// Arch returns the measured microarchitecture (from the local tables; the
// workers are built from the same ones, which the handshake fingerprint
// pins).
func (r *Runner) Arch() *uarch.Arch { return r.arch }

// SetDividerValues selects the operand-value regime for divider-based
// instructions; it travels with every encoded sequence so the worker's
// simulator runs under the same regime.
func (r *Runner) SetDividerValues(v pipesim.DividerValues) { r.div = v }

// ForkRunner returns an independent runner sharing the fleet, enabling the
// sharded parallel scheduler (and with it multiple batches in flight).
func (r *Runner) ForkRunner() measure.Runner {
	return &Runner{f: r.f, arch: r.arch, genName: r.genName, div: r.div, timer: newStoppedTimer()}
}

// Run measures one sequence on the fleet. The sequence is encoded (variant
// names plus concrete operands, repeat copies deduplicated), submitted to
// the dispatch queue, and the first worker result wins. Nothing of code is
// retained.
func (r *Runner) Run(code asmgen.Sequence) (pipesim.Counters, error) {
	if len(code) == 0 {
		return pipesim.Counters{}, errors.New("remote: empty code sequence")
	}
	enc, err := json.Marshal(EncodeSeq(code, r.div))
	if err != nil {
		return pipesim.Counters{}, fmt.Errorf("remote: encoding sequence: %w", err)
	}
	// The substrate is deterministic, so a back-to-back identical
	// measurement (the content comparison covers the concrete instructions
	// and the divider regime) is the previous result; Clone because callers
	// mutate the counters they receive.
	if r.lastEnc != nil && bytes.Equal(enc, r.lastEnc) {
		r.f.deduped.Add(1)
		return r.lastCounters.Clone(), nil
	}
	c := &call{enc: enc, done: make(chan callResult, 1)}
	res := r.f.submit(r.genName, c, r.timer)
	if res.err != nil {
		return pipesim.Counters{}, res.err
	}
	r.lastEnc = enc
	r.lastCounters = res.counters
	return res.counters.Clone(), nil
}
