package remote

// Unit tests of the fleet backend against fake workers: canned HTTP servers
// speaking the worker protocol with fabricated counters. The end-to-end
// loopback tests — real uopsd workers, byte-identical characterization
// output — live in internal/service (this package cannot import service
// without a cycle).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xedspec"
)

func variant(t *testing.T, set *isa.Set, name string) *isa.Instr {
	t.Helper()
	in := set.Lookup(name)
	if in == nil {
		t.Fatalf("variant %s not found", name)
	}
	return in
}

func TestSplitList(t *testing.T) {
	got := SplitList(" http://a:1/, ,http://b:2 ,")
	want := []string{"http://a:1", "http://b:2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitList = %v, want %v", got, want)
	}
	if SplitList("") != nil {
		t.Errorf("SplitList(\"\") = %v, want nil", SplitList(""))
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	set := xedspec.MustFullISA()
	add, err := asmgen.NewInst(variant(t, set, "ADD_R64_R64"),
		asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX))
	if err != nil {
		t.Fatal(err)
	}
	load, err := asmgen.NewInst(variant(t, set, "MOV_R64_M64"),
		asmgen.RegOperand(isa.RCX), asmgen.MemOperand(isa.RSI, 0x2040))
	if err != nil {
		t.Fatal(err)
	}
	shld, err := asmgen.NewInst(variant(t, set, "SHLD_R64_R64_I8"),
		asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RDX), asmgen.ImmOperand(5))
	if err != nil {
		t.Fatal(err)
	}
	code := asmgen.Sequence{add, load, shld}.Repeat(4)

	ws := EncodeSeq(code, pipesim.DividerValues(1))
	if len(ws.Instrs) != 3 {
		t.Fatalf("encoded %d distinct instructions, want 3 (repeat copies must share)", len(ws.Instrs))
	}
	if len(ws.Order) != len(code) {
		t.Fatalf("order length %d, want %d", len(ws.Order), len(code))
	}

	// Through the wire: marshal, unmarshal, decode.
	raw, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var back Seq
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Div != 1 {
		t.Errorf("divider regime %d did not survive the roundtrip", back.Div)
	}
	dec, err := DecodeSeq(set, back)
	if err != nil {
		t.Fatal(err)
	}
	if dec.String() != code.String() {
		t.Errorf("decoded sequence\n%s\nwant\n%s", dec.String(), code.String())
	}
	// The worker-side repeat copies must share instruction instances like the
	// client's (the simulator keys memory dependencies on operand identity).
	if dec[0] != dec[3] || dec[1] != dec[4] {
		t.Error("decoded repeat copies do not share instruction instances")
	}
	// Memory operand address must be preserved exactly.
	if m := dec[1].Ops[1].Mem; m == nil || m.Addr != 0x2040 || m.Base != isa.RSI {
		t.Errorf("memory operand decoded as %+v", dec[1].Ops[1])
	}

	// An identity-order short sequence elides Order.
	if ws := EncodeSeq(asmgen.Sequence{add, load}, 0); ws.Order != nil {
		t.Errorf("identity order not elided: %v", ws.Order)
	}
}

func TestDecodeSeqRejectsBadInput(t *testing.T) {
	set := xedspec.MustFullISA()
	cases := []Seq{
		{Instrs: []Inst{{Name: "NO_SUCH_VARIANT"}}},
		{Instrs: []Inst{{Name: "ADD_R64_R64", Ops: []Op{{Reg: "RAX"}, {Reg: "BOGUS"}}}}},
		{Instrs: []Inst{{Name: "ADD_R64_R64", Ops: []Op{{Reg: "RAX"}}}}},
		{Instrs: []Inst{{Name: "ADD_R64_R64", Ops: []Op{{Reg: "RAX"}, {Reg: "RBX"}}}}, Order: []int{1}},
	}
	for i, ws := range cases {
		if _, err := DecodeSeq(set, ws); err == nil {
			t.Errorf("case %d: DecodeSeq accepted invalid input %+v", i, ws)
		}
	}
}

// fakeWorker is a canned HTTP server speaking the worker protocol. Measurement
// responses carry fabricated counters (Cycles = distinct instructions,
// TotalUops = total order length) so tests can verify delivery.
type fakeWorker struct {
	t           *testing.T
	srv         *httptest.Server
	fingerprint string // serving fingerprint, name@version form
	digest      string
	measures    atomic.Int64
	// intercept, if non-nil, may hijack a measurement request (by 1-based
	// arrival number); returning true means the response was written.
	intercept func(n int64, w http.ResponseWriter) bool
}

func newFakeWorker(t *testing.T, fingerprint, digest string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{t: t, fingerprint: fingerprint, digest: digest}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"serving":{"name":"pipesim","version":"1","fingerprint":%q,"measureDigest":%q}}`,
			fw.fingerprint, fw.digest)
	})
	mux.HandleFunc("POST /v1/measure", func(w http.ResponseWriter, r *http.Request) {
		n := fw.measures.Add(1)
		if fw.intercept != nil && fw.intercept(n, w) {
			return
		}
		fw.answer(w, r)
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fakeWorker) answer(w http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp, err := ServingFingerprint(fw.fingerprint, fw.digest)
	if err != nil {
		fw.t.Error(err)
	}
	resp := MeasureResponse{Backend: "pipesim", Version: "1", Fingerprint: fp}
	for _, raw := range req.Seqs {
		var ws Seq
		if err := json.Unmarshal(raw, &ws); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		total := len(ws.Order)
		if total == 0 {
			total = len(ws.Instrs)
		}
		resp.Counters = append(resp.Counters, Counters{Cycles: len(ws.Instrs), TotalUops: total})
	}
	json.NewEncoder(w).Encode(resp)
}

// configure points the global backend at the given fake workers with
// test-friendly options and registers a cleanup shutdown.
func configure(t *testing.T, opts Options, workers ...*fakeWorker) {
	t.Helper()
	for _, fw := range workers {
		opts.Workers = append(opts.Workers, fw.srv.URL)
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = -1 // keep hedging out of tests that don't ask for it
	}
	if err := Configure(opts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Shutdown)
}

// testSequence builds a short concrete Skylake sequence.
func testSequence(t *testing.T) asmgen.Sequence {
	t.Helper()
	arch, err := uarch.Lookup(uarch.Skylake)
	if err != nil {
		t.Fatal(err)
	}
	set := arch.InstrSet()
	add, err := asmgen.NewInst(variant(t, set, "ADD_R64_R64"),
		asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := asmgen.NewInst(variant(t, set, "SUB_R64_R64"),
		asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RDX))
	if err != nil {
		t.Fatal(err)
	}
	return asmgen.Sequence{add, sub}
}

func newRunner(t *testing.T) measure.Runner {
	t.Helper()
	b, ok := measure.Lookup(BackendName)
	if !ok {
		t.Fatal("remote backend not registered")
	}
	r, err := b.NewRunner(uarch.Skylake)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fleetStats(t *testing.T) measure.FleetStats {
	t.Helper()
	s, ok := theBackend.FleetStats()
	if !ok {
		t.Fatal("no fleet configured")
	}
	return s
}

func TestUnconfiguredBackend(t *testing.T) {
	Shutdown()
	b, ok := measure.Lookup(BackendName)
	if !ok {
		t.Fatal("remote backend not registered")
	}
	if b.Version() != "unconfigured" {
		t.Errorf("unconfigured Version = %q", b.Version())
	}
	if err := theBackend.Ready(); err == nil {
		t.Error("Ready() = nil for an unconfigured backend")
	}
	if _, err := b.NewRunner(uarch.Skylake); err == nil {
		t.Error("NewRunner succeeded on an unconfigured backend")
	}
}

func TestSetupResolvesFlags(t *testing.T) {
	Shutdown()
	if name, err := Setup("", "pipesim"); err != nil || name != "pipesim" {
		t.Errorf("Setup(\"\", pipesim) = %q, %v", name, err)
	}
	if _, err := Setup("", BackendName); err == nil {
		t.Error("Setup accepted -backend remote without a fleet")
	}
	if _, err := Setup("http://localhost:1", "pipesim"); err == nil {
		t.Error("Setup accepted -fleet together with -backend pipesim")
	}
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	name, err := Setup(fw.srv.URL, "")
	if err != nil {
		t.Fatalf("Setup(fleet): %v", err)
	}
	t.Cleanup(Shutdown)
	if name != BackendName {
		t.Errorf("Setup resolved backend %q, want %q", name, BackendName)
	}
	want := "fleet(pipesim@1 cfg=aaaa)"
	if b, _ := measure.Lookup(BackendName); b.Version() != want {
		t.Errorf("configured Version = %q, want %q", b.Version(), want)
	}
}

func TestHandshakeMismatch(t *testing.T) {
	Shutdown()
	a := newFakeWorker(t, "pipesim@1", "aaaa")
	b := newFakeWorker(t, "pipesim@2", "aaaa")
	err := Configure(Options{Workers: []string{a.srv.URL, b.srv.URL}})
	if err == nil {
		Shutdown()
		t.Fatal("Configure accepted a mixed-version fleet")
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("mismatch error = %v", err)
	}

	// Same fingerprint but different measurement configuration: also a hard
	// error.
	c := newFakeWorker(t, "pipesim@1", "bbbb")
	if err := Configure(Options{Workers: []string{a.srv.URL, c.srv.URL}}); err == nil {
		Shutdown()
		t.Fatal("Configure accepted workers with different measurement configs")
	}
}

func TestHandshakeUnreachableWorker(t *testing.T) {
	Shutdown()
	a := newFakeWorker(t, "pipesim@1", "aaaa")
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if err := Configure(Options{Workers: []string{a.srv.URL, dead.URL}}); err == nil {
		Shutdown()
		t.Fatal("Configure accepted an unreachable worker")
	}
}

func TestRunDeliversCounters(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	configure(t, Options{}, fw)
	r := newRunner(t)
	code := testSequence(t)
	c, err := r.Run(code.Repeat(3))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 2 || c.TotalUops != 6 {
		t.Errorf("counters = %+v, want Cycles 2, TotalUops 6", c)
	}
	if s := fleetStats(t); s.Sequences != 1 || s.Batches != 1 {
		t.Errorf("stats = %+v, want 1 sequence in 1 batch", s)
	}
}

func TestRunnerDedupsRepeatMeasurement(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	configure(t, Options{}, fw)
	r := newRunner(t)
	code := testSequence(t)
	c1, err := r.Run(code)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned counters must not poison the cache.
	if c1.PortUops != nil {
		c1.PortUops[0] = 999
	}
	c1.Cycles = 999
	c2, err := r.Run(code)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Cycles != 2 {
		t.Errorf("deduped counters = %+v, want Cycles 2", c2)
	}
	if got := fw.measures.Load(); got != 1 {
		t.Errorf("worker saw %d measure requests, want 1 (second Run must dedup)", got)
	}
	if s := fleetStats(t); s.Deduped != 1 {
		t.Errorf("Deduped = %d, want 1", s.Deduped)
	}

	// A different divider regime is a different measurement.
	r.(*Runner).SetDividerValues(pipesim.DividerValues(1))
	if _, err := r.Run(code); err != nil {
		t.Fatal(err)
	}
	if got := fw.measures.Load(); got != 2 {
		t.Errorf("worker saw %d measure requests, want 2 (regime change must re-measure)", got)
	}
}

func TestTransientFailureRetries(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	fw.intercept = func(n int64, w http.ResponseWriter) bool {
		if n == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return true
		}
		return false
	}
	configure(t, Options{}, fw)
	r := newRunner(t)
	c, err := r.Run(testSequence(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 2 {
		t.Errorf("counters after retry = %+v", c)
	}
	s := fleetStats(t)
	if s.Retries < 1 || s.Errors < 1 {
		t.Errorf("stats after transient failure = %+v, want retries and errors", s)
	}
}

func TestPermanentSequenceErrorNotRetried(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	fw.intercept = func(n int64, w http.ResponseWriter) bool {
		fp, _ := ServingFingerprint(fw.fingerprint, fw.digest)
		json.NewEncoder(w).Encode(MeasureResponse{
			Backend: "pipesim", Version: "1", Fingerprint: fp,
			Counters: make([]Counters, 1), Errs: []string{"unknown instruction variant"},
		})
		return true
	}
	configure(t, Options{}, fw)
	r := newRunner(t)
	_, err := r.Run(testSequence(t))
	if err == nil || !strings.Contains(err.Error(), "unknown instruction variant") {
		t.Fatalf("Run = %v, want the worker's per-sequence error", err)
	}
	if got := fw.measures.Load(); got != 1 {
		t.Errorf("worker saw %d requests, want 1 (per-sequence errors are permanent)", got)
	}
	if s := fleetStats(t); s.Retries != 0 {
		t.Errorf("Retries = %d, want 0", s.Retries)
	}
}

func TestFingerprintDriftIsTransient(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	configure(t, Options{MaxAttempts: 2}, fw)
	// The worker restarts with a different build after the handshake.
	fw.fingerprint = "pipesim@2"
	r := newRunner(t)
	_, err := r.Run(testSequence(t))
	if err == nil {
		t.Fatal("Run succeeded against a drifted worker")
	}
	if !strings.Contains(err.Error(), "drifted") {
		t.Errorf("drift error = %v", err)
	}
}

func TestHedgingDuplicatesStragglers(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	release := make(chan struct{})
	fw.intercept = func(n int64, w http.ResponseWriter) bool {
		if n == 1 {
			<-release // straggle until the hedge copy has been answered
		}
		return false
	}
	defer close(release)
	configure(t, Options{HedgeAfter: 30 * time.Millisecond, InFlight: 2}, fw)
	r := newRunner(t)
	done := make(chan error, 1)
	var c pipesim.Counters
	go func() {
		var err error
		c, err = r.Run(testSequence(t))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedged measurement never completed")
	}
	if c.Cycles != 2 {
		t.Errorf("hedged counters = %+v", c)
	}
	s := fleetStats(t)
	if s.Hedges < 1 || s.HedgeWins < 1 {
		t.Errorf("stats = %+v, want a hedge and a hedge win", s)
	}
}

func TestCallTimeout(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	release := make(chan struct{})
	fw.intercept = func(n int64, w http.ResponseWriter) bool {
		<-release
		return false
	}
	defer close(release)
	configure(t, Options{CallTimeout: 100 * time.Millisecond, InFlight: 1}, fw)
	r := newRunner(t)
	_, err := r.Run(testSequence(t))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Run = %v, want a call timeout", err)
	}
}

func TestClosedFleetFailsFast(t *testing.T) {
	fw := newFakeWorker(t, "pipesim@1", "aaaa")
	configure(t, Options{}, fw)
	r := newRunner(t)
	Shutdown()
	if _, err := r.Run(testSequence(t)); err == nil {
		t.Fatal("Run succeeded on a closed fleet")
	}
}
