package measure

import "sync"

// PoolStats reports how effective a Pool has been at amortizing per-run
// setup across measurements.
type PoolStats struct {
	// Forked counts harnesses created by forking the parent (pool misses).
	Forked int64
	// Reused counts Get calls served from the idle list: a warm
	// machine/harness pair — populated simulator arenas, memoized perf
	// lookups, grown repeat buffers — picked up by a new shard of work.
	Reused int64
	// SeqBuilt and SeqReused count, across every harness that has passed
	// through the pool, how often Measure had to materialize its n-copy
	// repeat sequences versus reusing the ones already in its buffers.
	SeqBuilt  int64
	SeqReused int64
}

// Add returns the element-wise sum of two stat snapshots.
func (s PoolStats) Add(o PoolStats) PoolStats {
	s.Forked += o.Forked
	s.Reused += o.Reused
	s.SeqBuilt += o.SeqBuilt
	s.SeqReused += o.SeqReused
	return s
}

// Pool keeps forked harnesses — and with them their warm simulator machines —
// alive between bursts of parallel work, so batching N variant shards through
// the pool reuses the machines' arenas, memoized perf descriptions and the
// harnesses' materialized repeat buffers instead of rebuilding them for every
// run.
//
// A Pool is safe for concurrent use. The harnesses it hands out are not:
// each Get transfers exclusive ownership to the caller until Put returns it.
type Pool struct {
	parent *Harness

	mu    sync.Mutex
	idle  []*Harness
	stats PoolStats
}

// NewPool returns an empty pool that forks the given parent harness on
// demand. The parent itself is never handed out.
func NewPool(parent *Harness) *Pool { return &Pool{parent: parent} }

// Get returns an exclusively-owned harness: a warm one from the idle list if
// available (reused=true), otherwise a fresh fork of the parent. The caller
// must return it with Put when done; a harness that is never Put back is
// simply garbage collected.
func (p *Pool) Get() (h *Harness, reused bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		h = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.stats.Reused++
		p.mu.Unlock()
		return h, true, nil
	}
	p.mu.Unlock()
	h, err = p.parent.Fork()
	if err != nil {
		return nil, false, err
	}
	p.mu.Lock()
	p.stats.Forked++
	p.mu.Unlock()
	return h, false, nil
}

// Put parks a harness obtained from Get for reuse and folds its
// sequence-reuse counters into the pool statistics. The caller must not use
// the harness afterwards.
func (p *Pool) Put(h *Harness) {
	if h == nil {
		return
	}
	built, reused := h.takeSeqStats()
	p.mu.Lock()
	p.stats.SeqBuilt += built
	p.stats.SeqReused += reused
	p.idle = append(p.idle, h)
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool's effectiveness counters. Sequence
// counters cover harnesses that have been Put back; a harness currently
// checked out contributes its sequence counts at its next Put.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Idle returns how many harnesses are currently parked in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}
