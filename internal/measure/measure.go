// Package measure implements the measurement protocol of the paper
// (Algorithm 2, Section 6.2): the benchmark code is wrapped in state
// save/restore and serializing instructions, run with two different numbers
// of copies of the code under test, and the difference of the two readings is
// divided by the difference in copy count, which removes the constant
// overhead of the serialization and counter reads. The whole procedure is
// repeated and averaged.
//
// On real hardware the protocol runs in kernel space with interrupts
// disabled; here it runs on the pipesim simulator, which plays the role of
// the processor. The fixed overhead of the serializing instructions and
// counter reads is modelled explicitly so that the differencing step of the
// protocol remains meaningful.
//
//uopslint:deterministic
package measure

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// Runner abstracts the execution substrate (the simulated processor). It is
// implemented by *pipesim.Machine.
//
// Run must not retain code after returning: the harness reuses the backing
// array of the sequences it passes in across measurements.
type Runner interface {
	Run(code asmgen.Sequence) (pipesim.Counters, error)
	Arch() *uarch.Arch
}

var _ Runner = (*pipesim.Machine)(nil)

// Result holds per-execution averages of the performance counters for one
// copy of the measured code sequence.
type Result struct {
	Cycles     float64
	PortUops   []float64
	TotalUops  float64
	IssuedUops float64
	ElimUops   float64
}

// UopsOnPorts sums the µops dispatched to the given ports.
func (r Result) UopsOnPorts(ports []int) float64 {
	sum := 0.0
	for _, p := range ports {
		if p >= 0 && p < len(r.PortUops) {
			sum += r.PortUops[p]
		}
	}
	return sum
}

// Config controls the measurement protocol.
type Config struct {
	// ShortCopies and LongCopies are the two copy counts whose difference
	// cancels the constant overhead. The paper uses 10 and 110; the
	// noise-free simulator allows smaller values, which the default config
	// uses to keep full-ISA runs fast.
	ShortCopies int
	LongCopies  int
	// Repetitions is the number of times the protocol is repeated and
	// averaged (100 in the paper).
	Repetitions int
	// Warmup enables a discarded warm-up run before the measurements.
	Warmup bool
	// OverheadCycles and OverheadUops model the serializing instructions and
	// performance-counter reads included in each raw reading.
	OverheadCycles int
	OverheadUops   int
}

// DefaultConfig returns the configuration used for full-ISA characterization
// runs on the simulator.
func DefaultConfig() Config {
	return Config{ShortCopies: 2, LongCopies: 12, Repetitions: 1, Warmup: true,
		OverheadCycles: 42, OverheadUops: 8}
}

// PaperConfig returns the copy counts and repetition count used by the paper
// on real hardware (n=10 and n=110, 100 repetitions).
func PaperConfig() Config {
	return Config{ShortCopies: 10, LongCopies: 110, Repetitions: 100, Warmup: true,
		OverheadCycles: 42, OverheadUops: 8}
}

// RunnerForker is implemented by runners that can create an independent copy
// of themselves. Forked runners share no mutable state with their parent and
// can therefore run on different goroutines without synchronization, which is
// what the sharded characterization scheduler relies on.
type RunnerForker interface {
	ForkRunner() Runner
}

// Harness runs the measurement protocol on a Runner.
//
// A Harness reuses internal sequence buffers across measurements and is
// therefore not safe for concurrent use; Fork creates independent harnesses
// for concurrent workers.
type Harness struct {
	runner Runner
	cfg    Config

	// shortBuf and longBuf hold the materialized n-copy sequences for the
	// current measurement. The protocol runs each of them once per
	// repetition (plus warmup), so they are built at most once per Measure
	// call and their backing arrays are reused across calls; when the same
	// code sequence is measured again back to back (e.g. re-measuring a
	// divider variant under a different operand-value regime), the buffers
	// are reused outright.
	shortBuf asmgen.Sequence
	longBuf  asmgen.Sequence
	// bufLen is the length of the code sequence the buffers currently hold
	// (0 = none); seqBuilt/seqReused count rebuilds vs reuses for
	// PoolStats.
	bufLen    int
	seqBuilt  int64
	seqReused int64
}

// New returns a harness with the default configuration.
func New(runner Runner) *Harness { return NewWithConfig(runner, DefaultConfig()) }

// NewWithConfig returns a harness with an explicit configuration.
func NewWithConfig(runner Runner, cfg Config) *Harness {
	if cfg.ShortCopies <= 0 {
		cfg.ShortCopies = 2
	}
	if cfg.LongCopies <= cfg.ShortCopies {
		cfg.LongCopies = cfg.ShortCopies + 10
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 1
	}
	return &Harness{runner: runner, cfg: cfg}
}

// Arch returns the microarchitecture being measured.
func (h *Harness) Arch() *uarch.Arch { return h.runner.Arch() }

// Runner returns the underlying execution substrate (e.g. to switch the
// operand-value regime for divider-based instructions).
func (h *Harness) Runner() Runner { return h.runner }

// Config returns the harness configuration.
func (h *Harness) Config() Config { return h.cfg }

// Fork returns a Harness with the same configuration driving an independent
// copy of the runner, for use on another goroutine. It fails if the runner
// cannot be forked.
func (h *Harness) Fork() (*Harness, error) {
	switch r := h.runner.(type) {
	case RunnerForker:
		return NewWithConfig(r.ForkRunner(), h.cfg), nil
	case *pipesim.Machine:
		return NewWithConfig(r.Clone(), h.cfg), nil
	}
	return nil, fmt.Errorf("measure: runner %T cannot be forked", h.runner)
}

// Measure runs the protocol on the given code sequence and returns per-copy
// averages: the counters for executing the sequence once, with harness
// overhead removed.
func (h *Harness) Measure(code asmgen.Sequence) (Result, error) {
	if len(code) == 0 {
		return Result{}, fmt.Errorf("measure: empty code sequence")
	}
	numPorts := h.runner.Arch().NumPorts()
	acc := Result{PortUops: make([]float64, numPorts)}

	// Materialize the two copy-count sequences once; every repetition (and
	// the warmup) runs the same code, so re-concatenating it per run would
	// only produce garbage for identical inputs. If the buffers already hold
	// exactly this code (same instruction instances, element for element),
	// skip even that: repeating the same pointers again would write back the
	// identical slice contents.
	if h.bufLen == len(code) && len(h.shortBuf) == len(code)*h.cfg.ShortCopies &&
		samePrefix(h.shortBuf, code) {
		h.seqReused++
	} else {
		h.shortBuf = repeatInto(h.shortBuf[:0], code, h.cfg.ShortCopies)
		h.longBuf = repeatInto(h.longBuf[:0], code, h.cfg.LongCopies)
		h.bufLen = len(code)
		h.seqBuilt++
	}

	if h.cfg.Warmup {
		if _, err := h.rawRun(h.shortBuf); err != nil {
			return Result{}, err
		}
	}
	for rep := 0; rep < h.cfg.Repetitions; rep++ {
		short, err := h.rawRun(h.shortBuf)
		if err != nil {
			return Result{}, err
		}
		long, err := h.rawRun(h.longBuf)
		if err != nil {
			return Result{}, err
		}
		diff := long.Sub(short)
		scale := float64(h.cfg.LongCopies - h.cfg.ShortCopies)
		acc.Cycles += float64(diff.Cycles) / scale
		acc.TotalUops += float64(diff.TotalUops) / scale
		acc.IssuedUops += float64(diff.IssuedUops) / scale
		acc.ElimUops += float64(diff.ElimUops) / scale
		for p := 0; p < numPorts && p < len(diff.PortUops); p++ {
			acc.PortUops[p] += float64(diff.PortUops[p]) / scale
		}
	}
	inv := 1.0 / float64(h.cfg.Repetitions)
	acc.Cycles *= inv
	acc.TotalUops *= inv
	acc.IssuedUops *= inv
	acc.ElimUops *= inv
	for p := range acc.PortUops {
		acc.PortUops[p] *= inv
	}
	return acc, nil
}

// repeatInto appends n copies of code to dst and returns it, reusing dst's
// backing array (the allocation-free analogue of code.Repeat(n)).
func repeatInto(dst, code asmgen.Sequence, n int) asmgen.Sequence {
	for i := 0; i < n; i++ {
		dst = append(dst, code...)
	}
	return dst
}

// samePrefix reports whether buf starts with exactly the instruction
// instances of code. Pointer identity is the right comparison: the buffers
// are built from the caller's instruction pointers, and an instruction
// mutated in place is the same pointer with the same (mutated) contents
// either way.
func samePrefix(buf, code asmgen.Sequence) bool {
	if len(buf) < len(code) {
		return false
	}
	for i, in := range code {
		if buf[i] != in {
			return false
		}
	}
	return true
}

// takeSeqStats returns and resets the harness's sequence-reuse counters
// (called by Pool.Put, which owns the harness at that point).
func (h *Harness) takeSeqStats() (built, reused int64) {
	built, reused = h.seqBuilt, h.seqReused
	h.seqBuilt, h.seqReused = 0, 0
	return built, reused
}

// rawRun executes an already-materialized n-copy sequence and adds the
// modelled measurement overhead (Algorithm 2 lines 3-9: serializing
// instructions and counter reads).
func (h *Harness) rawRun(code asmgen.Sequence) (pipesim.Counters, error) {
	c, err := h.runner.Run(code)
	if err != nil {
		return pipesim.Counters{}, err
	}
	c.Cycles += h.cfg.OverheadCycles
	c.TotalUops += h.cfg.OverheadUops
	c.IssuedUops += h.cfg.OverheadUops
	// The counter-read and serialization µops execute on the general ALU
	// ports; spread them so port readings also contain overhead that the
	// differencing must remove.
	for i := 0; i < h.cfg.OverheadUops && len(c.PortUops) > 0; i++ {
		c.PortUops[i%2]++
	}
	return c, nil
}

// MeasureThroughputPerInstr measures the average cycles per instruction for a
// sequence of independent instruction instances: the per-copy cycle count
// divided by the sequence length (Definition 2 in the paper).
func (h *Harness) MeasureThroughputPerInstr(code asmgen.Sequence) (float64, error) {
	res, err := h.Measure(code)
	if err != nil {
		return 0, err
	}
	if len(code) == 0 {
		return 0, fmt.Errorf("measure: empty code sequence")
	}
	return res.Cycles / float64(len(code)), nil
}
