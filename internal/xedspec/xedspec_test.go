package xedspec

import (
	"strings"
	"testing"
	"testing/quick"

	"uopsinfo/internal/isa"
)

func TestGenerateProducesLargeSet(t *testing.T) {
	entries := Generate()
	if len(entries) < 1500 {
		t.Fatalf("generated only %d variants, expected well over 1500", len(entries))
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.Name == "" || e.Mnemonic == "" || e.Extension == "" {
			t.Fatalf("incomplete entry: %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate variant name %s", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestGenerateContainsPaperCaseStudyVariants(t *testing.T) {
	set := MustFullISA()
	required := []string{
		"AESDEC_XMM_XMM", "AESDEC_XMM_M128", "AESENC_XMM_XMM",
		"SHLD_R64_R64_I8", "SHLD_R32_R32_I8",
		"MOVQ2DQ_XMM_MM", "MOVDQ2Q_MM_XMM",
		"PBLENDVB_XMM_XMM", "ADC_R64_R64", "SBB_R64_R64",
		"BSWAP_R32", "BSWAP_R64", "CMC", "SAHF",
		"VMINPS_XMM_XMM_XMM", "VHADDPD_XMM_XMM_XMM",
		"PCMPGTB_XMM_XMM", "PCMPGTQ_XMM_XMM",
		"MOVSX_R64_R16", "PSHUFD_XMM_XMM_I8", "MOVSHDUP_XMM_XMM",
		"TEST_R64_R64", "XOR_R64_R64", "MOV_R64_M64", "MOV_M64_R64",
		"DIV_R64", "IDIV_R32", "IMUL_R64_R64",
	}
	for _, name := range required {
		if set.Lookup(name) == nil {
			t.Errorf("required variant %s missing from the generated instruction set", name)
		}
	}
}

func TestGeneratedAttributesAreConsistent(t *testing.T) {
	set := MustFullISA()
	for _, in := range set.Instrs() {
		// Zero idioms must have at least two explicit register operands of
		// the same class.
		if in.MayZeroIdiom {
			regs := 0
			for _, op := range in.ExplicitOperands() {
				if op.Kind == isa.OpReg {
					regs++
				}
			}
			if regs < 2 {
				t.Errorf("%s is marked as a zero idiom but has %d explicit register operands", in.Name, regs)
			}
		}
		// Divider instructions must read something.
		if in.UsesDivider && len(in.SourceOperands()) == 0 {
			t.Errorf("%s uses the divider but has no source operands", in.Name)
		}
		// Every operand that is written must be a register, memory or flags
		// operand (immediates cannot be destinations).
		for _, op := range in.Operands {
			if op.Kind == isa.OpImm && op.Write {
				t.Errorf("%s has a written immediate operand", in.Name)
			}
		}
		// Memory operands of LEA are neither read nor written; all other
		// memory operands must be accessed.
		for _, op := range in.Operands {
			if op.Kind == isa.OpMem && in.Mnemonic != "LEA" && !op.Read && !op.Write {
				t.Errorf("%s has a memory operand that is neither read nor written", in.Name)
			}
		}
	}
}

func TestDatafileRoundTrip(t *testing.T) {
	entries := Generate()
	text := FormatDatafile(entries)
	parsed, err := ParseDatafile(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(parsed), len(entries))
	}
	// Compare via the ISA conversion (the canonical model).
	orig, err := ToISA(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToISA(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != back.Len() {
		t.Fatalf("ISA conversion count mismatch: %d != %d", orig.Len(), back.Len())
	}
	for _, in := range orig.Instrs() {
		b := back.Lookup(in.Name)
		if b == nil {
			t.Errorf("variant %s missing after datafile round trip", in.Name)
			continue
		}
		if b.Mnemonic != in.Mnemonic || b.Extension != in.Extension || len(b.Operands) != len(in.Operands) {
			t.Errorf("variant %s differs after datafile round trip", in.Name)
		}
	}
}

func TestFromISARoundTrip(t *testing.T) {
	set := MustFullISA()
	entries := FromISA(set)
	back, err := ToISA(entries)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("FromISA/ToISA round trip lost variants: %d != %d", back.Len(), set.Len())
	}
	for _, in := range set.Instrs() {
		b := back.Lookup(in.Name)
		if b == nil {
			t.Fatalf("variant %s lost", in.Name)
		}
		if b.UsesDivider != in.UsesDivider || b.MayZeroIdiom != in.MayZeroIdiom ||
			b.IsSystem != in.IsSystem || b.HasLock != in.HasLock || b.HasRep != in.HasRep {
			t.Errorf("variant %s attributes differ after round trip", in.Name)
		}
	}
}

func TestParseDatafileErrors(t *testing.T) {
	cases := []string{
		"asm: ADD\n",                         // line outside INSTR block
		"INSTR A\nINSTR B\nEND\n",            // nested INSTR
		"END\n",                              // END without INSTR
		"INSTR A\nasm: ADD\n",                // unterminated block
		"INSTR A\n  op x\nEND\n",             // operand line too short
		"INSTR A\n  op x REG width=z\nEND\n", // bad width
		"INSTR A\n  weird line\nEND\n",       // unknown line
	}
	for _, text := range cases {
		if _, err := ParseDatafile(text); err == nil {
			t.Errorf("ParseDatafile accepted invalid input %q", text)
		}
	}
}

func TestVariantNamingConvention(t *testing.T) {
	set := MustFullISA()
	add := set.Lookup("ADD_R64_M64")
	if add == nil {
		t.Fatal("ADD_R64_M64 missing")
	}
	expl := add.ExplicitOperands()
	if len(expl) != 2 || expl[0].Class != isa.ClassGPR64 || expl[1].Kind != isa.OpMem {
		t.Errorf("ADD_R64_M64 has unexpected operand shape: %v", expl)
	}
	lockAdd := set.Lookup("LOCK_ADD_M64_R64")
	if lockAdd == nil || !lockAdd.HasLock {
		t.Error("LOCK_ADD_M64_R64 missing or not marked with the LOCK attribute")
	}
	repMovs := set.Lookup("REP_MOVSB")
	if repMovs == nil || !repMovs.HasRep {
		t.Error("REP_MOVSB missing or not marked with the REP attribute")
	}
}

// Property: formatting and re-parsing a single entry preserves its operand
// count, attributes and naming for a randomly selected subset of the
// generated entries.
func TestEntryFormatParseProperty(t *testing.T) {
	entries := Generate()
	f := func(idx uint16) bool {
		e := entries[int(idx)%len(entries)]
		parsed, err := ParseDatafile(e.Format())
		if err != nil || len(parsed) != 1 {
			return false
		}
		p := parsed[0]
		if p.Name != e.Name || p.Mnemonic != e.Mnemonic || p.Extension != e.Extension {
			return false
		}
		if len(p.Operands) != len(e.Operands) || len(p.Attrs) != len(e.Attrs) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDatafileHasHeaderComment(t *testing.T) {
	text := Datafile()
	if !strings.HasPrefix(text, "#") {
		t.Error("datafile should start with a comment header")
	}
	if !strings.Contains(text, "INSTR ADD_R64_R64") {
		t.Error("datafile should contain ADD_R64_R64")
	}
}
