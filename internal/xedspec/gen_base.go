package xedspec

// genBase emits the scalar integer (non-vector) part of the instruction set:
// the BASE, BMI, ADX and SYSTEM extensions.
func genBase(b *Builder) {
	genALU(b)
	genMov(b)
	genShifts(b)
	genUnary(b)
	genMulDiv(b)
	genCMOVSet(b)
	genBitOps(b)
	genStack(b)
	genFlagsOps(b)
	genMisc(b)
	genBMI(b)
	genADX(b)
	genLockRep(b)
	genSystem(b)
}

var gprWidths = []int{8, 16, 32, 64}

// genALU emits the two-operand arithmetic/logic instructions in all their
// register/memory/immediate forms.
func genALU(b *Builder) {
	type aluOp struct {
		mnemonic  string
		readFlags string // flags read ("" for none)
		zeroIdiom bool   // reg-reg form with equal registers is a zero idiom
		writesDst bool   // false for CMP/TEST: only flags are written
	}
	ops := []aluOp{
		{"ADD", "", false, true},
		{"SUB", "", true, true},
		{"AND", "", false, true},
		{"OR", "", false, true},
		{"XOR", "", true, true},
		{"ADC", flagsCF, false, true},
		{"SBB", flagsCF, false, true},
		{"CMP", "", false, false},
	}
	for _, op := range ops {
		for _, w := range gprWidths {
			cls := gprClass(w)
			immW := w
			if immW == 64 {
				immW = 32 // 64-bit ALU forms take a sign-extended 32-bit immediate
			}
			var at []string
			if op.zeroIdiom {
				at = attrs(AttrZeroIdiom)
			}
			fl := flags(op.readFlags, flagsAll)
			// Register-register.
			b.instr(op.mnemonic, "BASE", "INT", at,
				reg(cls, true, op.writesDst), reg(cls, true, false), fl)
			// Register-memory (load form).
			b.instr(op.mnemonic, "BASE", "INT", nil,
				reg(cls, true, op.writesDst), mem(w, true, false), fl)
			// Memory-register (store form).
			b.instr(op.mnemonic, "BASE", "INT", nil,
				mem(w, true, op.writesDst), reg(cls, true, false), fl)
			// Register-immediate.
			b.instr(op.mnemonic, "BASE", "INT", nil,
				reg(cls, true, op.writesDst), imm(immW), fl)
			// Memory-immediate.
			b.instr(op.mnemonic, "BASE", "INT", nil,
				mem(w, true, op.writesDst), imm(immW), fl)
		}
	}
	// TEST: reads both operands, writes flags (all but AF architecturally
	// defined; AF is undefined, we model it as written).
	for _, w := range gprWidths {
		cls := gprClass(w)
		immW := w
		if immW == 64 {
			immW = 32
		}
		fl := flags("", flagsAll)
		b.instr("TEST", "BASE", "INT", nil, reg(cls, true, false), reg(cls, true, false), fl)
		b.instr("TEST", "BASE", "INT", nil, mem(w, true, false), reg(cls, true, false), fl)
		b.instr("TEST", "BASE", "INT", nil, reg(cls, true, false), imm(immW), fl)
		b.instr("TEST", "BASE", "INT", nil, mem(w, true, false), imm(immW), fl)
	}
}

// genMov emits MOV, MOVSX, MOVZX, MOVSXD and MOVBE variants.
func genMov(b *Builder) {
	for _, w := range gprWidths {
		cls := gprClass(w)
		immW := w
		if immW == 64 {
			immW = 32
		}
		moveElim := []string(nil)
		if w == 32 || w == 64 {
			moveElim = attrs(AttrMoveElim)
		}
		b.instr("MOV", "BASE", "INT", moveElim, reg(cls, false, true), reg(cls, true, false))
		b.instr("MOV", "BASE", "INT", nil, reg(cls, false, true), mem(w, true, false))
		b.instr("MOV", "BASE", "INT", nil, mem(w, false, true), reg(cls, true, false))
		b.instr("MOV", "BASE", "INT", nil, reg(cls, false, true), imm(immW))
		b.instr("MOV", "BASE", "INT", nil, mem(w, false, true), imm(immW))
	}
	// Sign/zero extension between different widths. MOVSX is the latency
	// chain instruction of choice for general-purpose registers (Section
	// 5.2.1): it is never eliminated and avoids partial-register stalls.
	type extForm struct{ dst, src int }
	sxForms := []extForm{{16, 8}, {32, 8}, {32, 16}, {64, 8}, {64, 16}}
	for _, f := range sxForms {
		b.instr("MOVSX", "BASE", "INT", nil, reg(gprClass(f.dst), false, true), reg(gprClass(f.src), true, false))
		b.instr("MOVSX", "BASE", "INT", nil, reg(gprClass(f.dst), false, true), mem(f.src, true, false))
		b.instr("MOVZX", "BASE", "INT", nil, reg(gprClass(f.dst), false, true), reg(gprClass(f.src), true, false))
		b.instr("MOVZX", "BASE", "INT", nil, reg(gprClass(f.dst), false, true), mem(f.src, true, false))
	}
	b.instr("MOVSXD", "BASE", "INT", nil, reg("GPR64", false, true), reg("GPR32", true, false))
	b.instr("MOVSXD", "BASE", "INT", nil, reg("GPR64", false, true), mem(32, true, false))
	// MOVBE (load/store with byte swap); introduced on Haswell desktop parts.
	for _, w := range []int{16, 32, 64} {
		cls := gprClass(w)
		b.instr("MOVBE", "MOVBE", "INT", nil, reg(cls, false, true), mem(w, true, false))
		b.instr("MOVBE", "MOVBE", "INT", nil, mem(w, false, true), reg(cls, true, false))
	}
}

// genShifts emits shift, rotate and double-precision shift variants. The
// immediate and CL-count forms conditionally preserve flags, which makes the
// flags an implicit input operand as well as an output (the source of the
// multi-latency behaviour discussed in Section 7.3.5).
func genShifts(b *Builder) {
	shifts := []struct {
		mnemonic   string
		readsFlags bool
	}{
		{"SHL", true}, {"SHR", true}, {"SAR", true},
		{"ROL", true}, {"ROR", true},
		{"RCL", true}, {"RCR", true},
	}
	for _, s := range shifts {
		rf := ""
		if s.readsFlags {
			rf = flagsAll
		}
		for _, w := range gprWidths {
			cls := gprClass(w)
			fl := flags(rf, flagsCFOF)
			// Shift by immediate.
			b.instr(s.mnemonic, "BASE", "INT", nil, reg(cls, true, true), imm(8), fl)
			b.instr(s.mnemonic, "BASE", "INT", nil, mem(w, true, true), imm(8), fl)
			// Shift by CL (implicit register count).
			b.instr(s.mnemonic, "BASE", "INT", nil, reg(cls, true, true),
				impReg("CL", "GPR8", true, false), fl)
			b.instr(s.mnemonic, "BASE", "INT", nil, mem(w, true, true),
				impReg("CL", "GPR8", true, false), fl)
		}
	}
	// Double-precision shifts (Section 7.3.2 case study). Unlike the plain
	// shifts they do not preserve flags conditionally, so the flags are a
	// pure output.
	for _, m := range []string{"SHLD", "SHRD"} {
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags("", flagsAll)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false), imm(8), fl)
			b.instr(m, "BASE", "INT", nil, mem(w, true, true), reg(cls, true, false), imm(8), fl)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false),
				impReg("CL", "GPR8", true, false), fl)
		}
	}
}

// genUnary emits single-operand read-modify-write instructions.
func genUnary(b *Builder) {
	for _, m := range []string{"INC", "DEC"} {
		for _, w := range gprWidths {
			fl := flags("", flagsNoCF) // INC/DEC preserve CF
			b.instr(m, "BASE", "INT", nil, reg(gprClass(w), true, true), fl)
			b.instr(m, "BASE", "INT", nil, mem(w, true, true), fl)
		}
	}
	for _, m := range []string{"NEG"} {
		for _, w := range gprWidths {
			fl := flags("", flagsAll)
			b.instr(m, "BASE", "INT", nil, reg(gprClass(w), true, true), fl)
			b.instr(m, "BASE", "INT", nil, mem(w, true, true), fl)
		}
	}
	for _, w := range gprWidths {
		b.instr("NOT", "BASE", "INT", nil, reg(gprClass(w), true, true))
		b.instr("NOT", "BASE", "INT", nil, mem(w, true, true))
	}
	// LEA: pure address generation, no flags.
	b.instr("LEA", "BASE", "INT", nil, reg("GPR32", false, true), mem(32, false, false))
	b.instr("LEA", "BASE", "INT", nil, reg("GPR64", false, true), mem(64, false, false))
}

// genMulDiv emits multiplication and division variants. The divisions use the
// non-fully-pipelined divider units and are handled specially by the latency
// and throughput algorithms (Section 5.2.5).
func genMulDiv(b *Builder) {
	// One-operand forms with implicit RAX/RDX.
	for _, m := range []string{"MUL", "IMUL"} {
		for _, w := range gprWidths {
			fl := flags("", flagsCFOF)
			rax := impReg("RAX", "GPR64", true, true)
			rdx := impReg("RDX", "GPR64", false, true)
			if w == 8 {
				rdx = impReg("RDX", "GPR64", false, false)
			}
			b.instr(m, "BASE", "INT", nil, reg(gprClass(w), true, false), rax, rdx, fl)
			b.instr(m, "BASE", "INT", nil, mem(w, true, false), rax, rdx, fl)
		}
	}
	// Two- and three-operand IMUL.
	for _, w := range []int{16, 32, 64} {
		cls := gprClass(w)
		fl := flags("", flagsCFOF)
		immW := w
		if immW == 64 {
			immW = 32
		}
		b.instr("IMUL", "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false), fl)
		b.instr("IMUL", "BASE", "INT", nil, reg(cls, true, true), mem(w, true, false), fl)
		b.instr("IMUL", "BASE", "INT", nil, reg(cls, false, true), reg(cls, true, false), imm(immW), fl)
		b.instr("IMUL", "BASE", "INT", nil, reg(cls, false, true), mem(w, true, false), imm(immW), fl)
	}
	// Divisions.
	for _, m := range []string{"DIV", "IDIV"} {
		for _, w := range gprWidths {
			fl := flags("", flagsAll)
			rax := impReg("RAX", "GPR64", true, true)
			rdx := impReg("RDX", "GPR64", true, true)
			if w == 8 {
				rdx = impReg("RDX", "GPR64", false, false)
			}
			b.instr(m, "BASE", "INT", attrs(AttrDivider), reg(gprClass(w), true, false), rax, rdx, fl)
			b.instr(m, "BASE", "INT", attrs(AttrDivider), mem(w, true, false), rax, rdx, fl)
		}
	}
}

// conditionCodes are the condition-code suffixes used by CMOVcc, SETcc and Jcc,
// together with the flags each condition reads.
var conditionCodes = []struct {
	suffix string
	reads  string
}{
	{"O", "OF"}, {"NO", "OF"},
	{"B", "CF"}, {"NB", "CF"},
	{"Z", "ZF"}, {"NZ", "ZF"},
	{"BE", "CF+ZF"}, {"NBE", "CF+ZF"},
	{"S", "SF"}, {"NS", "SF"},
	{"P", "PF"}, {"NP", "PF"},
	{"L", "SF+OF"}, {"NL", "SF+OF"},
	{"LE", "SF+ZF+OF"}, {"NLE", "SF+ZF+OF"},
}

// genCMOVSet emits conditional moves, conditional sets and conditional jumps.
func genCMOVSet(b *Builder) {
	for _, cc := range conditionCodes {
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags(cc.reads, "")
			b.instr("CMOV"+cc.suffix, "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false), fl)
			b.instr("CMOV"+cc.suffix, "BASE", "INT", nil, reg(cls, true, true), mem(w, true, false), fl)
		}
		fl := flags(cc.reads, "")
		b.instr("SET"+cc.suffix, "BASE", "INT", nil, reg("GPR8", false, true), fl)
		b.instr("SET"+cc.suffix, "BASE", "INT", nil, mem(8, false, true), fl)
		b.instr("J"+cc.suffix, "BASE", "INT", attrs(AttrControlFlow), imm(32), flags(cc.reads, ""))
	}
	b.instr("JMP", "BASE", "INT", attrs(AttrControlFlow), imm(32))
	b.instr("JMP", "BASE", "INT", attrs(AttrControlFlow), reg("GPR64", true, false))
	b.instr("CALL", "BASE", "INT", attrs(AttrControlFlow), imm(32), impReg("RSP", "GPR64", true, true))
	b.instr("RET", "BASE", "INT", attrs(AttrControlFlow), impReg("RSP", "GPR64", true, true))
}

// genBitOps emits bit-scan, bit-test, population-count and byte-swap variants.
func genBitOps(b *Builder) {
	for _, m := range []string{"BSF", "BSR"} {
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags("", flagsZF)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false), fl)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, true), mem(w, true, false), fl)
		}
	}
	for _, m := range []string{"POPCNT"} {
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags("", flagsAll)
			b.instr(m, "SSE4.2", "INT", nil, reg(cls, false, true), reg(cls, true, false), fl)
			b.instr(m, "SSE4.2", "INT", nil, reg(cls, false, true), mem(w, true, false), fl)
		}
	}
	for _, m := range []string{"LZCNT", "TZCNT"} {
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags("", "CF+ZF")
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), fl)
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), mem(w, true, false), fl)
		}
	}
	for _, m := range []string{"BT", "BTS", "BTR", "BTC"} {
		write := m != "BT"
		for _, w := range []int{16, 32, 64} {
			cls := gprClass(w)
			fl := flags("", flagsCF)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, write), reg(cls, true, false), fl)
			b.instr(m, "BASE", "INT", nil, reg(cls, true, write), imm(8), fl)
		}
	}
	// BSWAP: the 32-bit and 64-bit variants have a different µop count on
	// Skylake (Section 7.2).
	b.instr("BSWAP", "BASE", "INT", nil, reg("GPR32", true, true))
	b.instr("BSWAP", "BASE", "INT", nil, reg("GPR64", true, true))
	// Exchange and exchange-add (multi-latency case studies, Section 7.3.5).
	for _, w := range gprWidths {
		cls := gprClass(w)
		b.instr("XCHG", "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, true))
		b.instr("XCHG", "BASE", "INT", attrs(AttrLock), mem(w, true, true), reg(cls, true, true))
		b.instr("XADD", "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, true), flags("", flagsAll))
		b.instr("CMPXCHG", "BASE", "INT", nil, reg(cls, true, true), reg(cls, true, false),
			impReg("RAX", "GPR64", true, true), flags("", flagsAll))
	}
}

// genStack emits push/pop variants.
func genStack(b *Builder) {
	rsp := func(read, write bool) EntryOperand { return impReg("RSP", "GPR64", read, write) }
	for _, w := range []int{16, 64} {
		cls := gprClass(w)
		b.instr("PUSH", "BASE", "INT", nil, reg(cls, true, false), rsp(true, true))
		b.instr("POP", "BASE", "INT", nil, reg(cls, false, true), rsp(true, true))
	}
	b.instr("PUSH", "BASE", "INT", nil, imm(32), rsp(true, true))
	b.instr("PUSH", "BASE", "INT", nil, mem(64, true, false), rsp(true, true))
	b.instr("POP", "BASE", "INT", nil, mem(64, false, true), rsp(true, true))
}

// genFlagsOps emits instructions that manipulate the status flags directly.
func genFlagsOps(b *Builder) {
	b.instr("CMC", "BASE", "INT", nil, flags(flagsCF, flagsCF))
	b.instr("CLC", "BASE", "INT", nil, flags("", flagsCF))
	b.instr("STC", "BASE", "INT", nil, flags("", flagsCF))
	b.instr("LAHF", "BASE", "INT", nil, impReg("AL", "GPR8", false, true), flags(flagsAll, ""))
	b.instr("SAHF", "BASE", "INT", nil, impReg("AL", "GPR8", true, false), flags("", flagsAll))
	// Sign-extension of the accumulator.
	b.instr("CBW", "BASE", "INT", nil, impReg("RAX", "GPR64", true, true))
	b.instr("CWDE", "BASE", "INT", nil, impReg("RAX", "GPR64", true, true))
	b.instr("CDQE", "BASE", "INT", nil, impReg("RAX", "GPR64", true, true))
	b.instr("CWD", "BASE", "INT", nil, impReg("RAX", "GPR64", true, false), impReg("RDX", "GPR64", false, true))
	b.instr("CDQ", "BASE", "INT", nil, impReg("RAX", "GPR64", true, false), impReg("RDX", "GPR64", false, true))
	b.instr("CQO", "BASE", "INT", nil, impReg("RAX", "GPR64", true, false), impReg("RDX", "GPR64", false, true))
}

// genMisc emits NOPs, PAUSE and miscellaneous instructions.
func genMisc(b *Builder) {
	b.instr("NOP", "BASE", "INT", attrs(AttrNOP))
	e := b.instr("NOP", "BASE", "INT", attrs(AttrNOP), reg("GPR32", true, false))
	e.Name = "NOP_R32" // multi-byte NOP with a register operand form
	b.instr("PAUSE", "BASE", "INT", nil)
	b.instr("MFENCE", "BASE", "INT", attrs(AttrSerializing))
	b.instr("LFENCE", "BASE", "INT", attrs(AttrSerializing))
	b.instr("SFENCE", "BASE", "INT", attrs(AttrSerializing))
}

// genBMI emits the BMI1/BMI2 instruction groups (available from Haswell on).
func genBMI(b *Builder) {
	for _, w := range []int{32, 64} {
		cls := gprClass(w)
		fl := flags("", flagsAll)
		b.instr("ANDN", "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), reg(cls, true, false), fl)
		b.instr("BEXTR", "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), reg(cls, true, false), fl)
		b.instr("BZHI", "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), reg(cls, true, false), fl)
		for _, m := range []string{"BLSI", "BLSMSK", "BLSR"} {
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), fl)
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), mem(w, true, false), fl)
		}
		for _, m := range []string{"PDEP", "PEXT"} {
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), reg(cls, true, false))
		}
		b.instr("RORX", "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), imm(8))
		for _, m := range []string{"SARX", "SHLX", "SHRX"} {
			b.instr(m, "BMI", "INT", nil, reg(cls, false, true), reg(cls, true, false), reg(cls, true, false))
		}
		b.instr("MULX", "BMI", "INT", nil, reg(cls, false, true), reg(cls, false, true), reg(cls, true, false),
			impReg("RDX", "GPR64", true, false))
	}
}

// genADX emits the ADX carry-chain extension (available from Broadwell on).
func genADX(b *Builder) {
	for _, w := range []int{32, 64} {
		cls := gprClass(w)
		b.instr("ADCX", "ADX", "INT", nil, reg(cls, true, true), reg(cls, true, false), flags(flagsCF, flagsCF))
		b.instr("ADCX", "ADX", "INT", nil, reg(cls, true, true), mem(w, true, false), flags(flagsCF, flagsCF))
		b.instr("ADOX", "ADX", "INT", nil, reg(cls, true, true), reg(cls, true, false), flags("OF", "OF"))
		b.instr("ADOX", "ADX", "INT", nil, reg(cls, true, true), mem(w, true, false), flags("OF", "OF"))
	}
}

// genLockRep emits a representative set of LOCK-prefixed and REP-prefixed
// instructions. The paper excludes these from its IACA µop-count comparison
// because their µop counts are variable (REP) or disagree systematically
// (LOCK); we include them so the comparison logic has something to exclude.
func genLockRep(b *Builder) {
	for _, m := range []string{"ADD", "SUB", "AND", "OR", "XOR", "INC", "DEC"} {
		unary := m == "INC" || m == "DEC"
		for _, w := range []int{32, 64} {
			fl := flags("", flagsAll)
			if unary {
				b.instr(m, "BASE", "INT", attrs(AttrLock), mem(w, true, true), fl)
			} else {
				b.instr(m, "BASE", "INT", attrs(AttrLock), mem(w, true, true), reg(gprClass(w), true, false), fl)
			}
		}
	}
	rsi := impReg("RSI", "GPR64", true, true)
	rdi := impReg("RDI", "GPR64", true, true)
	rcx := impReg("RCX", "GPR64", true, true)
	rax := impReg("RAX", "GPR64", true, false)
	b.instr("MOVSB", "BASE", "INT", attrs(AttrRep), rsi, rdi, rcx)
	b.instr("STOSB", "BASE", "INT", attrs(AttrRep), rdi, rcx, rax)
	b.instr("LODSB", "BASE", "INT", attrs(AttrRep), rsi, rcx, impReg("RAX", "GPR64", false, true))
	b.instr("CMPSB", "BASE", "INT", attrs(AttrRep), rsi, rdi, rcx, flags("", flagsAll))
	b.instr("SCASB", "BASE", "INT", attrs(AttrRep), rdi, rcx, rax, flags("", flagsAll))
}

// genSystem emits system and serializing instructions. These are excluded
// from the blocking-instruction candidates (Section 5.1.1) but still appear
// in the instruction set.
func genSystem(b *Builder) {
	b.instr("CPUID", "SYSTEM", "INT", attrs(AttrSystem, AttrSerializing),
		impReg("RAX", "GPR64", true, true), impReg("RBX", "GPR64", false, true),
		impReg("RCX", "GPR64", true, true), impReg("RDX", "GPR64", false, true))
	b.instr("RDTSC", "SYSTEM", "INT", attrs(AttrSystem),
		impReg("RAX", "GPR64", false, true), impReg("RDX", "GPR64", false, true))
	b.instr("RDTSCP", "SYSTEM", "INT", attrs(AttrSystem),
		impReg("RAX", "GPR64", false, true), impReg("RDX", "GPR64", false, true),
		impReg("RCX", "GPR64", false, true))
	b.instr("XGETBV", "SYSTEM", "INT", attrs(AttrSystem),
		impReg("RCX", "GPR64", true, false), impReg("RAX", "GPR64", false, true),
		impReg("RDX", "GPR64", false, true))
	b.instr("CLFLUSH", "SYSTEM", "INT", attrs(AttrSystem), mem(8, true, false))
	b.instr("CLFLUSHOPT", "CLFLUSHOPT", "INT", attrs(AttrSystem), mem(8, true, false))
	b.instr("PREFETCHT0", "SSE", "INT", nil, mem(8, true, false))
	b.instr("PREFETCHT1", "SSE", "INT", nil, mem(8, true, false))
	b.instr("PREFETCHT2", "SSE", "INT", nil, mem(8, true, false))
	b.instr("PREFETCHNTA", "SSE", "INT", nil, mem(8, true, false))
	b.instr("RDRAND", "RDRAND", "INT", attrs(AttrSystem), reg("GPR64", false, true), flags("", flagsCF))
	b.instr("RDSEED", "RDSEED", "INT", attrs(AttrSystem), reg("GPR64", false, true), flags("", flagsCF))
}
