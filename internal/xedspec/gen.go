package xedspec

import (
	"sync"

	"uopsinfo/internal/isa"
)

// Generate produces the datafile entries for the complete instruction set
// (all extensions). Per-microarchitecture instruction sets are obtained by
// filtering on the extensions a generation supports (see the uarch package).
func Generate() []*Entry {
	b := NewBuilder()
	genBase(b)
	genVector(b)
	return b.Entries()
}

var (
	fullSetOnce sync.Once
	fullSet     *isa.Set
	fullSetErr  error
)

// FullISA returns the complete instruction set as an isa.Set. The result is
// built once and cached; the returned set must be treated as read-only.
func FullISA() (*isa.Set, error) {
	fullSetOnce.Do(func() {
		fullSet, fullSetErr = ToISA(Generate())
	})
	return fullSet, fullSetErr
}

// MustFullISA is like FullISA but panics on error. The instruction set is
// static data, so an error is a programming bug.
func MustFullISA() *isa.Set {
	set, err := FullISA()
	if err != nil {
		panic(err)
	}
	return set
}

// Datafile renders the complete generated instruction set in the datafile
// text format. The output round-trips through ParseDatafile.
func Datafile() string {
	return FormatDatafile(Generate())
}
