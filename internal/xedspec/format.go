// Package xedspec provides a compact, XED-configuration-like text description
// of the x86-64 instruction set, a parser for it, and a programmatic
// generator that produces the full set of instruction variants used by the
// characterization tool.
//
// The paper extracts its instruction information from the configuration files
// of Intel's X86 Encoder Decoder (XED) and converts it into a simplified XML
// representation (Section 6.1). This package plays the role of those
// configuration files: the generator emits "datafiles" in a concise text
// format, and the parser converts them into the isa.Set model (which can then
// be serialized to XML by the isa package).
//
//uopslint:deterministic
package xedspec

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"uopsinfo/internal/isa"
)

// Entry is the datafile-level description of one instruction variant. It
// mirrors isa.Instr but stays at the text level: register classes, flag sets
// and attributes are plain strings as they appear in the datafile.
type Entry struct {
	Name      string
	Mnemonic  string
	Extension string
	Domain    string
	Attrs     []string // e.g. "system", "serializing", "divider", "zero-idiom"
	Operands  []EntryOperand
}

// EntryOperand is the datafile-level description of one operand.
type EntryOperand struct {
	Name       string
	Kind       string // REG, MEM, IMM, FLAGS
	Class      string // register class name for REG operands
	Width      int
	Read       bool
	Write      bool
	Implicit   bool
	FixedReg   string
	ReadFlags  string
	WriteFlags string
}

// Attribute names understood by the converter.
const (
	AttrSystem      = "system"
	AttrSerializing = "serializing"
	AttrControlFlow = "control-flow"
	AttrDivider     = "divider"
	AttrNOP         = "nop"
	AttrZeroIdiom   = "zero-idiom"
	AttrMoveElim    = "move-elim"
	AttrLock        = "lock"
	AttrRep         = "rep"
)

// HasAttr reports whether the entry carries the named attribute.
func (e *Entry) HasAttr(name string) bool {
	for _, a := range e.Attrs {
		if a == name {
			return true
		}
	}
	return false
}

// Format renders the entry in datafile syntax.
func (e *Entry) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSTR %s\n", e.Name)
	fmt.Fprintf(&b, "  asm: %s\n", e.Mnemonic)
	fmt.Fprintf(&b, "  ext: %s\n", e.Extension)
	fmt.Fprintf(&b, "  domain: %s\n", e.Domain)
	if len(e.Attrs) > 0 {
		fmt.Fprintf(&b, "  attrs: %s\n", strings.Join(e.Attrs, " "))
	}
	for _, op := range e.Operands {
		fmt.Fprintf(&b, "  op %s\n", op.format())
	}
	b.WriteString("END\n")
	return b.String()
}

func (o EntryOperand) format() string {
	fields := []string{o.Name, o.Kind}
	if o.Class != "" {
		fields = append(fields, "class="+o.Class)
	}
	fields = append(fields, fmt.Sprintf("width=%d", o.Width))
	rw := ""
	if o.Read {
		rw += "r"
	}
	if o.Write {
		rw += "w"
	}
	if rw == "" {
		rw = "-"
	}
	fields = append(fields, "access="+rw)
	if o.Implicit {
		fields = append(fields, "implicit")
	}
	if o.FixedReg != "" {
		fields = append(fields, "reg="+o.FixedReg)
	}
	if o.Kind == "FLAGS" {
		fields = append(fields, "flagsR="+emptyDash(o.ReadFlags), "flagsW="+emptyDash(o.WriteFlags))
	}
	return strings.Join(fields, " ")
}

func emptyDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// FormatDatafile renders a list of entries as one datafile, sorted by variant
// name for reproducible output.
func FormatDatafile(entries []*Entry) string {
	sorted := make([]*Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString("# x86-64 instruction datafile (generated)\n")
	b.WriteString("# format: INSTR <variant> / asm / ext / domain / attrs / op ... / END\n\n")
	for _, e := range sorted {
		b.WriteString(e.Format())
		b.WriteString("\n")
	}
	return b.String()
}

// ParseError describes a datafile syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xedspec: line %d: %s", e.Line, e.Msg)
}

// ParseDatafile parses the datafile format produced by FormatDatafile.
func ParseDatafile(text string) ([]*Entry, error) {
	var entries []*Entry
	var cur *Entry
	scanner := bufio.NewScanner(strings.NewReader(text))
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "INSTR "):
			if cur != nil {
				return nil, &ParseError{lineNo, "INSTR inside unterminated INSTR block"}
			}
			cur = &Entry{Name: strings.TrimSpace(strings.TrimPrefix(line, "INSTR "))}
		case line == "END":
			if cur == nil {
				return nil, &ParseError{lineNo, "END without INSTR"}
			}
			entries = append(entries, cur)
			cur = nil
		case cur == nil:
			return nil, &ParseError{lineNo, fmt.Sprintf("unexpected line outside INSTR block: %q", line)}
		case strings.HasPrefix(line, "asm:"):
			cur.Mnemonic = strings.TrimSpace(strings.TrimPrefix(line, "asm:"))
		case strings.HasPrefix(line, "ext:"):
			cur.Extension = strings.TrimSpace(strings.TrimPrefix(line, "ext:"))
		case strings.HasPrefix(line, "domain:"):
			cur.Domain = strings.TrimSpace(strings.TrimPrefix(line, "domain:"))
		case strings.HasPrefix(line, "attrs:"):
			cur.Attrs = strings.Fields(strings.TrimPrefix(line, "attrs:"))
		case strings.HasPrefix(line, "op "):
			op, err := parseOperandLine(strings.TrimPrefix(line, "op "))
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			cur.Operands = append(cur.Operands, op)
		default:
			return nil, &ParseError{lineNo, fmt.Sprintf("unrecognized line: %q", line)}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("xedspec: reading datafile: %w", err)
	}
	if cur != nil {
		return nil, &ParseError{lineNo, fmt.Sprintf("unterminated INSTR block %q", cur.Name)}
	}
	return entries, nil
}

func parseOperandLine(s string) (EntryOperand, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return EntryOperand{}, fmt.Errorf("operand line needs at least name and kind: %q", s)
	}
	op := EntryOperand{Name: fields[0], Kind: fields[1]}
	for _, f := range fields[2:] {
		switch {
		case f == "implicit":
			op.Implicit = true
		case strings.HasPrefix(f, "class="):
			op.Class = strings.TrimPrefix(f, "class=")
		case strings.HasPrefix(f, "width="):
			w, err := strconv.Atoi(strings.TrimPrefix(f, "width="))
			if err != nil {
				return EntryOperand{}, fmt.Errorf("bad width in %q: %v", f, err)
			}
			op.Width = w
		case strings.HasPrefix(f, "access="):
			acc := strings.TrimPrefix(f, "access=")
			op.Read = strings.Contains(acc, "r")
			op.Write = strings.Contains(acc, "w")
		case strings.HasPrefix(f, "reg="):
			op.FixedReg = strings.TrimPrefix(f, "reg=")
		case strings.HasPrefix(f, "flagsR="):
			op.ReadFlags = strings.TrimPrefix(f, "flagsR=")
		case strings.HasPrefix(f, "flagsW="):
			op.WriteFlags = strings.TrimPrefix(f, "flagsW=")
		default:
			return EntryOperand{}, fmt.Errorf("unrecognized operand field %q", f)
		}
	}
	return op, nil
}

// ToISA converts datafile entries into the machine-readable isa.Set model.
func ToISA(entries []*Entry) (*isa.Set, error) {
	instrs := make([]*isa.Instr, 0, len(entries))
	for _, e := range entries {
		in := &isa.Instr{
			Name:          e.Name,
			Mnemonic:      e.Mnemonic,
			Extension:     isa.Extension(e.Extension),
			Domain:        isa.ParseDomain(e.Domain),
			IsSystem:      e.HasAttr(AttrSystem),
			IsSerializing: e.HasAttr(AttrSerializing),
			ControlFlow:   e.HasAttr(AttrControlFlow),
			UsesDivider:   e.HasAttr(AttrDivider),
			IsNOP:         e.HasAttr(AttrNOP),
			MayZeroIdiom:  e.HasAttr(AttrZeroIdiom),
			MayMoveElim:   e.HasAttr(AttrMoveElim),
			HasLock:       e.HasAttr(AttrLock),
			HasRep:        e.HasAttr(AttrRep),
		}
		for _, eo := range e.Operands {
			op := isa.Operand{
				Name:     eo.Name,
				Kind:     isa.ParseOperandKind(eo.Kind),
				Class:    isa.ParseRegClass(eo.Class),
				Width:    eo.Width,
				Read:     eo.Read,
				Write:    eo.Write,
				Implicit: eo.Implicit,
			}
			if op.Kind == isa.OpNone {
				return nil, fmt.Errorf("xedspec: %s: unknown operand kind %q", e.Name, eo.Kind)
			}
			if eo.FixedReg != "" {
				op.FixedReg = isa.ParseReg(eo.FixedReg)
				if op.FixedReg == isa.RegNone {
					return nil, fmt.Errorf("xedspec: %s: unknown fixed register %q", e.Name, eo.FixedReg)
				}
			}
			if op.Kind == isa.OpFlags {
				op.ReadFlags = isa.ParseFlagSet(eo.ReadFlags)
				op.WriteFlags = isa.ParseFlagSet(eo.WriteFlags)
				op.Read = !op.ReadFlags.Empty()
				op.Write = !op.WriteFlags.Empty()
				op.Class = isa.ClassFlags
			}
			in.Operands = append(in.Operands, op)
		}
		instrs = append(instrs, in)
	}
	return isa.NewSet(instrs)
}

// FromISA converts an isa.Set back into datafile entries (the inverse of
// ToISA), useful for regenerating datafiles from a modified model.
func FromISA(set *isa.Set) []*Entry {
	var entries []*Entry
	for _, in := range set.Instrs() {
		e := &Entry{
			Name:      in.Name,
			Mnemonic:  in.Mnemonic,
			Extension: string(in.Extension),
			Domain:    in.Domain.String(),
		}
		addAttr := func(cond bool, name string) {
			if cond {
				e.Attrs = append(e.Attrs, name)
			}
		}
		addAttr(in.IsSystem, AttrSystem)
		addAttr(in.IsSerializing, AttrSerializing)
		addAttr(in.ControlFlow, AttrControlFlow)
		addAttr(in.UsesDivider, AttrDivider)
		addAttr(in.IsNOP, AttrNOP)
		addAttr(in.MayZeroIdiom, AttrZeroIdiom)
		addAttr(in.MayMoveElim, AttrMoveElim)
		addAttr(in.HasLock, AttrLock)
		addAttr(in.HasRep, AttrRep)
		for _, op := range in.Operands {
			eo := EntryOperand{
				Name:     op.Name,
				Kind:     op.Kind.String(),
				Width:    op.Width,
				Read:     op.Read,
				Write:    op.Write,
				Implicit: op.Implicit,
			}
			if op.Class != isa.ClassNone && op.Kind == isa.OpReg {
				eo.Class = op.Class.String()
			}
			if op.FixedReg != isa.RegNone {
				eo.FixedReg = op.FixedReg.String()
			}
			if op.Kind == isa.OpFlags {
				eo.ReadFlags = op.ReadFlags.String()
				eo.WriteFlags = op.WriteFlags.String()
			}
			e.Operands = append(e.Operands, eo)
		}
		entries = append(entries, e)
	}
	return entries
}
