package xedspec

// genVector emits the MMX, SSE*, AES, CLMUL, AVX, AVX2, FMA and F16C parts of
// the instruction set.
func genVector(b *Builder) {
	genMMX(b)
	genSSEFP(b)
	genSSEInt(b)
	genSSE3Plus(b)
	genAES(b)
	genAVX(b)
	genFMA(b)
	genF16C(b)
}

// Helper emitters ------------------------------------------------------------

// sseBinary emits a two-operand SSE-style instruction (op1 is read and
// written) in register and memory forms.
func sseBinary(b *Builder, mnemonic, ext, domain string, at []string, memWidth int, extraImm bool) {
	ops := []EntryOperand{reg("XMM", true, true), reg("XMM", true, false)}
	memOps := []EntryOperand{reg("XMM", true, true), mem(memWidth, true, false)}
	if extraImm {
		ops = append(ops, imm(8))
		memOps = append(memOps, imm(8))
	}
	b.instr(mnemonic, ext, domain, at, ops...)
	b.instr(mnemonic, ext, domain, nil, memOps...)
}

// sseUnary emits a two-operand SSE-style instruction where op1 is write-only
// (shuffles, conversions, square roots, ...).
func sseUnary(b *Builder, mnemonic, ext, domain string, at []string, memWidth int, extraImm bool) {
	ops := []EntryOperand{reg("XMM", false, true), reg("XMM", true, false)}
	memOps := []EntryOperand{reg("XMM", false, true), mem(memWidth, true, false)}
	if extraImm {
		ops = append(ops, imm(8))
		memOps = append(memOps, imm(8))
	}
	b.instr(mnemonic, ext, domain, at, ops...)
	b.instr(mnemonic, ext, domain, nil, memOps...)
}

// avxBinary emits a three-operand AVX-style instruction (op1 write-only, op2
// and op3 read) in XMM and, when wantYMM is set, YMM forms, each with a
// memory variant for the last operand.
func avxBinary(b *Builder, mnemonic, ext, domain string, at []string, wantYMM bool, extraImm bool) {
	emit := func(cls string, memWidth int) {
		ops := []EntryOperand{reg(cls, false, true), reg(cls, true, false), reg(cls, true, false)}
		memOps := []EntryOperand{reg(cls, false, true), reg(cls, true, false), mem(memWidth, true, false)}
		if extraImm {
			ops = append(ops, imm(8))
			memOps = append(memOps, imm(8))
		}
		b.instr(mnemonic, ext, domain, at, ops...)
		b.instr(mnemonic, ext, domain, nil, memOps...)
	}
	emit("XMM", 128)
	if wantYMM {
		emit("YMM", 256)
	}
}

// avxUnary emits a two-operand AVX-style instruction (op1 write-only, op2
// read) in XMM and optionally YMM forms, each with a memory variant.
func avxUnary(b *Builder, mnemonic, ext, domain string, at []string, wantYMM bool, extraImm bool) {
	emit := func(cls string, memWidth int) {
		ops := []EntryOperand{reg(cls, false, true), reg(cls, true, false)}
		memOps := []EntryOperand{reg(cls, false, true), mem(memWidth, true, false)}
		if extraImm {
			ops = append(ops, imm(8))
			memOps = append(memOps, imm(8))
		}
		b.instr(mnemonic, ext, domain, at, ops...)
		b.instr(mnemonic, ext, domain, nil, memOps...)
	}
	emit("XMM", 128)
	if wantYMM {
		emit("YMM", 256)
	}
}

// MMX -------------------------------------------------------------------------

func genMMX(b *Builder) {
	// Moves between MMX, general-purpose registers and memory.
	b.instr("MOVD", "MMX", "VECINT", nil, reg("MMX", false, true), reg("GPR32", true, false))
	b.instr("MOVD", "MMX", "VECINT", nil, reg("GPR32", false, true), reg("MMX", true, false))
	b.instr("MOVQ", "MMX", "VECINT", nil, reg("MMX", false, true), reg("GPR64", true, false))
	b.instr("MOVQ", "MMX", "VECINT", nil, reg("GPR64", false, true), reg("MMX", true, false))
	b.instr("MOVQ", "MMX", "VECINT", nil, reg("MMX", false, true), reg("MMX", true, false))
	b.instr("MOVQ", "MMX", "VECINT", nil, reg("MMX", false, true), mem(64, true, false))
	b.instr("MOVQ", "MMX", "VECINT", nil, mem(64, false, true), reg("MMX", true, false))
	// Transfers between MMX and XMM registers (Sections 7.3.3 and 7.3.4).
	b.instr("MOVQ2DQ", "SSE2", "VECINT", nil, reg("XMM", false, true), reg("MMX", true, false))
	b.instr("MOVDQ2Q", "SSE2", "VECINT", nil, reg("MMX", false, true), reg("XMM", true, false))

	mmxBinary := func(mnemonic string, at []string) {
		b.instr(mnemonic, "MMX", "VECINT", at, reg("MMX", true, true), reg("MMX", true, false))
		b.instr(mnemonic, "MMX", "VECINT", nil, reg("MMX", true, true), mem(64, true, false))
	}
	for _, m := range []string{"PADDB", "PADDW", "PADDD", "PSUBB", "PSUBW", "PSUBD",
		"PADDSB", "PADDSW", "PSUBSB", "PSUBSW", "PAND", "PANDN", "POR",
		"PMULLW", "PMULHW", "PMADDWD",
		"PUNPCKLBW", "PUNPCKLWD", "PUNPCKLDQ", "PUNPCKHBW", "PUNPCKHWD", "PUNPCKHDQ",
		"PACKSSWB", "PACKSSDW", "PACKUSWB",
		"PCMPEQB", "PCMPEQW", "PCMPEQD"} {
		mmxBinary(m, nil)
	}
	for _, m := range []string{"PXOR", "PCMPGTB", "PCMPGTW", "PCMPGTD"} {
		mmxBinary(m, attrs(AttrZeroIdiom))
	}
	for _, m := range []string{"PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD", "PSRLQ", "PSRAW", "PSRAD"} {
		b.instr(m, "MMX", "VECINT", nil, reg("MMX", true, true), reg("MMX", true, false))
		b.instr(m, "MMX", "VECINT", nil, reg("MMX", true, true), imm(8))
	}
	b.instr("EMMS", "MMX", "VECINT", attrs(AttrSystem))
}

// SSE / SSE2 floating point ----------------------------------------------------

func genSSEFP(b *Builder) {
	// Moves.
	for _, m := range []string{"MOVAPS", "MOVUPS"} {
		b.instr(m, "SSE", "FP", attrs(AttrMoveElim), reg("XMM", false, true), reg("XMM", true, false))
		b.instr(m, "SSE", "FP", nil, reg("XMM", false, true), mem(128, true, false))
		b.instr(m, "SSE", "FP", nil, mem(128, false, true), reg("XMM", true, false))
	}
	for _, m := range []string{"MOVAPD", "MOVUPD"} {
		b.instr(m, "SSE2", "FP", attrs(AttrMoveElim), reg("XMM", false, true), reg("XMM", true, false))
		b.instr(m, "SSE2", "FP", nil, reg("XMM", false, true), mem(128, true, false))
		b.instr(m, "SSE2", "FP", nil, mem(128, false, true), reg("XMM", true, false))
	}
	b.instr("MOVSS", "SSE", "FP", nil, reg("XMM", true, true), reg("XMM", true, false))
	b.instr("MOVSS", "SSE", "FP", nil, reg("XMM", false, true), mem(32, true, false))
	b.instr("MOVSS", "SSE", "FP", nil, mem(32, false, true), reg("XMM", true, false))
	b.instr("MOVSD", "SSE2", "FP", nil, reg("XMM", true, true), reg("XMM", true, false))
	b.instr("MOVSD", "SSE2", "FP", nil, reg("XMM", false, true), mem(64, true, false))
	b.instr("MOVSD", "SSE2", "FP", nil, mem(64, false, true), reg("XMM", true, false))
	b.instr("MOVHLPS", "SSE", "FP", nil, reg("XMM", true, true), reg("XMM", true, false))
	b.instr("MOVLHPS", "SSE", "FP", nil, reg("XMM", true, true), reg("XMM", true, false))
	b.instr("MOVMSKPS", "SSE", "FP", nil, reg("GPR32", false, true), reg("XMM", true, false))
	b.instr("MOVMSKPD", "SSE2", "FP", nil, reg("GPR32", false, true), reg("XMM", true, false))
	b.instr("MOVNTPS", "SSE", "FP", nil, mem(128, false, true), reg("XMM", true, false))
	b.instr("MOVNTPD", "SSE2", "FP", nil, mem(128, false, true), reg("XMM", true, false))

	// Packed and scalar arithmetic.
	type fpOp struct {
		base    string
		divider bool
	}
	fpOps := []fpOp{
		{"ADD", false}, {"SUB", false}, {"MUL", false},
		{"DIV", true}, {"MIN", false}, {"MAX", false},
	}
	suffixInfo := []struct {
		suffix   string
		ext      string
		memWidth int
	}{
		{"PS", "SSE", 128}, {"SS", "SSE", 32},
		{"PD", "SSE2", 128}, {"SD", "SSE2", 64},
	}
	for _, op := range fpOps {
		for _, s := range suffixInfo {
			var at []string
			if op.divider {
				at = attrs(AttrDivider)
			}
			sseBinary(b, op.base+s.suffix, s.ext, "FP", at, s.memWidth, false)
		}
	}
	for _, s := range suffixInfo {
		sseUnary(b, "SQRT"+s.suffix, s.ext, "FP", attrs(AttrDivider), s.memWidth, false)
	}
	sseUnary(b, "RCPPS", "SSE", "FP", nil, 128, false)
	sseUnary(b, "RCPSS", "SSE", "FP", nil, 32, false)
	sseUnary(b, "RSQRTPS", "SSE", "FP", nil, 128, false)
	sseUnary(b, "RSQRTSS", "SSE", "FP", nil, 32, false)

	// Logic (XORPS/XORPD with identical operands are zero idioms).
	for _, s := range []struct{ suffix, ext string }{{"PS", "SSE"}, {"PD", "SSE2"}} {
		sseBinary(b, "AND"+s.suffix, s.ext, "FP", nil, 128, false)
		sseBinary(b, "ANDN"+s.suffix, s.ext, "FP", nil, 128, false)
		sseBinary(b, "OR"+s.suffix, s.ext, "FP", nil, 128, false)
		sseBinary(b, "XOR"+s.suffix, s.ext, "FP", attrs(AttrZeroIdiom), 128, false)
	}

	// Compares.
	for _, s := range suffixInfo {
		sseBinary(b, "CMP"+s.suffix, s.ext, "FP", nil, s.memWidth, true)
	}
	for _, m := range []string{"COMISS", "UCOMISS"} {
		b.instr(m, "SSE", "FP", nil, reg("XMM", true, false), reg("XMM", true, false), flags("", flagsNoAF))
		b.instr(m, "SSE", "FP", nil, reg("XMM", true, false), mem(32, true, false), flags("", flagsNoAF))
	}
	for _, m := range []string{"COMISD", "UCOMISD"} {
		b.instr(m, "SSE2", "FP", nil, reg("XMM", true, false), reg("XMM", true, false), flags("", flagsNoAF))
		b.instr(m, "SSE2", "FP", nil, reg("XMM", true, false), mem(64, true, false), flags("", flagsNoAF))
	}

	// Shuffles and unpacks.
	sseBinary(b, "SHUFPS", "SSE", "FP", nil, 128, true)
	sseBinary(b, "SHUFPD", "SSE2", "FP", nil, 128, true)
	for _, m := range []string{"UNPCKLPS", "UNPCKHPS"} {
		sseBinary(b, m, "SSE", "FP", nil, 128, false)
	}
	for _, m := range []string{"UNPCKLPD", "UNPCKHPD"} {
		sseBinary(b, m, "SSE2", "FP", nil, 128, false)
	}

	// Conversions between FP formats and between FP and integer.
	sseUnary(b, "CVTPS2PD", "SSE2", "FP", nil, 64, false)
	sseUnary(b, "CVTPD2PS", "SSE2", "FP", nil, 128, false)
	sseUnary(b, "CVTSS2SD", "SSE2", "FP", nil, 32, false)
	sseUnary(b, "CVTSD2SS", "SSE2", "FP", nil, 64, false)
	sseUnary(b, "CVTDQ2PS", "SSE2", "FP", nil, 128, false)
	sseUnary(b, "CVTPS2DQ", "SSE2", "FP", nil, 128, false)
	sseUnary(b, "CVTTPS2DQ", "SSE2", "FP", nil, 128, false)
	sseUnary(b, "CVTDQ2PD", "SSE2", "FP", nil, 64, false)
	sseUnary(b, "CVTPD2DQ", "SSE2", "FP", nil, 128, false)
	for _, w := range []int{32, 64} {
		cls := gprClass(w)
		b.instr("CVTSI2SS", "SSE", "FP", nil, reg("XMM", true, true), reg(cls, true, false))
		b.instr("CVTSI2SD", "SSE2", "FP", nil, reg("XMM", true, true), reg(cls, true, false))
		b.instr("CVTSS2SI", "SSE", "FP", nil, reg(cls, false, true), reg("XMM", true, false))
		b.instr("CVTSD2SI", "SSE2", "FP", nil, reg(cls, false, true), reg("XMM", true, false))
		b.instr("CVTTSS2SI", "SSE", "FP", nil, reg(cls, false, true), reg("XMM", true, false))
		b.instr("CVTTSD2SI", "SSE2", "FP", nil, reg(cls, false, true), reg("XMM", true, false))
	}
}

// SSE2 integer -----------------------------------------------------------------

func genSSEInt(b *Builder) {
	// Moves.
	for _, m := range []string{"MOVDQA", "MOVDQU"} {
		b.instr(m, "SSE2", "VECINT", attrs(AttrMoveElim), reg("XMM", false, true), reg("XMM", true, false))
		b.instr(m, "SSE2", "VECINT", nil, reg("XMM", false, true), mem(128, true, false))
		b.instr(m, "SSE2", "VECINT", nil, mem(128, false, true), reg("XMM", true, false))
	}
	b.instr("MOVD", "SSE2", "VECINT", nil, reg("XMM", false, true), reg("GPR32", true, false))
	b.instr("MOVD", "SSE2", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false))
	b.instr("MOVQ", "SSE2", "VECINT", nil, reg("XMM", false, true), reg("GPR64", true, false))
	b.instr("MOVQ", "SSE2", "VECINT", nil, reg("GPR64", false, true), reg("XMM", true, false))
	b.instr("MOVQ", "SSE2", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false))
	b.instr("MOVQ", "SSE2", "VECINT", nil, reg("XMM", false, true), mem(64, true, false))
	b.instr("MOVQ", "SSE2", "VECINT", nil, mem(64, false, true), reg("XMM", true, false))
	b.instr("MOVNTDQ", "SSE2", "VECINT", nil, mem(128, false, true), reg("XMM", true, false))
	b.instr("PMOVMSKB", "SSE2", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false))
	b.instr("MASKMOVDQU", "SSE2", "VECINT", nil, reg("XMM", true, false), reg("XMM", true, false),
		impReg("RDI", "GPR64", true, false))

	// Packed integer arithmetic and logic.
	plain := []string{
		"PADDB", "PADDW", "PADDD", "PADDQ", "PSUBB", "PSUBW", "PSUBD", "PSUBQ",
		"PADDSB", "PADDSW", "PADDUSB", "PADDUSW", "PSUBSB", "PSUBSW", "PSUBUSB", "PSUBUSW",
		"PAVGB", "PAVGW", "PMINUB", "PMAXUB", "PMINSW", "PMAXSW",
		"PMULLW", "PMULHW", "PMULHUW", "PMULUDQ", "PMADDWD", "PSADBW",
		"PAND", "PANDN", "POR",
		"PCMPEQB", "PCMPEQW", "PCMPEQD",
		"PUNPCKLBW", "PUNPCKLWD", "PUNPCKLDQ", "PUNPCKLQDQ",
		"PUNPCKHBW", "PUNPCKHWD", "PUNPCKHDQ", "PUNPCKHQDQ",
		"PACKSSWB", "PACKSSDW", "PACKUSWB",
	}
	for _, m := range plain {
		sseBinary(b, m, "SSE2", "VECINT", nil, 128, false)
	}
	// Zero idioms (Section 7.3.6: the PCMPGT family is dependency-breaking).
	for _, m := range []string{"PXOR", "PCMPGTB", "PCMPGTW", "PCMPGTD"} {
		sseBinary(b, m, "SSE2", "VECINT", attrs(AttrZeroIdiom), 128, false)
	}
	// Shifts: by register (xmm), by immediate.
	for _, m := range []string{"PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD", "PSRLQ", "PSRAW", "PSRAD"} {
		b.instr(m, "SSE2", "VECINT", nil, reg("XMM", true, true), reg("XMM", true, false))
		b.instr(m, "SSE2", "VECINT", nil, reg("XMM", true, true), mem(128, true, false))
		b.instr(m, "SSE2", "VECINT", nil, reg("XMM", true, true), imm(8))
	}
	b.instr("PSLLDQ", "SSE2", "VECINT", nil, reg("XMM", true, true), imm(8))
	b.instr("PSRLDQ", "SSE2", "VECINT", nil, reg("XMM", true, true), imm(8))
	// Shuffles.
	sseUnary(b, "PSHUFD", "SSE2", "VECINT", nil, 128, true)
	sseUnary(b, "PSHUFLW", "SSE2", "VECINT", nil, 128, true)
	sseUnary(b, "PSHUFHW", "SSE2", "VECINT", nil, 128, true)
	// Insert/extract.
	b.instr("PINSRW", "SSE2", "VECINT", nil, reg("XMM", true, true), reg("GPR32", true, false), imm(8))
	b.instr("PEXTRW", "SSE2", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false), imm(8))
}

// SSE3 / SSSE3 / SSE4.1 / SSE4.2 -----------------------------------------------

func genSSE3Plus(b *Builder) {
	// SSE3.
	for _, m := range []string{"ADDSUBPS", "HADDPS", "HSUBPS"} {
		sseBinary(b, m, "SSE3", "FP", nil, 128, false)
	}
	for _, m := range []string{"ADDSUBPD", "HADDPD", "HSUBPD"} {
		sseBinary(b, m, "SSE3", "FP", nil, 128, false)
	}
	sseUnary(b, "MOVSHDUP", "SSE3", "FP", nil, 128, false)
	sseUnary(b, "MOVSLDUP", "SSE3", "FP", nil, 128, false)
	sseUnary(b, "MOVDDUP", "SSE3", "FP", nil, 64, false)
	b.instr("LDDQU", "SSE3", "VECINT", nil, reg("XMM", false, true), mem(128, true, false))

	// SSSE3.
	for _, m := range []string{"PSHUFB", "PHADDW", "PHADDD", "PHADDSW", "PHSUBW", "PHSUBD", "PHSUBSW",
		"PMADDUBSW", "PMULHRSW", "PSIGNB", "PSIGNW", "PSIGND"} {
		sseBinary(b, m, "SSSE3", "VECINT", nil, 128, false)
	}
	sseBinary(b, "PALIGNR", "SSSE3", "VECINT", nil, 128, true)
	for _, m := range []string{"PABSB", "PABSW", "PABSD"} {
		sseUnary(b, m, "SSSE3", "VECINT", nil, 128, false)
	}

	// SSE4.1.
	for _, m := range []string{"PMULLD", "PMULDQ", "PMINSB", "PMAXSB", "PMINUW", "PMAXUW",
		"PMINSD", "PMAXSD", "PMINUD", "PMAXUD", "PCMPEQQ", "PACKUSDW"} {
		sseBinary(b, m, "SSE4.1", "VECINT", nil, 128, false)
	}
	sseBinary(b, "PBLENDW", "SSE4.1", "VECINT", nil, 128, true)
	sseBinary(b, "MPSADBW", "SSE4.1", "VECINT", nil, 128, true)
	sseBinary(b, "BLENDPS", "SSE4.1", "FP", nil, 128, true)
	sseBinary(b, "BLENDPD", "SSE4.1", "FP", nil, 128, true)
	sseBinary(b, "DPPS", "SSE4.1", "FP", nil, 128, true)
	sseBinary(b, "DPPD", "SSE4.1", "FP", nil, 128, true)
	// Variable blends with an implicit XMM0 operand (PBLENDVB is the
	// Section 5.1 motivating example on Nehalem).
	for _, m := range []string{"PBLENDVB", "BLENDVPS", "BLENDVPD"} {
		dom := "VECINT"
		if m != "PBLENDVB" {
			dom = "FP"
		}
		b.instr(m, "SSE4.1", dom, nil, reg("XMM", true, true), reg("XMM", true, false),
			impReg("XMM0", "XMM", true, false))
		b.instr(m, "SSE4.1", dom, nil, reg("XMM", true, true), mem(128, true, false),
			impReg("XMM0", "XMM", true, false))
	}
	for _, m := range []string{"ROUNDPS", "ROUNDPD", "ROUNDSS", "ROUNDSD"} {
		sseUnary(b, m, "SSE4.1", "FP", nil, 128, true)
	}
	for _, m := range []string{"PMOVSXBW", "PMOVSXBD", "PMOVSXBQ", "PMOVSXWD", "PMOVSXWQ", "PMOVSXDQ",
		"PMOVZXBW", "PMOVZXBD", "PMOVZXBQ", "PMOVZXWD", "PMOVZXWQ", "PMOVZXDQ"} {
		sseUnary(b, m, "SSE4.1", "VECINT", nil, 64, false)
	}
	b.instr("PTEST", "SSE4.1", "VECINT", nil, reg("XMM", true, false), reg("XMM", true, false), flags("", "CF+ZF"))
	b.instr("PTEST", "SSE4.1", "VECINT", nil, reg("XMM", true, false), mem(128, true, false), flags("", "CF+ZF"))
	b.instr("PHMINPOSUW", "SSE4.1", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false))
	b.instr("INSERTPS", "SSE4.1", "FP", nil, reg("XMM", true, true), reg("XMM", true, false), imm(8))
	b.instr("EXTRACTPS", "SSE4.1", "FP", nil, reg("GPR32", false, true), reg("XMM", true, false), imm(8))
	b.instr("PINSRB", "SSE4.1", "VECINT", nil, reg("XMM", true, true), reg("GPR32", true, false), imm(8))
	b.instr("PINSRD", "SSE4.1", "VECINT", nil, reg("XMM", true, true), reg("GPR32", true, false), imm(8))
	b.instr("PINSRQ", "SSE4.1", "VECINT", nil, reg("XMM", true, true), reg("GPR64", true, false), imm(8))
	b.instr("PEXTRB", "SSE4.1", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false), imm(8))
	b.instr("PEXTRD", "SSE4.1", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false), imm(8))
	b.instr("PEXTRQ", "SSE4.1", "VECINT", nil, reg("GPR64", false, true), reg("XMM", true, false), imm(8))
	b.instr("MOVNTDQA", "SSE4.1", "VECINT", nil, reg("XMM", false, true), mem(128, true, false))

	// SSE4.2.
	sseBinary(b, "PCMPGTQ", "SSE4.2", "VECINT", attrs(AttrZeroIdiom), 128, false)
	for _, m := range []string{"PCMPESTRI", "PCMPISTRI"} {
		b.instr(m, "SSE4.2", "VECINT", nil, reg("XMM", true, false), reg("XMM", true, false), imm(8),
			impReg("RCX", "GPR64", false, true), flags("", flagsNoAF))
	}
	for _, m := range []string{"PCMPESTRM", "PCMPISTRM"} {
		b.instr(m, "SSE4.2", "VECINT", nil, reg("XMM", true, false), reg("XMM", true, false), imm(8),
			impReg("XMM0", "XMM", false, true), flags("", flagsNoAF))
	}
	for _, w := range []int{8, 16, 32, 64} {
		b.instr("CRC32", "SSE4.2", "INT", nil, reg("GPR64", true, true), reg(gprClass(w), true, false))
		b.instr("CRC32", "SSE4.2", "INT", nil, reg("GPR64", true, true), mem(w, true, false))
	}
}

// AES and carry-less multiply ---------------------------------------------------

func genAES(b *Builder) {
	// Section 7.3.1 case study: AESDEC and friends.
	for _, m := range []string{"AESDEC", "AESDECLAST", "AESENC", "AESENCLAST"} {
		sseBinary(b, m, "AES", "VECINT", nil, 128, false)
	}
	sseUnary(b, "AESIMC", "AES", "VECINT", nil, 128, false)
	sseUnary(b, "AESKEYGENASSIST", "AES", "VECINT", nil, 128, true)
	sseBinary(b, "PCLMULQDQ", "CLMUL", "VECINT", nil, 128, true)
}

// AVX / AVX2 --------------------------------------------------------------------

func genAVX(b *Builder) {
	// Moves (XMM and YMM forms).
	for _, m := range []string{"VMOVAPS", "VMOVUPS", "VMOVAPD", "VMOVUPD", "VMOVDQA", "VMOVDQU"} {
		dom := "FP"
		if m == "VMOVDQA" || m == "VMOVDQU" {
			dom = "VECINT"
		}
		for _, cls := range []string{"XMM", "YMM"} {
			w := 128
			if cls == "YMM" {
				w = 256
			}
			b.instr(m, "AVX", dom, attrs(AttrMoveElim), reg(cls, false, true), reg(cls, true, false))
			b.instr(m, "AVX", dom, nil, reg(cls, false, true), mem(w, true, false))
			b.instr(m, "AVX", dom, nil, mem(w, false, true), reg(cls, true, false))
		}
	}
	b.instr("VMOVD", "AVX", "VECINT", nil, reg("XMM", false, true), reg("GPR32", true, false))
	b.instr("VMOVD", "AVX", "VECINT", nil, reg("GPR32", false, true), reg("XMM", true, false))
	b.instr("VMOVQ", "AVX", "VECINT", nil, reg("XMM", false, true), reg("GPR64", true, false))
	b.instr("VMOVQ", "AVX", "VECINT", nil, reg("GPR64", false, true), reg("XMM", true, false))
	b.instr("VZEROUPPER", "AVX", "FP", nil)
	b.instr("VZEROALL", "AVX", "FP", nil)

	// Packed FP arithmetic: AVX gives three-operand XMM and YMM forms.
	type fpOp struct {
		base    string
		divider bool
	}
	fpOps := []fpOp{{"ADD", false}, {"SUB", false}, {"MUL", false}, {"DIV", true}, {"MIN", false}, {"MAX", false}}
	for _, op := range fpOps {
		for _, suffix := range []string{"PS", "PD"} {
			var at []string
			if op.divider {
				at = attrs(AttrDivider)
			}
			avxBinary(b, "V"+op.base+suffix, "AVX", "FP", at, true, false)
		}
		for _, suffix := range []string{"SS", "SD"} {
			var at []string
			if op.divider {
				at = attrs(AttrDivider)
			}
			avxBinary(b, "V"+op.base+suffix, "AVX", "FP", at, false, false)
		}
	}
	for _, suffix := range []string{"PS", "PD"} {
		avxUnary(b, "VSQRT"+suffix, "AVX", "FP", attrs(AttrDivider), true, false)
		avxBinary(b, "VAND"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VANDN"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VOR"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VXOR"+suffix, "AVX", "FP", attrs(AttrZeroIdiom), true, false)
		avxBinary(b, "VCMP"+suffix, "AVX", "FP", nil, true, true)
		avxBinary(b, "VSHUF"+suffix, "AVX", "FP", nil, true, true)
		avxBinary(b, "VUNPCKL"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VUNPCKH"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VBLEND"+suffix, "AVX", "FP", nil, true, true)
		avxBinary(b, "VADDSUB"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VHADD"+suffix, "AVX", "FP", nil, true, false)
		avxBinary(b, "VHSUB"+suffix, "AVX", "FP", nil, true, false)
	}
	avxUnary(b, "VRCPPS", "AVX", "FP", nil, true, false)
	avxUnary(b, "VRSQRTPS", "AVX", "FP", nil, true, false)
	for _, m := range []string{"VROUNDPS", "VROUNDPD"} {
		avxUnary(b, m, "AVX", "FP", nil, true, true)
	}
	avxUnary(b, "VMOVSHDUP", "AVX", "FP", nil, true, false)
	avxUnary(b, "VMOVSLDUP", "AVX", "FP", nil, true, false)
	avxUnary(b, "VMOVDDUP", "AVX", "FP", nil, true, false)
	// Four-operand variable blends (register selector).
	for _, m := range []string{"VBLENDVPS", "VBLENDVPD", "VPBLENDVB"} {
		dom := "FP"
		ext := "AVX"
		if m == "VPBLENDVB" {
			dom = "VECINT"
		}
		for _, cls := range []string{"XMM", "YMM"} {
			if m == "VPBLENDVB" && cls == "YMM" {
				ext = "AVX2"
			}
			b.instr(m, ext, dom, nil, reg(cls, false, true), reg(cls, true, false),
				reg(cls, true, false), reg(cls, true, false))
		}
	}
	// Lane manipulation.
	b.instr("VEXTRACTF128", "AVX", "FP", nil, reg("XMM", false, true), reg("YMM", true, false), imm(8))
	b.instr("VINSERTF128", "AVX", "FP", nil, reg("YMM", false, true), reg("YMM", true, false), reg("XMM", true, false), imm(8))
	b.instr("VPERM2F128", "AVX", "FP", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false), imm(8))
	b.instr("VBROADCASTSS", "AVX", "FP", nil, reg("XMM", false, true), mem(32, true, false))
	b.instr("VBROADCASTSS", "AVX", "FP", attrs(), reg("YMM", false, true), mem(32, true, false))
	b.instr("VBROADCASTSD", "AVX", "FP", nil, reg("YMM", false, true), mem(64, true, false))
	b.instr("VBROADCASTF128", "AVX", "FP", nil, reg("YMM", false, true), mem(128, true, false))
	for _, m := range []string{"VPERMILPS", "VPERMILPD"} {
		avxBinary(b, m, "AVX", "FP", nil, true, false)
	}
	b.instr("VTESTPS", "AVX", "FP", nil, reg("XMM", true, false), reg("XMM", true, false), flags("", "CF+ZF"))
	b.instr("VTESTPS", "AVX", "FP", nil, reg("YMM", true, false), reg("YMM", true, false), flags("", "CF+ZF"))
	b.instr("VMASKMOVPS", "AVX", "FP", nil, reg("XMM", false, true), reg("XMM", true, false), mem(128, true, false))
	b.instr("VMASKMOVPS", "AVX", "FP", nil, reg("YMM", false, true), reg("YMM", true, false), mem(256, true, false))

	// AVX versions of the AES and CLMUL instructions (XMM only).
	for _, m := range []string{"VAESDEC", "VAESDECLAST", "VAESENC", "VAESENCLAST"} {
		avxBinary(b, m, "AVX", "VECINT", nil, false, false)
	}
	avxUnary(b, "VAESIMC", "AVX", "VECINT", nil, false, false)
	avxBinary(b, "VPCLMULQDQ", "AVX", "VECINT", nil, false, true)

	// Packed integer: XMM forms are AVX, YMM forms are AVX2.
	avxIntBinary := func(mnemonic string, zeroIdiom bool) {
		var at []string
		if zeroIdiom {
			at = attrs(AttrZeroIdiom)
		}
		ops := []EntryOperand{reg("XMM", false, true), reg("XMM", true, false), reg("XMM", true, false)}
		memOps := []EntryOperand{reg("XMM", false, true), reg("XMM", true, false), mem(128, true, false)}
		b.instr(mnemonic, "AVX", "VECINT", at, ops...)
		b.instr(mnemonic, "AVX", "VECINT", nil, memOps...)
		yops := []EntryOperand{reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false)}
		ymemOps := []EntryOperand{reg("YMM", false, true), reg("YMM", true, false), mem(256, true, false)}
		b.instr(mnemonic, "AVX2", "VECINT", at, yops...)
		b.instr(mnemonic, "AVX2", "VECINT", nil, ymemOps...)
	}
	for _, m := range []string{"VPADDB", "VPADDW", "VPADDD", "VPADDQ", "VPSUBB", "VPSUBW", "VPSUBD", "VPSUBQ",
		"VPADDSB", "VPADDSW", "VPSUBSB", "VPSUBSW", "VPAND", "VPANDN", "VPOR",
		"VPMULLW", "VPMULLD", "VPMULHW", "VPMULUDQ", "VPMADDWD", "VPSADBW",
		"VPCMPEQB", "VPCMPEQW", "VPCMPEQD", "VPCMPEQQ",
		"VPMINSB", "VPMAXSB", "VPMINUB", "VPMAXUB", "VPMINSW", "VPMAXSW", "VPMINSD", "VPMAXSD",
		"VPUNPCKLBW", "VPUNPCKLWD", "VPUNPCKLDQ", "VPUNPCKLQDQ",
		"VPUNPCKHBW", "VPUNPCKHWD", "VPUNPCKHDQ", "VPUNPCKHQDQ",
		"VPACKSSWB", "VPACKSSDW", "VPACKUSWB", "VPACKUSDW",
		"VPSHUFB", "VPAVGB", "VPAVGW", "VPMADDUBSW", "VPMULHRSW"} {
		avxIntBinary(m, false)
	}
	for _, m := range []string{"VPXOR", "VPCMPGTB", "VPCMPGTW", "VPCMPGTD", "VPCMPGTQ"} {
		avxIntBinary(m, true)
	}
	avxBinary(b, "VMPSADBW", "AVX", "VECINT", nil, false, true)
	b.instr("VMPSADBW", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false), imm(8))
	avxBinary(b, "VPALIGNR", "AVX", "VECINT", nil, false, true)
	b.instr("VPALIGNR", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false), imm(8))
	// Shifts.
	for _, m := range []string{"VPSLLW", "VPSLLD", "VPSLLQ", "VPSRLW", "VPSRLD", "VPSRLQ", "VPSRAW", "VPSRAD"} {
		b.instr(m, "AVX", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false), reg("XMM", true, false))
		b.instr(m, "AVX", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false), imm(8))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("XMM", true, false))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), imm(8))
	}
	// AVX2 variable shifts.
	for _, m := range []string{"VPSLLVD", "VPSLLVQ", "VPSRLVD", "VPSRLVQ", "VPSRAVD"} {
		b.instr(m, "AVX2", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false), reg("XMM", true, false))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false))
	}
	// AVX2 permutes, broadcasts, lane ops.
	for _, m := range []string{"VPSHUFD", "VPSHUFLW", "VPSHUFHW"} {
		b.instr(m, "AVX", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false), imm(8))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), imm(8))
	}
	b.instr("VPERMD", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false))
	b.instr("VPERMQ", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), imm(8))
	b.instr("VPERMPS", "AVX2", "FP", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false))
	b.instr("VPERMPD", "AVX2", "FP", nil, reg("YMM", false, true), reg("YMM", true, false), imm(8))
	b.instr("VPERM2I128", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("YMM", true, false), imm(8))
	b.instr("VEXTRACTI128", "AVX2", "VECINT", nil, reg("XMM", false, true), reg("YMM", true, false), imm(8))
	b.instr("VINSERTI128", "AVX2", "VECINT", nil, reg("YMM", false, true), reg("YMM", true, false), reg("XMM", true, false), imm(8))
	for _, m := range []string{"VPBROADCASTB", "VPBROADCASTW", "VPBROADCASTD", "VPBROADCASTQ"} {
		b.instr(m, "AVX2", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("XMM", true, false))
	}
	b.instr("VPMOVMSKB", "AVX2", "VECINT", nil, reg("GPR32", false, true), reg("YMM", true, false))
	for _, m := range []string{"VPMOVSXBW", "VPMOVSXWD", "VPMOVSXDQ", "VPMOVZXBW", "VPMOVZXWD", "VPMOVZXDQ"} {
		b.instr(m, "AVX", "VECINT", nil, reg("XMM", false, true), reg("XMM", true, false))
		b.instr(m, "AVX2", "VECINT", nil, reg("YMM", false, true), reg("XMM", true, false))
	}
	// Gathers (AVX2).
	for _, m := range []string{"VPGATHERDD", "VGATHERDPS"} {
		dom := "VECINT"
		if m == "VGATHERDPS" {
			dom = "FP"
		}
		b.instr(m, "AVX2", dom, nil, reg("XMM", true, true), mem(128, true, false), reg("XMM", true, true))
		b.instr(m, "AVX2", dom, nil, reg("YMM", true, true), mem(256, true, false), reg("YMM", true, true))
	}
	// Conversions.
	for _, m := range []string{"VCVTDQ2PS", "VCVTPS2DQ", "VCVTTPS2DQ"} {
		avxUnary(b, m, "AVX", "FP", nil, true, false)
	}
	avxUnary(b, "VCVTPS2PD", "AVX", "FP", nil, false, false)
	b.instr("VCVTPS2PD", "AVX", "FP", nil, reg("YMM", false, true), reg("XMM", true, false))
	b.instr("VCVTPD2PS", "AVX", "FP", nil, reg("XMM", false, true), reg("YMM", true, false))
}

// FMA ----------------------------------------------------------------------------

func genFMA(b *Builder) {
	for _, form := range []string{"132", "213", "231"} {
		for _, kind := range []string{"PS", "PD", "SS", "SD"} {
			for _, op := range []string{"VFMADD", "VFMSUB", "VFNMADD", "VFNMSUB"} {
				mnemonic := op + form + kind
				wantYMM := kind == "PS" || kind == "PD"
				memWidth := 128
				switch kind {
				case "SS":
					memWidth = 32
				case "SD":
					memWidth = 64
				}
				// FMA destination is also a source (op1 rw).
				b.instr(mnemonic, "FMA", "FP", nil,
					reg("XMM", true, true), reg("XMM", true, false), reg("XMM", true, false))
				b.instr(mnemonic, "FMA", "FP", nil,
					reg("XMM", true, true), reg("XMM", true, false), mem(memWidth, true, false))
				if wantYMM {
					b.instr(mnemonic, "FMA", "FP", nil,
						reg("YMM", true, true), reg("YMM", true, false), reg("YMM", true, false))
					b.instr(mnemonic, "FMA", "FP", nil,
						reg("YMM", true, true), reg("YMM", true, false), mem(256, true, false))
				}
			}
		}
	}
}

// F16C ------------------------------------------------------------------------------

func genF16C(b *Builder) {
	b.instr("VCVTPH2PS", "F16C", "FP", nil, reg("XMM", false, true), reg("XMM", true, false))
	b.instr("VCVTPH2PS", "F16C", "FP", nil, reg("YMM", false, true), reg("XMM", true, false))
	b.instr("VCVTPH2PS", "F16C", "FP", nil, reg("XMM", false, true), mem(64, true, false))
	b.instr("VCVTPS2PH", "F16C", "FP", nil, reg("XMM", false, true), reg("XMM", true, false), imm(8))
	b.instr("VCVTPS2PH", "F16C", "FP", nil, reg("XMM", false, true), reg("YMM", true, false), imm(8))
	b.instr("VCVTPS2PH", "F16C", "FP", nil, mem(64, false, true), reg("XMM", true, false), imm(8))
}
