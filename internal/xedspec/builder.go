package xedspec

import (
	"fmt"
	"strings"
)

// Builder accumulates datafile entries. Generator functions (gen_base.go,
// gen_vector.go) use its helper methods to emit instruction variants in a
// uniform naming scheme: MNEMONIC_<OPTOKEN>[_<OPTOKEN>...], where operand
// tokens are R8/R16/R32/R64, M<width>, I<width>, XMM, YMM, MM.
type Builder struct {
	entries []*Entry
	seen    map[string]bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[string]bool)}
}

// Entries returns the accumulated entries.
func (b *Builder) Entries() []*Entry { return b.entries }

// add registers the entry, deriving its variant name from the mnemonic and
// explicit operand tokens if the name is empty. Duplicate names panic: the
// generator is static data, so a duplicate is a programming error.
func (b *Builder) add(e *Entry) *Entry {
	if e.Name == "" {
		e.Name = variantName(e.Mnemonic, e.Operands, e.Attrs)
	}
	if b.seen[e.Name] {
		panic(fmt.Sprintf("xedspec: duplicate generated variant %q", e.Name))
	}
	b.seen[e.Name] = true
	b.entries = append(b.entries, e)
	return e
}

// variantName derives the canonical variant name from a mnemonic and its
// explicit operands.
func variantName(mnemonic string, ops []EntryOperand, attrs []string) string {
	name := strings.ReplaceAll(mnemonic, " ", "_")
	for _, a := range attrs {
		if a == AttrLock {
			name = "LOCK_" + name
		}
		if a == AttrRep {
			name = "REP_" + name
		}
	}
	for _, op := range ops {
		if op.Implicit {
			continue
		}
		name += "_" + opToken(op)
	}
	return name
}

// opToken renders the operand-type token used in variant names.
func opToken(op EntryOperand) string {
	switch op.Kind {
	case "REG":
		switch op.Class {
		case "GPR8":
			return "R8"
		case "GPR16":
			return "R16"
		case "GPR32":
			return "R32"
		case "GPR64":
			return "R64"
		case "XMM":
			return "XMM"
		case "YMM":
			return "YMM"
		case "ZMM":
			return "ZMM"
		case "MMX":
			return "MM"
		}
		return "R?"
	case "MEM":
		return fmt.Sprintf("M%d", op.Width)
	case "IMM":
		return fmt.Sprintf("I%d", op.Width)
	case "FLAGS":
		return "FLAGS"
	}
	return "?"
}

// Operand construction helpers (datafile level).

func reg(class string, read, write bool) EntryOperand {
	return EntryOperand{Kind: "REG", Class: class, Width: classWidth(class), Read: read, Write: write}
}

func mem(width int, read, write bool) EntryOperand {
	return EntryOperand{Kind: "MEM", Width: width, Read: read, Write: write}
}

func imm(width int) EntryOperand {
	return EntryOperand{Kind: "IMM", Width: width, Read: true}
}

func flags(readSet, writeSet string) EntryOperand {
	return EntryOperand{
		Name: "FLAGS", Kind: "FLAGS", Width: 32,
		Read: readSet != "" && readSet != "-", Write: writeSet != "" && writeSet != "-",
		Implicit: true, ReadFlags: readSet, WriteFlags: writeSet,
	}
}

func impReg(regName, class string, read, write bool) EntryOperand {
	return EntryOperand{
		Kind: "REG", Class: class, Width: classWidth(class),
		Read: read, Write: write, Implicit: true, FixedReg: regName, Name: regName,
	}
}

func classWidth(class string) int {
	switch class {
	case "GPR8":
		return 8
	case "GPR16":
		return 16
	case "GPR32":
		return 32
	case "GPR64":
		return 64
	case "XMM":
		return 128
	case "YMM":
		return 256
	case "ZMM":
		return 512
	case "MMX":
		return 64
	case "FLAGS":
		return 32
	}
	return 0
}

// gprClass maps a width in bits to the general-purpose register class name.
func gprClass(width int) string {
	switch width {
	case 8:
		return "GPR8"
	case 16:
		return "GPR16"
	case 32:
		return "GPR32"
	case 64:
		return "GPR64"
	}
	panic(fmt.Sprintf("xedspec: no GPR class of width %d", width))
}

// instr emits a single variant. Operand names op1, op2, ... are assigned to
// the explicit operands in order; implicit operands keep their own names.
func (b *Builder) instr(mnemonic, ext, domain string, attrs []string, ops ...EntryOperand) *Entry {
	e := &Entry{Mnemonic: mnemonic, Extension: ext, Domain: domain, Attrs: attrs}
	expl := 0
	for _, op := range ops {
		if !op.Implicit {
			expl++
			op.Name = fmt.Sprintf("op%d", expl)
		} else if op.Name == "" {
			op.Name = op.FixedReg
		}
		e.Operands = append(e.Operands, op)
	}
	return b.add(e)
}

// attrs is a small helper to build attribute lists.
func attrs(names ...string) []string { return names }

// Flag-set shorthands used across the generator tables. "CPAZSO" is the full
// status-flag set; shifts and rotates read the flags they conditionally
// preserve, which creates the implicit input dependency the paper discusses.
const (
	flagsAll   = "CF+PF+AF+ZF+SF+OF"
	flagsNoAF  = "CF+PF+ZF+SF+OF"
	flagsNoCF  = "PF+AF+ZF+SF+OF"
	flagsCF    = "CF"
	flagsCFOF  = "CF+OF"
	flagsZF    = "ZF"
	flagsNone  = "-"
	flagsCarry = "CF"
)
