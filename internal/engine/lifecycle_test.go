package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/uarch"
)

// TestRunDigestIdentity pins the coalescing-key/ETag contract: equal run
// parameters yield equal digests, and any parameter that changes the result
// body changes the digest.
func TestRunDigestIdentity(t *testing.T) {
	e := mustNew(t, Config{})
	base := RunOptions{Only: testOnly}
	d1, err := e.RunDigest(uarch.Skylake, base)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.RunDigest(uarch.Skylake, RunOptions{Only: testOnly})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("equal run parameters produced different digests")
	}
	if d1.String() == "" {
		t.Error("digest renders empty")
	}
	for name, opts := range map[string]RunOptions{
		"different variant set": {Only: testOnly[:2]},
		"quick mode":            {Only: testOnly, SkipPortUsage: true, SkipThroughput: true},
	} {
		d, err := e.RunDigest(uarch.Skylake, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d == d1 {
			t.Errorf("%s did not change the digest", name)
		}
	}
	d3, err := e.RunDigest(uarch.SandyBridge, base)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("different generation did not change the digest")
	}
	if _, err := e.RunDigest(uarch.Generation(99), base); err == nil {
		t.Error("out-of-range generation did not fail")
	}
}

// TestDrainIdle checks Drain returns immediately when nothing is in flight.
func TestDrainIdle(t *testing.T) {
	e := mustNew(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain with no flights: %v", err)
	}
}

// TestFlightProgressPhases observes a gated run from the outside: during
// blocking discovery FlightProgress reports the "blocking" phase (with the
// shared per-generation discovery counters), and once the run completes the
// flight is gone.
func TestFlightProgressPhases(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	e := mustNew(t, Config{
		Workers: 2,
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	opts := RunOptions{Only: testOnly}
	dig, err := e.RunDigest(uarch.Skylake, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.FlightProgress(dig); ok {
		t.Fatal("a flight exists before any run started")
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts)
		done <- err
	}()
	if !waitForStat(t, e, "the run to start", func(s Stats) bool { return s.Runs == 1 }) {
		close(released)
		t.FailNow()
	}
	// The gate holds the run inside its first blocking-progress callback, so
	// the flight stays observable in its blocking phase until we release it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		p, ok := e.FlightProgress(dig)
		if !ok {
			close(released)
			t.Fatal("running flight not observable by digest")
		}
		if p.Phase == "blocking" && p.BlockingDone >= 1 {
			if p.BlockingTotal <= 0 {
				t.Errorf("blocking phase reports %d/%d candidates", p.BlockingDone, p.BlockingTotal)
			}
			break
		}
		if time.Now().After(deadline) {
			close(released)
			t.Fatalf("flight never reported blocking-discovery progress (at %+v)", p)
		}
		time.Sleep(time.Millisecond)
	}
	close(released)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, ok := e.FlightProgress(dig); ok {
		t.Error("flight still observable after the run completed")
	}
}

// TestFlightRecordsStream streams a live run through FlightRecords and checks
// the observer protocol: every measured variant shows up exactly once, the
// changed channel fires on completion, and a finished run reports ok=false.
func TestFlightRecordsStream(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	// The run blocks after its first measured variant until the observer has
	// streamed it, so at least one record is deterministically seen live.
	sawFirst := make(chan struct{})
	opts := RunOptions{Only: testOnly, Progress: func(done, total int, name string) {
		if done == 1 {
			<-sawFirst
		}
	}}
	dig, err := e.RunDigest(uarch.Skylake, RunOptions{Only: testOnly})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *core.ArchResult
		err error
	}
	runDone := make(chan outcome, 1)
	go func() {
		res, err := e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts)
		runDone <- outcome{res, err}
	}()

	// The documented observer protocol: drain, advance, wait on changed; when
	// the flight is gone (ok == false) fall back to the completed result for
	// any records that landed after the last drain.
	var release sync.Once
	seen := map[string]int{}
	from := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, changed, ok := e.FlightRecords(dig, from)
		if !ok {
			if from == 0 && time.Now().Before(deadline) {
				// The flight has not started yet; re-probe.
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
		for _, r := range recs {
			if r.Record == nil {
				t.Errorf("streamed record %s is nil", r.Name)
			}
			seen[r.Name]++
		}
		from += len(recs)
		if from >= 1 {
			release.Do(func() { close(sawFirst) })
		}
		select {
		case <-changed:
		case <-time.After(30 * time.Second):
			t.Fatalf("stream stalled after %d records", from)
		}
	}
	release.Do(func() { close(sawFirst) })
	out := <-runDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("variant %s streamed %d times", name, n)
		}
		if out.res.Results[name] == nil {
			t.Errorf("streamed variant %s is not in the final result", name)
		}
	}
	replayed := 0
	for _, name := range out.res.Names() {
		if seen[name] == 0 {
			replayed++
		}
	}
	if len(seen)+replayed != len(testOnly) {
		t.Errorf("streamed %d + replayed %d variants, want %d total", len(seen), replayed, len(testOnly))
	}
	if len(seen) == 0 {
		t.Error("no variant was streamed live; everything fell through to replay")
	}
}

// TestBaseContextQuiescesDetachedRun is the shutdown regression: a coalesced
// run whose only waiter went away keeps running detached — cancelling the
// engine's base context must abort it so Drain returns promptly, and later
// admissions fail fast.
func TestBaseContextQuiescesDetachedRun(t *testing.T) {
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	released := make(chan struct{})
	var gate sync.Once
	e := mustNew(t, Config{
		Workers:     2,
		BaseContext: baseCtx,
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	opts := RunOptions{Only: testOnly}

	// The leader executes the run inline; its goroutine stands in for an HTTP
	// handler whose client has already hung up.
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts)
		leaderDone <- err
	}()
	if !waitForStat(t, e, "the run to start", func(s Stats) bool { return s.Runs == 1 }) {
		close(released)
		t.FailNow()
	}

	// A coalesced waiter attaches and leaves again; the run keeps going.
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArchContext(waiterCtx, uarch.Skylake, opts)
		waiterDone <- err
	}()
	if !waitForStat(t, e, "the waiter to attach", func(s Stats) bool { return s.CoalescedWaiters == 1 }) {
		close(released)
		t.FailNow()
	}
	waiterCancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	// Shutdown: cancel the run lifetime, release the gate, drain. The gated
	// run must abort instead of measuring on.
	baseCancel()
	close(released)
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run returned %v, want context.Canceled", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(drainCtx); err != nil {
		t.Fatalf("engine did not quiesce after base cancel: %v", err)
	}
	if st := e.Stats(); st.VariantsMeasured != 0 {
		t.Errorf("aborted run still measured %d variants", st.VariantsMeasured)
	}

	// New work is refused at admission once the base context is gone.
	if _, err := e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("post-shutdown admission returned %v, want context.Canceled", err)
	}
}
