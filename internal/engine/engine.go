// Package engine is the single entry point for building and running
// characterization stacks. It owns the construction of the
// simulator/harness/characterizer tower for a microarchitecture generation,
// the sharding budget for parallel runs, and the persistent result store, so
// that every command-line tool gets the same -j / -cache behaviour from the
// same code path instead of assembling the layers by hand.
//
// The engine guarantees the layer's determinism contract end to end: blocking
// discovery and per-variant characterization are sharded across forked worker
// stacks with deterministic merges, and cached results round-trip exactly, so
// the emitted XML is byte-identical for any worker count and for cold vs.
// warm caches.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"uopsinfo/internal/core"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

// Config controls how the engine builds its stacks.
type Config struct {
	// Workers is the total parallel worker budget shared by everything the
	// engine runs: blocking discovery, per-variant characterization and
	// concurrent per-generation prewarming all draw from it. <= 0 selects
	// core.DefaultWorkers() (one worker per CPU).
	Workers int
	// CacheDir, if non-empty, enables the persistent result store rooted at
	// that directory: discovered blocking sets and characterization results
	// are reused across process runs. Misses and corrupt entries silently
	// fall through to recomputation.
	CacheDir string
	// Measure is the measurement-protocol configuration for every harness
	// the engine builds. The zero value selects measure.DefaultConfig().
	Measure measure.Config
	// BlockingProgress, if non-nil, is called after each candidate during
	// blocking-instruction discovery of any generation.
	BlockingProgress func(gen uarch.Generation, done, total int, name string)
}

// Engine builds and caches one characterization stack per generation.
type Engine struct {
	cfg  Config
	mcfg measure.Config
	st   *store.Store

	mu    sync.Mutex
	chars map[uarch.Generation]*charEntry
}

// charEntry makes concurrent requests for the same generation build the
// stack exactly once.
type charEntry struct {
	once sync.Once
	c    *core.Characterizer
	err  error
}

// New returns an engine for the configuration. It fails only if the cache
// directory is set and cannot be created.
func New(cfg Config) (*Engine, error) {
	mcfg := cfg.Measure
	if mcfg == (measure.Config{}) {
		mcfg = measure.DefaultConfig()
	}
	e := &Engine{cfg: cfg, mcfg: mcfg, chars: make(map[uarch.Generation]*charEntry)}
	if cfg.CacheDir != "" {
		st, err := store.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		e.st = st
	}
	return e, nil
}

// Default returns an engine with the default configuration: the default
// measurement protocol, a DefaultWorkers budget, and no persistent store.
func Default() *Engine {
	e, err := New(Config{})
	if err != nil {
		// Unreachable: New only fails when a cache directory is configured.
		panic(err)
	}
	return e
}

// Workers returns the engine's total worker budget.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return core.DefaultWorkers()
}

// Harness builds a fresh, independent measurement stack (simulator plus
// harness) for a generation, e.g. for direct sequence measurements or
// prior-work baselines that must not share simulator state with the
// characterizer.
func (e *Engine) Harness(gen uarch.Generation) *measure.Harness {
	return measure.NewWithConfig(pipesim.New(uarch.Get(gen)), e.mcfg)
}

// Characterizer returns the (lazily built, cached) characterizer for a
// generation with its blocking-instruction set ready: restored from the
// persistent store when possible, discovered in parallel under the engine's
// worker budget otherwise.
func (e *Engine) Characterizer(gen uarch.Generation) (*core.Characterizer, error) {
	return e.characterizer(gen, e.Workers())
}

func (e *Engine) characterizer(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	e.mu.Lock()
	ent, ok := e.chars[gen]
	if !ok {
		ent = &charEntry{}
		e.chars[gen] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.c, ent.err = e.build(gen, workers) })
	return ent.c, ent.err
}

// build constructs the full stack for a generation and ensures its blocking
// set, via the store or parallel discovery.
func (e *Engine) build(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	arch := uarch.Get(gen)
	c := core.New(e.Harness(gen))
	key := e.key(arch, store.KindBlocking)
	if e.st != nil {
		if rec, ok := e.st.LoadBlocking(key); ok {
			if bs, ok := rec.Restore(arch.InstrSet()); ok {
				c.SetBlocking(bs)
				return c, nil
			}
		}
	}
	opts := core.Options{Workers: workers}
	if e.cfg.BlockingProgress != nil {
		opts.BlockingProgress = func(done, total int, name string) {
			e.cfg.BlockingProgress(gen, done, total, name)
		}
	}
	bs, err := c.DiscoverBlocking(opts)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: discovering blocking instructions: %w", arch.Name(), err)
	}
	if e.st != nil {
		// Best-effort: a failed cache write must not lose the discovery that
		// just completed; the next run simply recomputes.
		_ = e.st.SaveBlocking(key, store.RecordBlocking(bs))
	}
	return c, nil
}

// key builds the store key for a generation: the content hash covers the
// generation, the measurement configuration and the full ISA variant set, so
// any change to the universe invalidates cached entries.
func (e *Engine) key(arch *uarch.Arch, scope string) store.Key {
	instrs := arch.InstrSet().Instrs()
	variants := make([]string, len(instrs))
	for i, in := range instrs {
		variants[i] = in.Name
	}
	return store.Key{Arch: arch.Name(), Measure: e.mcfg, Variants: variants, Scope: scope}
}

// RunOptions controls one whole-ISA characterization run through the engine.
type RunOptions struct {
	// Only restricts the run to the named variants (all variants if empty).
	Only []string
	// SkipLatency, SkipPortUsage and SkipThroughput disable parts of the
	// characterization, as in core.Options.
	SkipLatency    bool
	SkipPortUsage  bool
	SkipThroughput bool
	// Workers overrides the engine's worker budget for this run (e.g. when a
	// caller splits its budget across concurrent generations). <= 0 uses the
	// engine budget.
	Workers int
	// Progress, if non-nil, is called after each instruction.
	Progress func(done, total int, name string)
}

// scope derives the result-store scope string for the run: everything that
// changes the result (and nothing that does not — worker counts and progress
// callbacks are excluded by the determinism guarantee).
func (o RunOptions) scope() string {
	return fmt.Sprintf("result skipLatency=%v skipPortUsage=%v skipThroughput=%v only=%s",
		o.SkipLatency, o.SkipPortUsage, o.SkipThroughput, strings.Join(o.Only, ","))
}

// CharacterizeArch runs (or loads from the store) the characterization of
// one generation. On a store hit the result is returned without building a
// characterizer; on a miss the run is sharded across the worker budget and
// the result persisted for the next invocation.
func (e *Engine) CharacterizeArch(gen uarch.Generation, opts RunOptions) (*core.ArchResult, error) {
	arch := uarch.Get(gen)
	key := e.key(arch, opts.scope())
	if e.st != nil {
		if res, ok := e.st.LoadResult(key); ok {
			return res, nil
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = e.Workers()
	}
	c, err := e.characterizer(gen, workers)
	if err != nil {
		return nil, err
	}
	copts := core.Options{
		Only:           opts.Only,
		SkipLatency:    opts.SkipLatency,
		SkipPortUsage:  opts.SkipPortUsage,
		SkipThroughput: opts.SkipThroughput,
		Progress:       opts.Progress,
		Workers:        workers,
	}
	res, err := c.CharacterizeAll(copts)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", arch.Name(), err)
	}
	if e.st != nil {
		// Best-effort, as for blocking sets: the computed result wins over a
		// failed cache write.
		_ = e.st.SaveResult(key, res)
	}
	return res, nil
}

// SplitBudget divides a total worker budget across parts that run
// concurrently, so the total parallelism stays within budget: at most
// min(budget, parts) entries run at once, each entry gets budget/parts
// workers (at least 1), and the division remainder is spread over the first
// entries so the full budget is used. For example, a budget of 8 over 5
// parts yields 2,2,2,1,1.
func SplitBudget(budget, parts int) []int {
	if parts <= 0 {
		return nil
	}
	if budget < 1 {
		budget = 1
	}
	outer := budget
	if outer > parts {
		outer = parts
	}
	inner := budget / outer
	extra := budget % outer
	split := make([]int, parts)
	for i := range split {
		split[i] = 1
		if i < outer {
			split[i] = inner
			if i < extra {
				split[i]++
			}
		}
	}
	return split
}

// Prewarm builds the characterizers (including blocking discovery) for the
// given generations concurrently, splitting the engine's worker budget
// between the generation level and the per-candidate level so the total
// parallelism stays within budget. Duplicate generations are built once.
func (e *Engine) Prewarm(gens []uarch.Generation) error {
	seen := make(map[uarch.Generation]bool, len(gens))
	unique := make([]uarch.Generation, 0, len(gens))
	for _, gen := range gens {
		if !seen[gen] {
			seen[gen] = true
			unique = append(unique, gen)
		}
	}
	if len(unique) == 0 {
		return nil
	}
	budget := e.Workers()
	split := SplitBudget(budget, len(unique))
	outer := budget
	if outer > len(unique) {
		outer = len(unique)
	}

	errs := make([]error, len(unique))
	sem := make(chan struct{}, outer)
	var wg sync.WaitGroup
	for i, gen := range unique {
		wg.Add(1)
		go func(i int, gen uarch.Generation, workers int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = e.characterizer(gen, workers)
		}(i, gen, split[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}
