// Package engine is the single entry point for building and running
// characterization stacks. It owns the selection of the measurement backend
// (the execution substrate, resolved from the measure package's backend
// registry), the construction of the runner/harness/characterizer tower for
// a microarchitecture generation, the sharding budget for parallel runs, and
// the persistent result store, so that every command-line tool gets the same
// -j / -cache / -backend behaviour from the same code path instead of
// assembling the layers by hand.
//
// The engine guarantees the layer's determinism contract end to end: blocking
// discovery and per-variant characterization are sharded across forked worker
// stacks with deterministic merges, and cached results round-trip exactly, so
// the emitted XML is byte-identical for any worker count, any backend, and
// any cold/warm/partially-warm cache state.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"uopsinfo/internal/core"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

// Config controls how the engine builds its stacks.
type Config struct {
	// Workers is the total parallel worker budget shared by everything the
	// engine runs: blocking discovery, per-variant characterization and
	// concurrent per-generation prewarming all draw from it. <= 0 selects
	// core.DefaultWorkers() (one worker per CPU).
	Workers int
	// CacheDir, if non-empty, enables the persistent result store rooted at
	// that directory: discovered blocking sets, whole-ISA results and
	// per-variant measurements are reused across process runs. Misses and
	// corrupt entries silently fall through to recomputation.
	CacheDir string
	// Backend names the measurement backend (execution substrate) to build
	// runners from, as registered in the measure package's backend registry.
	// Empty selects measure.DefaultBackend; an unregistered name makes New
	// fail with an error listing the registered backends.
	Backend string
	// Measure is the measurement-protocol configuration for every harness
	// the engine builds. The zero value selects measure.DefaultConfig().
	Measure measure.Config
	// BlockingProgress, if non-nil, is called after each candidate during
	// blocking-instruction discovery of any generation.
	BlockingProgress func(gen uarch.Generation, done, total int, name string)
	// Log, if non-nil, receives diagnostics that must not fail a run but
	// should not vanish either — most importantly persistent-store save
	// errors, which are otherwise only counted in Stats. The CLI tools wire
	// it to their logger under -v.
	Log func(format string, args ...interface{})
}

// Stats are cumulative counters of the engine's cache and measurement
// activity since New. They make cache behaviour observable: a warm
// incremental run reports variant hits for the cached entries and measures
// only the missing ones.
type Stats struct {
	// BlockingHits and BlockingMisses count blocking-set store lookups.
	BlockingHits, BlockingMisses int
	// ResultHits and ResultMisses count whole-ISA result store lookups.
	ResultHits, ResultMisses int
	// VariantHits is the number of per-variant records served from the
	// store; VariantsMeasured is the number of variants actually measured
	// (store misses, or all requested variants when no store is configured).
	VariantHits, VariantsMeasured int
	// SaveErrors counts failed store writes. The computed result always
	// wins over a failed write — the next run simply recomputes — but the
	// failures are counted here and logged through Config.Log instead of
	// being dropped.
	SaveErrors int
}

// Engine builds and caches one characterization stack per generation.
type Engine struct {
	cfg     Config
	mcfg    measure.Config
	backend measure.Backend
	st      *store.Store

	mu    sync.Mutex
	chars map[uarch.Generation]*charEntry

	// idxMu serializes read-merge-write updates of per-variant indexes, so
	// concurrent generations (or concurrent runs of one engine) cannot lose
	// each other's index entries.
	idxMu sync.Mutex

	statsMu sync.Mutex
	stats   Stats
}

// charEntry makes concurrent requests for the same generation build the
// stack exactly once.
type charEntry struct {
	once sync.Once
	c    *core.Characterizer
	err  error
}

// New returns an engine for the configuration. It fails if the configured
// backend is not registered or if the cache directory is set and cannot be
// created.
func New(cfg Config) (*Engine, error) {
	mcfg := cfg.Measure
	if mcfg == (measure.Config{}) {
		mcfg = measure.DefaultConfig()
	}
	name := cfg.Backend
	if name == "" {
		name = measure.DefaultBackend
	}
	backend, ok := measure.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown measurement backend %q (registered backends: %s)",
			name, strings.Join(measure.Names(), ", "))
	}
	e := &Engine{cfg: cfg, mcfg: mcfg, backend: backend, chars: make(map[uarch.Generation]*charEntry)}
	if cfg.CacheDir != "" {
		st, err := store.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		e.st = st
	}
	return e, nil
}

// Default returns an engine with the default configuration: the default
// backend and measurement protocol, a DefaultWorkers budget, and no
// persistent store.
func Default() *Engine {
	e, err := New(Config{})
	if err != nil {
		// Unreachable: the default backend is always registered and New
		// only fails otherwise when a cache directory is configured.
		panic(err)
	}
	return e
}

// Workers returns the engine's total worker budget.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return core.DefaultWorkers()
}

// Backend returns the measurement backend the engine builds runners from.
func (e *Engine) Backend() measure.Backend { return e.backend }

// fingerprint is the backend identity folded into every cache key: results
// from different backends, or different revisions of one backend, never
// share store entries.
func (e *Engine) fingerprint() string {
	return e.backend.Name() + "@" + e.backend.Version()
}

// Stats returns a snapshot of the engine's cumulative cache and measurement
// counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

func (e *Engine) count(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// saved accounts for a store write: failures are counted in Stats and
// reported through Config.Log, never returned — the computed result always
// wins over a failed cache write, and the next run simply recomputes.
func (e *Engine) saved(err error) {
	if err == nil {
		return
	}
	e.count(func(s *Stats) { s.SaveErrors++ })
	if e.cfg.Log != nil {
		e.cfg.Log("engine: persistent store: %v", err)
	}
}

// Harness builds a fresh, independent measurement stack (a runner from the
// configured backend plus a harness) for a generation, e.g. for direct
// sequence measurements or prior-work baselines that must not share
// substrate state with the characterizer.
func (e *Engine) Harness(gen uarch.Generation) (*measure.Harness, error) {
	r, err := e.backend.NewRunner(gen)
	if err != nil {
		return nil, fmt.Errorf("engine: backend %s: building runner for %s: %w", e.backend.Name(), gen, err)
	}
	return measure.NewWithConfig(r, e.mcfg), nil
}

// Characterizer returns the (lazily built, cached) characterizer for a
// generation with its blocking-instruction set ready: restored from the
// persistent store when possible, discovered in parallel under the engine's
// worker budget otherwise.
func (e *Engine) Characterizer(gen uarch.Generation) (*core.Characterizer, error) {
	return e.characterizer(gen, e.Workers())
}

func (e *Engine) characterizer(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	e.mu.Lock()
	ent, ok := e.chars[gen]
	if !ok {
		ent = &charEntry{}
		e.chars[gen] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.c, ent.err = e.build(gen, workers) })
	return ent.c, ent.err
}

// build constructs the full stack for a generation and ensures its blocking
// set, via the store or parallel discovery.
func (e *Engine) build(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	arch := uarch.Get(gen)
	h, err := e.Harness(gen)
	if err != nil {
		return nil, err
	}
	c := core.New(h)
	key := e.key(arch, store.KindBlocking)
	if e.st != nil {
		if rec, ok := e.st.LoadBlocking(key); ok {
			if bs, ok := rec.Restore(arch.InstrSet()); ok {
				e.count(func(s *Stats) { s.BlockingHits++ })
				c.SetBlocking(bs)
				return c, nil
			}
		}
		e.count(func(s *Stats) { s.BlockingMisses++ })
	}
	opts := core.Options{Workers: workers}
	if e.cfg.BlockingProgress != nil {
		opts.BlockingProgress = func(done, total int, name string) {
			e.cfg.BlockingProgress(gen, done, total, name)
		}
	}
	bs, err := c.DiscoverBlocking(opts)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: discovering blocking instructions: %w", arch.Name(), err)
	}
	if e.st != nil {
		e.saved(e.st.SaveBlocking(key, store.RecordBlocking(bs)))
	}
	return c, nil
}

// key builds the store key for a generation: the content hash covers the
// generation, the backend fingerprint, the measurement configuration and the
// full ISA variant set, so any change to the universe invalidates cached
// entries.
func (e *Engine) key(arch *uarch.Arch, scope string) store.Key {
	instrs := arch.InstrSet().Instrs()
	variants := make([]string, len(instrs))
	for i, in := range instrs {
		variants[i] = in.Name
	}
	return store.Key{Arch: arch.Name(), Backend: e.fingerprint(), Measure: e.mcfg,
		Variants: variants, Scope: scope}
}

// RunOptions controls one whole-ISA characterization run through the engine.
type RunOptions struct {
	// Only restricts the run to the named variants (all variants if empty).
	Only []string
	// SkipLatency, SkipPortUsage and SkipThroughput disable parts of the
	// characterization, as in core.Options.
	SkipLatency    bool
	SkipPortUsage  bool
	SkipThroughput bool
	// Workers overrides the engine's worker budget for this run (e.g. when a
	// caller splits its budget across concurrent generations). <= 0 uses the
	// engine budget.
	Workers int
	// Progress, if non-nil, is called after each measured instruction
	// (variants served from the per-variant cache are not re-measured and
	// not reported).
	Progress func(done, total int, name string)
}

// scope derives the whole-ISA result-store scope string for the run:
// everything that changes the result (and nothing that does not — worker
// counts and progress callbacks are excluded by the determinism guarantee).
func (o RunOptions) scope() string {
	return fmt.Sprintf("result skipLatency=%v skipPortUsage=%v skipThroughput=%v only=%s",
		o.SkipLatency, o.SkipPortUsage, o.SkipThroughput, strings.Join(o.Only, ","))
}

// variantScope derives the per-variant store scope: like scope, but without
// the variant selection, so runs over different subsets share per-variant
// entries (that sharing is the point of the incremental tier).
func (o RunOptions) variantScope() string {
	return fmt.Sprintf("variant skipLatency=%v skipPortUsage=%v skipThroughput=%v",
		o.SkipLatency, o.SkipPortUsage, o.SkipThroughput)
}

// selection resolves the run's variant selection to canonical variant names.
// ok == false means a name does not resolve; the engine then skips the
// per-variant tier and lets the scheduler produce its usual error.
func selection(arch *uarch.Arch, only []string) (names []string, ok bool) {
	set := arch.InstrSet()
	if len(only) == 0 {
		instrs := set.Instrs()
		names = make([]string, len(instrs))
		for i, in := range instrs {
			names[i] = in.Name
		}
		return names, true
	}
	names = make([]string, 0, len(only))
	for _, name := range only {
		in := set.Lookup(name)
		if in == nil {
			return nil, false
		}
		names = append(names, in.Name)
	}
	return names, true
}

// CharacterizeArch runs (or loads from the store) the characterization of
// one generation. The store is consulted in two tiers: an exact whole-ISA
// hit is returned without building a characterizer at all; otherwise the
// per-variant tier supplies every already-measured variant and only the
// missing ones are scheduled (sharded across the worker budget) through the
// scheduler's resume entry point. Newly measured variants, the updated
// per-variant index and the merged whole-ISA result are persisted for the
// next invocation. The merged result is byte-identical to a cold run for any
// worker count and any warm/cold mix.
func (e *Engine) CharacterizeArch(gen uarch.Generation, opts RunOptions) (*core.ArchResult, error) {
	arch := uarch.Get(gen)
	rkey := e.key(arch, opts.scope())
	if e.st != nil {
		if res, ok := e.st.LoadResult(rkey); ok {
			e.count(func(s *Stats) { s.ResultHits++ })
			return res, nil
		}
		e.count(func(s *Stats) { s.ResultMisses++ })
	}

	var vdig store.Digest
	partial := make(map[string]*core.InstrResult)
	if e.st != nil {
		names, resolved := selection(arch, opts.Only)
		// The variant-tier digest is computed once: deriving each
		// per-variant filename from it is O(1), so probing (and later
		// persisting) N variants does not re-hash the N-variant universe N
		// times.
		vdig = e.key(arch, opts.variantScope()).Digest()
		if resolved {
			if idx, ok := e.st.LoadVariantIndex(vdig); ok {
				for _, name := range names {
					if partial[name] != nil || !idx.Has(name) {
						continue
					}
					if rec, ok := e.st.LoadVariant(vdig, name); ok {
						partial[name] = rec
					}
				}
			}
			e.count(func(s *Stats) { s.VariantHits += len(partial) })
		}

		// Full per-variant coverage: merge without building a characterizer
		// (no runner construction, no blocking discovery).
		if resolved && len(names) > 0 && len(partial) > 0 {
			complete := true
			for _, name := range names {
				if partial[name] == nil {
					complete = false
					break
				}
			}
			if complete {
				res := core.NewArchResult(arch.Name())
				for _, name := range names {
					res.Results[name] = partial[name]
				}
				e.saved(e.st.SaveResult(rkey, res))
				return res, nil
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = e.Workers()
	}
	c, err := e.characterizer(gen, workers)
	if err != nil {
		return nil, err
	}
	copts := core.Options{
		Only:           opts.Only,
		SkipLatency:    opts.SkipLatency,
		SkipPortUsage:  opts.SkipPortUsage,
		SkipThroughput: opts.SkipThroughput,
		Progress:       opts.Progress,
		Workers:        workers,
	}
	res, err := c.CharacterizeResume(copts, partial)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", arch.Name(), err)
	}
	e.count(func(s *Stats) { s.VariantsMeasured += len(res.Results) - len(partial) })
	if e.st != nil {
		e.persistVariants(vdig, res, partial)
		e.saved(e.st.SaveResult(rkey, res))
	}
	return res, nil
}

// persistVariants writes the newly measured per-variant records and merges
// them into the per-variant index. The index update is read-merge-write
// under idxMu so concurrent runs on one engine never lose entries; across
// processes the atomic rename keeps the index consistent, and a lost entry
// only costs re-measuring that variant.
func (e *Engine) persistVariants(vdig store.Digest, res *core.ArchResult, partial map[string]*core.InstrResult) {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	idx, ok := e.st.LoadVariantIndex(vdig)
	if !ok {
		idx = store.NewVariantIndex()
	}
	changed := false
	for name, rec := range res.Results {
		if partial[name] != nil {
			continue
		}
		if err := e.st.SaveVariant(vdig, name, rec); err != nil {
			e.saved(err)
			continue
		}
		idx.Entries[name] = true
		changed = true
	}
	if changed {
		e.saved(e.st.SaveVariantIndex(vdig, idx))
	}
}

// SplitBudget divides a total worker budget across parts that run
// concurrently, so the total parallelism stays within budget: at most
// min(budget, parts) entries run at once, each entry gets budget/parts
// workers (at least 1), and the division remainder is spread over the first
// entries so the full budget is used. For example, a budget of 8 over 5
// parts yields 2,2,2,1,1.
func SplitBudget(budget, parts int) []int {
	if parts <= 0 {
		return nil
	}
	if budget < 1 {
		budget = 1
	}
	outer := budget
	if outer > parts {
		outer = parts
	}
	inner := budget / outer
	extra := budget % outer
	split := make([]int, parts)
	for i := range split {
		split[i] = 1
		if i < outer {
			split[i] = inner
			if i < extra {
				split[i]++
			}
		}
	}
	return split
}

// Prewarm builds the characterizers (including blocking discovery) for the
// given generations concurrently, splitting the engine's worker budget
// between the generation level and the per-candidate level so the total
// parallelism stays within budget. Duplicate generations are built once.
func (e *Engine) Prewarm(gens []uarch.Generation) error {
	seen := make(map[uarch.Generation]bool, len(gens))
	unique := make([]uarch.Generation, 0, len(gens))
	for _, gen := range gens {
		if !seen[gen] {
			seen[gen] = true
			unique = append(unique, gen)
		}
	}
	if len(unique) == 0 {
		return nil
	}
	budget := e.Workers()
	split := SplitBudget(budget, len(unique))
	outer := budget
	if outer > len(unique) {
		outer = len(unique)
	}

	errs := make([]error, len(unique))
	sem := make(chan struct{}, outer)
	var wg sync.WaitGroup
	for i, gen := range unique {
		wg.Add(1)
		go func(i int, gen uarch.Generation, workers int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = e.characterizer(gen, workers)
		}(i, gen, split[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}
