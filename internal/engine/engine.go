// Package engine is the single entry point for building and running
// characterization stacks. It owns the selection of the measurement backend
// (the execution substrate, resolved from the measure package's backend
// registry), the construction of the runner/harness/characterizer tower for
// a microarchitecture generation, the sharding budget for parallel runs, and
// the persistent result store, so that every command-line tool gets the same
// -j / -cache / -backend behaviour from the same code path instead of
// assembling the layers by hand.
//
// The engine guarantees the layer's determinism contract end to end: blocking
// discovery and per-variant characterization are sharded across forked worker
// stacks with deterministic merges, and cached results round-trip exactly, so
// the emitted XML is byte-identical for any worker count, any backend, and
// any cold/warm/partially-warm cache state.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"uopsinfo/internal/core"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

// Config controls how the engine builds its stacks.
type Config struct {
	// BaseContext, if non-nil, bounds the lifetime of every measurement run
	// the engine executes. Unlike the per-request context of
	// CharacterizeArchContext — which only governs how long that caller
	// waits — cancelling the base context aborts the in-flight runs
	// themselves (between candidates and between variants), so a server can
	// actually quiesce on shutdown instead of leaving a detached coalesced
	// run characterizing into the void. Nil means runs are never aborted.
	BaseContext context.Context
	// Workers is the total parallel worker budget shared by everything the
	// engine runs: blocking discovery, per-variant characterization and
	// concurrent per-generation prewarming all draw from it. <= 0 selects
	// core.DefaultWorkers() (one worker per CPU).
	Workers int
	// CacheDir, if non-empty, enables the persistent result store rooted at
	// that directory: discovered blocking sets, whole-ISA results and
	// per-variant measurements are reused across process runs. Misses fall
	// through to recomputation; corrupt entries additionally get counted and
	// quarantined (see Stats.Store).
	CacheDir string
	// StoreMaxBytes and StoreMaxFiles, when positive, bound the persistent
	// store: past a budget, whole cold digests are evicted
	// least-recently-used, per-variant tier first. Zero means unbounded.
	StoreMaxBytes int64
	StoreMaxFiles int64
	// StoreDurable selects full crash safety for store writes (fsync before
	// the rename, directory sync after it). uopsd turns it on — its store is
	// supposed to survive power cycles; the one-shot CLIs leave it off — a
	// cache entry lost in a crash costs one re-measurement.
	StoreDurable bool
	// Store, if non-nil, is used instead of opening CacheDir — the seam for
	// tests that need a store with an injected (fault-carrying) filesystem.
	Store *store.Store
	// Backend names the measurement backend (execution substrate) to build
	// runners from, as registered in the measure package's backend registry.
	// Empty selects measure.DefaultBackend; an unregistered name makes New
	// fail with an error listing the registered backends.
	Backend string
	// Measure is the measurement-protocol configuration for every harness
	// the engine builds. The zero value selects measure.DefaultConfig().
	Measure measure.Config
	// BlockingProgress, if non-nil, is called after each candidate during
	// blocking-instruction discovery of any generation.
	BlockingProgress func(gen uarch.Generation, done, total int, name string)
	// Log, if non-nil, receives diagnostics that must not fail a run but
	// should not vanish either — most importantly persistent-store save
	// errors, which are otherwise only counted in Stats. The CLI tools wire
	// it to their logger under -v.
	Log func(format string, args ...interface{})
}

// Stats are cumulative counters of the engine's cache, coalescing and
// measurement activity since New. They make cache behaviour observable: a
// warm incremental run reports variant hits for the cached entries and
// measures only the missing ones. The JSON field names are part of the
// characterization service's /v1/stats response.
type Stats struct {
	// BlockingHits and BlockingMisses count blocking-set store lookups.
	BlockingHits   int `json:"blockingHits"`
	BlockingMisses int `json:"blockingMisses"`
	// ResultHits and ResultMisses count whole-ISA result store lookups.
	ResultHits   int `json:"resultHits"`
	ResultMisses int `json:"resultMisses"`
	// VariantHits is the number of per-variant records served from the
	// store; VariantsMeasured is the number of variants actually measured
	// (store misses, or all requested variants when no store is configured).
	VariantHits      int `json:"variantHits"`
	VariantsMeasured int `json:"variantsMeasured"`
	// SaveErrors counts failed store writes. The computed result always
	// wins over a failed write — the next run simply recomputes — but the
	// failures are counted here and logged through Config.Log instead of
	// being dropped.
	SaveErrors int `json:"saveErrors"`
	// Runs counts CharacterizeArch executions that were not coalesced onto
	// an in-flight identical run (store-warm executions included — a warm
	// hit is still its own execution); CoalescedWaiters counts the requests
	// that instead attached to an in-flight run and shared its result. For
	// K concurrent identical cold requests, Runs increases by 1 and
	// CoalescedWaiters by K-1.
	Runs             int `json:"runs"`
	CoalescedWaiters int `json:"coalescedWaiters"`
	// PoolForked and PoolReused count worker-stack checkouts from the
	// per-generation fork pools: Forked built a fresh simulator/harness
	// stack, Reused picked up a warm one from a previous run (its simulator
	// arenas, memoized perf descriptions and repeat buffers intact).
	// PoolSeqBuilt and PoolSeqReused count, inside those pooled harnesses,
	// how often Measure materialized its n-copy repeat sequences versus
	// reusing the ones already buffered. Aggregated across generations,
	// including the raw-sequence pools behind SequencePool.
	PoolForked    int64 `json:"poolForked"`
	PoolReused    int64 `json:"poolReused"`
	PoolSeqBuilt  int64 `json:"poolSeqBuilt"`
	PoolSeqReused int64 `json:"poolSeqReused"`
	// Fleet carries the measurement-fleet counters (batches, retries,
	// hedges, per-worker health and latency) when the engine's backend
	// drives one (the "remote" backend); nil otherwise.
	Fleet *measure.FleetStats `json:"fleet,omitempty"`
	// Store carries the persistent store's lifecycle state (per-tier sizes,
	// degradation mode, corruption/quarantine/eviction/compaction counters)
	// when a store is configured; nil otherwise.
	Store *store.Stats `json:"store,omitempty"`
}

// Engine builds and caches one characterization stack per generation.
type Engine struct {
	cfg     Config
	mcfg    measure.Config
	backend measure.Backend
	st      *store.Store

	mu       sync.Mutex
	chars    map[uarch.Generation]*charEntry
	seqPools map[uarch.Generation]*seqPoolEntry

	// flightMu guards flights, the singleflight table of in-progress
	// CharacterizeArch runs keyed by the run's store digest: concurrent
	// identical queries coalesce onto one execution and fan its result out.
	// flightsWG tracks the in-flight executions for Drain.
	flightMu  sync.Mutex
	flights   map[store.Digest]*flight
	flightsWG sync.WaitGroup

	// blockMu guards blockProg, the latest blocking-discovery progress per
	// generation. Discovery happens at most once per generation (inside the
	// charEntry), but several flights of that generation may be waiting on
	// it; FlightProgress merges these counters into any flight still in its
	// blocking phase.
	blockMu   sync.Mutex
	blockProg map[uarch.Generation][2]int

	statsMu sync.Mutex
	stats   Stats
}

// charEntry makes concurrent requests for the same generation build the
// stack exactly once. built is set (atomically, after c and err) when the
// build has completed, so Stats can aggregate pool counters from finished
// entries without waiting on — or racing with — an in-progress build.
type charEntry struct {
	once  sync.Once
	c     *core.Characterizer
	err   error
	built atomic.Bool
}

// RunProgress is a point-in-time snapshot of one in-flight characterization
// run, exported so the HTTP service's job API can report per-phase progress.
// The JSON field names are part of the service's job-status responses.
type RunProgress struct {
	// Phase is "starting" (admission, store probes), "blocking" (the stack
	// is being built, including blocking-instruction discovery),
	// "measuring" (variants are being measured) or "done".
	Phase string `json:"phase"`
	// BlockingDone and BlockingTotal count blocking-discovery candidates for
	// the run's generation; they are zero outside the blocking phase and
	// when the blocking set came from the persistent store.
	BlockingDone  int `json:"blockingDone"`
	BlockingTotal int `json:"blockingTotal"`
	// VariantsDone and VariantsTotal count the variants actually measured by
	// this run; variants served from the per-variant store tier are not
	// included (they are already done when the measuring phase starts).
	VariantsDone  int `json:"variantsDone"`
	VariantsTotal int `json:"variantsTotal"`
}

// VariantRecord is one measured variant record of an in-flight run, exposed
// through FlightRecords so the service can stream results as they complete.
// The record is shared with the run's result; callers must not modify it.
type VariantRecord struct {
	Name   string            `json:"name"`
	Record *core.InstrResult `json:"record"`
}

// flight is one in-progress CharacterizeArch execution. res and err are
// written exactly once, before done is closed; waiters read them only after
// done. The mutex guards the observable run state (progress snapshot, the
// measured-record log and its change-notification channel), which outlives
// nothing: once the flight leaves the table, observers fall back to the
// completed result.
type flight struct {
	done chan struct{}
	res  *core.ArchResult
	err  error

	gen uarch.Generation

	mu      sync.Mutex
	prog    RunProgress
	records []VariantRecord
	changed chan struct{}
}

// setPhase publishes a phase transition, optionally (total >= 0) setting the
// variant totals of the measuring phase.
func (f *flight) setPhase(phase string, total int) {
	f.mu.Lock()
	f.prog.Phase = phase
	if total >= 0 {
		f.prog.VariantsTotal = total
	}
	f.mu.Unlock()
}

// addRecord appends one measured variant record and wakes every observer
// blocked on the previous changed channel.
func (f *flight) addRecord(name string, rec *core.InstrResult) {
	f.mu.Lock()
	f.records = append(f.records, VariantRecord{Name: name, Record: rec})
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
}

// finish marks the run done and closes the final changed channel (each
// channel instance is closed exactly once: addRecord always replaces the one
// it closes).
func (f *flight) finish() {
	f.mu.Lock()
	f.prog.Phase = "done"
	close(f.changed)
	f.mu.Unlock()
}

// New returns an engine for the configuration. It fails if the configured
// backend is not registered or if the cache directory is set and cannot be
// created.
func New(cfg Config) (*Engine, error) {
	mcfg := cfg.Measure
	if mcfg == (measure.Config{}) {
		mcfg = measure.DefaultConfig()
	}
	name := cfg.Backend
	if name == "" {
		name = measure.DefaultBackend
	}
	backend, ok := measure.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown measurement backend %q (registered backends: %s)",
			name, strings.Join(measure.Names(), ", "))
	}
	// A backend needing runtime configuration (the remote backend's fleet
	// URLs) must be ready now: its Version goes into every cache key, so
	// building on an unconfigured backend would mint keys from a
	// placeholder fingerprint.
	if rc, ok := backend.(measure.ReadyChecker); ok {
		if err := rc.Ready(); err != nil {
			return nil, fmt.Errorf("engine: backend %s: %w", name, err)
		}
	}
	e := &Engine{
		cfg:       cfg,
		mcfg:      mcfg,
		backend:   backend,
		chars:     make(map[uarch.Generation]*charEntry),
		seqPools:  make(map[uarch.Generation]*seqPoolEntry),
		flights:   make(map[store.Digest]*flight),
		blockProg: make(map[uarch.Generation][2]int),
	}
	if cfg.Store != nil {
		e.st = cfg.Store
	} else if cfg.CacheDir != "" {
		durability := store.DurabilityRename
		if cfg.StoreDurable {
			durability = store.DurabilityFull
		}
		st, err := store.OpenOptions(cfg.CacheDir, store.Options{
			Durability: durability,
			MaxBytes:   cfg.StoreMaxBytes,
			MaxFiles:   cfg.StoreMaxFiles,
			Log:        cfg.Log,
		})
		if err != nil {
			return nil, err
		}
		e.st = st
	}
	return e, nil
}

// Default returns an engine with the default configuration: the default
// backend and measurement protocol, a DefaultWorkers budget, and no
// persistent store.
func Default() *Engine {
	e, err := New(Config{})
	if err != nil {
		// Unreachable: the default backend is always registered and New
		// only fails otherwise when a cache directory is configured.
		panic(err)
	}
	return e
}

// Workers returns the engine's total worker budget.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return core.DefaultWorkers()
}

// Backend returns the measurement backend the engine builds runners from.
func (e *Engine) Backend() measure.Backend { return e.backend }

// MeasureConfig returns the measurement-protocol configuration every harness
// the engine builds runs under (part of the cache key and of the service's
// fleet-handshake identity).
func (e *Engine) MeasureConfig() measure.Config { return e.mcfg }

// baseCtx is the lifetime context of the engine's measurement runs.
func (e *Engine) baseCtx() context.Context {
	if e.cfg.BaseContext != nil {
		return e.cfg.BaseContext
	}
	return context.Background()
}

// Drain blocks until every in-flight characterization run has finished (or
// ctx expires). Together with a cancelled Config.BaseContext it is the
// shutdown protocol of a long-running server: stop admitting requests, cancel
// the base context, Drain — after which no engine goroutine is measuring.
func (e *Engine) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		e.flightsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("engine: draining in-flight runs: %w", ctx.Err())
	}
}

// RunDigest returns the store digest that identifies a run's full content
// universe (generation, backend fingerprint, measurement protocol, variant
// set, options). It is the engine's coalescing key, which makes it double as
// a cache-validator for HTTP conditional requests: equal digests mean
// byte-identical results, computed without building any stack or touching the
// store.
func (e *Engine) RunDigest(gen uarch.Generation, opts RunOptions) (store.Digest, error) {
	arch, err := uarch.Lookup(gen)
	if err != nil {
		return store.Digest{}, fmt.Errorf("engine: %w", err)
	}
	return e.key(arch, opts.scope()).Digest(), nil
}

// FlightProgress returns a progress snapshot of the in-flight run with the
// given digest, and whether such a run exists. A flight in its blocking phase
// reports the generation's blocking-discovery counters, which may be shared
// with (and advanced by) other flights of the same generation.
func (e *Engine) FlightProgress(dig store.Digest) (RunProgress, bool) {
	e.flightMu.Lock()
	f, ok := e.flights[dig]
	e.flightMu.Unlock()
	if !ok {
		return RunProgress{}, false
	}
	f.mu.Lock()
	p := f.prog
	f.mu.Unlock()
	if p.Phase == "blocking" {
		e.blockMu.Lock()
		bp := e.blockProg[f.gen]
		e.blockMu.Unlock()
		p.BlockingDone, p.BlockingTotal = bp[0], bp[1]
	}
	return p, true
}

// FlightRecords returns the variant records measured so far by the in-flight
// run with the given digest, starting at record index from, together with a
// channel that is closed as soon as another record lands (or the run
// finishes) and whether such a run exists at all. Observers stream a run by
// looping: emit the returned records, advance from, wait on changed. When the
// run no longer exists (ok == false) the observer falls back to the completed
// result. Records are shared with the run's result and must not be modified.
func (e *Engine) FlightRecords(dig store.Digest, from int) (recs []VariantRecord, changed <-chan struct{}, ok bool) {
	e.flightMu.Lock()
	f, fok := e.flights[dig]
	e.flightMu.Unlock()
	if !fok {
		return nil, nil, false
	}
	f.mu.Lock()
	if from < 0 {
		from = 0
	}
	if from < len(f.records) {
		recs = f.records[from:len(f.records):len(f.records)]
	}
	changed = f.changed
	f.mu.Unlock()
	return recs, changed, true
}

// fingerprint is the backend identity folded into every cache key: results
// from different backends, or different revisions of one backend, never
// share store entries.
func (e *Engine) fingerprint() string {
	return e.backend.Name() + "@" + e.backend.Version()
}

// Stats returns a snapshot of the engine's cumulative cache and measurement
// counters, including the fork-pool effectiveness counters aggregated across
// every generation whose stack has finished building.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	s := e.stats
	e.statsMu.Unlock()

	e.mu.Lock()
	entries := make([]*charEntry, 0, len(e.chars))
	//uopslint:ignore detrange entries only feed PoolStats.Add, a commutative integer aggregation
	for _, ent := range e.chars {
		entries = append(entries, ent)
	}
	seqEntries := make([]*seqPoolEntry, 0, len(e.seqPools))
	//uopslint:ignore detrange entries only feed PoolStats.Add, a commutative integer aggregation
	for _, ent := range e.seqPools {
		seqEntries = append(seqEntries, ent)
	}
	e.mu.Unlock()
	var pool measure.PoolStats
	for _, ent := range entries {
		if ent.built.Load() && ent.c != nil {
			pool = pool.Add(ent.c.PoolStats())
		}
	}
	for _, ent := range seqEntries {
		if ent.built.Load() && ent.pool != nil {
			pool = pool.Add(ent.pool.Stats())
		}
	}
	s.PoolForked += pool.Forked
	s.PoolReused += pool.Reused
	s.PoolSeqBuilt += pool.SeqBuilt
	s.PoolSeqReused += pool.SeqReused
	if fr, ok := e.backend.(measure.FleetReporter); ok {
		if fs, ok := fr.FleetStats(); ok {
			s.Fleet = &fs
		}
	}
	if e.st != nil {
		ss := e.st.Stats()
		s.Store = &ss
	}
	return s
}

// StoreMode reports the persistent store's degradation mode (store.ModeOK,
// ModeReadOnly or ModeComputeOnly), or "" when no store is configured. The
// service's health endpoint surfaces it.
func (e *Engine) StoreMode() string {
	if e.st == nil {
		return ""
	}
	return e.st.Mode()
}

// seqPoolEntry builds one generation's raw-sequence measurement pool exactly
// once, mirroring charEntry.
type seqPoolEntry struct {
	once  sync.Once
	pool  *measure.Pool
	err   error
	built atomic.Bool
}

// SequencePool returns the (lazily built, cached) pool of measurement stacks
// for raw sequence execution on a generation — the substrate of the
// service's batch measurement endpoint. The pooled harnesses are separate
// from the characterizer's worker stacks: endpoint traffic must not steal
// warm stacks from (or leak divider-regime state into) characterization
// runs. Pool counters fold into Stats alongside the characterizer pools.
func (e *Engine) SequencePool(gen uarch.Generation) (*measure.Pool, error) {
	e.mu.Lock()
	ent, ok := e.seqPools[gen]
	if !ok {
		ent = &seqPoolEntry{}
		e.seqPools[gen] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		h, err := e.Harness(gen)
		if err != nil {
			ent.err = err
		} else {
			ent.pool = measure.NewPool(h)
		}
		ent.built.Store(true)
	})
	return ent.pool, ent.err
}

func (e *Engine) count(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// saved accounts for a store write: failures are counted in Stats and
// reported through Config.Log, never returned — the computed result always
// wins over a failed cache write, and the next run simply recomputes.
func (e *Engine) saved(err error) {
	if err == nil {
		return
	}
	e.count(func(s *Stats) { s.SaveErrors++ })
	if e.cfg.Log != nil {
		e.cfg.Log("engine: persistent store: %v", err)
	}
}

// Harness builds a fresh, independent measurement stack (a runner from the
// configured backend plus a harness) for a generation, e.g. for direct
// sequence measurements or prior-work baselines that must not share
// substrate state with the characterizer.
func (e *Engine) Harness(gen uarch.Generation) (*measure.Harness, error) {
	r, err := e.backend.NewRunner(gen)
	if err != nil {
		return nil, fmt.Errorf("engine: backend %s: building runner for %s: %w", e.backend.Name(), gen, err)
	}
	return measure.NewWithConfig(r, e.mcfg), nil
}

// Characterizer returns the (lazily built, cached) characterizer for a
// generation with its blocking-instruction set ready: restored from the
// persistent store when possible, discovered in parallel under the engine's
// worker budget otherwise.
func (e *Engine) Characterizer(gen uarch.Generation) (*core.Characterizer, error) {
	return e.characterizer(gen, e.Workers())
}

func (e *Engine) characterizer(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	e.mu.Lock()
	ent, ok := e.chars[gen]
	if !ok {
		ent = &charEntry{}
		e.chars[gen] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.c, ent.err = e.build(gen, workers)
		ent.built.Store(true)
	})
	return ent.c, ent.err
}

// build constructs the full stack for a generation and ensures its blocking
// set, via the store or parallel discovery. An out-of-range generation is an
// error, not a panic: Generation values reach the engine from request-derived
// input (the HTTP service decodes them from URL segments).
func (e *Engine) build(gen uarch.Generation, workers int) (*core.Characterizer, error) {
	arch, err := uarch.Lookup(gen)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	h, err := e.Harness(gen)
	if err != nil {
		return nil, err
	}
	c := core.New(h)
	key := e.key(arch, store.KindBlocking)
	if e.st != nil {
		if rec, ok := e.st.LoadBlocking(key); ok {
			if bs, ok := rec.Restore(arch.InstrSet()); ok {
				e.count(func(s *Stats) { s.BlockingHits++ })
				c.SetBlocking(bs)
				return c, nil
			}
		}
		e.count(func(s *Stats) { s.BlockingMisses++ })
	}
	opts := core.Options{Workers: workers, Context: e.baseCtx()}
	opts.BlockingProgress = func(done, total int, name string) {
		e.blockMu.Lock()
		e.blockProg[gen] = [2]int{done, total}
		e.blockMu.Unlock()
		if e.cfg.BlockingProgress != nil {
			e.cfg.BlockingProgress(gen, done, total, name)
		}
	}
	bs, err := c.DiscoverBlocking(opts)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: discovering blocking instructions: %w", arch.Name(), err)
	}
	if e.st != nil {
		e.saved(e.st.SaveBlocking(key, store.RecordBlocking(bs)))
	}
	return c, nil
}

// key builds the store key for a generation: the content hash covers the
// generation, the backend fingerprint, the measurement configuration and the
// full ISA variant set, so any change to the universe invalidates cached
// entries.
func (e *Engine) key(arch *uarch.Arch, scope string) store.Key {
	instrs := arch.InstrSet().Instrs()
	variants := make([]string, len(instrs))
	for i, in := range instrs {
		variants[i] = in.Name
	}
	return store.Key{Arch: arch.Name(), Backend: e.fingerprint(), Measure: e.mcfg,
		Variants: variants, Scope: scope}
}

// RunOptions controls one whole-ISA characterization run through the engine.
type RunOptions struct {
	// Only restricts the run to the named variants (all variants if empty).
	Only []string
	// SkipLatency, SkipPortUsage and SkipThroughput disable parts of the
	// characterization, as in core.Options.
	SkipLatency    bool
	SkipPortUsage  bool
	SkipThroughput bool
	// Workers overrides the engine's worker budget for this run (e.g. when a
	// caller splits its budget across concurrent generations). <= 0 uses the
	// engine budget.
	Workers int
	// Progress, if non-nil, is called after each measured instruction
	// (variants served from the per-variant cache are not re-measured and
	// not reported).
	Progress func(done, total int, name string)
}

// scope derives the whole-ISA result-store scope string for the run:
// everything that changes the result (and nothing that does not — worker
// counts and progress callbacks are excluded by the determinism guarantee).
func (o RunOptions) scope() string {
	return fmt.Sprintf("result skipLatency=%v skipPortUsage=%v skipThroughput=%v only=%s",
		o.SkipLatency, o.SkipPortUsage, o.SkipThroughput, strings.Join(o.Only, ","))
}

// variantScope derives the per-variant store scope: like scope, but without
// the variant selection, so runs over different subsets share per-variant
// entries (that sharing is the point of the incremental tier).
func (o RunOptions) variantScope() string {
	return fmt.Sprintf("variant skipLatency=%v skipPortUsage=%v skipThroughput=%v",
		o.SkipLatency, o.SkipPortUsage, o.SkipThroughput)
}

// selection resolves the run's variant selection to canonical variant names.
// missing reports the first name that does not resolve (empty when the whole
// selection resolves); the engine fails fast on it instead of paying a stack
// build and blocking discovery for a run the scheduler would reject anyway.
func selection(arch *uarch.Arch, only []string) (names []string, missing string) {
	set := arch.InstrSet()
	if len(only) == 0 {
		instrs := set.Instrs()
		names = make([]string, len(instrs))
		for i, in := range instrs {
			names[i] = in.Name
		}
		return names, ""
	}
	names = make([]string, 0, len(only))
	for _, name := range only {
		in := set.Lookup(name)
		if in == nil {
			return nil, name
		}
		names = append(names, in.Name)
	}
	return names, ""
}

// CharacterizeArch runs (or loads from the store) the characterization of
// one generation. It is CharacterizeArchContext without cancellation; see
// there for the store tiers and the coalescing of concurrent identical
// queries.
func (e *Engine) CharacterizeArch(gen uarch.Generation, opts RunOptions) (*core.ArchResult, error) {
	return e.CharacterizeArchContext(context.Background(), gen, opts)
}

// CharacterizeArchContext runs (or loads from the store) the
// characterization of one generation. The store is consulted in two tiers:
// an exact whole-ISA hit is returned without building a characterizer at
// all; otherwise the per-variant tier supplies every already-measured
// variant and only the missing ones are scheduled (sharded across the worker
// budget) through the scheduler's resume entry point. Newly measured
// variants, the updated per-variant index and the merged whole-ISA result
// are persisted for the next invocation. The merged result is byte-identical
// to a cold run for any worker count and any warm/cold mix.
//
// Concurrent identical queries — same generation, same options, so the same
// store digest — are coalesced singleflight-style: the first request
// executes, later ones attach to the in-flight execution and receive the
// same result (and error), so N simultaneous cold requests trigger exactly
// one measurement run. Stats.Runs and Stats.CoalescedWaiters count the two
// populations. Only the leader's opts drive the run; a coalesced waiter's
// Progress callback never fires.
//
// ctx governs admission and waiting, not the measurement itself: a waiter
// whose context is cancelled unblocks immediately with ctx.Err(), while the
// in-flight run always completes (its result still serves the remaining
// waiters and warms the store). An out-of-range generation is an error, not
// a panic.
func (e *Engine) CharacterizeArchContext(ctx context.Context, gen uarch.Generation, opts RunOptions) (*core.ArchResult, error) {
	arch, err := uarch.Lookup(gen)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.baseCtx().Err(); err != nil {
		return nil, fmt.Errorf("engine: shutting down: %w", err)
	}
	dig := e.key(arch, opts.scope()).Digest()

	e.flightMu.Lock()
	if f, ok := e.flights[dig]; ok {
		e.flightMu.Unlock()
		e.count(func(s *Stats) { s.CoalescedWaiters++ })
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{
		done:    make(chan struct{}),
		gen:     gen,
		prog:    RunProgress{Phase: "starting"},
		changed: make(chan struct{}),
	}
	e.flights[dig] = f
	e.flightsWG.Add(1)
	e.flightMu.Unlock()

	e.count(func(s *Stats) { s.Runs++ })
	// The flight must be released even if the run panics (e.g. in a
	// caller-supplied Progress callback): the service layer recovers handler
	// panics and keeps serving, so a flight left in the map would make every
	// later identical request block on done forever. completed distinguishes
	// a panic unwinding through here from a normal return, so waiters of a
	// panicked run get an error rather than a nil result.
	completed := false
	defer func() {
		if !completed {
			f.err = fmt.Errorf("engine: characterization of %s aborted by a panic", arch.Name())
		}
		e.flightMu.Lock()
		delete(e.flights, dig)
		e.flightMu.Unlock()
		f.finish()
		close(f.done)
		e.flightsWG.Done()
	}()
	f.res, f.err = e.characterizeArch(arch, opts, f)
	completed = true
	return f.res, f.err
}

// characterizeArch is the uncoalesced body of CharacterizeArchContext: the
// two store tiers, the resume scheduling of missing variants, and the
// persistence of what was measured. It publishes phase transitions and
// measured records on the flight for FlightProgress/FlightRecords observers.
func (e *Engine) characterizeArch(arch *uarch.Arch, opts RunOptions, f *flight) (*core.ArchResult, error) {
	gen := arch.Gen()
	rkey := e.key(arch, opts.scope())
	if e.st != nil {
		if res, ok := e.st.LoadResult(rkey); ok {
			e.count(func(s *Stats) { s.ResultHits++ })
			return res, nil
		}
		e.count(func(s *Stats) { s.ResultMisses++ })
	}

	// An unresolvable selection fails here, before any stack build: paying
	// minutes of blocking discovery to have the scheduler reject a typo is
	// not production-shaped.
	names, missing := selection(arch, opts.Only)
	if missing != "" {
		return nil, fmt.Errorf("engine: %s: no instruction variant %q", arch.Name(), missing)
	}

	var vdig store.Digest
	partial := make(map[string]*core.InstrResult)
	if e.st != nil {
		// The variant-tier digest is computed once: deriving each
		// per-variant filename from it is O(1), so probing (and later
		// persisting) N variants does not re-hash the N-variant universe N
		// times.
		vdig = e.key(arch, opts.variantScope()).Digest()
		// LoadVariants resolves the whole selection through the index in one
		// pass: loose records read individually, packed records read with one
		// I/O per touched segment file.
		for name, rec := range e.st.LoadVariants(vdig, names) {
			partial[name] = rec
		}
		e.count(func(s *Stats) { s.VariantHits += len(partial) })

		// Full per-variant coverage: merge without building a characterizer
		// (no runner construction, no blocking discovery).
		if len(names) > 0 && len(partial) > 0 {
			complete := true
			for _, name := range names {
				if partial[name] == nil {
					complete = false
					break
				}
			}
			if complete {
				res := core.NewArchResult(arch.Name())
				for _, name := range names {
					res.Results[name] = partial[name]
				}
				e.saved(e.st.SaveResult(rkey, res))
				return res, nil
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = e.Workers()
	}
	// The stack build includes blocking discovery when the generation is
	// cold; a flight of an already-built generation passes through the phase
	// immediately.
	f.setPhase("blocking", -1)
	c, err := e.characterizer(gen, workers)
	if err != nil {
		return nil, err
	}
	f.setPhase("measuring", len(names)-len(partial))
	copts := core.Options{
		Only:           opts.Only,
		SkipLatency:    opts.SkipLatency,
		SkipPortUsage:  opts.SkipPortUsage,
		SkipThroughput: opts.SkipThroughput,
		Workers:        workers,
		Context:        e.baseCtx(),
		Variant:        f.addRecord,
	}
	copts.Progress = func(done, total int, name string) {
		f.mu.Lock()
		f.prog.VariantsDone, f.prog.VariantsTotal = done, total
		f.mu.Unlock()
		if opts.Progress != nil {
			opts.Progress(done, total, name)
		}
	}
	res, err := c.CharacterizeResume(copts, partial)
	if err != nil {
		return nil, fmt.Errorf("engine: %s: %w", arch.Name(), err)
	}
	e.count(func(s *Stats) { s.VariantsMeasured += len(res.Results) - len(partial) })
	if e.st != nil {
		e.persistVariants(vdig, res, partial)
		e.saved(e.st.SaveResult(rkey, res))
	}
	return res, nil
}

// persistVariants writes the newly measured per-variant records and adds
// them to the per-variant index. Only the new names are handed to the store:
// SaveVariantIndex merges them with the on-disk index under a per-digest
// lock, so concurrent runs — on this engine, on another engine, or in
// another uopsd handler sharing the cache directory — never lose each
// other's entries.
func (e *Engine) persistVariants(vdig store.Digest, res *core.ArchResult, partial map[string]*core.InstrResult) {
	add := store.NewVariantIndex()
	for name, rec := range res.Results {
		if partial[name] != nil {
			continue
		}
		if err := e.st.SaveVariant(vdig, name, rec); err != nil {
			e.saved(err)
			continue
		}
		add.Entries[name] = true
	}
	if len(add.Entries) > 0 {
		e.saved(e.st.SaveVariantIndex(vdig, add))
	}
}

// SplitBudget divides a total worker budget across parts that run
// concurrently, so the total parallelism stays within budget: at most
// min(budget, parts) entries run at once, each entry gets budget/parts
// workers (at least 1), and the division remainder is spread over the first
// entries so the full budget is used. For example, a budget of 8 over 5
// parts yields 2,2,2,1,1.
func SplitBudget(budget, parts int) []int {
	if parts <= 0 {
		return nil
	}
	if budget < 1 {
		budget = 1
	}
	outer := budget
	if outer > parts {
		outer = parts
	}
	inner := budget / outer
	extra := budget % outer
	split := make([]int, parts)
	for i := range split {
		split[i] = 1
		if i < outer {
			split[i] = inner
			if i < extra {
				split[i]++
			}
		}
	}
	return split
}

// Prewarm builds the characterizers (including blocking discovery) for the
// given generations concurrently, splitting the engine's worker budget
// between the generation level and the per-candidate level so the total
// parallelism stays within budget. Duplicate generations are built once.
func (e *Engine) Prewarm(gens []uarch.Generation) error {
	seen := make(map[uarch.Generation]bool, len(gens))
	unique := make([]uarch.Generation, 0, len(gens))
	for _, gen := range gens {
		if !seen[gen] {
			seen[gen] = true
			unique = append(unique, gen)
		}
	}
	if len(unique) == 0 {
		return nil
	}
	budget := e.Workers()
	split := SplitBudget(budget, len(unique))
	outer := budget
	if outer > len(unique) {
		outer = len(unique)
	}

	errs := make([]error, len(unique))
	sem := make(chan struct{}, outer)
	var wg sync.WaitGroup
	for i, gen := range unique {
		wg.Add(1)
		go func(i int, gen uarch.Generation, workers int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, errs[i] = e.characterizer(gen, workers)
		}(i, gen, split[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}
