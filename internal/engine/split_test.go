package engine

import (
	"reflect"
	"testing"
)

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		budget, parts int
		want          []int
	}{
		{8, 5, []int{2, 2, 2, 1, 1}},
		{4, 4, []int{1, 1, 1, 1}},
		{2, 5, []int{1, 1, 1, 1, 1}},
		{1, 3, []int{1, 1, 1}},
		{0, 2, []int{1, 1}},
		{9, 2, []int{5, 4}},
		{3, 0, nil},
	}
	for _, tc := range cases {
		if got := SplitBudget(tc.budget, tc.parts); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitBudget(%d, %d) = %v, want %v", tc.budget, tc.parts, got, tc.want)
		}
	}
}
