package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

var testOnly = []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM", "MOV_R64_M64"}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func renderXML(t *testing.T, e *Engine, opts RunOptions) []byte {
	t.Helper()
	res, err := e.CharacterizeArch(uarch.Skylake, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc := &xmlout.Document{Architectures: []xmlout.Architecture{xmlout.FromArchResult(res, nil)}}
	if err := xmlout.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineCache drives the full store path once (one cold blocking
// discovery) and checks every warm-path guarantee against it.
func TestEngineCache(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}

	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	coldXML := renderXML(t, cold, opts)
	coldRes, err := cold.CharacterizeArch(uarch.Skylake, opts) // second call: in-process store hit
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("cache dir has %d entries after a cold run, want 2 (blocking + result)", len(entries))
	}

	t.Run("warm result is byte-identical", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			warm := mustNew(t, Config{Workers: workers, CacheDir: dir})
			if got := renderXML(t, warm, opts); !bytes.Equal(got, coldXML) {
				t.Errorf("workers=%d: warm-cache XML differs from cold run (%d vs %d bytes)",
					workers, len(got), len(coldXML))
			}
		}
	})

	t.Run("warm blocking set restores without discovery", func(t *testing.T) {
		warm := mustNew(t, Config{
			Workers:  1,
			CacheDir: dir,
			BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
				t.Errorf("blocking discovery ran on a warm cache (%s %d/%d)", gen, done, total)
			},
		})
		c, err := warm.Characterizer(uarch.Skylake)
		if err != nil {
			t.Fatal(err)
		}
		wantBS, err := cold.chars[uarch.Skylake].c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		gotBS, err := c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		if len(gotBS.SSE) != len(wantBS.SSE) || len(gotBS.AVX) != len(wantBS.AVX) {
			t.Fatalf("restored blocking set has %d/%d combinations, want %d/%d",
				len(gotBS.SSE), len(gotBS.AVX), len(wantBS.SSE), len(wantBS.AVX))
		}
		for key, w := range wantBS.SSE {
			g, ok := gotBS.SSE[key]
			if !ok || g.Instr.Name != w.Instr.Name || g.Throughput != w.Throughput {
				t.Errorf("restored SSE p%s = %+v, want %s", key, g, w.Instr.Name)
			}
		}
	})

	t.Run("corrupt cache falls back to recomputation", func(t *testing.T) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("corrupt"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		recomputed := mustNew(t, Config{Workers: 4, CacheDir: dir})
		if got := renderXML(t, recomputed, opts); !bytes.Equal(got, coldXML) {
			t.Error("recomputed-after-corruption XML differs from the cold run")
		}
		res, err := recomputed.CharacterizeArch(uarch.Skylake, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, coldRes) {
			t.Error("recomputed result differs from the cold result")
		}
	})

	t.Run("different scope misses", func(t *testing.T) {
		warm := mustNew(t, Config{Workers: 4, CacheDir: dir})
		res, err := warm.CharacterizeArch(uarch.Skylake, RunOptions{Only: testOnly, SkipLatency: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Results {
			if len(r.Latency.Pairs) != 0 {
				t.Errorf("%s: SkipLatency run served a cached full result", r.Name)
			}
		}
	})
}

// TestEngineWithoutCache checks the engine works with no store configured
// and that results match core's direct path.
func TestEngineWithoutCache(t *testing.T) {
	e := Default()
	res, err := e.CharacterizeArch(uarch.Skylake, RunOptions{Only: testOnly, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(testOnly) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(testOnly))
	}
	for _, name := range testOnly {
		if res.Results[name] == nil || res.Results[name].Skipped != "" {
			t.Errorf("%s not characterized: %+v", name, res.Results[name])
		}
	}
}

// TestPrewarmBuildsConcurrently prewarms two generations and checks both
// characterizers come out usable and are the ones later calls observe.
func TestPrewarmBuildsConcurrently(t *testing.T) {
	e := mustNew(t, Config{Workers: 4})
	gens := []uarch.Generation{uarch.Skylake, uarch.Nehalem, uarch.Skylake}
	if err := e.Prewarm(gens); err != nil {
		t.Fatal(err)
	}
	for _, gen := range gens {
		c, err := e.Characterizer(gen)
		if err != nil {
			t.Fatal(err)
		}
		if c.Arch().Gen() != gen {
			t.Errorf("characterizer for %s reports %s", gen, c.Arch().Gen())
		}
		bs, err := c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		if len(bs.SSE) == 0 {
			t.Errorf("%s: prewarmed characterizer has no blocking set", gen)
		}
	}
}
