package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

var testOnly = []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM", "MOV_R64_M64"}

// storeFiles lists the store files of one kind (filenames are
// "<kind>-<hash>.json").
func storeFiles(t *testing.T, dir, kind string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), kind+"-") {
			names = append(names, ent.Name())
		}
	}
	return names
}

func removeFiles(t *testing.T, dir string, names []string) {
	t.Helper()
	for _, name := range names {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
}

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func renderXML(t *testing.T, e *Engine, opts RunOptions) []byte {
	t.Helper()
	res, err := e.CharacterizeArch(uarch.Skylake, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	doc := &xmlout.Document{Architectures: []xmlout.Architecture{xmlout.FromArchResult(res, nil)}}
	if err := xmlout.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineCache drives the full store path once (one cold blocking
// discovery) and checks every warm-path guarantee against it.
func TestEngineCache(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}

	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	coldXML := renderXML(t, cold, opts)
	coldRes, err := cold.CharacterizeArch(uarch.Skylake, opts) // second call: in-process store hit
	if err != nil {
		t.Fatal(err)
	}

	// A cold run fills all three tiers: the blocking set, the whole-ISA
	// result, one entry per variant, and the per-variant index.
	wantEntries := map[string]int{
		store.KindBlocking:     1,
		store.KindResult:       1,
		store.KindVariant:      len(testOnly),
		store.KindVariantIndex: 1,
	}
	for kind, want := range wantEntries {
		if got := len(storeFiles(t, dir, kind)); got != want {
			t.Errorf("cache dir has %d %s entries after a cold run, want %d", got, kind, want)
		}
	}

	t.Run("warm result is byte-identical", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			warm := mustNew(t, Config{Workers: workers, CacheDir: dir})
			if got := renderXML(t, warm, opts); !bytes.Equal(got, coldXML) {
				t.Errorf("workers=%d: warm-cache XML differs from cold run (%d vs %d bytes)",
					workers, len(got), len(coldXML))
			}
		}
	})

	t.Run("warm blocking set restores without discovery", func(t *testing.T) {
		warm := mustNew(t, Config{
			Workers:  1,
			CacheDir: dir,
			BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
				t.Errorf("blocking discovery ran on a warm cache (%s %d/%d)", gen, done, total)
			},
		})
		c, err := warm.Characterizer(uarch.Skylake)
		if err != nil {
			t.Fatal(err)
		}
		wantBS, err := cold.chars[uarch.Skylake].c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		gotBS, err := c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		if len(gotBS.SSE) != len(wantBS.SSE) || len(gotBS.AVX) != len(wantBS.AVX) {
			t.Fatalf("restored blocking set has %d/%d combinations, want %d/%d",
				len(gotBS.SSE), len(gotBS.AVX), len(wantBS.SSE), len(wantBS.AVX))
		}
		for key, w := range wantBS.SSE {
			g, ok := gotBS.SSE[key]
			if !ok || g.Instr.Name != w.Instr.Name || g.Throughput != w.Throughput {
				t.Errorf("restored SSE p%s = %+v, want %s", key, g, w.Instr.Name)
			}
		}
	})

	t.Run("corrupt cache falls back to recomputation", func(t *testing.T) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("corrupt"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		recomputed := mustNew(t, Config{Workers: 4, CacheDir: dir})
		if got := renderXML(t, recomputed, opts); !bytes.Equal(got, coldXML) {
			t.Error("recomputed-after-corruption XML differs from the cold run")
		}
		res, err := recomputed.CharacterizeArch(uarch.Skylake, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, coldRes) {
			t.Error("recomputed result differs from the cold result")
		}
	})

	t.Run("different scope misses", func(t *testing.T) {
		warm := mustNew(t, Config{Workers: 4, CacheDir: dir})
		res, err := warm.CharacterizeArch(uarch.Skylake, RunOptions{Only: testOnly, SkipLatency: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Results {
			if len(r.Latency.Pairs) != 0 {
				t.Errorf("%s: SkipLatency run served a cached full result", r.Name)
			}
		}
	})
}

// TestIncrementalVariantCache is the engine-level acceptance test for the
// per-variant tier: after evicting the whole-ISA entry and a strict subset
// of per-variant entries, a warm run re-measures only the missing variants
// (observable via Stats) and emits XML byte-identical to the cold run, for
// worker counts 1, 4 and NumCPU.
func TestIncrementalVariantCache(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}

	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	coldXML := renderXML(t, cold, opts)
	if st := cold.Stats(); st.VariantsMeasured != len(testOnly) || st.VariantHits != 0 {
		t.Fatalf("cold run stats = %+v, want %d variants measured and 0 hits", st, len(testOnly))
	}

	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		// Evict the whole-ISA result (so the run reaches the per-variant
		// tier) and a strict subset — two — of the per-variant entries. The
		// previous iteration re-filled the store, so each pass starts from a
		// fully warm state.
		removeFiles(t, dir, storeFiles(t, dir, store.KindResult))
		variants := storeFiles(t, dir, store.KindVariant)
		if len(variants) != len(testOnly) {
			t.Fatalf("store has %d variant entries, want %d", len(variants), len(testOnly))
		}
		evicted := variants[:2]
		removeFiles(t, dir, evicted)

		warm := mustNew(t, Config{
			Workers:  workers,
			CacheDir: dir,
			BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
				t.Errorf("workers=%d: blocking discovery ran on a warm cache (%s %d/%d)", workers, gen, done, total)
			},
		})
		if got := renderXML(t, warm, opts); !bytes.Equal(got, coldXML) {
			t.Errorf("workers=%d: incremental warm XML differs from cold run (%d vs %d bytes)",
				workers, len(got), len(coldXML))
		}
		st := warm.Stats()
		if st.VariantsMeasured != len(evicted) {
			t.Errorf("workers=%d: re-measured %d variants, want exactly the %d evicted ones",
				workers, st.VariantsMeasured, len(evicted))
		}
		if want := len(testOnly) - len(evicted); st.VariantHits != want {
			t.Errorf("workers=%d: %d variant hits, want %d", workers, st.VariantHits, want)
		}
	}
}

// TestFullVariantHitSkipsStackBuild checks the merge-only warm path: when
// every requested variant is served by the per-variant tier, the engine
// must not build a characterizer at all — no runner construction and no
// blocking discovery — even with the whole-ISA and blocking entries gone.
func TestFullVariantHitSkipsStackBuild(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}
	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	coldXML := renderXML(t, cold, opts)

	removeFiles(t, dir, storeFiles(t, dir, store.KindResult))
	removeFiles(t, dir, storeFiles(t, dir, store.KindBlocking))

	warm := mustNew(t, Config{
		Workers:  4,
		CacheDir: dir,
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			t.Errorf("blocking discovery ran despite full per-variant coverage (%s %d/%d)", gen, done, total)
		},
	})
	if got := renderXML(t, warm, opts); !bytes.Equal(got, coldXML) {
		t.Error("variant-merged XML differs from the cold run")
	}
	st := warm.Stats()
	if st.VariantsMeasured != 0 || st.VariantHits != len(testOnly) {
		t.Errorf("stats = %+v, want 0 measured and %d hits", st, len(testOnly))
	}
	if len(warm.chars) != 0 {
		t.Errorf("engine built %d characterizer stacks, want none", len(warm.chars))
	}
	// The merged result was re-saved as a whole-ISA entry for the fast path.
	if got := len(storeFiles(t, dir, store.KindResult)); got != 1 {
		t.Errorf("merge did not re-save the whole-ISA entry (%d result files)", got)
	}
}

// TestUnknownBackend checks the engine refuses an unregistered backend with
// an error that lists what is registered, instead of silently defaulting.
func TestUnknownBackend(t *testing.T) {
	_, err := New(Config{Backend: "no-such-substrate"})
	if err == nil {
		t.Fatal("New accepted an unregistered backend")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no-such-substrate") || !strings.Contains(msg, "pipesim") {
		t.Errorf("error %q does not name the unknown backend and the registered ones", msg)
	}
}

// TestBackendFingerprintSeparatesEntries checks that two engines on the same
// store but different backend fingerprints never share cache entries.
func TestBackendFingerprintSeparatesEntries(t *testing.T) {
	a := mustNew(t, Config{})
	ka := a.key(uarch.Get(uarch.Skylake), store.KindBlocking)
	kb := ka
	kb.Backend = "othersim@1"
	if ka.VariantFilename("ADD_R64_R64") == kb.VariantFilename("ADD_R64_R64") {
		t.Error("different backend fingerprints produced the same variant filename")
	}
}

// TestEngineWithoutCache checks the engine works with no store configured
// and that results match core's direct path.
func TestEngineWithoutCache(t *testing.T) {
	e := Default()
	res, err := e.CharacterizeArch(uarch.Skylake, RunOptions{Only: testOnly, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(testOnly) {
		t.Fatalf("got %d results, want %d", len(res.Results), len(testOnly))
	}
	for _, name := range testOnly {
		if res.Results[name] == nil || res.Results[name].Skipped != "" {
			t.Errorf("%s not characterized: %+v", name, res.Results[name])
		}
	}
}

// TestPrewarmBuildsConcurrently prewarms two generations and checks both
// characterizers come out usable and are the ones later calls observe.
func TestPrewarmBuildsConcurrently(t *testing.T) {
	e := mustNew(t, Config{Workers: 4})
	gens := []uarch.Generation{uarch.Skylake, uarch.Nehalem, uarch.Skylake}
	if err := e.Prewarm(gens); err != nil {
		t.Fatal(err)
	}
	for _, gen := range gens {
		c, err := e.Characterizer(gen)
		if err != nil {
			t.Fatal(err)
		}
		if c.Arch().Gen() != gen {
			t.Errorf("characterizer for %s reports %s", gen, c.Arch().Gen())
		}
		bs, err := c.Blocking()
		if err != nil {
			t.Fatal(err)
		}
		if len(bs.SSE) == 0 {
			t.Errorf("%s: prewarmed characterizer has no blocking set", gen)
		}
	}
}

// waitForStat polls the engine's stats until cond is satisfied or the
// deadline passes; rendezvous for the coalescing tests, which must observe a
// run while it is still in flight.
func waitForStat(t *testing.T, e *Engine, what string, cond func(Stats) bool) bool {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond(e.Stats()) {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("timed out waiting for %s (stats: %+v)", what, e.Stats())
	return false
}

// TestCharacterizeCoalescing checks the singleflight contract: K concurrent
// identical cold requests perform exactly one measurement run, the waiters
// attach to the in-flight execution, everyone gets a result rendering to
// byte-identical XML, and the stats account for one run and K-1 waiters.
func TestCharacterizeCoalescing(t *testing.T) {
	const waiters = 4
	released := make(chan struct{})
	var gate sync.Once
	// The leader's cold run is held inside blocking discovery until every
	// waiter has attached, so coalescing is deterministic rather than a race
	// the test usually wins.
	e := mustNew(t, Config{
		Workers:  2,
		CacheDir: t.TempDir(),
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	opts := RunOptions{Only: testOnly}

	results := make([]*core.ArchResult, waiters+1)
	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts)
		}()
	}

	launch(0)
	if !waitForStat(t, e, "the leader to start", func(s Stats) bool { return s.Runs == 1 }) {
		close(released)
		wg.Wait()
		t.FailNow()
	}
	for i := 1; i <= waiters; i++ {
		launch(i)
	}
	ok := waitForStat(t, e, "all waiters to attach", func(s Stats) bool { return s.CoalescedWaiters == waiters })
	close(released)
	wg.Wait()
	if !ok {
		t.FailNow()
	}

	var first []byte
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		var buf bytes.Buffer
		doc := &xmlout.Document{Architectures: []xmlout.Architecture{xmlout.FromArchResult(res, nil)}}
		if err := xmlout.Write(&buf, doc); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(buf.Bytes(), first) {
			t.Errorf("request %d rendered different XML than request 0", i)
		}
	}
	st := e.Stats()
	if st.Runs != 1 || st.CoalescedWaiters != waiters {
		t.Errorf("stats = %d runs, %d coalesced waiters, want 1, %d", st.Runs, st.CoalescedWaiters, waiters)
	}
	if st.VariantsMeasured != len(testOnly) {
		t.Errorf("%d variants measured for %d coalesced requests, want exactly %d",
			st.VariantsMeasured, waiters+1, len(testOnly))
	}

	// A later identical request is a store hit, not a new measurement.
	if _, err := e.CharacterizeArch(uarch.Skylake, opts); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.ResultHits == 0 || st.VariantsMeasured != len(testOnly) {
		t.Errorf("warm follow-up re-measured: %+v", st)
	}
}

// TestCoalescedWaiterHonorsContext checks that a waiter whose context is
// cancelled unblocks with ctx.Err() while the in-flight run keeps going.
func TestCoalescedWaiterHonorsContext(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	e := mustNew(t, Config{
		Workers: 2,
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	opts := RunOptions{Only: testOnly}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArchContext(context.Background(), uarch.Skylake, opts)
		leaderDone <- err
	}()
	if !waitForStat(t, e, "the leader to start", func(s Stats) bool { return s.Runs == 1 }) {
		close(released)
		t.FailNow()
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArchContext(ctx, uarch.Skylake, opts)
		waiterDone <- err
	}()
	if !waitForStat(t, e, "the waiter to attach", func(s Stats) bool { return s.CoalescedWaiters == 1 }) {
		close(released)
		t.FailNow()
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("cancelled waiter did not unblock")
	}

	close(released)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader failed after a waiter was cancelled: %v", err)
	}

	// A pre-cancelled context is rejected at admission.
	if _, err := e.CharacterizeArchContext(ctx, uarch.Skylake, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled request returned %v, want context.Canceled", err)
	}
}

// TestInvalidGenerationIsAnError checks every request-facing engine entry
// point degrades an out-of-range generation to an error instead of a panic:
// the HTTP service feeds it values decoded from URLs.
func TestInvalidGenerationIsAnError(t *testing.T) {
	e := Default()
	for _, gen := range []uarch.Generation{-1, 99} {
		if _, err := e.CharacterizeArch(gen, RunOptions{}); err == nil {
			t.Errorf("CharacterizeArch(%d) did not fail", int(gen))
		}
		if _, err := e.Characterizer(gen); err == nil {
			t.Errorf("Characterizer(%d) did not fail", int(gen))
		}
		if _, err := e.Harness(gen); err == nil {
			t.Errorf("Harness(%d) did not fail", int(gen))
		}
	}
}

// TestFlightReleasedOnPanic checks the singleflight cleanup path: a run that
// panics (e.g. in a caller-supplied Progress callback, recovered further up
// by the HTTP service) must release its flight so later identical requests
// run instead of blocking forever on a dead flight's done channel.
func TestFlightReleasedOnPanic(t *testing.T) {
	e := mustNew(t, Config{Workers: 1})
	boom := true
	opts := RunOptions{Only: testOnly[:1], Progress: func(done, total int, name string) {
		if boom {
			panic("kaboom")
		}
	}}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("the poisoned run did not panic")
			}
		}()
		e.CharacterizeArch(uarch.Skylake, opts)
	}()

	boom = false
	done := make(chan error, 1)
	go func() {
		_, err := e.CharacterizeArch(uarch.Skylake, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("identical request after a panicked run failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("identical request after a panicked run hung on the leaked flight")
	}
}
