package engine

// Engine-level acceptance tests for the store lifecycle: a byte-budgeted
// store held across repeated warm runs must stay within budget while the
// rendered XML stays byte-identical, and a store whose disk has failed
// completely must degrade — visibly, via StoreMode — without ever failing a
// characterization request.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"uopsinfo/internal/store"
	"uopsinfo/internal/store/errfs"
	"uopsinfo/internal/uarch"
)

func storeBytes(st *store.Stats) int64 {
	return st.Blocking.Bytes + st.Result.Bytes + st.Variant.Bytes + st.Segment.Bytes
}

// TestBudgetedStoreByteIdenticalRuns holds one cache directory at a byte
// budget smaller than a full run's footprint across repeated engine
// lifetimes. Every run must re-measure whatever eviction cost it and render
// XML byte-identical to the unbudgeted cold run, and the store must end each
// lifetime within budget.
func TestBudgetedStoreByteIdenticalRuns(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}
	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	coldXML := renderXML(t, cold, opts)
	coldStats := cold.Stats().Store
	if coldStats == nil {
		t.Fatal("engine reports no store stats")
	}
	total := storeBytes(coldStats)
	if total <= 0 {
		t.Fatalf("cold run left %d accounted bytes", total)
	}
	// A budget below the full footprint, so every reopening trims something,
	// but above any single digest group, so eviction can always reach it.
	budget := total * 6 / 10

	evictedEver := false
	for i := 0; i < 3; i++ {
		e := mustNew(t, Config{Workers: 4, CacheDir: dir, StoreMaxBytes: budget})
		if got := renderXML(t, e, opts); !bytes.Equal(got, coldXML) {
			t.Fatalf("run %d under budget %d: XML differs from the cold run (%d vs %d bytes)",
				i, budget, len(got), len(coldXML))
		}
		st := e.Stats().Store
		if st == nil {
			t.Fatal("budgeted engine reports no store stats")
		}
		if got := storeBytes(st); got > budget {
			t.Errorf("run %d: store holds %d bytes, budget %d", i, got, budget)
		}
		if st.EvictedBytes > 0 {
			evictedEver = true
		}
	}
	if !evictedEver {
		t.Errorf("budget %d of %d bytes never triggered an eviction; the test exercised nothing", budget, total)
	}
}

// TestCrashedStoreDoesNotFailRuns runs characterization against a store
// whose filesystem fails every operation. Requests must keep succeeding with
// results identical to a store-less engine's, the save errors must be
// counted, and the store must degrade visibly instead of erroring forever.
func TestCrashedStoreDoesNotFailRuns(t *testing.T) {
	fsys := errfs.New()
	st, err := store.OpenOptions(t.TempDir(), store.Options{FS: fsys, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fsys.Crash()

	opts := RunOptions{Only: testOnly}
	baseline := mustNew(t, Config{Workers: 4})
	want := renderXML(t, baseline, opts)

	e := mustNew(t, Config{Workers: 4, Store: st})
	if e.StoreMode() != store.ModeOK {
		t.Fatalf("store degraded before any operation: %q", e.StoreMode())
	}
	// Two full runs: the first accumulates save failures below the
	// degradation threshold, the second crosses it. Both must succeed.
	for i := 0; i < 2; i++ {
		if got := renderXML(t, e, opts); !bytes.Equal(got, want) {
			t.Fatalf("run %d against the dead store: XML differs from the store-less engine", i)
		}
	}
	if got := e.StoreMode(); got == store.ModeOK {
		t.Error("store still reports ok after every save and load failed")
	}
	stats := e.Stats()
	if stats.SaveErrors == 0 {
		t.Error("store failures were not counted as save errors")
	}
	if stats.Store == nil || stats.Store.Mode == store.ModeOK {
		t.Errorf("engine stats do not surface the degraded store: %+v", stats.Store)
	}
	// The runs themselves were unharmed: every variant was measured.
	if stats.VariantsMeasured != 2*len(testOnly) {
		t.Errorf("measured %d variants across two store-less runs, want %d",
			stats.VariantsMeasured, 2*len(testOnly))
	}

	// An engine over a degraded-at-birth store must also come up fine.
	again := mustNew(t, Config{Workers: 4, Store: st})
	if got := renderXML(t, again, opts); !bytes.Equal(got, want) {
		t.Error("engine over an already-degraded store renders different XML")
	}
}

// TestEngineStatsExposeStoreLifecycle checks the plumbing the service
// depends on: corruption found by the engine's own store surfaces in
// engine.Stats.
func TestEngineStatsExposeStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := RunOptions{Only: testOnly}
	cold := mustNew(t, Config{Workers: 4, CacheDir: dir})
	renderXML(t, cold, opts)

	// Remove the whole-ISA fast path and corrupt every variant entry on
	// disk; the warm engine must quarantine them, re-measure, and report the
	// corruption through its stats.
	removeFiles(t, dir, storeFiles(t, dir, store.KindResult))
	corruptFiles(t, dir, store.KindVariant)
	warm := mustNew(t, Config{Workers: 4, CacheDir: dir})
	if _, err := warm.CharacterizeArch(uarch.Skylake, opts); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats().Store
	if st == nil {
		t.Fatal("engine reports no store stats")
	}
	if st.Corrupt != int64(len(testOnly)) || st.Quarantined != int64(len(testOnly)) {
		t.Errorf("store stats report %d corrupt / %d quarantined entries, want %d each",
			st.Corrupt, st.Quarantined, len(testOnly))
	}
	if warm.Stats().VariantsMeasured != len(testOnly) {
		t.Errorf("re-measured %d variants after corruption, want %d",
			warm.Stats().VariantsMeasured, len(testOnly))
	}
}

func corruptFiles(t *testing.T, dir, kind string) {
	t.Helper()
	names := storeFiles(t, dir, kind)
	if len(names) == 0 {
		t.Fatalf("no %s entries to corrupt", kind)
	}
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
