package asmgen

import (
	"strings"
	"testing"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/xedspec"
)

func TestParseSequenceBasic(t *testing.T) {
	t.Parallel()
	set := xedspec.MustFullISA()
	text := `
# a small loop kernel
ADD RAX, RBX
IMUL RCX, RDX
MOV RSI, [RDI]
SHLD RAX, RBX, 5
ADDPS XMM1, XMM2
MOV [RDI], RSI
CMC
`
	seq, err := ParseSequence(set, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 7 {
		t.Fatalf("parsed %d instructions, want 7", len(seq))
	}
	wantVariants := []string{
		"ADD_R64_R64", "IMUL_R64_R64", "MOV_R64_M64", "SHLD_R64_R64_I8",
		"ADDPS_XMM_XMM", "MOV_M64_R64", "CMC",
	}
	for i, want := range wantVariants {
		if seq[i].Variant.Name != want {
			t.Errorf("instruction %d: variant %s, want %s", i, seq[i].Variant.Name, want)
		}
	}
	// Memory operands with the same base register share an address.
	loadAddr := seq[2].Ops[1].Mem.Addr
	storeAddr := seq[5].Ops[0].Mem.Addr
	if loadAddr != storeAddr {
		t.Errorf("load and store through [RDI] should share an address: %#x vs %#x", loadAddr, storeAddr)
	}
	// Round trip through String and back.
	again, err := ParseSequence(set, seq.String())
	if err != nil {
		t.Fatalf("re-parsing printed sequence: %v", err)
	}
	if len(again) != len(seq) {
		t.Fatalf("round trip lost instructions")
	}
	for i := range seq {
		if again[i].Variant.Name != seq[i].Variant.Name {
			t.Errorf("round trip changed instruction %d: %s vs %s", i, again[i].Variant.Name, seq[i].Variant.Name)
		}
	}
}

func TestParseSequencePicksWidthByRegister(t *testing.T) {
	t.Parallel()
	set := xedspec.MustFullISA()
	seq, err := ParseSequence(set, "ADD EAX, EBX\nADD AX, BX\nADD AL, BL")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ADD_R32_R32", "ADD_R16_R16", "ADD_R8_R8"}
	for i, w := range want {
		if seq[i].Variant.Name != w {
			t.Errorf("line %d: variant %s, want %s", i, seq[i].Variant.Name, w)
		}
	}
}

func TestParseSequenceErrors(t *testing.T) {
	t.Parallel()
	set := xedspec.MustFullISA()
	cases := []string{
		"FROBNICATE RAX, RBX", // unknown mnemonic
		"ADD RAX",             // wrong operand count
		"ADD RAX, XMM1",       // wrong operand class
		"MOV RAX, [EBX]",      // 32-bit base register
		"ADD RAX, notanumber", // garbage operand
	}
	for _, text := range cases {
		if _, err := ParseSequence(set, text); err == nil {
			t.Errorf("ParseSequence accepted %q", text)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q should mention the line number: %v", text, err)
		}
	}
}

func TestParsedSequenceRunsOnSimulator(t *testing.T) {
	t.Parallel()
	set := xedspec.MustFullISA()
	seq, err := ParseSequence(set, "MOV RAX, [RAX]\nMOV RAX, [RAX]")
	if err != nil {
		t.Fatal(err)
	}
	// Both loads use RAX as base and therefore the same address and a real
	// register dependency.
	if seq[0].Ops[1].Mem.Addr != seq[1].Ops[1].Mem.Addr {
		t.Error("pointer-chasing loads should share the address")
	}
	_ = isa.RAX
}
