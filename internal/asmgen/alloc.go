package asmgen

import (
	"fmt"

	"uopsinfo/internal/isa"
)

// DefaultReserved is the set of registers the measurement harness keeps for
// itself (stack and base pointer, plus the two registers Algorithm 2 reserves
// for the saved state and the performance-counter data). Benchmark code must
// not use them.
var DefaultReserved = []isa.Reg{isa.RSP, isa.RBP, isa.R14, isa.R15}

// Allocator hands out architectural registers for benchmark code while
// avoiding unwanted dependencies: registers can be requested "fresh" (never
// handed out before, to guarantee independence between instructions) or
// "reused" (any non-reserved register not explicitly avoided).
type Allocator struct {
	reserved map[isa.Reg]bool // keyed by register family
	used     map[isa.Reg]bool // keyed by register family
}

// NewAllocator returns an allocator with the given reserved registers (in
// addition to nothing else). Pass DefaultReserved... for benchmark code.
func NewAllocator(reserved ...isa.Reg) *Allocator {
	a := &Allocator{
		reserved: make(map[isa.Reg]bool),
		used:     make(map[isa.Reg]bool),
	}
	for _, r := range reserved {
		a.reserved[r.Family()] = true
	}
	return a
}

// Reset forgets which registers have been handed out (but keeps the reserved
// set).
func (a *Allocator) Reset() { a.used = make(map[isa.Reg]bool) }

// MarkUsed records that the family of r has been handed out, so Fresh will
// not return it again.
func (a *Allocator) MarkUsed(r isa.Reg) { a.used[r.Family()] = true }

// Fresh returns a register of the given class whose family has not been
// handed out before and is not in avoid. The returned register's family is
// recorded as used.
func (a *Allocator) Fresh(class isa.RegClass, avoid ...isa.Reg) (isa.Reg, error) {
	r, err := a.pick(class, true, avoid)
	if err != nil {
		return isa.RegNone, err
	}
	a.used[r.Family()] = true
	return r, nil
}

// Reuse returns a register of the given class that is not reserved and whose
// family is not in avoid; it may have been handed out before.
func (a *Allocator) Reuse(class isa.RegClass, avoid ...isa.Reg) (isa.Reg, error) {
	return a.pick(class, false, avoid)
}

func (a *Allocator) pick(class isa.RegClass, fresh bool, avoid []isa.Reg) (isa.Reg, error) {
	avoidFam := make(map[isa.Reg]bool, len(avoid))
	for _, r := range avoid {
		avoidFam[r.Family()] = true
	}
	for _, r := range isa.RegistersOfClass(class) {
		fam := r.Family()
		if a.reserved[fam] || avoidFam[fam] {
			continue
		}
		if fresh && a.used[fam] {
			continue
		}
		return r, nil
	}
	if fresh {
		// Fall back to reuse if the class is exhausted; independence cannot
		// be guaranteed, but a valid instruction can still be produced.
		return a.pick(class, false, avoid)
	}
	return isa.RegNone, fmt.Errorf("asmgen: no available register of class %s", class)
}

// MemArena hands out distinct virtual addresses for memory operands. All
// addresses are 64-byte aligned so that distinct allocations never share a
// cache line.
type MemArena struct {
	next uint64
}

// NewMemArena returns an arena starting at a fixed base address.
func NewMemArena() *MemArena {
	return &MemArena{next: 0x100000}
}

// Alloc returns a fresh address for an operand of the given size in bytes.
func (m *MemArena) Alloc(size int) uint64 {
	if size <= 0 {
		size = 8
	}
	addr := m.next
	blocks := uint64((size + 63) / 64)
	m.next += blocks * 64
	return addr
}
