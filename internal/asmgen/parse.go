package asmgen

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"uopsinfo/internal/isa"
)

// This file implements parsing of Intel-syntax assembler text back into
// concrete instructions, the inverse of Inst.String. It lets the simulator
// and the IACA model analyze user-written loop kernels (the way the real IACA
// is used), not just generated microbenchmarks.

// ParseError reports a syntax or lookup error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("asmgen: line %d: %s", e.Line, e.Msg) }

// ParseSequence parses one instruction per line (Intel syntax, as produced by
// Inst.String; empty lines and lines starting with '#' or ';' are ignored)
// against the given instruction set. Memory operands of the form [REG] are
// assigned distinct addresses per base register.
func ParseSequence(set *isa.Set, text string) (Sequence, error) {
	var seq Sequence
	arena := NewMemArena()
	addrs := make(map[isa.Reg]uint64)
	scanner := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		inst, err := parseLine(set, line, arena, addrs)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		seq = append(seq, inst)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return seq, nil
}

func parseLine(set *isa.Set, line string, arena *MemArena, addrs map[isa.Reg]uint64) (*Inst, error) {
	mnemonic := line
	rest := ""
	if idx := strings.IndexAny(line, " \t"); idx >= 0 {
		mnemonic = line[:idx]
		rest = strings.TrimSpace(line[idx:])
	}
	mnemonic = strings.ToUpper(mnemonic)
	var operands []string
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			operands = append(operands, strings.TrimSpace(part))
		}
	}
	// Parse the operand texts into concrete operands first.
	var parsed []parsedOperand
	for _, text := range operands {
		switch {
		case strings.HasPrefix(text, "[") && strings.HasSuffix(text, "]"):
			base := isa.ParseReg(strings.ToUpper(strings.TrimSpace(text[1 : len(text)-1])))
			if base == isa.RegNone || base.Class() != isa.ClassGPR64 {
				return nil, fmt.Errorf("memory operand %q must use a 64-bit base register", text)
			}
			parsed = append(parsed, parsedOperand{mem: base, isMem: true})
		default:
			if r := isa.ParseReg(strings.ToUpper(text)); r != isa.RegNone {
				parsed = append(parsed, parsedOperand{reg: r})
				continue
			}
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("operand %q is neither a register, a memory operand nor an immediate", text)
			}
			parsed = append(parsed, parsedOperand{imm: v, isImm: true})
		}
	}
	// Find the instruction variant whose explicit operand shape matches.
	variant := matchVariant(set, mnemonic, parsed)
	if variant == nil {
		return nil, fmt.Errorf("no variant of %s matches operands %v", mnemonic, operands)
	}
	expl := variant.ExplicitOperands()
	ops := make([]Operand, len(expl))
	for i, p := range parsed {
		switch {
		case p.isMem:
			addr, ok := addrs[p.mem.Family()]
			if !ok {
				addr = arena.Alloc(expl[i].Width / 8)
				addrs[p.mem.Family()] = addr
			}
			ops[i] = MemOperand(p.mem, addr)
		case p.isImm:
			ops[i] = ImmOperand(p.imm)
		default:
			ops[i] = RegOperand(p.reg)
		}
	}
	return NewInst(variant, ops...)
}

// parsedOperand is one textual operand after classification.
type parsedOperand struct {
	reg   isa.Reg
	mem   isa.Reg // base register of a memory operand
	isMem bool
	imm   int64
	isImm bool
}

// matchVariant selects the instruction variant whose explicit operands are
// compatible with the parsed operand kinds and register classes.
func matchVariant(set *isa.Set, mnemonic string, parsed []parsedOperand) *isa.Instr {
	for _, cand := range set.ByMnemonic(mnemonic) {
		expl := cand.ExplicitOperands()
		if len(expl) != len(parsed) {
			continue
		}
		ok := true
		for i, spec := range expl {
			p := parsed[i]
			switch spec.Kind {
			case isa.OpReg:
				if p.isMem || p.isImm || p.reg.Class() != spec.Class {
					ok = false
				}
			case isa.OpMem:
				if !p.isMem {
					ok = false
				}
			case isa.OpImm:
				if !p.isImm {
					ok = false
				}
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			return cand
		}
	}
	return nil
}
