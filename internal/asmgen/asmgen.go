// Package asmgen represents concrete assembler instructions (an instruction
// variant together with concrete registers, memory addresses and immediate
// values) and provides the register/memory allocation helpers the
// microbenchmark generator needs: picking registers that do or do not
// introduce dependencies, building dependency chains, and printing Intel
// syntax.
//
//uopslint:deterministic
package asmgen

import (
	"fmt"
	"strings"

	"uopsinfo/internal/isa"
)

// Mem is a concrete memory operand of the form [base] (the paper only tests
// base-register addressing, Section 8). Addr is the virtual address the base
// register points to; the simulator uses it to track memory dependencies, and
// the generator chooses distinct addresses for operands that must be
// independent.
type Mem struct {
	Base isa.Reg
	Addr uint64
}

// Operand is a concrete value for one explicit operand of an instruction.
type Operand struct {
	Reg    isa.Reg
	Mem    *Mem
	Imm    int64
	HasImm bool
}

// RegOperand returns a register operand.
func RegOperand(r isa.Reg) Operand { return Operand{Reg: r} }

// MemOperand returns a memory operand.
func MemOperand(base isa.Reg, addr uint64) Operand { return Operand{Mem: &Mem{Base: base, Addr: addr}} }

// ImmOperand returns an immediate operand.
func ImmOperand(v int64) Operand { return Operand{Imm: v, HasImm: true} }

// Inst is one concrete assembler instruction.
type Inst struct {
	Variant *isa.Instr
	// Ops holds the concrete values of the explicit operands, parallel to
	// Variant.ExplicitOperands(). Implicit operands are fixed by the
	// variant.
	Ops []Operand
}

// NewInst builds a concrete instruction and validates that the operand count
// and kinds match the variant.
func NewInst(variant *isa.Instr, ops ...Operand) (*Inst, error) {
	expl := variant.ExplicitOperands()
	if len(ops) != len(expl) {
		return nil, fmt.Errorf("asmgen: %s: got %d operands, want %d", variant.Name, len(ops), len(expl))
	}
	for i, spec := range expl {
		op := ops[i]
		switch spec.Kind {
		case isa.OpReg:
			if op.Reg == isa.RegNone {
				return nil, fmt.Errorf("asmgen: %s: operand %d must be a register", variant.Name, i+1)
			}
			if op.Reg.Class() != spec.Class {
				return nil, fmt.Errorf("asmgen: %s: operand %d: register %s has class %s, want %s",
					variant.Name, i+1, op.Reg, op.Reg.Class(), spec.Class)
			}
		case isa.OpMem:
			if op.Mem == nil {
				return nil, fmt.Errorf("asmgen: %s: operand %d must be a memory operand", variant.Name, i+1)
			}
			if op.Mem.Base.Class() != isa.ClassGPR64 {
				return nil, fmt.Errorf("asmgen: %s: operand %d: base register %s must be a 64-bit GPR",
					variant.Name, i+1, op.Mem.Base)
			}
		case isa.OpImm:
			if !op.HasImm {
				return nil, fmt.Errorf("asmgen: %s: operand %d must be an immediate", variant.Name, i+1)
			}
		}
	}
	return &Inst{Variant: variant, Ops: ops}, nil
}

// MustInst is like NewInst but panics on error; for statically-known shapes.
func MustInst(variant *isa.Instr, ops ...Operand) *Inst {
	in, err := NewInst(variant, ops...)
	if err != nil {
		panic(err)
	}
	return in
}

// String renders the instruction in Intel syntax, e.g. "ADD RAX, [RBX]".
func (in *Inst) String() string {
	var parts []string
	expl := in.Variant.ExplicitOperands()
	for i, spec := range expl {
		op := in.Ops[i]
		switch spec.Kind {
		case isa.OpReg:
			parts = append(parts, op.Reg.String())
		case isa.OpMem:
			parts = append(parts, fmt.Sprintf("[%s]", op.Mem.Base))
		case isa.OpImm:
			parts = append(parts, fmt.Sprintf("%d", op.Imm))
		}
	}
	if len(parts) == 0 {
		return in.Variant.Mnemonic
	}
	return in.Variant.Mnemonic + " " + strings.Join(parts, ", ")
}

// OperandFor returns the concrete operand for the operand at index opIdx in
// Variant.Operands (counting implicit operands). Implicit register operands
// are resolved to their fixed register; the flags operand and immediates
// return a zero Operand.
func (in *Inst) OperandFor(opIdx int) Operand {
	ops := in.Variant.Operands
	if opIdx < 0 || opIdx >= len(ops) {
		return Operand{}
	}
	spec := ops[opIdx]
	if spec.Implicit {
		if spec.FixedReg != isa.RegNone {
			return Operand{Reg: spec.FixedReg}
		}
		return Operand{}
	}
	// Map the full-operand index to the explicit-operand index.
	explIdx := 0
	for i := 0; i < opIdx; i++ {
		if !ops[i].Implicit {
			explIdx++
		}
	}
	if explIdx < len(in.Ops) {
		return in.Ops[explIdx]
	}
	return Operand{}
}

// RegsUsed returns the set of register families referenced by the
// instruction's concrete operands (explicit and implicit), including memory
// base registers.
func (in *Inst) RegsUsed() map[isa.Reg]bool {
	used := make(map[isa.Reg]bool)
	for i, spec := range in.Variant.Operands {
		op := in.OperandFor(i)
		switch {
		case spec.Kind == isa.OpReg && op.Reg != isa.RegNone:
			used[op.Reg.Family()] = true
		case spec.Kind == isa.OpMem && op.Mem != nil:
			used[op.Mem.Base.Family()] = true
		}
	}
	return used
}

// Sequence is a list of concrete instructions (the body of a
// microbenchmark).
type Sequence []*Inst

// String renders the sequence one instruction per line.
func (s Sequence) String() string {
	var b strings.Builder
	for _, in := range s {
		b.WriteString(in.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Repeat returns the sequence concatenated n times.
func (s Sequence) Repeat(n int) Sequence {
	out := make(Sequence, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return out
}

// Concat concatenates sequences.
func Concat(seqs ...Sequence) Sequence {
	var out Sequence
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}
