package asmgen

import (
	"strings"
	"testing"
	"testing/quick"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/xedspec"
)

func variant(t *testing.T, name string) *isa.Instr {
	t.Helper()
	in := xedspec.MustFullISA().Lookup(name)
	if in == nil {
		t.Fatalf("variant %s not found", name)
	}
	return in
}

func TestNewInstValidation(t *testing.T) {
	t.Parallel()
	add := variant(t, "ADD_R64_R64")
	if _, err := NewInst(add, RegOperand(isa.RAX)); err == nil {
		t.Error("NewInst accepted a missing operand")
	}
	if _, err := NewInst(add, RegOperand(isa.RAX), RegOperand(isa.EAX)); err == nil {
		t.Error("NewInst accepted a register of the wrong class")
	}
	if _, err := NewInst(add, RegOperand(isa.RAX), ImmOperand(1)); err == nil {
		t.Error("NewInst accepted an immediate where a register is required")
	}
	if _, err := NewInst(add, RegOperand(isa.RAX), RegOperand(isa.RBX)); err != nil {
		t.Errorf("NewInst rejected a valid instruction: %v", err)
	}

	load := variant(t, "MOV_R64_M64")
	if _, err := NewInst(load, RegOperand(isa.RAX), RegOperand(isa.RBX)); err == nil {
		t.Error("NewInst accepted a register where memory is required")
	}
	if _, err := NewInst(load, RegOperand(isa.RAX), MemOperand(isa.EBX, 0x1000)); err == nil {
		t.Error("NewInst accepted a 32-bit base register")
	}
	if _, err := NewInst(load, RegOperand(isa.RAX), MemOperand(isa.RBX, 0x1000)); err != nil {
		t.Errorf("NewInst rejected a valid load: %v", err)
	}
}

func TestIntelSyntaxPrinting(t *testing.T) {
	t.Parallel()
	add := variant(t, "ADD_R64_M64")
	inst := MustInst(add, RegOperand(isa.RAX), MemOperand(isa.RBX, 0x1000))
	if got := inst.String(); got != "ADD RAX, [RBX]" {
		t.Errorf("String() = %q, want %q", got, "ADD RAX, [RBX]")
	}
	shld := variant(t, "SHLD_R64_R64_I8")
	inst2 := MustInst(shld, RegOperand(isa.RCX), RegOperand(isa.RDX), ImmOperand(5))
	if got := inst2.String(); got != "SHLD RCX, RDX, 5" {
		t.Errorf("String() = %q, want %q", got, "SHLD RCX, RDX, 5")
	}
	cmc := variant(t, "CMC")
	if got := MustInst(cmc).String(); got != "CMC" {
		t.Errorf("String() = %q, want CMC", got)
	}
}

func TestOperandForResolvesImplicitRegisters(t *testing.T) {
	t.Parallel()
	div := variant(t, "DIV_R64")
	inst := MustInst(div, RegOperand(isa.RBX))
	raxIdx := div.OperandIndex("RAX")
	if raxIdx < 0 {
		t.Fatal("DIV_R64 has no implicit RAX operand")
	}
	if got := inst.OperandFor(raxIdx).Reg; got != isa.RAX {
		t.Errorf("OperandFor(implicit RAX) = %s, want RAX", got)
	}
	if got := inst.OperandFor(0).Reg; got != isa.RBX {
		t.Errorf("OperandFor(0) = %s, want RBX", got)
	}
	if got := inst.OperandFor(99).Reg; got != isa.RegNone {
		t.Errorf("OperandFor(out of range) = %s, want RegNone", got)
	}
}

func TestRegsUsedIncludesBasesAndImplicit(t *testing.T) {
	t.Parallel()
	add := variant(t, "ADD_R64_M64")
	inst := MustInst(add, RegOperand(isa.RAX), MemOperand(isa.RBX, 0x1000))
	used := inst.RegsUsed()
	if !used[isa.RAX] || !used[isa.RBX] {
		t.Errorf("RegsUsed = %v, want RAX and RBX", used)
	}
	div := variant(t, "DIV_R64")
	used = MustInst(div, RegOperand(isa.RBX)).RegsUsed()
	if !used[isa.RAX] || !used[isa.RDX] || !used[isa.RBX] {
		t.Errorf("DIV RegsUsed = %v, want RAX, RDX and RBX", used)
	}
}

func TestSequenceHelpers(t *testing.T) {
	t.Parallel()
	add := variant(t, "ADD_R64_R64")
	a := MustInst(add, RegOperand(isa.RAX), RegOperand(isa.RBX))
	b := MustInst(add, RegOperand(isa.RCX), RegOperand(isa.RDX))
	seq := Sequence{a, b}
	if got := seq.Repeat(3); len(got) != 6 || got[0] != a || got[5] != b {
		t.Errorf("Repeat produced %d instructions", len(got))
	}
	if got := Concat(seq, Sequence{a}); len(got) != 3 {
		t.Errorf("Concat produced %d instructions", len(got))
	}
	text := seq.String()
	if strings.Count(text, "\n") != 2 {
		t.Errorf("Sequence.String should have one line per instruction:\n%s", text)
	}
}

func TestAllocatorFreshAndReserved(t *testing.T) {
	t.Parallel()
	alloc := NewAllocator(DefaultReserved...)
	seen := make(map[isa.Reg]bool)
	for i := 0; i < 12; i++ {
		r, err := alloc.Fresh(isa.ClassGPR64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.Family()] {
			t.Fatalf("Fresh returned family %s twice", r.Family())
		}
		seen[r.Family()] = true
		for _, res := range DefaultReserved {
			if r.Family() == res.Family() {
				t.Fatalf("Fresh returned reserved register %s", r)
			}
		}
	}
	// Exhausted: falls back to reuse rather than failing.
	if _, err := alloc.Fresh(isa.ClassGPR64); err != nil {
		t.Fatalf("Fresh should fall back to reuse when exhausted: %v", err)
	}
}

func TestAllocatorAvoidAndReuse(t *testing.T) {
	t.Parallel()
	alloc := NewAllocator()
	r, err := alloc.Reuse(isa.ClassXMM, isa.XMM0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Family() == isa.XMM0 {
		t.Errorf("Reuse returned avoided register %s", r)
	}
	alloc.MarkUsed(isa.XMM1)
	f, err := alloc.Fresh(isa.ClassXMM)
	if err != nil {
		t.Fatal(err)
	}
	if f == isa.XMM1 {
		t.Error("Fresh returned a register previously marked used")
	}
}

func TestMemArenaDistinctAligned(t *testing.T) {
	t.Parallel()
	arena := NewMemArena()
	a := arena.Alloc(8)
	b := arena.Alloc(64)
	c := arena.Alloc(0)
	if a == b || b == c || a == c {
		t.Error("MemArena returned duplicate addresses")
	}
	for _, addr := range []uint64{a, b, c} {
		if addr%64 != 0 {
			t.Errorf("address %#x not 64-byte aligned", addr)
		}
	}
	if b-a < 8 || c-b < 64 {
		t.Error("MemArena allocations overlap")
	}
}

// Property: Fresh never returns a reserved register and always returns a
// register of the requested class, for any interleaving of requests.
func TestAllocatorFreshProperty(t *testing.T) {
	t.Parallel()
	classes := []isa.RegClass{isa.ClassGPR64, isa.ClassGPR32, isa.ClassXMM, isa.ClassYMM, isa.ClassMMX}
	f := func(picks []uint8) bool {
		alloc := NewAllocator(DefaultReserved...)
		for _, p := range picks {
			class := classes[int(p)%len(classes)]
			r, err := alloc.Fresh(class)
			if err != nil {
				continue // class exhausted is acceptable
			}
			if r.Class() != class {
				return false
			}
			for _, res := range DefaultReserved {
				if r.Family() == res.Family() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
