package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/uarch"
)

// condGet performs one GET with an If-None-Match header.
func condGet(t *testing.T, svc *Service, target, inm string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", target, nil)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	svc.ServeHTTP(rec, req)
	return rec
}

// TestConditionalGet pins the ETag contract on the characterization
// endpoints: a warm conditional request with a matching validator answers 304
// with no body and, critically, without invoking the engine at all.
func TestConditionalGet(t *testing.T) {
	svc, eng := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	target := "/v1/arch/skylake?only=" + strings.Join(testOnly, ",")

	warm := condGet(t, svc, target, "")
	if warm.Code != http.StatusOK {
		t.Fatalf("warm request = %d: %s", warm.Code, warm.Body.Bytes())
	}
	tag := warm.Header().Get("ETag")
	if tag == "" || !strings.HasPrefix(tag, `"`) {
		t.Fatalf("ETag = %q, want a quoted validator", tag)
	}

	before := eng.Stats()
	for _, inm := range []string{tag, "*", `"other-tag", ` + tag, "W/" + tag} {
		rec := condGet(t, svc, target, inm)
		if rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match: %s = %d, want 304", inm, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("If-None-Match: %s carried a %d-byte body", inm, rec.Body.Len())
		}
		if got := rec.Header().Get("ETag"); got != tag {
			t.Errorf("304 ETag = %q, want %q", got, tag)
		}
	}
	if after := eng.Stats(); !reflect.DeepEqual(after, before) {
		t.Errorf("conditional requests touched the engine: %+v -> %+v", before, after)
	}

	// A stale validator still gets the full body.
	rec := condGet(t, svc, target, `"stale"`)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("stale If-None-Match = %d with %d bytes, want a full 200", rec.Code, rec.Body.Len())
	}

	// Different representations have different validators (equal tags must
	// mean byte-identical bodies).
	xmlRec := condGet(t, svc, target+"&format=xml", "")
	if xmlTag := xmlRec.Header().Get("ETag"); xmlTag == tag {
		t.Error("JSON and XML representations share one ETag")
	}

	// The variant endpoint is a conditional resource too.
	vTarget := "/v1/arch/skylake/variant/" + testOnly[0]
	vWarm := condGet(t, svc, vTarget, "")
	vTag := vWarm.Header().Get("ETag")
	if vTag == "" {
		t.Fatal("variant response has no ETag")
	}
	if rec := condGet(t, svc, vTarget, vTag); rec.Code != http.StatusNotModified {
		t.Errorf("variant If-None-Match = %d, want 304", rec.Code)
	}
}

// TestMetricsEndpoint checks /metrics is a parseable Prometheus text
// exposition whose numbers agree with the JSON counters.
func TestMetricsEndpoint(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	if code, _ := get(t, svc, "/v1/arch/skylake?only="+testOnly[0]); code != http.StatusOK {
		t.Fatalf("warm-up request = %d", code)
	}
	if code, _ := get(t, svc, "/v1/arch/nope"); code != http.StatusBadRequest {
		t.Fatalf("error request = %d, want 400", code)
	}
	st := createJob(t, svc, "/v1/jobs?gen=skylake&only="+testOnly[0])
	if final := waitJobDone(t, svc, st.ID); final.State != jobDone {
		t.Fatalf("job finished in state %q", final.State)
	}

	rec := do(t, svc, "GET", "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}

	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-z_]+ .+$`)
	sample := regexp.MustCompile(`^([a-z_]+)(\{[^{}]*\})? (-?[0-9.e+]+)$`)
	values := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		if comment.MatchString(line) {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d is neither comment nor sample: %q", i+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d value: %v", i+1, err)
		}
		values[m[1]+m[2]] = v
	}

	c := svc.Counters()
	es := svc.eng.Stats()
	// The exposition was assembled inside the /metrics request itself, so its
	// request count is exactly the live counter at that moment.
	for name, want := range map[string]float64{
		"uopsd_http_requests_total":     float64(c.Requests),
		"uopsd_http_errors_total":       float64(c.Errors),
		"uopsd_engine_runs_total":       float64(es.Runs),
		`uopsd_jobs{state="done"}`:      1,
		"uopsd_http_rate_limited_total": 0,
	} {
		got, ok := values[name]
		if !ok {
			t.Errorf("metric %s missing from the exposition", name)
		} else if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if values["uopsd_engine_variants_measured_total"] < 1 {
		t.Error("variants-measured counter not exposed")
	}
}

// TestRateLimiting checks the token bucket end to end: burst requests pass,
// the next is 429 with a Retry-After, probes stay exempt, and refilled tokens
// admit again.
func TestRateLimiting(t *testing.T) {
	eng, err := engine.New(engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Engine: eng, Log: t.Logf, RateLimit: 1, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	now := time.Now()
	svc.limiter.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}

	for i := 0; i < 2; i++ {
		if rec := do(t, svc, "GET", "/v1/backends"); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst = %d", i, rec.Code)
		}
	}
	rec := do(t, svc, "GET", "/v1/backends")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request past burst = %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if c := svc.Counters(); c.RateLimited != 1 {
		t.Errorf("RateLimited counter = %d, want 1", c.RateLimited)
	}

	// Probes are exempt even with the bucket dry.
	for _, target := range []string{"/healthz", "/metrics"} {
		if rec := do(t, svc, "GET", target); rec.Code != http.StatusOK {
			t.Errorf("GET %s with a dry bucket = %d, want 200", target, rec.Code)
		}
	}

	// A second of refill admits exactly one more request.
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()
	if rec := do(t, svc, "GET", "/v1/backends"); rec.Code != http.StatusOK {
		t.Errorf("request after refill = %d, want 200", rec.Code)
	}
	if rec := do(t, svc, "GET", "/v1/backends"); rec.Code != http.StatusTooManyRequests {
		t.Errorf("second request after one-token refill = %d, want 429", rec.Code)
	}
}

// TestPanicAfterBodyStartedAbortsConnection is the regression for silent
// truncation: when a handler panics after the response body started, the
// client must see a broken connection, not a clean EOF on a truncated 200.
func TestPanicAfterBodyStartedAbortsConnection(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	svc.mux.HandleFunc("GET /v1/truncate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		http.NewResponseController(w).Flush()
		panic("mid-body")
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/truncate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (headers were already sent)", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("truncated response read cleanly; the connection was not aborted")
	}

	c := svc.Counters()
	if c.Panics != 1 {
		t.Errorf("Panics = %d, want 1", c.Panics)
	}
	if c.Errors != 1 {
		t.Errorf("Errors = %d, want 1 (the aborted request)", c.Errors)
	}
	// The server survives and keeps serving.
	if code, _ := get(t, svc, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz after mid-body panic = %d", code)
	}
}

// TestBogusFormatIs400 is the regression for the ?format fallthrough: an
// unknown format value must be rejected, not silently degraded to the Accept
// default — and must not cost a characterization run.
func TestBogusFormatIs400(t *testing.T) {
	svc, eng := newTestService(t, engine.Config{})
	for _, target := range []string{
		"/v1/arch/skylake?format=bogus",
		"/v1/arch/skylake/variant/ADD_R64_R64?format=yaml",
	} {
		code, body := get(t, svc, target)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (%s)", target, code, body)
		}
		if !strings.Contains(string(body), "format") {
			t.Errorf("GET %s error %q does not name the format", target, body)
		}
	}
	if st := eng.Stats(); st.Runs != 0 {
		t.Errorf("rejected formats started %d engine runs", st.Runs)
	}
}

// TestClientGoneIsCounted is the regression for cancellation accounting: a
// request abandoned by its client is recorded as client-gone, not as a server
// error — and the run it had coalesced onto keeps going for everyone else.
func TestClientGoneIsCounted(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	svc, eng := newTestService(t, engine.Config{
		CacheDir: t.TempDir(),
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	target := srv.URL + "/v1/arch/skylake?only=" + strings.Join(testOnly, ",")

	waitFor := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("timed out waiting for %s", what)
		return false
	}

	// The leader holds the run; a second client attaches and then hangs up.
	leaderDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(target)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("leader status = %d", resp.StatusCode)
			}
		}
		leaderDone <- err
	}()
	if !waitFor("the leader's run to start", func() bool { return eng.Stats().Runs == 1 }) {
		close(released)
		t.FailNow()
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "GET", target, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		waiterDone <- err
	}()
	if !waitFor("the waiter to attach", func() bool { return eng.Stats().CoalescedWaiters >= 1 }) {
		close(released)
		t.FailNow()
	}
	cancel()
	if err := <-waiterDone; err == nil {
		t.Error("cancelled client's request did not error")
	}
	ok := waitFor("the hang-up to be counted", func() bool { return svc.Counters().ClientGone == 1 })
	close(released)
	if !ok {
		t.FailNow()
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after the waiter hung up: %v", err)
	}
	c := svc.Counters()
	if c.Errors != 0 {
		t.Errorf("Errors = %d, want 0: a client hang-up is not a server error", c.Errors)
	}
	if c.ClientGone != 1 {
		t.Errorf("ClientGone = %d, want 1", c.ClientGone)
	}
}
