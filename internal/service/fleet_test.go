package service

// Loopback-fleet tests: real uopsd workers (this service over a pipesim
// engine, served by httptest), a front-tier engine on the remote backend, and
// the acceptance bar of the fleet design — characterization output through
// the fleet is byte-identical to a local run, under any worker count and
// across mid-run worker failures. These tests share the remote backend's
// process-global configuration, so none of them run in parallel.
//
// Scope: the regular runs characterize a sampled variant slice (fast enough
// for -race CI); set UOPS_FLEET_FULL=1 to run the full-ISA Skylake
// determinism test (the acceptance criterion verbatim, minutes of runtime).

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

// fleetWorker is one loopback uopsd worker: a real Service over its own
// pipesim engine. kill makes the worker abruptly reset every subsequent
// connection, simulating a crashed machine without tearing the test server
// down mid-handler.
type fleetWorker struct {
	srv      *httptest.Server
	measures atomic.Int64
	dead     atomic.Bool
}

func (w *fleetWorker) kill() { w.dead.Store(true) }

func startFleetWorker(t *testing.T) *fleetWorker {
	t.Helper()
	svc, _ := newTestService(t, engine.Config{})
	fw := &fleetWorker{}
	fw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fw.dead.Load() {
			// A dead machine answers nothing: reset the connection so the
			// client sees a transport error, not an orderly HTTP status.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/measure" {
			fw.measures.Add(1)
		}
		svc.ServeHTTP(w, r)
	}))
	t.Cleanup(fw.srv.Close)
	return fw
}

// configureFleet points the remote backend at n fresh loopback workers.
func configureFleet(t *testing.T, n int) []*fleetWorker {
	t.Helper()
	workers := make([]*fleetWorker, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = startFleetWorker(t)
		urls[i] = workers[i].srv.URL
	}
	if err := remote.Configure(remote.Options{Workers: urls}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Shutdown)
	return workers
}

// remoteEngine builds a front-tier engine measuring on the configured fleet.
func remoteEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{Workers: 4, Backend: remote.BackendName})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// renderXML renders an ArchResult exactly the way cmd/uopsinfo writes its
// results file, so byte equality here is byte equality of the tool's output.
func renderXML(t *testing.T, arch *uarch.Arch, res *core.ArchResult) []byte {
	t.Helper()
	var analyzers []*iaca.Analyzer
	for _, v := range iaca.SupportedVersions(arch.Gen()) {
		a, err := iaca.New(v, arch)
		if err != nil {
			t.Fatal(err)
		}
		analyzers = append(analyzers, a)
	}
	var buf bytes.Buffer
	if err := xmlout.Write(&buf, xmlout.Single(xmlout.FromArchResult(res, analyzers))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fleetRunOptions is the variant slice the loopback tests characterize: every
// 40th Skylake variant — broad enough to cross instruction classes (loads,
// stores, divides, eliminated moves), small enough for -race CI.
func fleetRunOptions(arch *uarch.Arch) engine.RunOptions {
	names := arch.InstrSet().Names()
	var only []string
	for i := 0; i < len(names); i += 40 {
		only = append(only, names[i])
	}
	return engine.RunOptions{Only: only}
}

// localReferenceXML characterizes the same selection on a plain local engine.
func localReferenceXML(t *testing.T, arch *uarch.Arch, opts engine.RunOptions) []byte {
	t.Helper()
	eng, err := engine.New(engine.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.CharacterizeArch(arch.Gen(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return renderXML(t, arch, res)
}

func TestFleetOutputMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fleet characterization in -short mode")
	}
	arch, err := uarch.ByName("Skylake")
	if err != nil {
		t.Fatal(err)
	}
	opts := fleetRunOptions(arch)
	if os.Getenv("UOPS_FLEET_FULL") != "" {
		opts = engine.RunOptions{} // the full ISA: the acceptance run
	}
	want := localReferenceXML(t, arch, opts)

	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("%d-workers", n), func(t *testing.T) {
			workers := configureFleet(t, n)
			eng := remoteEngine(t)
			res, err := eng.CharacterizeArch(arch.Gen(), opts)
			if err != nil {
				t.Fatal(err)
			}
			got := renderXML(t, arch, res)
			if !bytes.Equal(got, want) {
				t.Fatalf("fleet output (%d workers) differs from local output (%d vs %d bytes)",
					n, len(got), len(want))
			}
			// Every worker of a multi-worker fleet must have taken real work.
			if n > 1 {
				for i, w := range workers {
					if w.measures.Load() == 0 {
						t.Errorf("worker %d served no measurement batches", i)
					}
				}
			}
		})
	}
}

func TestFleetSurvivesWorkerDeathMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fleet characterization in -short mode")
	}
	arch, err := uarch.ByName("Skylake")
	if err != nil {
		t.Fatal(err)
	}
	opts := fleetRunOptions(arch)
	want := localReferenceXML(t, arch, opts)

	workers := configureFleet(t, 2)
	eng := remoteEngine(t)

	// Kill worker 0 as soon as it has served a few batches: the run is then
	// mid-flight, and every sequence it still holds must be retried onto the
	// survivor with no effect on the output.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for workers[0].measures.Load() < 3 {
			if workers[1].measures.Load() > 50 { // run nearly done without w0; kill anyway
				break
			}
			time.Sleep(time.Millisecond)
		}
		workers[0].kill()
	}()
	res, err := eng.CharacterizeArch(arch.Gen(), opts)
	<-killed
	if err != nil {
		t.Fatalf("characterization did not survive worker death: %v", err)
	}
	got := renderXML(t, arch, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("output after worker death differs from local output (%d vs %d bytes)", len(got), len(want))
	}
	if st := eng.Stats(); st.Fleet == nil || st.Fleet.Retries == 0 {
		t.Logf("fleet stats after worker death: %+v", st.Fleet)
	}
}

func TestFleetHandshakeMismatchIsHardError(t *testing.T) {
	real := startFleetWorker(t)
	// A worker from a different build: same protocol, different serving
	// fingerprint.
	impostor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"serving":{"name":"pipesim","version":"999","fingerprint":"pipesim@999","measureDigest":"ffff"}}`)
	}))
	t.Cleanup(impostor.Close)
	err := remote.Configure(remote.Options{Workers: []string{real.srv.URL, impostor.URL}})
	if err == nil {
		remote.Shutdown()
		t.Fatal("Configure accepted a mixed-version fleet")
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("mismatch error = %v", err)
	}
}

func TestFleetCountersInStatsAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fleet characterization in -short mode")
	}
	configureFleet(t, 2)
	eng := remoteEngine(t)
	front, err := New(Config{Engine: eng, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, front, "/v1/arch/skylake?only="+strings.Join(testOnly, ","))
	if code != http.StatusOK {
		t.Fatalf("GET /v1/arch/skylake = %d: %s", code, body)
	}

	code, body = get(t, front, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	stats := string(body)
	for _, want := range []string{`"fleet"`, `"fingerprint": "pipesim@`, `"workers"`} {
		if !strings.Contains(stats, want) {
			t.Errorf("/v1/stats lacks %s:\n%s", want, stats)
		}
	}
	if !strings.Contains(stats, `"remote"`) {
		t.Errorf("/v1/stats does not name the remote backend:\n%s", stats)
	}

	code, body = get(t, front, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	metrics := string(body)
	for _, want := range []string{
		"uopsd_fleet_batches_total",
		"uopsd_fleet_sequences_total",
		"uopsd_fleet_worker_healthy{worker=",
		"uopsd_fleet_worker_batches_total{worker=",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
}

func TestMeasureEndpointCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fleet characterization in -short mode")
	}
	workers := configureFleet(t, 1)
	eng := remoteEngine(t)
	if _, err := eng.CharacterizeArch(uarch.Skylake, engine.RunOptions{Only: testOnly}); err != nil {
		t.Fatal(err)
	}
	// The worker's own service must have accounted the measurement batches.
	resp, err := http.Get(workers[0].srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	stats := buf.String()
	if !strings.Contains(stats, `"measureBatches"`) {
		t.Fatalf("worker /v1/stats lacks measureBatches:\n%s", stats)
	}
	if strings.Contains(stats, `"measureBatches": 0,`) {
		t.Errorf("worker served no measurement batches:\n%s", stats)
	}
}
