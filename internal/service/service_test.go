package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

// testOnly is a small variant selection that keeps the measurement part of
// the endpoint tests fast; the cold cost is dominated by blocking discovery.
var testOnly = []string{"ADD_R64_R64", "PXOR_XMM_XMM"}

func newTestService(t *testing.T, ecfg engine.Config) (*Service, *engine.Engine) {
	t.Helper()
	if ecfg.Workers == 0 {
		ecfg.Workers = 2
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Engine: eng, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return svc, eng
}

// get performs one request against the handler and returns status and body.
func get(t *testing.T, svc *Service, target string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	code, body := get(t, svc, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}
	var resp map[string]string
	if err := json.Unmarshal(body, &resp); err != nil || resp["status"] != "ok" {
		t.Errorf("healthz body %q (err %v)", body, err)
	}
}

func TestBackendsListsRegistry(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	code, body := get(t, svc, "/v1/backends")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/backends = %d, want 200", code)
	}
	var resp struct {
		Backends []BackendInfo `json:"backends"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	foundDefault := false
	for _, b := range resp.Backends {
		if b.Name == "pipesim" && b.Default && b.Version != "" {
			foundDefault = true
		}
	}
	if !foundDefault {
		t.Errorf("backends response %s does not list pipesim as the default", body)
	}
}

func TestArchEndpoint(t *testing.T) {
	svc, eng := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	target := "/v1/arch/skylake?only=" + strings.Join(testOnly, ",")

	code, body := get(t, svc, target)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", target, code, body)
	}
	var doc xmlout.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Architectures) != 1 || doc.Architectures[0].Name != "Skylake" {
		t.Fatalf("response document: %+v", doc.Architectures)
	}
	if got := len(doc.Architectures[0].Instructions); got != len(testOnly) {
		t.Fatalf("%d instructions, want %d", got, len(testOnly))
	}
	for _, name := range testOnly {
		inst := doc.Architectures[0].Lookup(name)
		if inst == nil || inst.Measured == nil || inst.Measured.Uops == 0 {
			t.Errorf("%s missing or unmeasured in response: %+v", name, inst)
		}
	}

	t.Run("xml format matches the results-file rendering", func(t *testing.T) {
		code, xmlBody := get(t, svc, target+"&format=xml")
		if code != http.StatusOK {
			t.Fatalf("format=xml = %d", code)
		}
		res, err := eng.CharacterizeArch(uarch.Skylake, engine.RunOptions{Only: testOnly})
		if err != nil {
			t.Fatal(err)
		}
		// The reference rendering is built exactly the way cmd/uopsinfo
		// builds the results file: measured results plus the per-version
		// IACA entries for the generation.
		var analyzers []*iaca.Analyzer
		for _, v := range iaca.SupportedVersions(uarch.Skylake) {
			a, err := iaca.New(v, uarch.Get(uarch.Skylake))
			if err != nil {
				t.Fatal(err)
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			t.Fatal("no IACA versions support Skylake; the byte-identity check would be vacuous")
		}
		var want bytes.Buffer
		if err := xmlout.Write(&want, xmlout.Single(xmlout.FromArchResult(res, analyzers))); err != nil {
			t.Fatal(err)
		}
		if string(xmlBody) != want.String() {
			t.Errorf("XML response is not byte-identical to the results-file rendering (%d vs %d bytes)",
				len(xmlBody), want.Len())
		}
		parsed, err := xmlout.Read(bytes.NewReader(xmlBody))
		if err != nil {
			t.Fatal(err)
		}
		if len(parsed.Architectures) != 1 || len(parsed.Architectures[0].Instructions) != len(testOnly) {
			t.Errorf("XML response did not round-trip through xmlout.Read")
		}
	})

	t.Run("accept header selects xml", func(t *testing.T) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", target, nil)
		req.Header.Set("Accept", "application/xml")
		svc.ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "xml") {
			t.Errorf("Accept: application/xml answered with Content-Type %q", ct)
		}
	})
}

func TestVariantEndpoint(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	code, body := get(t, svc, "/v1/arch/Skylake/variant/ADD_R64_R64")
	if code != http.StatusOK {
		t.Fatalf("variant request = %d: %s", code, body)
	}
	var doc xmlout.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Architectures) != 1 || len(doc.Architectures[0].Instructions) != 1 ||
		doc.Architectures[0].Instructions[0].Name != "ADD_R64_R64" {
		t.Errorf("variant response: %+v", doc.Architectures)
	}
}

// TestErrorStatuses checks the 4xx surface: request-derived garbage must map
// to client errors — and must not terminate the server, which keeps serving.
func TestErrorStatuses(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	cases := []struct {
		target string
		want   int
	}{
		{"/v1/arch/pentium9", http.StatusBadRequest},
		{"/v1/arch/Generation(99)", http.StatusBadRequest},
		{"/v1/arch/skylake?only=NOT_AN_INSTRUCTION", http.StatusBadRequest},
		{"/v1/arch/skylake/variant/NOT_AN_INSTRUCTION", http.StatusNotFound},
		{"/v1/arch/pentium9/variant/ADD_R64_R64", http.StatusBadRequest},
		{"/v1/nosuch", http.StatusNotFound},
	}
	for _, tc := range cases {
		code, body := get(t, svc, tc.target)
		if code != tc.want {
			t.Errorf("GET %s = %d, want %d (%s)", tc.target, code, tc.want, body)
		}
	}
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest("POST", "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}

	// The server survived all of it and still answers.
	if code, _ := get(t, svc, "/healthz"); code != http.StatusOK {
		t.Errorf("service stopped serving after client errors: healthz = %d", code)
	}
	c := svc.Counters()
	if c.Errors != len(cases)+1 {
		t.Errorf("error counter = %d, want %d", c.Errors, len(cases)+1)
	}
	if c.Requests != len(cases)+2 {
		t.Errorf("request counter = %d, want %d", c.Requests, len(cases)+2)
	}
	if c.Panics != 0 {
		t.Errorf("panic counter = %d, want 0", c.Panics)
	}
}

// TestCoalescingStorm is the service-level singleflight test: K concurrent
// identical cold requests through the full HTTP stack perform exactly one
// measurement run, answer byte-identical bodies, and the stats endpoint
// reports one run and K-1 coalesced waiters.
func TestCoalescingStorm(t *testing.T) {
	const waiters = 4
	released := make(chan struct{})
	var gate sync.Once
	svc, eng := newTestService(t, engine.Config{
		CacheDir: t.TempDir(),
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	target := srv.URL + "/v1/arch/sandy-bridge?only=" + strings.Join(testOnly, ",")

	waitFor := func(what string, cond func(engine.Stats) bool) bool {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond(eng.Stats()) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("timed out waiting for %s (stats: %+v)", what, eng.Stats())
		return false
	}

	bodies := make([][]byte, waiters+1)
	codes := make([]int, waiters+1)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(target)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}()
	}

	launch(0)
	if !waitFor("the leader to start", func(s engine.Stats) bool { return s.Runs == 1 }) {
		close(released)
		wg.Wait()
		t.FailNow()
	}
	for i := 1; i <= waiters; i++ {
		launch(i)
	}
	ok := waitFor("all waiters to attach", func(s engine.Stats) bool { return s.CoalescedWaiters == waiters })
	close(released)
	wg.Wait()
	if !ok {
		t.FailNow()
	}

	for i, body := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], body)
		}
		if !bytes.Equal(body, bodies[0]) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Runs != 1 || stats.Engine.CoalescedWaiters != waiters {
		t.Errorf("engine stats: %d runs, %d coalesced waiters, want 1, %d",
			stats.Engine.Runs, stats.Engine.CoalescedWaiters, waiters)
	}
	if stats.Engine.VariantsMeasured != len(testOnly) {
		t.Errorf("%d variants measured for %d requests, want exactly %d",
			stats.Engine.VariantsMeasured, waiters+1, len(testOnly))
	}
	if stats.Backend.Name != "pipesim" {
		t.Errorf("stats backend = %q", stats.Backend.Name)
	}
	if got := stats.Service.Requests; got != waiters+2 {
		t.Errorf("service request counter = %d, want %d", got, waiters+2)
	}
}

// TestPanicIsContainedAnd500 checks the last line of defense: a handler
// panic must be caught, counted and converted into a 500 — one poisoned
// request must not take the daemon down.
func TestPanicIsContainedAnd500(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	svc.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	code, _ := get(t, svc, "/v1/boom")
	if code != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", code)
	}
	if code, _ := get(t, svc, "/healthz"); code != http.StatusOK {
		t.Errorf("service died after a handler panic: healthz = %d", code)
	}
	c := svc.Counters()
	if c.Panics != 1 || c.Errors != 1 {
		t.Errorf("counters after panic: %+v, want 1 panic, 1 error", c)
	}
}

// TestNewRequiresEngine pins the constructor's contract.
func TestNewRequiresEngine(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil engine")
	}
}

// TestOnlyIsCanonicalized checks that equivalent ?only spellings — permuted
// order, duplicated names — resolve to one engine digest: the second request
// is a whole-ISA store hit, nothing is measured twice, and the bodies are
// byte-identical.
func TestOnlyIsCanonicalized(t *testing.T) {
	svc, eng := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	code, first := get(t, svc, "/v1/arch/skylake?only=PXOR_XMM_XMM,ADD_R64_R64")
	if code != http.StatusOK {
		t.Fatalf("first request = %d: %s", code, first)
	}
	code, second := get(t, svc, "/v1/arch/skylake?only=ADD_R64_R64,PXOR_XMM_XMM,ADD_R64_R64")
	if code != http.StatusOK {
		t.Fatalf("second request = %d: %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Error("equivalent ?only spellings answered different bodies")
	}
	st := eng.Stats()
	if st.ResultHits != 1 {
		t.Errorf("permuted+deduplicated ?only was not a store hit: %+v", st)
	}
	if st.VariantsMeasured != 2 {
		t.Errorf("%d variants measured, want 2 (duplicate must not re-measure)", st.VariantsMeasured)
	}
}

// TestAcceptHeaderNegotiation checks the format negotiation on whole
// media-type tokens: a browser's Accept header (text/html first) and an
// explicit json preference stay on the JSON default even though the header
// contains the substring "xml".
func TestAcceptHeaderNegotiation(t *testing.T) {
	cases := []struct {
		accept  string
		wantXML bool
	}{
		{"", false},
		{"application/xml", true},
		{"text/xml;q=0.9", true},
		{"text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8", false},
		{"application/json, text/xml", false},
		{"*/*", false},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", "/v1/arch/skylake", nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		if got := wantXML(req); got != tc.wantXML {
			t.Errorf("wantXML(Accept: %q) = %v, want %v", tc.accept, got, tc.wantXML)
		}
	}
}
