package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/uarch"
)

// do performs one request with an arbitrary method against the handler.
func do(t *testing.T, svc *Service, method, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

// createJob posts a job and returns its decoded status.
func createJob(t *testing.T, svc *Service, target string) JobStatus {
	t.Helper()
	rec := do(t, svc, "POST", target)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST %s = %d: %s", target, rec.Code, rec.Body.Bytes())
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("job created without an ID")
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, st.ID)
	}
	return st
}

// waitJobDone polls the status endpoint until the job leaves the running
// state, and returns the final status.
func waitJobDone(t *testing.T, svc *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, svc, "GET", "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d: %s", id, rec.Code, rec.Body.Bytes())
		}
		var st JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != jobRunning {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// decodeStream parses an NDJSON job-stream body into events.
func decodeStream(t *testing.T, body []byte) []jobEvent {
	t.Helper()
	var events []jobEvent
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var ev jobEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream line %d: %v", len(events), err)
		}
		events = append(events, ev)
	}
	return events
}

// TestJobLifecycle drives a job create → poll → stream → result round trip
// and pins the central contract: the job's result body and ETag are
// byte-identical to the synchronous endpoint with the same query.
func TestJobLifecycle(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{CacheDir: t.TempDir()})
	query := "only=" + strings.Join(testOnly, ",")

	st := createJob(t, svc, "/v1/jobs?gen=skylake&"+query)
	if st.Gen != "Skylake" {
		t.Errorf("job gen = %q, want Skylake", st.Gen)
	}
	if st.Stream != "/v1/jobs/"+st.ID+"/stream" {
		t.Errorf("stream link = %q", st.Stream)
	}

	final := waitJobDone(t, svc, st.ID)
	if final.State != jobDone {
		t.Fatalf("job finished in state %q: %s", final.State, final.Error)
	}
	if final.Finished == nil || final.Result == "" {
		t.Errorf("done status lacks finished time or result link: %+v", final)
	}
	if final.Progress.Phase != "done" || final.Progress.VariantsDone != len(testOnly) {
		t.Errorf("done progress = %+v, want phase done with %d variants", final.Progress, len(testOnly))
	}

	// The listing knows the job.
	rec := do(t, svc, "GET", "/v1/jobs")
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != st.ID {
		t.Errorf("job listing = %+v, want exactly job %s", listing.Jobs, st.ID)
	}

	// The result is byte-identical to the synchronous endpoint, ETag included,
	// in both formats.
	for _, format := range []string{"", "&format=xml"} {
		recJob := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/result?"+strings.TrimPrefix(format, "&"))
		if recJob.Code != http.StatusOK {
			t.Fatalf("job result (%q) = %d: %s", format, recJob.Code, recJob.Body.Bytes())
		}
		recSync := do(t, svc, "GET", "/v1/arch/skylake?"+query+format)
		if recSync.Code != http.StatusOK {
			t.Fatalf("sync request (%q) = %d", format, recSync.Code)
		}
		if !bytes.Equal(recJob.Body.Bytes(), recSync.Body.Bytes()) {
			t.Errorf("job result body (%q) differs from the synchronous response", format)
		}
		jobTag, syncTag := recJob.Header().Get("ETag"), recSync.Header().Get("ETag")
		if jobTag == "" || jobTag != syncTag {
			t.Errorf("job result ETag %q != synchronous ETag %q", jobTag, syncTag)
		}
	}

	// A conditional result fetch is a 304.
	tagRec := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/result")
	req := httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/result", nil)
	req.Header.Set("If-None-Match", tagRec.Header().Get("ETag"))
	cond := httptest.NewRecorder()
	svc.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified {
		t.Errorf("If-None-Match result fetch = %d, want 304", cond.Code)
	}

	// Streaming a finished job replays the full result.
	recStream := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/stream")
	if recStream.Code != http.StatusOK {
		t.Fatalf("stream = %d", recStream.Code)
	}
	if ct := recStream.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	events := decodeStream(t, recStream.Body.Bytes())
	variants := map[string]int{}
	var last jobEvent
	for _, ev := range events {
		if ev.Job != st.ID {
			t.Errorf("event for job %q on job %s's stream", ev.Job, st.ID)
		}
		if ev.Event == "variant" {
			if ev.Record == nil {
				t.Errorf("variant event %s without a record", ev.Name)
			}
			variants[ev.Name]++
		}
		last = ev
	}
	for _, name := range testOnly {
		if variants[name] != 1 {
			t.Errorf("variant %s streamed %d times, want 1", name, variants[name])
		}
	}
	if last.Event != "done" || last.State != jobDone || last.Result != "/v1/jobs/"+st.ID+"/result" {
		t.Errorf("final stream event = %+v, want done with result link", last)
	}
}

// TestJobCoalescesWithSyncRequest is the acceptance gate for the job API
// design: an async job and an identical synchronous request share one
// coalesced measurement run (Stats.Runs == 1), while a live stream attached
// to the job observes the run's variants.
func TestJobCoalescesWithSyncRequest(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	svc, eng := newTestService(t, engine.Config{
		CacheDir: t.TempDir(),
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	query := "only=" + strings.Join(testOnly, ",")

	waitFor := func(what string, cond func(engine.Stats) bool) bool {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cond(eng.Stats()) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		t.Errorf("timed out waiting for %s (stats: %+v)", what, eng.Stats())
		return false
	}

	// The job leads the run and is held inside blocking discovery.
	resp, err := http.Post(srv.URL+"/v1/jobs?gen=sandy-bridge&"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d", resp.StatusCode)
	}
	if !waitFor("the job's run to start", func(s engine.Stats) bool { return s.Runs == 1 }) {
		close(released)
		t.FailNow()
	}

	// A live stream attaches to the gated run.
	streamResp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		close(released)
		t.Fatal(err)
	}
	streamEvents := make(chan []jobEvent, 1)
	go func() {
		defer streamResp.Body.Close()
		var events []jobEvent
		dec := json.NewDecoder(streamResp.Body)
		for {
			var ev jobEvent
			if err := dec.Decode(&ev); err != nil {
				break
			}
			events = append(events, ev)
		}
		streamEvents <- events
	}()

	// An identical synchronous request coalesces onto the job's run.
	syncBody := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/arch/sandy-bridge?" + query)
		if err != nil {
			t.Errorf("sync request: %v", err)
			syncBody <- nil
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		syncBody <- buf.Bytes()
	}()
	ok := waitFor("the sync request to attach", func(s engine.Stats) bool { return s.CoalescedWaiters >= 1 })
	close(released)
	if !ok {
		t.FailNow()
	}

	sync := <-syncBody
	final := waitJobDone(t, svc, st.ID)
	if final.State != jobDone {
		t.Fatalf("job finished in state %q: %s", final.State, final.Error)
	}
	rec := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/result")
	if rec.Code != http.StatusOK {
		t.Fatalf("job result = %d", rec.Code)
	}
	if sync == nil || !bytes.Equal(rec.Body.Bytes(), sync) {
		t.Error("job result body differs from the coalesced synchronous response")
	}

	stats := eng.Stats()
	if stats.Runs != 1 {
		t.Errorf("stats.Runs = %d: the job and the sync request did not coalesce", stats.Runs)
	}
	if stats.VariantsMeasured != len(testOnly) {
		t.Errorf("%d variants measured, want %d", stats.VariantsMeasured, len(testOnly))
	}

	events := <-streamEvents
	variants := map[string]int{}
	sawProgress := false
	var last jobEvent
	for _, ev := range events {
		switch ev.Event {
		case "progress":
			sawProgress = true
		case "variant":
			variants[ev.Name]++
		}
		last = ev
	}
	if !sawProgress {
		t.Error("live stream never emitted a progress event")
	}
	for _, name := range testOnly {
		if variants[name] != 1 {
			t.Errorf("variant %s streamed %d times, want 1", name, variants[name])
		}
	}
	if last.Event != "done" {
		t.Errorf("final stream event = %+v, want done", last)
	}
}

// TestJobResultWhileRunning pins the 409: a result fetch must not block on —
// or worse, silently join — a run that has not finished.
func TestJobResultWhileRunning(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	svc, _ := newTestService(t, engine.Config{
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	st := createJob(t, svc, "/v1/jobs?gen=skylake&only="+testOnly[0])
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/result")
		if rec.Code == http.StatusConflict {
			break
		}
		if time.Now().After(deadline) {
			close(released)
			t.Fatalf("running job's result answered %d, want 409", rec.Code)
		}
		time.Sleep(time.Millisecond)
	}
	close(released)
	if final := waitJobDone(t, svc, st.ID); final.State != jobDone {
		t.Fatalf("job finished in state %q", final.State)
	}
	if rec := do(t, svc, "GET", "/v1/jobs/"+st.ID+"/result"); rec.Code != http.StatusOK {
		t.Errorf("finished job's result = %d, want 200", rec.Code)
	}
}

// TestJobValidation checks the job API's 4xx surface — and that none of the
// rejected requests reaches the engine.
func TestJobValidation(t *testing.T) {
	svc, eng := newTestService(t, engine.Config{})
	cases := []struct {
		method, target string
		want           int
	}{
		{"POST", "/v1/jobs", http.StatusBadRequest},
		{"POST", "/v1/jobs?gen=pentium9", http.StatusBadRequest},
		{"POST", "/v1/jobs?gen=skylake&format=bogus", http.StatusBadRequest},
		{"POST", "/v1/jobs?gen=skylake&only=NOT_AN_INSTRUCTION", http.StatusBadRequest},
		{"GET", "/v1/jobs/jdeadbeef", http.StatusNotFound},
		{"GET", "/v1/jobs/jdeadbeef/stream", http.StatusNotFound},
		{"GET", "/v1/jobs/jdeadbeef/result", http.StatusNotFound},
	}
	for _, tc := range cases {
		rec := do(t, svc, tc.method, tc.target)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.target, rec.Code, tc.want, rec.Body.Bytes())
		}
	}
	if st := eng.Stats(); st.Runs != 0 {
		t.Errorf("rejected job requests started %d engine runs", st.Runs)
	}
	rec := do(t, svc, "GET", "/v1/jobs")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/jobs = %d", rec.Code)
	}
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 0 {
		t.Errorf("listing after rejected creates: %+v", listing.Jobs)
	}
}

// TestJobTTLExpiry checks retention: finished jobs disappear from the table
// (listing, status, result) once their TTL passes, on the injected clock.
func TestJobTTLExpiry(t *testing.T) {
	eng, err := engine.New(engine.Config{Workers: 2, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Engine: eng, Log: t.Logf, JobTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	base := time.Now()
	offset := time.Duration(0)
	svc.jobs.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return base.Add(offset)
	}

	st := createJob(t, svc, "/v1/jobs?gen=skylake&only="+testOnly[0])
	if final := waitJobDone(t, svc, st.ID); final.State != jobDone {
		t.Fatalf("job finished in state %q", final.State)
	}

	// Still within the TTL: fetchable.
	mu.Lock()
	offset = 30 * time.Second
	mu.Unlock()
	if rec := do(t, svc, "GET", "/v1/jobs/"+st.ID); rec.Code != http.StatusOK {
		t.Fatalf("job before TTL = %d", rec.Code)
	}

	// Past the TTL: swept from every endpoint.
	mu.Lock()
	offset = 2 * time.Minute
	mu.Unlock()
	for _, target := range []string{
		"/v1/jobs/" + st.ID,
		"/v1/jobs/" + st.ID + "/result",
		"/v1/jobs/" + st.ID + "/stream",
	} {
		if rec := do(t, svc, "GET", target); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s after TTL = %d, want 404", target, rec.Code)
		}
	}
	rec := do(t, svc, "GET", "/v1/jobs")
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 0 {
		t.Errorf("listing after TTL: %+v", listing.Jobs)
	}
}

// TestDrainJobsWaits pins the shutdown half of the job table: DrainJobs
// blocks while a job runs and returns once it finishes.
func TestDrainJobsWaits(t *testing.T) {
	released := make(chan struct{})
	var gate sync.Once
	svc, _ := newTestService(t, engine.Config{
		BlockingProgress: func(gen uarch.Generation, done, total int, name string) {
			gate.Do(func() { <-released })
		},
	})
	st := createJob(t, svc, "/v1/jobs?gen=skylake&only="+testOnly[0])

	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	err := svc.DrainJobs(short)
	cancel()
	if err == nil {
		t.Error("DrainJobs returned while a job was still running")
	}

	close(released)
	long, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := svc.DrainJobs(long); err != nil {
		t.Fatalf("DrainJobs after the run finished: %v", err)
	}
	if final := waitJobDone(t, svc, st.ID); final.State != jobDone {
		t.Errorf("job finished in state %q", final.State)
	}
}
