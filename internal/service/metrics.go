// GET /metrics: the service and engine counters in the Prometheus text
// exposition format. The numbers are the same ones /v1/stats serves as JSON —
// the counters already existed, this is only the format a scrape pipeline
// ingests without adapters.
package service

import (
	"fmt"
	"net/http"
	"sort"
)

// metric is one exposition entry.
type metric struct {
	name   string
	help   string
	typ    string // "counter" or "gauge"
	labels string // rendered label set incl. braces, or ""
	value  float64
}

// metrics assembles the exposition set from the live counters.
func (s *Service) metrics() []metric {
	c := s.Counters()
	es := s.eng.Stats()
	ms := []metric{
		{name: "uopsd_http_requests_total", typ: "counter",
			help: "HTTP requests received.", value: float64(c.Requests)},
		{name: "uopsd_http_errors_total", typ: "counter",
			help: "HTTP requests answered with a 4xx or 5xx status.", value: float64(c.Errors)},
		{name: "uopsd_http_panics_total", typ: "counter",
			help: "Handler panics caught and contained.", value: float64(c.Panics)},
		{name: "uopsd_http_client_gone_total", typ: "counter",
			help: "Requests whose client went away before a response was written.", value: float64(c.ClientGone)},
		{name: "uopsd_http_rate_limited_total", typ: "counter",
			help: "Requests rejected with 429 by the rate limiter.", value: float64(c.RateLimited)},
		{name: "uopsd_engine_runs_total", typ: "counter",
			help: "Characterization runs executed (not coalesced onto another run).", value: float64(es.Runs)},
		{name: "uopsd_engine_coalesced_waiters_total", typ: "counter",
			help: "Requests that attached to an in-flight identical run.", value: float64(es.CoalescedWaiters)},
		{name: "uopsd_engine_result_hits_total", typ: "counter",
			help: "Whole-ISA result store hits.", value: float64(es.ResultHits)},
		{name: "uopsd_engine_result_misses_total", typ: "counter",
			help: "Whole-ISA result store misses.", value: float64(es.ResultMisses)},
		{name: "uopsd_engine_blocking_hits_total", typ: "counter",
			help: "Blocking-set store hits.", value: float64(es.BlockingHits)},
		{name: "uopsd_engine_blocking_misses_total", typ: "counter",
			help: "Blocking-set store misses.", value: float64(es.BlockingMisses)},
		{name: "uopsd_engine_variant_hits_total", typ: "counter",
			help: "Per-variant records served from the store.", value: float64(es.VariantHits)},
		{name: "uopsd_engine_variants_measured_total", typ: "counter",
			help: "Instruction variants actually measured.", value: float64(es.VariantsMeasured)},
		{name: "uopsd_engine_store_save_errors_total", typ: "counter",
			help: "Failed persistent-store writes.", value: float64(es.SaveErrors)},
		{name: "uopsd_engine_pool_forked_total", typ: "counter",
			help: "Worker stacks built fresh by the fork pools.", value: float64(es.PoolForked)},
		{name: "uopsd_engine_pool_reused_total", typ: "counter",
			help: "Worker stacks reused warm from the fork pools.", value: float64(es.PoolReused)},
		{name: "uopsd_engine_pool_seq_built_total", typ: "counter",
			help: "Measurement repeat sequences materialized by pooled harnesses.", value: float64(es.PoolSeqBuilt)},
		{name: "uopsd_engine_pool_seq_reused_total", typ: "counter",
			help: "Measurement repeat sequences reused from pooled harness buffers.", value: float64(es.PoolSeqReused)},
	}
	counts := s.jobs.counts()
	states := make([]string, 0, len(counts))
	for state := range counts {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		ms = append(ms, metric{name: "uopsd_jobs", typ: "gauge",
			help:   "Jobs in the job table by state.",
			labels: fmt.Sprintf(`{state=%q}`, state), value: float64(counts[state])})
	}
	return ms
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	prev := ""
	for _, m := range s.metrics() {
		if m.name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			prev = m.name
		}
		fmt.Fprintf(w, "%s%s %g\n", m.name, m.labels, m.value)
	}
}
