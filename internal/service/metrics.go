// GET /metrics: the service and engine counters in the Prometheus text
// exposition format. The numbers are the same ones /v1/stats serves as JSON —
// the counters already existed, this is only the format a scrape pipeline
// ingests without adapters.
package service

import (
	"fmt"
	"net/http"
	"sort"

	"uopsinfo/internal/measure"
	"uopsinfo/internal/store"
)

// metric is one exposition entry.
type metric struct {
	name   string
	help   string
	typ    string // "counter" or "gauge"
	labels string // rendered label set incl. braces, or ""
	value  float64
}

// metrics assembles the exposition set from the live counters.
func (s *Service) metrics() []metric {
	c := s.Counters()
	es := s.eng.Stats()
	ms := []metric{
		{name: "uopsd_http_requests_total", typ: "counter",
			help: "HTTP requests received.", value: float64(c.Requests)},
		{name: "uopsd_http_errors_total", typ: "counter",
			help: "HTTP requests answered with a 4xx or 5xx status.", value: float64(c.Errors)},
		{name: "uopsd_http_panics_total", typ: "counter",
			help: "Handler panics caught and contained.", value: float64(c.Panics)},
		{name: "uopsd_http_client_gone_total", typ: "counter",
			help: "Requests whose client went away before a response was written.", value: float64(c.ClientGone)},
		{name: "uopsd_http_rate_limited_total", typ: "counter",
			help: "Requests rejected with 429 by the rate limiter.", value: float64(c.RateLimited)},
		{name: "uopsd_engine_runs_total", typ: "counter",
			help: "Characterization runs executed (not coalesced onto another run).", value: float64(es.Runs)},
		{name: "uopsd_engine_coalesced_waiters_total", typ: "counter",
			help: "Requests that attached to an in-flight identical run.", value: float64(es.CoalescedWaiters)},
		{name: "uopsd_engine_result_hits_total", typ: "counter",
			help: "Whole-ISA result store hits.", value: float64(es.ResultHits)},
		{name: "uopsd_engine_result_misses_total", typ: "counter",
			help: "Whole-ISA result store misses.", value: float64(es.ResultMisses)},
		{name: "uopsd_engine_blocking_hits_total", typ: "counter",
			help: "Blocking-set store hits.", value: float64(es.BlockingHits)},
		{name: "uopsd_engine_blocking_misses_total", typ: "counter",
			help: "Blocking-set store misses.", value: float64(es.BlockingMisses)},
		{name: "uopsd_engine_variant_hits_total", typ: "counter",
			help: "Per-variant records served from the store.", value: float64(es.VariantHits)},
		{name: "uopsd_engine_variants_measured_total", typ: "counter",
			help: "Instruction variants actually measured.", value: float64(es.VariantsMeasured)},
		{name: "uopsd_engine_store_save_errors_total", typ: "counter",
			help: "Failed persistent-store writes.", value: float64(es.SaveErrors)},
		{name: "uopsd_engine_pool_forked_total", typ: "counter",
			help: "Worker stacks built fresh by the fork pools.", value: float64(es.PoolForked)},
		{name: "uopsd_engine_pool_reused_total", typ: "counter",
			help: "Worker stacks reused warm from the fork pools.", value: float64(es.PoolReused)},
		{name: "uopsd_engine_pool_seq_built_total", typ: "counter",
			help: "Measurement repeat sequences materialized by pooled harnesses.", value: float64(es.PoolSeqBuilt)},
		{name: "uopsd_engine_pool_seq_reused_total", typ: "counter",
			help: "Measurement repeat sequences reused from pooled harness buffers.", value: float64(es.PoolSeqReused)},
		{name: "uopsd_measure_batches_total", typ: "counter",
			help: "Fleet-worker measurement batches served by POST /v1/measure.", value: float64(c.MeasureBatches)},
		{name: "uopsd_measure_sequences_total", typ: "counter",
			help: "Sequences measured inside /v1/measure batches.", value: float64(c.MeasureSeqs)},
		{name: "uopsd_measure_sequence_errors_total", typ: "counter",
			help: "Sequences inside /v1/measure batches that failed.", value: float64(c.MeasureSeqErrors)},
		{name: "uopsd_measure_coalesced_total", typ: "counter",
			help: "Sequence measurements coalesced onto an in-flight identical run.", value: float64(c.MeasureCoalesced)},
	}
	if f := es.Fleet; f != nil {
		ms = append(ms,
			metric{name: "uopsd_fleet_batches_total", typ: "counter",
				help: "Measurement batches this process sent to its fleet (including retries and hedges).", value: float64(f.Batches)},
			metric{name: "uopsd_fleet_sequences_total", typ: "counter",
				help: "Sequences submitted to the fleet dispatcher.", value: float64(f.Sequences)},
			metric{name: "uopsd_fleet_deduped_total", typ: "counter",
				help: "Fleet measurements answered from a runner's last-result cache without network traffic.", value: float64(f.Deduped)},
			metric{name: "uopsd_fleet_retries_total", typ: "counter",
				help: "Sequences re-enqueued after a transient fleet batch failure.", value: float64(f.Retries)},
			metric{name: "uopsd_fleet_errors_total", typ: "counter",
				help: "Fleet batches that failed at the transport level.", value: float64(f.Errors)},
			metric{name: "uopsd_fleet_hedges_total", typ: "counter",
				help: "Straggler fleet batches duplicated to another worker.", value: float64(f.Hedges)},
			metric{name: "uopsd_fleet_hedge_wins_total", typ: "counter",
				help: "Sequences delivered after their batch was hedged.", value: float64(f.HedgeWins)})
		// One series per worker, grouped by metric name: the exposition
		// format wants every sample of a name under one HELP/TYPE block.
		perWorker := []struct {
			name, help, typ string
			value           func(w measure.FleetWorkerStats) float64
		}{
			{"uopsd_fleet_worker_healthy",
				"Whether the fleet worker is in rotation (1) or being probed after failures (0).", "gauge",
				func(w measure.FleetWorkerStats) float64 {
					if w.Healthy {
						return 1
					}
					return 0
				}},
			{"uopsd_fleet_worker_batches_total",
				"Measurement batches sent to the fleet worker.", "counter",
				func(w measure.FleetWorkerStats) float64 { return float64(w.Batches) }},
			{"uopsd_fleet_worker_sequences_total",
				"Sequences sent to the fleet worker.", "counter",
				func(w measure.FleetWorkerStats) float64 { return float64(w.Sequences) }},
			{"uopsd_fleet_worker_errors_total",
				"Transport-level batch failures against the fleet worker.", "counter",
				func(w measure.FleetWorkerStats) float64 { return float64(w.Errors) }},
			{"uopsd_fleet_worker_batch_latency_micros",
				"Mean batch latency against the fleet worker, microseconds.", "gauge",
				func(w measure.FleetWorkerStats) float64 { return float64(w.AvgBatchMicros) }},
		}
		for _, pm := range perWorker {
			for _, w := range f.Workers {
				ms = append(ms, metric{name: pm.name, help: pm.help, typ: pm.typ,
					labels: fmt.Sprintf(`{worker=%q}`, w.URL), value: pm.value(w)})
			}
		}
	}
	if st := es.Store; st != nil {
		degraded := 0.0
		if st.Mode != store.ModeOK {
			degraded = 1
		}
		ms = append(ms,
			metric{name: "uopsd_store_degraded", typ: "gauge",
				help: "Whether the persistent store is in a degraded mode (read-only or compute-only).", value: degraded},
			metric{name: "uopsd_store_degradations_total", typ: "counter",
				help: "Transitions of the persistent store into a degraded mode.", value: float64(st.Degradations)},
			metric{name: "uopsd_store_corrupt_total", typ: "counter",
				help: "Corrupt persistent-store entries detected (undecodable, torn, mis-named).", value: float64(st.Corrupt)},
			metric{name: "uopsd_store_quarantined_total", typ: "counter",
				help: "Corrupt entries renamed aside to *.corrupt.", value: float64(st.Quarantined)},
			metric{name: "uopsd_store_evicted_digests_total", typ: "counter",
				help: "Whole digests evicted to stay within the store budget.", value: float64(st.EvictedDigests)},
			metric{name: "uopsd_store_evicted_files_total", typ: "counter",
				help: "Files removed by budget eviction.", value: float64(st.EvictedFiles)},
			metric{name: "uopsd_store_evicted_bytes_total", typ: "counter",
				help: "Bytes reclaimed by budget eviction.", value: float64(st.EvictedBytes)},
			metric{name: "uopsd_store_compactions_total", typ: "counter",
				help: "Per-variant tier compactions into packed segment files.", value: float64(st.Compactions)},
			metric{name: "uopsd_store_compacted_files_total", typ: "counter",
				help: "Loose per-variant files packed into segments.", value: float64(st.CompactedFiles)},
			metric{name: "uopsd_store_swept_debris_total", typ: "counter",
				help: "Debris files collected by startup integrity sweeps.", value: float64(st.SweptDebris)},
			metric{name: "uopsd_store_saves_suppressed_total", typ: "counter",
				help: "Store writes suppressed while the store was write-degraded.", value: float64(st.SavesSuppressed)})
		// Bytes and files per storage tier, one labeled series each.
		perTier := []struct {
			tier  string
			stats store.TierStats
		}{
			{"blocking", st.Blocking},
			{"result", st.Result},
			{"variant", st.Variant},
			{"segment", st.Segment},
		}
		for _, pt := range perTier {
			ms = append(ms, metric{name: "uopsd_store_bytes", typ: "gauge",
				help:   "Persistent-store bytes per storage tier.",
				labels: fmt.Sprintf(`{tier=%q}`, pt.tier), value: float64(pt.stats.Bytes)})
		}
		for _, pt := range perTier {
			ms = append(ms, metric{name: "uopsd_store_files", typ: "gauge",
				help:   "Persistent-store files per storage tier.",
				labels: fmt.Sprintf(`{tier=%q}`, pt.tier), value: float64(pt.stats.Files)})
		}
	}
	counts := s.jobs.counts()
	states := make([]string, 0, len(counts))
	for state := range counts {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		ms = append(ms, metric{name: "uopsd_jobs", typ: "gauge",
			help:   "Jobs in the job table by state.",
			labels: fmt.Sprintf(`{state=%q}`, state), value: float64(counts[state])})
	}
	return ms
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	prev := ""
	for _, m := range s.metrics() {
		if m.name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			prev = m.name
		}
		fmt.Fprintf(w, "%s%s %g\n", m.name, m.labels, m.value)
	}
}
