// Async job API: POST /v1/jobs starts a characterization detached from the
// creating request, so slow cold runs (a full-ISA characterization takes
// minutes) can be polled, streamed and fetched instead of holding one HTTP
// connection open and invisible.
//
// A job is a thin handle on the engine's coalescing layer: it calls
// CharacterizeArchContext under the server-lifetime context with exactly the
// options a synchronous request would use, so an identical concurrent job or
// synchronous request shares the same single flight (Stats.Runs counts one
// run for all of them), and the job's result body is byte-identical to the
// synchronous response. Progress and streaming read the engine's flight
// observers (FlightProgress, FlightRecords) keyed by the job's run digest.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
)

// DefaultJobTTL is how long a finished job stays fetchable when Config.JobTTL
// is zero.
const DefaultJobTTL = 15 * time.Minute

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// job is one asynchronous characterization. Immutable fields are set at
// creation; the mutex guards the completion state.
type job struct {
	id      string
	arch    *uarch.Arch
	opts    engine.RunOptions
	dig     store.Digest
	format  string // creation-time format preference ("" = none)
	created time.Time
	done    chan struct{}

	mu       sync.Mutex
	state    string
	finished time.Time
	res      *core.ArchResult
	err      error
}

// snapshot returns the completion state under the lock.
func (j *job) snapshot() (state string, finished time.Time, res *core.ArchResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.finished, j.res, j.err
}

func (j *job) isDone() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// jobTable owns the jobs: ID allocation, listing, and TTL-based retention of
// finished jobs. Retention is swept lazily on every table access — a
// long-running server with no job traffic holds no timer, and tests inject
// their own clock.
type jobTable struct {
	ttl time.Duration
	now func() time.Time

	mu   sync.Mutex
	jobs map[string]*job
	wg   sync.WaitGroup
}

func newJobTable(ttl time.Duration) *jobTable {
	if ttl == 0 {
		ttl = DefaultJobTTL
	}
	return &jobTable{ttl: ttl, now: time.Now, jobs: make(map[string]*job)}
}

// newID allocates an unguessable job ID. The caller holds t.mu.
func (t *jobTable) newID() (string, error) {
	for i := 0; i < 10; i++ {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("service: allocating job ID: %w", err)
		}
		id := "j" + hex.EncodeToString(b[:])
		if _, taken := t.jobs[id]; !taken {
			return id, nil
		}
	}
	return "", errors.New("service: job ID space exhausted")
}

// sweep drops finished jobs past their TTL. The caller holds t.mu.
func (t *jobTable) sweep() {
	if t.ttl < 0 {
		return
	}
	cutoff := t.now().Add(-t.ttl)
	for id, j := range t.jobs {
		state, finished, _, _ := j.snapshot()
		if state != jobRunning && finished.Before(cutoff) {
			delete(t.jobs, id)
		}
	}
}

// add registers a new running job.
func (t *jobTable) add(arch *uarch.Arch, opts engine.RunOptions, dig store.Digest, format string) (*job, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweep()
	id, err := t.newID()
	if err != nil {
		return nil, err
	}
	j := &job{
		id: id, arch: arch, opts: opts, dig: dig, format: format,
		created: t.now(), done: make(chan struct{}), state: jobRunning,
	}
	t.jobs[id] = j
	return j, nil
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweep()
	j, ok := t.jobs[id]
	return j, ok
}

// list returns the jobs ordered oldest-first (ties broken by ID so the order
// is deterministic).
func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweep()
	jobs := make([]*job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if !jobs[a].created.Equal(jobs[b].created) {
			return jobs[a].created.Before(jobs[b].created)
		}
		return jobs[a].id < jobs[b].id
	})
	return jobs
}

// counts returns the number of jobs per state, for /metrics.
func (t *jobTable) counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweep()
	counts := make(map[string]int)
	for _, j := range t.jobs {
		state, _, _, _ := j.snapshot()
		counts[state]++
	}
	return counts
}

// DrainJobs blocks until every running job has finished (or ctx expires) —
// the shutdown path of cmd/uopsd: stop the listener, drain the jobs, cancel
// the engine's base context, drain the engine.
func (s *Service) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: draining jobs: %w", ctx.Err())
	}
}

// JobStatus is the job representation of the job endpoints.
type JobStatus struct {
	ID  string `json:"id"`
	Gen string `json:"gen"`
	// Query echoes the characterization options of the job.
	Only  []string `json:"only,omitempty"`
	Quick bool     `json:"quick,omitempty"`
	// State is "running", "done" or "failed".
	State    string     `json:"state"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Progress is the per-phase progress of the run serving this job. A
	// running job whose flight has not started (or that attached to a
	// store-warm run) reports phase "starting".
	Progress engine.RunProgress `json:"progress"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Result and Stream link to the job's sub-resources; Result is only set
	// once the job is done.
	Result string `json:"result,omitempty"`
	Stream string `json:"stream"`
}

// jobStatus assembles the response representation of a job.
func (s *Service) jobStatus(j *job) JobStatus {
	state, finished, res, jerr := j.snapshot()
	st := JobStatus{
		ID:      j.id,
		Gen:     j.arch.Name(),
		Only:    j.opts.Only,
		Quick:   j.opts.SkipLatency,
		State:   state,
		Created: j.created,
		Stream:  "/v1/jobs/" + j.id + "/stream",
	}
	switch state {
	case jobRunning:
		if p, ok := s.eng.FlightProgress(j.dig); ok {
			st.Progress = p
		} else {
			st.Progress = engine.RunProgress{Phase: "starting"}
		}
	case jobDone:
		st.Finished = &finished
		st.Progress = engine.RunProgress{
			Phase:         "done",
			VariantsDone:  len(res.Results),
			VariantsTotal: len(res.Results),
		}
		st.Result = "/v1/jobs/" + j.id + "/result"
	case jobFailed:
		st.Finished = &finished
		st.Progress = engine.RunProgress{Phase: "done"}
		st.Error = jerr.Error()
	}
	return st
}

// handleJobCreate starts a job: the same query surface as /v1/arch/{gen}
// (?only, ?quick, ?format) plus ?gen naming the generation. The
// characterization runs under the server-lifetime context; the response is
// 202 with the job status and a Location header.
func (s *Service) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	genName := r.URL.Query().Get("gen")
	if genName == "" {
		s.fail(w, http.StatusBadRequest, errors.New("service: job creation requires ?gen=GENERATION"))
		return
	}
	arch, err := uarch.ByName(genName)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", formatJSON, formatXML:
	default:
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("service: unknown format %q (supported: json, xml)", format))
		return
	}
	opts, err := runOptionsFromRequest(arch, r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	dig, err := s.eng.RunDigest(arch.Gen(), opts)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	j, err := s.jobs.add(arch, opts, dig, format)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.jobs.wg.Add(1)
	go func() {
		defer s.jobs.wg.Done()
		// A panic below must still complete the job: a job stuck "running"
		// forever would also wedge DrainJobs at shutdown.
		completed := false
		defer func() {
			if p := recover(); p != nil || !completed {
				s.count(func(c *Counters) { c.Panics++ })
				s.logf("service: panic running job %s: %v", j.id, p)
				s.finishJob(j, nil, fmt.Errorf("service: job aborted by a panic: %v", p))
			}
		}()
		res, err := s.eng.CharacterizeArchContext(s.baseCtx, j.arch.Gen(), j.opts)
		completed = true
		s.finishJob(j, res, err)
	}()
	s.logf("service: job %s: characterize %s only=%d quick=%v", j.id, arch.Name(), len(opts.Only), opts.SkipLatency)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	data, err := json.MarshalIndent(s.jobStatus(j), "", "  ")
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

// finishJob publishes a job's completion exactly once.
func (s *Service) finishJob(j *job, res *core.ArchResult, err error) {
	j.mu.Lock()
	if j.state != jobRunning {
		j.mu.Unlock()
		return
	}
	j.res, j.err = res, err
	if err != nil {
		j.state = jobFailed
		s.logf("service: job %s: failed: %v", j.id, err)
	} else {
		j.state = jobDone
	}
	j.finished = s.jobs.now()
	j.mu.Unlock()
	close(j.done)
}

func (s *Service) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	statuses := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		statuses[i] = s.jobStatus(j)
	}
	s.writeJSON(w, struct {
		Jobs []JobStatus `json:"jobs"`
	}{statuses})
}

// jobFromRequest resolves the {id} path segment, answering 404 for unknown
// (or expired) jobs.
func (s *Service) jobFromRequest(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("service: no job %q (finished jobs expire after their TTL)", id))
		return nil, false
	}
	return j, true
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromRequest(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, s.jobStatus(j))
}

// handleJobResult serves the finished job's result document — rendered
// through exactly the synchronous response path, so the body (and the ETag)
// is byte-identical to GET /v1/arch/{gen} with the same query. The format is
// the request's when specified, the job's creation-time preference
// otherwise. A still-running job is 409; a failed one surfaces its error as
// 500.
func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromRequest(w, r)
	if !ok {
		return
	}
	format, err := requestFormat(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("format") == "" && j.format != "" {
		format = j.format
	}
	state, _, res, jerr := j.snapshot()
	switch state {
	case jobRunning:
		s.fail(w, http.StatusConflict, fmt.Errorf("service: job %s is still running", j.id))
	case jobFailed:
		s.fail(w, http.StatusInternalServerError, jerr)
	default:
		tag := etag(j.dig, format)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, tag) {
			w.Header().Set("ETag", tag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		s.writeResult(w, j.arch, res, format, tag)
	}
}

// jobEvent is one line of the NDJSON job stream.
type jobEvent struct {
	Event string `json:"event"` // "progress", "variant", "done", "error"
	Job   string `json:"job"`
	// Progress is set on "progress" events.
	Progress *engine.RunProgress `json:"progress,omitempty"`
	// Name and Record are set on "variant" events; the record is the
	// engine's per-variant measurement.
	Name   string            `json:"name,omitempty"`
	Record *core.InstrResult `json:"record,omitempty"`
	// State, Result and Error are set on the final "done"/"error" event.
	State  string `json:"state,omitempty"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// handleJobStream streams a job as newline-delimited JSON: a progress event,
// then one variant event per measured record as it completes, then the
// remaining records of the final result (variants served from the store are
// never individually measured, so they only appear here), then a final
// done/error event. Connecting to a finished job replays the full result.
// The stream rides on the engine's flight observers, so it works no matter
// which request — this job, an identical one, or a synchronous GET — leads
// the coalesced run.
func (s *Service) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromRequest(w, r)
	if !ok {
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev jobEvent) bool {
		ev.Job = j.id
		if err := enc.Encode(ev); err != nil {
			return false
		}
		rc.Flush()
		return true
	}

	sent := make(map[string]bool)
	from := 0
	if p, ok := s.eng.FlightProgress(j.dig); ok {
		if !emit(jobEvent{Event: "progress", Progress: &p}) {
			return
		}
	}
	for !j.isDone() {
		recs, changed, ok := s.eng.FlightRecords(j.dig, from)
		for _, rec := range recs {
			sent[rec.Name] = true
			from++
			if !emit(jobEvent{Event: "variant", Name: rec.Name, Record: rec.Record}) {
				return
			}
		}
		if !ok {
			// The flight has not started (or already finished and left the
			// table) while the job still runs: wait for completion, with a
			// re-probe tick in case a flight appears.
			select {
			case <-j.done:
			case <-r.Context().Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		select {
		case <-changed:
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}

	_, _, res, jerr := j.snapshot()
	if jerr != nil {
		emit(jobEvent{Event: "error", State: jobFailed, Error: jerr.Error()})
		return
	}
	// Replay what the live flight did not deliver: store-served variants,
	// and everything when the job finished before this stream connected.
	for _, name := range res.Names() {
		if sent[name] {
			continue
		}
		if !emit(jobEvent{Event: "variant", Name: name, Record: res.Results[name]}) {
			return
		}
	}
	emit(jobEvent{Event: "done", State: jobDone, Result: "/v1/jobs/" + j.id + "/result"})
}
