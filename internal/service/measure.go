// POST /v1/measure: the batch measurement endpoint of a fleet worker. The
// body is a list of encoded instruction sequences plus a generation; the
// response carries one raw simulator Counters per sequence. Execution rides
// the engine's pooled measurement stacks (one warm harness per concurrent
// batch, checked out for the duration of the request), identical sequences
// measured concurrently are coalesced singleflight-style on their content
// digest, and the endpoint sits behind the service's rate limiter like every
// other non-probe endpoint. Per-sequence failures (unknown variant, operand
// mismatch, simulator rejection) are deterministic properties of the request
// and are reported per sequence inside a 200 response, so a fleet client
// never retries them; only a malformed body or unknown generation is a 400.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/measure/remote"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// maxMeasureBatch bounds the sequences accepted in one batch; clients are
// expected to stay far below it.
const maxMeasureBatch = 1024

// maxMeasureBody bounds the request body (32 MiB — a full batch of long
// repeat sequences is far smaller thanks to copy deduplication).
const maxMeasureBody = 32 << 20

// seqFlight is one in-progress sequence measurement, shared by every
// concurrent identical request. counters and err are written before done is
// closed and read only after.
type seqFlight struct {
	done     chan struct{}
	counters pipesim.Counters
	err      error
}

// dividerValueSetter is implemented by execution substrates that can switch
// the operand-value regime for divider-based instructions.
type dividerValueSetter interface {
	SetDividerValues(pipesim.DividerValues)
}

// ServingInfo identifies the backend a worker's engine actually serves from
// — as opposed to the registry listing, which names every compiled-in
// backend. The fleet handshake consumes it: Fingerprint is the exact
// name@version string folded into the worker's cache keys, and
// MeasureDigest hashes the worker's measurement-protocol configuration, so
// a client can refuse to treat differently-configured workers as one fleet.
type ServingInfo struct {
	Name          string         `json:"name"`
	Version       string         `json:"version"`
	Fingerprint   string         `json:"fingerprint"`
	Measure       measure.Config `json:"measure"`
	MeasureDigest string         `json:"measureDigest"`
}

// serving assembles the engine's serving-backend identity.
func (s *Service) serving() ServingInfo {
	b := s.eng.Backend()
	mcfg := s.eng.MeasureConfig()
	return ServingInfo{
		Name:          b.Name(),
		Version:       b.Version(),
		Fingerprint:   b.Name() + "@" + b.Version(),
		Measure:       mcfg,
		MeasureDigest: measureDigest(mcfg),
	}
}

// measureDigest hashes the measurement configuration into a short stable
// token for the handshake comparison.
func measureDigest(cfg measure.Config) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// servingFingerprint is the identity echoed in every /v1/measure response so
// clients detect a worker whose backend drifted since their handshake.
func (s *Service) servingFingerprint() string {
	info := s.serving()
	fp, err := remote.ServingFingerprint(info.Fingerprint, info.MeasureDigest)
	if err != nil {
		return info.Fingerprint
	}
	return fp
}

func (s *Service) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req remote.MeasureRequest
	body := http.MaxBytesReader(w, r.Body, maxMeasureBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("service: decoding measure request: %w", err))
		return
	}
	arch, err := uarch.ByName(req.Gen)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Seqs) == 0 || len(req.Seqs) > maxMeasureBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("service: measure batch must hold 1..%d sequences, got %d", maxMeasureBatch, len(req.Seqs)))
		return
	}
	pool, err := s.eng.SequencePool(arch.Gen())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	h, _, err := pool.Get()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	defer pool.Put(h)
	runner := h.Runner()
	set := arch.InstrSet()

	resp := remote.MeasureResponse{
		Backend:     s.eng.Backend().Name(),
		Version:     s.eng.Backend().Version(),
		Fingerprint: s.servingFingerprint(),
		Counters:    make([]remote.Counters, len(req.Seqs)),
	}
	genPrefix := []byte(arch.Name() + "\x00")
	seqErrs := 0
	var errs []string
	for i, raw := range req.Seqs {
		c, err := s.measureSeq(set, runner, genPrefix, raw)
		if err != nil {
			if errs == nil {
				errs = make([]string, len(req.Seqs))
			}
			errs[i] = err.Error()
			seqErrs++
			continue
		}
		resp.Counters[i] = remote.EncodeCounters(c)
	}
	resp.Errs = errs
	s.count(func(c *Counters) {
		c.MeasureBatches++
		c.MeasureSeqs += len(req.Seqs)
		c.MeasureSeqErrors += seqErrs
	})
	// Compact encoding, not writeJSON's indented form: measurement batches
	// are fleet-internal traffic where body size is latency.
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("service: encoding measure response: %v", err)
	}
}

// measureSeq decodes and runs one sequence, coalescing concurrent identical
// measurements (same generation, same encoded sequence and divider regime)
// onto one execution. The counters a follower receives are shared with the
// leader's; neither side mutates them (the response encodes them verbatim).
func (s *Service) measureSeq(set *isa.Set, runner measure.Runner, genPrefix, raw []byte) (pipesim.Counters, error) {
	key := sha256.Sum256(append(genPrefix, raw...))
	s.seqMu.Lock()
	if fl, ok := s.seqFlights[key]; ok {
		s.seqMu.Unlock()
		s.count(func(c *Counters) { c.MeasureCoalesced++ })
		<-fl.done
		return fl.counters, fl.err
	}
	fl := &seqFlight{done: make(chan struct{})}
	s.seqFlights[key] = fl
	s.seqMu.Unlock()
	defer func() {
		s.seqMu.Lock()
		delete(s.seqFlights, key)
		s.seqMu.Unlock()
		close(fl.done)
	}()

	var ws remote.Seq
	if err := json.Unmarshal(raw, &ws); err != nil {
		fl.err = fmt.Errorf("decoding sequence: %w", err)
		return pipesim.Counters{}, fl.err
	}
	seq, err := remote.DecodeSeq(set, ws)
	if err != nil {
		fl.err = err
		return pipesim.Counters{}, fl.err
	}
	if setter, ok := runner.(dividerValueSetter); ok {
		setter.SetDividerValues(pipesim.DividerValues(ws.Div))
	}
	fl.counters, fl.err = runner.Run(seq)
	return fl.counters, fl.err
}
