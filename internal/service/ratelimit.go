// Token-bucket rate limiting: a production service fronting heavy traffic
// needs a way to shed load before the engine does, and 429 + Retry-After is
// the contract well-behaved clients understand. The limiter is off unless
// configured (Config.RateLimit), so tests and existing deployments are
// untouched.
package service

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a classic token bucket: tokens refill continuously at rate
// per second up to burst, each admitted request spends one. It is global per
// service (not per client): the resource it protects — the measurement
// engine and the store — is shared, so admission is too.
type rateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	l := &rateLimiter{rate: rate, burst: float64(burst), now: time.Now}
	l.tokens = l.burst
	l.last = l.now()
	return l
}

// allow spends one token if available. When the bucket is empty it reports
// how long until the next token refills, for the Retry-After header.
func (l *rateLimiter) allow() (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	wait := time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// retryAfterSeconds rounds a wait up to whole seconds (minimum 1): a
// Retry-After of 0 would invite an immediate, equally doomed retry.
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
