package service

// Service-level checks of the store lifecycle surface: a degraded store is
// reported by /healthz (without failing the liveness probe — the service
// still serves) and the uopsd_store_* metrics flow through /metrics.

import (
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/store"
	"uopsinfo/internal/store/errfs"
)

// degradedStore returns a store driven to read-only by a full disk.
func degradedStore(t *testing.T) *store.Store {
	t.Helper()
	fsys := errfs.New()
	st, err := store.OpenOptions(t.TempDir(), store.Options{FS: fsys, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	fsys.Inject(errfs.Fault{Op: errfs.OpWrite, Err: syscall.ENOSPC, Sticky: true})
	if err := st.SaveBlocking(store.Key{Arch: "Skylake", Scope: "blocking"}, &store.BlockingRecord{}); err == nil {
		t.Fatal("save on the injected full disk succeeded")
	}
	if st.Mode() != store.ModeReadOnly {
		t.Fatalf("store mode %q after ENOSPC, want %q", st.Mode(), store.ModeReadOnly)
	}
	return st
}

// TestHealthzReportsDegradedStore pins the operator contract: the liveness
// probe keeps answering 200 (the service serves, re-measuring instead of
// caching) but says "degraded" and names the store mode.
func TestHealthzReportsDegradedStore(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{Store: degradedStore(t)})
	code, body := get(t, svc, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200 (a degraded store is not a liveness failure)", code)
	}
	var resp map[string]string
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if resp["status"] != "degraded" || resp["store"] != store.ModeReadOnly {
		t.Errorf("healthz = %v, want status degraded with store %q", resp, store.ModeReadOnly)
	}
}

// TestMetricsExposeStoreLifecycle checks the store counters reach the
// Prometheus exposition, including the per-tier gauges.
func TestMetricsExposeStoreLifecycle(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{Store: degradedStore(t)})
	code, body := get(t, svc, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", code)
	}
	text := string(body)
	for _, want := range []string{
		"uopsd_store_degraded 1",
		"uopsd_store_degradations_total 1",
		"uopsd_store_corrupt_total 0",
		"uopsd_store_quarantined_total 0",
		"uopsd_store_evicted_bytes_total 0",
		"uopsd_store_compactions_total 0",
		"uopsd_store_saves_suppressed_total",
		`uopsd_store_bytes{tier="variant"}`,
		`uopsd_store_files{tier="blocking"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

// TestMetricsWithoutStore pins that a store-less engine (no cache directory
// configured) serves /metrics without store series rather than failing.
func TestMetricsWithoutStore(t *testing.T) {
	svc, _ := newTestService(t, engine.Config{})
	code, body := get(t, svc, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", code)
	}
	if strings.Contains(string(body), "uopsd_store_") {
		t.Error("store-less service exposes store metrics")
	}
}
