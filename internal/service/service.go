// Package service is the HTTP front end of the characterization engine: a
// long-running server ("uopsd") that owns one engine.Engine (and through it
// the persistent store) and serves characterization results to many
// concurrent callers.
//
// Endpoints (all GET):
//
//	/healthz                       liveness probe
//	/v1/backends                   the measurement-backend registry
//	/v1/stats                      engine cache/coalescing counters + service counters
//	/v1/arch/{gen}                 full characterization of one generation
//	/v1/arch/{gen}/variant/{name}  characterization of a single variant
//
// The two characterization endpoints accept ?format=xml (default JSON; an
// Accept header naming xml also selects it), and /v1/arch/{gen} additionally
// accepts ?only=NAME,NAME and ?quick=1 (skip the per-operand-pair latency
// measurements). Generation names are matched case-insensitively with
// separators ignored, so /v1/arch/sandy-bridge works.
//
// Concurrent identical queries are coalesced by the engine singleflight-style
// on the store digest of the request: N simultaneous cold requests for one
// generation trigger exactly one measurement run, every waiter receives the
// same result (rendered to byte-identical bodies), and the run lands in the
// store so later requests are warm hits. /v1/stats exposes the run/waiter
// counters.
//
// Errors on request-derived input degrade to HTTP statuses, never crash the
// process: an unknown generation is 400, an unknown variant 404, and a
// handler panic is caught, counted and answered with 500.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

// Config configures a Service.
type Config struct {
	// Engine is the characterization engine the service serves from.
	// Required; the engine's store configuration decides whether results
	// persist across requests and restarts.
	Engine *engine.Engine
	// Log, if non-nil, receives request-failure and panic diagnostics.
	Log func(format string, args ...interface{})
}

// Counters are the service-level request counters, exposed (with the engine
// stats) by /v1/stats.
type Counters struct {
	// Requests counts every HTTP request received.
	Requests int `json:"requests"`
	// Errors counts requests answered with a 4xx or 5xx status.
	Errors int `json:"errors"`
	// Panics counts handler panics that were caught and converted to 500s.
	// Anything non-zero here is a bug worth a report.
	Panics int `json:"panics"`
}

// Service is the HTTP handler of the characterization service. It is safe
// for concurrent use by any number of requests.
type Service struct {
	eng *engine.Engine
	log func(format string, args ...interface{})
	mux *http.ServeMux

	mu       sync.Mutex
	counters Counters

	// iacaMu guards iacaCache, the per-generation IACA analyzers. Building
	// an analyzer walks the generation's full instruction set, so it happens
	// once per generation, not once per request; after New an analyzer is
	// read-only (the service only uses Entry) and safe to share.
	iacaMu    sync.Mutex
	iacaCache map[uarch.Generation]*iacaEntry
}

// iacaEntry builds one generation's analyzers exactly once, like the
// engine's charEntry.
type iacaEntry struct {
	once      sync.Once
	analyzers []*iaca.Analyzer
	err       error
}

// New returns a service over the configured engine.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil {
		return nil, errors.New("service: Config.Engine is required")
	}
	s := &Service{
		eng:       cfg.Engine,
		log:       cfg.Log,
		mux:       http.NewServeMux(),
		iacaCache: make(map[uarch.Generation]*iacaEntry),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/arch/{gen}", s.handleArch)
	s.mux.HandleFunc("GET /v1/arch/{gen}/variant/{name}", s.handleVariant)
	return s, nil
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.log != nil {
		s.log(format, args...)
	}
}

// Counters returns a snapshot of the service-level request counters.
func (s *Service) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

func (s *Service) count(f func(*Counters)) {
	s.mu.Lock()
	f(&s.counters)
	s.mu.Unlock()
}

// statusWriter records the status code a handler wrote, for the error
// counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// ServeHTTP dispatches to the endpoint handlers, counting requests and
// errors. A panicking handler — which would otherwise take down every
// connection of the server — is caught, counted, logged and converted into a
// 500 response.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.count(func(c *Counters) { c.Requests++ })
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if p := recover(); p != nil {
			s.count(func(c *Counters) { c.Panics++ })
			s.logf("service: panic serving %s %s: %v", r.Method, r.URL.Path, p)
			if sw.status == 0 {
				http.Error(sw, "internal error", http.StatusInternalServerError)
			}
		}
		if sw.status >= 400 {
			s.count(func(c *Counters) { c.Errors++ })
		}
	}()
	s.mux.ServeHTTP(sw, r)
}

// fail answers a request with a JSON error body.
func (s *Service) fail(w http.ResponseWriter, status int, err error) {
	s.logf("service: %d: %v", status, err)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON answers with an indented JSON body. Encoding is deterministic
// (struct-order fields, sorted results), so coalesced waiters rendering the
// same result produce byte-identical bodies.
func (s *Service) writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("service: encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(data, '\n'))
}

// wantXML reports whether the request asks for the XML rendering, via
// ?format=xml or an Accept header whose first recognized media type is an
// XML type. JSON is the default: a browser's Accept header (text/html
// first, application/xml further down) or a catch-all must not flip the
// format, so the header is matched on whole media-type tokens in listed
// order, not by substring.
func wantXML(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "xml":
		return true
	case "json":
		return false
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.TrimSpace(mediaType) {
		case "application/xml", "text/xml":
			return true
		case "application/json", "text/html", "*/*":
			return false
		}
	}
	return false
}

// writeDoc renders a result document in the requested format. The XML
// rendering is exactly the results-file format of cmd/uopsinfo.
func (s *Service) writeDoc(w http.ResponseWriter, r *http.Request, doc *xmlout.Document) {
	if !wantXML(r) {
		s.writeJSON(w, doc)
		return
	}
	// Render to a buffer first so an encoding error can still become a 500,
	// and emit the buffer verbatim: the body must be byte-identical to the
	// results file cmd/uopsinfo writes for the same result.
	var buf strings.Builder
	if err := xmlout.Write(&buf, doc); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, buf.String())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// BackendInfo is one entry of the /v1/backends response.
type BackendInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Default bool   `json:"default"`
}

func (s *Service) handleBackends(w http.ResponseWriter, r *http.Request) {
	names := measure.Names()
	infos := make([]BackendInfo, 0, len(names))
	for _, name := range names {
		b, ok := measure.Lookup(name)
		if !ok {
			continue
		}
		infos = append(infos, BackendInfo{Name: name, Version: b.Version(), Default: name == measure.DefaultBackend})
	}
	s.writeJSON(w, struct {
		Backends []BackendInfo `json:"backends"`
	}{infos})
}

// StatsResponse is the /v1/stats response: what the engine is serving from
// (backend), how its caches and the request coalescing behave (engine), and
// the service-level request counters (service).
type StatsResponse struct {
	Backend BackendInfo  `json:"backend"`
	Engine  engine.Stats `json:"engine"`
	Service Counters     `json:"service"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	b := s.eng.Backend()
	s.writeJSON(w, StatsResponse{
		Backend: BackendInfo{Name: b.Name(), Version: b.Version(), Default: b.Name() == measure.DefaultBackend},
		Engine:  s.eng.Stats(),
		Service: s.Counters(),
	})
}

// archFromRequest resolves the {gen} path segment, answering 400 for an
// unknown generation name (the error body lists the known ones).
func (s *Service) archFromRequest(w http.ResponseWriter, r *http.Request) (*uarch.Arch, bool) {
	arch, err := uarch.ByName(r.PathValue("gen"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return nil, false
	}
	return arch, true
}

// characterize runs one request through the engine (coalescing with any
// identical in-flight request) and handles the error surface: a cancelled
// request writes nothing (the client is gone), anything else is a 500. The
// response carries the per-version IACA entries exactly like the CLI's
// results file, so the XML rendering is byte-identical to what cmd/uopsinfo
// writes for the same query.
func (s *Service) characterize(w http.ResponseWriter, r *http.Request, arch *uarch.Arch, opts engine.RunOptions) {
	res, err := s.eng.CharacterizeArchContext(r.Context(), arch.Gen(), opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.logf("service: %s %s: client went away: %v", r.Method, r.URL.Path, err)
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	analyzers, err := s.analyzers(arch)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.writeDoc(w, r, xmlout.Single(xmlout.FromArchResult(res, analyzers)))
}

// analyzers returns the (lazily built, cached) IACA analyzers for a
// generation.
func (s *Service) analyzers(arch *uarch.Arch) ([]*iaca.Analyzer, error) {
	s.iacaMu.Lock()
	ent, ok := s.iacaCache[arch.Gen()]
	if !ok {
		ent = &iacaEntry{}
		s.iacaCache[arch.Gen()] = ent
	}
	s.iacaMu.Unlock()
	ent.once.Do(func() {
		for _, v := range iaca.SupportedVersions(arch.Gen()) {
			a, err := iaca.New(v, arch)
			if err != nil {
				ent.analyzers, ent.err = nil, err
				return
			}
			ent.analyzers = append(ent.analyzers, a)
		}
	})
	return ent.analyzers, ent.err
}

func (s *Service) handleArch(w http.ResponseWriter, r *http.Request) {
	arch, ok := s.archFromRequest(w, r)
	if !ok {
		return
	}
	opts := engine.RunOptions{}
	if q := r.URL.Query().Get("quick"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("service: quick=%q is not a boolean", q))
			return
		}
		opts.SkipLatency = v
	}
	if only := r.URL.Query().Get("only"); only != "" {
		set := arch.InstrSet()
		seen := make(map[string]bool)
		for _, name := range strings.Split(only, ",") {
			// Resolving here keeps the engine's error surface out of the
			// status mapping: a mistyped ?only name is the caller's fault.
			in := set.Lookup(name)
			if in == nil {
				s.fail(w, http.StatusBadRequest,
					fmt.Errorf("service: %s has no instruction variant %q", arch.Name(), name))
				return
			}
			if seen[in.Name] {
				continue
			}
			seen[in.Name] = true
			opts.Only = append(opts.Only, in.Name)
		}
		// Canonical (sorted, deduplicated) selections make equivalent
		// requests identical to the engine: ?only=A,B and ?only=B,A share
		// one coalescing flight and one store entry, and a duplicated name
		// is not measured twice. The response is order-independent anyway
		// (results are rendered in sorted variant order).
		sort.Strings(opts.Only)
	}
	s.characterize(w, r, arch, opts)
}

func (s *Service) handleVariant(w http.ResponseWriter, r *http.Request) {
	arch, ok := s.archFromRequest(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	in := arch.InstrSet().Lookup(name)
	if in == nil {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("service: %s has no instruction variant %q", arch.Name(), name))
		return
	}
	s.characterize(w, r, arch, engine.RunOptions{Only: []string{in.Name}})
}
