// Package service is the HTTP front end of the characterization engine: a
// long-running server ("uopsd") that owns one engine.Engine (and through it
// the persistent store) and serves characterization results to many
// concurrent callers.
//
// Endpoints:
//
//	GET  /healthz                       liveness probe
//	GET  /metrics                       Prometheus-style counter exposition
//	GET  /v1/backends                   the measurement-backend registry
//	GET  /v1/stats                      engine cache/coalescing counters + service counters
//	GET  /v1/arch/{gen}                 full characterization of one generation
//	GET  /v1/arch/{gen}/variant/{name}  characterization of a single variant
//	POST /v1/jobs                       start an asynchronous characterization job
//	GET  /v1/jobs                       list jobs
//	GET  /v1/jobs/{id}                  job status with per-phase progress
//	GET  /v1/jobs/{id}/stream           NDJSON stream of variant records as they complete
//	GET  /v1/jobs/{id}/result           the finished job's result document
//
// The characterization endpoints accept ?format=xml or ?format=json (default
// JSON; an Accept header naming xml also selects it; any other ?format value
// is a 400), and /v1/arch/{gen} additionally accepts ?only=NAME,NAME and
// ?quick=1 (skip the per-operand-pair latency measurements). POST /v1/jobs
// accepts the same query surface plus ?gen=NAME and runs the characterization
// detached from the request, so slow cold runs can be polled and streamed
// instead of holding a connection open. Generation names are matched
// case-insensitively with separators ignored, so /v1/arch/sandy-bridge works.
//
// Concurrent identical queries — synchronous requests and jobs alike — are
// coalesced by the engine singleflight-style on the store digest of the
// request: N simultaneous cold requests for one generation trigger exactly
// one measurement run, every waiter receives the same result (rendered to
// byte-identical bodies), and the run lands in the store so later requests
// are warm hits. The same digest doubles as the ETag of result responses, so
// a warm conditional GET (If-None-Match) answers 304 without touching the
// engine. /v1/stats exposes the run/waiter counters.
//
// Errors on request-derived input degrade to HTTP statuses, never crash the
// process: an unknown generation is 400, an unknown variant 404, and a
// handler panic is caught, counted and answered with 500 — unless the
// response body was already underway, in which case the connection is torn
// down (http.ErrAbortHandler) rather than delivering a truncated 2xx.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"uopsinfo/internal/core"
	"uopsinfo/internal/engine"
	"uopsinfo/internal/iaca"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/store"
	"uopsinfo/internal/uarch"
	"uopsinfo/internal/xmlout"
)

// StatusClientGone is the status recorded for requests whose client went away
// before a response could be written (nginx's 499 convention). It is
// accounting, not wire protocol: by the time it is recorded nobody is reading
// the response, but the status writer picks it up so cancelled requests are
// counted as Counters.ClientGone instead of masquerading as successes.
const StatusClientGone = 499

// Config configures a Service.
type Config struct {
	// Engine is the characterization engine the service serves from.
	// Required; the engine's store configuration decides whether results
	// persist across requests and restarts.
	Engine *engine.Engine
	// Log, if non-nil, receives request-failure and panic diagnostics.
	Log func(format string, args ...interface{})
	// BaseContext, if non-nil, bounds the lifetime of asynchronous jobs: a
	// job's characterization runs under this context, not under the creating
	// request's, so it survives the POST returning but stops when the server
	// shuts down. Nil means context.Background(). It should be the same
	// context as the engine's Config.BaseContext.
	BaseContext context.Context
	// JobTTL is how long a finished job (and its result) stays listed and
	// fetchable before the job table drops it. Zero selects DefaultJobTTL;
	// negative keeps finished jobs forever.
	JobTTL time.Duration
	// RateLimit, if positive, enables the token-bucket rate limiter:
	// requests per second sustained across all endpoints except /healthz and
	// /metrics (probes and scrapes must keep working while the service
	// sheds load). Requests beyond the budget are answered 429 with a
	// Retry-After header. Zero or negative disables limiting.
	RateLimit float64
	// RateBurst is the bucket depth of the rate limiter: how many requests
	// may arrive back-to-back before the sustained rate applies. <= 0
	// selects max(1, ceil(RateLimit)).
	RateBurst int
}

// Counters are the service-level request counters, exposed (with the engine
// stats) by /v1/stats and /metrics.
type Counters struct {
	// Requests counts every HTTP request received.
	Requests int `json:"requests"`
	// Errors counts requests answered with a 4xx or 5xx status (including
	// rate-limited ones, but not client-cancelled ones).
	Errors int `json:"errors"`
	// Panics counts handler panics that were caught and converted to 500s
	// (or connection aborts, when the body was already underway). Anything
	// non-zero here is a bug worth a report.
	Panics int `json:"panics"`
	// ClientGone counts requests whose client went away (cancelled the
	// request, closed the connection) before a response was written. They
	// are neither successes nor server errors; without this counter they
	// were invisible.
	ClientGone int `json:"clientGone"`
	// RateLimited counts requests rejected with 429 by the rate limiter.
	RateLimited int `json:"rateLimited"`
	// MeasureBatches and MeasureSeqs count the fleet-worker measurement
	// batches (POST /v1/measure requests) served and the sequences inside
	// them; MeasureSeqErrors counts the sequences among those that failed
	// (reported per sequence inside a 200 response).
	MeasureBatches   int `json:"measureBatches"`
	MeasureSeqs      int `json:"measureSeqs"`
	MeasureSeqErrors int `json:"measureSeqErrors"`
	// MeasureCoalesced counts sequence measurements answered by joining an
	// in-flight identical measurement instead of running their own.
	MeasureCoalesced int `json:"measureCoalesced"`
}

// Service is the HTTP handler of the characterization service. It is safe
// for concurrent use by any number of requests.
type Service struct {
	eng     *engine.Engine
	log     func(format string, args ...interface{})
	mux     *http.ServeMux
	baseCtx context.Context
	jobs    *jobTable
	limiter *rateLimiter

	mu       sync.Mutex
	counters Counters

	// seqMu guards seqFlights, the in-flight sequence measurements of the
	// /v1/measure endpoint, keyed by content digest (generation + encoded
	// sequence) so concurrent identical measurements coalesce onto one run.
	seqMu      sync.Mutex
	seqFlights map[[32]byte]*seqFlight

	// iacaMu guards iacaCache, the per-generation IACA analyzers. Building
	// an analyzer walks the generation's full instruction set, so it happens
	// once per generation, not once per request; after New an analyzer is
	// read-only (the service only uses Entry) and safe to share.
	iacaMu    sync.Mutex
	iacaCache map[uarch.Generation]*iacaEntry
}

// iacaEntry builds one generation's analyzers exactly once, like the
// engine's charEntry.
type iacaEntry struct {
	once      sync.Once
	analyzers []*iaca.Analyzer
	err       error
}

// New returns a service over the configured engine.
func New(cfg Config) (*Service, error) {
	if cfg.Engine == nil {
		return nil, errors.New("service: Config.Engine is required")
	}
	baseCtx := cfg.BaseContext
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	s := &Service{
		eng:        cfg.Engine,
		log:        cfg.Log,
		mux:        http.NewServeMux(),
		baseCtx:    baseCtx,
		jobs:       newJobTable(cfg.JobTTL),
		seqFlights: make(map[[32]byte]*seqFlight),
		iacaCache:  make(map[uarch.Generation]*iacaEntry),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/backends", s.handleBackends)
	s.mux.HandleFunc("POST /v1/measure", s.handleMeasure)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/arch/{gen}", s.handleArch)
	s.mux.HandleFunc("GET /v1/arch/{gen}/variant/{name}", s.handleVariant)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	return s, nil
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.log != nil {
		s.log(format, args...)
	}
}

// Counters returns a snapshot of the service-level request counters.
func (s *Service) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

func (s *Service) count(f func(*Counters)) {
	s.mu.Lock()
	f(&s.counters)
	s.mu.Unlock()
}

// statusWriter records the status code a handler wrote, for the error,
// client-gone and panic accounting in ServeHTTP. StatusClientGone is only
// recorded, never forwarded: nobody is reading that response.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	if status == StatusClientGone {
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers can flush through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// rateExempt reports whether a path bypasses the rate limiter: liveness
// probes and metrics scrapes must keep answering exactly when the service is
// shedding load.
func rateExempt(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// ServeHTTP dispatches to the endpoint handlers, counting requests, errors
// and cancelled clients, and applying the rate limiter when one is
// configured. A panicking handler — which would otherwise take down every
// connection of the server — is caught, counted and logged; if no response
// was started it is converted into a 500, but once the status or body is on
// the wire a 500 can no longer be delivered, so the panic is re-raised as
// http.ErrAbortHandler and the connection is torn down instead of ending a
// 2xx response early and lying to the client.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.count(func(c *Counters) { c.Requests++ })
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if p := recover(); p != nil {
			abort := p == http.ErrAbortHandler || sw.status != 0
			s.count(func(c *Counters) {
				c.Panics++
				if abort {
					c.Errors++
				}
			})
			s.logf("service: panic serving %s %s: %v", r.Method, r.URL.Path, p)
			if abort {
				panic(http.ErrAbortHandler)
			}
			http.Error(sw, "internal error", http.StatusInternalServerError)
		}
		switch {
		case sw.status == StatusClientGone:
			s.count(func(c *Counters) { c.ClientGone++ })
		case sw.status >= 400:
			s.count(func(c *Counters) { c.Errors++ })
		}
	}()
	if s.limiter != nil && !rateExempt(r.URL.Path) {
		if ok, retry := s.limiter.allow(); !ok {
			s.count(func(c *Counters) { c.RateLimited++ })
			sw.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			s.fail(sw, http.StatusTooManyRequests, errors.New("service: rate limit exceeded"))
			return
		}
	}
	s.mux.ServeHTTP(sw, r)
}

// fail answers a request with a JSON error body.
func (s *Service) fail(w http.ResponseWriter, status int, err error) {
	s.logf("service: %d: %v", status, err)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON answers with an indented JSON body. Encoding is deterministic
// (struct-order fields, sorted results), so coalesced waiters rendering the
// same result produce byte-identical bodies.
func (s *Service) writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("service: encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(data, '\n'))
}

// Representation formats of result documents.
const (
	formatJSON = "json"
	formatXML  = "xml"
)

// requestFormat resolves the representation format of a request: an explicit
// ?format=json|xml wins, any other ?format value is the caller's error (it
// must be answered 400, not silently guessed over), and without the
// parameter the Accept header decides via wantXML.
func requestFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case formatJSON, formatXML:
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("service: unknown format %q (supported: json, xml)", f)
	}
	if wantXML(r) {
		return formatXML, nil
	}
	return formatJSON, nil
}

// wantXML reports whether the request's Accept header asks for the XML
// rendering: its first recognized media type is an XML type. JSON is the
// default: a browser's Accept header (text/html first, application/xml
// further down) or a catch-all must not flip the format, so the header is
// matched on whole media-type tokens in listed order, not by substring.
func wantXML(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.TrimSpace(mediaType) {
		case "application/xml", "text/xml":
			return true
		case "application/json", "text/html", "*/*":
			return false
		}
	}
	return false
}

// writeDoc renders a result document in the given format. The XML rendering
// is exactly the results-file format of cmd/uopsinfo.
func (s *Service) writeDoc(w http.ResponseWriter, format string, doc *xmlout.Document) {
	if format != formatXML {
		s.writeJSON(w, doc)
		return
	}
	// Render to a buffer first so an encoding error can still become a 500,
	// and emit the buffer verbatim: the body must be byte-identical to the
	// results file cmd/uopsinfo writes for the same result.
	var buf strings.Builder
	if err := xmlout.Write(&buf, doc); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	io.WriteString(w, buf.String())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// A degraded store does not fail the liveness probe — the service still
	// serves every request, re-measuring instead of caching — but the probe
	// says so: "degraded" plus the store's mode ("read-only" when saves are
	// suppressed, "compute-only" when loads are too).
	if mode := s.eng.StoreMode(); mode != "" && mode != store.ModeOK {
		s.writeJSON(w, map[string]string{"status": "degraded", "store": mode})
		return
	}
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// BackendInfo is one entry of the /v1/backends response. Fingerprint is the
// name@version token folded into persistent cache keys for results measured
// on that backend.
type BackendInfo struct {
	Name        string `json:"name"`
	Version     string `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Default     bool   `json:"default"`
}

// backendInfo assembles one registry entry.
func backendInfo(b measure.Backend) BackendInfo {
	return BackendInfo{
		Name:        b.Name(),
		Version:     b.Version(),
		Fingerprint: b.Name() + "@" + b.Version(),
		Default:     b.Name() == measure.DefaultBackend,
	}
}

// handleBackends lists the compiled-in backend registry plus a "serving"
// section identifying the backend this service's engine actually measures on
// — the part a fleet client's handshake consumes to verify that every worker
// serves the same substrate under the same measurement configuration.
func (s *Service) handleBackends(w http.ResponseWriter, r *http.Request) {
	names := measure.Names()
	infos := make([]BackendInfo, 0, len(names))
	for _, name := range names {
		b, ok := measure.Lookup(name)
		if !ok {
			continue
		}
		infos = append(infos, backendInfo(b))
	}
	s.writeJSON(w, struct {
		Backends []BackendInfo `json:"backends"`
		Serving  ServingInfo   `json:"serving"`
	}{infos, s.serving()})
}

// StatsResponse is the /v1/stats response: what the engine is serving from
// (backend), how its caches and the request coalescing behave (engine), and
// the service-level request counters (service).
type StatsResponse struct {
	Backend BackendInfo  `json:"backend"`
	Engine  engine.Stats `json:"engine"`
	Service Counters     `json:"service"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, StatsResponse{
		Backend: backendInfo(s.eng.Backend()),
		Engine:  s.eng.Stats(),
		Service: s.Counters(),
	})
}

// archFromRequest resolves the {gen} path segment, answering 400 for an
// unknown generation name (the error body lists the known ones).
func (s *Service) archFromRequest(w http.ResponseWriter, r *http.Request) (*uarch.Arch, bool) {
	arch, err := uarch.ByName(r.PathValue("gen"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return nil, false
	}
	return arch, true
}

// etag derives the entity tag of a characterization response from the run's
// store digest and the representation format. The digest is the engine's
// coalescing key — it covers the generation, backend fingerprint, measurement
// protocol, variant universe and run options — and characterization is
// deterministic, so equal tags imply byte-identical bodies.
func etag(dig store.Digest, format string) string {
	return `"` + dig.String() + "-" + format + `"`
}

// etagMatches implements the If-None-Match comparison: a list of entity tags
// (or "*") matched against the response's tag. Weak-validator prefixes are
// accepted — our tags are strong, so W/"x" matching "x" is still exact.
func etagMatches(header, tag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == tag {
			return true
		}
	}
	return false
}

// clientGone records a request whose caller went away before a response was
// written: the 499-style status makes it count as ClientGone, not as a
// silent success.
func (s *Service) clientGone(w http.ResponseWriter, r *http.Request, err error) {
	s.logf("service: %s %s: client went away: %v", r.Method, r.URL.Path, err)
	w.WriteHeader(StatusClientGone)
}

// characterize runs one request through the engine (coalescing with any
// identical in-flight request) and handles the error surface: a cancelled
// request is recorded as ClientGone, anything else is a 500. The run digest
// is the response's ETag, checked against If-None-Match first — a repeat
// conditional GET is answered 304 without touching the engine at all. The
// response carries the per-version IACA entries exactly like the CLI's
// results file, so the XML rendering is byte-identical to what cmd/uopsinfo
// writes for the same query.
func (s *Service) characterize(w http.ResponseWriter, r *http.Request, arch *uarch.Arch, opts engine.RunOptions, format string) {
	dig, err := s.eng.RunDigest(arch.Gen(), opts)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	tag := etag(dig, format)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, tag) {
		w.Header().Set("ETag", tag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	res, err := s.eng.CharacterizeArchContext(r.Context(), arch.Gen(), opts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.clientGone(w, r, err)
			return
		}
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.writeResult(w, arch, res, format, tag)
}

// writeResult renders a characterization result with its entity tag, via the
// same document-building path as the synchronous endpoints (shared with the
// job result endpoint, which must produce byte-identical bodies).
func (s *Service) writeResult(w http.ResponseWriter, arch *uarch.Arch, res *core.ArchResult, format, tag string) {
	analyzers, err := s.analyzers(arch)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	s.writeDoc(w, format, xmlout.Single(xmlout.FromArchResult(res, analyzers)))
}

// analyzers returns the (lazily built, cached) IACA analyzers for a
// generation.
func (s *Service) analyzers(arch *uarch.Arch) ([]*iaca.Analyzer, error) {
	s.iacaMu.Lock()
	ent, ok := s.iacaCache[arch.Gen()]
	if !ok {
		ent = &iacaEntry{}
		s.iacaCache[arch.Gen()] = ent
	}
	s.iacaMu.Unlock()
	ent.once.Do(func() {
		for _, v := range iaca.SupportedVersions(arch.Gen()) {
			a, err := iaca.New(v, arch)
			if err != nil {
				ent.analyzers, ent.err = nil, err
				return
			}
			ent.analyzers = append(ent.analyzers, a)
		}
	})
	return ent.analyzers, ent.err
}

// runOptionsFromRequest parses the characterization query surface shared by
// the synchronous arch endpoint and the job API: ?quick and ?only. The
// selection is canonicalized (resolved, sorted, deduplicated), which makes
// equivalent requests identical to the engine: ?only=A,B and ?only=B,A share
// one coalescing flight and one store entry, and a duplicated name is not
// measured twice. The response is order-independent anyway (results are
// rendered in sorted variant order).
func runOptionsFromRequest(arch *uarch.Arch, r *http.Request) (engine.RunOptions, error) {
	opts := engine.RunOptions{}
	if q := r.URL.Query().Get("quick"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			return opts, fmt.Errorf("service: quick=%q is not a boolean", q)
		}
		opts.SkipLatency = v
	}
	if only := r.URL.Query().Get("only"); only != "" {
		set := arch.InstrSet()
		seen := make(map[string]bool)
		for _, name := range strings.Split(only, ",") {
			// Resolving here keeps the engine's error surface out of the
			// status mapping: a mistyped ?only name is the caller's fault.
			in := set.Lookup(name)
			if in == nil {
				return opts, fmt.Errorf("service: %s has no instruction variant %q", arch.Name(), name)
			}
			if seen[in.Name] {
				continue
			}
			seen[in.Name] = true
			opts.Only = append(opts.Only, in.Name)
		}
		sort.Strings(opts.Only)
	}
	return opts, nil
}

func (s *Service) handleArch(w http.ResponseWriter, r *http.Request) {
	arch, ok := s.archFromRequest(w, r)
	if !ok {
		return
	}
	format, err := requestFormat(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opts, err := runOptionsFromRequest(arch, r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.characterize(w, r, arch, opts, format)
}

func (s *Service) handleVariant(w http.ResponseWriter, r *http.Request) {
	arch, ok := s.archFromRequest(w, r)
	if !ok {
		return
	}
	format, err := requestFormat(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	in := arch.InstrSet().Lookup(name)
	if in == nil {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("service: %s has no instruction variant %q", arch.Name(), name))
		return
	}
	s.characterize(w, r, arch, engine.RunOptions{Only: []string{in.Name}}, format)
}
