//go:build !race

package pipesim

// raceEnabled gates the Reset invariant checks; see race_enabled.go.
const raceEnabled = false

// assert32 is the race-build range check behind idx32; in non-race builds it
// is empty and inlines away, keeping the funnel free on the hot path.
func assert32(int) {}
