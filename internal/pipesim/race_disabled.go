//go:build !race

package pipesim

// raceEnabled gates the Reset invariant checks; see race_enabled.go.
const raceEnabled = false
