package pipesim

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

func skylake(t *testing.T) (*uarch.Arch, *Machine) {
	t.Helper()
	arch := uarch.Get(uarch.Skylake)
	return arch, New(arch)
}

func lookup(t *testing.T, arch *uarch.Arch, name string) *isa.Instr {
	t.Helper()
	in := arch.InstrSet().Lookup(name)
	if in == nil {
		t.Fatalf("instruction %q not found on %s", name, arch.Name())
	}
	return in
}

// chainOf builds a dependency chain of n copies of a two-register-operand
// instruction where each instance reads the register written by the previous
// one (using the same register for both operands of every instance).
func chainOf(t *testing.T, in *isa.Instr, reg isa.Reg, n int) asmgen.Sequence {
	t.Helper()
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		seq = append(seq, asmgen.MustInst(in, asmgen.RegOperand(reg), asmgen.RegOperand(reg)))
	}
	return seq
}

func TestDependentChainLatency(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	movsx := lookup(t, arch, "MOVSX_R64_R16")
	// MOVSX RAX, AX chained through the same register family: one cycle per
	// instruction once the pipeline is busy.
	var seq asmgen.Sequence
	for i := 0; i < 50; i++ {
		seq = append(seq, asmgen.MustInst(movsx, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.AX)))
	}
	c := m.MustRun(seq)
	perInstr := float64(c.Cycles) / 50
	if perInstr < 0.9 || perInstr > 1.3 {
		t.Fatalf("dependent MOVSX chain: %.2f cycles/instr, want about 1", perInstr)
	}
}

func TestIndependentThroughputADD(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	add := lookup(t, arch, "ADD_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	var seq asmgen.Sequence
	for i := 0; i < 200; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	c := m.MustRun(seq)
	perInstr := float64(c.Cycles) / 200
	// ADD can use four ports on Skylake but the front end limits the rate to
	// four per cycle, so about 0.25 cycles per instruction.
	if perInstr < 0.2 || perInstr > 0.4 {
		t.Fatalf("independent ADD: %.3f cycles/instr, want about 0.25", perInstr)
	}
	// All µops should have gone to the integer ALU ports 0, 1, 5, 6.
	for _, p := range []int{2, 3, 4, 7} {
		if c.PortUops[p] != 0 {
			t.Errorf("port %d has %d µops, want 0", p, c.PortUops[p])
		}
	}
}

func TestPortThroughputLimitedByPortCount(t *testing.T) {
	t.Parallel()
	// On Nehalem the integer ALUs are on three ports, so a long stream of
	// independent ADDs runs at about 1/3 cycles per instruction.
	arch := uarch.Get(uarch.Nehalem)
	m := New(arch)
	add := lookup(t, arch, "ADD_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI}
	var seq asmgen.Sequence
	for i := 0; i < 300; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	c := m.MustRun(seq)
	perInstr := float64(c.Cycles) / 300
	if perInstr < 0.30 || perInstr > 0.45 {
		t.Fatalf("independent ADD on Nehalem: %.3f cycles/instr, want about 0.33", perInstr)
	}
}

func TestPointerChasingLoadLatency(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	mov := lookup(t, arch, "MOV_R64_M64")
	// MOV RAX, [RAX] chain: each load depends on the previous one through
	// the address register, so it runs at the load latency.
	var seq asmgen.Sequence
	for i := 0; i < 40; i++ {
		seq = append(seq, asmgen.MustInst(mov,
			asmgen.RegOperand(isa.RAX), asmgen.MemOperand(isa.RAX, 0x2000)))
	}
	c := m.MustRun(seq)
	perInstr := float64(c.Cycles) / 40
	want := float64(arch.LoadLatency())
	if perInstr < want-1 || perInstr > want+1.5 {
		t.Fatalf("pointer chase: %.2f cycles/instr, want about %v", perInstr, want)
	}
}

func TestZeroIdiomBreaksDependency(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	imul := lookup(t, arch, "IMUL_R64_R64")
	xor := lookup(t, arch, "XOR_R64_R64")
	// Without the zero idiom, a chain of IMULs on RAX runs at 3 cycles per
	// IMUL. Inserting XOR RAX, RAX between them breaks the dependency.
	var chained, broken asmgen.Sequence
	for i := 0; i < 30; i++ {
		chained = append(chained, asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
		broken = append(broken, asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
		broken = append(broken, asmgen.MustInst(xor, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
	}
	cChained := m.MustRun(chained)
	cBroken := m.MustRun(broken)
	if cBroken.Cycles >= cChained.Cycles {
		t.Fatalf("zero idiom did not break the dependency: chained %d cycles, broken %d cycles",
			cChained.Cycles, cBroken.Cycles)
	}
}

func TestZeroIdiomEliminatedOnSkylake(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	xor := lookup(t, arch, "XOR_R64_R64")
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(xor, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
	}
	c := m.MustRun(seq)
	if c.ElimUops == 0 {
		t.Fatalf("zero idioms were not eliminated at rename (elim=%d)", c.ElimUops)
	}
	if c.TotalUops != 0 {
		t.Errorf("eliminated zero idioms should not use execution ports, got %d port µops", c.TotalUops)
	}
}

func TestZeroIdiomNotEliminatedOnNehalem(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Nehalem)
	m := New(arch)
	xor := lookup(t, arch, "XOR_R64_R64")
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(xor, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
	}
	c := m.MustRun(seq)
	if c.TotalUops == 0 {
		t.Fatalf("Nehalem zero idioms still use an execution port, got 0 port µops")
	}
}

func TestDividerNotPipelined(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	div := lookup(t, arch, "DIV_R32")
	// Independent divisions: destination registers are implicit (RAX/RDX),
	// so they cannot be made independent, but the divider occupancy should
	// still dominate and give a throughput well above 1 cycle.
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(div, asmgen.RegOperand(isa.EBX)))
	}
	c := m.MustRun(seq)
	perInstr := float64(c.Cycles) / 20
	if perInstr < 5 {
		t.Fatalf("DIV throughput %.2f cycles/instr, want clearly more than 1 (divider is not pipelined)", perInstr)
	}
}

func TestDividerFastValuesAreFaster(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Skylake)
	div := lookup(t, arch, "DIV_R64")
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	}
	slow := New(arch)
	slow.SetDividerValues(SlowDividerValues)
	fast := New(arch)
	fast.SetDividerValues(FastDividerValues)
	cSlow := slow.MustRun(seq)
	cFast := fast.MustRun(seq)
	if cFast.Cycles >= cSlow.Cycles {
		t.Fatalf("fast divider values (%d cycles) should be faster than slow values (%d cycles)",
			cFast.Cycles, cSlow.Cycles)
	}
}

func TestMoveEliminationIndependentMoves(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	mov := lookup(t, arch, "MOV_R64_R64")
	// Independent MOVs (source never written in the sequence) are always
	// eliminated on Skylake.
	var seq asmgen.Sequence
	for i := 0; i < 30; i++ {
		seq = append(seq, asmgen.MustInst(mov, asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RBX)))
	}
	c := m.MustRun(seq)
	if c.ElimUops != 30 {
		t.Fatalf("independent MOVs eliminated: %d, want 30", c.ElimUops)
	}
}

func TestMoveEliminationPartialInDependentChain(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	mov := lookup(t, arch, "MOV_R64_R64")
	// A dependent MOV chain is only partially eliminated (about one third,
	// Section 5.2.1), so MOVSX is preferred for latency chains.
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX}
	var seq asmgen.Sequence
	for i := 0; i < 60; i++ {
		dst := regs[(i+1)%3]
		src := regs[i%3]
		seq = append(seq, asmgen.MustInst(mov, asmgen.RegOperand(dst), asmgen.RegOperand(src)))
	}
	c := m.MustRun(seq)
	if c.ElimUops == 0 || c.ElimUops >= 60 {
		t.Fatalf("dependent MOV chain elimination = %d of 60, want partial elimination", c.ElimUops)
	}
}

func TestStoreLoadPair(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	store := lookup(t, arch, "MOV_M64_R64")
	load := lookup(t, arch, "MOV_R64_M64")
	addr := uint64(0x4000)
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(store,
			asmgen.MemOperand(isa.RAX, addr), asmgen.RegOperand(isa.RBX)))
		seq = append(seq, asmgen.MustInst(load,
			asmgen.RegOperand(isa.RBX), asmgen.MemOperand(isa.RAX, addr)))
	}
	c := m.MustRun(seq)
	// The load must see the stored value: the chain store->load->store...
	// cannot run at the independent-throughput rate.
	perPair := float64(c.Cycles) / 20
	if perPair < 3 {
		t.Fatalf("store/load chain: %.2f cycles per pair, expected a real dependency (>= ~4)", perPair)
	}
	// Store µops must appear on the store-data port.
	sd := arch.StoreDataPorts()[0]
	if c.PortUops[sd] == 0 {
		t.Errorf("no µops on store-data port %d", sd)
	}
}

func TestCountersPortTotalsConsistent(t *testing.T) {
	t.Parallel()
	arch, m := skylake(t)
	add := lookup(t, arch, "ADD_R64_R64")
	imul := lookup(t, arch, "IMUL_R64_R64")
	seq := asmgen.Sequence{
		asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)),
		asmgen.MustInst(imul, asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RDX)),
	}
	c := m.MustRun(seq)
	sum := 0
	for _, n := range c.PortUops {
		sum += n
	}
	if sum != c.TotalUops {
		t.Fatalf("port sum %d != total %d", sum, c.TotalUops)
	}
	if c.IssuedUops != c.TotalUops+c.ElimUops {
		t.Fatalf("issued %d != total %d + eliminated %d", c.IssuedUops, c.TotalUops, c.ElimUops)
	}
	_ = arch
}

func TestValidateRejectsUnsupportedInstruction(t *testing.T) {
	t.Parallel()
	nehalem := uarch.Get(uarch.Nehalem)
	skl := uarch.Get(uarch.Skylake)
	m := New(nehalem)
	vadd := skl.InstrSet().Lookup("VADDPS_YMM_YMM_YMM")
	if vadd == nil {
		t.Fatal("VADDPS_YMM_YMM_YMM not found on Skylake")
	}
	seq := asmgen.Sequence{asmgen.MustInst(vadd,
		asmgen.RegOperand(isa.YMM0), asmgen.RegOperand(isa.YMM1), asmgen.RegOperand(isa.YMM2))}
	if err := m.Validate(seq); err == nil {
		t.Fatal("Validate accepted an AVX instruction on Nehalem")
	}
	if err := New(skl).Validate(seq); err != nil {
		t.Fatalf("Validate rejected a valid Skylake sequence: %v", err)
	}
}

func TestAESDECOperandPairLatencies(t *testing.T) {
	t.Parallel()
	// Section 7.3.1: on Sandy Bridge, a chain through the first operand of
	// AESDEC runs at 8 cycles per round, while a chain through the second
	// operand (with the first operand's dependency broken each iteration)
	// runs much faster.
	arch := uarch.Get(uarch.SandyBridge)
	m := New(arch)
	aesdec := lookup(t, arch, "AESDEC_XMM_XMM")
	pxor := lookup(t, arch, "PXOR_XMM_XMM")

	var chain1 asmgen.Sequence
	for i := 0; i < 20; i++ {
		chain1 = append(chain1, asmgen.MustInst(aesdec, asmgen.RegOperand(isa.XMM1), asmgen.RegOperand(isa.XMM2)))
	}
	c1 := m.MustRun(chain1)
	per1 := float64(c1.Cycles) / 20

	// Chain through operand 2: XMM1 is reset by a zero idiom each iteration
	// so only the XMM2 -> XMM1 path could carry a dependence; XMM2 is never
	// written, so the rounds are effectively independent.
	var chain2 asmgen.Sequence
	for i := 0; i < 20; i++ {
		chain2 = append(chain2, asmgen.MustInst(pxor, asmgen.RegOperand(isa.XMM1), asmgen.RegOperand(isa.XMM1)))
		chain2 = append(chain2, asmgen.MustInst(aesdec, asmgen.RegOperand(isa.XMM1), asmgen.RegOperand(isa.XMM2)))
	}
	c2 := m.MustRun(chain2)
	per2 := float64(c2.Cycles) / 20

	if per1 < 7 || per1 > 9 {
		t.Errorf("AESDEC first-operand chain: %.2f cycles/round, want about 8", per1)
	}
	if per2 > per1/2 {
		t.Errorf("AESDEC with broken first-operand dependency should be much faster: %.2f vs %.2f", per2, per1)
	}
}

func TestMachineCloneIsIndependent(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Skylake)
	div := lookup(t, arch, "DIV_R64")
	var seq asmgen.Sequence
	for i := 0; i < 20; i++ {
		seq = append(seq, asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	}
	m := NewWithConfig(arch, Config{SchedulerSize: 48})
	clone := m.Clone()
	if clone == m {
		t.Fatal("Clone returned the same machine")
	}
	if clone.Config() != m.Config() {
		t.Fatalf("clone config = %+v, want %+v", clone.Config(), m.Config())
	}
	// Switching the clone's divider-value regime must not leak into the
	// parent: this is what lets forked measurement stacks run concurrently.
	clone.SetDividerValues(FastDividerValues)
	if m.Config().DividerValues != SlowDividerValues {
		t.Fatal("clone's SetDividerValues mutated the parent machine")
	}
	cFast := clone.MustRun(seq)
	cSlow := m.MustRun(seq)
	if cFast.Cycles >= cSlow.Cycles {
		t.Fatalf("clone in fast regime (%d cycles) should beat parent in slow regime (%d cycles)",
			cFast.Cycles, cSlow.Cycles)
	}
}
