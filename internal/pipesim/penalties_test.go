package pipesim

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Tests for the secondary microarchitectural mechanisms that the benchmark
// generator has to work around: SSE/AVX transition penalties (why blocking
// instructions are chosen per extension family), bypass delays between the
// vector domains (why both an integer and a floating-point shuffle chain are
// measured), and partial-register merges.

func TestSSEAVXTransitionPenalty(t *testing.T) {
	t.Parallel()
	// On Sandy Bridge, executing a legacy SSE instruction while the upper
	// halves of the YMM registers are dirty costs a large penalty; the same
	// mix with a VZEROUPPER in between does not.
	arch := uarch.Get(uarch.SandyBridge)
	m := New(arch)
	vaddps := arch.InstrSet().Lookup("VADDPS_YMM_YMM_YMM")
	addps := arch.InstrSet().Lookup("ADDPS_XMM_XMM")
	vzero := arch.InstrSet().Lookup("VZEROUPPER")
	if vaddps == nil || addps == nil || vzero == nil {
		t.Fatal("required variants missing on Sandy Bridge")
	}
	avx := asmgen.MustInst(vaddps, asmgen.RegOperand(isa.YMM0), asmgen.RegOperand(isa.YMM1), asmgen.RegOperand(isa.YMM2))
	sse := asmgen.MustInst(addps, asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.XMM4))
	clean := asmgen.MustInst(vzero)

	mixed := asmgen.Sequence{avx, sse}
	fenced := asmgen.Sequence{avx, clean, sse}
	cMixed := m.MustRun(mixed)
	cFenced := m.MustRun(fenced)
	if cMixed.Cycles <= cFenced.Cycles+arch.SSEAVXPenalty()/2 {
		t.Errorf("SSE after dirty AVX (%d cycles) should pay a transition penalty; with VZEROUPPER it takes %d cycles",
			cMixed.Cycles, cFenced.Cycles)
	}

	// Skylake does not charge this penalty in the model.
	skl := New(uarch.Get(uarch.Skylake))
	sklMixed := skl.MustRun(asmgen.Sequence{
		asmgen.MustInst(uarch.Get(uarch.Skylake).InstrSet().Lookup("VADDPS_YMM_YMM_YMM"),
			asmgen.RegOperand(isa.YMM0), asmgen.RegOperand(isa.YMM1), asmgen.RegOperand(isa.YMM2)),
		asmgen.MustInst(uarch.Get(uarch.Skylake).InstrSet().Lookup("ADDPS_XMM_XMM"),
			asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.XMM4)),
	})
	if sklMixed.Cycles > 30 {
		t.Errorf("Skylake mixed SSE/AVX sequence took %d cycles; no transition penalty expected", sklMixed.Cycles)
	}
}

func TestBypassDelayBetweenDomains(t *testing.T) {
	t.Parallel()
	// A chain alternating between a vector-integer producer and a
	// floating-point consumer pays a bypass delay each hop, so it is slower
	// than a pure integer chain of the same length.
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	paddd := arch.InstrSet().Lookup("PADDD_XMM_XMM") // vector integer, latency 1
	addps := arch.InstrSet().Lookup("ADDPS_XMM_XMM") // floating point
	pand := arch.InstrSet().Lookup("PAND_XMM_XMM")   // vector integer, latency 1
	if paddd == nil || addps == nil || pand == nil {
		t.Fatal("required variants missing")
	}
	x := asmgen.RegOperand(isa.XMM1)
	y := asmgen.RegOperand(isa.XMM2)

	var pureInt, mixed asmgen.Sequence
	for i := 0; i < 20; i++ {
		pureInt = append(pureInt, asmgen.MustInst(paddd, x, y))
		pureInt = append(pureInt, asmgen.MustInst(pand, x, y))
		mixed = append(mixed, asmgen.MustInst(paddd, x, y))
		mixed = append(mixed, asmgen.MustInst(addps, x, y))
	}
	cInt := m.MustRun(pureInt)
	cMixed := m.MustRun(mixed)
	if cMixed.Cycles <= cInt.Cycles {
		t.Errorf("mixed-domain chain (%d cycles) should be slower than the pure integer chain (%d cycles): "+
			"ADDPS has a higher latency and each domain crossing adds a bypass delay", cMixed.Cycles, cInt.Cycles)
	}
}

func TestPartialRegisterMergeCreatesDependency(t *testing.T) {
	t.Parallel()
	// Writing an 8-bit register merges with the previous 64-bit contents, so
	// a chain of "MOV AL, imm; ADD RAX, RBX" is serialized through RAX even
	// though the MOV looks like a write-only operation.
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	mov8 := arch.InstrSet().Lookup("MOV_R8_I8")
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	if mov8 == nil || add == nil {
		t.Fatal("required variants missing")
	}
	var narrow, wide asmgen.Sequence
	mov64 := arch.InstrSet().Lookup("MOV_R64_I32")
	for i := 0; i < 30; i++ {
		narrow = append(narrow, asmgen.MustInst(mov8, asmgen.RegOperand(isa.AL), asmgen.ImmOperand(1)))
		narrow = append(narrow, asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)))
		// The 32/64-bit move zero-extends and breaks the dependency.
		wide = append(wide, asmgen.MustInst(mov64, asmgen.RegOperand(isa.RAX), asmgen.ImmOperand(1)))
		wide = append(wide, asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)))
	}
	cNarrow := m.MustRun(narrow)
	cWide := m.MustRun(wide)
	if cNarrow.Cycles <= cWide.Cycles {
		t.Errorf("partial-register chain (%d cycles) should be slower than the full-width chain (%d cycles)",
			cNarrow.Cycles, cWide.Cycles)
	}
}

func TestSchedulerSizeLimitsWindow(t *testing.T) {
	t.Parallel()
	// With a tiny scheduler, a long-latency instruction blocks issue and the
	// independent work behind it cannot proceed, so the run takes longer
	// than with the default scheduler size.
	arch := uarch.Get(uarch.Skylake)
	small := NewWithConfig(arch, Config{SchedulerSize: 4})
	normal := New(arch)
	div := arch.InstrSet().Lookup("DIV_R64")
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	var seq asmgen.Sequence
	seq = append(seq, asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	for i := 0; i < 60; i++ {
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RSI)))
	}
	cSmall := small.MustRun(seq)
	cNormal := normal.MustRun(seq)
	if cSmall.Cycles < cNormal.Cycles {
		t.Errorf("a 4-entry scheduler (%d cycles) should not be faster than the 60-entry default (%d cycles)",
			cSmall.Cycles, cNormal.Cycles)
	}
}

func TestCountersCloneAndSub(t *testing.T) {
	t.Parallel()
	a := Counters{Cycles: 10, PortUops: []int{1, 2, 3}, TotalUops: 6, IssuedUops: 7, ElimUops: 1}
	b := Counters{Cycles: 4, PortUops: []int{1, 1, 1}, TotalUops: 3, IssuedUops: 3, ElimUops: 0}
	diff := a.Sub(b)
	if diff.Cycles != 6 || diff.TotalUops != 3 || diff.IssuedUops != 4 || diff.ElimUops != 1 {
		t.Errorf("Sub = %+v", diff)
	}
	if diff.PortUops[0] != 0 || diff.PortUops[1] != 1 || diff.PortUops[2] != 2 {
		t.Errorf("Sub port µops = %v", diff.PortUops)
	}
	// Sub must not alias the original slices.
	clone := a.Clone()
	clone.PortUops[0] = 99
	if a.PortUops[0] == 99 {
		t.Error("Clone aliases the original PortUops slice")
	}
}
