package pipesim

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Tests for the secondary microarchitectural mechanisms that the benchmark
// generator has to work around: SSE/AVX transition penalties (why blocking
// instructions are chosen per extension family), bypass delays between the
// vector domains (why both an integer and a floating-point shuffle chain are
// measured), and partial-register merges.

func TestSSEAVXTransitionPenalty(t *testing.T) {
	t.Parallel()
	// On Sandy Bridge, executing a legacy SSE instruction while the upper
	// halves of the YMM registers are dirty costs a large penalty; the same
	// mix with a VZEROUPPER in between does not.
	arch := uarch.Get(uarch.SandyBridge)
	m := New(arch)
	vaddps := arch.InstrSet().Lookup("VADDPS_YMM_YMM_YMM")
	addps := arch.InstrSet().Lookup("ADDPS_XMM_XMM")
	vzero := arch.InstrSet().Lookup("VZEROUPPER")
	if vaddps == nil || addps == nil || vzero == nil {
		t.Fatal("required variants missing on Sandy Bridge")
	}
	avx := asmgen.MustInst(vaddps, asmgen.RegOperand(isa.YMM0), asmgen.RegOperand(isa.YMM1), asmgen.RegOperand(isa.YMM2))
	sse := asmgen.MustInst(addps, asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.XMM4))
	clean := asmgen.MustInst(vzero)

	mixed := asmgen.Sequence{avx, sse}
	fenced := asmgen.Sequence{avx, clean, sse}
	cMixed := m.MustRun(mixed)
	cFenced := m.MustRun(fenced)
	if cMixed.Cycles <= cFenced.Cycles+arch.SSEAVXPenalty()/2 {
		t.Errorf("SSE after dirty AVX (%d cycles) should pay a transition penalty; with VZEROUPPER it takes %d cycles",
			cMixed.Cycles, cFenced.Cycles)
	}

	// Skylake does not charge this penalty in the model.
	skl := New(uarch.Get(uarch.Skylake))
	sklMixed := skl.MustRun(asmgen.Sequence{
		asmgen.MustInst(uarch.Get(uarch.Skylake).InstrSet().Lookup("VADDPS_YMM_YMM_YMM"),
			asmgen.RegOperand(isa.YMM0), asmgen.RegOperand(isa.YMM1), asmgen.RegOperand(isa.YMM2)),
		asmgen.MustInst(uarch.Get(uarch.Skylake).InstrSet().Lookup("ADDPS_XMM_XMM"),
			asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.XMM4)),
	})
	if sklMixed.Cycles > 30 {
		t.Errorf("Skylake mixed SSE/AVX sequence took %d cycles; no transition penalty expected", sklMixed.Cycles)
	}
}

func TestBypassDelayBetweenDomains(t *testing.T) {
	t.Parallel()
	// A chain alternating between a vector-integer producer and a
	// floating-point consumer pays a bypass delay each hop, so it is slower
	// than a pure integer chain of the same length.
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	paddd := arch.InstrSet().Lookup("PADDD_XMM_XMM") // vector integer, latency 1
	addps := arch.InstrSet().Lookup("ADDPS_XMM_XMM") // floating point
	pand := arch.InstrSet().Lookup("PAND_XMM_XMM")   // vector integer, latency 1
	if paddd == nil || addps == nil || pand == nil {
		t.Fatal("required variants missing")
	}
	x := asmgen.RegOperand(isa.XMM1)
	y := asmgen.RegOperand(isa.XMM2)

	var pureInt, mixed asmgen.Sequence
	for i := 0; i < 20; i++ {
		pureInt = append(pureInt, asmgen.MustInst(paddd, x, y))
		pureInt = append(pureInt, asmgen.MustInst(pand, x, y))
		mixed = append(mixed, asmgen.MustInst(paddd, x, y))
		mixed = append(mixed, asmgen.MustInst(addps, x, y))
	}
	cInt := m.MustRun(pureInt)
	cMixed := m.MustRun(mixed)
	if cMixed.Cycles <= cInt.Cycles {
		t.Errorf("mixed-domain chain (%d cycles) should be slower than the pure integer chain (%d cycles): "+
			"ADDPS has a higher latency and each domain crossing adds a bypass delay", cMixed.Cycles, cInt.Cycles)
	}
}

func TestPartialRegisterMergeCreatesDependency(t *testing.T) {
	t.Parallel()
	// Writing an 8-bit register merges with the previous 64-bit contents, so
	// a chain of "MOV AL, imm; ADD RAX, RBX" is serialized through RAX even
	// though the MOV looks like a write-only operation.
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	mov8 := arch.InstrSet().Lookup("MOV_R8_I8")
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	if mov8 == nil || add == nil {
		t.Fatal("required variants missing")
	}
	var narrow, wide asmgen.Sequence
	mov64 := arch.InstrSet().Lookup("MOV_R64_I32")
	for i := 0; i < 30; i++ {
		narrow = append(narrow, asmgen.MustInst(mov8, asmgen.RegOperand(isa.AL), asmgen.ImmOperand(1)))
		narrow = append(narrow, asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)))
		// The 32/64-bit move zero-extends and breaks the dependency.
		wide = append(wide, asmgen.MustInst(mov64, asmgen.RegOperand(isa.RAX), asmgen.ImmOperand(1)))
		wide = append(wide, asmgen.MustInst(add, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RBX)))
	}
	cNarrow := m.MustRun(narrow)
	cWide := m.MustRun(wide)
	if cNarrow.Cycles <= cWide.Cycles {
		t.Errorf("partial-register chain (%d cycles) should be slower than the full-width chain (%d cycles)",
			cNarrow.Cycles, cWide.Cycles)
	}
}

func TestSchedulerSizeLimitsWindow(t *testing.T) {
	t.Parallel()
	// Pins the scheduler-window semantics documented on Config.SchedulerSize:
	// the window counts µops that have issued but not yet dispatched, a µop
	// frees its entry at the end of the cycle in which it dispatches, and the
	// freed entry is available to the front end in the next cycle.
	//
	// With N independent single-µop ADDs (all inputs live-in, four ALU ports
	// on Skylake, issue width 4), a window of W <= 4 admits W µops per cycle,
	// dispatches all of them the same cycle, and reclaims the entries for the
	// next group — so the run takes exactly ceil(N/W) cycles. If dispatched
	// µops kept their entries until some later completion point, the
	// throughput would be strictly lower.
	arch := uarch.Get(uarch.Skylake)
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	const n = 8
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(regs[i]), asmgen.RegOperand(regs[i])))
	}
	for _, tc := range []struct{ window, wantCycles int }{
		{1, 8}, {2, 4}, {4, 2},
	} {
		m := NewWithConfig(arch, Config{SchedulerSize: tc.window})
		if got := m.MustRun(seq).Cycles; got != tc.wantCycles {
			t.Errorf("window %d: %d independent ADDs took %d cycles, want %d (waiting-µops-only window)",
				tc.window, n, got, tc.wantCycles)
		}
	}

	// The original qualitative property still holds: a tiny window behind a
	// long-latency instruction cannot run ahead, so it is never faster than
	// the 60-entry default.
	small := NewWithConfig(arch, Config{SchedulerSize: 4})
	normal := New(arch)
	div := arch.InstrSet().Lookup("DIV_R64")
	var blocked asmgen.Sequence
	blocked = append(blocked, asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	for i := 0; i < 60; i++ {
		blocked = append(blocked, asmgen.MustInst(add, asmgen.RegOperand(isa.RCX), asmgen.RegOperand(isa.RSI)))
	}
	cSmall := small.MustRun(blocked)
	cNormal := normal.MustRun(blocked)
	if cSmall.Cycles < cNormal.Cycles {
		t.Errorf("a 4-entry scheduler (%d cycles) should not be faster than the 60-entry default (%d cycles)",
			cSmall.Cycles, cNormal.Cycles)
	}
}

func TestCountersCloneAndSub(t *testing.T) {
	t.Parallel()
	a := Counters{Cycles: 10, PortUops: []int{1, 2, 3}, TotalUops: 6, IssuedUops: 7, ElimUops: 1}
	b := Counters{Cycles: 4, PortUops: []int{1, 1, 1}, TotalUops: 3, IssuedUops: 3, ElimUops: 0}
	diff := a.Sub(b)
	if diff.Cycles != 6 || diff.TotalUops != 3 || diff.IssuedUops != 4 || diff.ElimUops != 1 {
		t.Errorf("Sub = %+v", diff)
	}
	if diff.PortUops[0] != 0 || diff.PortUops[1] != 1 || diff.PortUops[2] != 2 {
		t.Errorf("Sub port µops = %v", diff.PortUops)
	}
	// Sub must not alias the original slices.
	clone := a.Clone()
	clone.PortUops[0] = 99
	if a.PortUops[0] == 99 {
		t.Error("Clone aliases the original PortUops slice")
	}
}
