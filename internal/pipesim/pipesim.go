// Package pipesim is a cycle-level simulator of the out-of-order execution
// engine of Intel Core CPUs (Figure 1 of the paper). It stands in for the
// real hardware in this reproduction: the measurement harness (package
// measure) runs generated microbenchmark code on it and reads simulated
// performance counters (core cycles and µops dispatched per port), which is
// exactly the interface the paper's algorithms use on silicon.
//
// The simulator models the mechanisms the characterization algorithms have to
// cope with:
//
//   - a front end that issues up to IssueWidth µops per cycle, in order;
//   - register renaming (no false WAW/WAR dependencies), with move
//     elimination and zero-idiom handling in the rename stage;
//   - a finite unified scheduler that dispatches the oldest ready µops to
//     execution ports, at most one µop per port per cycle;
//   - per-µop latencies, including different latencies to different outputs;
//   - individual status-flag dependencies and partial-register merges;
//   - load latency, store-address/store-data µops and memory dependencies;
//   - a non-pipelined divider unit with value-dependent occupancy;
//   - bypass delays between the vector-integer and floating-point domains;
//   - SSE/AVX transition penalties.
package pipesim

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Version is the behavioural revision of the simulator. It is the version
// fingerprint of the pipesim measurement backend and is thereby folded into
// persistent cache keys: bump it whenever a change alters the simulated
// counter values, so results measured on the old behaviour read as misses
// instead of being served stale.
const Version = "1"

// DividerValues selects whether operand values for divider-based instructions
// are "fast" or "slow" (Section 5.2.5: the latency and throughput of
// divisions depend on the operand values). The microbenchmark generator pins
// operand values accordingly; the simulator, which does not track actual data
// values, is told which regime the pinned values are in.
type DividerValues int

// Divider value regimes.
const (
	// SlowDividerValues corresponds to operand values that lead to the high
	// (worst-case) latency.
	SlowDividerValues DividerValues = iota
	// FastDividerValues corresponds to operand values that lead to the low
	// latency.
	FastDividerValues
)

// Counters is the simulated performance-counter state after running a code
// sequence: elapsed core cycles and the number of µops dispatched to each
// port (Section 3.3).
type Counters struct {
	Cycles     int
	PortUops   []int
	TotalUops  int // µops dispatched to an execution port
	IssuedUops int // all µops, including those handled at rename
	ElimUops   int // µops eliminated at rename (moves, zero idioms, NOPs)
}

// Clone returns a deep copy of the counters.
func (c Counters) Clone() Counters {
	out := c
	out.PortUops = append([]int(nil), c.PortUops...)
	return out
}

// Sub returns c - o element-wise (used by the measurement protocol to remove
// harness overhead).
func (c Counters) Sub(o Counters) Counters {
	out := c.Clone()
	out.Cycles -= o.Cycles
	out.TotalUops -= o.TotalUops
	out.IssuedUops -= o.IssuedUops
	out.ElimUops -= o.ElimUops
	for i := range out.PortUops {
		if i < len(o.PortUops) {
			out.PortUops[i] -= o.PortUops[i]
		}
	}
	return out
}

// Config controls simulation parameters that are not part of the
// per-generation profile.
type Config struct {
	// SchedulerSize is the number of entries in the unified reservation
	// station. Zero selects the default of 60 entries.
	SchedulerSize int
	// MaxCycles aborts runaway simulations. Zero selects a large default.
	MaxCycles int
	// DividerValues selects the operand-value regime for divider-based
	// instructions.
	DividerValues DividerValues
}

// Machine simulates one microarchitecture generation.
type Machine struct {
	arch *uarch.Arch
	cfg  Config
}

// New returns a Machine for the given microarchitecture with default
// configuration.
func New(arch *uarch.Arch) *Machine {
	return NewWithConfig(arch, Config{})
}

// NewWithConfig returns a Machine with explicit configuration.
func NewWithConfig(arch *uarch.Arch, cfg Config) *Machine {
	if cfg.SchedulerSize <= 0 {
		cfg.SchedulerSize = 60
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 5_000_000
	}
	return &Machine{arch: arch, cfg: cfg}
}

// Arch returns the microarchitecture the machine simulates.
func (m *Machine) Arch() *uarch.Arch { return m.arch }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Clone returns an independent Machine with the same microarchitecture and
// configuration. The clone shares only the (internally synchronized) Arch;
// mutable per-run state such as the divider-value regime is copied, so clones
// can run on different goroutines without synchronization.
func (m *Machine) Clone() *Machine {
	return NewWithConfig(m.arch, m.cfg)
}

// SetDividerValues selects the operand-value regime for divider-based
// instructions in subsequent runs.
func (m *Machine) SetDividerValues(v DividerValues) { m.cfg.DividerValues = v }

// dynVal is one renamed value (a physical-register-like entity).
type dynVal struct {
	ready  int
	known  bool // producer has dispatched (or the value is live-in)
	domain isa.Domain
}

// dynUop is one dynamic µop instance.
type dynUop struct {
	ports      []int
	reads      []*dynVal
	writes     []*dynVal
	writeLat   []int
	eliminated bool
	divider    bool
	divOcc     int
	domain     isa.Domain
	dispatched bool
}

// resKey identifies an architectural resource for dependency tracking.
type resKey struct {
	kind int // 0=register family, 1=flag, 2=memory address
	id   uint64
}

func regKey(r isa.Reg) resKey   { return resKey{kind: 0, id: uint64(r.Family())} }
func flagKey(f isa.Flag) resKey { return resKey{kind: 1, id: uint64(f)} }
func memKey(addr uint64) resKey { return resKey{kind: 2, id: addr} }

// Run simulates the code sequence starting from an idle pipeline with all
// inputs ready, and returns the performance counters.
func (m *Machine) Run(code asmgen.Sequence) (Counters, error) {
	uops, penalty, err := m.rename(code)
	if err != nil {
		return Counters{}, err
	}
	c := m.execute(uops)
	c.Cycles += penalty
	return c, nil
}

// MustRun is like Run but panics on error (for code generated from validated
// instruction sets).
func (m *Machine) MustRun(code asmgen.Sequence) Counters {
	c, err := m.Run(code)
	if err != nil {
		panic(err)
	}
	return c
}

// rename performs the program-order pre-pass: it decomposes every instruction
// into dynamic µops, resolves register/flag/memory dependencies to renamed
// values, applies zero-idiom and same-register special cases, and computes
// the SSE/AVX transition penalty.
func (m *Machine) rename(code asmgen.Sequence) ([]*dynUop, int, error) {
	latest := make(map[resKey]*dynVal)
	liveIn := func(k resKey, dom isa.Domain) *dynVal {
		if v, ok := latest[k]; ok {
			return v
		}
		v := &dynVal{ready: 0, known: true, domain: dom}
		latest[k] = v
		return v
	}

	var uops []*dynUop
	penalty := 0
	avxDirty := false
	depMoveCounter := 0
	// produced tracks register families written by earlier instructions in
	// the measured code (as opposed to live-in values), which is what decides
	// whether a register-to-register move is trivially eliminable.
	produced := make(map[resKey]bool)

	for _, inst := range code {
		in := inst.Variant
		perf := m.arch.Perf(in)

		// SSE/AVX transition penalty (Section 5.1.1 explains why blocking
		// instructions are chosen per extension family to avoid this).
		if p := m.arch.SSEAVXPenalty(); p > 0 {
			switch {
			case in.Extension.IsAVX():
				for _, op := range in.ExplicitOperands() {
					if op.Class == isa.ClassYMM {
						avxDirty = true
					}
				}
			case in.Extension.IsSSE() && avxDirty:
				penalty += p
				avxDirty = false
			}
			if in.Mnemonic == "VZEROUPPER" || in.Mnemonic == "VZEROALL" {
				avxDirty = false
			}
		}

		// Same-register override (e.g. SHLD on Skylake, Section 7.3.2).
		sameReg, regCount := allExplicitRegsEqual(inst)
		if perf.SameRegOverride != nil && sameReg && regCount >= 2 {
			perf = perf.SameRegOverride
		}
		zeroIdiom := perf.ZeroIdiom && sameReg && regCount >= 2

		// Move elimination: a register-to-register move whose source is not
		// produced inside the measured code is always eliminated; inside a
		// dependent chain roughly every third move is eliminated (the
		// behaviour the paper reports in Section 5.2.1).
		moveElim := false
		if perf.MoveElim && isRegRegMove(inst) {
			srcOp := inst.Ops[1]
			if !produced[regKey(srcOp.Reg)] {
				moveElim = true
			} else {
				depMoveCounter++
				moveElim = depMoveCounter%3 == 0
			}
		}

		domain := in.Domain
		temps := make(map[int]*dynVal)

		for ui := range perf.Uops {
			spec := &perf.Uops[ui]
			du := &dynUop{
				ports:   spec.Ports,
				divider: spec.Divider,
				divOcc:  spec.DivOccupancy,
				domain:  domain,
			}
			if len(spec.Ports) == 0 {
				du.eliminated = true
			}
			if zeroIdiom {
				if perf.ZeroIdiomElim {
					du.eliminated = true
					du.ports = nil
				}
			}
			if moveElim {
				du.eliminated = true
				du.ports = nil
			}
			if spec.Divider && m.cfg.DividerValues == FastDividerValues {
				du.divOcc = perf.DivOccupancyLowValues
			}

			// Resolve reads. Store-address µops only depend on the address
			// registers of the memory operand, not on the previous memory
			// contents.
			for _, ref := range spec.Reads {
				if zeroIdiom && ref.Kind == uarch.ValOperand && in.Operands[ref.Index].Kind == isa.OpReg {
					continue // the idiom breaks the dependency on the register
				}
				du.reads = append(du.reads, m.resolveReads(inst, ref, temps, latest, liveIn, spec.StoreAddr)...)
			}
			// Resolve writes.
			for wi, ref := range spec.Writes {
				lat := spec.LatencyTo(wi)
				if spec.Load {
					lat += m.arch.LoadLatency()
				}
				if spec.Divider && m.cfg.DividerValues == FastDividerValues && perf.LatencyLowValues > 0 {
					lat = perf.LatencyLowValues
				}
				if lat < 1 && !du.eliminated {
					lat = 1
				}
				newVals, mergeReads := m.resolveWrites(inst, ref, temps, latest, liveIn, domain)
				du.reads = append(du.reads, mergeReads...)
				for _, nv := range newVals {
					du.writes = append(du.writes, nv)
					du.writeLat = append(du.writeLat, lat)
				}
				if ref.Kind == uarch.ValOperand && ref.Index < len(in.Operands) {
					op := in.Operands[ref.Index]
					if op.Kind == isa.OpReg {
						if r := inst.OperandFor(ref.Index).Reg; r != isa.RegNone {
							produced[regKey(r)] = true
						}
					}
				}
			}
			// A µop never waits for values it produces itself (this can
			// otherwise happen through partial-register merge reads when two
			// written operands alias the same register).
			if len(du.writes) > 0 && len(du.reads) > 0 {
				own := make(map[*dynVal]bool, len(du.writes))
				for _, w := range du.writes {
					own[w] = true
				}
				kept := du.reads[:0]
				for _, r := range du.reads {
					if !own[r] {
						kept = append(kept, r)
					}
				}
				du.reads = kept
			}
			uops = append(uops, du)
		}
	}
	return uops, penalty, nil
}

// resolveReads maps a µop read reference to the renamed values it consumes.
// addrOnly restricts memory operands to their address registers (used for
// store-address µops, which do not consume the previous memory contents).
func (m *Machine) resolveReads(inst *asmgen.Inst, ref uarch.ValRef, temps map[int]*dynVal,
	latest map[resKey]*dynVal, liveIn func(resKey, isa.Domain) *dynVal, addrOnly bool) []*dynVal {

	if ref.Kind == uarch.ValTemp {
		if v, ok := temps[ref.Index]; ok {
			return []*dynVal{v}
		}
		// A read of a temp that has no producer (defensive): treat as ready.
		v := &dynVal{ready: 0, known: true}
		temps[ref.Index] = v
		return []*dynVal{v}
	}
	in := inst.Variant
	if ref.Index < 0 || ref.Index >= len(in.Operands) {
		return nil
	}
	spec := in.Operands[ref.Index]
	conc := inst.OperandFor(ref.Index)
	switch spec.Kind {
	case isa.OpReg:
		r := conc.Reg
		if r == isa.RegNone {
			return nil
		}
		return []*dynVal{liveIn(regKey(r), in.Domain)}
	case isa.OpMem:
		if conc.Mem == nil {
			return nil
		}
		if addrOnly {
			return []*dynVal{liveIn(regKey(conc.Mem.Base), isa.DomainInt)}
		}
		// A memory read depends on the address register and on the latest
		// store to the same address (store-to-load forwarding resolves
		// through the renamed memory value).
		return []*dynVal{
			liveIn(regKey(conc.Mem.Base), isa.DomainInt),
			liveIn(memKey(conc.Mem.Addr), in.Domain),
		}
	case isa.OpFlags:
		var out []*dynVal
		for _, f := range spec.ReadFlags.Flags() {
			out = append(out, liveIn(flagKey(f), isa.DomainInt))
		}
		return out
	}
	return nil
}

// resolveWrites maps a µop write reference to freshly renamed values, and
// returns any additional reads implied by partial-register merges.
func (m *Machine) resolveWrites(inst *asmgen.Inst, ref uarch.ValRef, temps map[int]*dynVal,
	latest map[resKey]*dynVal, liveIn func(resKey, isa.Domain) *dynVal, domain isa.Domain) (writes, mergeReads []*dynVal) {

	if ref.Kind == uarch.ValTemp {
		v := &dynVal{domain: domain}
		temps[ref.Index] = v
		return []*dynVal{v}, nil
	}
	in := inst.Variant
	if ref.Index < 0 || ref.Index >= len(in.Operands) {
		return nil, nil
	}
	spec := in.Operands[ref.Index]
	conc := inst.OperandFor(ref.Index)
	switch spec.Kind {
	case isa.OpReg:
		r := conc.Reg
		if r == isa.RegNone {
			return nil, nil
		}
		// Writing an 8- or 16-bit part of a general-purpose register merges
		// with the previous contents (the cause of partial-register stalls,
		// Section 5.2.1); the merge is modelled as an extra read of the old
		// value.
		if spec.Class == isa.ClassGPR8 || spec.Class == isa.ClassGPR16 {
			mergeReads = append(mergeReads, liveIn(regKey(r), in.Domain))
		}
		v := &dynVal{domain: domain}
		latest[regKey(r)] = v
		return []*dynVal{v}, mergeReads
	case isa.OpMem:
		if conc.Mem == nil {
			return nil, nil
		}
		mergeReads = append(mergeReads, liveIn(regKey(conc.Mem.Base), isa.DomainInt))
		v := &dynVal{domain: domain}
		latest[memKey(conc.Mem.Addr)] = v
		return []*dynVal{v}, mergeReads
	case isa.OpFlags:
		for _, f := range spec.WriteFlags.Flags() {
			v := &dynVal{domain: isa.DomainInt}
			latest[flagKey(f)] = v
			writes = append(writes, v)
		}
		return writes, nil
	}
	return nil, nil
}

// allExplicitRegsEqual reports whether all explicit register operands of the
// instruction use the same concrete register, and how many there are.
func allExplicitRegsEqual(inst *asmgen.Inst) (bool, int) {
	var first isa.Reg
	count := 0
	for i, spec := range inst.Variant.ExplicitOperands() {
		if spec.Kind != isa.OpReg {
			continue
		}
		r := inst.Ops[i].Reg
		count++
		if count == 1 {
			first = r
		} else if r != first {
			return false, count
		}
	}
	return count > 0, count
}

// isRegRegMove reports whether the concrete instruction is a plain
// register-to-register move with two explicit register operands.
func isRegRegMove(inst *asmgen.Inst) bool {
	expl := inst.Variant.ExplicitOperands()
	if len(expl) != 2 {
		return false
	}
	return expl[0].Kind == isa.OpReg && expl[1].Kind == isa.OpReg &&
		expl[0].Write && !expl[0].Read && expl[1].Read && !expl[1].Write
}

// bypassDelay returns the extra forwarding latency when a value produced in
// domain from is consumed in domain to (Section 5.2.1: bypass delays between
// integer and floating-point SIMD operations).
func bypassDelay(from, to isa.Domain) int {
	if from == to {
		return 0
	}
	if (from == isa.DomainVecInt && to == isa.DomainFP) || (from == isa.DomainFP && to == isa.DomainVecInt) {
		return 1
	}
	return 0
}

// execute runs the cycle-by-cycle issue/dispatch loop.
func (m *Machine) execute(uops []*dynUop) Counters {
	numPorts := m.arch.NumPorts()
	c := Counters{PortUops: make([]int, numPorts)}
	c.IssuedUops = len(uops)

	issueWidth := m.arch.IssueWidth()
	schedSize := m.cfg.SchedulerSize

	var sched []*dynUop // issued, waiting for dispatch
	var elim []*dynUop  // issued, handled at rename, waiting for inputs to be known
	nextIssue := 0      // next µop (program order) to issue
	dividerFreeAt := 0  // next cycle the divider can accept a µop
	portLoad := make([]int, numPorts)
	finish := 0

	cycle := 0
	idleCycles := 0
	for cycle < m.cfg.MaxCycles {
		// Issue stage: deliver up to issueWidth µops into the scheduler (or
		// complete them directly if they need no execution port).
		issued := 0
		for nextIssue < len(uops) && issued < issueWidth && len(sched) < schedSize {
			u := uops[nextIssue]
			nextIssue++
			issued++
			if u.eliminated {
				c.ElimUops++
				elim = append(elim, u)
				continue
			}
			sched = append(sched, u)
		}

		// Rename-handled µops complete as soon as their inputs are known;
		// their outputs are ready when their inputs are (zero latency).
		if len(elim) > 0 {
			kept := elim[:0]
			for _, u := range elim {
				allKnown := true
				ready := cycle
				for _, r := range u.reads {
					if !r.known {
						allKnown = false
						break
					}
					if r.ready > ready {
						ready = r.ready
					}
				}
				if !allKnown {
					kept = append(kept, u)
					continue
				}
				for i, w := range u.writes {
					_ = i
					w.ready = ready
					w.known = true
					w.domain = u.domain
				}
				if ready > finish {
					finish = ready
				}
				u.dispatched = true
			}
			elim = kept
		}

		// Dispatch stage: oldest-first, one µop per port per cycle.
		portTaken := make([]bool, numPorts)
		dispatchedAny := false
		for _, u := range sched {
			if u.dispatched {
				continue
			}
			ready := true
			for _, r := range u.reads {
				if !r.known || r.ready+bypassDelay(r.domain, u.domain) > cycle {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if u.divider && cycle < dividerFreeAt {
				continue
			}
			p := choosePort(u.ports, portTaken, portLoad)
			if p < 0 {
				continue
			}
			portTaken[p] = true
			portLoad[p]++
			c.PortUops[p]++
			c.TotalUops++
			u.dispatched = true
			dispatchedAny = true
			if u.divider {
				occ := u.divOcc
				if occ < 1 {
					occ = 1
				}
				dividerFreeAt = cycle + occ
			}
			for i, w := range u.writes {
				lat := u.writeLat[i]
				if lat < 1 {
					lat = 1
				}
				w.ready = cycle + lat
				w.known = true
				w.domain = u.domain
				if w.ready > finish {
					finish = w.ready
				}
			}
			if len(u.writes) == 0 && cycle+1 > finish {
				finish = cycle + 1
			}
		}
		// Compact the scheduler.
		if len(sched) > 0 {
			kept := sched[:0]
			for _, u := range sched {
				if !u.dispatched {
					kept = append(kept, u)
				}
			}
			sched = kept
		}

		cycle++
		if nextIssue >= len(uops) && len(sched) == 0 && len(elim) == 0 {
			break
		}
		// Deadlock guard: µops are stuck waiting for values that are blocked
		// forever (a modelling bug rather than a property of the code under
		// test); a divider occupancy can legitimately stall dispatch for a
		// bounded number of cycles, so allow a generous margin.
		if issued == 0 && !dispatchedAny {
			idleCycles++
			if idleCycles > 10000 {
				break
			}
		} else {
			idleCycles = 0
		}
	}

	if finish < cycle {
		finish = cycle
	}
	c.Cycles = finish
	return c
}

// choosePort picks an allowed, free port for a µop, preferring the port with
// the lowest accumulated load (a simple load-balancing heuristic similar in
// spirit to the hardware's port-binding policy). It returns -1 if no allowed
// port is free this cycle.
func choosePort(allowed []int, taken []bool, load []int) int {
	best := -1
	for _, p := range allowed {
		if p < 0 || p >= len(taken) || taken[p] {
			continue
		}
		if best == -1 || load[p] < load[best] {
			best = p
		}
	}
	return best
}

// Validate checks that every instruction in the sequence belongs to the
// machine's instruction set; it is used by the measurement harness before
// running benchmarks.
func (m *Machine) Validate(code asmgen.Sequence) error {
	set := m.arch.InstrSet()
	for i, inst := range code {
		if set.Lookup(inst.Variant.Name) == nil {
			return fmt.Errorf("pipesim: %s: instruction %d (%s) is not available on this microarchitecture",
				m.arch.Name(), i, inst.Variant.Name)
		}
	}
	return nil
}
