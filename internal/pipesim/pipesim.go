// Package pipesim is a cycle-level simulator of the out-of-order execution
// engine of Intel Core CPUs (Figure 1 of the paper). It stands in for the
// real hardware in this reproduction: the measurement harness (package
// measure) runs generated microbenchmark code on it and reads simulated
// performance counters (core cycles and µops dispatched per port), which is
// exactly the interface the paper's algorithms use on silicon.
//
// The simulator models the mechanisms the characterization algorithms have to
// cope with:
//
//   - a front end that issues up to IssueWidth µops per cycle, in order;
//   - register renaming (no false WAW/WAR dependencies), with move
//     elimination and zero-idiom handling in the rename stage;
//   - a finite unified scheduler that dispatches the oldest ready µops to
//     execution ports, at most one µop per port per cycle;
//   - per-µop latencies, including different latencies to different outputs;
//   - individual status-flag dependencies and partial-register merges;
//   - load latency, store-address/store-data µops and memory dependencies;
//   - a non-pipelined divider unit with value-dependent occupancy;
//   - bypass delays between the vector-integer and floating-point domains;
//   - SSE/AVX transition penalties.
//
// Because the harness executes the simulator once per variant per copy count
// per repetition across the whole ISA, Run is the hot path of every
// characterization run. Its implementation is allocation-free in steady
// state: dynamic µops and renamed values live in per-Machine arenas that are
// reset (not freed) between runs, the rename scoreboard is a flat array
// keyed by register family and status flag, and per-µop port sets are
// precomputed bitmasks. Dispatch is event-driven: each renamed value keeps a
// wake-up list of the µops waiting on it, a µop enters the ready queue only
// when its last input's ready time arrives, and the per-cycle dispatch walk
// touches ready µops only (never the whole scheduler window). A Machine
// consequently carries mutable per-run
// state and must not be used from multiple goroutines concurrently; use
// Clone to obtain independent Machines for concurrent workers.
//
//uopslint:deterministic
//uopslint:arena
package pipesim

import (
	"fmt"
	"math/bits"
	"slices"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Version is the behavioural revision of the simulator. It is the version
// fingerprint of the pipesim measurement backend and is thereby folded into
// persistent cache keys: bump it whenever a change alters the simulated
// counter values, so results measured on the old behaviour read as misses
// instead of being served stale. (The arena/event-list rewrite of the hot
// path is behaviour-preserving, so it did not bump this.)
const Version = "1"

// DividerValues selects whether operand values for divider-based instructions
// are "fast" or "slow" (Section 5.2.5: the latency and throughput of
// divisions depend on the operand values). The microbenchmark generator pins
// operand values accordingly; the simulator, which does not track actual data
// values, is told which regime the pinned values are in.
type DividerValues int

// Divider value regimes.
const (
	// SlowDividerValues corresponds to operand values that lead to the high
	// (worst-case) latency.
	SlowDividerValues DividerValues = iota
	// FastDividerValues corresponds to operand values that lead to the low
	// latency.
	FastDividerValues
)

// Counters is the simulated performance-counter state after running a code
// sequence: elapsed core cycles and the number of µops dispatched to each
// port (Section 3.3).
type Counters struct {
	Cycles     int
	PortUops   []int
	TotalUops  int // µops dispatched to an execution port
	IssuedUops int // all µops, including those handled at rename
	ElimUops   int // µops eliminated at rename (moves, zero idioms, NOPs)
}

// Clone returns a deep copy of the counters.
func (c Counters) Clone() Counters {
	out := c
	out.PortUops = append([]int(nil), c.PortUops...)
	return out
}

// Sub returns c - o element-wise (used by the measurement protocol to remove
// harness overhead).
func (c Counters) Sub(o Counters) Counters {
	out := c.Clone()
	out.Cycles -= o.Cycles
	out.TotalUops -= o.TotalUops
	out.IssuedUops -= o.IssuedUops
	out.ElimUops -= o.ElimUops
	for i := range out.PortUops {
		if i < len(o.PortUops) {
			out.PortUops[i] -= o.PortUops[i]
		}
	}
	return out
}

// Config controls simulation parameters that are not part of the
// per-generation profile.
type Config struct {
	// SchedulerSize is the number of entries in the unified reservation
	// station. Zero selects the default of 60 entries.
	//
	// The window counts µops that have issued but not yet dispatched to an
	// execution port: a µop occupies its entry from the cycle it issues
	// until the end of the cycle in which it dispatches, and the freed entry
	// can be refilled by the front end in the next cycle. µops handled at
	// rename (eliminated moves, zero idioms, NOPs) never occupy an entry.
	// TestSchedulerSizeLimitsWindow pins these semantics.
	SchedulerSize int
	// MaxCycles aborts runaway simulations. Zero selects a large default.
	MaxCycles int
	// DividerValues selects the operand-value regime for divider-based
	// instructions.
	DividerValues DividerValues
}

// maxPorts bounds the per-port bitmasks and load tables; all modelled
// generations have 6 or 8 execution ports.
const maxPorts = 16

// idx32 is the single funnel for narrowing wide integers into the int32
// arena indices and cycle counts used throughout the simulator. In race
// builds assert32 panics on values outside the int32 range; in production
// builds it is empty and the funnel compiles down to a bare conversion.
func idx32(v int) int32 {
	assert32(v)
	return int32(v)
}

// numFlagVals is the size of the status-flag scoreboard.
const numFlagVals = int(isa.NumFlags)

// dynVal is one renamed value (a physical-register-like entity). Values live
// in the Machine's val arena and are referenced by index. waiters heads the
// value's wake-up list: the µops that issued before the value was known and
// must be notified (pending count decremented, readyAt folded in) when the
// producer dispatches. The list is linked through the Machine's waiter-node
// arena and consumed exactly once.
type dynVal struct {
	ready   int32 // cycle the value becomes available
	waiters int32 // head of the wake-up list (waiter-node index, -1 = none)
	known   bool  // producer has dispatched (or the value is live-in)
	domain  isa.Domain
}

// dynUop is one dynamic µop instance. µops live in the Machine's µop arena;
// their read and write value lists are [start,end) segments of the shared
// readIdx/writeIdx backing slices (writeLat is parallel to writeIdx).
// pending and readyAt are the wake-up bookkeeping, maintained from issue
// onward: pending counts read values whose producer has not yet dispatched,
// and readyAt accumulates the latest input-ready time seen so far (including
// the bypass delay for µops that execute on a port; eliminated µops complete
// at rename and take no bypass). A µop enters the dispatch ready queue only
// when pending reaches zero and the cycle reaches readyAt.
type dynUop struct {
	rdStart, rdEnd int32
	wrStart, wrEnd int32
	pending        int32
	readyAt        int32
	portMask       uint16 // allowed execution ports as a bitmask
	eliminated     bool
	divider        bool
	domain         isa.Domain
	divOcc         int32
}

// Machine simulates one microarchitecture generation.
//
// A Machine owns reusable per-run state (arenas, scoreboards, scheduler
// queues) so that steady-state Run calls perform no heap allocations beyond
// the returned Counters.PortUops slice. It is therefore NOT safe for
// concurrent use: each goroutine needs its own Machine (see Clone).
type Machine struct {
	arch *uarch.Arch
	cfg  Config

	// perf memoizes the Arch.Perf lookup per variant, keyed by identity.
	// InstrPerf values are immutable, so sharing the pointers is safe. The
	// cache persists across runs: with the measurement protocol running the
	// same short sequence at two copy counts times repetitions, every
	// instruction after the first occurrence hits here instead of the
	// Arch-level cache.
	perf map[*isa.Instr]*uarch.InstrPerf

	// Arenas, reset (not freed) between runs.
	vals     []dynVal
	uops     []dynUop
	readIdx  []int32 // backing store for dynUop read segments
	writeIdx []int32 // backing store for dynUop write segments
	writeLat []int32 // latency per written value, parallel to writeIdx

	// Rename scoreboard: latest renamed value per architectural resource.
	// Register families and status flags are flat arrays (-1 = live-in not
	// yet materialized); memory addresses are arbitrary, so they keep a map
	// that is cleared — not reallocated — between runs.
	regBoard  [isa.NumRegs]int32
	flagBoard [numFlagVals]int32
	memBoard  map[uint64]int32
	produced  [isa.NumRegs]bool

	// Per-instruction temporaries, validity-tracked by epoch so no clearing
	// is needed between instructions.
	tempVal   []int32
	tempEpoch []uint64
	tempGen   uint64

	// Wake-up and scheduler state reused across runs. wnUop/wnNext are the
	// waiter-node arena (one node per read of a not-yet-known value, linked
	// into the value's wake-up list); wakeHeap is a binary min-heap of
	// (readyAt, µop) pairs packed into uint64s; readyQ holds the µops whose
	// wake-up time has arrived, sorted by µop index (program order), with
	// readyScratch/arrivals as its merge buffers; elimReady queues
	// rename-handled µops whose inputs are all known.
	wnUop        []int32
	wnNext       []int32
	wakeHeap     []uint64
	readyQ       []int32
	readyScratch []int32
	arrivals     []int32
	elimReady    []int32
	portLoad     [maxPorts]int32

	initialized bool
}

// New returns a Machine for the given microarchitecture with default
// configuration.
func New(arch *uarch.Arch) *Machine {
	return NewWithConfig(arch, Config{})
}

// NewWithConfig returns a Machine with explicit configuration.
func NewWithConfig(arch *uarch.Arch, cfg Config) *Machine {
	if cfg.SchedulerSize <= 0 {
		cfg.SchedulerSize = 60
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 5_000_000
	}
	// Value-ready times are stored as int32 in the arena; cap the cycle
	// horizon well below that range so they cannot wrap. A simulation this
	// long would never finish anyway — MaxCycles exists to abort runaways.
	if cfg.MaxCycles > 1<<30 {
		cfg.MaxCycles = 1 << 30
	}
	if arch.NumPorts() > maxPorts {
		// The dispatch stage represents port sets as uint16 bitmasks;
		// silently dropping ports would turn their µops into phantom
		// deadlocks, so fail loudly if a generation ever outgrows the mask.
		panic(fmt.Sprintf("pipesim: %s has %d ports, max supported is %d",
			arch.Name(), arch.NumPorts(), maxPorts))
	}
	return &Machine{arch: arch, cfg: cfg}
}

// Arch returns the microarchitecture the machine simulates.
func (m *Machine) Arch() *uarch.Arch { return m.arch }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Clone returns an independent Machine with the same microarchitecture and
// configuration. The clone shares only the (internally synchronized) Arch;
// the arenas, scoreboards and the divider-value regime are per-Machine, so
// clones can run on different goroutines without synchronization.
func (m *Machine) Clone() *Machine {
	return NewWithConfig(m.arch, m.cfg)
}

// SetDividerValues selects the operand-value regime for divider-based
// instructions in subsequent runs.
func (m *Machine) SetDividerValues(v DividerValues) { m.cfg.DividerValues = v }

// Reset clears all per-run state while keeping the arena capacity, so the
// next Run starts from an idle pipeline without reallocating. Run calls it
// automatically; it is exported so tests (and callers that want to verify
// the reuse contract) can exercise it directly. Under race-enabled builds,
// Run additionally verifies the reset invariants, which guards against a
// future slab being added to the Machine without being wired into Reset —
// the failure mode that would leak renamed values across runs.
func (m *Machine) Reset() {
	if !m.initialized {
		m.memBoard = make(map[uint64]int32)
		m.perf = make(map[*isa.Instr]*uarch.InstrPerf)
		m.initialized = true
	}
	m.vals = m.vals[:0]
	m.uops = m.uops[:0]
	m.readIdx = m.readIdx[:0]
	m.writeIdx = m.writeIdx[:0]
	m.writeLat = m.writeLat[:0]
	for i := range m.regBoard {
		m.regBoard[i] = -1
	}
	for i := range m.flagBoard {
		m.flagBoard[i] = -1
	}
	clear(m.memBoard)
	for i := range m.produced {
		m.produced[i] = false
	}
	m.wnUop = m.wnUop[:0]
	m.wnNext = m.wnNext[:0]
	m.wakeHeap = m.wakeHeap[:0]
	m.readyQ = m.readyQ[:0]
	m.readyScratch = m.readyScratch[:0]
	m.arrivals = m.arrivals[:0]
	m.elimReady = m.elimReady[:0]
	m.portLoad = [maxPorts]int32{}
	// tempGen is deliberately NOT reset: temp slots are validated by epoch,
	// and the monotonically increasing generation keeps slots from a
	// previous run invalid without clearing them.
}

// checkResetInvariants panics if any per-run state survived Reset. It is
// called from Run only under race-enabled builds (see raceEnabled), where
// the differential and determinism tests run; a leak here means a renamed
// value from a previous Run could alias into the current one.
func (m *Machine) checkResetInvariants() {
	if len(m.vals) != 0 || len(m.uops) != 0 || len(m.readIdx) != 0 ||
		len(m.writeIdx) != 0 || len(m.writeLat) != 0 ||
		len(m.wnUop) != 0 || len(m.wnNext) != 0 || len(m.wakeHeap) != 0 ||
		len(m.readyQ) != 0 || len(m.arrivals) != 0 || len(m.elimReady) != 0 ||
		len(m.memBoard) != 0 {
		panic("pipesim: Reset left arena or queue state behind")
	}
	for i := range m.regBoard {
		if m.regBoard[i] != -1 {
			panic(fmt.Sprintf("pipesim: Reset left register scoreboard entry %s", isa.Reg(i)))
		}
	}
	for i := range m.flagBoard {
		if m.flagBoard[i] != -1 {
			panic(fmt.Sprintf("pipesim: Reset left flag scoreboard entry %s", isa.Flag(i)))
		}
	}
	for i := range m.produced {
		if m.produced[i] {
			panic(fmt.Sprintf("pipesim: Reset left produced mark for %s", isa.Reg(i)))
		}
	}
	for p, l := range m.portLoad {
		if l != 0 {
			panic(fmt.Sprintf("pipesim: Reset left load on port %d", p))
		}
	}
}

// Run simulates the code sequence starting from an idle pipeline with all
// inputs ready, and returns the performance counters.
func (m *Machine) Run(code asmgen.Sequence) (Counters, error) {
	m.Reset()
	if raceEnabled {
		m.checkResetInvariants()
	}
	penalty, err := m.rename(code)
	if err != nil {
		return Counters{}, err
	}
	c := m.execute()
	c.Cycles += penalty
	return c, nil
}

// MustRun is like Run but panics on error (for code generated from validated
// instruction sets).
func (m *Machine) MustRun(code asmgen.Sequence) Counters {
	c, err := m.Run(code)
	if err != nil {
		panic(err)
	}
	return c
}

// perfFor returns the cached performance description for a variant,
// consulting the Arch only on the first occurrence per Machine.
func (m *Machine) perfFor(in *isa.Instr) *uarch.InstrPerf {
	if p, ok := m.perf[in]; ok {
		return p
	}
	p := m.arch.Perf(in)
	m.perf[in] = p
	return p
}

// newVal appends a renamed value to the arena and returns its index.
func (m *Machine) newVal(ready int32, known bool, dom isa.Domain) int32 {
	idx := idx32(len(m.vals))
	m.vals = append(m.vals, dynVal{ready: ready, waiters: -1, known: known, domain: dom})
	return idx
}

// liveInReg returns the latest renamed value of r's register family,
// materializing a ready live-in value on first touch.
func (m *Machine) liveInReg(r isa.Reg, dom isa.Domain) int32 {
	fam := r.Family()
	if v := m.regBoard[fam]; v >= 0 {
		return v
	}
	v := m.newVal(0, true, dom)
	m.regBoard[fam] = v
	return v
}

// liveInFlag is liveInReg for a single status flag.
func (m *Machine) liveInFlag(f isa.Flag) int32 {
	if v := m.flagBoard[f]; v >= 0 {
		return v
	}
	v := m.newVal(0, true, isa.DomainInt)
	m.flagBoard[f] = v
	return v
}

// liveInMem is liveInReg for a renamed memory slot.
func (m *Machine) liveInMem(addr uint64, dom isa.Domain) int32 {
	if v, ok := m.memBoard[addr]; ok {
		return v
	}
	v := m.newVal(0, true, dom)
	m.memBoard[addr] = v
	return v
}

// growTemps ensures the temp slot tables cover index idx.
func (m *Machine) growTemps(idx int) {
	for len(m.tempVal) <= idx {
		m.tempVal = append(m.tempVal, -1)
		m.tempEpoch = append(m.tempEpoch, 0)
	}
}

// appendWrite records one written value (and its latency) for the µop under
// construction.
func (m *Machine) appendWrite(v, lat int32) {
	m.writeIdx = append(m.writeIdx, v)
	m.writeLat = append(m.writeLat, lat)
}

// rename performs the program-order pre-pass: it decomposes every instruction
// into dynamic µops, resolves register/flag/memory dependencies to renamed
// values, applies zero-idiom and same-register special cases, and computes
// the SSE/AVX transition penalty. All state it builds lives in the Machine's
// arenas; steady-state calls allocate nothing.
func (m *Machine) rename(code asmgen.Sequence) (int, error) {
	penalty := 0
	avxDirty := false
	depMoveCounter := 0
	numPorts := m.arch.NumPorts()

	for _, inst := range code {
		in := inst.Variant
		perf := m.perfFor(in)

		// SSE/AVX transition penalty (Section 5.1.1 explains why blocking
		// instructions are chosen per extension family to avoid this).
		if p := m.arch.SSEAVXPenalty(); p > 0 {
			switch {
			case in.Extension.IsAVX():
				in.ForEachExplicit(func(_ int, op *isa.Operand) bool {
					if op.Class == isa.ClassYMM {
						avxDirty = true
					}
					return true
				})
			case in.Extension.IsSSE() && avxDirty:
				penalty += p
				avxDirty = false
			}
			if in.Mnemonic == "VZEROUPPER" || in.Mnemonic == "VZEROALL" {
				avxDirty = false
			}
		}

		// Same-register override (e.g. SHLD on Skylake, Section 7.3.2).
		sameReg, regCount := allExplicitRegsEqual(inst)
		if perf.SameRegOverride != nil && sameReg && regCount >= 2 {
			perf = perf.SameRegOverride
		}
		zeroIdiom := perf.ZeroIdiom && sameReg && regCount >= 2

		// Move elimination: a register-to-register move whose source is not
		// produced inside the measured code is always eliminated; inside a
		// dependent chain roughly every third move is eliminated (the
		// behaviour the paper reports in Section 5.2.1).
		moveElim := false
		if perf.MoveElim && isRegRegMove(inst) {
			srcOp := inst.Ops[1]
			if !m.produced[srcOp.Reg.Family()] {
				moveElim = true
			} else {
				depMoveCounter++
				moveElim = depMoveCounter%3 == 0
			}
		}

		domain := in.Domain
		m.tempGen++ // invalidates the previous instruction's temp slots

		for ui := range perf.Uops {
			spec := &perf.Uops[ui]
			uix := len(m.uops)
			m.uops = append(m.uops, dynUop{
				divider: spec.Divider,
				divOcc:  idx32(spec.DivOccupancy),
				domain:  domain,
			})
			du := &m.uops[uix]
			mask := portMaskFor(spec.Ports, numPorts)
			if len(spec.Ports) == 0 {
				du.eliminated = true
			}
			if zeroIdiom && perf.ZeroIdiomElim {
				du.eliminated = true
				mask = 0
			}
			if moveElim {
				du.eliminated = true
				mask = 0
			}
			du.portMask = mask
			if spec.Divider && m.cfg.DividerValues == FastDividerValues {
				du.divOcc = idx32(perf.DivOccupancyLowValues)
			}

			// Resolve reads. Store-address µops only depend on the address
			// registers of the memory operand, not on the previous memory
			// contents.
			du.rdStart = idx32(len(m.readIdx))
			for _, ref := range spec.Reads {
				if zeroIdiom && ref.Kind == uarch.ValOperand && in.Operands[ref.Index].Kind == isa.OpReg {
					continue // the idiom breaks the dependency on the register
				}
				m.resolveReads(inst, ref, spec.StoreAddr)
			}
			// Resolve writes (partial-register merges append extra reads).
			du.wrStart = idx32(len(m.writeIdx))
			for wi, ref := range spec.Writes {
				lat := spec.LatencyTo(wi)
				if spec.Load {
					lat += m.arch.LoadLatency()
				}
				if spec.Divider && m.cfg.DividerValues == FastDividerValues && perf.LatencyLowValues > 0 {
					lat = perf.LatencyLowValues
				}
				if lat < 1 && !du.eliminated {
					lat = 1
				}
				m.resolveWrites(inst, ref, domain, idx32(lat))
				if ref.Kind == uarch.ValOperand && ref.Index < len(in.Operands) {
					op := in.Operands[ref.Index]
					if op.Kind == isa.OpReg {
						if r := inst.OperandFor(ref.Index).Reg; r != isa.RegNone {
							m.produced[r.Family()] = true
						}
					}
				}
			}
			du.rdEnd = idx32(len(m.readIdx))
			du.wrEnd = idx32(len(m.writeIdx))

			// A µop never waits for values it produces itself (this can
			// otherwise happen through partial-register merge reads when two
			// written operands alias the same register).
			if du.wrEnd > du.wrStart && du.rdEnd > du.rdStart {
				kept := du.rdStart
				for ri := du.rdStart; ri < du.rdEnd; ri++ {
					v := m.readIdx[ri]
					own := false
					for wi := du.wrStart; wi < du.wrEnd; wi++ {
						if m.writeIdx[wi] == v {
							own = true
							break
						}
					}
					if !own {
						m.readIdx[kept] = v
						kept++
					}
				}
				du.rdEnd = kept
				m.readIdx = m.readIdx[:kept]
			}
		}
	}
	return penalty, nil
}

// resolveReads appends the renamed values a µop read reference consumes to
// the current µop's read segment. addrOnly restricts memory operands to
// their address registers (used for store-address µops, which do not consume
// the previous memory contents).
func (m *Machine) resolveReads(inst *asmgen.Inst, ref uarch.ValRef, addrOnly bool) {
	if ref.Kind == uarch.ValTemp {
		if ref.Index < 0 {
			// Defensive: a read of an impossible temp is treated as ready.
			m.readIdx = append(m.readIdx, m.newVal(0, true, isa.DomainInt))
			return
		}
		m.growTemps(ref.Index)
		if m.tempEpoch[ref.Index] != m.tempGen {
			// A read of a temp that has no producer (defensive): treat as
			// ready.
			m.tempVal[ref.Index] = m.newVal(0, true, isa.DomainInt)
			m.tempEpoch[ref.Index] = m.tempGen
		}
		m.readIdx = append(m.readIdx, m.tempVal[ref.Index])
		return
	}
	in := inst.Variant
	if ref.Index < 0 || ref.Index >= len(in.Operands) {
		return
	}
	spec := &in.Operands[ref.Index]
	conc := inst.OperandFor(ref.Index)
	switch spec.Kind {
	case isa.OpReg:
		r := conc.Reg
		if r == isa.RegNone {
			return
		}
		m.readIdx = append(m.readIdx, m.liveInReg(r, in.Domain))
	case isa.OpMem:
		if conc.Mem == nil {
			return
		}
		if addrOnly {
			m.readIdx = append(m.readIdx, m.liveInReg(conc.Mem.Base, isa.DomainInt))
			return
		}
		// A memory read depends on the address register and on the latest
		// store to the same address (store-to-load forwarding resolves
		// through the renamed memory value).
		m.readIdx = append(m.readIdx, m.liveInReg(conc.Mem.Base, isa.DomainInt))
		m.readIdx = append(m.readIdx, m.liveInMem(conc.Mem.Addr, in.Domain))
	case isa.OpFlags:
		for f := isa.Flag(0); f < isa.NumFlags; f++ {
			if spec.ReadFlags.Has(f) {
				m.readIdx = append(m.readIdx, m.liveInFlag(f))
			}
		}
	}
}

// resolveWrites appends freshly renamed values for a µop write reference to
// the current µop's write segment (with latency lat), and appends any reads
// implied by partial-register merges to the read segment.
func (m *Machine) resolveWrites(inst *asmgen.Inst, ref uarch.ValRef, domain isa.Domain, lat int32) {
	if ref.Kind == uarch.ValTemp {
		v := m.newVal(0, false, domain)
		if ref.Index >= 0 {
			m.growTemps(ref.Index)
			m.tempVal[ref.Index] = v
			m.tempEpoch[ref.Index] = m.tempGen
		}
		m.appendWrite(v, lat)
		return
	}
	in := inst.Variant
	if ref.Index < 0 || ref.Index >= len(in.Operands) {
		return
	}
	spec := &in.Operands[ref.Index]
	conc := inst.OperandFor(ref.Index)
	switch spec.Kind {
	case isa.OpReg:
		r := conc.Reg
		if r == isa.RegNone {
			return
		}
		// Writing an 8- or 16-bit part of a general-purpose register merges
		// with the previous contents (the cause of partial-register stalls,
		// Section 5.2.1); the merge is modelled as an extra read of the old
		// value.
		if spec.Class == isa.ClassGPR8 || spec.Class == isa.ClassGPR16 {
			m.readIdx = append(m.readIdx, m.liveInReg(r, in.Domain))
		}
		v := m.newVal(0, false, domain)
		m.regBoard[r.Family()] = v
		m.appendWrite(v, lat)
	case isa.OpMem:
		if conc.Mem == nil {
			return
		}
		m.readIdx = append(m.readIdx, m.liveInReg(conc.Mem.Base, isa.DomainInt))
		v := m.newVal(0, false, domain)
		m.memBoard[conc.Mem.Addr] = v
		m.appendWrite(v, lat)
	case isa.OpFlags:
		for f := isa.Flag(0); f < isa.NumFlags; f++ {
			if spec.WriteFlags.Has(f) {
				v := m.newVal(0, false, isa.DomainInt)
				m.flagBoard[f] = v
				m.appendWrite(v, lat)
			}
		}
	}
}

// allExplicitRegsEqual reports whether all explicit register operands of the
// instruction use the same concrete register, and how many there are.
func allExplicitRegsEqual(inst *asmgen.Inst) (bool, int) {
	var first isa.Reg
	count := 0
	equal := true
	inst.Variant.ForEachExplicit(func(i int, spec *isa.Operand) bool {
		if spec.Kind != isa.OpReg {
			return true
		}
		r := inst.Ops[i].Reg
		count++
		if count == 1 {
			first = r
		} else if r != first {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		return false, count
	}
	return count > 0, count
}

// isRegRegMove reports whether the concrete instruction is a plain
// register-to-register move with two explicit register operands.
func isRegRegMove(inst *asmgen.Inst) bool {
	expl := 0
	var dst, src *isa.Operand
	inst.Variant.ForEachExplicit(func(i int, spec *isa.Operand) bool {
		switch i {
		case 0:
			dst = spec
		case 1:
			src = spec
		}
		expl++
		return expl <= 2
	})
	if expl != 2 {
		return false
	}
	return dst.Kind == isa.OpReg && src.Kind == isa.OpReg &&
		dst.Write && !dst.Read && src.Read && !src.Write
}

// bypassDelay returns the extra forwarding latency when a value produced in
// domain from is consumed in domain to (Section 5.2.1: bypass delays between
// integer and floating-point SIMD operations).
func bypassDelay(from, to isa.Domain) int {
	if from == to {
		return 0
	}
	if (from == isa.DomainVecInt && to == isa.DomainFP) || (from == isa.DomainFP && to == isa.DomainVecInt) {
		return 1
	}
	return 0
}

// wireUop computes the wake-up bookkeeping for a µop at issue time: pending
// (reads whose producer has not yet dispatched) and readyAt (the latest ready
// time over the already-known reads, bypass-adjusted for port-bound µops).
// Every unknown read registers a waiter node on the value, so the µop is
// notified — instead of re-polled — when the producer dispatches. Returns the
// pending count.
func (m *Machine) wireUop(ui int32, u *dynUop) int32 {
	pending := int32(0)
	readyAt := int32(0)
	for ri := u.rdStart; ri < u.rdEnd; ri++ {
		v := &m.vals[m.readIdx[ri]]
		if v.known {
			t := v.ready
			if !u.eliminated {
				t += idx32(bypassDelay(v.domain, u.domain))
			}
			if t > readyAt {
				readyAt = t
			}
			continue
		}
		pending++
		m.wnUop = append(m.wnUop, ui)
		m.wnNext = append(m.wnNext, v.waiters)
		v.waiters = idx32(len(m.wnUop) - 1)
	}
	u.pending = pending
	u.readyAt = readyAt
	return pending
}

// wake delivers a now-known value to every µop waiting on it: the consumer's
// readyAt absorbs the value's ready time (plus the bypass delay between the
// producing and consuming domains for port-bound µops) and its pending count
// drops. The last input's arrival moves the µop onward: port-bound µops enter
// the wake-up heap keyed by their final readyAt, rename-handled µops enter
// the completion queue. The waiter list is consumed exactly once.
func (m *Machine) wake(vi int32) {
	v := &m.vals[vi]
	for wi := v.waiters; wi >= 0; wi = m.wnNext[wi] {
		ui := m.wnUop[wi]
		u := &m.uops[ui]
		t := v.ready
		if !u.eliminated {
			t += idx32(bypassDelay(v.domain, u.domain))
		}
		if t > u.readyAt {
			u.readyAt = t
		}
		if u.pending--; u.pending == 0 {
			if u.eliminated {
				m.elimReady = append(m.elimReady, ui)
			} else {
				m.pushWake(u.readyAt, ui)
			}
		}
	}
	v.waiters = -1
}

// pushWake inserts a (readyAt, µop) pair into the wake-up min-heap. The pair
// is packed into one uint64 with readyAt in the high bits, so heap order is
// readyAt first, µop index (program order) second.
func (m *Machine) pushWake(readyAt, ui int32) {
	h := append(m.wakeHeap, uint64(uint32(readyAt))<<32|uint64(uint32(ui)))
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	m.wakeHeap = h
}

// popWake removes the minimum entry of the wake-up heap.
func (m *Machine) popWake() {
	h := m.wakeHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h[r] < h[l] {
			small = r
		}
		if h[i] <= h[small] {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	m.wakeHeap = h
}

// execute runs the issue/dispatch loop. It is event-driven at both
// granularities: within a cycle, dispatch walks only the ready queue — µops
// whose last input arrived (wake-up lists keyed by producing value replace
// the per-cycle rescan of the whole scheduler window) — and across cycles,
// spans in which provably nothing can issue, complete or dispatch are skipped
// in one step to the next wake-up event.
func (m *Machine) execute() Counters {
	numPorts := m.arch.NumPorts()
	c := Counters{PortUops: make([]int, numPorts)}
	c.IssuedUops = len(m.uops)

	issueWidth := m.arch.IssueWidth()
	schedSize := m.cfg.SchedulerSize
	allPorts := uint16(1)<<uint(numPorts) - 1

	nextIssue := 0     // next µop (program order) to issue
	schedCount := 0    // issued µops still waiting for an execution port
	elimWaiting := 0   // issued rename-handled µops not yet completed
	dividerFreeAt := 0 // next cycle the divider can accept a µop
	finish := 0

	// readyUnion conservatively over-approximates the union of the port
	// masks in the ready queue: once dispatch has claimed every port in it,
	// no remaining ready µop can dispatch this cycle and the walk stops. It
	// is recomputed exactly on every full walk.
	var readyUnion uint16

	cycle := 0
	idleCycles := 0
	for cycle < m.cfg.MaxCycles {
		// Issue stage: deliver up to issueWidth µops into the scheduler (or
		// complete them directly if they need no execution port). The
		// scheduler window counts only µops still waiting for dispatch; a
		// µop's entry is reclaimed at the end of its dispatch cycle (see
		// Config.SchedulerSize).
		issued := 0
		for nextIssue < len(m.uops) && issued < issueWidth && schedCount < schedSize {
			ui := idx32(nextIssue)
			nextIssue++
			issued++
			u := &m.uops[ui]
			if u.eliminated {
				c.ElimUops++
				elimWaiting++
				if m.wireUop(ui, u) == 0 {
					m.elimReady = append(m.elimReady, ui)
				}
				continue
			}
			schedCount++
			if m.wireUop(ui, u) == 0 {
				if u.readyAt <= idx32(cycle) {
					// Ready at issue (the common case for independent
					// code): skip the heap round-trip, the µop arrives
					// this very cycle. Issue order is program order, so
					// these arrivals are pre-sorted.
					m.arrivals = append(m.arrivals, ui)
				} else {
					m.pushWake(u.readyAt, ui)
				}
			}
		}

		// Rename-handled µops complete as soon as their inputs are known;
		// their outputs are ready when their inputs are (zero latency, no
		// bypass). Completing one may wake further rename-handled µops,
		// which complete in the same cycle (the queue grows mid-walk),
		// matching the in-order scan this replaces: a rename-time chain
		// resolves in one cycle.
		for ei := 0; ei < len(m.elimReady); ei++ {
			ui := m.elimReady[ei]
			u := &m.uops[ui]
			ready := idx32(cycle)
			if u.readyAt > ready {
				ready = u.readyAt
			}
			for wi := u.wrStart; wi < u.wrEnd; wi++ {
				vi := m.writeIdx[wi]
				v := &m.vals[vi]
				v.ready = ready
				v.known = true
				v.domain = u.domain
				if v.waiters >= 0 {
					m.wake(vi)
				}
			}
			if int(ready) > finish {
				finish = int(ready)
			}
			elimWaiting--
		}
		m.elimReady = m.elimReady[:0]

		// Collect the µops whose wake-up time has arrived (joining any
		// ready-at-issue arrivals from above) and merge them into the ready
		// queue in program order (the heap yields them in ready-time order,
		// so a sort is needed before the merge).
		popped := false
		for len(m.wakeHeap) > 0 {
			top := m.wakeHeap[0]
			if int(top>>32) > cycle {
				break
			}
			m.popWake()
			m.arrivals = append(m.arrivals, int32(uint32(top)))
			popped = true
		}
		if len(m.arrivals) > 0 {
			if popped {
				// Heap pops arrive in ready-time order and may interleave
				// with this cycle's pre-sorted issue-direct arrivals; only
				// then is a sort needed.
				slices.Sort(m.arrivals)
			}
			for _, ui := range m.arrivals {
				readyUnion |= m.uops[ui].portMask
			}
			if len(m.readyQ) == 0 {
				m.readyQ, m.arrivals = m.arrivals, m.readyQ
			} else {
				merged := m.readyScratch[:0]
				i, j := 0, 0
				for i < len(m.readyQ) && j < len(m.arrivals) {
					if m.readyQ[i] < m.arrivals[j] {
						merged = append(merged, m.readyQ[i])
						i++
					} else {
						merged = append(merged, m.arrivals[j])
						j++
					}
				}
				merged = append(merged, m.readyQ[i:]...)
				merged = append(merged, m.arrivals[j:]...)
				m.readyQ, m.readyScratch = merged, m.readyQ[:0]
			}
			m.arrivals = m.arrivals[:0]
		}

		// Dispatch stage: oldest-first over the ready µops only, one µop per
		// port per cycle. Identical port claims to the old full-window scan:
		// the ready queue is in program order and non-ready µops could never
		// claim a port anyway.
		var takenMask uint16
		dispatchedAny := false
		readyDivBlocked := false
		if len(m.readyQ) > 0 {
			kept := m.readyQ[:0]
			var keptUnion uint16
			fullWalk := true
			for qi, n := 0, len(m.readyQ); qi < n; qi++ {
				if readyUnion&^takenMask == 0 {
					// Every port any ready µop could use is taken: the rest
					// of the queue carries over to the next cycle as is.
					kept = append(kept, m.readyQ[qi:n]...)
					fullWalk = false
					break
				}
				ui := m.readyQ[qi]
				u := &m.uops[ui]
				avail := u.portMask &^ takenMask
				if avail == 0 {
					kept = append(kept, ui)
					keptUnion |= u.portMask
					continue
				}
				if u.divider && cycle < dividerFreeAt {
					kept = append(kept, ui)
					keptUnion |= u.portMask
					readyDivBlocked = true
					continue
				}
				p := choosePort(avail, &m.portLoad)
				takenMask |= 1 << uint(p)
				m.portLoad[p]++
				c.PortUops[p]++
				c.TotalUops++
				dispatchedAny = true
				schedCount--
				if u.divider {
					occ := int(u.divOcc)
					if occ < 1 {
						occ = 1
					}
					dividerFreeAt = cycle + occ
				}
				// Write latencies were clamped to >= 1 at rename, so dispatch
				// needs no re-clamp here.
				for wi := u.wrStart; wi < u.wrEnd; wi++ {
					vi := m.writeIdx[wi]
					v := &m.vals[vi]
					v.ready = idx32(cycle) + m.writeLat[wi]
					v.known = true
					v.domain = u.domain
					if int(v.ready) > finish {
						finish = int(v.ready)
					}
					if v.waiters >= 0 {
						m.wake(vi)
					}
				}
				if u.wrStart == u.wrEnd && cycle+1 > finish {
					finish = cycle + 1
				}
				if takenMask == allPorts {
					kept = append(kept, m.readyQ[qi+1:n]...)
					fullWalk = false
					break
				}
			}
			m.readyQ = kept
			if fullWalk {
				readyUnion = keptUnion
			}
		}

		cycle++
		if nextIssue >= len(m.uops) && schedCount == 0 && elimWaiting == 0 {
			break
		}
		if issued == 0 && !dispatchedAny {
			// Deadlock guard: µops stuck waiting for values that are blocked
			// forever (a modelling bug rather than a property of the code
			// under test); a divider occupancy can legitimately stall
			// dispatch for a bounded number of cycles, so allow a generous
			// margin.
			idleCycles++
			if idleCycles > 10000 {
				break
			}
			// Event-driven fast-forward: an idle cycle changes nothing —
			// issue stays blocked (the scheduler did not drain), pending
			// eliminated µops keep waiting for a dispatch, and no value
			// becomes known. The next possible event falls out of the
			// wake-up structures: the heap's earliest entry, or the divider
			// becoming free when a ready divider µop is blocked on it. µops
			// still pending need another dispatch first, so they cannot
			// precede that event; ready µops whose ports are unclaimable
			// (an empty port mask on this generation) never produce one.
			// The skipped cycles are charged against the same deadlock
			// budget the one-by-one walk would have used; when no event can
			// ever occur, the huge skip runs the budget out, as before.
			next := -1
			if len(m.wakeHeap) > 0 {
				next = int(m.wakeHeap[0] >> 32)
			}
			if readyDivBlocked && (next < 0 || dividerFreeAt < next) {
				next = dividerFreeAt
			}
			skip := 1 << 30
			if next >= 0 {
				skip = next - cycle
			}
			if skip > 0 {
				if maxIdle := 10001 - idleCycles; skip > maxIdle {
					skip = maxIdle // the guard fires mid-wait, as before
				}
				if cycle+skip > m.cfg.MaxCycles {
					skip = m.cfg.MaxCycles - cycle
				}
				if skip > 0 {
					cycle += skip
					idleCycles += skip
					if idleCycles > 10000 {
						break
					}
				}
			}
		} else {
			idleCycles = 0
		}
	}
	// Return queue capacity to the Machine (a deadlocked run may leave
	// entries behind; Reset truncates them either way).
	m.readyQ = m.readyQ[:0]
	m.arrivals = m.arrivals[:0]
	m.wakeHeap = m.wakeHeap[:0]
	m.elimReady = m.elimReady[:0]

	if finish < cycle {
		finish = cycle
	}
	c.Cycles = finish
	return c
}

// portMaskFor converts a µop's allowed-port list into a bitmask, dropping
// ports the generation does not have (matching the old slice-walking
// choosePort, which skipped them).
func portMaskFor(ports []int, numPorts int) uint16 {
	var mask uint16
	for _, p := range ports {
		if p >= 0 && p < numPorts {
			mask |= 1 << uint(p)
		}
	}
	return mask
}

// choosePort picks the free, allowed port with the lowest accumulated load
// (a simple load-balancing heuristic similar in spirit to the hardware's
// port-binding policy) from a non-empty availability mask. Ties go to the
// lowest-numbered port; the µop tables list ports in ascending order (pinned
// by TestPortSetsAscending in package uarch), so this reproduces the
// first-listed-port-wins tie-break of the earlier slice-walking
// implementation exactly.
func choosePort(avail uint16, load *[maxPorts]int32) int {
	best := -1
	for mk := avail; mk != 0; mk &= mk - 1 {
		p := bits.TrailingZeros16(mk)
		if best < 0 || load[p] < load[best] {
			best = p
		}
	}
	return best
}

// Validate checks that every instruction in the sequence belongs to the
// machine's instruction set; it is used by the measurement harness before
// running benchmarks.
func (m *Machine) Validate(code asmgen.Sequence) error {
	set := m.arch.InstrSet()
	for i, inst := range code {
		if set.Lookup(inst.Variant.Name) == nil {
			return fmt.Errorf("pipesim: %s: instruction %d (%s) is not available on this microarchitecture",
				m.arch.Name(), i, inst.Variant.Name)
		}
	}
	return nil
}
