//go:build race

package pipesim

import (
	"fmt"
	"math"
)

// raceEnabled gates the Reset invariant checks: they run exactly where the
// determinism and differential suites run (make ci uses -race), and stay out
// of the production hot path.
const raceEnabled = true

// assert32 panics if v does not fit in an int32. It runs only in race builds
// (where the determinism and differential suites run), so arena indices are
// range-checked exactly where correctness is validated and free in
// production builds.
func assert32(v int) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		panic(fmt.Sprintf("pipesim: arena index %d overflows int32", v))
	}
}
