//go:build race

package pipesim

// raceEnabled gates the Reset invariant checks: they run exactly where the
// determinism and differential suites run (make ci uses -race), and stay out
// of the production hot path.
const raceEnabled = true
