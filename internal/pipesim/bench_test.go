package pipesim

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Benchmarks for the simulator itself: the cost of simulating the three code
// shapes the characterization algorithms generate most often (independent
// throughput sequences, serial dependency chains, and port-blocking
// sequences).

func benchSequence(b *testing.B, seq asmgen.Sequence) {
	b.Helper()
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunIndependentALU(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	var seq asmgen.Sequence
	for i := 0; i < 256; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	benchSequence(b, seq)
}

func BenchmarkRunDependencyChain(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	imul := arch.InstrSet().Lookup("IMUL_R64_R64")
	var seq asmgen.Sequence
	for i := 0; i < 256; i++ {
		seq = append(seq, asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
	}
	benchSequence(b, seq)
}

func BenchmarkRunBlockingSequence(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	pshufd := arch.InstrSet().Lookup("PSHUFD_XMM_XMM_I8")
	movq2dq := arch.InstrSet().Lookup("MOVQ2DQ_XMM_MM")
	var seq asmgen.Sequence
	blocker := asmgen.MustInst(pshufd, asmgen.RegOperand(isa.XMM1), asmgen.RegOperand(isa.XMM2), asmgen.ImmOperand(0x1b))
	for i := 0; i < 64; i++ {
		seq = append(seq, blocker)
	}
	seq = append(seq, asmgen.MustInst(movq2dq, asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.MM0)))
	benchSequence(b, seq)
}

func BenchmarkRunLoadStoreMix(b *testing.B) {
	arch := uarch.Get(uarch.Skylake)
	store := arch.InstrSet().Lookup("MOV_M64_R64")
	load := arch.InstrSet().Lookup("MOV_R64_M64")
	var seq asmgen.Sequence
	for i := 0; i < 128; i++ {
		addr := uint64(0x1000 + 64*i)
		seq = append(seq, asmgen.MustInst(store, asmgen.MemOperand(isa.RSI, addr), asmgen.RegOperand(isa.RBX)))
		seq = append(seq, asmgen.MustInst(load, asmgen.RegOperand(isa.RCX), asmgen.MemOperand(isa.RSI, addr)))
	}
	benchSequence(b, seq)
}
