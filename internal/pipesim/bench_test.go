package pipesim

import (
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/uarch"
)

// Benchmarks for the simulator itself: the cost of simulating the three code
// shapes the characterization algorithms generate most often (independent
// throughput sequences, serial dependency chains, and port-blocking
// sequences).

func benchSequence(b *testing.B, seq asmgen.Sequence) {
	b.Helper()
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// The sequence builders live in hotpath_test.go, where the
// allocation-regression tests pin the same four shapes.

func BenchmarkRunIndependentALU(b *testing.B) {
	benchSequence(b, seqIndependentALU(uarch.Get(uarch.Skylake)))
}

func BenchmarkRunDependencyChain(b *testing.B) {
	benchSequence(b, seqDependencyChain(uarch.Get(uarch.Skylake)))
}

func BenchmarkRunBlockingSequence(b *testing.B) {
	benchSequence(b, seqBlockingSequence(uarch.Get(uarch.Skylake)))
}

func BenchmarkRunLoadStoreMix(b *testing.B) {
	benchSequence(b, seqLoadStoreMix(uarch.Get(uarch.Skylake)))
}

// The two scheduler-pressure shapes: a window saturated with ready µops
// behind a single-port bottleneck, and a window full of late-waking
// consumers. They make the per-cycle cost of the dispatch stage itself
// visible, which the four shapes above under-stress (their windows stay
// small or drain quickly).

func BenchmarkRunWideIndependentWindow(b *testing.B) {
	benchSequence(b, seqWideIndependentWindow(uarch.Get(uarch.Skylake)))
}

func BenchmarkRunScatteredDeps(b *testing.B) {
	benchSequence(b, seqScatteredDeps(uarch.Get(uarch.Skylake)))
}
