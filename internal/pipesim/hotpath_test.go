package pipesim

import (
	"math/rand"
	"testing"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// Tests for the allocation-free hot path: steady-state Run must not allocate
// beyond the returned counters, and the per-Machine arenas must never leak
// state between runs or alias between forked Machines.

// The four benchmark code shapes (shared with bench_test.go).

func seqIndependentALU(arch *uarch.Arch) asmgen.Sequence {
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	var seq asmgen.Sequence
	for i := 0; i < 256; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	return seq
}

func seqDependencyChain(arch *uarch.Arch) asmgen.Sequence {
	imul := arch.InstrSet().Lookup("IMUL_R64_R64")
	var seq asmgen.Sequence
	for i := 0; i < 256; i++ {
		seq = append(seq, asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
	}
	return seq
}

func seqBlockingSequence(arch *uarch.Arch) asmgen.Sequence {
	pshufd := arch.InstrSet().Lookup("PSHUFD_XMM_XMM_I8")
	movq2dq := arch.InstrSet().Lookup("MOVQ2DQ_XMM_MM")
	var seq asmgen.Sequence
	blocker := asmgen.MustInst(pshufd, asmgen.RegOperand(isa.XMM1), asmgen.RegOperand(isa.XMM2), asmgen.ImmOperand(0x1b))
	for i := 0; i < 64; i++ {
		seq = append(seq, blocker)
	}
	return append(seq, asmgen.MustInst(movq2dq, asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.MM0)))
}

// seqWideIndependentWindow keeps the scheduler window full of *ready* µops:
// IMUL is restricted to one execution port on every modelled generation, so
// the front end (4 µops/cycle) outruns dispatch (1 µop/cycle) and the window
// saturates at its 60-entry capacity with µops whose inputs are long since
// available. A dispatch stage that rescans the whole window pays O(window)
// per cycle here for one dispatch of progress.
func seqWideIndependentWindow(arch *uarch.Arch) asmgen.Sequence {
	imul := arch.InstrSet().Lookup("IMUL_R64_R64")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	var seq asmgen.Sequence
	for i := 0; i < 256; i++ {
		r := regs[i%len(regs)]
		seq = append(seq, asmgen.MustInst(imul, asmgen.RegOperand(r), asmgen.RegOperand(r)))
	}
	return seq
}

// seqScatteredDeps fills the window with *late-waking* consumers: a serial
// IMUL chain on RAX interleaved with fans of ADDs that each read the chain's
// latest value. The consumers issue long before their input is ready and sit
// in the window for many cycles; a scanning dispatch stage re-walks every
// waiting µop's operands every cycle, while wake-up lists touch each consumer
// only when the producing IMUL actually dispatches.
func seqScatteredDeps(arch *uarch.Arch) asmgen.Sequence {
	imul := arch.InstrSet().Lookup("IMUL_R64_R64")
	add := arch.InstrSet().Lookup("ADD_R64_R64")
	consumers := []isa.Reg{isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9, isa.R10,
		isa.R11, isa.R12, isa.R13, isa.R14, isa.R15}
	var seq asmgen.Sequence
	for block := 0; block < 16; block++ {
		seq = append(seq, asmgen.MustInst(imul, asmgen.RegOperand(isa.RAX), asmgen.RegOperand(isa.RAX)))
		for _, r := range consumers {
			seq = append(seq, asmgen.MustInst(add, asmgen.RegOperand(r), asmgen.RegOperand(isa.RAX)))
		}
	}
	return seq
}

func seqLoadStoreMix(arch *uarch.Arch) asmgen.Sequence {
	store := arch.InstrSet().Lookup("MOV_M64_R64")
	load := arch.InstrSet().Lookup("MOV_R64_M64")
	var seq asmgen.Sequence
	for i := 0; i < 128; i++ {
		addr := uint64(0x1000 + 64*i)
		seq = append(seq, asmgen.MustInst(store, asmgen.MemOperand(isa.RSI, addr), asmgen.RegOperand(isa.RBX)))
		seq = append(seq, asmgen.MustInst(load, asmgen.RegOperand(isa.RCX), asmgen.MemOperand(isa.RSI, addr)))
	}
	return seq
}

// TestRunSteadyStateAllocs pins the allocation-free contract: once the
// arenas have grown to a sequence's working-set size, Run allocates only the
// returned Counters.PortUops slice.
func TestRunSteadyStateAllocs(t *testing.T) {
	arch := uarch.Get(uarch.Skylake)
	shapes := []struct {
		name string
		seq  asmgen.Sequence
	}{
		{"IndependentALU", seqIndependentALU(arch)},
		{"DependencyChain", seqDependencyChain(arch)},
		{"BlockingSequence", seqBlockingSequence(arch)},
		{"LoadStoreMix", seqLoadStoreMix(arch)},
		{"WideIndependentWindow", seqWideIndependentWindow(arch)},
		{"ScatteredDeps", seqScatteredDeps(arch)},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			m := New(arch)
			m.MustRun(shape.seq) // grow the arenas to steady state
			allocs := testing.AllocsPerRun(10, func() {
				m.MustRun(shape.seq)
			})
			// One allocation is inherent (Counters.PortUops); allow one more
			// for incidental runtime noise.
			if allocs > 2 {
				t.Errorf("steady-state Run allocates %.1f times per call, want <= 2", allocs)
			}
		})
	}
}

// randomSequences builds deterministic pseudo-random sequences from a pool
// of concrete instructions covering the simulator's special cases: ALU and
// multiply chains, eliminable moves, zero idioms, partial-register merges,
// loads/stores with overlapping addresses, flag producers/consumers, the
// divider, domain-crossing vector mixes and MMX transfers.
func randomSequences(t *testing.T, arch *uarch.Arch, n int, rng *rand.Rand) []asmgen.Sequence {
	t.Helper()
	lookup := func(name string) *isa.Instr {
		in := arch.InstrSet().Lookup(name)
		if in == nil {
			t.Fatalf("variant %s missing on %s", name, arch.Name())
		}
		return in
	}
	gprs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}
	xmms := []isa.Reg{isa.XMM0, isa.XMM1, isa.XMM2, isa.XMM3, isa.XMM4, isa.XMM5}

	var pool []*asmgen.Inst
	addInst := func(in *asmgen.Inst) { pool = append(pool, in) }
	add := lookup("ADD_R64_R64")
	imul := lookup("IMUL_R64_R64")
	mov := lookup("MOV_R64_R64")
	mov8 := lookup("MOV_R8_I8")
	pxor := lookup("PXOR_XMM_XMM")
	paddd := lookup("PADDD_XMM_XMM")
	addps := lookup("ADDPS_XMM_XMM")
	pshufd := lookup("PSHUFD_XMM_XMM_I8")
	movq2dq := lookup("MOVQ2DQ_XMM_MM")
	div := lookup("DIV_R64")
	store := lookup("MOV_M64_R64")
	load := lookup("MOV_R64_M64")
	for _, a := range gprs {
		for _, b := range gprs[:4] {
			addInst(asmgen.MustInst(add, asmgen.RegOperand(a), asmgen.RegOperand(b)))
			addInst(asmgen.MustInst(mov, asmgen.RegOperand(a), asmgen.RegOperand(b)))
		}
		addInst(asmgen.MustInst(imul, asmgen.RegOperand(a), asmgen.RegOperand(a)))
	}
	addInst(asmgen.MustInst(mov8, asmgen.RegOperand(isa.AL), asmgen.ImmOperand(1)))
	addInst(asmgen.MustInst(mov8, asmgen.RegOperand(isa.BL), asmgen.ImmOperand(2)))
	for _, x := range xmms {
		addInst(asmgen.MustInst(pxor, asmgen.RegOperand(x), asmgen.RegOperand(x))) // zero idiom
		addInst(asmgen.MustInst(paddd, asmgen.RegOperand(x), asmgen.RegOperand(xmms[0])))
		addInst(asmgen.MustInst(addps, asmgen.RegOperand(x), asmgen.RegOperand(xmms[1])))
		addInst(asmgen.MustInst(pshufd, asmgen.RegOperand(x), asmgen.RegOperand(xmms[2]), asmgen.ImmOperand(0x1b)))
	}
	addInst(asmgen.MustInst(movq2dq, asmgen.RegOperand(isa.XMM3), asmgen.RegOperand(isa.MM0)))
	addInst(asmgen.MustInst(div, asmgen.RegOperand(isa.RBX)))
	for i := 0; i < 4; i++ {
		addr := uint64(0x2000 + 8*i)
		addInst(asmgen.MustInst(store, asmgen.MemOperand(isa.RSI, addr), asmgen.RegOperand(isa.RBX)))
		addInst(asmgen.MustInst(load, asmgen.RegOperand(isa.RCX), asmgen.MemOperand(isa.RSI, addr)))
	}

	seqs := make([]asmgen.Sequence, n)
	for i := range seqs {
		length := 1 + rng.Intn(40)
		seq := make(asmgen.Sequence, 0, length)
		for j := 0; j < length; j++ {
			seq = append(seq, pool[rng.Intn(len(pool))])
		}
		seqs[i] = seq
	}
	return seqs
}

func countersEqual(a, b Counters) bool {
	if a.Cycles != b.Cycles || a.TotalUops != b.TotalUops ||
		a.IssuedUops != b.IssuedUops || a.ElimUops != b.ElimUops ||
		len(a.PortUops) != len(b.PortUops) {
		return false
	}
	for i := range a.PortUops {
		if a.PortUops[i] != b.PortUops[i] {
			return false
		}
	}
	return true
}

// TestRunDifferentialAcrossForks runs 200 random sequences through a parent
// Machine and a worker-style fork (Clone) and requires identical counters:
// the arenas of parent and fork must not alias, and reused arena state must
// not bleed from one Run into the next. The parent is deliberately kept
// dirty by interleaving unrelated runs.
func TestRunDifferentialAcrossForks(t *testing.T) {
	t.Parallel()
	for _, gen := range []uarch.Generation{uarch.Skylake, uarch.SandyBridge} {
		gen := gen
		t.Run(gen.String(), func(t *testing.T) {
			t.Parallel()
			arch := uarch.Get(gen)
			rng := rand.New(rand.NewSource(0x5eed + int64(gen)))
			seqs := randomSequences(t, arch, 200, rng)

			parent := New(arch)
			dirt := seqLoadStoreMix(arch)
			parent.MustRun(dirt) // leave populated arenas behind
			fork := parent.Clone()

			// The scheduler-pressure shapes join the random pool: they keep
			// the 60-entry window saturated (wide-independent) or full of
			// late-waking consumers (scattered deps), stressing the wake-up
			// list/ready-queue machinery far harder than random short
			// sequences do.
			seqs = append(seqs,
				seqWideIndependentWindow(arch),
				seqScatteredDeps(arch),
				seqIndependentALU(arch),
				seqDependencyChain(arch),
				seqBlockingSequence(arch))

			for i, seq := range seqs {
				want := parent.MustRun(seq)
				got := fork.MustRun(seq)
				if !countersEqual(want, got) {
					t.Fatalf("sequence %d: parent %+v, fork %+v", i, want, got)
				}
				// Re-running on the same dirty Machine must reproduce the
				// counters exactly (no state leaks across Run calls).
				if again := parent.MustRun(seq); !countersEqual(want, again) {
					t.Fatalf("sequence %d: first run %+v, rerun %+v", i, want, again)
				}
				if i%7 == 0 {
					parent.MustRun(dirt) // perturb the parent's arenas only
				}
			}
		})
	}
}

// TestResetClearsState exercises the exported Reset directly: a Reset
// machine must produce the same counters as a brand-new one.
func TestResetClearsState(t *testing.T) {
	t.Parallel()
	arch := uarch.Get(uarch.Skylake)
	m := New(arch)
	seq := seqBlockingSequence(arch)
	want := New(arch).MustRun(seq)
	m.MustRun(seqLoadStoreMix(arch))
	m.Reset()
	m.checkResetInvariants() // must hold in every build, not only -race
	if got := m.MustRun(seq); !countersEqual(want, got) {
		t.Fatalf("after Reset: got %+v, want %+v", got, want)
	}
}
