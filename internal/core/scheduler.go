package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
)

// This file implements the sharded characterization scheduler. Every
// instruction variant's measurement is independent of the others, but the
// stack that performs it is stateful: the simulator's divider-value regime is
// switched mid-measurement and its rename/dispatch state lives in reusable
// per-Machine arenas, the measurement harness reuses its repeated-sequence
// buffers, the memory arena hands out addresses monotonically, and the
// chain-latency cache fills as latencies are measured. Sharding therefore
// gives each worker its own complete simulator/harness/characterizer stack
// instead of locking a shared one; the only state shared between workers is
// the blocking-instruction set, which is discovered once up front and
// read-only afterwards (and the target Arch, whose perf-description cache is
// internally synchronized and lock-free on the read path).

// Fork returns a Characterizer with its own independent simulator and
// measurement harness, sharing only the target microarchitecture and the
// already-discovered blocking-instruction set (which is read-only after
// discovery). The fork can be used on another goroutine without
// synchronization.
func (c *Characterizer) Fork() (*Characterizer, error) {
	h, err := c.gen.h.Fork()
	if err != nil {
		return nil, fmt.Errorf("core: forking characterizer: %w", err)
	}
	nc := New(h)
	nc.blocking = c.blocking
	// Chain-instruction latencies are deterministic calibration values, so
	// the fork can start from the parent's cache instead of re-measuring
	// them. poolMu serializes the copy against a concurrent releaseFork
	// merging latencies back into the parent.
	c.poolMu.Lock()
	for name, lat := range c.gen.chainLat {
		nc.gen.chainLat[name] = lat
	}
	c.poolMu.Unlock()
	return nc, nil
}

// acquireFork returns a worker Characterizer from the pool: a warm one —
// populated simulator arenas, memoized perf descriptions, grown repeat
// buffers, filled chain-latency cache — if a previous run returned one, or a
// fresh Fork otherwise. The fork is exclusively owned until releaseFork.
// Per-variant results do not depend on the warmth of the stack that measures
// them (the resume-invariance and fork-differential tests pin this), so a
// pooled fork and a fresh fork are interchangeable.
func (c *Characterizer) acquireFork() (*Characterizer, error) {
	c.poolMu.Lock()
	if c.pool == nil {
		c.pool = measure.NewPool(c.gen.h)
		c.poolChars = make(map[*measure.Harness]*Characterizer)
	}
	pool := c.pool
	c.poolMu.Unlock()

	h, _, err := pool.Get()
	if err != nil {
		return nil, fmt.Errorf("core: forking characterizer: %w", err)
	}

	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	fc := c.poolChars[h]
	if fc == nil {
		fc = New(h)
		c.poolChars[h] = fc
	}
	// The blocking set may have been discovered (or re-pointed) since this
	// fork was parked; chain latencies are deterministic calibration values,
	// so top the fork's cache up with anything the parent has learned since.
	fc.blocking = c.blocking
	for name, lat := range c.gen.chainLat {
		if _, ok := fc.gen.chainLat[name]; !ok {
			fc.gen.chainLat[name] = lat
		}
	}
	return fc, nil
}

// releaseFork parks a fork obtained from acquireFork back into the pool and
// folds freshly measured chain latencies back into the parent's cache, so
// later runs (on any fork) start warmer. Must be called from a single
// goroutine per fork after its workers have finished.
func (c *Characterizer) releaseFork(fc *Characterizer) {
	if fc == nil {
		return
	}
	c.poolMu.Lock()
	for name, lat := range fc.gen.chainLat {
		if _, ok := c.gen.chainLat[name]; !ok {
			c.gen.chainLat[name] = lat
		}
	}
	pool := c.pool
	c.poolMu.Unlock()
	pool.Put(fc.gen.h)
}

// PoolStats reports how effective the fork pool has been; zero-valued until
// the first parallel run.
func (c *Characterizer) PoolStats() measure.PoolStats {
	c.poolMu.Lock()
	pool := c.pool
	c.poolMu.Unlock()
	if pool == nil {
		return measure.PoolStats{}
	}
	return pool.Stats()
}

// resolveInstrs returns the instruction variants selected by opts, in the
// deterministic order they are characterized and reported in.
func (c *Characterizer) resolveInstrs(opts Options) ([]*isa.Instr, error) {
	if len(opts.Only) == 0 {
		return c.gen.set.Instrs(), nil
	}
	instrs := make([]*isa.Instr, 0, len(opts.Only))
	for _, name := range opts.Only {
		in, err := c.gen.lookupVariant(name)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
	}
	return instrs, nil
}

// characterizeOne characterizes a single variant, converting a measurement
// error into a skipped result so that one unmeasurable variant does not lose
// the rest of the run.
func (c *Characterizer) characterizeOne(in *isa.Instr, opts Options) *InstrResult {
	res, err := c.characterizeInstr(in, opts)
	if err != nil {
		res = &InstrResult{Name: in.Name, Mnemonic: in.Mnemonic, Skipped: "error: " + err.Error()}
	}
	return res
}

// progressSink serializes Options.Progress and Options.Variant callbacks from
// concurrent workers: the done count is monotonically increasing, each variant
// is reported exactly once, and the record callback of a variant precedes its
// progress callback, matching the sequential contract.
type progressSink struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int, name string)
	recFn func(name string, rec *InstrResult)
}

func (p *progressSink) report(name string, rec *InstrResult) {
	if p.fn == nil && p.recFn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if p.recFn != nil && rec != nil {
		p.recFn(name, rec)
	}
	if p.fn != nil {
		p.fn(p.done, p.total, name)
	}
	p.mu.Unlock()
}

// runCancelled reports whether the run's context (nil meaning "never
// cancelled") has been cancelled, wrapping ctx.Err() so errors.Is still
// matches context.Canceled / DeadlineExceeded.
func runCancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: characterization cancelled: %w", err)
	}
	return nil
}

// DefaultWorkers is the worker count used when Options.Workers is negative:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// characterizeParallel shards the variants across workers independent
// characterization stacks. Results are merged by variant index, so the output
// is identical to a sequential run regardless of worker count or scheduling.
func (c *Characterizer) characterizeParallel(instrs []*isa.Instr, opts Options, workers int) (*ArchResult, error) {
	if workers > len(instrs) {
		workers = len(instrs)
	}
	results := make([]*InstrResult, len(instrs))
	sink := &progressSink{total: len(instrs), fn: opts.Progress, recFn: opts.Variant}

	// Acquire the worker stacks up front, warm ones from the pool when a
	// previous run has returned any. A runner that cannot be forked is not
	// an error: the calling Characterizer can still do the whole run, so
	// fall back to the sequential path (matching the Workers <= 1 contract).
	forks := make([]*Characterizer, workers)
	for i := range forks {
		fc, err := c.acquireFork()
		if err != nil {
			for _, fc := range forks[:i] {
				c.releaseFork(fc)
			}
			return c.characterizeSequential(instrs, opts)
		}
		forks[i] = fc
	}

	var next int64
	var wg sync.WaitGroup
	for _, fc := range forks {
		wg.Add(1)
		go func(fc *Characterizer) {
			defer wg.Done()
			for {
				if runCancelled(opts.Context) != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(instrs) {
					return
				}
				results[i] = fc.characterizeOne(instrs[i], opts)
				sink.report(instrs[i].Name, results[i])
			}
		}(fc)
	}
	wg.Wait()
	for _, fc := range forks {
		c.releaseFork(fc)
	}
	if err := runCancelled(opts.Context); err != nil {
		return nil, err
	}

	out := NewArchResult(c.gen.arch.Name())
	for i, in := range instrs {
		out.Results[in.Name] = results[i]
	}
	return out, nil
}

// characterizeSequential runs the whole selection on the calling
// Characterizer, preserving the seed behaviour (and supporting runners that
// cannot be forked).
func (c *Characterizer) characterizeSequential(instrs []*isa.Instr, opts Options) (*ArchResult, error) {
	out := NewArchResult(c.gen.arch.Name())
	for i, in := range instrs {
		if err := runCancelled(opts.Context); err != nil {
			return nil, err
		}
		rec := c.characterizeOne(in, opts)
		out.Results[in.Name] = rec
		if opts.Variant != nil {
			opts.Variant(in.Name, rec)
		}
		if opts.Progress != nil {
			opts.Progress(i+1, len(instrs), in.Name)
		}
	}
	return out, nil
}
