package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uopsinfo/internal/isa"
)

// This file implements the sharded characterization scheduler. Every
// instruction variant's measurement is independent of the others, but the
// stack that performs it is stateful: the simulator's divider-value regime is
// switched mid-measurement and its rename/dispatch state lives in reusable
// per-Machine arenas, the measurement harness reuses its repeated-sequence
// buffers, the memory arena hands out addresses monotonically, and the
// chain-latency cache fills as latencies are measured. Sharding therefore
// gives each worker its own complete simulator/harness/characterizer stack
// instead of locking a shared one; the only state shared between workers is
// the blocking-instruction set, which is discovered once up front and
// read-only afterwards (and the target Arch, whose perf-description cache is
// internally synchronized and lock-free on the read path).

// Fork returns a Characterizer with its own independent simulator and
// measurement harness, sharing only the target microarchitecture and the
// already-discovered blocking-instruction set (which is read-only after
// discovery). The fork can be used on another goroutine without
// synchronization.
func (c *Characterizer) Fork() (*Characterizer, error) {
	h, err := c.gen.h.Fork()
	if err != nil {
		return nil, fmt.Errorf("core: forking characterizer: %w", err)
	}
	nc := New(h)
	nc.blocking = c.blocking
	// Chain-instruction latencies are deterministic calibration values, so
	// the fork can start from the parent's cache instead of re-measuring
	// them. Fork runs on the caller's goroutine before the fork is handed to
	// a worker, so the copy is race-free.
	for name, lat := range c.gen.chainLat {
		nc.gen.chainLat[name] = lat
	}
	return nc, nil
}

// resolveInstrs returns the instruction variants selected by opts, in the
// deterministic order they are characterized and reported in.
func (c *Characterizer) resolveInstrs(opts Options) ([]*isa.Instr, error) {
	if len(opts.Only) == 0 {
		return c.gen.set.Instrs(), nil
	}
	instrs := make([]*isa.Instr, 0, len(opts.Only))
	for _, name := range opts.Only {
		in, err := c.gen.lookupVariant(name)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
	}
	return instrs, nil
}

// characterizeOne characterizes a single variant, converting a measurement
// error into a skipped result so that one unmeasurable variant does not lose
// the rest of the run.
func (c *Characterizer) characterizeOne(in *isa.Instr, opts Options) *InstrResult {
	res, err := c.characterizeInstr(in, opts)
	if err != nil {
		res = &InstrResult{Name: in.Name, Mnemonic: in.Mnemonic, Skipped: "error: " + err.Error()}
	}
	return res
}

// progressSink serializes Options.Progress and Options.Variant callbacks from
// concurrent workers: the done count is monotonically increasing, each variant
// is reported exactly once, and the record callback of a variant precedes its
// progress callback, matching the sequential contract.
type progressSink struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int, name string)
	recFn func(name string, rec *InstrResult)
}

func (p *progressSink) report(name string, rec *InstrResult) {
	if p.fn == nil && p.recFn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if p.recFn != nil && rec != nil {
		p.recFn(name, rec)
	}
	if p.fn != nil {
		p.fn(p.done, p.total, name)
	}
	p.mu.Unlock()
}

// runCancelled reports whether the run's context (nil meaning "never
// cancelled") has been cancelled, wrapping ctx.Err() so errors.Is still
// matches context.Canceled / DeadlineExceeded.
func runCancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: characterization cancelled: %w", err)
	}
	return nil
}

// DefaultWorkers is the worker count used when Options.Workers is negative:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// characterizeParallel shards the variants across workers independent
// characterization stacks. Results are merged by variant index, so the output
// is identical to a sequential run regardless of worker count or scheduling.
func (c *Characterizer) characterizeParallel(instrs []*isa.Instr, opts Options, workers int) (*ArchResult, error) {
	if workers > len(instrs) {
		workers = len(instrs)
	}
	results := make([]*InstrResult, len(instrs))
	sink := &progressSink{total: len(instrs), fn: opts.Progress, recFn: opts.Variant}

	// Fork the worker stacks up front. A runner that cannot be forked is not
	// an error: the calling Characterizer can still do the whole run, so
	// fall back to the sequential path (matching the Workers <= 1 contract).
	forks := make([]*Characterizer, workers)
	for i := range forks {
		fc, err := c.Fork()
		if err != nil {
			return c.characterizeSequential(instrs, opts)
		}
		forks[i] = fc
	}

	var next int64
	var wg sync.WaitGroup
	for _, fc := range forks {
		wg.Add(1)
		go func(fc *Characterizer) {
			defer wg.Done()
			for {
				if runCancelled(opts.Context) != nil {
					return
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(instrs) {
					return
				}
				results[i] = fc.characterizeOne(instrs[i], opts)
				sink.report(instrs[i].Name, results[i])
			}
		}(fc)
	}
	wg.Wait()
	if err := runCancelled(opts.Context); err != nil {
		return nil, err
	}

	out := NewArchResult(c.gen.arch.Name())
	for i, in := range instrs {
		out.Results[in.Name] = results[i]
	}
	return out, nil
}

// characterizeSequential runs the whole selection on the calling
// Characterizer, preserving the seed behaviour (and supporting runners that
// cannot be forked).
func (c *Characterizer) characterizeSequential(instrs []*isa.Instr, opts Options) (*ArchResult, error) {
	out := NewArchResult(c.gen.arch.Name())
	for i, in := range instrs {
		if err := runCancelled(opts.Context); err != nil {
			return nil, err
		}
		rec := c.characterizeOne(in, opts)
		out.Results[in.Name] = rec
		if opts.Variant != nil {
			opts.Variant(in.Name, rec)
		}
		if opts.Progress != nil {
			opts.Progress(i+1, len(instrs), in.Name)
		}
	}
	return out, nil
}
