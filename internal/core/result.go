// Package core implements the paper's primary contribution: the algorithms
// that automatically generate microbenchmarks and infer, for every
// instruction variant of a microarchitecture,
//
//   - the port usage (Section 5.1, Algorithm 1, based on blocking
//     instructions),
//   - the latency for every pair of source and destination operands
//     (Section 5.2, based on automatically constructed dependency chains),
//   - the throughput, both measured (Definition 2) and computed from the
//     port usage via the min-max-load optimization problem (Definition 1,
//     Section 5.3).
//
// The algorithms only interact with the processor through the measurement
// harness (package measure), i.e. through "run this code sequence and report
// cycles and µops per port" — the same interface they use on real hardware.
//
//uopslint:deterministic
package core

import (
	"fmt"
	"sort"
	"strings"

	"uopsinfo/internal/uarch"
)

// PortUsage is the inferred port usage of an instruction: the number of µops
// bound to each port combination, keyed by the canonical combination string
// (e.g. "015" for a µop that can use ports 0, 1 and 5).
type PortUsage map[string]float64

// Keys returns the port-combination keys sorted by combination size, then
// lexicographically — the paper's presentation order. Every iteration that
// feeds ordered output or floating-point accumulation goes through Keys:
// map iteration order must never reach a result.
func (pu PortUsage) Keys() []string {
	keys := make([]string, 0, len(pu))
	for k := range pu {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	return keys
}

// TotalUops sums the µops over all combinations (in Keys order: float
// addition is not associative, so the sum must not depend on map iteration
// order).
func (pu PortUsage) TotalUops() float64 {
	sum := 0.0
	for _, k := range pu.Keys() {
		sum += pu[k]
	}
	return sum
}

// String renders the usage in the paper's notation, e.g. "1*p0+1*p015".
func (pu PortUsage) String() string {
	if len(pu) == 0 {
		return "0"
	}
	keys := pu.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		n := pu[k]
		if n == float64(int(n)) {
			parts = append(parts, fmt.Sprintf("%d*p%s", int(n), k))
		} else {
			parts = append(parts, fmt.Sprintf("%.2f*p%s", n, k))
		}
	}
	return strings.Join(parts, "+")
}

// Equal reports whether two port usages are the same after rounding µop
// counts to the nearest integer.
func (pu PortUsage) Equal(other PortUsage) bool {
	round := func(m PortUsage) map[string]int {
		out := make(map[string]int)
		for k, v := range m {
			n := int(v + 0.5)
			if n > 0 {
				out[k] = n
			}
		}
		return out
	}
	a, b := round(pu), round(other)
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// GroundTruthUsage converts a uarch.InstrPerf µop decomposition into the
// PortUsage representation, for comparisons in tests and reports.
func GroundTruthUsage(perf *uarch.InstrPerf) PortUsage {
	pu := make(PortUsage)
	for k, n := range perf.PortUsage() {
		pu[k] = float64(n)
	}
	return pu
}

// OperandPairLatency is the measured latency from one source operand to one
// destination operand of an instruction (the paper's lat(s_i, d_j)).
type OperandPairLatency struct {
	// Source and Dest are operand indices into isa.Instr.Operands.
	Source int
	Dest   int
	// SourceName and DestName are the operand names, for reporting.
	SourceName string
	DestName   string
	// Cycles is the measured latency.
	Cycles float64
	// UpperBound marks measurements where no chain instruction with a known
	// latency exists (e.g. between registers of different types, Section
	// 5.2.1); Cycles is then an upper bound on the true latency.
	UpperBound bool
	// SameRegister marks the additional measurement where the same register
	// is used for both operands (Section 5.2.1).
	SameRegister bool
	// FastValueCycles is the latency with operand values chosen for the fast
	// case; it is only set for divider-based instructions (Section 5.2.5).
	FastValueCycles float64
	// Notes records how the chain was constructed.
	Notes string
}

// LatencyResult collects all measured operand-pair latencies of one
// instruction.
type LatencyResult struct {
	Pairs []OperandPairLatency
}

// MaxLatency returns the maximum measured latency over all pairs (excluding
// same-register measurements), which Algorithm 1 uses to size the blocking
// sequences.
func (l *LatencyResult) MaxLatency() float64 {
	max := 0.0
	for _, p := range l.Pairs {
		if p.SameRegister {
			continue
		}
		if p.Cycles > max {
			max = p.Cycles
		}
	}
	return max
}

// Lookup returns the latency entry for the given operand pair, preferring the
// distinct-register measurement.
func (l *LatencyResult) Lookup(source, dest int) (OperandPairLatency, bool) {
	for _, p := range l.Pairs {
		if p.Source == source && p.Dest == dest && !p.SameRegister {
			return p, true
		}
	}
	for _, p := range l.Pairs {
		if p.Source == source && p.Dest == dest {
			return p, true
		}
	}
	return OperandPairLatency{}, false
}

// ThroughputResult holds the throughput of an instruction in cycles per
// instruction under both definitions discussed in Section 4.2.
type ThroughputResult struct {
	// Measured is the throughput according to Definition 2 (Fog): the
	// average cycles per instruction of the best sequence of independent
	// instances found.
	Measured float64
	// MeasuredSequenceLength is the length of the independent sequence that
	// achieved Measured (1, 2, 4 or 8).
	MeasuredSequenceLength int
	// WithDepBreaking is the best throughput achieved when
	// dependency-breaking instructions were added for implicit
	// read-modify-write operands (0 if not applicable).
	WithDepBreaking float64
	// Computed is the throughput according to Definition 1 (Intel), computed
	// from the port usage by solving the min-max-load problem (Section
	// 5.3.2). It is 0 for instructions that use the divider.
	Computed float64
	// FastValueMeasured is the measured throughput with operand values
	// chosen for the fast case (divider-based instructions only).
	FastValueMeasured float64
}

// InstrResult is the complete characterization of one instruction variant.
type InstrResult struct {
	Name     string
	Mnemonic string
	// Uops is the measured number of µops dispatched to execution ports per
	// instruction execution; UopsIssued additionally counts µops handled at
	// rename.
	Uops       float64
	UopsIssued float64
	Ports      PortUsage
	Latency    LatencyResult
	Throughput ThroughputResult
	// Skipped records why an instruction was not fully characterized (system
	// instructions, control flow, ...). Empty if fully characterized.
	Skipped string
}

// ArchResult is the characterization of all instruction variants of one
// microarchitecture generation.
type ArchResult struct {
	Arch    string
	Results map[string]*InstrResult
}

// NewArchResult returns an empty result container for a generation.
func NewArchResult(arch string) *ArchResult {
	return &ArchResult{Arch: arch, Results: make(map[string]*InstrResult)}
}

// Names returns the sorted variant names present in the result.
func (r *ArchResult) Names() []string {
	names := make([]string, 0, len(r.Results))
	for n := range r.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
