package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/uarch"
)

// BlockingInstr is a blocking instruction for a port combination: a 1-µop
// instruction whose µop can use all ports of the combination but no others
// (Section 5.1.1). For the store-unit combinations the 2-µop MOV-to-memory
// instruction is used, as in the paper.
type BlockingInstr struct {
	Instr *isa.Instr
	// Ports is the port combination the instruction blocks.
	Ports []int
	// Throughput is the measured cycles per instruction of the instruction
	// in isolation (the selection criterion within a group).
	Throughput float64
	// UopsOnCombo is the number of µops one instance contributes to the
	// blocked combination (1 for ordinary blocking instructions; also 1 for
	// the store instruction on each of the two store combinations).
	UopsOnCombo float64
}

// ComboKey returns the canonical key of the blocked combination.
func (b BlockingInstr) ComboKey() string { return uarch.PortComboKey(b.Ports) }

// BlockingSet holds the discovered blocking instructions, separately for use
// with SSE and with AVX instructions (mixing the two would incur transition
// penalties, Section 5.1.1). Instructions that are neither SSE nor AVX can
// appear in both maps.
type BlockingSet struct {
	// SSE maps combination keys to blocking instructions usable when the
	// instruction under test is an SSE (or non-vector) instruction.
	SSE map[string]BlockingInstr
	// AVX maps combination keys to blocking instructions usable when the
	// instruction under test is an AVX instruction.
	AVX map[string]BlockingInstr
}

// For returns the appropriate per-combination map for the given instruction
// under test.
func (bs *BlockingSet) For(in *isa.Instr) map[string]BlockingInstr {
	if in.Extension.IsAVX() {
		return bs.AVX
	}
	return bs.SSE
}

// Combos returns the port combinations of the given map sorted by size (and
// lexicographically within a size), the iteration order required by
// Algorithm 1.
func sortedCombos(m map[string]BlockingInstr) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	return keys
}

// blockingCandidate reports whether the variant may serve as an ordinary
// (non-store) blocking-instruction candidate: the paper excludes system
// instructions, serializing instructions, zero-latency (eliminable)
// instructions, PAUSE, and instructions that can change the control flow
// based on a register value; additionally only 1-µop instructions are usable,
// so memory operands, dividers and prefixed instructions are excluded, as are
// instructions with an implicit operand that is both read and written (their
// copies cannot be made independent).
func blockingCandidate(in *isa.Instr) bool {
	if in.IsSystem || in.IsSerializing || in.ControlFlow || in.IsNOP ||
		in.UsesDivider || in.HasLock || in.HasRep || in.MayMoveElim {
		return false
	}
	if in.Mnemonic == "PAUSE" {
		return false
	}
	// Memory operands that are actually accessed make the instruction more
	// than one µop; pure address-generation operands (LEA) are fine and LEA
	// is in fact the only blocking candidate for the AGU-free LEA ports.
	for _, op := range in.Operands {
		if op.Kind == isa.OpMem && (op.Read || op.Write) {
			return false
		}
	}
	for _, op := range in.Operands {
		if op.Implicit && op.Read && op.Write {
			return false
		}
	}
	// At least one explicit register operand is needed so that independent
	// copies can be formed.
	for _, op := range in.ExplicitOperands() {
		if op.Kind == isa.OpReg {
			return true
		}
	}
	return false
}

// FindBlockingInstructions discovers the blocking instructions for all port
// combinations by measuring every candidate in isolation, grouping the 1-µop
// candidates by the set of ports they use, and selecting the instruction with
// the highest throughput from each group (Section 5.1.1). MOV to memory is
// used for the store-address and store-data combinations.
//
// The discovery runs sequentially; use DiscoverBlocking to shard the candidate
// measurements across parallel worker stacks.
func (c *Characterizer) FindBlockingInstructions() (*BlockingSet, error) {
	return c.findBlocking(Options{})
}

// DiscoverBlocking discovers the blocking instructions, shards the candidate
// isolation measurements across opts.Workers forked stacks (like
// CharacterizeAll shards variants), and installs the result on the
// Characterizer. The discovered set is identical for any worker count: the
// per-candidate profiles are collected into a slice indexed by candidate, and
// the group-and-select fold then runs sequentially in candidate order.
// opts.BlockingProgress, if set, is called after each candidate.
func (c *Characterizer) DiscoverBlocking(opts Options) (*BlockingSet, error) {
	bs, err := c.findBlocking(opts)
	if err != nil {
		return nil, err
	}
	c.blocking = bs
	return bs, nil
}

// SetBlocking installs an already-discovered blocking set, e.g. one restored
// from a persistent store. It replaces any previously discovered set and must
// not be called while a characterization run is in flight.
func (c *Characterizer) SetBlocking(bs *BlockingSet) { c.blocking = bs }

// isolation is the measured isolation profile of one blocking candidate. ok is
// false for candidates whose measurement failed (they are skipped, matching
// the sequential behaviour).
type isolation struct {
	ports []int
	tp    float64
	uops  float64
	ok    bool
}

func (c *Characterizer) findBlocking(opts Options) (*BlockingSet, error) {
	var candidates []*isa.Instr
	for _, in := range c.gen.set.Instrs() {
		if blockingCandidate(in) {
			candidates = append(candidates, in)
		}
	}
	profiles, err := c.isolationProfiles(candidates, opts)
	if err != nil {
		return nil, err
	}

	bs := &BlockingSet{
		SSE: make(map[string]BlockingInstr),
		AVX: make(map[string]BlockingInstr),
	}
	type group struct {
		best BlockingInstr
		ok   bool
	}
	sseGroups := make(map[string]*group)
	avxGroups := make(map[string]*group)

	for i, in := range candidates {
		p := profiles[i]
		if !p.ok {
			continue
		}
		if p.uops < 0.6 || p.uops > 1.4 {
			continue // not a 1-µop instruction
		}
		if len(p.ports) == 0 {
			continue // handled at rename; a "zero-latency" instruction
		}
		key := uarch.PortComboKey(p.ports)
		cand := BlockingInstr{Instr: in, Ports: p.ports, Throughput: p.tp, UopsOnCombo: 1}
		update := func(groups map[string]*group) {
			gr, ok := groups[key]
			if !ok {
				groups[key] = &group{best: cand, ok: true}
				return
			}
			if cand.Throughput < gr.best.Throughput {
				gr.best = cand
			}
		}
		if !in.Extension.IsAVX() {
			update(sseGroups)
		}
		if !in.Extension.IsSSE() {
			update(avxGroups)
		}
	}
	for key, gr := range sseGroups {
		bs.SSE[key] = gr.best
	}
	for key, gr := range avxGroups {
		bs.AVX[key] = gr.best
	}

	// Store and load port combinations (the MOV instruction from a
	// general-purpose register to memory, and the plain load).
	if err := c.addMemoryBlocking(bs); err != nil {
		return nil, err
	}
	return bs, nil
}

// isolationProfiles measures the isolation profile of every candidate,
// sharded across opts.Workers forked stacks. The returned slice is indexed by
// candidate so callers can fold it in candidate order regardless of which
// worker measured what. A runner that cannot be forked falls back to the
// sequential path, matching the characterization scheduler's contract — as
// does cancellation through opts.Context, checked between candidates.
func (c *Characterizer) isolationProfiles(cands []*isa.Instr, opts Options) ([]isolation, error) {
	profiles := make([]isolation, len(cands))
	sink := &progressSink{total: len(cands), fn: opts.BlockingProgress}
	workers := opts.Workers
	if workers < 0 {
		workers = DefaultWorkers()
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers > 1 {
		// The worker stacks come from the fork pool, so the same warm
		// machines that discover blocking instructions go on to measure the
		// variants afterwards (and later runs reuse them again).
		forks := make([]*Characterizer, 0, workers)
		for i := 0; i < workers; i++ {
			fc, err := c.acquireFork()
			if err != nil {
				for _, fc := range forks {
					c.releaseFork(fc)
				}
				forks = nil
				break
			}
			forks = append(forks, fc)
		}
		if forks != nil {
			var next int64
			var wg sync.WaitGroup
			for _, fc := range forks {
				wg.Add(1)
				go func(fc *Characterizer) {
					defer wg.Done()
					for {
						if runCancelled(opts.Context) != nil {
							return
						}
						i := int(atomic.AddInt64(&next, 1)) - 1
						if i >= len(cands) {
							return
						}
						profiles[i] = fc.profileCandidate(cands[i])
						sink.report(cands[i].Name, nil)
					}
				}(fc)
			}
			wg.Wait()
			for _, fc := range forks {
				c.releaseFork(fc)
			}
			if err := runCancelled(opts.Context); err != nil {
				return nil, err
			}
			return profiles, nil
		}
	}
	for i, in := range cands {
		if err := runCancelled(opts.Context); err != nil {
			return nil, err
		}
		profiles[i] = c.profileCandidate(in)
		sink.report(in.Name, nil)
	}
	return profiles, nil
}

// profileCandidate measures one candidate, converting a measurement error
// into a skipped profile (one unmeasurable candidate must not lose the rest
// of the discovery).
func (c *Characterizer) profileCandidate(in *isa.Instr) isolation {
	ports, tp, uops, err := c.isolationProfile(in, 8)
	if err != nil {
		return isolation{}
	}
	return isolation{ports: ports, tp: tp, uops: uops, ok: true}
}

// addMemoryBlocking registers the load, store-address and store-data
// combinations using plain MOV loads and stores.
func (c *Characterizer) addMemoryBlocking(bs *BlockingSet) error {
	arch := c.gen.arch
	store, err := c.gen.lookupVariant("MOV_M64_R64")
	if err != nil {
		return err
	}
	load, err := c.gen.lookupVariant("MOV_R64_M64")
	if err != nil {
		return err
	}
	entries := []BlockingInstr{
		{Instr: load, Ports: arch.LoadPorts(), UopsOnCombo: 1},
		{Instr: store, Ports: arch.StoreAddrPorts(), UopsOnCombo: 1},
		{Instr: store, Ports: arch.StoreDataPorts(), UopsOnCombo: 1},
	}
	for _, e := range entries {
		key := e.ComboKey()
		if _, ok := bs.SSE[key]; !ok {
			bs.SSE[key] = e
		}
		if _, ok := bs.AVX[key]; !ok {
			bs.AVX[key] = e
		}
	}
	return nil
}

// isolationProfile measures the variant in isolation with n independent
// instances and returns the set of ports that received a significant share of
// its µops, the cycles per instruction, and the µops per instruction.
func (c *Characterizer) isolationProfile(in *isa.Instr, n int) ([]int, float64, float64, error) {
	seq, err := c.gen.independentInstances(in, n)
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := c.gen.h.Measure(seq)
	if err != nil {
		return nil, 0, 0, err
	}
	perInstr := 1.0 / float64(n)
	var ports []int
	for p, u := range res.PortUops {
		if u*perInstr >= 0.05 {
			ports = append(ports, p)
		}
	}
	return ports, res.Cycles * perInstr, res.TotalUops * perInstr, nil
}

// blockingSequence builds blockRep independent copies of the blocking
// instruction whose operands avoid the register families used by the
// instruction under test. All copies use the same registers: written
// registers are renamed by the hardware, and the source registers are never
// written, so the copies are independent of each other and of the measured
// instruction.
func (c *Characterizer) blockingSequence(b BlockingInstr, blockRep int, avoid []isa.Reg) (asmgen.Sequence, error) {
	alloc := c.gen.newAlloc()
	inst, err := c.gen.instantiate(b.Instr, nil, alloc, avoid...)
	if err != nil {
		return nil, fmt.Errorf("core: building blocking sequence for %s: %w", b.Instr.Name, err)
	}
	seq := make(asmgen.Sequence, 0, blockRep)
	for i := 0; i < blockRep; i++ {
		seq = append(seq, inst)
	}
	return seq, nil
}
