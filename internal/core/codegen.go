package core

import (
	"fmt"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/measure"
	"uopsinfo/internal/uarch"
)

// gen holds the state shared by the microbenchmark generators: the
// measurement harness, the instruction set of the target microarchitecture,
// a memory arena for distinct addresses, and a cache of chain-instruction
// latencies measured in isolation.
type gen struct {
	h     *measure.Harness
	arch  *uarch.Arch
	set   *isa.Set
	arena *asmgen.MemArena

	chainLat map[string]float64
}

func newGen(h *measure.Harness) *gen {
	arch := h.Arch()
	return &gen{
		h:        h,
		arch:     arch,
		set:      arch.InstrSet(),
		arena:    asmgen.NewMemArena(),
		chainLat: make(map[string]float64),
	}
}

// newAlloc returns a fresh register allocator with the harness-reserved
// registers excluded.
func (g *gen) newAlloc() *asmgen.Allocator {
	return asmgen.NewAllocator(asmgen.DefaultReserved...)
}

// defaultImm picks an immediate value for an operand: small shift counts for
// shift-like instructions, 1 otherwise.
func defaultImm(in *isa.Instr) int64 {
	switch in.Mnemonic {
	case "SHL", "SHR", "SAR", "ROL", "ROR", "RCL", "RCR", "SHLD", "SHRD",
		"PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD", "PSRLQ", "PSRAW", "PSRAD",
		"PSLLDQ", "PSRLDQ", "RORX":
		return 3
	}
	return 1
}

// instantiate builds one concrete instance of the variant. fixed maps
// explicit-operand indices to pre-chosen operands; all other register
// operands are allocated from alloc (fresh registers, avoiding the given
// families), memory operands get a fresh base register and address, and
// immediates get a default value.
func (g *gen) instantiate(in *isa.Instr, fixed map[int]asmgen.Operand, alloc *asmgen.Allocator, avoid ...isa.Reg) (*asmgen.Inst, error) {
	// Implicit fixed registers (RAX for MUL, CL for variable shifts, ...)
	// must not be handed out for explicit operands.
	for _, op := range in.Operands {
		if op.Implicit && op.FixedReg != isa.RegNone {
			alloc.MarkUsed(op.FixedReg)
		}
	}
	expl := in.ExplicitOperands()
	ops := make([]asmgen.Operand, len(expl))
	for i, spec := range expl {
		if op, ok := fixed[i]; ok {
			ops[i] = op
			if op.Reg != isa.RegNone {
				alloc.MarkUsed(op.Reg)
			}
			if op.Mem != nil {
				alloc.MarkUsed(op.Mem.Base)
			}
			continue
		}
		switch spec.Kind {
		case isa.OpReg:
			r, err := alloc.Fresh(spec.Class, avoid...)
			if err != nil {
				return nil, fmt.Errorf("core: instantiating %s: %w", in.Name, err)
			}
			ops[i] = asmgen.RegOperand(r)
		case isa.OpMem:
			base, err := alloc.Fresh(isa.ClassGPR64, avoid...)
			if err != nil {
				return nil, fmt.Errorf("core: instantiating %s: %w", in.Name, err)
			}
			ops[i] = asmgen.MemOperand(base, g.arena.Alloc(spec.Width/8))
		case isa.OpImm:
			ops[i] = asmgen.ImmOperand(defaultImm(in))
		}
	}
	return asmgen.NewInst(in, ops...)
}

// independentInstances builds n instances of the variant that avoid
// read-after-write dependencies between instances as far as possible
// (Section 5.3.1): registers and memory locations written by one instance
// are not read by a later one. Implicit operands that are both read and
// written cannot be decoupled.
func (g *gen) independentInstances(in *isa.Instr, n int) (asmgen.Sequence, error) {
	alloc := g.newAlloc()
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		inst, err := g.instantiate(in, nil, alloc)
		if err != nil {
			// The register class may be exhausted for large n; fall back to
			// reusing registers from the start of the sequence, which keeps
			// the instances pairwise independent as long as no instance
			// both reads and writes the reused register.
			alloc = g.newAlloc()
			inst, err = g.instantiate(in, nil, alloc)
			if err != nil {
				return nil, err
			}
		}
		seq = append(seq, inst)
	}
	return seq, nil
}

// lookupVariant returns a named variant of the target instruction set, or an
// error mentioning the microarchitecture.
func (g *gen) lookupVariant(name string) (*isa.Instr, error) {
	in := g.set.Lookup(name)
	if in == nil {
		return nil, fmt.Errorf("core: %s: instruction variant %q not available", g.arch.Name(), name)
	}
	return in, nil
}

// depBreakFlags returns an instruction that overwrites the status flags
// without reading them (and without writing any register), used to break
// unwanted implicit dependencies through the flags (Section 5.2). The scratch
// register is only read, so repeated instances are independent.
func (g *gen) depBreakFlags(alloc *asmgen.Allocator, avoid ...isa.Reg) (*asmgen.Inst, error) {
	in, err := g.lookupVariant("TEST_R64_I32")
	if err != nil {
		return nil, err
	}
	r, err := alloc.Fresh(isa.ClassGPR64, avoid...)
	if err != nil {
		return nil, err
	}
	return asmgen.NewInst(in, asmgen.RegOperand(r), asmgen.ImmOperand(0))
}

// depBreakReg returns an instruction that overwrites register r without
// reading it: a move-immediate for general-purpose registers and a zero
// idiom for vector registers.
func (g *gen) depBreakReg(r isa.Reg) (*asmgen.Inst, error) {
	switch r.Class() {
	case isa.ClassGPR8, isa.ClassGPR16, isa.ClassGPR32, isa.ClassGPR64:
		in, err := g.lookupVariant("MOV_R64_I32")
		if err != nil {
			return nil, err
		}
		return asmgen.NewInst(in, asmgen.RegOperand(r.InFamily(isa.ClassGPR64)), asmgen.ImmOperand(1))
	case isa.ClassXMM:
		in, err := g.lookupVariant("PXOR_XMM_XMM")
		if err != nil {
			return nil, err
		}
		return asmgen.NewInst(in, asmgen.RegOperand(r), asmgen.RegOperand(r))
	case isa.ClassYMM:
		in, err := g.lookupVariant("VPXOR_YMM_YMM_YMM")
		if err != nil {
			return nil, err
		}
		return asmgen.NewInst(in, asmgen.RegOperand(r), asmgen.RegOperand(r), asmgen.RegOperand(r))
	case isa.ClassMMX:
		in, err := g.lookupVariant("PXOR_MM_MM")
		if err != nil {
			return nil, err
		}
		return asmgen.NewInst(in, asmgen.RegOperand(r), asmgen.RegOperand(r))
	}
	return nil, fmt.Errorf("core: no dependency-breaking instruction for register %s", r)
}

// depBreakersFor returns dependency-breaking instructions for all implicit
// operands of the variant that are both read and written (flags or fixed
// registers), avoiding the given register families.
func (g *gen) depBreakersFor(in *isa.Instr, alloc *asmgen.Allocator, avoid ...isa.Reg) (asmgen.Sequence, error) {
	var seq asmgen.Sequence
	for _, op := range in.Operands {
		if !op.Implicit || !op.Read || !op.Write {
			continue
		}
		switch op.Kind {
		case isa.OpFlags:
			br, err := g.depBreakFlags(alloc, avoid...)
			if err != nil {
				return nil, err
			}
			seq = append(seq, br)
		case isa.OpReg:
			if op.FixedReg == isa.RegNone {
				continue
			}
			br, err := g.depBreakReg(op.FixedReg)
			if err != nil {
				return nil, err
			}
			seq = append(seq, br)
		}
	}
	return seq, nil
}

// explicitIndex maps an operand index (into Operands) to the index among the
// explicit operands, or -1 for implicit operands.
func explicitIndex(in *isa.Instr, opIdx int) int {
	if opIdx < 0 || opIdx >= len(in.Operands) || in.Operands[opIdx].Implicit {
		return -1
	}
	n := 0
	for i := 0; i < opIdx; i++ {
		if !in.Operands[i].Implicit {
			n++
		}
	}
	return n
}
