package core

import (
	"reflect"
	"testing"

	"uopsinfo/internal/measure"
	"uopsinfo/internal/pipesim"
	"uopsinfo/internal/uarch"
)

// sampleNames returns every step-th variant name of the characterizer's
// instruction set.
func sampleNames(c *Characterizer, step int) []string {
	instrs := c.gen.set.Instrs()
	var names []string
	for i := 0; i < len(instrs); i += step {
		names = append(names, instrs[i].Name)
	}
	return names
}

func TestForkSharesBlockingAndMeasuresIdentically(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	f, err := c.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.blocking != c.blocking {
		t.Error("fork does not share the discovered blocking set")
	}
	if f.gen == c.gen || f.gen.h == c.gen.h {
		t.Error("fork shares the mutable generator or harness state")
	}
	in := variant(t, c, "IMUL_R64_R64")
	want, err := c.CharacterizeInstr(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.CharacterizeInstr(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked characterizer disagrees with parent:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCharacterizeAllWorkerInvariance is the core determinism guarantee of
// the sharded scheduler: the merged result must be identical to a sequential
// run for any worker count.
func TestCharacterizeAllWorkerInvariance(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	only := sampleNames(c, 60)
	if len(only) < 10 {
		t.Fatalf("sample too small: %d variants", len(only))
	}
	want, err := c.CharacterizeAll(Options{Only: only, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := c.CharacterizeAll(Options{Only: only, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Arch != want.Arch || len(got.Results) != len(want.Results) {
			t.Fatalf("workers=%d: got %d results for %q, want %d for %q",
				workers, len(got.Results), got.Arch, len(want.Results), want.Arch)
		}
		for _, name := range want.Names() {
			if !reflect.DeepEqual(got.Results[name], want.Results[name]) {
				t.Errorf("workers=%d: %s differs:\ngot  %+v\nwant %+v",
					workers, name, got.Results[name], want.Results[name])
			}
		}
	}
}

// TestParallelProgressContract checks that concurrent workers preserve the
// progress-callback contract: one callback per variant, with a monotonically
// increasing done count ending at the total.
func TestParallelProgressContract(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	only := sampleNames(c, 80)
	seen := make(map[string]int)
	lastDone := 0
	_, err := c.CharacterizeAll(Options{
		Only:        only,
		Workers:     4,
		SkipLatency: true,
		Progress: func(done, total int, name string) {
			// Serialized by the scheduler, so plain variables are safe here.
			if done != lastDone+1 {
				t.Errorf("done jumped from %d to %d", lastDone, done)
			}
			lastDone = done
			if total != len(only) {
				t.Errorf("total = %d, want %d", total, len(only))
			}
			seen[name]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != len(only) {
		t.Errorf("final done = %d, want %d", lastDone, len(only))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("variant %s reported %d times", name, n)
		}
	}
	if len(seen) != len(only) {
		t.Errorf("progress reported %d distinct variants, want %d", len(seen), len(only))
	}
}

// TestNegativeWorkersUsesDefault exercises the Workers < 0 path (one worker
// per CPU) on a small sample.
func TestNegativeWorkersUsesDefault(t *testing.T) {
	c := charFor(t, uarch.Nehalem)
	only := sampleNames(c, 150)
	res, err := c.CharacterizeAll(Options{Only: only, Workers: -1, SkipLatency: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(only) {
		t.Errorf("got %d results, want %d", len(res.Results), len(only))
	}
}

// TestCharacterizeResume checks the partial-results entry point: a run
// resumed from a subset of cached records measures only the missing variants
// and merges to a result identical to a cold run, for sequential and sharded
// scheduling.
func TestCharacterizeResume(t *testing.T) {
	c := charFor(t, uarch.Skylake)
	only := []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM", "MOV_R64_M64", "SHLD_R64_R64_I8"}
	want, err := c.CharacterizeAll(Options{Only: only, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	partial := map[string]*InstrResult{
		"ADD_R64_R64":  want.Results["ADD_R64_R64"],
		"PXOR_XMM_XMM": want.Results["PXOR_XMM_XMM"],
		// An entry outside the selection must be ignored, not merged in.
		"XOR_R64_R64": {Name: "XOR_R64_R64", Mnemonic: "XOR"},
	}
	for _, workers := range []int{1, 4} {
		var measured []string
		got, err := c.CharacterizeResume(Options{
			Only:    only,
			Workers: workers,
			Progress: func(done, total int, name string) {
				if total != len(only)-2 {
					t.Errorf("workers=%d: progress total = %d, want the %d missing variants", workers, total, len(only)-2)
				}
				measured = append(measured, name)
			},
		}, partial)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Results) != len(only) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got.Results), len(only))
		}
		if got.Results["XOR_R64_R64"] != nil {
			t.Errorf("workers=%d: out-of-selection partial entry leaked into the result", workers)
		}
		if len(measured) != len(only)-2 {
			t.Errorf("workers=%d: measured %d variants (%v), want %d", workers, len(measured), measured, len(only)-2)
		}
		for _, name := range measured {
			if partial[name] != nil {
				t.Errorf("workers=%d: cached variant %s was re-measured", workers, name)
			}
		}
		for _, name := range only {
			if !reflect.DeepEqual(got.Results[name], want.Results[name]) {
				t.Errorf("workers=%d: %s differs from the cold run:\ngot  %+v\nwant %+v",
					workers, name, got.Results[name], want.Results[name])
			}
		}
	}

	// Resuming with full coverage measures nothing.
	full := map[string]*InstrResult{}
	for _, name := range only {
		full[name] = want.Results[name]
	}
	got, err := c.CharacterizeResume(Options{Only: only, Workers: 4, Progress: func(done, total int, name string) {
		t.Errorf("fully covered resume measured %s", name)
	}}, full)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Error("fully covered resume does not reproduce the cold result")
	}
}

// opaqueRunner wraps a Machine without exposing a fork path, to test the
// sequential fallback of the parallel scheduler.
type opaqueRunner struct{ *pipesim.Machine }

func TestParallelFallsBackToSequentialForUnforkableRunner(t *testing.T) {
	arch := uarch.Get(uarch.Skylake)
	c := New(measure.New(opaqueRunner{pipesim.New(arch)}))
	names := []string{"ADD_R64_R64", "IMUL_R64_R64", "PXOR_XMM_XMM"}
	res, err := c.CharacterizeAll(Options{Only: names, Workers: 4, SkipLatency: true})
	if err != nil {
		t.Fatalf("Workers>1 with an unforkable runner should fall back to sequential, got %v", err)
	}
	if len(res.Results) != len(names) {
		t.Errorf("got %d results, want %d", len(res.Results), len(names))
	}
	for _, name := range names {
		if res.Results[name] == nil || res.Results[name].Skipped != "" {
			t.Errorf("%s not characterized: %+v", name, res.Results[name])
		}
	}
}

// TestPooledForksReusedAcrossRuns pins the cross-run batching behaviour: a
// second parallel run on the same Characterizer must pick its worker stacks
// up warm from the fork pool (not fork fresh ones) and still produce the
// identical result.
func TestPooledForksReusedAcrossRuns(t *testing.T) {
	m := pipesim.New(uarch.Get(uarch.Skylake))
	c := New(measure.New(m))
	if err := c.ensureBlocking(); err != nil {
		t.Fatal(err)
	}
	only := sampleNames(c, 80)
	opts := Options{Only: only, Workers: 4, SkipLatency: true}

	want, err := c.CharacterizeAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	after1 := c.PoolStats()
	if after1.Forked == 0 {
		t.Fatalf("first run forked no worker stacks: %+v", after1)
	}

	got, err := c.CharacterizeAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	after2 := c.PoolStats()
	if after2.Forked != after1.Forked {
		t.Errorf("second run forked fresh stacks: %+v -> %+v", after1, after2)
	}
	if after2.Reused < 4 {
		t.Errorf("second run reused %d pooled stacks, want >= 4 (%+v)", after2.Reused, after2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pooled rerun disagrees with first run")
	}
}
