package core

import (
	"math"

	"uopsinfo/internal/asmgen"
	"uopsinfo/internal/isa"
	"uopsinfo/internal/lp"
	"uopsinfo/internal/pipesim"
)

// throughputSequenceLengths are the lengths of independent-instruction
// sequences tried when measuring throughput (Section 5.3.1: longer sequences
// sometimes behave worse because they touch more registers and memory
// locations, so several lengths are measured and the best is reported).
var throughputSequenceLengths = []int{1, 2, 4, 8}

// Throughput measures the instruction's throughput according to Definition 2
// (independent instances of the same instruction, Section 5.3.1) and computes
// the throughput according to Definition 1 from the port usage via the
// min-max-load problem (Section 5.3.2). The port usage may be nil, in which
// case only the measured throughput is produced.
func (c *Characterizer) Throughput(in *isa.Instr, ports PortUsage) (ThroughputResult, error) {
	var result ThroughputResult
	best := math.Inf(1)
	bestLen := 0
	for _, n := range throughputSequenceLengths {
		seq, err := c.gen.independentInstances(in, n)
		if err != nil {
			continue
		}
		res, err := c.gen.h.Measure(seq)
		if err != nil {
			return result, err
		}
		perInstr := res.Cycles / float64(n)
		if perInstr < best {
			best = perInstr
			bestLen = n
		}
	}
	if math.IsInf(best, 1) {
		// Fall back to a single instance with reused registers.
		alloc := c.gen.newAlloc()
		inst, err := c.gen.instantiate(in, nil, alloc)
		if err != nil {
			return result, err
		}
		res, err := c.gen.h.Measure(asmgen.Sequence{inst})
		if err != nil {
			return result, err
		}
		best = res.Cycles
		bestLen = 1
	}
	result.Measured = best
	result.MeasuredSequenceLength = bestLen

	// For instructions with implicit operands that are both read and
	// written, also try sequences interleaved with dependency-breaking
	// instructions (the breakers consume execution resources themselves, so
	// this does not always help).
	if hasImplicitReadWrite(in) {
		if tp, err := c.throughputWithDepBreaking(in, 4); err == nil {
			result.WithDepBreaking = tp
		}
	}

	// Computed throughput (Definition 1) from the port usage. Not defined
	// for divider-based instructions (the divider is not fully pipelined).
	if len(ports) > 0 && !in.UsesDivider {
		// Build the LP input in PortUsage.Keys order: the solvers are
		// floating-point, so constraint order must not depend on map
		// iteration order.
		groups := make([]lp.PortGroup, 0, len(ports))
		for _, key := range ports.Keys() {
			groups = append(groups, lp.PortGroup{Ports: portsOfKey(key), Count: ports[key]})
		}
		if tp, err := lp.MinMaxLoad(groups, c.gen.arch.NumPorts()); err == nil {
			result.Computed = tp
		}
	}

	// Divider-based instructions: measure again with fast operand values.
	if in.UsesDivider {
		if setter, ok := c.gen.h.Runner().(dividerValueSetter); ok {
			setter.SetDividerValues(pipesim.FastDividerValues)
			if seq, err := c.gen.independentInstances(in, 4); err == nil {
				if res, err := c.gen.h.Measure(seq); err == nil {
					result.FastValueMeasured = res.Cycles / 4
				}
			}
			setter.SetDividerValues(pipesim.SlowDividerValues)
		}
	}
	return result, nil
}

// throughputWithDepBreaking measures a sequence of n instances, each followed
// by dependency-breaking instructions for the implicit read-modify-write
// operands, and returns the cycles per instruction-under-test.
func (c *Characterizer) throughputWithDepBreaking(in *isa.Instr, n int) (float64, error) {
	alloc := c.gen.newAlloc()
	var seq asmgen.Sequence
	for i := 0; i < n; i++ {
		inst, err := c.gen.instantiate(in, nil, alloc)
		if err != nil {
			alloc = c.gen.newAlloc()
			inst, err = c.gen.instantiate(in, nil, alloc)
			if err != nil {
				return 0, err
			}
		}
		seq = append(seq, inst)
		breakers, err := c.gen.depBreakersFor(in, alloc)
		if err != nil {
			return 0, err
		}
		seq = append(seq, breakers...)
	}
	res, err := c.gen.h.Measure(seq)
	if err != nil {
		return 0, err
	}
	return res.Cycles / float64(n), nil
}

// hasImplicitReadWrite reports whether the instruction has an implicit
// operand that is both read and written.
func hasImplicitReadWrite(in *isa.Instr) bool {
	for _, op := range in.Operands {
		if op.Implicit && op.Read && op.Write {
			return true
		}
	}
	return false
}

// portsOfKey converts a canonical combination key back to a port list.
func portsOfKey(key string) []int {
	var ports []int
	for _, ch := range key {
		if ch >= '0' && ch <= '9' {
			ports = append(ports, int(ch-'0'))
		}
	}
	return ports
}
